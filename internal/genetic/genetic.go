// Package genetic implements the paper's automated modeling heuristic
// (Sections 2.4 and 3.4): a genetic search over model specifications.
//
// Each chromosome encodes, per variable, a genetic value 0–4 (excluded,
// linear, quadratic, cubic, or piecewise-cubic with three inflection
// points) plus a dynamically sized list of pairwise interactions i–j.
// Populations evolve under three crossover operators and two mutation
// operators, each applied with the paper's experimentally effective
// probabilities (12.5% per crossover, 5% per mutation):
//
//	C1: single variable randomly exchanged between two chromosomes
//	C2: interaction randomly exchanged between two chromosomes
//	C3: interaction randomly created using single variables from two chromosomes
//	M1: interaction randomly changed for a chromosome
//	M2: single variable randomly changed for a chromosome
//
// The best N% of each generation survives; the rest of the next generation
// is bred by crossover and mutation. Fitness evaluation — the inner loops of
// the paper's pseudocode — is delegated to an Evaluator and parallelized
// across a worker pool (the paper used R's doMC/Multicore; a generation with
// n candidate models is embarrassingly parallel).
package genetic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
)

// Typed failures of a search. Both are returned wrapped, alongside a partial
// Result, so callers can degrade gracefully (see core's degradation ladder).
var (
	// ErrEvalPanic reports that an Evaluator panicked during fitness
	// evaluation. The panic is recovered inside the worker pool so a bad
	// candidate model cannot kill the process.
	ErrEvalPanic = errors.New("genetic: evaluator panicked")
	// ErrCancelled reports that the search context was cancelled or its
	// deadline expired before the configured generations completed.
	ErrCancelled = errors.New("genetic: search cancelled")
)

// Evaluator scores a model specification. Fitness is an error measure:
// LOWER IS BETTER (the paper uses mean per-application validation error).
// Implementations must be safe for concurrent use.
type Evaluator interface {
	Fitness(spec regress.Spec) float64
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(spec regress.Spec) float64

// Fitness implements Evaluator.
func (f EvaluatorFunc) Fitness(spec regress.Spec) float64 { return f(spec) }

// Params configures the search. Zero fields take the documented defaults.
type Params struct {
	PopulationSize  int     // default 60
	Generations     int     // default 20, where the paper sees diminishing returns
	ElitePct        float64 // surviving fraction per generation; default 0.25
	CrossoverProb   float64 // per-operator crossover probability; default 0.125
	MutationProb    float64 // per-operator mutation probability; default 0.05
	MaxInteractions int     // chromosome growth cap; default 24
	TournamentSize  int     // parent-selection tournament; default 3
	Seed            uint64
	Workers         int // parallel fitness evaluations; default GOMAXPROCS
	// Deadline, if positive, bounds the whole search: the context passed to
	// Search is wrapped with this timeout, and an expired search returns the
	// best-so-far population plus an error wrapping ErrCancelled.
	Deadline time.Duration
	// Initial seeds the starting population (model updates warm-start from
	// the previous population, Section 3.3). Remaining slots are random.
	Initial []regress.Spec
	// OnGeneration, if non-nil, is called after each generation with that
	// generation's statistics (for convergence reporting, Figure 5).
	OnGeneration func(GenStats)
}

func (p Params) withDefaults() Params {
	if p.PopulationSize <= 0 {
		p.PopulationSize = 60
	}
	if p.Generations <= 0 {
		p.Generations = 20
	}
	if p.ElitePct <= 0 || p.ElitePct >= 1 {
		p.ElitePct = 0.25
	}
	if p.CrossoverProb <= 0 {
		p.CrossoverProb = 0.125
	}
	if p.MutationProb <= 0 {
		p.MutationProb = 0.05
	}
	if p.MaxInteractions <= 0 {
		p.MaxInteractions = 24
	}
	if p.TournamentSize <= 0 {
		p.TournamentSize = 3
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// Individual is a scored chromosome.
type Individual struct {
	Spec    regress.Spec
	Fitness float64
}

// GenStats summarizes one generation.
type GenStats struct {
	Gen   int
	Best  float64
	Mean  float64
	Evals int // cumulative fitness evaluations (cache misses)
}

// Result reports a completed search.
type Result struct {
	Best       Individual
	Population []Individual // final generation, best first
	History    []GenStats
	Evals      int
}

// TopK returns the k best individuals of the final population.
func (r *Result) TopK(k int) []Individual {
	if k > len(r.Population) {
		k = len(r.Population)
	}
	return r.Population[:k]
}

// Search runs the genetic algorithm over specs with numVars variables.
//
// Cancellation and failure are non-fatal: when ctx is cancelled (or
// p.Deadline expires) the search stops within the current generation and
// returns the best-so-far population as a partial Result plus an error
// wrapping ErrCancelled; when an Evaluator panics the panic is recovered and
// Search returns a partial Result plus an error wrapping ErrEvalPanic. The
// returned Result is never nil, but after an error only individuals with
// finite fitness have been scored — unevaluated candidates carry +Inf and
// sort last.
func Search(ctx context.Context, numVars int, eval Evaluator, p Params) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p = p.withDefaults()
	if p.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Deadline)
		defer cancel()
	}
	src := rng.New(p.Seed)
	cache := newFitnessCache(eval, p.Workers)

	pop := make([]Individual, 0, p.PopulationSize)
	for _, s := range p.Initial {
		if len(pop) == p.PopulationSize {
			break
		}
		if s.Validate(numVars) == nil {
			pop = append(pop, Individual{Spec: s.Clone()})
		}
	}
	for len(pop) < p.PopulationSize {
		pop = append(pop, Individual{Spec: randomSpec(numVars, src, p.MaxInteractions)})
	}

	res := &Result{}
	// scored is the most recent fully evaluated, sorted population — what a
	// cancelled search hands back when the current generation is unscored.
	var scored []Individual
	partial := func(g int, cause error) (*Result, error) {
		if scored != nil {
			pop = scored
		} else {
			// Nothing was ever scored: mark everything unevaluated so no
			// zero-fitness chromosome masquerades as a best individual.
			for i := range pop {
				pop[i].Fitness = math.Inf(1)
			}
			sortPopulation(pop)
		}
		res.Population = pop
		res.Best = pop[0]
		res.Evals = cache.misses()
		return res, fmt.Errorf("generation %d of %d: %w", g, p.Generations, cause)
	}

	for g := 0; g < p.Generations; g++ {
		if err := ctx.Err(); err != nil {
			return partial(g, fmt.Errorf("%w: %w", ErrCancelled, err))
		}
		if err := cache.scoreAll(ctx, pop); err != nil {
			// pop is partially scored: evaluated individuals (including
			// cached elites) keep real fitness, the rest carry +Inf.
			sanitizeFitness(pop)
			sortPopulation(pop)
			scored = pop
			return partial(g, err)
		}
		sanitizeFitness(pop)
		sortPopulation(pop)
		scored = pop
		var sum float64
		for _, ind := range pop {
			sum += ind.Fitness
		}
		gs := GenStats{Gen: g, Best: pop[0].Fitness, Mean: sum / float64(len(pop)), Evals: cache.misses()}
		res.History = append(res.History, gs)
		if p.OnGeneration != nil {
			p.OnGeneration(gs)
		}
		if g == p.Generations-1 {
			break
		}

		// Elitist survival; breed the remainder.
		elite := int(float64(p.PopulationSize) * p.ElitePct)
		if elite < 1 {
			elite = 1
		}
		next := make([]Individual, 0, p.PopulationSize)
		for i := 0; i < elite; i++ {
			next = append(next, Individual{Spec: pop[i].Spec.Clone(), Fitness: pop[i].Fitness})
		}
		for len(next) < p.PopulationSize {
			a := tournament(pop, src, p.TournamentSize)
			b := tournament(pop, src, p.TournamentSize)
			child := breed(a.Spec, b.Spec, src, p)
			next = append(next, Individual{Spec: child})
		}
		pop = next
	}

	res.Population = pop
	res.Best = pop[0]
	res.Evals = cache.misses()
	return res, nil
}

// sanitizeFitness maps NaN fitness to +Inf. NaN violates the ordering
// contract of sortPopulation's comparator (NaN compares false against
// everything, so sort.SliceStable would silently corrupt survivor
// selection); +Inf keeps degenerate candidates strictly last.
func sanitizeFitness(pop []Individual) {
	for i := range pop {
		if math.IsNaN(pop[i].Fitness) {
			pop[i].Fitness = math.Inf(1)
		}
	}
}

// sortPopulation orders by fitness ascending with a deterministic tie-break
// on the spec rendering, so searches are reproducible across runs.
func sortPopulation(pop []Individual) {
	sort.SliceStable(pop, func(i, j int) bool {
		if pop[i].Fitness != pop[j].Fitness { //hslint:ignore floateq exact ordering comparator over clamped (NaN-free) fitness values; a tolerance here would break sort transitivity
			return pop[i].Fitness < pop[j].Fitness
		}
		return pop[i].Spec.String() < pop[j].Spec.String()
	})
}

// tournament picks the best of k random individuals.
func tournament(pop []Individual, src *rng.Source, k int) Individual {
	best := pop[src.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[src.Intn(len(pop))]
		if c.Fitness < best.Fitness {
			best = c
		}
	}
	return best
}

// randomSpec draws a random chromosome. Roughly a third of variables start
// excluded so initial models stay small enough to fit on sparse data.
func randomSpec(numVars int, src *rng.Source, maxInteractions int) regress.Spec {
	s := regress.Spec{Codes: make([]regress.TransformCode, numVars)}
	for v := range s.Codes {
		if src.Bool(0.35) {
			s.Codes[v] = regress.Excluded
		} else {
			s.Codes[v] = regress.TransformCode(1 + src.Intn(int(regress.NumTransformCodes)-1))
		}
	}
	ensureNonEmpty(&s, src)
	n := src.Intn(numVars/2 + 1)
	if n > maxInteractions {
		n = maxInteractions
	}
	for i := 0; i < n; i++ {
		addInteraction(&s, randomInteraction(numVars, src), maxInteractions)
	}
	return s
}

// randomInteraction draws a random pair of distinct variables.
func randomInteraction(numVars int, src *rng.Source) regress.Interaction {
	i := src.Intn(numVars)
	j := src.Intn(numVars - 1)
	if j >= i {
		j++
	}
	return regress.Interaction{I: i, J: j}.Canon()
}

// addInteraction appends in if absent and under the cap, reporting success.
func addInteraction(s *regress.Spec, in regress.Interaction, cap int) bool {
	in = in.Canon()
	if len(s.Interactions) >= cap {
		return false
	}
	for _, e := range s.Interactions {
		if e.Canon() == in {
			return false
		}
	}
	s.Interactions = append(s.Interactions, in)
	return true
}

// ensureNonEmpty guarantees at least one included variable.
func ensureNonEmpty(s *regress.Spec, src *rng.Source) {
	for _, c := range s.Codes {
		if c != regress.Excluded {
			return
		}
	}
	s.Codes[src.Intn(len(s.Codes))] = regress.Linear
}

// breed clones parent a and applies the paper's crossover and mutation
// operators against parent b.
func breed(a, b regress.Spec, src *rng.Source, p Params) regress.Spec {
	child := a.Clone()
	numVars := len(child.Codes)

	// C1: single variable exchanged between chromosomes.
	if src.Bool(p.CrossoverProb) {
		v := src.Intn(numVars)
		child.Codes[v] = b.Codes[v]
	}
	// C2: interaction exchanged between chromosomes.
	if src.Bool(p.CrossoverProb) && len(child.Interactions) > 0 && len(b.Interactions) > 0 {
		k := src.Intn(len(child.Interactions))
		child.Interactions[k] = b.Interactions[src.Intn(len(b.Interactions))].Canon()
		dedupeInteractions(&child)
	}
	// C3: interaction created from single variables of the two parents.
	if src.Bool(p.CrossoverProb) {
		va := randomIncludedVar(a, src)
		vb := randomIncludedVar(b, src)
		if va >= 0 && vb >= 0 && va != vb {
			addInteraction(&child, regress.Interaction{I: va, J: vb}, p.MaxInteractions)
		}
	}
	// M1: interaction randomly changed.
	if src.Bool(p.MutationProb) && len(child.Interactions) > 0 {
		k := src.Intn(len(child.Interactions))
		child.Interactions[k] = randomInteraction(numVars, src)
		dedupeInteractions(&child)
	}
	// M2: single variable randomly changed.
	if src.Bool(p.MutationProb) {
		v := src.Intn(numVars)
		child.Codes[v] = regress.TransformCode(src.Intn(int(regress.NumTransformCodes)))
	}

	ensureNonEmpty(&child, src)
	return child
}

// randomIncludedVar returns a random non-excluded variable index of s, or -1.
func randomIncludedVar(s regress.Spec, src *rng.Source) int {
	var included []int
	for v, c := range s.Codes {
		if c != regress.Excluded {
			included = append(included, v)
		}
	}
	if len(included) == 0 {
		return -1
	}
	return included[src.Intn(len(included))]
}

// dedupeInteractions removes duplicate pairs, keeping first occurrences.
func dedupeInteractions(s *regress.Spec) {
	seen := make(map[regress.Interaction]bool, len(s.Interactions))
	out := s.Interactions[:0]
	for _, in := range s.Interactions {
		c := in.Canon()
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	s.Interactions = out
}

// fitnessCache memoizes evaluations and fans them out across workers.
type fitnessCache struct {
	eval    Evaluator
	workers int

	mu    sync.Mutex
	known map[string]float64
	miss  int
}

// maxKnownSpecs caps the memo table. A cache entry is pure memoization —
// fitness is deterministic per spec — so when a long search (or a re-specify
// loop reusing one cache) crosses the cap the table is flushed wholesale and
// rebuilt; recomputation is exact, only the miss counter moves. The cap is
// far above a single search's working set (generations x population), so
// within one search the flush never fires and convergence is untouched.
const maxKnownSpecs = 1 << 15

func newFitnessCache(eval Evaluator, workers int) *fitnessCache {
	return &fitnessCache{eval: eval, workers: workers, known: make(map[string]float64)}
}

// specKey renders a spec to a canonical cache key. It runs once per
// chromosome per generation on the fitness hot path, so it builds the key in
// one reused byte buffer (strconv appends, no fmt) and canonicalizes the
// interaction order with an in-place insertion sort on stack scratch instead
// of an allocated slice and sort.Slice closure.
func specKey(s regress.Spec) string {
	buf := make([]byte, 0, 2*len(s.Codes)+8*len(s.Interactions))
	for _, c := range s.Codes {
		buf = strconv.AppendUint(buf, uint64(c), 10)
		buf = append(buf, ',')
	}
	var stack [24]regress.Interaction // covers the default MaxInteractions
	ins := stack[:0]
	if len(s.Interactions) > len(stack) {
		ins = make([]regress.Interaction, 0, len(s.Interactions))
	}
	for _, in := range s.Interactions {
		c := in.Canon()
		pos := len(ins)
		ins = append(ins, c)
		for pos > 0 && (ins[pos-1].I > c.I || (ins[pos-1].I == c.I && ins[pos-1].J > c.J)) {
			ins[pos] = ins[pos-1]
			pos--
		}
		ins[pos] = c
	}
	for _, in := range ins {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(in.I), 10)
		buf = append(buf, '-')
		buf = strconv.AppendInt(buf, int64(in.J), 10)
	}
	return string(buf)
}

func (fc *fitnessCache) misses() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.miss
}

// safeFitness evaluates one spec with panic isolation: a panicking Evaluator
// yields +Inf fitness and an error wrapping ErrEvalPanic instead of killing
// the process. NaN fitness (singular fits, corrupt profiles) is sanitized to
// +Inf so downstream sorting keeps a strict weak order.
func safeFitness(eval Evaluator, spec regress.Spec) (f float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			f = math.Inf(1)
			err = fmt.Errorf("%w: %v", ErrEvalPanic, r)
		}
	}()
	f = eval.Fitness(spec)
	if math.IsNaN(f) {
		f = math.Inf(1)
	}
	return f, nil
}

// scoreAll fills in Fitness for every individual, evaluating cache misses in
// parallel. On context cancellation or an evaluator panic it stops
// dispatching, waits for in-flight evaluations, marks every unevaluated
// individual +Inf, and returns the first error; already-evaluated
// individuals (and cache hits, which include the elites) keep real fitness.
func (fc *fitnessCache) scoreAll(ctx context.Context, pop []Individual) error {
	type job struct {
		idx int
		key string
	}
	var jobs []job
	fc.mu.Lock()
	for i := range pop {
		key := specKey(pop[i].Spec)
		if f, ok := fc.known[key]; ok {
			pop[i].Fitness = f
		} else {
			jobs = append(jobs, job{idx: i, key: key})
		}
	}
	fc.mu.Unlock()
	if len(jobs) == 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrCancelled, err)
		}
		return nil
	}

	// Deduplicate identical pending specs so each is evaluated once.
	pending := make(map[string][]int)
	var order []string
	for _, j := range jobs {
		if _, ok := pending[j.key]; !ok {
			order = append(order, j.key)
		}
		pending[j.key] = append(pending[j.key], j.idx)
	}

	sem := make(chan struct{}, fc.workers)
	var wg sync.WaitGroup
	results := make([]float64, len(order))
	done := make([]bool, len(order)) // completed without panic
	var failMu sync.Mutex
	var failErr error
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}
	failed := func() bool {
		failMu.Lock()
		defer failMu.Unlock()
		return failErr != nil
	}
	for k, key := range order {
		if err := ctx.Err(); err != nil {
			fail(fmt.Errorf("%w: %w", ErrCancelled, err))
		}
		if failed() {
			break // stop dispatching; in-flight workers drain below
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(k int, spec regress.Spec) {
			defer wg.Done()
			defer func() { <-sem }()
			f, err := safeFitness(fc.eval, spec)
			if err != nil {
				fail(err)
				return
			}
			results[k] = f
			done[k] = true
		}(k, pop[pending[key][0]].Spec)
	}
	wg.Wait()

	fc.mu.Lock()
	for k, key := range order {
		if !done[k] {
			// Unevaluated (or panicked): rank strictly last, and do not
			// cache — the fault may be transient.
			for _, idx := range pending[key] {
				pop[idx].Fitness = math.Inf(1)
			}
			continue
		}
		if len(fc.known) >= maxKnownSpecs {
			clear(fc.known) // deterministic flush; entries are pure memoization
		}
		fc.known[key] = results[k]
		fc.miss++
		for _, idx := range pending[key] {
			pop[idx].Fitness = results[k]
		}
	}
	fc.mu.Unlock()
	failMu.Lock()
	defer failMu.Unlock()
	return failErr
}
