package genetic

import (
	"testing"

	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
)

// TestSpecKeyCanonicalizesInteractions: the fitness-cache key must be
// invariant under interaction order and I/J swaps, or equivalent chromosomes
// would be fitted twice.
func TestSpecKeyCanonicalizesInteractions(t *testing.T) {
	base := regress.Spec{
		Codes: []regress.TransformCode{regress.Linear, 0, regress.Spline3, regress.Cubic},
		Interactions: []regress.Interaction{
			{I: 0, J: 2}, {I: 3, J: 1}, {I: 2, J: 3},
		},
	}
	perm := regress.Spec{
		Codes: base.Codes,
		Interactions: []regress.Interaction{
			{I: 3, J: 2}, {I: 2, J: 0}, {I: 1, J: 3},
		},
	}
	if specKey(base) != specKey(perm) {
		t.Errorf("permuted interactions changed the key:\n%q\n%q", specKey(base), specKey(perm))
	}
}

func TestSpecKeyDistinguishesSpecs(t *testing.T) {
	src := rng.New(3)
	seen := map[string]regress.Spec{}
	for k := 0; k < 200; k++ {
		spec := randomSpec(6, src, 3)
		key := specKey(spec)
		if prev, ok := seen[key]; ok {
			// A collision is only legal if the canonicalized specs are equal.
			if specKey(prev) != specKey(spec) {
				t.Fatalf("key %q collides for %v and %v", key, prev, spec)
			}
			continue
		}
		seen[key] = spec.Clone()
	}
	// Codes must be position-sensitive: 1,2 vs 2,1.
	a := regress.Spec{Codes: []regress.TransformCode{regress.Linear, regress.Quadratic}}
	b := regress.Spec{Codes: []regress.TransformCode{regress.Quadratic, regress.Linear}}
	if specKey(a) == specKey(b) {
		t.Error("transposed codes produced the same key")
	}
}

// TestSpecKeyManyInteractions exercises the heap-spill path past the stack
// scratch array.
func TestSpecKeyManyInteractions(t *testing.T) {
	var ins, rev []regress.Interaction
	for i := 0; i < 30; i++ {
		ins = append(ins, regress.Interaction{I: 30 - i, J: 31 - i})
	}
	for i := len(ins) - 1; i >= 0; i-- {
		rev = append(rev, regress.Interaction{I: ins[i].J, J: ins[i].I})
	}
	codes := make([]regress.TransformCode, 32)
	a := regress.Spec{Codes: codes, Interactions: ins}
	b := regress.Spec{Codes: codes, Interactions: rev}
	if specKey(a) != specKey(b) {
		t.Error("spilled interaction sort is not canonical")
	}
}
