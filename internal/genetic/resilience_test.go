package genetic

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/regress"
)

// TestNaNFitnessClampedBeforeSort is the regression test for the elitist-sort
// ordering bug: an evaluator returning NaN for some specs used to violate the
// comparator's strict weak order and silently corrupt survivor selection.
// NaN must map to +Inf so degenerate candidates rank strictly last.
func TestNaNFitnessClampedBeforeSort(t *testing.T) {
	eval := EvaluatorFunc(func(s regress.Spec) float64 {
		// Specs with interactions are "degenerate" and fit to NaN.
		if len(s.Interactions) > 0 {
			return math.NaN()
		}
		return 1 + 0.01*float64(s.NumTerms())
	})
	res := search(t, 6, eval, Params{PopulationSize: 30, Generations: 8, Seed: 13})
	for i, ind := range res.Population {
		if math.IsNaN(ind.Fitness) {
			t.Fatalf("individual %d still NaN after sanitization", i)
		}
	}
	if math.IsInf(res.Best.Fitness, 1) || math.IsNaN(res.Best.Fitness) {
		t.Fatalf("best fitness %v: NaN candidates ranked ahead of real ones", res.Best.Fitness)
	}
	if len(res.Best.Spec.Interactions) != 0 {
		t.Error("a NaN-scoring spec won the search")
	}
	// Population must be sorted with all +Inf (former NaN) entries last.
	for i := 1; i < len(res.Population); i++ {
		if res.Population[i].Fitness < res.Population[i-1].Fitness {
			t.Fatalf("population unsorted at %d: %v < %v", i,
				res.Population[i].Fitness, res.Population[i-1].Fitness)
		}
	}
}

func TestSanitizeFitness(t *testing.T) {
	pop := []Individual{{Fitness: 1}, {Fitness: math.NaN()}, {Fitness: math.Inf(1)}, {Fitness: 0}}
	sanitizeFitness(pop)
	if pop[0].Fitness != 1 || pop[3].Fitness != 0 {
		t.Error("finite fitness must be untouched")
	}
	if !math.IsInf(pop[1].Fitness, 1) {
		t.Errorf("NaN not mapped to +Inf: %v", pop[1].Fitness)
	}
	if !math.IsInf(pop[2].Fitness, 1) {
		t.Error("+Inf must remain +Inf")
	}
}

// TestSearchEvaluatorPanicIsolated proves a panicking evaluation cannot kill
// the process: Search recovers, returns the best-so-far population, and
// reports a typed error.
func TestSearchEvaluatorPanicIsolated(t *testing.T) {
	var calls atomic.Int64
	eval := EvaluatorFunc(func(s regress.Spec) float64 {
		// The initial population is ~30 unique random specs, so call 10 is
		// guaranteed to land mid-generation-0 (cache misses only).
		if calls.Add(1) == 10 {
			panic("singular fit exploded")
		}
		return 2 + 0.01*float64(s.NumTerms())
	})
	res, err := Search(context.Background(), 5, eval, Params{
		PopulationSize: 30, Generations: 10, Seed: 4, Workers: 2,
	})
	if !errors.Is(err, ErrEvalPanic) {
		t.Fatalf("err = %v, want ErrEvalPanic", err)
	}
	if res == nil || len(res.Population) == 0 {
		t.Fatal("partial result missing")
	}
	if math.IsInf(res.Best.Fitness, 1) || math.IsNaN(res.Best.Fitness) {
		t.Errorf("best-so-far fitness %v not usable", res.Best.Fitness)
	}
}

// TestSearchCancelledMidRunReturnsPartial cancels deterministically from the
// generation callback and checks the partial-result contract.
func TestSearchCancelledMidRunReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Search(ctx, 6, quadraticTarget(), Params{
		PopulationSize: 20, Generations: 50, Seed: 8,
		OnGeneration: func(gs GenStats) {
			if gs.Gen == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if len(res.History) < 3 {
		t.Fatalf("history %d generations, want >= 3 before cancellation", len(res.History))
	}
	if len(res.History) >= 50 {
		t.Error("cancellation ignored")
	}
	if len(res.Population) != 20 {
		t.Fatalf("partial population %d", len(res.Population))
	}
	if math.IsInf(res.Best.Fitness, 1) || math.IsNaN(res.Best.Fitness) {
		t.Errorf("best-so-far fitness %v not usable", res.Best.Fitness)
	}
	// The partial best must match the last completed generation's best.
	if got, want := res.Best.Fitness, res.History[len(res.History)-1].Best; math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("partial best %v != last scored generation best %v", got, want)
	}
}

// TestSearchDeadlineCancelsWithinGeneration: with a per-evaluation delay, an
// expired Params.Deadline must stop the search within roughly one generation
// rather than running all 50.
func TestSearchDeadlineCancelsWithinGeneration(t *testing.T) {
	eval := EvaluatorFunc(func(s regress.Spec) float64 {
		time.Sleep(3 * time.Millisecond)
		return 1 + 0.01*float64(s.NumTerms())
	})
	start := time.Now()
	// Generation 0 alone is ~60 unique evals x 3ms / 2 workers ≈ 90ms, so a
	// 50ms deadline expires mid-generation; the fitness cache cannot help.
	res, err := Search(context.Background(), 6, eval, Params{
		PopulationSize: 60, Generations: 20, Seed: 2, Workers: 2,
		Deadline: 50 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// The deadline plus at most one generation of in-flight drain must stay
	// far below the ~1.8s a full run would need.
	if elapsed > time.Second {
		t.Errorf("search ran %v after a 50ms deadline", elapsed)
	}
	if len(res.Population) == 0 {
		t.Fatal("no partial population")
	}
	if math.IsInf(res.Best.Fitness, 1) {
		t.Error("no usable best-so-far individual before deadline")
	}
}

// TestSearchCancelledBeforeStart: a context dead on arrival still yields a
// non-nil Result whose unevaluated individuals rank as +Inf.
func TestSearchCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Search(ctx, 4, quadraticTarget(), Params{PopulationSize: 10, Generations: 5, Seed: 1})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res == nil || len(res.Population) != 10 {
		t.Fatal("expected a full-size unevaluated population")
	}
	for _, ind := range res.Population {
		if !math.IsInf(ind.Fitness, 1) {
			t.Fatalf("unevaluated individual carries fitness %v", ind.Fitness)
		}
	}
}

func TestStepwisePanicReturnsPartialBest(t *testing.T) {
	var calls atomic.Int64
	eval := EvaluatorFunc(func(s regress.Spec) float64 {
		if calls.Add(1) == 20 {
			panic("boom")
		}
		return quadraticTarget().Fitness(s)
	})
	res, err := Stepwise(context.Background(), 6, eval, 500)
	if !errors.Is(err, ErrEvalPanic) {
		t.Fatalf("err = %v, want ErrEvalPanic", err)
	}
	if res == nil || res.Evals == 0 {
		t.Fatal("partial result missing")
	}
	if math.IsInf(res.Best.Fitness, 1) {
		t.Error("no best-so-far individual retained")
	}
}

func TestStepwiseCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	eval := EvaluatorFunc(func(s regress.Spec) float64 {
		if calls.Add(1) == 15 {
			cancel()
		}
		return quadraticTarget().Fitness(s)
	})
	res, err := Stepwise(ctx, 6, eval, 500)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Evals >= 500 || res.Evals < 15 {
		t.Errorf("evals %d: cancellation not honored promptly", res.Evals)
	}
}

// TestSearchDeterminismUnaffectedByPanicMachinery: the panic-isolation path
// must not perturb healthy searches (same seeds, same results as before).
func TestSearchDeterminismUnaffectedByPanicMachinery(t *testing.T) {
	a := search(t, 5, quadraticTarget(), Params{PopulationSize: 16, Generations: 6, Seed: 77, Workers: 3})
	b := search(t, 5, quadraticTarget(), Params{PopulationSize: 16, Generations: 6, Seed: 77, Workers: 1})
	if a.Best.Spec.String() != b.Best.Spec.String() || math.Float64bits(a.Best.Fitness) != math.Float64bits(b.Best.Fitness) {
		t.Errorf("worker-count-dependent result: %v vs %v", a.Best, b.Best)
	}
}
