package genetic

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
)

// search runs Search with a background context and fails the test on error —
// the common case for tests exercising healthy evaluators.
func search(t *testing.T, numVars int, eval Evaluator, p Params) *Result {
	t.Helper()
	res, err := Search(context.Background(), numVars, eval, p)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return res
}

// quadraticTarget builds an evaluator whose optimum is a known spec: it
// rewards including variables 0 and 1 with a quadratic-or-better transform
// and the 0-1 interaction, and penalizes model size. The landscape is smooth
// enough for the GA to find quickly and strict enough that random specs
// rarely score well.
func quadraticTarget() Evaluator {
	return EvaluatorFunc(func(s regress.Spec) float64 {
		score := 3.0
		if s.Codes[0] >= regress.Quadratic {
			score--
		}
		if s.Codes[1] != regress.Excluded {
			score--
		}
		for _, in := range s.Interactions {
			if in.Canon() == (regress.Interaction{I: 0, J: 1}) {
				score--
				break
			}
		}
		// Parsimony pressure.
		return score + 0.01*float64(s.NumTerms())
	})
}

func TestSearchConvergesToKnownOptimum(t *testing.T) {
	res := search(t, 6, quadraticTarget(), Params{
		PopulationSize: 40, Generations: 25, Seed: 7,
	})
	best := res.Best
	if best.Spec.Codes[0] < regress.Quadratic {
		t.Errorf("var 0 code %v, want >= quadratic", best.Spec.Codes[0])
	}
	if best.Spec.Codes[1] == regress.Excluded {
		t.Error("var 1 excluded in best model")
	}
	found := false
	for _, in := range best.Spec.Interactions {
		if in.Canon() == (regress.Interaction{I: 0, J: 1}) {
			found = true
		}
	}
	if !found {
		t.Error("best model lacks the rewarded interaction")
	}
	if best.Fitness > 0.4 {
		t.Errorf("best fitness %v, want near 0 + parsimony", best.Fitness)
	}
}

func TestSearchDeterministicGivenSeed(t *testing.T) {
	a := search(t, 5, quadraticTarget(), Params{PopulationSize: 20, Generations: 8, Seed: 3, Workers: 4})
	b := search(t, 5, quadraticTarget(), Params{PopulationSize: 20, Generations: 8, Seed: 3, Workers: 1})
	if math.Float64bits(a.Best.Fitness) != math.Float64bits(b.Best.Fitness) {
		t.Errorf("same-seed searches differ: %v vs %v", a.Best.Fitness, b.Best.Fitness)
	}
	if a.Best.Spec.String() != b.Best.Spec.String() {
		t.Errorf("same-seed best specs differ:\n%s\n%s", a.Best.Spec, b.Best.Spec)
	}
}

func TestBestFitnessMonotone(t *testing.T) {
	// With elitism, per-generation best fitness never worsens.
	res := search(t, 8, quadraticTarget(), Params{PopulationSize: 30, Generations: 15, Seed: 11})
	prev := math.Inf(1)
	for _, gs := range res.History {
		if gs.Best > prev+1e-12 {
			t.Fatalf("generation %d best %v worse than previous %v", gs.Gen, gs.Best, prev)
		}
		prev = gs.Best
	}
	if len(res.History) != 15 {
		t.Errorf("history length %d", len(res.History))
	}
}

func TestFitnessCacheAvoidsRecomputation(t *testing.T) {
	var calls int64
	eval := EvaluatorFunc(func(s regress.Spec) float64 {
		atomic.AddInt64(&calls, 1)
		return 1
	})
	res := search(t, 4, eval, Params{PopulationSize: 25, Generations: 10, Seed: 5})
	// With constant fitness and elitism, identical specs recur constantly;
	// the cache must keep evaluations well below pop*generations.
	if int(calls) != res.Evals {
		t.Errorf("reported evals %d != actual calls %d", res.Evals, calls)
	}
	if int(calls) >= 25*10 {
		t.Errorf("cache ineffective: %d evaluations", calls)
	}
}

func TestBreedPreservesValidity(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		p := Params{}.withDefaults()
		numVars := 2 + src.Intn(10)
		a := randomSpec(numVars, src, p.MaxInteractions)
		b := randomSpec(numVars, src, p.MaxInteractions)
		for i := 0; i < 10; i++ {
			child := breed(a, b, src, p)
			if child.Validate(numVars) != nil {
				return false
			}
			// No duplicate interactions.
			seen := map[regress.Interaction]bool{}
			for _, in := range child.Interactions {
				c := in.Canon()
				if seen[c] {
					return false
				}
				seen[c] = true
			}
			// At least one variable included.
			if child.NumTerms() == 0 {
				return false
			}
			a = child
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomSpecValid(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		numVars := 1 + src.Intn(20)
		s := randomSpec(numVars, src, 24)
		return s.Validate(numVars) == nil && s.NumTerms() > 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialPopulationSeedsSearch(t *testing.T) {
	// Seed with the known optimum: generation 0 should already contain it.
	opt := regress.Spec{Codes: make([]regress.TransformCode, 6)}
	opt.Codes[0] = regress.Quadratic
	opt.Codes[1] = regress.Linear
	opt.Interactions = []regress.Interaction{{I: 0, J: 1}}
	var gen0Best float64
	search(t, 6, quadraticTarget(), Params{
		PopulationSize: 20, Generations: 2, Seed: 9,
		Initial: []regress.Spec{opt},
		OnGeneration: func(gs GenStats) {
			if gs.Gen == 0 {
				gen0Best = gs.Best
			}
		},
	})
	if gen0Best > 0.2 {
		t.Errorf("warm start ignored: generation-0 best %v", gen0Best)
	}
}

func TestInteractionFrequencySymmetric(t *testing.T) {
	inds := []Individual{
		{Spec: regress.Spec{
			Codes:        make([]regress.TransformCode, 4),
			Interactions: []regress.Interaction{{I: 0, J: 2}, {I: 2, J: 0}, {I: 1, J: 3}},
		}},
	}
	freq := InteractionFrequency(inds, 4)
	if freq[0][2] != 2 || freq[2][0] != 2 {
		t.Errorf("canonical duplicates should both count: %v", freq)
	}
	if freq[1][3] != 1 || freq[3][1] != 1 {
		t.Errorf("matrix not symmetric: %v", freq)
	}
}

func TestTransformConsensus(t *testing.T) {
	mk := func(codes ...regress.TransformCode) Individual {
		return Individual{Spec: regress.Spec{Codes: codes}}
	}
	inds := []Individual{
		mk(regress.Linear, regress.Spline3),
		mk(regress.Linear, regress.Spline3),
		mk(regress.Cubic, regress.Excluded),
	}
	consensus := TransformConsensus(inds, 2)
	if consensus[0] != regress.Linear || consensus[1] != regress.Spline3 {
		t.Errorf("consensus = %v", consensus)
	}
	votes := TransformVote(inds, 2)
	if votes[0][int(regress.Linear)] != 2 || votes[1][int(regress.Excluded)] != 1 {
		t.Errorf("votes = %v", votes)
	}
}

func TestStepwiseImproves(t *testing.T) {
	res, err := Stepwise(context.Background(), 6, quadraticTarget(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness >= 3 {
		t.Errorf("stepwise made no progress: %v", res.Best.Fitness)
	}
	if res.Evals == 0 || res.Evals > 500 {
		t.Errorf("stepwise evals %d out of budget", res.Evals)
	}
	if res.Best.Spec.Validate(6) != nil {
		t.Error("stepwise produced invalid spec")
	}
}

func TestTopK(t *testing.T) {
	res := search(t, 4, quadraticTarget(), Params{PopulationSize: 10, Generations: 3, Seed: 1})
	top := res.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	if top[0].Fitness > top[1].Fitness || top[1].Fitness > top[2].Fitness {
		t.Error("TopK not sorted")
	}
	if len(res.TopK(100)) != 10 {
		t.Error("TopK should clamp to population size")
	}
}
