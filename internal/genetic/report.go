package genetic

import "hsmodel/internal/regress"

// InteractionFrequency counts how often each pairwise interaction appears in
// the given individuals — the two-dimensional histogram of Figure 4 ("how
// often a particular pairwise interaction appears in the 50 best models").
// The returned matrix is symmetric with freq[i][j] == freq[j][i].
func InteractionFrequency(inds []Individual, numVars int) [][]int {
	freq := make([][]int, numVars)
	for i := range freq {
		freq[i] = make([]int, numVars)
	}
	for _, ind := range inds {
		for _, in := range ind.Spec.Interactions {
			c := in.Canon()
			freq[c.I][c.J]++
			freq[c.J][c.I]++
		}
	}
	return freq
}

// TransformVote tallies, per variable, how many of the given individuals use
// each transform code — the raw data behind Table 3's converged
// transformation assignments.
func TransformVote(inds []Individual, numVars int) [][int(regress.NumTransformCodes)]int {
	votes := make([][int(regress.NumTransformCodes)]int, numVars)
	for _, ind := range inds {
		for v, c := range ind.Spec.Codes {
			votes[v][c]++
		}
	}
	return votes
}

// TransformConsensus returns, per variable, the most common transform code
// among the given individuals (ties break toward the simpler transform),
// reproducing Table 3's per-variable summary.
func TransformConsensus(inds []Individual, numVars int) []regress.TransformCode {
	votes := TransformVote(inds, numVars)
	out := make([]regress.TransformCode, numVars)
	for v := range out {
		best := regress.Excluded
		bestN := votes[v][0]
		for c := 1; c < int(regress.NumTransformCodes); c++ {
			if votes[v][c] > bestN {
				bestN = votes[v][c]
				best = regress.TransformCode(c)
			}
		}
		out[v] = best
	}
	return out
}
