package genetic

import (
	"context"
	"fmt"
	"math"

	"hsmodel/internal/regress"
)

// Stepwise is the baseline the paper argues against: forward stepwise model
// construction that considers one term at a time ("Unlike stepwise
// regression, which considers only one term at a time, crossovers and
// mutation in genetic algorithms support a rapid search of possible
// models"). It greedily adds the single variable-transform or interaction
// whose addition most improves fitness, stopping when no candidate improves
// or the evaluation budget is exhausted.
//
// It shares the Evaluator contract with Search so the two are directly
// comparable at equal evaluation budgets (the ablation bench does exactly
// that), and the same failure contract: cancellation returns the best-so-far
// Result plus an error wrapping ErrCancelled, and a panicking Evaluator
// yields an error wrapping ErrEvalPanic instead of process death. The
// returned Result is never nil.
func Stepwise(ctx context.Context, numVars int, eval Evaluator, maxEvals int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec := regress.Spec{Codes: make([]regress.TransformCode, numVars)}
	res := &Result{}
	evals := 0

	best := Individual{Fitness: math.Inf(1)}
	finish := func(cause error) (*Result, error) {
		res.Best = best
		res.Population = []Individual{best}
		res.Evals = evals
		if cause != nil {
			cause = fmt.Errorf("stepwise after %d evals: %w", evals, cause)
		}
		return res, cause
	}
	// score evaluates one candidate with panic isolation; a non-nil error
	// aborts the search with the partial best.
	score := func(s regress.Spec) (float64, error) {
		if err := ctx.Err(); err != nil {
			return math.Inf(1), fmt.Errorf("%w: %w", ErrCancelled, err)
		}
		evals++
		return safeFitness(eval, s)
	}

	// Start from the best single linear term.
	for v := 0; v < numVars && evals < maxEvals; v++ {
		s := spec.Clone()
		s.Codes[v] = regress.Linear
		f, err := score(s)
		if err != nil {
			return finish(err)
		}
		if f < best.Fitness {
			best = Individual{Spec: s, Fitness: f}
		}
	}

	for evals < maxEvals {
		improved := false
		cur := best

		// Candidate moves: upgrade/add a variable transform...
		for v := 0; v < numVars && evals < maxEvals; v++ {
			for c := regress.Linear; c <= regress.Spline3; c++ {
				if cur.Spec.Codes[v] == c {
					continue
				}
				s := cur.Spec.Clone()
				s.Codes[v] = c
				f, err := score(s)
				if err != nil {
					return finish(err)
				}
				if f < best.Fitness {
					best = Individual{Spec: s, Fitness: f}
					improved = true
				}
				if evals >= maxEvals {
					break
				}
			}
		}
		// ...or add one interaction between included variables.
		for i := 0; i < numVars && evals < maxEvals; i++ {
			if cur.Spec.Codes[i] == regress.Excluded {
				continue
			}
			for j := i + 1; j < numVars && evals < maxEvals; j++ {
				if cur.Spec.Codes[j] == regress.Excluded {
					continue
				}
				s := cur.Spec.Clone()
				if !addInteraction(&s, regress.Interaction{I: i, J: j}, 1<<30) {
					continue
				}
				f, err := score(s)
				if err != nil {
					return finish(err)
				}
				if f < best.Fitness {
					best = Individual{Spec: s, Fitness: f}
					improved = true
				}
			}
		}

		res.History = append(res.History, GenStats{
			Gen: len(res.History), Best: best.Fitness, Evals: evals,
		})
		if !improved {
			break
		}
	}

	return finish(nil)
}
