package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hsmodel/internal/rng"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "Mean")
	almost(t, Variance(xs), 32.0/7, 1e-12, "Variance")
	almost(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "StdDev")
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	almost(t, Quantile(xs, 0), 1, 0, "q0")
	almost(t, Quantile(xs, 1), 5, 0, "q1")
	almost(t, Quantile(xs, 0.5), 3, 0, "q50")
	almost(t, Quantile(xs, 0.25), 2, 0, "q25")
	// Interpolation between order statistics (R type 7).
	almost(t, Quantile([]float64{1, 2}, 0.5), 1.5, 1e-12, "interpolated median")
	almost(t, Quantile([]float64{0, 10}, 0.3), 3, 1e-12, "interpolated q30")
}

func TestQuantileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{5, 1, 3}
	_ = Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianOddEven(t *testing.T) {
	almost(t, Median([]float64{3, 1, 2}), 2, 0, "odd median")
	almost(t, Median([]float64{4, 1, 3, 2}), 2.5, 1e-12, "even median")
}

func TestBoxplot(t *testing.T) {
	b := Boxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.N != 9 {
		t.Errorf("boxplot %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles %+v", b)
	}
	if Boxplot(nil).N != 0 {
		t.Error("empty boxplot should be zero")
	}
}

func TestSkewnessSign(t *testing.T) {
	rightTail := []float64{1, 1, 1, 2, 2, 3, 10, 50}
	if Skewness(rightTail) <= 0 {
		t.Error("right-tailed data should have positive skewness")
	}
	leftTail := []float64{-50, -10, -3, -2, -2, -1, -1, -1}
	if Skewness(leftTail) >= 0 {
		t.Error("left-tailed data should have negative skewness")
	}
	symmetric := []float64{-2, -1, 0, 1, 2}
	almost(t, Skewness(symmetric), 0, 1e-12, "symmetric skewness")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Total != 10 {
		t.Fatalf("total %d", h.Total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d count %d, want 2", i, c)
		}
	}
	almost(t, h.BinCenter(0), 0.9, 1e-12, "bin center")
}

func TestHistogramModesBimodal(t *testing.T) {
	var xs []float64
	src := rng.New(5)
	for i := 0; i < 500; i++ {
		xs = append(xs, src.Normal(0.5, 0.05), src.Normal(1.0, 0.05))
	}
	h := NewHistogram(xs, 20)
	modes := h.Modes(20)
	if len(modes) != 2 {
		t.Fatalf("expected 2 modes, got %d (%v)", len(modes), modes)
	}
	almost(t, h.BinCenter(modes[0]), 0.5, 0.1, "first mode")
	almost(t, h.BinCenter(modes[1]), 1.0, 0.1, "second mode")
}

func TestPearsonKnownCases(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	almost(t, Pearson(x, []float64{2, 4, 6, 8, 10}), 1, 1e-12, "perfect positive")
	almost(t, Pearson(x, []float64{10, 8, 6, 4, 2}), -1, 1e-12, "perfect negative")
	almost(t, Pearson(x, []float64{3, 3, 3, 3, 3}), 0, 0, "zero variance")
}

func TestSpearmanMonotoneInvariance(t *testing.T) {
	src := rng.New(9)
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = src.Float64() * 10
		y[i] = x[i] + src.Normal(0, 0.5)
	}
	base := Spearman(x, y)
	// Apply a strictly monotone transform to y: ranks are unchanged.
	ty := make([]float64, len(y))
	for i, v := range y {
		ty[i] = math.Exp(v / 3)
	}
	almost(t, Spearman(x, ty), base, 1e-12, "Spearman under monotone transform")
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		almost(t, r[i], want[i], 1e-12, "rank")
	}
}

func TestAPEMetrics(t *testing.T) {
	pred := []float64{110, 90, 100}
	truth := []float64{100, 100, 100}
	almost(t, MedianAbsPctError(pred, truth), 0.1, 1e-12, "medAPE")
	almost(t, MeanAbsPctError(pred, truth), 0.2/3, 1e-12, "meanAPE")
	// Zero truth entries are skipped, not divided by.
	errs := AbsPctErrors([]float64{1, 2}, []float64{0, 1})
	if len(errs) != 1 {
		t.Fatalf("zero-truth entry not skipped: %v", errs)
	}
}

func TestChoosePowerStabilizesLogNormal(t *testing.T) {
	src := rng.New(21)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = src.LogNormal(5, 1.2)
	}
	p := ChoosePower(xs)
	if p >= 1 {
		t.Fatalf("ChoosePower on long-tailed data = %v, want < 1", p)
	}
	before := math.Abs(Skewness(xs))
	tr := append([]float64(nil), xs...)
	ApplyPower(tr, p)
	after := math.Abs(Skewness(tr))
	if after >= before {
		t.Errorf("transform did not reduce skewness: %v -> %v", before, after)
	}
}

func TestChoosePowerIdentityForSymmetric(t *testing.T) {
	src := rng.New(22)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = 100 + src.Normal(0, 5)
	}
	if p := ChoosePower(xs); p != 1 {
		t.Errorf("ChoosePower on symmetric data = %v, want 1", p)
	}
}

func TestApplyPowerClampsNegatives(t *testing.T) {
	xs := []float64{-4, 9}
	ApplyPower(xs, 0.5)
	if xs[0] != 0 || xs[1] != 3 {
		t.Errorf("ApplyPower = %v", xs)
	}
}

func TestQuantilePropertyMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		xs := make([]float64, 20+src.Intn(50))
		for i := range xs {
			xs[i] = src.Float64() * 100
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonSymmetryProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n := 10 + src.Intn(40)
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i] = src.Float64()
			y[i] = src.Float64()
		}
		a, b := Pearson(x, y), Pearson(y, x)
		return math.Abs(a-b) < 1e-12 && a >= -1-1e-12 && a <= 1+1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}
