// Package stats implements the descriptive and inferential statistics the
// paper's modeling methodology relies on: quantiles and boxplot summaries
// for error distributions (Figures 7, 10, 14), Pearson and Spearman
// correlation between predicted and true performance (Figure 8), histogram
// construction (Figures 3 and 9), skewness-driven ladder-of-powers selection
// of variance-stabilizing transformations (Section 3.1), and the error
// metrics used as genetic-search fitness.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer than
// two observations are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Skewness returns the adjusted Fisher-Pearson sample skewness. Long right
// tails — the paper's "infrequent instances of large values" — give large
// positive skewness; a good variance-stabilizing transform drives it toward
// zero.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (R type-7, the R default the paper's
// toolchain used). It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	h := q * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s) {
		return s[lo]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantiles returns several quantiles of xs in one sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// BoxplotSummary is the five-number summary plus mean used to report error
// distributions the way the paper's boxplot figures do.
type BoxplotSummary struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Boxplot computes the five-number summary of xs.
func Boxplot(xs []float64) BoxplotSummary {
	if len(xs) == 0 {
		return BoxplotSummary{}
	}
	qs := Quantiles(xs, 0, 0.25, 0.5, 0.75, 1)
	return BoxplotSummary{
		Min: qs[0], Q1: qs[1], Median: qs[2], Q3: qs[3], Max: qs[4],
		Mean: Mean(xs), N: len(xs),
	}
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram of xs with the given number of bins
// spanning the observed range. Values equal to the maximum land in the last
// bin.
func NewHistogram(xs []float64, bins int) Histogram {
	if bins <= 0 {
		bins = 1
	}
	h := Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Lo, h.Hi = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Lo {
			h.Lo = x
		}
		if x > h.Hi {
			h.Hi = x
		}
	}
	width := (h.Hi - h.Lo) / float64(bins)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - h.Lo) / width)
		}
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	if len(h.Counts) == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Modes returns the indices of local maxima in the histogram counts,
// ignoring bins below minCount. Used to detect the bimodal bwaves CPI
// distribution of Figure 9(c).
func (h Histogram) Modes(minCount int) []int {
	var modes []int
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		left := 0
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := 0
		if i+1 < len(h.Counts) {
			right = h.Counts[i+1]
		}
		if c >= left && c > right || c > left && c >= right {
			modes = append(modes, i)
		}
	}
	// Collapse adjacent plateau bins into a single mode.
	var out []int
	for _, m := range modes {
		if len(out) > 0 && m == out[len(out)-1]+1 {
			continue
		}
		out = append(out, m)
	}
	return out
}

// Pearson returns the Pearson linear correlation coefficient between xs and
// ys. It returns 0 when either input has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient, the paper's
// preferred accuracy measure "in the context of optimization" because hill
// climbing only needs the model to order configurations correctly.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (ties receive the mean of the
// ranks they span), 1-based as in conventional rank statistics.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] { //hslint:ignore floateq tie-group detection over sorted data values is semantic equality; Float64bits would split the -0/+0 tie
			j++
		}
		// Mean rank of the tie group [i, j].
		r := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = r
		}
		i = j + 1
	}
	return ranks
}

// AbsPctErrors returns |pred-true|/|true| for each pair, skipping entries
// with true value zero.
func AbsPctErrors(pred, truth []float64) []float64 {
	if len(pred) != len(truth) {
		panic("stats: AbsPctErrors length mismatch")
	}
	out := make([]float64, 0, len(pred))
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		out = append(out, math.Abs(pred[i]-truth[i])/math.Abs(truth[i]))
	}
	return out
}

// MedianAbsPctError returns the median absolute percentage error between
// predictions and true values — the paper's headline accuracy metric.
func MedianAbsPctError(pred, truth []float64) float64 {
	errs := AbsPctErrors(pred, truth)
	if len(errs) == 0 {
		return 0
	}
	return Median(errs)
}

// MeanAbsPctError returns the mean absolute percentage error.
func MeanAbsPctError(pred, truth []float64) float64 {
	errs := AbsPctErrors(pred, truth)
	if len(errs) == 0 {
		return 0
	}
	return Mean(errs)
}
