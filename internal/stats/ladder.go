package stats

import "math"

// The ladder of powers (Tukey; exposed as `ladder` in Stata, which the paper
// cites for choosing its variance-stabilizing exponent) searches a small set
// of power transformations x -> x^p and picks the one whose transformed
// sample is most symmetric. The paper's Figure 3 example selects p = 1/5 for
// the 256-byte sum-of-reuse-distances characteristic.

// LadderPowers is the candidate exponent set searched by ChoosePower. The
// paper restricts itself to x^(1/n) with n >= 1; we include the standard
// Tukey rungs below 1 plus identity.
var LadderPowers = []float64{1, 1.0 / 2, 1.0 / 3, 1.0 / 4, 1.0 / 5, 1.0 / 6, 1.0 / 8}

// ChoosePower returns the exponent p from LadderPowers minimizing the
// absolute skewness of {x^p}. Inputs must be non-negative; negative values
// are clamped to zero before transforming (software characteristics are
// counts and distances, hence non-negative by construction).
func ChoosePower(xs []float64) float64 {
	if len(xs) < 3 {
		return 1
	}
	best := 1.0
	bestSkew := math.Inf(1)
	buf := make([]float64, len(xs))
	for _, p := range LadderPowers {
		for i, x := range xs {
			if x < 0 {
				x = 0
			}
			buf[i] = math.Pow(x, p)
		}
		s := math.Abs(Skewness(buf))
		if s < bestSkew {
			bestSkew = s
			best = p
		}
	}
	return best
}

// ApplyPower transforms xs in place by x -> x^p, clamping negatives to zero.
func ApplyPower(xs []float64, p float64) {
	if p == 1 {
		return
	}
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		xs[i] = math.Pow(x, p)
	}
}
