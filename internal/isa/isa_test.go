package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	if !Load.IsMemory() || !Store.IsMemory() {
		t.Error("loads/stores are memory")
	}
	for _, c := range []Class{IntALU, IntMulDiv, FPALU, FPMulDiv, Branch} {
		if c.IsMemory() {
			t.Errorf("%v should not be memory", c)
		}
	}
	if !Branch.IsControl() || IntALU.IsControl() {
		t.Error("control predicate wrong")
	}
}

func TestClassStrings(t *testing.T) {
	names := map[Class]string{
		IntALU: "IntALU", IntMulDiv: "IntMulDiv", FPALU: "FPALU",
		FPMulDiv: "FPMulDiv", Load: "Load", Store: "Store", Branch: "Branch",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(200).String() != "Unknown" {
		t.Error("out-of-range class should stringify as Unknown")
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{
		{Class: IntALU}, {Class: Load, Addr: 64}, {Class: Branch, Taken: true},
	}
	ss := &SliceStream{Insts: insts}
	var got []Inst
	var in Inst
	for ss.Next(&in) {
		got = append(got, in)
	}
	if len(got) != 3 {
		t.Fatalf("drained %d insts", len(got))
	}
	if got[1].Addr != 64 || !got[2].Taken {
		t.Error("stream corrupted instructions")
	}
	if ss.Next(&in) {
		t.Error("exhausted stream should return false")
	}
	ss.Reset()
	if !ss.Next(&in) || in.Class != IntALU {
		t.Error("Reset should rewind")
	}
}

func TestCollect(t *testing.T) {
	insts := make([]Inst, 10)
	for i := range insts {
		insts[i].BrID = uint32(i)
	}
	all := Collect(&SliceStream{Insts: insts}, 0)
	if len(all) != 10 {
		t.Fatalf("Collect(0) = %d insts", len(all))
	}
	some := Collect(&SliceStream{Insts: insts}, 4)
	if len(some) != 4 || some[3].BrID != 3 {
		t.Fatalf("Collect(4) wrong: %v", some)
	}
}
