// Package isa defines the abstract instruction set shared by the synthetic
// workload generators (package trace), the microarchitecture-independent
// shard profiler (package profile), and the out-of-order timing simulator
// (package cpu).
//
// The class taxonomy mirrors Table 1 of the paper: control, floating-point
// ALU, floating-point multiply/divide, integer multiply/divide, integer ALU,
// and memory operations. Loads and stores are distinguished because the
// timing simulator treats them differently (loads stall consumers, stores
// drain through a store buffer), but both count as "memory" in profiles.
package isa

// Class identifies the functional class of an instruction.
type Class uint8

// Instruction classes. The order is load-bearing: profile and cpu index
// per-class arrays by these values.
const (
	IntALU Class = iota
	IntMulDiv
	FPALU
	FPMulDiv
	Load
	Store
	Branch // conditional or unconditional control transfer
	NumClasses
)

var classNames = [NumClasses]string{
	"IntALU", "IntMulDiv", "FPALU", "FPMulDiv", "Load", "Store", "Branch",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "Unknown"
}

// IsMemory reports whether the class accesses data memory.
func (c Class) IsMemory() bool { return c == Load || c == Store }

// IsControl reports whether the class is a control transfer.
func (c Class) IsControl() bool { return c == Branch }

// MaxDepDistance caps the producer→consumer distances carried by an
// instruction. Distances beyond the cap behave as "no dependence" — by then
// the producer has long retired on any Table 2 configuration.
const MaxDepDistance = 256

// Inst is one dynamic instruction. Instructions are generated in program
// order; dependence is expressed as backward distances in the dynamic
// stream, which is exactly the microarchitecture-independent ILP measure the
// paper profiles (x10–x12: "# of instructions between producer and its
// consumer").
type Inst struct {
	Addr     uint64 // data address for Load/Store (byte address)
	PC       uint64 // instruction address (byte address), for i-cache behavior
	BrID     uint32 // static branch identity, for branch prediction
	Dep1     int32  // distance to first operand's producer; 0 = none
	Dep2     int32  // distance to second operand's producer; 0 = none
	Class    Class
	Taken    bool // branch outcome (Branch only)
	BlockEnd bool // last instruction of its basic block
}

// Stream produces a dynamic instruction stream. Implementations must be
// deterministic for a given construction seed so traces can be replayed
// across architectures.
type Stream interface {
	// Next fills in the next instruction and reports whether one was
	// produced. The same *Inst may be reused between calls.
	Next(*Inst) bool
}

// SliceStream adapts a materialized instruction slice to the Stream
// interface.
type SliceStream struct {
	Insts []Inst
	pos   int
}

// Next implements Stream.
func (s *SliceStream) Next(in *Inst) bool {
	if s.pos >= len(s.Insts) {
		return false
	}
	*in = s.Insts[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Collect drains up to max instructions from a stream into a slice.
// A max of 0 collects everything.
func Collect(st Stream, max int) []Inst {
	var out []Inst
	var in Inst
	for st.Next(&in) {
		out = append(out, in)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
