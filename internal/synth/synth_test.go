package synth

import (
	"testing"

	"hsmodel/internal/profile"
	"hsmodel/internal/trace"
)

func profileOf(app *trace.App) profile.Characteristics {
	return profile.Stream(app.ShardStream(0, 30_000), app.Name, 0).X
}

func TestTargetsSteerCharacteristics(t *testing.T) {
	fpHeavy := Benchmark("fp", Target{
		FPFrac: 0.7, MemFrac: 0.15, MeanBB: 8, TakenBias: 0.9,
		ILP: 2, WSBlocks: 4096, Streaming: 0.8, CodeBlocks: 100,
	}, 1)
	intHeavy := Benchmark("int", Target{
		FPFrac: 0.0, MemFrac: 0.3, MeanBB: 5, TakenBias: 0.5,
		ILP: 1, WSBlocks: 1024, Streaming: 0.05, CodeBlocks: 300,
	}, 2)
	pf := profileOf(fpHeavy)
	pi := profileOf(intHeavy)
	fpShareF := pf[profile.XFPALU] + pf[profile.XFPMulDiv]
	fpShareI := pi[profile.XFPALU] + pi[profile.XFPMulDiv]
	if fpShareF < 5*fpShareI+1 {
		t.Errorf("FP target not honored: %v vs %v", fpShareF, fpShareI)
	}
	if pf[profile.XBasicBlock] <= pi[profile.XBasicBlock] {
		t.Error("basic-block target not honored")
	}
	if pf[profile.XTakenBranches]/pf[profile.XControl] <=
		pi[profile.XTakenBranches]/pi[profile.XControl] {
		t.Error("taken-bias target not honored")
	}
}

func TestClamp(t *testing.T) {
	c := Target{FPFrac: 5, MemFrac: -1, MeanBB: 100, ILP: 99, Streaming: 2}.Clamp()
	if c.FPFrac > 0.85 || c.MemFrac < 0.05 || c.MeanBB > 16 || c.ILP > 4 || c.Streaming > 1 {
		t.Errorf("Clamp failed: %+v", c)
	}
	if c.WSBlocks < 64 || c.CodeBlocks < 16 {
		t.Errorf("Clamp floors failed: %+v", c)
	}
}

func TestUniformSweep(t *testing.T) {
	apps := UniformSweep(10, 3)
	if len(apps) != 10 {
		t.Fatalf("%d apps", len(apps))
	}
	names := make(map[string]bool)
	for _, a := range apps {
		if names[a.Name] {
			t.Fatalf("duplicate name %s", a.Name)
		}
		names[a.Name] = true
		if a.TimelineLen() == 0 {
			t.Fatalf("%s has empty timeline", a.Name)
		}
		// Every synthetic benchmark must produce a valid stream.
		p := profileOf(a)
		if p[profile.XControl] <= 0 {
			t.Fatalf("%s produced no control instructions", a.Name)
		}
	}
	// Determinism.
	again := UniformSweep(10, 3)
	if profileOf(apps[4]) != profileOf(again[4]) {
		t.Error("sweep not deterministic")
	}
}

func TestCoverageGapFlagsOutlier(t *testing.T) {
	// bwaves must be farther from the integer crowd than sjeng is
	// (Figure 9's premise).
	var training []profile.Characteristics
	for _, app := range []*trace.App{trace.Astar(), trace.Bzip2(), trace.Hmmer(), trace.Omnetpp()} {
		training = append(training, profileOf(app))
	}
	gapBwaves := CoverageGap(profileOf(trace.Bwaves()), training)
	gapSjeng := CoverageGap(profileOf(trace.Sjeng()), training)
	if gapBwaves <= gapSjeng {
		t.Errorf("bwaves gap %v should exceed sjeng gap %v", gapBwaves, gapSjeng)
	}
	if CoverageGap(profile.Characteristics{}, nil) != 0 {
		t.Error("empty training set should give zero gap")
	}
}

func TestSyntheticAugmentationShrinksGap(t *testing.T) {
	// Adding a uniform synthetic sweep to the training set must bring the
	// nearest-neighbor distance for bwaves down — the Section 4.5 story.
	var training []profile.Characteristics
	for _, app := range []*trace.App{trace.Astar(), trace.Bzip2(), trace.Hmmer(), trace.Omnetpp()} {
		training = append(training, profileOf(app))
	}
	target := profileOf(trace.Bwaves())
	before := CoverageGap(target, training)
	for _, app := range UniformSweep(20, 11) {
		training = append(training, profileOf(app))
	}
	after := CoverageGap(target, training)
	if after >= before {
		t.Errorf("augmentation did not shrink coverage gap: %v -> %v", before, after)
	}
}
