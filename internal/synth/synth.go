// Package synth implements the future-work avenue of Section 4.5: synthetic
// benchmarks with explicit control over software behavior, used to augment
// training data so it covers regions of the software space — like bwaves' —
// that real applications populate only sparsely.
//
// A synthetic benchmark is simply a single-phase trace.App whose phase
// parameters are derived from a target point in characteristic space, so
// profiles can be generated uniformly across the space ("synthetic
// benchmarks provide explicit control on software behavior and enable
// uniform profiling across the software space").
package synth

import (
	"fmt"

	"hsmodel/internal/profile"
	"hsmodel/internal/rng"
	"hsmodel/internal/trace"
)

// Target describes the desired software behavior of a synthetic benchmark
// in rough characteristic terms. Fields are fractions of the non-control
// instruction budget except where noted.
type Target struct {
	FPFrac     float64 // floating-point share (ALU+mul) of non-control mix
	MemFrac    float64 // memory share of non-control mix
	MeanBB     float64 // basic-block size (x13)
	TakenBias  float64 // taken-branch tendency (drives x2)
	ILP        float64 // producer depth multiplier, >1 = looser dependences
	WSBlocks   int     // data working set in 64B blocks (drives x8)
	Streaming  float64 // streaming fraction of memory accesses
	CodeBlocks int     // hot code footprint (drives x9)
}

// Clamp normalizes a target into generator-safe ranges.
func (t Target) Clamp() Target {
	clamp := func(x, lo, hi float64) float64 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}
	t.FPFrac = clamp(t.FPFrac, 0, 0.85)
	t.MemFrac = clamp(t.MemFrac, 0.05, 0.6)
	t.MeanBB = clamp(t.MeanBB, 3, 16)
	t.TakenBias = clamp(t.TakenBias, 0.3, 0.95)
	t.ILP = clamp(t.ILP, 0.5, 4)
	if t.WSBlocks < 64 {
		t.WSBlocks = 64
	}
	t.Streaming = clamp(t.Streaming, 0, 0.95)
	if t.CodeBlocks < 16 {
		t.CodeBlocks = 16
	}
	return t
}

// Benchmark materializes the target as a generator-backed application.
func Benchmark(name string, t Target, seed uint64) *trace.App {
	t = t.Clamp()
	intFrac := 1 - t.FPFrac - t.MemFrac
	if intFrac < 0.05 {
		intFrac = 0.05
	}
	ph := trace.Phase{
		Name: "synthetic",
		Mix: [6]float64{
			0.85 * intFrac,   // IntALU
			0.15 * intFrac,   // IntMulDiv
			0.70 * t.FPFrac,  // FPALU
			0.30 * t.FPFrac,  // FPMulDiv
			0.72 * t.MemFrac, // Load
			0.28 * t.MemFrac, // Store
		},
		MeanBB:         t.MeanBB,
		TakenBias:      t.TakenBias,
		Predictability: 0, // derived from bias and block size
		DepProb1:       0.85,
		DepProb2:       0.4,
		DepDepth: [5]float64{
			2.5 * t.ILP, 4 * t.ILP, 4 * t.ILP, 4 * t.ILP, 2.5 * t.ILP,
		},

		WSBlocks:   t.WSBlocks,
		ReuseFrac:  0.7 - 0.5*t.Streaming,
		ReuseDepth: 50 + float64(t.WSBlocks)/64,
		StreamFrac: t.Streaming,
		CodeBlocks: t.CodeBlocks,
		LoopSpan:   6,
	}
	return &trace.App{Name: name, Seed: seed, Segments: []trace.Segment{
		{Phase: ph, Insts: 10_000_000},
	}}
}

// UniformSweep generates n synthetic benchmarks whose targets tile the
// software space uniformly at random — the coordinated augmentation the
// paper proposes for covering outliers like bwaves.
func UniformSweep(n int, seed uint64) []*trace.App {
	src := rng.New(seed)
	apps := make([]*trace.App, n)
	for i := range apps {
		t := Target{
			FPFrac:     src.Float64() * 0.8,
			MemFrac:    0.1 + src.Float64()*0.4,
			MeanBB:     3 + src.Float64()*12,
			TakenBias:  0.3 + src.Float64()*0.65,
			ILP:        0.5 + src.Float64()*3,
			WSBlocks:   1 << (7 + src.Intn(10)), // 8 KB .. 4 MB
			Streaming:  src.Float64() * 0.9,
			CodeBlocks: 32 + src.Intn(512),
		}
		apps[i] = Benchmark(fmt.Sprintf("synth%03d", i), t, seed^uint64(i*0x9e37+1))
	}
	return apps
}

// CoverageGap measures how far a target application's mean characteristics
// sit from the closest of a set of training applications, normalized by the
// per-characteristic spread across all of them. Large gaps flag outliers
// (bwaves in Figure 9); augmenting training data shrinks the gap.
func CoverageGap(target profile.Characteristics, training []profile.Characteristics) float64 {
	if len(training) == 0 {
		return 0
	}
	// Per-characteristic scale: max-min across all points including target.
	var lo, hi profile.Characteristics
	lo = target
	hi = target
	for _, tr := range training {
		for i, v := range tr {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	bestDist := -1.0
	for _, tr := range training {
		var d float64
		for i := range target {
			scale := hi[i] - lo[i]
			if scale == 0 {
				continue
			}
			diff := (target[i] - tr[i]) / scale
			d += diff * diff
		}
		if bestDist < 0 || d < bestDist {
			bestDist = d
		}
	}
	return bestDist
}
