// Package family defines the ModelFamily plug-in contract the core engine
// fits against. A family is one way of turning the accumulated sparse
// profiles into a predictor over the integrated raw-variable row: the
// reference implementation is the paper's genetically searched spline
// regression (family/spline); family/residual composes an analytical cost
// prior with a learned spline correction on the residual; family/dal
// partitions the sample space into clusters and fits one local spline model
// per cluster.
//
// The package is deliberately independent of internal/core: it speaks only
// the regression vocabulary (regress.Dataset, regress.Featurizer) and the
// search vocabulary (genetic.Evaluator, genetic.Params), so families are
// reusable over any variable space — the 26-variable general models and the
// 10-variable spmv domain models alike. The core trainer builds a FitInput
// from its captured evaluator state, asks every registered family to Fit,
// scores the fitted models on the same weighted splits, and publishes the
// winner; see core.SelectFamily.
//
// Determinism contract: a family's Fit must be a pure function of FitInput —
// all randomness flows through FitInput.Seed or the seeded Search params,
// never the process-global source — and must honor ctx cancellation in every
// loop that does meaningful work. The repo's hslint analyzers (determinism,
// ctxflow) enforce both for every package under internal/family/... .
package family

import (
	"context"
	"encoding/json"

	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
)

// Model is a fitted model of one family: a self-contained predictor over the
// raw variable row. Implementations are immutable after construction and
// safe for unsynchronized concurrent use — a Model is served lock-free from
// the core Snapshot.
type Model interface {
	// Predict returns the response prediction for one raw variable row
	// (the same row layout the family was fitted on).
	Predict(raw []float64) float64
	// PredictBatch predicts every row of rows into out: out[i] answers
	// rows[i], and len(out) must be at least len(rows). Implementations
	// amortize per-call work (scratch buffers, dispatch) across the batch
	// but must produce Float64bits-identical results to calling Predict on
	// each row — batching is a throughput optimization, never an arithmetic
	// change. Implementations allocate nothing in steady state (internal
	// scratch is pooled) and are safe for concurrent use like Predict.
	PredictBatch(rows [][]float64, out []float64)
	// Describe reports human-readable provenance for CLIs and /v1/model.
	Describe() Description
	// Payload serializes the model for persistence; Family.Load inverts it.
	Payload() (json.RawMessage, error)
}

// Description is the displayable summary of a fitted family model.
type Description struct {
	// Family is the owning family's Name.
	Family string
	// Spec renders the model structure (the spline specification, the prior
	// plus correction spec, or the per-cluster layout).
	Spec string
	// Terms counts fitted coefficients across the whole model.
	Terms int
	// Detail carries family-specific provenance (prior name, cluster count).
	Detail string
}

// FitInput is everything a family needs to fit deterministically. The core
// trainer assembles it from one captured sample-store version, so every
// family in a selection round fits exactly the same rows under exactly the
// same per-application weighted splits.
type FitInput struct {
	// NumVars is the raw variable count (26 for the general integrated
	// space, 10 for the spmv domain space).
	NumVars int
	// Dataset holds all rows; Group labels each row's application.
	Dataset *regress.Dataset
	// Featurizer caches the spline basis columns of Dataset (preprocessing
	// learned from the full data). Families that fit spline regressions
	// share it instead of re-deriving transforms.
	Featurizer *regress.Featurizer
	// Evaluator is the per-application weighted-split fitness the genetic
	// spline search optimizes (already wrapped by any instrumentation seam).
	Evaluator genetic.Evaluator
	// Search configures spec search: seeded, with Initial warm-start specs
	// and the OnGeneration convergence hook already installed by the caller.
	Search genetic.Params
	// LogResponse and Stabilize mirror the trainer's response-transform and
	// variance-stabilization configuration.
	LogResponse bool
	Stabilize   bool
	// Seed determinizes family-internal choices (cluster initialization,
	// internal splits). Derived from the trainer's fitness seed.
	Seed uint64
	// Weights are the split observation weights over Dataset rows: the
	// paper's w on training rows, 0 on validation rows. Nil means no split
	// (fit and score on all rows).
	Weights []float64
	// ValRows lists each application's validation rows (parallel to the
	// sorted distinct Group values, each sorted ascending). Families score
	// internal candidates on these rows so their model selection matches
	// the harness's scoring data.
	ValRows [][]int
}

// FitOutput is a successful (or partially successful) fit.
type FitOutput struct {
	// Model is the fitted predictor; nil when Fit returned an error.
	Model Model
	// Population, when non-nil, is a final search population usable to
	// warm-start the next update (the spline family returns one even when
	// the search itself failed, so partial progress is never discarded).
	Population []genetic.Individual
}

// Family is one pluggable fitting strategy.
type Family interface {
	// Name is the stable identifier used for selection reports, snapshot
	// persistence, and metrics labels.
	Name() string
	// Fit builds a model from in. It must be deterministic in FitInput and
	// honor ctx; on error the returned FitOutput may still carry a partial
	// Population.
	Fit(ctx context.Context, in FitInput) (FitOutput, error)
	// Load inverts Model.Payload for persistence, validating the payload
	// against the expected raw variable count.
	Load(payload json.RawMessage, numVars int) (Model, error)
}

// MeanValRowsPerApp reports the mean validation-set size of a FitInput's
// split, or 0 without one — families use it to pick internal budgets.
func (in FitInput) MeanValRowsPerApp() int {
	if len(in.ValRows) == 0 {
		return 0
	}
	total := 0
	for _, rows := range in.ValRows {
		total += len(rows)
	}
	return total / len(in.ValRows)
}
