// Package residual is the analytical-prior ModelFamily: a closed-form cost
// estimate supplies the first-order structure of the response surface, and a
// learned spline regression corrects what the analysis misses — the
// compositional analytical-ML fusion of Concorde applied to this engine's
// spaces. Fit computes the prior p(row) for every sample, fits a spline
// model to the ratio y/p with the same weighted splits the reference family
// uses, and serves p(row)·correction(row).
//
// Two priors are built in, auto-selected by the raw-row arity: interval26
// (an interval-analysis CPI estimate over the 13 software + 13 hardware
// integrated variables) and spmv10 (a streaming-bandwidth Mflop/s estimate
// over the Table 5 BCSR blocking space). Both are strictly positive on
// finite rows, so the ratio response stays compatible with the engine's
// log-response fits.
package residual

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"hsmodel/internal/family"
	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/stats"
)

// FamilyName is the stable identifier of the residual family.
const FamilyName = "residual"

// defaultBudget caps stepwise fitness evaluations of the correction search:
// roughly the cost of a few genetic generations, matching the stepwise rung.
const defaultBudget = 160

// defaultTermPenalty mirrors the engine's parsimony pressure per coefficient.
const defaultTermPenalty = 0.0004

// Prior is a closed-form response estimate over a raw variable row.
type Prior struct {
	// Name identifies the prior in persisted payloads.
	Name string
	// Vars is the raw-row arity the estimate expects.
	Vars int
	// F computes the estimate; it must be strictly positive and finite for
	// every finite row.
	F func(raw []float64) float64
}

// Family composes an analytical prior with a learned spline correction.
type Family struct {
	// Budget caps stepwise fitness evaluations of the correction search
	// (default 160).
	Budget int
	// Prior, when non-nil, overrides the arity-based auto-selection.
	Prior *Prior
}

// New returns a residual family with built-in prior auto-selection.
func New() *Family { return &Family{} }

// Name implements family.Family.
func (*Family) Name() string { return FamilyName }

// resolvePrior picks the analytical prior for a variable arity.
func (f *Family) resolvePrior(numVars int) (Prior, error) {
	if f.Prior != nil {
		if f.Prior.Vars != numVars {
			return Prior{}, fmt.Errorf("residual: prior %s expects %d variables, space has %d",
				f.Prior.Name, f.Prior.Vars, numVars)
		}
		return *f.Prior, nil
	}
	return priorByName("", numVars)
}

// priorByName resolves a persisted prior name (or, with an empty name, the
// default prior for the arity).
func priorByName(name string, numVars int) (Prior, error) {
	candidates := []Prior{Interval26(), SPMV10()}
	for _, p := range candidates {
		if (name == "" || name == p.Name) && p.Vars == numVars {
			return p, nil
		}
	}
	if name == "" {
		return Prior{}, fmt.Errorf("residual: no built-in prior for a %d-variable space", numVars)
	}
	return Prior{}, fmt.Errorf("residual: unknown prior %q for a %d-variable space", name, numVars)
}

// Fit implements family.Family: compute the prior over every row, fit a
// spline correction to the ratio response on the weighted splits, and keep
// the specification that predicts the combined response best.
func (f *Family) Fit(ctx context.Context, in family.FitInput) (family.FitOutput, error) {
	var out family.FitOutput
	prior, err := f.resolvePrior(in.NumVars)
	if err != nil {
		return out, err
	}
	ds := in.Dataset
	n := ds.NumRows()
	priors := make([]float64, n)
	ratio := make([]float64, n)
	for i := 0; i < n; i++ {
		p := prior.F(ds.X.Row(i))
		if !(p > 0) || math.IsInf(p, 0) {
			return out, fmt.Errorf("residual: prior %s non-positive (%g) on row %d", prior.Name, p, i)
		}
		priors[i] = p
		ratio[i] = ds.Y[i] / p
	}
	ratioDS := &regress.Dataset{Names: ds.Names, X: ds.X, Y: ratio, Group: ds.Group}
	fz, err := regress.NewFeaturizer(ratioDS, in.Stabilize)
	if err != nil {
		return out, fmt.Errorf("residual: featurizing ratio response: %w", err)
	}

	// The correction search optimizes the combined prediction p·m on the
	// caller's validation rows, so family-internal model selection agrees
	// with the harness's cross-family scoring data.
	eval := genetic.EvaluatorFunc(func(spec regress.Spec) float64 {
		m, err := fz.Fit(spec, regress.Options{LogResponse: true, Weights: in.Weights})
		if err != nil {
			return 1e6
		}
		score := scoreCombined(ds, in.ValRows, priors, m)
		return score + defaultTermPenalty*float64(len(m.Coef))
	})
	budget := f.Budget
	if budget <= 0 {
		budget = defaultBudget
	}
	res, serr := genetic.Stepwise(ctx, in.NumVars, eval, budget)
	if serr != nil {
		return out, fmt.Errorf("residual: correction search failed: %w", serr)
	}
	// Final correction fit: best specification, all rows, uniform weights.
	corr, err := fz.Fit(res.Best.Spec, regress.Options{LogResponse: true})
	if err != nil {
		return out, fmt.Errorf("residual: final fit failed: %w", err)
	}
	out.Model = &Model{prior: prior, corr: corr}
	return out, nil
}

// scoreCombined returns the mean per-application MedAPE of the combined
// prediction prior·correction on the validation rows. Without a split it
// scores all rows as one application.
func scoreCombined(ds *regress.Dataset, valRows [][]int, priors []float64, corr *regress.Model) float64 {
	if len(valRows) == 0 {
		all := make([]int, ds.NumRows())
		for i := range all {
			all[i] = i
		}
		valRows = [][]int{all}
	}
	var sum float64
	n := 0
	for _, val := range valRows {
		if len(val) == 0 {
			continue
		}
		pred := make([]float64, len(val))
		truth := make([]float64, len(val))
		for k, r := range val {
			pred[k] = priors[r] * corr.Predict(ds.X.Row(r))
			truth[k] = ds.Y[r]
		}
		sum += stats.MedianAbsPctError(pred, truth)
		n++
	}
	if n == 0 {
		return 1e6
	}
	return sum / float64(n)
}

// payload is the persisted form of a residual model.
type payload struct {
	Prior string         `json:"prior"`
	Model *regress.Model `json:"model"`
}

// Load implements family.Family.
func (*Family) Load(raw json.RawMessage, numVars int) (family.Model, error) {
	var p payload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("residual: decoding payload: %w", err)
	}
	if p.Model == nil || p.Model.Prep == nil || len(p.Model.Coef) == 0 {
		return nil, fmt.Errorf("residual: payload missing correction model")
	}
	if p.Model.Prep.NumVars() != numVars {
		return nil, fmt.Errorf("residual: payload has %d variables, want %d",
			p.Model.Prep.NumVars(), numVars)
	}
	prior, err := priorByName(p.Prior, numVars)
	if err != nil {
		return nil, err
	}
	return &Model{prior: prior, corr: p.Model}, nil
}

// Model is a fitted residual model: analytical prior times learned
// correction. Immutable and safe for concurrent use; the scratch pool only
// recycles predict buffers.
type Model struct {
	prior   Prior
	corr    *regress.Model
	scratch sync.Pool // *regress.PredictScratch
}

func (m *Model) getScratch() *regress.PredictScratch {
	if s, ok := m.scratch.Get().(*regress.PredictScratch); ok {
		return s
	}
	return &regress.PredictScratch{}
}

// Predict implements family.Model.
//
//hslint:hotpath
func (m *Model) Predict(raw []float64) float64 {
	s := m.getScratch()
	v := m.prior.F(raw) * m.corr.PredictWith(s, raw)
	m.scratch.Put(s)
	return v
}

// PredictBatch implements family.Model: the correction sweeps the batch
// through its fused kernel, then each slot is multiplied by the analytical
// prior. Same two factors as Predict, one multiply — bit-identical.
//
//hslint:hotpath
func (m *Model) PredictBatch(rows [][]float64, out []float64) {
	s := m.getScratch()
	m.corr.PredictBatchWith(s, rows, out)
	m.scratch.Put(s)
	for i, raw := range rows {
		out[i] = m.prior.F(raw) * out[i]
	}
}

// Describe implements family.Model.
func (m *Model) Describe() family.Description {
	return family.Description{
		Family: FamilyName,
		Spec:   fmt.Sprintf("%s × %s", m.prior.Name, m.corr.Spec.String()),
		Terms:  len(m.corr.Coef),
		Detail: "prior " + m.prior.Name,
	}
}

// Payload implements family.Model.
func (m *Model) Payload() (json.RawMessage, error) {
	data, err := json.Marshal(payload{Prior: m.prior.Name, Model: m.corr})
	if err != nil {
		return nil, fmt.Errorf("residual: encoding payload: %w", err)
	}
	return data, nil
}

// clamp01 bounds a probability-like estimate.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Interval-analysis constants matching the internal/cpu simulator's memory
// system: miss latency to memory, the branch misprediction penalty, and the
// 64-byte line the reuse-distance characteristics are measured in.
const (
	intervalMemLatency  = 120.0
	intervalL1Latency   = 1.0
	mispredictPenalty   = 8.0
	reuseLineBytes      = 64.0
	perKiloInstructions = 1000.0
)

// Interval26 is the interval-analysis CPI prior over the integrated
// 26-variable space: issue-bound base cycles plus first-order penalties for
// functional-unit contention, branch mispredictions, and cache misses
// estimated from the reuse-distance characteristics against the configured
// capacities. It is a deliberate simplification of internal/cpu — the
// learned correction absorbs second-order structure — but every term is
// non-negative and the base is strictly positive, so the prior is safe
// under log-response ratios.
func Interval26() Prior {
	return Prior{Name: "interval26", Vars: profile.NumCharacteristics + hwspace.NumParams, F: interval26}
}

func interval26(raw []float64) float64 {
	x := raw[:profile.NumCharacteristics]
	h := raw[profile.NumCharacteristics:]
	width := math.Max(1, h[0])
	mshrs := math.Max(1, h[3])
	dcacheBytes := math.Max(1, h[4]) * 1024
	icacheBytes := math.Max(1, h[5]) * 1024
	l2Bytes := math.Max(1, h[6]) * 1024
	l2Lat := math.Max(intervalL1Latency, h[7])
	intALUs := math.Max(1, h[8])
	intMuls := math.Max(1, h[9])
	fpALUs := math.Max(1, h[10])
	fpMuls := math.Max(1, h[11])
	ports := math.Max(1, h[12])

	perInst := func(i int) float64 { return math.Max(0, x[i]) / perKiloInstructions }

	// Issue-bound base: one instruction per width cycles.
	cpi := 1 / width

	// Functional-unit contention: demanded occupancy per unit, with the
	// multi-cycle classes weighted by their execution latencies.
	cpi += perInst(profile.XIntALU) / intALUs
	cpi += 3 * perInst(profile.XIntMulDiv) / intMuls
	cpi += 2 * perInst(profile.XFPALU) / fpALUs
	cpi += 4 * perInst(profile.XFPMulDiv) / fpMuls
	cpi += perInst(profile.XMemory) / ports

	// Branch mispredictions: the control-density share of taken branches
	// pays the pipeline refill.
	cpi += 0.1 * perInst(profile.XTakenBranches) * mispredictPenalty

	// Data-side stalls: reuse distance (in 64-byte lines) against each
	// capacity approximates the miss probability; misses overlap across the
	// configured MSHRs.
	dFootprint := math.Max(0, x[profile.XDReuse]) * reuseLineBytes
	missL1 := clamp01(dFootprint / dcacheBytes)
	missL2 := clamp01(dFootprint / l2Bytes)
	memStall := missL1 * ((1-missL2)*l2Lat + missL2*intervalMemLatency)
	cpi += perInst(profile.XMemory) * memStall / math.Sqrt(mshrs)

	// Instruction-side stalls: same capacity argument against the i-cache,
	// serialized (front-end misses do not overlap).
	iFootprint := math.Max(0, x[profile.XIReuse]) * reuseLineBytes
	cpi += clamp01(iFootprint/icacheBytes) * l2Lat / width

	return cpi
}

// Streaming-bandwidth constants matching the internal/spmv kernel model.
const (
	spmvMemBaseLatency   = 20.0
	spmvMemBytesPerCycle = 8.0
	spmvClockMHz         = 400.0
	spmvValueBytes       = 8.0
	spmvIndexBytes       = 4.0
)

// SPMV10 is the Mflop/s prior over the Table 5 BCSR blocking space: useful
// flops per stored value shrink with the fill ratio, while the streaming
// cost per value amortizes index overhead over the block and the line size
// over the transfer — the first-order blocking trade-off of Section 5.3.
func SPMV10() Prior {
	return Prior{Name: "spmv10", Vars: 10, F: spmv10}
}

func spmv10(raw []float64) float64 {
	r := math.Max(1, raw[0])
	c := math.Max(1, raw[1])
	fill := math.Max(1, raw[2])
	lineBytes := math.Max(16, raw[3])
	dcacheBytes := math.Max(1024, raw[4])

	// Bytes streamed per stored value: the value itself plus the block
	// column index amortized over the block.
	bytesPerVal := spmvValueBytes + spmvIndexBytes/(r*c)
	// Line fetches per value, each paying the fixed latency plus transfer.
	missCost := spmvMemBaseLatency + lineBytes/spmvMemBytesPerCycle
	linesPerVal := bytesPerVal / lineBytes
	// Source-vector pressure: small data caches re-fetch x entries; wider
	// blocks reuse each x entry r times per block column.
	vecPenalty := clamp01(256*1024/dcacheBytes) / r
	cyclesPerVal := 2 + linesPerVal*missCost + vecPenalty

	// True flops per stored value shrink with fill (explicit zeros compute
	// but do not count); cycles convert to Mflop/s at the design clock.
	flopsPerVal := 2 / fill
	return spmvClockMHz * flopsPerVal / cyclesPerVal
}
