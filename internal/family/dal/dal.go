// Package dal is the divide-and-learn ModelFamily: deterministic k-way
// clustering of the standardized sample space, one local spline model per
// cluster, nearest-cluster dispatch at predict time — the Gong & Chen
// strategy for heterogeneous configuration spaces, where one global
// regression underfits regimes that a handful of local models capture
// cleanly. A pooled stepwise spline model backs the dispatch: clusters too
// thin to support a local fit (and any local fit that fails) fall through
// to it, so a DAL model never predicts from an unfit region.
package dal

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"hsmodel/internal/family"
	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/stats"
)

// FamilyName is the stable identifier of the divide-and-learn family.
const FamilyName = "dal"

const (
	// defaultBudget caps stepwise fitness evaluations per local (and the
	// pooled) model search.
	defaultBudget = 120
	// defaultIters bounds Lloyd iterations; assignments converge far
	// earlier on these corpus sizes.
	defaultIters = 25
	// defaultTermPenalty mirrors the engine's parsimony pressure.
	defaultTermPenalty = 0.0004
	// rowsPerCluster sizes the automatic k; minClusterRows is the floor
	// below which a cluster dispatches to the pooled model instead of
	// fitting locally.
	rowsPerCluster = 80
	minClusterRows = 24
)

// Family is the divide-and-learn family.
type Family struct {
	// K fixes the cluster count; 0 picks clamp(rows/80, 2, 4).
	K int
	// Budget caps stepwise evaluations per model search (default 120).
	Budget int
	// Iters bounds k-means iterations (default 25).
	Iters int
}

// New returns a divide-and-learn family with automatic cluster sizing.
func New() *Family { return &Family{} }

// Name implements family.Family.
func (*Family) Name() string { return FamilyName }

// Fit implements family.Family: standardize, cluster with seeded
// deterministic k-means, fit a pooled stepwise model plus one local spline
// model per sufficiently populated cluster.
func (f *Family) Fit(ctx context.Context, in family.FitInput) (family.FitOutput, error) {
	var out family.FitOutput
	ds := in.Dataset
	n := ds.NumRows()
	if n < 2*minClusterRows {
		return out, fmt.Errorf("dal: %d rows is too few to divide (need %d)", n, 2*minClusterRows)
	}
	budget := f.Budget
	if budget <= 0 {
		budget = defaultBudget
	}
	iters := f.Iters
	if iters <= 0 {
		iters = defaultIters
	}
	k := f.K
	if k <= 0 {
		k = n / rowsPerCluster
		if k < 2 {
			k = 2
		}
		if k > 4 {
			k = 4
		}
	}
	if k > n/minClusterRows {
		k = n / minClusterRows
	}

	scale := newScaler(ds)
	centroids, assign := kmeans(ds, scale, k, iters, rng.New(in.Seed^0xda1))

	// Pooled fallback: the stepwise spline floor over the caller's
	// weighted-split evaluator and shared featurizer.
	pooledRes, serr := genetic.Stepwise(ctx, in.NumVars, in.Evaluator, budget)
	if serr != nil {
		return out, fmt.Errorf("dal: pooled search failed: %w", serr)
	}
	pooled, err := in.Featurizer.Fit(pooledRes.Best.Spec, regress.Options{LogResponse: in.LogResponse})
	if err != nil {
		return out, fmt.Errorf("dal: pooled fit failed: %w", err)
	}

	locals := make([]*regress.Model, k)
	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("dal: cancelled before cluster %d: %w", j, err)
		}
		rows := clusterRows(assign, j)
		if len(rows) < minClusterRows {
			continue // thin cluster: dispatch to the pooled model
		}
		local, err := fitLocal(ctx, in, rows, budget)
		if err != nil {
			continue // unfit local region: the pooled model covers it
		}
		locals[j] = local
	}

	out.Model = &Model{
		scale:     scale,
		centroids: centroids,
		locals:    locals,
		pooled:    pooled,
	}
	return out, nil
}

// fitLocal fits one cluster's spline model: stepwise search over the
// cluster's rows under the global preprocessing, scored on the cluster's
// share of the caller's validation rows.
func fitLocal(ctx context.Context, in family.FitInput, rows []int, budget int) (*regress.Model, error) {
	sub := in.Dataset.Subset(rows)
	fz, err := regress.FeaturizeWith(in.Featurizer.Prep(), sub)
	if err != nil {
		return nil, err
	}
	var weights []float64
	var valLocal []int
	if in.Weights != nil {
		weights = make([]float64, len(rows))
		for i, r := range rows {
			weights[i] = in.Weights[r]
			if in.Weights[r] == 0 {
				valLocal = append(valLocal, i)
			}
		}
	}
	scoreRows := valLocal
	if len(scoreRows) == 0 {
		scoreRows = make([]int, len(rows))
		for i := range scoreRows {
			scoreRows[i] = i
		}
	}
	eval := genetic.EvaluatorFunc(func(spec regress.Spec) float64 {
		m, err := fz.Fit(spec, regress.Options{LogResponse: in.LogResponse, Weights: weights})
		if err != nil {
			return 1e6
		}
		pred := make([]float64, len(scoreRows))
		truth := make([]float64, len(scoreRows))
		for i, r := range scoreRows {
			pred[i] = m.Predict(sub.X.Row(r))
			truth[i] = sub.Y[r]
		}
		return stats.MedianAbsPctError(pred, truth) + defaultTermPenalty*float64(len(m.Coef))
	})
	res, err := genetic.Stepwise(ctx, in.NumVars, eval, budget)
	if err != nil {
		return nil, err
	}
	// Final local fit: all cluster rows, uniform weights.
	return fz.Fit(res.Best.Spec, regress.Options{LogResponse: in.LogResponse})
}

// clusterRows collects (ascending) the row indices assigned to cluster j.
func clusterRows(assign []int, j int) []int {
	var rows []int
	for r, a := range assign {
		if a == j {
			rows = append(rows, r)
		}
	}
	return rows
}

// scaler standardizes raw rows for distance computation.
type scaler struct {
	Means []float64 `json:"means"`
	Stds  []float64 `json:"stds"`
}

func newScaler(ds *regress.Dataset) scaler {
	p := ds.NumVars()
	n := ds.NumRows()
	s := scaler{Means: make([]float64, p), Stds: make([]float64, p)}
	for v := 0; v < p; v++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += ds.X.At(i, v)
		}
		mean := sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := ds.X.At(i, v) - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(n))
		if std == 0 {
			std = 1
		}
		s.Means[v] = mean
		s.Stds[v] = std
	}
	return s
}

func (s scaler) apply(raw []float64, z []float64) {
	for v := range z {
		z[v] = (raw[v] - s.Means[v]) / s.Stds[v]
	}
}

// kmeans runs seeded deterministic Lloyd iterations over the standardized
// rows: initial centroids are a seeded draw of distinct rows, assignment
// ties break on the lowest centroid index, and an emptied cluster reseeds
// to the row farthest from its assigned centroid (lowest index on ties).
func kmeans(ds *regress.Dataset, scale scaler, k, iters int, src *rng.Source) ([][]float64, []int) {
	n, p := ds.NumRows(), ds.NumVars()
	z := make([][]float64, n)
	backing := make([]float64, n*p)
	for i := 0; i < n; i++ {
		z[i] = backing[i*p : (i+1)*p]
		scale.apply(ds.X.Row(i), z[i])
	}

	centroids := make([][]float64, k)
	for j, r := range src.Perm(n)[:k] {
		centroids[j] = append([]float64(nil), z[r]...)
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, sqDist(z[i], centroids[0])
			for j := 1; j < k; j++ {
				if d := sqDist(z[i], centroids[j]); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		counts := make([]int, k)
		for j := range centroids {
			for v := range centroids[j] {
				centroids[j][v] = 0
			}
		}
		for i, j := range assign {
			counts[j]++
			for v := range centroids[j] {
				centroids[j][v] += z[i][v]
			}
		}
		for j := range centroids {
			if counts[j] == 0 {
				// Reseed an emptied cluster to the worst-fit row.
				worst, worstD := 0, -1.0
				for i := 0; i < n; i++ {
					if d := sqDist(z[i], centroids[assign[i]]); d > worstD {
						worst, worstD = i, d
					}
				}
				copy(centroids[j], z[worst])
				assign[worst] = j
				changed = true
				continue
			}
			for v := range centroids[j] {
				centroids[j][v] /= float64(counts[j])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	return centroids, assign
}

func sqDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// payload is the persisted form of a DAL model.
type payload struct {
	Scale     scaler           `json:"scale"`
	Centroids [][]float64      `json:"centroids"`
	Locals    []*regress.Model `json:"locals"`
	Pooled    *regress.Model   `json:"pooled"`
}

// Load implements family.Family.
func (*Family) Load(raw json.RawMessage, numVars int) (family.Model, error) {
	var p payload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("dal: decoding payload: %w", err)
	}
	if p.Pooled == nil || p.Pooled.Prep == nil || len(p.Pooled.Coef) == 0 {
		return nil, fmt.Errorf("dal: payload missing pooled model")
	}
	if len(p.Scale.Means) != numVars || len(p.Scale.Stds) != numVars {
		return nil, fmt.Errorf("dal: payload scaler has %d variables, want %d", len(p.Scale.Means), numVars)
	}
	if len(p.Centroids) == 0 || len(p.Centroids) != len(p.Locals) {
		return nil, fmt.Errorf("dal: payload has %d centroids for %d local models",
			len(p.Centroids), len(p.Locals))
	}
	if p.Pooled.Prep.NumVars() != numVars {
		return nil, fmt.Errorf("dal: pooled model has %d variables, want %d",
			p.Pooled.Prep.NumVars(), numVars)
	}
	for j, c := range p.Centroids {
		if len(c) != numVars {
			return nil, fmt.Errorf("dal: centroid %d has %d variables, want %d", j, len(c), numVars)
		}
		if m := p.Locals[j]; m != nil && (m.Prep == nil || m.Prep.NumVars() != numVars) {
			return nil, fmt.Errorf("dal: local model %d variable count mismatch", j)
		}
	}
	return &Model{scale: p.Scale, centroids: p.Centroids, locals: p.Locals, pooled: p.Pooled}, nil
}

// Model is a fitted divide-and-learn model. Immutable and safe for
// concurrent use; the scratch pool only recycles predict buffers.
type Model struct {
	scale     scaler
	centroids [][]float64
	locals    []*regress.Model // nil entries dispatch to pooled
	pooled    *regress.Model
	scratch   sync.Pool // *dispatchScratch
}

// dispatchScratch holds the reusable predict buffers of one goroutine's pass
// through a DAL model: the standardized row, the per-row cluster assignment,
// the gather/scatter buffers grouping a batch by dispatch target, and the
// regression scratch shared by whichever local (or pooled) model answers.
type dispatchScratch struct {
	z      []float64
	assign []int
	sub    [][]float64
	idx    []int
	subOut []float64
	rs     regress.PredictScratch
}

func (s *dispatchScratch) ensure(numVars int) {
	if cap(s.z) < numVars {
		s.z = make([]float64, numVars)
	}
	s.z = s.z[:numVars]
}

func (s *dispatchScratch) ensureBatch(numVars, n int) {
	s.ensure(numVars)
	if cap(s.assign) < n {
		s.assign = make([]int, n)
		s.idx = make([]int, n)
		s.sub = make([][]float64, n)
		s.subOut = make([]float64, n)
	}
	s.assign = s.assign[:n]
	s.idx = s.idx[:n]
	s.sub = s.sub[:n]
	s.subOut = s.subOut[:n]
}

func (m *Model) getScratch() *dispatchScratch {
	if s, ok := m.scratch.Get().(*dispatchScratch); ok {
		return s
	}
	return &dispatchScratch{}
}

// nearest returns the index of the centroid closest to the standardized row
// (ties break on the lowest index, matching fit-time assignment).
func (m *Model) nearest(z []float64) int {
	best, bestD := 0, sqDist(z, m.centroids[0])
	for j := 1; j < len(m.centroids); j++ {
		if d := sqDist(z, m.centroids[j]); d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

// Predict implements family.Model: standardize, dispatch to the nearest
// cluster's local model, fall through to the pooled model for thin regions.
//
//hslint:hotpath
func (m *Model) Predict(raw []float64) float64 {
	s := m.getScratch()
	s.ensure(len(m.scale.Means))
	m.scale.apply(raw, s.z)
	target := m.locals[m.nearest(s.z)]
	if target == nil {
		target = m.pooled
	}
	v := target.PredictWith(&s.rs, raw)
	m.scratch.Put(s)
	return v
}

// PredictBatch implements family.Model: centroid dispatch is amortized
// across the batch — every row is assigned first, then each dispatch target
// (each fitted local model, plus the pooled fallback for thin regions)
// answers its rows in one batched sweep, scattered back to the caller's
// slots. Each row is answered by exactly the model Predict would pick, so
// results are bit-identical to the scalar path.
//
//hslint:hotpath
func (m *Model) PredictBatch(rows [][]float64, out []float64) {
	s := m.getScratch()
	s.ensureBatch(len(m.scale.Means), len(rows))
	for i, raw := range rows {
		m.scale.apply(raw, s.z)
		s.assign[i] = m.nearest(s.z)
	}
	// j == -1 sweeps the pooled fallback (rows assigned to a nil local).
	for j := -1; j < len(m.locals); j++ {
		target := m.pooled
		if j >= 0 {
			if m.locals[j] == nil {
				continue
			}
			target = m.locals[j]
		}
		k := 0
		for i := range rows {
			a := s.assign[i]
			if (j >= 0 && a == j) || (j < 0 && m.locals[a] == nil) {
				s.sub[k] = rows[i]
				s.idx[k] = i
				k++
			}
		}
		if k == 0 {
			continue
		}
		target.PredictBatchWith(&s.rs, s.sub[:k], s.subOut[:k])
		for t := 0; t < k; t++ {
			out[s.idx[t]] = s.subOut[t]
		}
	}
	m.scratch.Put(s)
}

// Describe implements family.Model.
func (m *Model) Describe() family.Description {
	terms := len(m.pooled.Coef)
	fitted := 0
	for _, l := range m.locals {
		if l != nil {
			fitted++
			terms += len(l.Coef)
		}
	}
	specs := make([]string, 0, fitted)
	for j, l := range m.locals {
		if l != nil {
			specs = append(specs, fmt.Sprintf("c%d:%s", j, l.Spec.String()))
		}
	}
	sort.Strings(specs)
	return family.Description{
		Family: FamilyName,
		Spec:   fmt.Sprintf("k=%d {%s} pooled:%s", len(m.centroids), join(specs), m.pooled.Spec.String()),
		Terms:  terms,
		Detail: fmt.Sprintf("k=%d, %d local models, pooled fallback", len(m.centroids), fitted),
	}
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += "; "
		}
		out += x
	}
	return out
}

// Payload implements family.Model.
func (m *Model) Payload() (json.RawMessage, error) {
	data, err := json.Marshal(payload{
		Scale:     m.scale,
		Centroids: m.centroids,
		Locals:    m.locals,
		Pooled:    m.pooled,
	})
	if err != nil {
		return nil, fmt.Errorf("dal: encoding payload: %w", err)
	}
	return data, nil
}
