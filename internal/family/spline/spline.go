// Package spline is the reference ModelFamily: the paper's genetically
// searched spline regression, extracted verbatim from the core trainer's
// original fit path. Fit runs the seeded genetic specification search
// against the caller's weighted-split evaluator and refits the winning
// specification on all rows with uniform weights — the exact sequence the
// engine performed before the family refactor, so a trainer with only this
// family registered reproduces the Figure 5 convergence numbers
// bit-identically.
package spline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"hsmodel/internal/family"
	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
)

// FamilyName is the stable identifier of the reference family.
const FamilyName = "spline"

// Family is the genetic spline-search family. The zero value is ready to
// use; New exists for symmetry with the other families.
type Family struct{}

// New returns the reference spline family.
func New() *Family { return &Family{} }

// Name implements family.Family.
func (*Family) Name() string { return FamilyName }

// Fit runs the genetic specification search and the all-rows final fit.
// The returned FitOutput carries the final population even when the search
// failed, so callers can warm-start a retry from partial progress.
func (*Family) Fit(ctx context.Context, in family.FitInput) (family.FitOutput, error) {
	var out family.FitOutput
	res, serr := genetic.Search(ctx, in.NumVars, in.Evaluator, in.Search)
	out.Population = res.Population
	if serr != nil {
		return out, fmt.Errorf("spline: search failed: %w", serr)
	}
	// Final fit: best specification, all rows, uniform weights.
	model, err := in.Featurizer.Fit(res.Best.Spec, regress.Options{LogResponse: in.LogResponse})
	if err != nil {
		return out, fmt.Errorf("spline: final fit failed: %w", err)
	}
	out.Model = &Model{model: model}
	return out, nil
}

// Load implements family.Family: the payload is the regress.Model JSON.
func (*Family) Load(payload json.RawMessage, numVars int) (family.Model, error) {
	var m regress.Model
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("spline: decoding payload: %w", err)
	}
	if m.Prep == nil || len(m.Coef) == 0 {
		return nil, errors.New("spline: payload missing preprocessing or coefficients")
	}
	if m.Prep.NumVars() != numVars {
		return nil, fmt.Errorf("spline: payload has %d variables, want %d", m.Prep.NumVars(), numVars)
	}
	return &Model{model: &m}, nil
}

// Model wraps a fitted spline regression as a family.Model. The embedded
// scratch pool makes both predict forms allocation-free in steady state; it
// is per-fitted-model, so pooled buffers are always sized for this model.
type Model struct {
	model   *regress.Model
	scratch sync.Pool // *regress.PredictScratch
}

// Wrap adapts an already-fitted spline regression (for example one loaded
// from a pre-family snapshot file) into the family contract.
func Wrap(m *regress.Model) *Model { return &Model{model: m} }

// getScratch takes a pooled predict scratch (the pool has no New: a cold
// pool hands out nil and we allocate the one-time scratch here).
func (m *Model) getScratch() *regress.PredictScratch {
	if s, ok := m.scratch.Get().(*regress.PredictScratch); ok {
		return s
	}
	return &regress.PredictScratch{}
}

// Predict implements family.Model.
//
//hslint:hotpath
func (m *Model) Predict(raw []float64) float64 {
	s := m.getScratch()
	v := m.model.PredictWith(s, raw)
	m.scratch.Put(s)
	return v
}

// PredictBatch implements family.Model: one fused design expansion per row
// into the scratch's contiguous buffer, one matrix-vector sweep for the whole
// batch. Bit-identical to per-row Predict.
//
//hslint:hotpath
func (m *Model) PredictBatch(rows [][]float64, out []float64) {
	s := m.getScratch()
	m.model.PredictBatchWith(s, rows, out)
	m.scratch.Put(s)
}

// RegressModel exposes the underlying regression for callers that still
// speak the pre-family API (core.Snapshot.Model, the experiments layer).
func (m *Model) RegressModel() *regress.Model { return m.model }

// Describe implements family.Model.
func (m *Model) Describe() family.Description {
	return family.Description{
		Family: FamilyName,
		Spec:   m.model.Spec.String(),
		Terms:  len(m.model.Coef),
	}
}

// Payload implements family.Model.
func (m *Model) Payload() (json.RawMessage, error) {
	data, err := json.Marshal(m.model)
	if err != nil {
		return nil, fmt.Errorf("spline: encoding payload: %w", err)
	}
	return data, nil
}
