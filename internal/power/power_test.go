package power

import "testing"

func TestCacheAccessEnergyMonotonic(t *testing.T) {
	base := CacheAccessEnergyNJ(16<<10, 2, 32)
	if base <= 0 {
		t.Fatalf("reference energy %v", base)
	}
	// Calibration point: ~0.1 nJ for the reference geometry.
	if base < 0.05 || base > 0.2 {
		t.Errorf("reference access energy %v outside CACTI ballpark", base)
	}
	if CacheAccessEnergyNJ(64<<10, 2, 32) <= base {
		t.Error("bigger cache should cost more per access")
	}
	if CacheAccessEnergyNJ(16<<10, 8, 32) <= base {
		t.Error("higher associativity should cost more per access")
	}
	if CacheAccessEnergyNJ(16<<10, 2, 128) <= base {
		t.Error("wider lines should cost more per access")
	}
}

func TestLineTransferEnergy(t *testing.T) {
	// The paper's constant: 6 nJ per 64-bit word.
	if got := LineTransferEnergyNJ(8); got != 6 {
		t.Errorf("one-word line transfer %v, want 6", got)
	}
	if got := LineTransferEnergyNJ(64); got != 48 {
		t.Errorf("64B line transfer %v, want 48", got)
	}
}

func TestLeakageScalesWithCapacity(t *testing.T) {
	small := CacheLeakageNJPerCycle(8 << 10)
	big := CacheLeakageNJPerCycle(256 << 10)
	if big <= small || small <= 0 {
		t.Errorf("leakage %v -> %v not scaling", small, big)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{
		DCacheDynamic: 1, ICacheDynamic: 2, MemTransfer: 3, Leakage: 4, CoreDynamic: 5,
	}
	if b.Total() != 15 {
		t.Errorf("total %v", b.Total())
	}
}
