// Package power models cache and memory energy for the SpMV case study,
// substituting for the paper's CACTI 6.0 cache estimates and Micron DDR2
// power data (Section 5.3).
//
// The model preserves the trade-off structure the paper's Figure 16 turns
// on: dynamic cache energy grows with capacity, associativity, and line
// size; off-chip transfers cost 6 nJ per 64-bit word (the paper's own
// number, from Micron TN-47-04), so larger lines move more data per miss and
// raise memory energy even when they help performance; and blocking, by
// cutting misses, reduces both latency and energy.
package power

import "math"

// Per-word DRAM transfer energy, from the paper: "memory transfers, which
// cost 6nJ per 64b double-precision word".
const DRAMWordEnergyNJ = 6.0

// WordBytes is the transfer word size the DRAM energy is quoted against.
const WordBytes = 8

// Cache energy model constants, calibrated so a 16 KB 2-way cache with 32 B
// lines costs ~0.1 nJ per access — the CACTI ballpark for small low-voltage
// SRAM at the paper's 400 MHz design point.
const (
	baseAccessNJ = 0.10
	refSizeKB    = 16.0
	refWays      = 2.0
	refLineBytes = 32.0
)

// CacheAccessEnergyNJ returns dynamic energy per access in nanojoules for a
// cache of the given geometry. Scaling exponents follow CACTI trends:
// energy grows sublinearly with capacity (longer bitlines/wordlines), nearly
// linearly with associativity (parallel tag+data way reads), and mildly with
// line size (wider data arrays).
func CacheAccessEnergyNJ(sizeBytes, ways, lineBytes int) float64 {
	sizeKB := float64(sizeBytes) / 1024
	return baseAccessNJ *
		math.Pow(sizeKB/refSizeKB, 0.5) *
		math.Pow(float64(ways)/refWays, 0.7) *
		math.Pow(float64(lineBytes)/refLineBytes, 0.3)
}

// CacheLeakageNJPerCycle returns leakage energy per cycle in nanojoules,
// proportional to capacity. At 400 MHz a 64 KB array leaks on the order of
// 10 mW, i.e. 0.025 nJ/cycle.
func CacheLeakageNJPerCycle(sizeBytes int) float64 {
	return 0.025 * float64(sizeBytes) / (64 * 1024)
}

// LineTransferEnergyNJ returns the energy to move one cache line to or from
// memory.
func LineTransferEnergyNJ(lineBytes int) float64 {
	return DRAMWordEnergyNJ * float64(lineBytes) / WordBytes
}

// Breakdown itemizes energy for one kernel execution, all in nanojoules.
type Breakdown struct {
	DCacheDynamic float64
	ICacheDynamic float64
	MemTransfer   float64
	Leakage       float64
	CoreDynamic   float64
}

// Total returns the summed energy in nanojoules.
func (b Breakdown) Total() float64 {
	return b.DCacheDynamic + b.ICacheDynamic + b.MemTransfer + b.Leakage + b.CoreDynamic
}

// CoreOpEnergyNJ is the dynamic energy per executed instruction-equivalent
// in the in-order SpMV core (datapath + register file), a small constant
// next to memory costs.
const CoreOpEnergyNJ = 0.05
