package experiments

import (
	"io"
	"testing"
)

// tinyConfig shrinks everything so the integration suite runs in seconds.
// Accuracy thresholds below are correspondingly loose — the full-scale
// assertions live in bench_test.go and EXPERIMENTS.md.
func tinyConfig() Config {
	cfg := Quick()
	cfg.ShardLen = 20_000
	cfg.ShardPool = 24
	cfg.TrainPerApp = 40
	cfg.ValidationPairs = 42
	cfg.Pop = 16
	cfg.Generations = 4
	cfg.SpmvScale = 64
	cfg.SpmvTrain = 120
	cfg.SpmvValidation = 40
	cfg.Out = io.Discard
	return cfg
}

func tinyWorkspace(t *testing.T) *Workspace {
	t.Helper()
	return NewWorkspace(tinyConfig())
}

func TestFig3StabilizationReducesSkew(t *testing.T) {
	res := Fig3(tinyWorkspace(t))
	if res.Power >= 1 {
		t.Errorf("chosen power %v, want < 1 for long-tailed data", res.Power)
	}
	if res.SkewAfter >= res.SkewBefore {
		t.Errorf("skewness did not drop: %v -> %v", res.SkewBefore, res.SkewAfter)
	}
	if res.TailRatio < 1.5 {
		t.Errorf("tail ratio %v, want a visible long tail", res.TailRatio)
	}
}

func TestSearchAnatomyAndInterpolation(t *testing.T) {
	w := tinyWorkspace(t)
	anatomy, err := SearchAnatomy(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(anatomy.History) != w.Cfg.Generations {
		t.Errorf("history %d generations", len(anatomy.History))
	}
	first, last := anatomy.History[0], anatomy.History[len(anatomy.History)-1]
	if last > first {
		t.Errorf("search got worse: %v -> %v", first, last)
	}
	if len(anatomy.Consensus) != 26 {
		t.Errorf("consensus over %d vars", len(anatomy.Consensus))
	}

	acc, err := Fig7a(w)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Metrics.MedAPE > 0.20 {
		t.Errorf("interpolation medAPE %v too high even at tiny scale", acc.Metrics.MedAPE)
	}
	if acc.Metrics.Pearson < 0.7 {
		t.Errorf("interpolation correlation %v too low", acc.Metrics.Pearson)
	}
}

func TestFig9BwavesIsOutlier(t *testing.T) {
	res := Fig9(tinyWorkspace(t))
	if res.MaxAbsDelta("bwaves") <= res.MaxAbsDelta("sjeng") {
		t.Errorf("bwaves delta %v should exceed sjeng delta %v",
			res.MaxAbsDelta("bwaves"), res.MaxAbsDelta("sjeng"))
	}
	if res.CPIBwaves.Total == 0 || res.CPIOthers.Total == 0 {
		t.Error("CPI histograms empty")
	}
}

func TestFig12RaefskyShape(t *testing.T) {
	res, err := Fig12(tinyWorkspace(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: 8 block rows maximize performance.
	if res.BestRow != 8 {
		t.Errorf("best brow = %d, want 8", res.BestRow)
	}
	// Aligned sizes carry no fill; misaligned ones do.
	if res.FillByRow[7] > 1.02 {
		t.Errorf("8x1 fill %v, want ~1", res.FillByRow[7])
	}
	if res.FillByRow[6] < 1.05 {
		t.Errorf("7x1 fill %v, want > 1.05", res.FillByRow[6])
	}
}

func TestFig13LineSizeTrend(t *testing.T) {
	res, err := Fig13(tinyWorkspace(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.LineGain < 1.5 {
		t.Errorf("line-size gain %v, want strong streaming-bandwidth effect", res.LineGain)
	}
	if res.ByLine[128] <= res.ByLine[16] {
		t.Error("larger lines should raise mean performance")
	}
}

func TestFig15TopologyAgreement(t *testing.T) {
	res, err := Fig15(tinyWorkspace(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Correlation < 0.8 {
		t.Errorf("profiled/predicted correlation %v too low", res.Correlation)
	}
	// Natural-block peak beats unblocked; far-misaligned 7x7 is worse than
	// not blocking at all (the discontinuity claim).
	if res.Profiled[2][2] <= res.Profiled[0][0] {
		t.Error("3x3 should beat 1x1 for nasasrb")
	}
	if res.Profiled[6][6] >= res.Profiled[0][0] {
		t.Error("7x7 should be worse than not blocking")
	}
}

func TestAblationSharding(t *testing.T) {
	res, err := AblationSharding(tinyWorkspace(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit() < 1.0 {
		t.Errorf("shard-level profiles should not hurt: benefit %v", res.Benefit())
	}
}

func TestWorkspaceCaching(t *testing.T) {
	w := tinyWorkspace(t)
	a := w.TrainingSamples()
	b := w.TrainingSamples()
	if &a[0] != &b[0] {
		t.Error("training samples re-collected")
	}
	m1, err := w.Model()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := w.Model()
	if m1 != m2 {
		t.Error("model retrained")
	}
}

func TestPaperConfigScales(t *testing.T) {
	p := Paper()
	if p.ShardLen != 10_000_000 || p.TrainPerApp != 360 || p.SpmvScale != 1 {
		t.Errorf("paper config wrong: %+v", p)
	}
	q := Quick()
	if q.ShardLen >= p.ShardLen || q.TrainPerApp >= p.TrainPerApp {
		t.Error("quick config should be smaller than paper config")
	}
}
