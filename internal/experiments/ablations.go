package experiments

import (
	"fmt"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/spmv"
)

// Ablations isolate the design decisions DESIGN.md calls out. Each returns
// (withFeature, withoutFeature) validation median errors so the benefit is a
// single comparable number.

// AblationResult is one with/without comparison.
type AblationResult struct {
	Name       string
	WithErr    float64
	WithoutErr float64
}

// Benefit returns WithoutErr/WithErr (>1 means the feature helps).
func (a AblationResult) Benefit() float64 {
	if a.WithErr == 0 {
		return 0
	}
	return a.WithoutErr / a.WithErr
}

func (a AblationResult) String() string {
	return fmt.Sprintf("%s: with=%.1f%% without=%.1f%% benefit=%.2fx",
		a.Name, 100*a.WithErr, 100*a.WithoutErr, a.Benefit())
}

// AblationStabilization compares models with and without ladder-of-powers
// variance stabilization (Section 3.1 / Figure 3).
func AblationStabilization(w *Workspace) (AblationResult, error) {
	return ablateModeler(w, "variance stabilization", func(m *core.Trainer, on bool) {
		m.Stabilize = on
	})
}

// AblationInteractions compares the GA-chosen model against the same search
// with interactions disabled (main effects only).
func AblationInteractions(w *Workspace) (AblationResult, error) {
	cfg := w.Cfg
	train := w.TrainingSamples()
	valid := w.ValidationSamples()

	with := core.NewTrainer(train)
	with.Search = cfg.searchParams(0xAB1)
	if err := with.Train(w.ctx); err != nil {
		return AblationResult{}, err
	}
	wm, err := with.EvaluateOn(valid)
	if err != nil {
		return AblationResult{}, err
	}

	// Without: the same converged specifications, stripped of interactions.
	best := with.Population()[0].Spec.Clone()
	best.Interactions = nil
	ds := core.ToDataset(train)
	stripped, err := regress.FitSpec(best, nil, ds, regress.Options{LogResponse: true, Stabilize: true})
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{
		Name:       "pairwise interactions",
		WithErr:    wm.MedAPE,
		WithoutErr: stripped.Evaluate(core.ToDataset(valid)).MedAPE,
	}
	fmt.Fprintln(cfg.out(), res)
	return res, nil
}

// AblationSharding compares shard-level profiles against monolithic
// per-application mean profiles (Section 2.1's motivation).
func AblationSharding(w *Workspace) (AblationResult, error) {
	cfg := w.Cfg
	train := append([]core.Sample(nil), w.TrainingSamples()...)
	valid := w.ValidationSamples()

	with := core.NewTrainer(train)
	with.Search = cfg.searchParams(0xAB2)
	if err := with.Train(w.ctx); err != nil {
		return AblationResult{}, err
	}
	wm, err := with.EvaluateOn(valid)
	if err != nil {
		return AblationResult{}, err
	}

	// Without sharding: replace every sample's characteristics with its
	// application's mean profile (what a monolithic profiler reports).
	mono := make([]core.Sample, len(train))
	copy(mono, train)
	appMean := map[int]profile.Characteristics{}
	appCount := map[int]int{}
	for _, s := range train {
		m := appMean[s.AppID]
		for i, v := range s.X {
			m[i] += v
		}
		appMean[s.AppID] = m
		appCount[s.AppID]++
	}
	for id, m := range appMean {
		for i := range m {
			m[i] /= float64(appCount[id])
		}
		appMean[id] = m
	}
	for i := range mono {
		mono[i].X = appMean[mono[i].AppID]
	}
	monoValid := make([]core.Sample, len(valid))
	copy(monoValid, valid)
	for i := range monoValid {
		monoValid[i].X = appMean[monoValid[i].AppID]
	}

	without := core.NewTrainer(mono)
	without.Search = cfg.searchParams(0xAB2)
	if err := without.Train(w.ctx); err != nil {
		return AblationResult{}, err
	}
	wo, err := without.EvaluateOn(monoValid)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "shard-level profiles", WithErr: wm.MedAPE, WithoutErr: wo.MedAPE}
	fmt.Fprintln(cfg.out(), res)
	return res, nil
}

// AblationStepwise compares genetic search against forward stepwise
// regression at an equal evaluation budget (Section 2.4's argument).
func AblationStepwise(w *Workspace) (AblationResult, error) {
	cfg := w.Cfg
	train := w.TrainingSamples()
	valid := w.ValidationSamples()

	with := core.NewTrainer(train)
	with.Search = cfg.searchParams(0xAB3)
	if err := with.Train(w.ctx); err != nil {
		return AblationResult{}, err
	}
	wm, err := with.EvaluateOn(valid)
	if err != nil {
		return AblationResult{}, err
	}
	budget := 0
	for _, gs := range with.History() {
		budget = gs.Evals
	}

	// Stepwise with the same fitness and budget, then a final full fit.
	ds := core.ToDataset(train)
	eval, err := stepwiseEvaluator(ds)
	if err != nil {
		return AblationResult{}, err
	}
	sres, err := genetic.Stepwise(w.ctx, core.NumVars, eval, budget)
	if err != nil {
		return AblationResult{}, err
	}
	final, err := regress.FitSpec(sres.Best.Spec, nil, ds, regress.Options{LogResponse: true, Stabilize: true})
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{
		Name:       "genetic search vs stepwise",
		WithErr:    wm.MedAPE,
		WithoutErr: final.Evaluate(core.ToDataset(valid)).MedAPE,
	}
	fmt.Fprintln(cfg.out(), res)
	return res, nil
}

// stepwiseEvaluator scores specs on an internal split of the dataset, with
// the training-split basis columns featurized once and shared across every
// candidate fit.
func stepwiseEvaluator(ds *regress.Dataset) (genetic.Evaluator, error) {
	prep := regress.Prepare(ds, true)
	var trainRows, valRows []int
	for i := 0; i < ds.NumRows(); i++ {
		if i%4 == 0 {
			valRows = append(valRows, i)
		} else {
			trainRows = append(trainRows, i)
		}
	}
	fz, err := regress.FeaturizeWith(prep, ds.Subset(trainRows))
	if err != nil {
		return nil, err
	}
	valDS := ds.Subset(valRows)
	return genetic.EvaluatorFunc(func(spec regress.Spec) float64 {
		m, err := fz.Fit(spec, regress.Options{LogResponse: true})
		if err != nil {
			return 1e6
		}
		return m.Evaluate(valDS).MedAPE
	}), nil
}

// AblationDomainSpecific compares the SpMV domain model (3 semantic software
// knobs) against a generic instruction-level treatment where the software
// side is only the raw block dimensions without the fill-ratio semantics
// (Section 5's "fewer, semantic-rich parameters to greater effect").
func AblationDomainSpecific(w *Workspace) (AblationResult, error) {
	cfg := w.Cfg
	s, err := w.spmvStudy("nasasrb")
	if err != nil {
		return AblationResult{}, err
	}
	train := s.Sample(cfg.SpmvTrain, cfg.Seed^0xAB5)
	valid := s.Sample(cfg.SpmvValidation, cfg.Seed^0xAB55)

	with, err := spmv.TrainDomainModel(w.ctx, s.Spec.Name, train, spmv.PredictMFlops, spmv.TrainOptions{
		Search: cfg.searchParams(0xAB5A),
	})
	if err != nil {
		return AblationResult{}, err
	}
	withMet := spmv.EvaluateDomainModel(with, valid)

	// Without the fill-ratio semantics: zero out x3 so the model must infer
	// the fill penalty from block dimensions alone.
	strip := func(pts []spmv.Point) []spmv.Point {
		out := append([]spmv.Point(nil), pts...)
		for i := range out {
			out[i].Fill = 1
		}
		return out
	}
	without, err := spmv.TrainDomainModel(w.ctx, s.Spec.Name, strip(train), spmv.PredictMFlops, spmv.TrainOptions{
		Search: cfg.searchParams(0xAB5A),
	})
	if err != nil {
		return AblationResult{}, err
	}
	withoutMet := spmv.EvaluateDomainModel(without, strip(valid))

	res := AblationResult{
		Name:       "domain-specific fill ratio",
		WithErr:    withMet.MedAPE,
		WithoutErr: withoutMet.MedAPE,
	}
	fmt.Fprintln(cfg.out(), res)
	return res, nil
}

// AblationLogResponse compares fitting log CPI against raw CPI — our one
// modeling choice beyond the paper's text, documented in DESIGN.md.
func AblationLogResponse(w *Workspace) (AblationResult, error) {
	return ablateModeler(w, "log-response fit", func(m *core.Trainer, on bool) {
		m.LogResponse = on
	})
}

// ablateModeler trains twice with a toggled knob.
func ablateModeler(w *Workspace, name string, set func(*core.Trainer, bool)) (AblationResult, error) {
	cfg := w.Cfg
	train := w.TrainingSamples()
	valid := w.ValidationSamples()
	run := func(on bool) (float64, error) {
		m := core.NewTrainer(train)
		m.Search = cfg.searchParams(0xABA)
		set(m, on)
		if err := m.Train(w.ctx); err != nil {
			return 0, err
		}
		met, err := m.EvaluateOn(valid)
		if err != nil {
			return 0, err
		}
		return met.MedAPE, nil
	}
	withErr, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	withoutErr, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: name, WithErr: withErr, WithoutErr: withoutErr}
	fmt.Fprintln(cfg.out(), res)
	return res, nil
}
