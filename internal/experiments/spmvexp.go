package experiments

import (
	"fmt"

	"hsmodel/internal/regress"
	"hsmodel/internal/spmv"
	"hsmodel/internal/stats"
)

// spmvStudy builds (or rebuilds) a scaled study for a Table 4 matrix.
func (w *Workspace) spmvStudy(name string) (*spmv.Study, error) {
	spec, err := spmv.ByName(name)
	if err != nil {
		return nil, err
	}
	return spmv.NewStudy(spec.Scaled(w.Cfg.SpmvScale)), nil
}

// ---------------------------------------------------------------------------
// Figure 12: SpMV blocking parameters vs performance (raefsky3).

// Fig12Result reports mean Mflop/s by block row and block column over the
// sampled space, plus fill ratios.
type Fig12Result struct {
	Matrix    string
	ByRow     [spmv.MaxBlockDim]float64 // mean Mflop/s for brow = i+1
	ByCol     [spmv.MaxBlockDim]float64 // mean Mflop/s for bcol = i+1
	FillByRow [spmv.MaxBlockDim]float64 // fill at (i+1) x 1
	FillByCol [spmv.MaxBlockDim]float64 // fill at 8 x (i+1)
	BestRow   int
	BestCol   int
}

// Fig12 draws the paper's 400 samples from the integrated SpMV-cache space
// for raefsky3 and averages performance at each parameter value.
func Fig12(w *Workspace) (Fig12Result, error) {
	s, err := w.spmvStudy("raefsky3")
	if err != nil {
		return Fig12Result{}, err
	}
	pts := s.Sample(w.Cfg.SpmvTrain, w.Cfg.Seed^0xF12)
	res := Fig12Result{Matrix: s.Spec.Name}
	var rowN, colN [spmv.MaxBlockDim]int
	for _, pt := range pts {
		res.ByRow[pt.R-1] += pt.MFlops
		rowN[pt.R-1]++
		res.ByCol[pt.C-1] += pt.MFlops
		colN[pt.C-1]++
	}
	for i := 0; i < spmv.MaxBlockDim; i++ {
		if rowN[i] > 0 {
			res.ByRow[i] /= float64(rowN[i])
		}
		if colN[i] > 0 {
			res.ByCol[i] /= float64(colN[i])
		}
		res.FillByRow[i] = s.FillRatio(i+1, 1)
		res.FillByCol[i] = s.FillRatio(8, i+1)
		if res.ByRow[i] > res.ByRow[res.BestRow] {
			res.BestRow = i
		}
		if res.ByCol[i] > res.ByCol[res.BestCol] {
			res.BestCol = i
		}
	}
	res.BestRow++
	res.BestCol++

	out := w.Cfg.out()
	fmt.Fprintf(out, "Figure 12 — %s blocking vs performance (%d samples)\n", res.Matrix, len(pts))
	fmt.Fprintf(out, "  brow:")
	for i, v := range res.ByRow {
		fmt.Fprintf(out, " %d:%.0fMF(f%.2f)", i+1, v, res.FillByRow[i])
	}
	fmt.Fprintf(out, "\n  bcol:")
	for i, v := range res.ByCol {
		fmt.Fprintf(out, " %d:%.0fMF(f%.2f)", i+1, v, res.FillByCol[i])
	}
	fmt.Fprintf(out, "\n  best brow=%d, best bcol=%d (paper: 8 block rows maximize; cols 1,4,8 equally effective)\n",
		res.BestRow, res.BestCol)
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 13: cache architecture vs performance (raefsky3).

// Fig13Result reports mean Mflop/s by cache parameter level.
type Fig13Result struct {
	Matrix   string
	ByLine   map[int]float64 // line size -> mean Mflop/s
	ByDSize  map[int]float64 // d-cache bytes -> mean Mflop/s
	ByDWays  map[int]float64 // associativity -> mean Mflop/s
	LineGain float64         // mean at 128B / mean at 16B
}

// Fig13 averages the same sampled space by hardware parameter.
func Fig13(w *Workspace) (Fig13Result, error) {
	s, err := w.spmvStudy("raefsky3")
	if err != nil {
		return Fig13Result{}, err
	}
	pts := s.Sample(w.Cfg.SpmvTrain, w.Cfg.Seed^0xF13)
	res := Fig13Result{
		Matrix: s.Spec.Name,
		ByLine: map[int]float64{}, ByDSize: map[int]float64{}, ByDWays: map[int]float64{},
	}
	nLine, nSize, nWays := map[int]int{}, map[int]int{}, map[int]int{}
	for _, pt := range pts {
		res.ByLine[pt.Cfg.LineBytes] += pt.MFlops
		nLine[pt.Cfg.LineBytes]++
		res.ByDSize[pt.Cfg.DSizeBytes] += pt.MFlops
		nSize[pt.Cfg.DSizeBytes]++
		res.ByDWays[pt.Cfg.DWays] += pt.MFlops
		nWays[pt.Cfg.DWays]++
	}
	for k := range res.ByLine {
		res.ByLine[k] /= float64(nLine[k])
	}
	for k := range res.ByDSize {
		res.ByDSize[k] /= float64(nSize[k])
	}
	for k := range res.ByDWays {
		res.ByDWays[k] /= float64(nWays[k])
	}
	if res.ByLine[16] > 0 {
		res.LineGain = res.ByLine[128] / res.ByLine[16]
	}

	out := w.Cfg.out()
	fmt.Fprintf(out, "Figure 13 — %s cache architecture vs performance\n", res.Matrix)
	fmt.Fprintf(out, "  line size:")
	for _, k := range []int{16, 32, 64, 128} {
		fmt.Fprintf(out, " %dB:%.0fMF", k, res.ByLine[k])
	}
	fmt.Fprintf(out, " (gain 16->128: %.1fx)\n  d-size:", res.LineGain)
	for _, k := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		fmt.Fprintf(out, " %dK:%.0fMF", k/1024, res.ByDSize[k])
	}
	fmt.Fprintf(out, "\n  d-ways:")
	for _, k := range []int{1, 2, 4, 8} {
		fmt.Fprintf(out, " %d:%.0fMF", k, res.ByDWays[k])
	}
	fmt.Fprintln(out)
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 14: per-matrix performance and power model accuracy.

// Fig14Row is one matrix's accuracy.
type Fig14Row struct {
	Index       int
	Matrix      string
	Perf, Power regress.Metrics
}

// Fig14Result reports accuracy for all Table 4 matrices.
type Fig14Result struct {
	Rows []Fig14Row
	// MedianPerfErr and MedianPowerErr summarize across matrices (paper:
	// 4-6% median errors).
	MedianPerfErr, MedianPowerErr float64
}

// Fig14 trains and validates domain models for every matrix.
func Fig14(w *Workspace) (Fig14Result, error) {
	cfg := w.Cfg
	var res Fig14Result
	var perfErrs, powerErrs []float64
	out := cfg.out()
	fmt.Fprintf(out, "Figure 14 — SpMV model accuracy (%d train / %d validation per matrix)\n",
		cfg.SpmvTrain, cfg.SpmvValidation)
	for _, spec := range spmv.Corpus() {
		s := spmv.NewStudy(spec.Scaled(cfg.SpmvScale))
		train := s.Sample(cfg.SpmvTrain, cfg.Seed^uint64(0x140+spec.Index))
		valid := s.Sample(cfg.SpmvValidation, cfg.Seed^uint64(0x1400+spec.Index))
		models, err := spmv.TrainModels(w.ctx, spec.Name, train, spmv.TrainOptions{
			Search: cfg.searchParams(uint64(0x14AA + spec.Index)),
		})
		if err != nil {
			return res, fmt.Errorf("fig14 %s: %w", spec.Name, err)
		}
		row := Fig14Row{
			Index:  spec.Index,
			Matrix: spec.Name,
			Perf:   spmv.EvaluateDomainModel(models.Perf, valid),
			Power:  spmv.EvaluateDomainModel(models.Power, valid),
		}
		res.Rows = append(res.Rows, row)
		perfErrs = append(perfErrs, row.Perf.MedAPE)
		powerErrs = append(powerErrs, row.Power.MedAPE)
		fmt.Fprintf(out, "  %2d %-10s perf %.1f%% (rho %.3f) | power %.1f%% (rho %.3f)\n",
			row.Index, spec.Name, 100*row.Perf.MedAPE, row.Perf.Pearson,
			100*row.Power.MedAPE, row.Power.Pearson)
	}
	res.MedianPerfErr = stats.Median(perfErrs)
	res.MedianPowerErr = stats.Median(powerErrs)
	fmt.Fprintf(out, "  across matrices: perf median %.1f%%, power median %.1f%% (paper: 4-6%%)\n",
		100*res.MedianPerfErr, 100*res.MedianPowerErr)
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 15: profiled vs predicted performance topology (nasasrb).

// Fig15Result holds the two 8x8 speedup grids.
type Fig15Result struct {
	Matrix    string
	Profiled  [spmv.MaxBlockDim][spmv.MaxBlockDim]float64
	Predicted [spmv.MaxBlockDim][spmv.MaxBlockDim]float64
	// PeakAgreement reports whether the predicted argmax block size matches
	// the profiled argmax up to ties within 5%.
	PeakAgreement bool
	// Correlation between the 64 profiled and predicted cells.
	Correlation float64
}

// Fig15 exhaustively profiles nasasrb's 64 variants on the baseline cache,
// trains a model on sparse samples, and compares topologies.
func Fig15(w *Workspace) (Fig15Result, error) {
	cfg := w.Cfg
	s, err := w.spmvStudy("nasasrb")
	if err != nil {
		return Fig15Result{}, err
	}
	res := Fig15Result{Matrix: s.Spec.Name}
	base := spmv.BaselineCache()
	base1 := s.Simulate(1, 1, base).MFlops()

	train := s.Sample(cfg.SpmvTrain, cfg.Seed^0xF15)
	models, err := spmv.TrainModels(w.ctx, s.Spec.Name, train, spmv.TrainOptions{
		Search: cfg.searchParams(0xF15A),
	})
	if err != nil {
		return res, err
	}

	var flat, flatPred []float64
	bestProf, bestPred := [2]int{1, 1}, [2]int{1, 1}
	for r := 1; r <= spmv.MaxBlockDim; r++ {
		for c := 1; c <= spmv.MaxBlockDim; c++ {
			prof := s.Simulate(r, c, base).MFlops() / base1
			pred := models.Perf.Predict(r, c, s.FillRatio(r, c), base) / base1
			res.Profiled[r-1][c-1] = prof
			res.Predicted[r-1][c-1] = pred
			flat = append(flat, prof)
			flatPred = append(flatPred, pred)
			if prof > res.Profiled[bestProf[0]-1][bestProf[1]-1] {
				bestProf = [2]int{r, c}
			}
			if pred > res.Predicted[bestPred[0]-1][bestPred[1]-1] {
				bestPred = [2]int{r, c}
			}
		}
	}
	res.Correlation = stats.Pearson(flat, flatPred)
	// Agreement: the profiled speedup at the predicted peak is within 5% of
	// the true peak.
	res.PeakAgreement = res.Profiled[bestPred[0]-1][bestPred[1]-1] >=
		0.95*res.Profiled[bestProf[0]-1][bestProf[1]-1]

	out := cfg.out()
	fmt.Fprintf(out, "Figure 15 — %s performance topology (speedup over 1x1)\n", res.Matrix)
	printGrid := func(label string, g [spmv.MaxBlockDim][spmv.MaxBlockDim]float64) {
		fmt.Fprintf(out, "  %s:\n", label)
		for r := 0; r < spmv.MaxBlockDim; r++ {
			fmt.Fprintf(out, "   ")
			for c := 0; c < spmv.MaxBlockDim; c++ {
				fmt.Fprintf(out, " %5.2f", g[r][c])
			}
			fmt.Fprintln(out)
		}
	}
	printGrid("profiled", res.Profiled)
	printGrid("predicted", res.Predicted)
	fmt.Fprintf(out, "  profiled peak %dx%d, predicted peak %dx%d, cell correlation %.3f, peak agreement %v\n",
		bestProf[0], bestProf[1], bestPred[0], bestPred[1], res.Correlation, res.PeakAgreement)
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 16: coordinated optimization across the corpus.

// Fig16Row is one matrix's tuning outcome.
type Fig16Row struct {
	Index  int
	Matrix string
	spmv.TuningResult
}

// Fig16Result aggregates tuning across Table 4.
type Fig16Result struct {
	Rows []Fig16Row
	// Mean speedups across matrices (paper: app 1.6x, arch 2.7x, coordinated 5.0x).
	MeanApp, MeanArch, MeanCoord float64
	// Energy per flop, averaged (paper: 17 baseline, 11 app-tuned, 25
	// arch-tuned; coordinated 0.9x of baseline).
	MeanBaseNJ, MeanAppNJ, MeanArchNJ, MeanCoordNJ float64
}

// Fig16 runs the four tuning strategies for every matrix, using inferred
// models as the search oracle (the paper's tractability argument) and
// simulation only to confirm chosen points.
func Fig16(w *Workspace) (Fig16Result, error) {
	cfg := w.Cfg
	var res Fig16Result
	out := cfg.out()
	fmt.Fprintf(out, "Figure 16 — coordinated optimization (model-guided)\n")
	for _, spec := range spmv.Corpus() {
		s := spmv.NewStudy(spec.Scaled(cfg.SpmvScale))
		train := s.Sample(cfg.SpmvTrain/2, cfg.Seed^uint64(0x160+spec.Index))
		models, err := spmv.TrainModels(w.ctx, spec.Name, train, spmv.TrainOptions{
			Search: cfg.searchParams(uint64(0x16AA + spec.Index)),
		})
		if err != nil {
			return res, err
		}
		tr := spmv.Tune(spmv.TuneOptions{
			Study:           s,
			Models:          &models,
			CacheCandidates: 150,
			Seed:            cfg.Seed ^ uint64(spec.Index),
		})
		row := Fig16Row{Index: spec.Index, Matrix: spec.Name, TuningResult: tr}
		res.Rows = append(res.Rows, row)
		res.MeanApp += tr.AppSpeedup()
		res.MeanArch += tr.ArchSpeedup()
		res.MeanCoord += tr.CoordSpeedup()
		res.MeanBaseNJ += tr.Baseline.NJFlop
		res.MeanAppNJ += tr.AppTuned.NJFlop
		res.MeanArchNJ += tr.ArchTuned.NJFlop
		res.MeanCoordNJ += tr.Coordinated.NJFlop
		fmt.Fprintf(out, "  %2d %-10s app %.2fx (%4.1f nJ/F) arch %.2fx (%4.1f) coord %.2fx (%4.1f) [base %.0fMF %4.1f nJ/F, best block %dx%d]\n",
			spec.Index, spec.Name,
			tr.AppSpeedup(), tr.AppTuned.NJFlop,
			tr.ArchSpeedup(), tr.ArchTuned.NJFlop,
			tr.CoordSpeedup(), tr.Coordinated.NJFlop,
			tr.Baseline.MFlops, tr.Baseline.NJFlop,
			tr.Coordinated.R, tr.Coordinated.C)
	}
	n := float64(len(res.Rows))
	res.MeanApp /= n
	res.MeanArch /= n
	res.MeanCoord /= n
	res.MeanBaseNJ /= n
	res.MeanAppNJ /= n
	res.MeanArchNJ /= n
	res.MeanCoordNJ /= n
	fmt.Fprintf(out, "  means: app %.2fx arch %.2fx coord %.2fx (paper: 1.6x / 2.7x / 5.0x)\n",
		res.MeanApp, res.MeanArch, res.MeanCoord)
	fmt.Fprintf(out, "  energy nJ/Flop: base %.1f app %.1f arch %.1f coord %.1f (paper: 17 / 11 / 25 / ~15)\n",
		res.MeanBaseNJ, res.MeanAppNJ, res.MeanArchNJ, res.MeanCoordNJ)
	return res, nil
}
