package experiments

import (
	"fmt"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/regress"
)

// hwConfig aliases the hardware configuration type for experiment brevity.
type hwConfig = hwspace.Config

func baselineHW() hwConfig { return hwspace.Baseline() }

// ---------------------------------------------------------------------------
// Section 4.2 "Modeling Time": parallel genetic search scaling.

// ParTimeResult reports search wall time by worker count.
type ParTimeResult struct {
	Workers []int
	Seconds []float64
	// Speedup is Seconds[0]/Seconds[len-1] (1 worker vs max workers). The
	// paper reports 9x on twelve cores; on a single-core host this is ~1.
	Speedup float64
}

// ParTime measures the embarrassingly parallel inner loop at several worker
// counts on a fixed training set.
func ParTime(w *Workspace, workers []int) ParTimeResult {
	cfg := w.Cfg
	train := w.TrainingSamples()
	var res ParTimeResult
	for _, n := range workers {
		m := core.NewTrainer(train)
		p := cfg.searchParams(0x9A12)
		p.Workers = n
		p.Generations = cfg.Generations / 2
		if p.Generations < 3 {
			p.Generations = 3
		}
		m.Search = p
		start := time.Now()
		if err := m.Train(w.ctx); err != nil {
			continue
		}
		res.Workers = append(res.Workers, n)
		res.Seconds = append(res.Seconds, time.Since(start).Seconds())
	}
	if len(res.Seconds) > 1 && res.Seconds[len(res.Seconds)-1] > 0 {
		res.Speedup = res.Seconds[0] / res.Seconds[len(res.Seconds)-1]
	}
	out := cfg.out()
	fmt.Fprintf(out, "Section 4.2 — parallel modeling time (paper: 9x on 12 cores)\n")
	for i := range res.Workers {
		fmt.Fprintf(out, "  %2d workers: %.2fs\n", res.Workers[i], res.Seconds[i])
	}
	fmt.Fprintf(out, "  speedup: %.2fx\n", res.Speedup)
	return res
}

// ---------------------------------------------------------------------------
// Section 4.3 "Reduced Profiling Costs": one shared integrated model vs a
// per-application model for each application.

// CostsResult compares profiling budgets.
type CostsResult struct {
	// PerAppProfiles is the per-application budget at which isolated
	// hardware-only models reach the accuracy target.
	PerAppProfiles int
	// SharedProfiles is the per-application budget at which the shared
	// integrated model reaches the same target.
	SharedProfiles int
	// Reduction is PerAppProfiles / SharedProfiles (paper: 2-4x).
	Reduction float64
	// Target is the median-error target used for the comparison.
	Target float64
	// ExtrapolationReduction contrasts predicting a brand-new application:
	// the shared model needs only the §3.3 update budget (~15 profiles)
	// while a per-application model starts from scratch (paper: 20-40x).
	ExtrapolationReduction float64
}

// Costs sweeps the training budget for both approaches until each reaches
// the accuracy target on held-out pairs.
func Costs(w *Workspace) (CostsResult, error) {
	cfg := w.Cfg
	res := CostsResult{Target: 0.10}
	col := cfg.collector()
	apps := w.Apps()
	valid := w.ValidationSamples()
	validByApp := map[int][]core.Sample{}
	for _, s := range valid {
		validByApp[s.AppID] = append(validByApp[s.AppID], s)
	}

	budgets := []int{15, 25, 40, 60, 90, 130, 200, 300, 400}

	// Per-application models: a hardware-only regression per application
	// (the prior work the paper compares against: "each application would
	// require its own architectural model and 400-800 architectural
	// profiles").
	perAppBudget := func(budget int) float64 {
		var worst float64
		for n := range apps {
			train := col.Collect(apps[n:n+1], budget, cfg.Seed^uint64(0xCC0+n))
			for i := range train {
				train[i].AppID = n
			}
			met, err := fitHardwareOnly(train, validByApp[n], cfg)
			if err != nil {
				// Too few rows for the model: this budget cannot work.
				return 1
			}
			if met.MedAPE > worst {
				worst = met.MedAPE
			}
		}
		return worst
	}
	for _, b := range budgets {
		if perAppBudget(b) <= res.Target {
			res.PerAppProfiles = b
			break
		}
	}
	if res.PerAppProfiles == 0 {
		res.PerAppProfiles = budgets[len(budgets)-1]
	}

	// Shared integrated model: one model over all applications.
	for _, b := range budgets {
		train := col.Collect(apps, b, cfg.Seed^0xCCF)
		m := core.NewTrainer(train)
		p := cfg.searchParams(0xC057)
		p.Generations = cfg.Generations / 2
		m.Search = p
		if err := m.Train(w.ctx); err != nil {
			continue
		}
		var worst float64
		for n := range apps {
			met, err := m.EvaluateOn(validByApp[n])
			if err != nil {
				continue
			}
			if met.MedAPE > worst {
				worst = met.MedAPE
			}
		}
		if worst <= res.Target {
			res.SharedProfiles = b
			break
		}
	}
	if res.SharedProfiles == 0 {
		res.SharedProfiles = budgets[len(budgets)-1]
	}
	res.Reduction = float64(res.PerAppProfiles) / float64(res.SharedProfiles)
	// Extrapolating a new application: shared model update needs ~15
	// profiles (§3.3); a fresh per-application model needs PerAppProfiles.
	res.ExtrapolationReduction = float64(res.PerAppProfiles) / 15 * res.Reduction

	out := cfg.out()
	fmt.Fprintf(out, "Section 4.3 — reduced profiling costs (target: %.0f%% per-app median error)\n", 100*res.Target)
	fmt.Fprintf(out, "  per-application models: %d profiles/app\n", res.PerAppProfiles)
	fmt.Fprintf(out, "  shared integrated model: %d profiles/app\n", res.SharedProfiles)
	fmt.Fprintf(out, "  reduction: %.1fx (paper: 2-4x)\n", res.Reduction)
	fmt.Fprintf(out, "  extrapolation-by-update reduction: %.0fx (paper: 20-40x)\n", res.ExtrapolationReduction)
	return res, nil
}

// fitHardwareOnly fits a y-variables-only model (the prior-work baseline)
// with a fixed rich specification.
func fitHardwareOnly(train, valid []core.Sample, cfg Config) (regress.Metrics, error) {
	spec := regress.Spec{Codes: make([]regress.TransformCode, core.NumVars)}
	for v := 13; v < core.NumVars; v++ {
		spec.Codes[v] = regress.Quadratic
	}
	// Key hardware interactions, hand-specified as in prior work.
	spec.Interactions = []regress.Interaction{
		{I: 13, J: 14}, {I: 13, J: 21}, {I: 17, J: 19}, {I: 14, J: 20},
	}
	ds := core.ToDataset(train)
	m, err := regress.FitSpec(spec, nil, ds, regress.Options{LogResponse: true, Stabilize: true})
	if err != nil {
		return regress.Metrics{}, err
	}
	return m.Evaluate(core.ToDataset(valid)), nil
}

// ---------------------------------------------------------------------------
// Manual-modeling comparison (Section 4.2): genetic search vs a hand-built
// specification.

// ManualResult contrasts the automated search with a hand-tuned model.
type ManualResult struct {
	GeneticErr float64
	ManualErr  float64
	// Improvement is (ManualErr-GeneticErr)/ManualErr; the paper finds
	// genetic-search errors ~10% lower than hand-tuning.
	Improvement float64
}

// Manual fits a plausible hand-specified model — the kind a careful analyst
// writes down: linear software terms, quadratic hardware terms, the obvious
// interactions — and compares validation error against the genetic search.
func Manual(w *Workspace) (ManualResult, error) {
	m, err := w.Model()
	if err != nil {
		return ManualResult{}, err
	}
	valid := w.ValidationSamples()
	gmet, err := m.EvaluateOn(valid)
	if err != nil {
		return ManualResult{}, err
	}

	spec := regress.Spec{Codes: make([]regress.TransformCode, core.NumVars)}
	for v := 0; v < core.NumVars; v++ {
		if core.IsSoftwareVar(v) {
			spec.Codes[v] = regress.Linear
		} else {
			spec.Codes[v] = regress.Quadratic
		}
	}
	// The interactions an architect would write down: width x window,
	// memory mix x cache sizes, branch mix x width.
	spec.Interactions = []regress.Interaction{
		{I: 13, J: 14}, // width x window
		{I: 6, J: 17},  // memory ops x d-cache size
		{I: 7, J: 17},  // d-reuse x d-cache size
		{I: 7, J: 19},  // d-reuse x L2 size
		{I: 1, J: 13},  // taken branches x width
		{I: 12, J: 13}, // basic block x width
	}
	ds := core.ToDataset(m.Samples())
	manual, err := regress.FitSpec(spec, nil, ds, regress.Options{LogResponse: true, Stabilize: true})
	if err != nil {
		return ManualResult{}, err
	}
	mmet := manual.Evaluate(core.ToDataset(valid))

	res := ManualResult{GeneticErr: gmet.MedAPE, ManualErr: mmet.MedAPE}
	if res.ManualErr > 0 {
		res.Improvement = (res.ManualErr - res.GeneticErr) / res.ManualErr
	}
	out := w.Cfg.out()
	fmt.Fprintf(out, "Section 4.2 — automated vs manual specification\n")
	fmt.Fprintf(out, "  genetic search: %.1f%% median error\n", 100*res.GeneticErr)
	fmt.Fprintf(out, "  hand-tuned:     %.1f%% median error\n", 100*res.ManualErr)
	fmt.Fprintf(out, "  improvement: %.0f%% (paper: ~10%% lower errors)\n", 100*res.Improvement)
	return res, nil
}
