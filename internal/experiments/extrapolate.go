package experiments

import (
	"fmt"

	"hsmodel/internal/core"
	"hsmodel/internal/isa"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/stats"
	"hsmodel/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 10: shard-level leave-one-application-out extrapolation.

// Fig10Result reports per-application shard extrapolation.
type Fig10Result struct {
	PerApp  map[string]regress.Metrics
	Overall AccuracyResult
}

// Fig10 trains on n-1 applications and predicts the held-out application's
// shards, for each application in turn.
func Fig10(w *Workspace) (Fig10Result, error) {
	cfg := w.Cfg
	train := w.TrainingSamples()
	res := Fig10Result{PerApp: map[string]regress.Metrics{}}
	var allPred, allTruth []float64
	var allErrs []float64

	for n, app := range w.Apps() {
		var rest []core.Sample
		for _, s := range train {
			if s.AppID != n {
				rest = append(rest, s)
			}
		}
		m := core.NewTrainer(rest)
		m.Search = cfg.searchParams(uint64(0xF10 + n))
		if err := m.Train(w.ctx); err != nil {
			return res, fmt.Errorf("fig10 %s: %w", app.Name, err)
		}
		// Validate against separately profiled shards of application n.
		perApp := cfg.ValidationPairs / len(w.Apps()) * 3
		if perApp < 20 {
			perApp = 20
		}
		valid := cfg.collector().Collect([]*trace.App{app}, perApp, cfg.Seed^uint64(0xAB10+n))
		met, err := m.EvaluateOn(valid)
		if err != nil {
			return res, err
		}
		res.PerApp[app.Name] = met
		pred := m.Model().PredictAll(core.ToDataset(valid))
		for i, s := range valid {
			allPred = append(allPred, pred[i])
			allTruth = append(allTruth, s.CPI)
		}
		allErrs = append(allErrs, stats.AbsPctErrors(pred, truthOf(valid))...)
	}
	res.Overall = AccuracyResult{
		Name:    "shard extrapolation",
		Metrics: regress.Assess(allPred, allTruth),
		Errors:  stats.Boxplot(allErrs),
	}
	out := cfg.out()
	fmt.Fprintf(out, "Figure 10 — shard-level extrapolation (leave-one-application-out)\n")
	for _, app := range w.Apps() {
		fmt.Fprintf(out, "  %-10s %v\n", app.Name, res.PerApp[app.Name])
	}
	printAccuracy(out, "  overall", res.Overall)
	return res, nil
}

func truthOf(samples []core.Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.CPI
	}
	return out
}

// ---------------------------------------------------------------------------
// Figures 7(b)/8(b): extrapolation for software variants, plus the in-text
// compiler-optimization effect ("up to 60%; mean effect is 26%").

// Fig7bResult reports variant extrapolation.
type Fig7bResult struct {
	Accuracy AccuracyResult
	// OptEffectMax/Mean quantify how much -O1/-O3 move performance against
	// the base binary on a fixed architecture.
	OptEffectMax, OptEffectMean float64
	Updated                     bool
}

// Fig7b perturbs the trained system with -O1/-O3 and -v1/-v2/-v3 variants,
// runs the update protocol, and validates on variant pairs.
func Fig7b(w *Workspace) (Fig7bResult, error) {
	cfg := w.Cfg
	base, err := w.Model()
	if err != nil {
		return Fig7bResult{}, err
	}
	// Work on a copy so the workspace's steady-state model stays pristine.
	m := core.NewTrainer(base.Samples())
	m.Search = cfg.searchParams(0xF7B)
	if err := m.Train(w.ctx); err != nil {
		return Fig7bResult{}, err
	}

	// Build the variant roster: every application's five variants.
	var variants []*trace.App
	for _, app := range w.Apps() {
		variants = append(variants, trace.Variants(app)...)
	}
	col := cfg.collector()
	// Update profiles: a few per variant (10-20 points suffice, §3.3).
	perVariant := 4
	update := col.Collect(variants, perVariant, cfg.Seed^0x7B07)
	for i := range update {
		update[i].AppID = 100 + update[i].AppID // new software identities
	}
	decision, err := m.Perturb(w.ctx, update, core.UpdatePolicy{ErrThreshold: 0.10, MinProfiles: 10})
	if err != nil {
		return Fig7bResult{}, err
	}

	// Validate on fresh variant pairs (the paper's 150).
	perVariantVal := (150 + len(variants) - 1) / len(variants)
	valid := col.Collect(variants, perVariantVal, cfg.Seed^0x7B99)
	met, err := m.EvaluateOn(valid)
	if err != nil {
		return Fig7bResult{}, err
	}
	res := Fig7bResult{
		Accuracy: AccuracyResult{
			Name:    "variant extrapolation",
			Metrics: met,
			Errors:  stats.Boxplot(m.Model().ErrorDistribution(core.ToDataset(valid))),
		},
		Updated: decision.Updated,
	}

	// Compiler-optimization effect on a fixed architecture.
	res.OptEffectMax, res.OptEffectMean = optEffect(w)

	out := cfg.out()
	fmt.Fprintf(out, "Figure 7(b)/8(b) — software-variant extrapolation (update: %v)\n", decision)
	printAccuracy(out, "  accuracy", res.Accuracy)
	fmt.Fprintf(out, "  compiler optimizations move performance: max %.0f%%, mean %.0f%% (paper: up to 60%%, mean 26%%)\n",
		100*res.OptEffectMax, 100*res.OptEffectMean)
	return res, nil
}

// optEffect measures |CPI(variant)-CPI(base)|/CPI(base) for the compiler
// variants on the baseline architecture.
func optEffect(w *Workspace) (maxEff, meanEff float64) {
	cfg := w.Cfg
	col := cfg.collector()
	var effects []float64
	for appID, app := range w.Apps() {
		for shard := 0; shard < 3; shard++ {
			baseCPI := simCPI(col, app, appID, shard)
			for _, opt := range []trace.Opt{trace.OptO1, trace.OptO3} {
				v := trace.WithOpt(app, opt)
				eff := simCPI(col, v, appID, shard)/baseCPI - 1
				if eff < 0 {
					eff = -eff
				}
				effects = append(effects, eff)
			}
		}
	}
	for _, e := range effects {
		if e > maxEff {
			maxEff = e
		}
		meanEff += e
	}
	meanEff /= float64(len(effects))
	return
}

func simCPI(col *core.Collector, app *trace.App, appID, shard int) float64 {
	s := col.CollectPairs([]*trace.App{app}, []int{0}, []int{shard},
		[]hwConfig{baselineHW()})
	return s[0].CPI
}

// ---------------------------------------------------------------------------
// Figures 7(c)/8(c): extrapolation for fundamentally new software on new
// architectures, with model updates.

// Fig7cResult reports leave-one-out application extrapolation after updates.
type Fig7cResult struct {
	PerApp  map[string]regress.Metrics
	Overall AccuracyResult
	Updated int // how many of the turns triggered a model update
}

// Fig7c gives each application a turn as "application n": the other n-1
// train, application n perturbs the system, the model updates, and accuracy
// is measured on fresh (application n, architecture) pairs.
func Fig7c(w *Workspace) (Fig7cResult, error) {
	cfg := w.Cfg
	train := w.TrainingSamples()
	col := cfg.collector()
	res := Fig7cResult{PerApp: map[string]regress.Metrics{}}
	var allPred, allTruth, allErrs []float64

	for n, app := range w.Apps() {
		var rest []core.Sample
		for _, s := range train {
			if s.AppID != n {
				rest = append(rest, s)
			}
		}
		m := core.NewTrainer(rest)
		m.Search = cfg.searchParams(uint64(0xF7C + n))
		if err := m.Train(w.ctx); err != nil {
			return res, err
		}
		// Perturb with 10-20 profiles of the new application; the update
		// protocol decides whether to re-specify.
		newProfiles := col.Collect([]*trace.App{app}, 15, cfg.Seed^uint64(0xC0+n))
		for i := range newProfiles {
			newProfiles[i].AppID = n
		}
		d, err := m.Perturb(w.ctx, newProfiles, core.UpdatePolicy{ErrThreshold: 0.10, MinProfiles: 10})
		if err != nil {
			return res, err
		}
		if d.Updated {
			res.Updated++
		}
		// Validate on fresh pairs of application n (new architectures).
		valid := col.Collect([]*trace.App{app}, cfg.ValidationPairs/len(w.Apps()), cfg.Seed^uint64(0xC70+n))
		met, err := m.EvaluateOn(valid)
		if err != nil {
			return res, err
		}
		res.PerApp[app.Name] = met
		pred := m.Model().PredictAll(core.ToDataset(valid))
		allPred = append(allPred, pred...)
		allTruth = append(allTruth, truthOf(valid)...)
		allErrs = append(allErrs, stats.AbsPctErrors(pred, truthOf(valid))...)
	}
	res.Overall = AccuracyResult{
		Name:    "new app/arch extrapolation",
		Metrics: regress.Assess(allPred, allTruth),
		Errors:  stats.Boxplot(allErrs),
	}
	out := cfg.out()
	fmt.Fprintf(out, "Figure 7(c)/8(c) — new application + architecture extrapolation (%d/%d turns updated)\n",
		res.Updated, len(w.Apps()))
	for _, app := range w.Apps() {
		fmt.Fprintf(out, "  %-10s %v\n", app.Name, res.PerApp[app.Name])
	}
	printAccuracy(out, "  overall", res.Overall)
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 9: why bwaves extrapolates poorly.

// Fig9Result quantifies the outlier analysis.
type Fig9Result struct {
	// Deltas[app][i] is (mean characteristic i of app) minus (mean of its
	// n-1 training applications), normalized by the training mean.
	Deltas map[string]profile.Characteristics
	// CPIBwaves and CPIOthers are CPI histograms on a fixed architecture.
	CPIBwaves, CPIOthers stats.Histogram
	// BwavesModes counts detected CPI modes for bwaves (the paper: bimodal
	// around 0.5 and 1.0).
	BwavesModes int
}

// Fig9 contrasts bwaves (and sjeng) against their training sets.
func Fig9(w *Workspace) Fig9Result {
	cfg := w.Cfg
	res := Fig9Result{Deltas: map[string]profile.Characteristics{}}

	// Mean characteristics per application.
	means := map[string]profile.Characteristics{}
	var order []string
	for _, app := range w.Apps() {
		app := app
		profs := profile.StreamShards(app.Name, profile.ShardRange(cfg.ShardPool/2), 0, func(s int) isa.Stream {
			return app.ShardStream(s, cfg.ShardLen)
		})
		means[app.Name] = profile.MeanCharacteristics(profs)
		order = append(order, app.Name)
	}
	for _, target := range order {
		var trainMean profile.Characteristics
		n := 0
		for _, other := range order {
			if other == target {
				continue
			}
			for i, v := range means[other] {
				trainMean[i] += v
			}
			n++
		}
		var delta profile.Characteristics
		for i := range trainMean {
			trainMean[i] /= float64(n)
			if trainMean[i] != 0 {
				delta[i] = (means[target][i] - trainMean[i]) / trainMean[i]
			}
		}
		res.Deltas[target] = delta
	}

	// CPI distributions on the baseline architecture.
	col := cfg.collector()
	var bwCPI, otherCPI []float64
	for appID, app := range w.Apps() {
		for s := 0; s < cfg.ShardPool; s++ {
			sample := col.CollectPairs([]*trace.App{app}, []int{0}, []int{s}, []hwConfig{baselineHW()})
			if w.Apps()[appID].Name == "bwaves" {
				bwCPI = append(bwCPI, sample[0].CPI)
			} else {
				otherCPI = append(otherCPI, sample[0].CPI)
			}
		}
	}
	res.CPIBwaves = stats.NewHistogram(bwCPI, 16)
	res.CPIOthers = stats.NewHistogram(otherCPI, 16)
	res.BwavesModes = len(res.CPIBwaves.Modes(len(bwCPI) / 20))

	out := cfg.out()
	fmt.Fprintf(out, "Figure 9 — outlier analysis\n")
	fmt.Fprintf(out, "  normalized characteristic deltas vs training mean (|delta| > 0.5 marked *):\n")
	for _, name := range []string{"sjeng", "bwaves"} {
		fmt.Fprintf(out, "  %-8s", name)
		for i, d := range res.Deltas[name] {
			mark := " "
			if d > 0.5 || d < -0.5 {
				mark = "*"
			}
			fmt.Fprintf(out, " x%d=%+.2f%s", i+1, d, mark)
		}
		fmt.Fprintln(out)
	}
	printHistogramTo(out, "  CPI, all apps except bwaves", res.CPIOthers)
	printHistogramTo(out, "  CPI, bwaves", res.CPIBwaves)
	fmt.Fprintf(out, "  bwaves CPI modes detected: %d (paper: bimodal)\n", res.BwavesModes)
	return res
}

// MaxAbsDelta returns the largest |normalized delta| across characteristics
// for an application — the Figure 9(a) headline comparison.
func (r Fig9Result) MaxAbsDelta(app string) float64 {
	var maxAbs float64
	for _, d := range r.Deltas[app] {
		if d < 0 {
			d = -d
		}
		if d > maxAbs {
			maxAbs = d
		}
	}
	return maxAbs
}
