package experiments

import (
	"fmt"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/isa"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/stats"
)

// ---------------------------------------------------------------------------
// Figure 3: variance stabilization of the 256B sum-of-reuse-distances.

// Fig3Result reports the long-tail characteristic before and after the
// ladder-of-powers transform.
type Fig3Result struct {
	Power         float64 // chosen exponent (the paper picks 1/5)
	SkewBefore    float64
	SkewAfter     float64
	HistBefore    stats.Histogram
	HistAfter     stats.Histogram
	TailRatio     float64 // p99 / median before transform: the "order of magnitude" outliers
	SamplesShards int
}

// Fig3 profiles shards of every application and stabilizes the 256B-block
// sum-of-reuse-distances characteristic.
func Fig3(w *Workspace) Fig3Result {
	cfg := w.Cfg
	var sums []float64
	for _, app := range w.Apps() {
		app := app
		profs := profile.StreamShards(app.Name, profile.ShardRange(cfg.ShardPool), 0, func(s int) isa.Stream {
			return app.ShardStream(s, cfg.ShardLen)
		})
		for _, p := range profs {
			sums = append(sums, p.SumReuse256)
		}
	}
	res := Fig3Result{
		SkewBefore:    stats.Skewness(sums),
		HistBefore:    stats.NewHistogram(sums, 20),
		Power:         stats.ChoosePower(sums),
		SamplesShards: len(sums),
	}
	qs := stats.Quantiles(sums, 0.5, 0.99)
	if qs[0] > 0 {
		res.TailRatio = qs[1] / qs[0]
	}
	transformed := append([]float64(nil), sums...)
	stats.ApplyPower(transformed, res.Power)
	res.SkewAfter = stats.Skewness(transformed)
	res.HistAfter = stats.NewHistogram(transformed, 20)

	out := cfg.out()
	fmt.Fprintf(out, "Figure 3 — variance stabilization (%d shards)\n", len(sums))
	fmt.Fprintf(out, "  chosen power: x^%.3g (paper: x^(1/5))\n", res.Power)
	fmt.Fprintf(out, "  skewness: %.2f -> %.2f\n", res.SkewBefore, res.SkewAfter)
	fmt.Fprintf(out, "  p99/median tail ratio before transform: %.1fx\n", res.TailRatio)
	printHistogramTo(out, "  raw", res.HistBefore)
	printHistogramTo(out, "  transformed", res.HistAfter)
	return res
}

// ---------------------------------------------------------------------------
// Figure 5 (convergence), Figure 4 (interaction frequency), Table 3
// (transformations) — all read out of one genetic search.

// SearchAnatomyResult bundles the three readouts of the converged search.
type SearchAnatomyResult struct {
	// History is the per-generation sum of per-application median errors
	// (Figure 5's y-axis).
	History []float64
	// InteractionFreq[i][j] counts pairwise interactions among the 50 best
	// models (Figure 4).
	InteractionFreq [][]int
	// Consensus is the per-variable transformation among the best models
	// (Table 3).
	Consensus []regress.TransformCode
	// Best is the converged fitness (mean per-app median error).
	Best float64
}

// SearchAnatomy trains the workspace model and dissects the search.
func SearchAnatomy(w *Workspace) (SearchAnatomyResult, error) {
	m, err := w.Model()
	if err != nil {
		return SearchAnatomyResult{}, err
	}
	apps := float64(len(w.Apps()))
	var res SearchAnatomyResult
	for _, gs := range m.History() {
		res.History = append(res.History, gs.Best*apps)
	}
	top := m.Population()
	if len(top) > 50 {
		top = top[:50]
	}
	res.InteractionFreq = genetic.InteractionFrequency(top, core.NumVars)
	res.Consensus = genetic.TransformConsensus(top, core.NumVars)
	res.Best = m.Population()[0].Fitness

	out := w.Cfg.out()
	fmt.Fprintf(out, "Figure 5 — genetic search convergence (sum of per-app median errors)\n")
	for g, v := range res.History {
		fmt.Fprintf(out, "  gen %2d: %.4f\n", g, v)
	}
	fmt.Fprintf(out, "Table 3 — transformations after %d generations\n", len(res.History))
	names := core.VarNames()
	byCode := map[regress.TransformCode][]string{}
	for v, c := range res.Consensus {
		byCode[c] = append(byCode[c], names[v])
	}
	for _, c := range []regress.TransformCode{
		regress.Excluded, regress.Linear, regress.Quadratic, regress.Cubic, regress.Spline3,
	} {
		fmt.Fprintf(out, "  %-10s %v\n", c, byCode[c])
	}
	fmt.Fprintf(out, "Figure 4 — interaction frequency in the %d best models\n", len(top))
	printInteractionRegions(out, res.InteractionFreq)
	return res, nil
}

// RegionCounts sums interaction frequency by region: software-software,
// software-hardware, hardware-hardware (the three regions of Figure 4).
func (r SearchAnatomyResult) RegionCounts() (swsw, swhw, hwhw int) {
	for i := 0; i < core.NumVars; i++ {
		for j := i + 1; j < core.NumVars; j++ {
			n := r.InteractionFreq[i][j]
			switch {
			case core.IsSoftwareVar(i) && core.IsSoftwareVar(j):
				swsw += n
			case !core.IsSoftwareVar(i) && !core.IsSoftwareVar(j):
				hwhw += n
			default:
				swhw += n
			}
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Figures 7(a) and 8(a): steady-state interpolation.

// AccuracyResult reports one accuracy study the way Figures 7/8 do: an
// error distribution plus predicted-vs-true correlation.
type AccuracyResult struct {
	Name    string
	Errors  stats.BoxplotSummary
	Metrics regress.Metrics
	PerApp  map[string]float64 // per-application median error
}

// Fig7a validates the steady-state model on held-out pairs.
func Fig7a(w *Workspace) (AccuracyResult, error) {
	m, err := w.Model()
	if err != nil {
		return AccuracyResult{}, err
	}
	valid := w.ValidationSamples()
	met, err := m.EvaluateOn(valid)
	if err != nil {
		return AccuracyResult{}, err
	}
	res := AccuracyResult{
		Name:    "interpolation",
		Metrics: met,
		Errors:  stats.Boxplot(m.Model().ErrorDistribution(core.ToDataset(valid))),
		PerApp:  perAppMedians(m, valid),
	}
	printAccuracy(w.Cfg.out(), "Figure 7(a)/8(a) — steady-state interpolation", res)
	return res, nil
}

// perAppMedians computes per-application median errors.
func perAppMedians(m *core.Trainer, samples []core.Sample) map[string]float64 {
	byApp := map[string][]core.Sample{}
	for _, s := range samples {
		byApp[s.App] = append(byApp[s.App], s)
	}
	out := make(map[string]float64, len(byApp))
	for app, ss := range byApp {
		met, err := m.EvaluateOn(ss)
		if err == nil {
			out[app] = met.MedAPE
		}
	}
	return out
}
