// Package experiments regenerates every table and figure in the paper's
// evaluation (Sections 4 and 5). Each experiment is a pure function of a
// Config, returning a structured result that renders as the paper's
// table/series and that the benchmark harness and integration tests assert
// against.
//
// Scale: Quick() runs the full set in minutes on one core by shortening
// shards and shrinking sample counts; Paper() uses the paper's dimensions
// (10M-instruction shards, ~360 architectures per application, 400+100
// SpMV samples). Shapes — medians, correlations, speedup ratios, topology
// peaks — are the reproduction target at either scale.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/trace"
)

// Config scales and seeds the experiment suite.
type Config struct {
	// ShardLen is the shard length in dynamic instructions.
	ShardLen int
	// ShardPool is the number of distinct shards sampled per application.
	ShardPool int
	// TrainPerApp is the number of (shard, architecture) training profiles
	// per application (the paper: "on average, each of 7 applications is
	// profiled on 360 architectures").
	TrainPerApp int
	// ValidationPairs is the held-out pair count for accuracy studies
	// (the paper validates against 140).
	ValidationPairs int
	// Pop and Generations size the genetic search.
	Pop, Generations int
	// SpmvScale divides Table 4 matrix sizes; SpmvTrain/SpmvValidation are
	// per-matrix sample counts (the paper: 400 train, 100 validation).
	SpmvScale                 int
	SpmvTrain, SpmvValidation int
	Seed                      uint64
	// Out receives human-readable tables; nil discards them.
	Out io.Writer
}

// Quick returns the reduced scale used by `go test -bench` and the default
// CLI: minutes, not hours, on one core.
func Quick() Config {
	return Config{
		ShardLen:        50_000,
		ShardPool:       60,
		TrainPerApp:     120,
		ValidationPairs: 140,
		Pop:             36,
		Generations:     12,
		SpmvScale:       16,
		SpmvTrain:       400,
		SpmvValidation:  100,
		Seed:            1,
		Out:             os.Stdout,
	}
}

// Paper returns the paper-scale configuration. Expect hours of simulation.
func Paper() Config {
	c := Quick()
	c.ShardLen = core.PaperShardLen
	c.TrainPerApp = 360
	c.Pop = 60
	c.Generations = 20
	c.SpmvScale = 1
	return c
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) collector() *core.Collector {
	return &core.Collector{ShardLen: c.ShardLen, ShardPool: c.ShardPool}
}

func (c Config) searchParams(seed uint64) genetic.Params {
	return genetic.Params{
		PopulationSize: c.Pop,
		Generations:    c.Generations,
		Seed:           c.Seed ^ seed,
	}
}

// Workspace caches the artifacts shared between experiments — the sparse
// training profiles and the steady-state model — so `experiments all`
// collects and trains once.
type Workspace struct {
	Cfg   Config
	ctx   context.Context
	apps  []*trace.App
	train []core.Sample
	valid []core.Sample
	model *core.Trainer
}

// NewWorkspace prepares a lazy workspace over the seven SPEC2006 stand-ins.
func NewWorkspace(cfg Config) *Workspace {
	return NewWorkspaceContext(context.Background(), cfg)
}

// NewWorkspaceContext is NewWorkspace with a cancellation context: every
// training run the workspace performs is bounded by ctx, so an interrupted
// `experiments all` stops within one search generation.
func NewWorkspaceContext(ctx context.Context, cfg Config) *Workspace {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Workspace{Cfg: cfg, ctx: ctx, apps: trace.SPEC2006()}
}

// Context returns the workspace's cancellation context.
func (w *Workspace) Context() context.Context { return w.ctx }

// Apps returns the workload roster.
func (w *Workspace) Apps() []*trace.App { return w.apps }

// TrainingSamples collects (once) the sparse training profiles.
func (w *Workspace) TrainingSamples() []core.Sample {
	if w.train == nil {
		w.train = w.Cfg.collector().Collect(w.apps, w.Cfg.TrainPerApp, w.Cfg.Seed)
	}
	return w.train
}

// ValidationSamples collects (once) held-out validation profiles, sampled
// independently of training.
func (w *Workspace) ValidationSamples() []core.Sample {
	if w.valid == nil {
		perApp := (w.Cfg.ValidationPairs + len(w.apps) - 1) / len(w.apps)
		w.valid = w.Cfg.collector().Collect(w.apps, perApp, w.Cfg.Seed^0xFACE)
		if len(w.valid) > w.Cfg.ValidationPairs {
			w.valid = w.valid[:w.Cfg.ValidationPairs]
		}
	}
	return w.valid
}

// Model trains (once) the steady-state integrated model.
func (w *Workspace) Model() (*core.Trainer, error) {
	if w.model == nil {
		m := core.NewTrainer(w.TrainingSamples())
		m.Search = w.Cfg.searchParams(0x5EED)
		if err := m.Train(w.ctx); err != nil {
			return nil, fmt.Errorf("experiments: steady-state training: %w", err)
		}
		w.model = m
	}
	return w.model, nil
}
