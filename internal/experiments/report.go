package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hsmodel/internal/core"
	"hsmodel/internal/stats"
)

// histogramText renders a histogram as an ASCII bar chart.
func histogramText(h stats.Histogram) string {
	var b strings.Builder
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&b, "    %12.4g | %-40s %d\n", h.BinCenter(i), bar, c)
	}
	return b.String()
}

func printHistogramTo(out io.Writer, label string, h stats.Histogram) {
	fmt.Fprintf(out, "%s histogram (n=%d):\n%s", label, h.Total, histogramText(h))
}

// printAccuracy renders an AccuracyResult as the paper's boxplot-plus-
// correlation readout.
func printAccuracy(out io.Writer, title string, res AccuracyResult) {
	fmt.Fprintf(out, "%s\n", title)
	e := res.Errors
	fmt.Fprintf(out, "  error boxplot (%%): min=%.1f q1=%.1f median=%.1f q3=%.1f max=%.1f (n=%d)\n",
		100*e.Min, 100*e.Q1, 100*e.Median, 100*e.Q3, 100*e.Max, e.N)
	fmt.Fprintf(out, "  correlation: pearson=%.3f spearman=%.3f R2=%.3f\n",
		res.Metrics.Pearson, res.Metrics.Spearman, res.Metrics.R2)
	if len(res.PerApp) > 0 {
		apps := make([]string, 0, len(res.PerApp))
		for a := range res.PerApp {
			apps = append(apps, a)
		}
		sort.Strings(apps)
		fmt.Fprintf(out, "  per-application median error:")
		for _, a := range apps {
			fmt.Fprintf(out, " %s=%.1f%%", a, 100*res.PerApp[a])
		}
		fmt.Fprintln(out)
	}
}

// printInteractionRegions summarizes the Figure 4 matrix by region and lists
// the most frequent pairs.
func printInteractionRegions(out io.Writer, freq [][]int) {
	type pair struct {
		i, j, n int
	}
	var pairs []pair
	var swsw, swhw, hwhw int
	for i := 0; i < len(freq); i++ {
		for j := i + 1; j < len(freq); j++ {
			n := freq[i][j]
			if n == 0 {
				continue
			}
			pairs = append(pairs, pair{i, j, n})
			switch {
			case core.IsSoftwareVar(i) && core.IsSoftwareVar(j):
				swsw += n
			case !core.IsSoftwareVar(i) && !core.IsSoftwareVar(j):
				hwhw += n
			default:
				swhw += n
			}
		}
	}
	fmt.Fprintf(out, "  region totals: sw-sw=%d sw-hw=%d hw-hw=%d\n", swsw, swhw, hwhw)
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].n > pairs[b].n })
	names := core.VarNames()
	limit := 12
	if len(pairs) < limit {
		limit = len(pairs)
	}
	fmt.Fprintf(out, "  most frequent pairs:")
	for _, p := range pairs[:limit] {
		fmt.Fprintf(out, " %s*%s(%d)", names[p.i], names[p.j], p.n)
	}
	fmt.Fprintln(out)
}
