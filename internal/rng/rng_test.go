package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs across seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	f1 := parent.Fork(1)
	// Forking must not advance the parent.
	f1again := New(7).Fork(1)
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f1again.Uint64() {
			t.Fatalf("fork not stable at step %d", i)
		}
	}
	// Distinct keys give distinct streams.
	a, b := parent.Fork(2), parent.Fork(3)
	if a.Uint64() == b.Uint64() {
		t.Fatal("forks with different keys produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for n := 1; n <= 20; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRangeInclusive(t *testing.T) {
	s := New(4)
	sawLo, sawHi := false, false
	for i := 0; i < 2000; i++ {
		v := s.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		if v == 3 {
			sawLo = true
		}
		if v == 5 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("Range never produced an endpoint")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(11)
	for _, mean := range []float64{1, 2, 5, 20, 100} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(s.Geometric(mean))
		}
		got := sum / float64(n)
		if mean == 1 {
			if got != 1 {
				t.Fatalf("Geometric(1) mean = %v, want exactly 1", got)
			}
			continue
		}
		if math.Abs(got-mean)/mean > 0.1 {
			t.Errorf("Geometric(%v) sample mean = %v", mean, got)
		}
	}
}

func TestGeomSamplerMatchesMean(t *testing.T) {
	s := New(12)
	for _, mean := range []float64{1, 2, 2.9, 3.5, 8, 50, 400} {
		g := NewGeom(mean)
		if math.Float64bits(g.Mean()) != math.Float64bits(mean) {
			t.Fatalf("Mean() = %v, want %v", g.Mean(), mean)
		}
		var sum float64
		n := 30000
		minSeen := 1 << 30
		for i := 0; i < n; i++ {
			v := g.Sample(s)
			if v < 1 {
				t.Fatalf("Geom(%v) sample %d < 1", mean, v)
			}
			if v < minSeen {
				minSeen = v
			}
			sum += float64(v)
		}
		got := sum / float64(n)
		want := mean
		if mean < 1 {
			want = 1
		}
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("Geom(%v) sample mean = %v", mean, got)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	var sum, sq float64
	n := 50000
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sq/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(sd-3) > 0.1 {
		t.Errorf("Normal sd = %v", sd)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(14)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += s.Exponential(7)
	}
	if got := sum / float64(n); math.Abs(got-7)/7 > 0.05 {
		t.Errorf("Exponential(7) mean = %v", got)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	s := New(15)
	n := 1000
	counts := make([]int, n+1)
	for i := 0; i < 50000; i++ {
		v := s.Zipf(n, 1.2)
		if v < 1 || v > n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Zipf must be head-heavy: rank 1 much more frequent than rank 100.
	if counts[1] < 10*counts[100]+1 {
		t.Errorf("Zipf not skewed: c[1]=%d c[100]=%d", counts[1], counts[100])
	}
	if s.Zipf(1, 1.2) != 1 {
		t.Error("Zipf(1) != 1")
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(30)
		seen := make([]bool, 30)
		for _, v := range p {
			if v < 0 || v >= 30 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestChoiceWeighted(t *testing.T) {
	s := New(16)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Errorf("Choice frequencies not ordered by weight: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 5 || ratio > 10 {
		t.Errorf("Choice ratio %v, want ~7", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with zero weights did not panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestShuffle(t *testing.T) {
	s := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
