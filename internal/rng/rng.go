// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout hsmodel. Reproducibility matters: every synthetic
// workload, sampled design point, and genetic-search run is derived from an
// explicit seed so that experiments regenerate identical tables.
//
// The generator is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014), which passes
// BigCrush, has a full 2^64 period, and — unlike math/rand's global state —
// is cheap to fork into independent streams keyed by (application, shard).
package rng

import "math"

// Source is a deterministic SplitMix64 random source. The zero value is a
// valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives an independent stream from the source and a key. The parent
// state is not advanced, so forks are stable regardless of interleaving.
func (s *Source) Fork(key uint64) *Source {
	// Mix the key through one SplitMix64 round against the current state.
	z := s.state + 0x9e3779b97f4a7c15*(key+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &Source{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform int in [lo, hi] inclusive.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with the given
// mean (mean >= 1). The support is {1, 2, 3, ...}.
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := s.Float64()
	// Inverse CDF of the geometric distribution on {1,2,...}.
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Normal returns a sample from N(mu, sigma^2) using the Box-Muller transform.
func (s *Source) Normal(mu, sigma float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return mu + sigma*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns a sample of a log-normal distribution parameterized by
// the mu and sigma of the underlying normal.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns a sample from an exponential distribution with the
// given mean.
func (s *Source) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Zipf returns a sample in [1, n] following an approximate Zipf distribution
// with exponent theta (0 < theta). Larger theta skews toward small values.
// It uses the standard rejection-free inverse-power approximation, which is
// accurate enough for workload locality modeling.
func (s *Source) Zipf(n int, theta float64) int {
	if n <= 1 {
		return 1
	}
	u := s.Float64()
	// Inverse transform of the continuous bounded Pareto approximation.
	if theta == 1 {
		return 1 + int(math.Pow(float64(n), u))%n
	}
	oneMinus := 1 - theta
	hi := math.Pow(float64(n), oneMinus)
	x := math.Pow(u*(hi-1)+1, 1/oneMinus)
	k := int(x)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a random index weighted by the non-negative weights.
// It panics if weights is empty or sums to zero.
func (s *Source) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 || len(weights) == 0 {
		panic("rng: Choice with zero total weight")
	}
	u := s.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
