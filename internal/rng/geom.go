package rng

import "math"

// Geom is a precomputed geometric sampler over {1, 2, 3, ...} with a fixed
// mean. Construction pays the math.Log once; sampling uses a Bernoulli-trial
// loop for small means (cheaper than a logarithm) and a single-log inverse
// transform for large means. The trace generator draws geometric samples for
// every instruction, so this is on the simulator's critical path.
type Geom struct {
	mean   float64
	p      float64
	invLog float64 // 1 / log(1-p), for the inverse-transform path
	thresh uint64  // success threshold for the Bernoulli-trial path
	small  bool
}

// smallMeanCutoff is the mean below which Bernoulli trials beat a logarithm.
const smallMeanCutoff = 3

// NewGeom builds a sampler with the given mean (means <= 1 always sample 1).
func NewGeom(mean float64) Geom {
	g := Geom{mean: mean}
	if mean <= 1 {
		return g
	}
	g.p = 1 / mean
	g.small = mean <= smallMeanCutoff
	if g.small {
		g.thresh = uint64(g.p * float64(1<<63) * 2)
	} else {
		g.invLog = 1 / math.Log(1-g.p)
	}
	return g
}

// Mean returns the configured mean.
func (g Geom) Mean() float64 { return g.mean }

// Sample draws one geometric variate from src.
func (g Geom) Sample(src *Source) int {
	if g.mean <= 1 {
		return 1
	}
	if g.small {
		k := 1
		// Success probability p per trial; count trials to first success.
		for src.Uint64() >= g.thresh {
			k++
			if k > 256 {
				break // statistically unreachable; bounds the loop
			}
		}
		return k
	}
	u := src.Float64()
	k := int(math.Log(1-u)*g.invLog) + 1
	if k < 1 {
		k = 1
	}
	return k
}
