package cache

import (
	"testing"
	"testing/quick"

	"hsmodel/internal/rng"
)

func mk(t *testing.T, size, line, ways int, pol Replacement) *Cache {
	t.Helper()
	return New(Config{SizeBytes: size, LineBytes: line, Ways: ways, Policy: pol})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 1},
		{SizeBytes: 1024, LineBytes: 0, Ways: 1},
		{SizeBytes: 1024, LineBytes: 48, Ways: 1}, // not power of two
		{SizeBytes: 1000, LineBytes: 64, Ways: 1}, // not power of two
		{SizeBytes: 64, LineBytes: 64, Ways: 2},   // smaller than one set
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	good := Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if good.Sets() != 64 {
		t.Errorf("Sets = %d, want 64", good.Sets())
	}
}

func TestParseReplacement(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Replacement
	}{{"LRU", LRU}, {"NMRU", NMRU}, {"RND", Random}, {"Random", Random}} {
		got, err := ParseReplacement(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseReplacement(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := ParseReplacement("FIFO"); err == nil {
		t.Error("unknown policy should error")
	}
	if LRU.String() != "LRU" || NMRU.String() != "NMRU" || Random.String() != "RND" {
		t.Error("policy names wrong")
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mk(t, 1024, 64, 2, LRU)
	if c.Access(0, false) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0, false) {
		t.Fatal("second access should hit")
	}
	if !c.Access(32, false) {
		t.Fatal("same-line access should hit")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way, single set via size = 2 lines.
	c := mk(t, 128, 64, 2, LRU)
	c.Access(0*64, false) // A
	c.Access(1*64, false) // B
	c.Access(0*64, false) // touch A: B is now LRU
	c.Access(2*64, false) // C evicts B
	if !c.Probe(0 * 64) {
		t.Error("A should remain resident")
	}
	if c.Probe(1 * 64) {
		t.Error("B should have been evicted (LRU)")
	}
	if !c.Probe(2 * 64) {
		t.Error("C should be resident")
	}
}

func TestNMRUNeverEvictsMRU(t *testing.T) {
	c := mk(t, 256, 64, 4, NMRU)
	for i := 0; i < 4; i++ {
		c.Access(uint64(i)*64, false)
	}
	// Line 3 is MRU; a long conflict stream must never evict the MRU at the
	// moment of each eviction. We verify the weaker, deterministic
	// property: immediately after a miss fills, a re-access of the victim's
	// set MRU (the just-filled line) hits.
	for i := 4; i < 50; i++ {
		c.Access(uint64(i)*64, false)
		if !c.Probe(uint64(i) * 64) {
			t.Fatalf("just-filled line %d not resident", i)
		}
	}
}

func TestRandomPolicyStaysWithinSet(t *testing.T) {
	c := mk(t, 256, 64, 2, Random) // 2 sets
	// Fill set 0 (even lines) and set 1 (odd lines).
	for i := 0; i < 8; i++ {
		c.Access(uint64(i)*64, false)
	}
	// Set 1 lines must be untouched by conflicts in set 0.
	c.Access(16*64, false) // maps to set 0
	if !c.Probe(7*64) && !c.Probe(5*64) {
		// At least one of the two most recent odd lines must be resident:
		// set 1 holds 2 ways and saw lines 1,3,5,7 -> last two are 5,7.
		t.Error("conflict in set 0 disturbed set 1")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := mk(t, 128, 64, 1, LRU) // 2 sets, direct mapped
	c.Access(0, true)           // dirty fill, set 0
	c.Access(128, false)        // evicts dirty line -> writeback
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	c.Access(256, false) // evicts clean line -> no writeback
	if c.Stats().Writebacks != 1 {
		t.Fatal("clean eviction must not count as writeback")
	}
}

func TestFillDoesNotCountStats(t *testing.T) {
	c := mk(t, 1024, 64, 2, LRU)
	c.Fill(0)
	if st := c.Stats(); st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("Fill changed stats: %+v", st)
	}
	if !c.Access(0, false) {
		t.Fatal("prefetched line should hit")
	}
}

func TestReset(t *testing.T) {
	c := mk(t, 1024, 64, 2, LRU)
	c.Access(0, true)
	c.Reset()
	if st := c.Stats(); st.Accesses != 0 {
		t.Fatal("Reset must clear stats")
	}
	if c.Probe(0) {
		t.Fatal("Reset must clear contents")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate %v", s.MissRate())
	}
}

// TestLRUWorkingSetProperty: a working set of at most `ways` lines per set
// always hits after the first pass under LRU.
func TestLRUWorkingSetProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		ways := 1 << src.Intn(3) // 1, 2, 4
		sets := 4
		c := New(Config{SizeBytes: sets * ways * 64, LineBytes: 64, Ways: ways, Policy: LRU})
		// Choose `ways` distinct lines mapping to set 0.
		lines := make([]uint64, ways)
		for i := range lines {
			lines[i] = uint64(i*sets) * 64 // same set, distinct tags
		}
		// First pass: misses. Subsequent passes in any order: all hits.
		for _, a := range lines {
			c.Access(a, false)
		}
		for pass := 0; pass < 3; pass++ {
			src.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			for _, a := range lines {
				if !c.Access(a, false) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := Hierarchy{
		L1I:        mk(t, 1024, 64, 2, LRU),
		L1D:        mk(t, 1024, 64, 2, LRU),
		L2:         mk(t, 8192, 64, 4, LRU),
		L1Latency:  1,
		L2Latency:  10,
		MemLatency: 100,
	}
	lat, miss := h.DataAccess(0, false)
	if lat != 111 || !miss {
		t.Fatalf("cold access lat=%d miss=%v, want 111/true", lat, miss)
	}
	lat, miss = h.DataAccess(0, false)
	if lat != 1 || miss {
		t.Fatalf("L1 hit lat=%d miss=%v", lat, miss)
	}
	// Evict from tiny L1 but not L2: next access is an L2 hit.
	for i := 1; i <= 16; i++ {
		h.DataAccess(uint64(i)*64, false)
	}
	lat, miss = h.DataAccess(0, false)
	if lat != 11 || !miss {
		t.Fatalf("L2 hit lat=%d miss=%v, want 11/true", lat, miss)
	}
}

func TestHierarchyInstAccess(t *testing.T) {
	h := Hierarchy{
		L1I:        mk(t, 1024, 64, 2, LRU),
		L1D:        mk(t, 1024, 64, 2, LRU),
		L2:         mk(t, 8192, 64, 4, LRU),
		L1Latency:  1,
		L2Latency:  10,
		MemLatency: 100,
	}
	if pen := h.InstAccess(0); pen != 110 {
		t.Fatalf("cold fetch penalty %d", pen)
	}
	if pen := h.InstAccess(0); pen != 0 {
		t.Fatalf("hit fetch penalty %d", pen)
	}
}

func TestPrefetcherCutsStreamingMisses(t *testing.T) {
	run := func(degree int) uint64 {
		h := Hierarchy{
			L1I:            mk(t, 1024, 64, 2, LRU),
			L1D:            mk(t, 4096, 64, 2, LRU),
			L2:             mk(t, 65536, 64, 4, LRU),
			L1Latency:      1,
			L2Latency:      10,
			MemLatency:     100,
			PrefetchDegree: degree,
		}
		h.Reset()
		for i := 0; i < 4096; i++ {
			h.DataAccess(uint64(i)*8, false) // sequential word stream
		}
		return h.L1D.Stats().Misses
	}
	without := run(0)
	with := run(2)
	if with*2 >= without {
		t.Errorf("prefetching should cut streaming misses at least 2x: %d -> %d", without, with)
	}
}
