// Package cache implements the set-associative cache simulator underlying
// both ground-truth substrates: the two-level hierarchy of the general study
// (Table 2: L1I/L1D/L2 with configurable size, associativity, and latency)
// and the reconfigurable single-level cache of the SpMV case study (Table 5:
// line size, capacity, associativity, and LRU/NMRU/Random replacement).
package cache

import (
	"fmt"
	"math/bits"

	"hsmodel/internal/rng"
)

// Replacement selects a victim policy (Table 5 y4/y7: LRU, NMRU, RND).
type Replacement uint8

// Replacement policies.
const (
	LRU Replacement = iota
	NMRU
	Random
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case NMRU:
		return "NMRU"
	case Random:
		return "RND"
	}
	return "Unknown"
}

// ParseReplacement converts a policy name to a Replacement.
func ParseReplacement(s string) (Replacement, error) {
	switch s {
	case "LRU":
		return LRU, nil
	case "NMRU":
		return NMRU, nil
	case "RND", "Random":
		return Random, nil
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q", s)
}

// Config describes one cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Policy    Replacement
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	s := c.SizeBytes / (c.LineBytes * c.Ways)
	if s < 1 {
		s = 1
	}
	return s
}

// Validate checks the configuration for consistency (power-of-two geometry).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes < c.LineBytes*c.Ways {
		return fmt.Errorf("cache: size %dB smaller than one set (%dB line x %d ways)",
			c.SizeBytes, c.LineBytes, c.Ways)
	}
	for _, v := range []int{c.SizeBytes, c.LineBytes, c.Ways} {
		if bits.OnesCount(uint(v)) != 1 {
			return fmt.Errorf("cache: geometry value %d not a power of two", v)
		}
	}
	return nil
}

// Stats counts cache events. Misses include cold misses; writebacks count
// dirty evictions (used by the energy model).
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true LRU/NMRU/Random replacement.
// It models tags only (no data), which is sufficient for timing and energy.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint64

	tags  []uint64 // sets*ways; valid flag in parallel slice
	valid []bool
	dirty []bool
	stamp []uint64 // last-touch clock for LRU/NMRU

	clock uint64
	rnd   *rng.Source
	stats Stats
}

// New builds a cache from cfg. It panics on invalid geometry (configurations
// come from the enumerated design spaces, so invalid geometry is a
// programming error, not an input error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	n := sets * cfg.Ways
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
		stamp:     make([]uint64, n),
		rnd:       rng.New(uint64(cfg.SizeBytes)*31 + uint64(cfg.Ways)),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.stamp[i] = 0
		c.tags[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access looks up addr, filling on miss, and reports whether it hit.
// write marks the line dirty (write-allocate, write-back).
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	c.stats.Accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.cfg.Ways

	// Probe.
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return true
		}
	}

	// Miss: pick a victim.
	c.stats.Misses++
	victim := c.victim(base)
	if c.valid[victim] && c.dirty[victim] {
		c.stats.Writebacks++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = write
	c.stamp[victim] = c.clock
	return false
}

// Fill inserts the line containing addr without recording an access or a
// miss — the insertion path used by hardware prefetchers. A resident line is
// refreshed as most recently used.
func (c *Cache) Fill(addr uint64) {
	c.clock++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.clock
			return
		}
	}
	victim := c.victim(base)
	if c.valid[victim] && c.dirty[victim] {
		c.stats.Writebacks++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = false
	c.stamp[victim] = c.clock
}

// Probe reports whether addr is resident without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// victim selects the way index (absolute into the arrays) to replace in the
// set starting at base, preferring invalid ways.
func (c *Cache) victim(base int) int {
	ways := c.cfg.Ways
	for w := 0; w < ways; w++ {
		if !c.valid[base+w] {
			return base + w
		}
	}
	switch c.cfg.Policy {
	case LRU:
		best := base
		for w := 1; w < ways; w++ {
			if c.stamp[base+w] < c.stamp[best] {
				best = base + w
			}
		}
		return best
	case NMRU:
		// Evict a random way that is not the most recently used.
		if ways == 1 {
			return base
		}
		mru := base
		for w := 1; w < ways; w++ {
			if c.stamp[base+w] > c.stamp[mru] {
				mru = base + w
			}
		}
		v := base + c.rnd.Intn(ways-1)
		if v >= mru {
			v++
		}
		return v
	default: // Random
		return base + c.rnd.Intn(ways)
	}
}
