package cache

// Hierarchy is the two-level hierarchy of the general study's
// microarchitectures (Table 2): split L1 instruction/data caches backed by a
// unified L2 and main memory. Latencies are in cycles; the L2 latency is a
// Table 2 design parameter (y8), the memory latency is fixed.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	L1Latency    int // L1 hit latency
	L2Latency    int // additional cycles for an L1 miss that hits in L2 (y8)
	MemLatency   int // additional cycles for an L2 miss
	// PrefetchDegree is the number of sequential next lines a demand miss
	// pulls into L1D and L2 (0 disables prefetching). When consecutive
	// misses are sequential — a detected stream — the prefetcher runs ahead
	// by 4x the degree, the way hardware stream prefetchers ramp up. Modern
	// cores ship stream prefetchers; without one, streaming workloads like
	// bwaves and gemsFDTD would be implausibly memory-bound.
	PrefetchDegree int

	lastMissLine uint64
}

// DataAccess performs a load or store lookup and returns the access latency
// in cycles plus whether the request missed L1 (it then occupies an MSHR in
// the pipeline model).
func (h *Hierarchy) DataAccess(addr uint64, write bool) (lat int, l1Miss bool) {
	if h.L1D.Access(addr, write) {
		return h.L1Latency, false
	}
	h.prefetch(addr)
	if h.L2.Access(addr, write) {
		return h.L1Latency + h.L2Latency, true
	}
	return h.L1Latency + h.L2Latency + h.MemLatency, true
}

// prefetch pulls the next lines into L1D and L2, ramping up when the miss
// continues a sequential stream.
func (h *Hierarchy) prefetch(addr uint64) {
	lineBytes := uint64(h.L1D.cfg.LineBytes)
	line := addr / lineBytes
	degree := h.PrefetchDegree
	if line == h.lastMissLine+1 || line == h.lastMissLine+uint64(h.PrefetchDegree)+1 {
		degree *= 4
	}
	h.lastMissLine = line
	for d := 1; d <= degree; d++ {
		next := addr + uint64(d)*lineBytes
		h.L1D.Fill(next)
		h.L2.Fill(next)
	}
}

// InstAccess performs an instruction-fetch lookup for the block containing
// addr and returns the front-end penalty in cycles beyond a pipelined hit
// (0 for an L1I hit).
func (h *Hierarchy) InstAccess(addr uint64) int {
	if h.L1I.Access(addr, false) {
		return 0
	}
	if h.L2.Access(addr, false) {
		return h.L2Latency
	}
	return h.L2Latency + h.MemLatency
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.lastMissLine = ^uint64(0) - 64
}
