// Package hwspace defines the microarchitectural design space of Table 2.
// The thirteen regression-visible hardware parameters y1..y13 span pipeline
// width, out-of-order window resources, the cache hierarchy, and functional
// unit counts. As in the paper, several physical parameters move together as
// one modeled variable: y2 scales the load/store queue, physical register
// file, issue queue, and reorder buffer in lock step, and y3 scales L1 and
// L2 associativity together. The space deliberately includes extreme designs
// "so that models infer interior points more accurately".
package hwspace

import (
	"fmt"

	"hsmodel/internal/rng"
)

// NumParams is the number of modeled hardware parameters (y1..y13).
const NumParams = 13

// Parameter indices into Vector (0-based; the paper's y_i is index i-1).
const (
	YWidth = iota
	YWindow
	YAssoc
	YMSHR
	YDCacheKB
	YICacheKB
	YL2KB
	YL2Latency
	YIntALU
	YIntMulDiv
	YFPALU
	YFPMul
	YPorts
)

// Names gives the Table 2 description for each parameter.
var Names = [NumParams]string{
	"y1 width",
	"y2 ooo window (LSQ/regs/IQ/ROB)",
	"y3 L1/L2 associativity",
	"y4 MSHRs",
	"y5 d-cache KB",
	"y6 i-cache KB",
	"y7 L2 KB",
	"y8 L2 latency",
	"y9 int ALUs",
	"y10 int mul/div units",
	"y11 FP ALUs",
	"y12 FP mul units",
	"y13 cache ports",
}

// windowLevel bundles the four out-of-order window resources that Table 2
// scales together under y2.
type windowLevel struct {
	LSQ, PhysRegs, IQ, ROB int
}

// Table 2 levels. Ranges written "a :: s+ :: b" step additively, "a :: 2x ::
// b" double.
var (
	widthLevels  = []int{1, 2, 4, 8}
	windowLevels = []windowLevel{
		{11, 86, 22, 64},
		{16, 128, 32, 96},
		{21, 170, 42, 128},
		{26, 212, 52, 160},
		{31, 254, 62, 192},
		{36, 296, 72, 224},
	}
	l1AssocLevels = []int{1, 2, 4, 8}
	l2AssocFor    = map[int]int{1: 2, 2: 4, 4: 8, 8: 8}
	mshrLevels    = []int{1, 2, 4, 6, 8}
	dcacheLevels  = []int{16, 32, 64, 128} // KB
	icacheLevels  = []int{16, 32, 64, 128} // KB
	l2Levels      = []int{256, 512, 1024, 2048, 4096}
	l2LatLevels   = []int{6, 8, 10, 12, 14}
	intALULevels  = []int{1, 2, 3, 4}
	intMulLevels  = []int{1, 2}
	fpALULevels   = []int{1, 2, 3}
	fpMulLevels   = []int{1, 2}
	portLevels    = []int{1, 2, 3, 4}
)

// LevelCounts returns the number of discrete levels per parameter.
func LevelCounts() [NumParams]int {
	return [NumParams]int{
		len(widthLevels), len(windowLevels), len(l1AssocLevels), len(mshrLevels),
		len(dcacheLevels), len(icacheLevels), len(l2Levels), len(l2LatLevels),
		len(intALULevels), len(intMulLevels), len(fpALULevels), len(fpMulLevels),
		len(portLevels),
	}
}

// SpaceSize returns the total number of configurations in the Table 2 space.
func SpaceSize() int {
	n := 1
	for _, c := range LevelCounts() {
		n *= c
	}
	return n
}

// Config is one fully specified microarchitecture.
type Config struct {
	Width    int
	LSQ      int
	PhysRegs int
	IQ       int
	ROB      int
	L1Assoc  int
	L2Assoc  int
	MSHRs    int
	DCacheKB int
	ICacheKB int
	L2KB     int
	L2Lat    int
	IntALUs  int
	IntMuls  int
	FPALUs   int
	FPMuls   int
	Ports    int
}

// Indices locates a configuration in the space as per-parameter level
// indices.
type Indices [NumParams]int

// FromIndices expands level indices into a full configuration. It panics on
// out-of-range indices.
func FromIndices(ix Indices) Config {
	counts := LevelCounts()
	for p, i := range ix {
		if i < 0 || i >= counts[p] {
			panic(fmt.Sprintf("hwspace: index %d out of range for %s", i, Names[p]))
		}
	}
	w := windowLevels[ix[YWindow]]
	l1a := l1AssocLevels[ix[YAssoc]]
	return Config{
		Width:    widthLevels[ix[YWidth]],
		LSQ:      w.LSQ,
		PhysRegs: w.PhysRegs,
		IQ:       w.IQ,
		ROB:      w.ROB,
		L1Assoc:  l1a,
		L2Assoc:  l2AssocFor[l1a],
		MSHRs:    mshrLevels[ix[YMSHR]],
		DCacheKB: dcacheLevels[ix[YDCacheKB]],
		ICacheKB: icacheLevels[ix[YICacheKB]],
		L2KB:     l2Levels[ix[YL2KB]],
		L2Lat:    l2LatLevels[ix[YL2Latency]],
		IntALUs:  intALULevels[ix[YIntALU]],
		IntMuls:  intMulLevels[ix[YIntMulDiv]],
		FPALUs:   fpALULevels[ix[YFPALU]],
		FPMuls:   fpMulLevels[ix[YFPMul]],
		Ports:    portLevels[ix[YPorts]],
	}
}

// Sample draws level indices uniformly at random — the paper's sampling
// discipline ("we sample … uniformly at random").
func Sample(src *rng.Source) Indices {
	var ix Indices
	counts := LevelCounts()
	for p := range ix {
		ix[p] = src.Intn(counts[p])
	}
	return ix
}

// Vector encodes the configuration as the regression-visible y1..y13 values.
// Grouped parameters are represented by their leading member (y2 by the LSQ
// size, y3 by L1 associativity), matching the paper's modeling treatment.
func (c Config) Vector() [NumParams]float64 {
	return [NumParams]float64{
		float64(c.Width),
		float64(c.LSQ),
		float64(c.L1Assoc),
		float64(c.MSHRs),
		float64(c.DCacheKB),
		float64(c.ICacheKB),
		float64(c.L2KB),
		float64(c.L2Lat),
		float64(c.IntALUs),
		float64(c.IntMuls),
		float64(c.FPALUs),
		float64(c.FPMuls),
		float64(c.Ports),
	}
}

// String summarizes the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("w%d/rob%d/l1d%dK/l1i%dK/l2%dK(lat%d)/a%d-%d/mshr%d/fu%d.%d.%d.%d/p%d",
		c.Width, c.ROB, c.DCacheKB, c.ICacheKB, c.L2KB, c.L2Lat,
		c.L1Assoc, c.L2Assoc, c.MSHRs, c.IntALUs, c.IntMuls, c.FPALUs, c.FPMuls, c.Ports)
}

// Baseline returns a mid-range reference configuration.
func Baseline() Config {
	return FromIndices(Indices{2, 2, 1, 2, 1, 1, 2, 2, 1, 1, 1, 0, 1})
}

// EnumerateIndices calls fn for every configuration in the space, stopping
// early if fn returns false. Intended for exhaustive small-space sweeps in
// tests.
func EnumerateIndices(fn func(Indices) bool) {
	counts := LevelCounts()
	var ix Indices
	var rec func(p int) bool
	rec = func(p int) bool {
		if p == NumParams {
			return fn(ix)
		}
		for i := 0; i < counts[p]; i++ {
			ix[p] = i
			if !rec(p + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}
