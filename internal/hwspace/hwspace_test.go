package hwspace

import (
	"math"
	"testing"
	"testing/quick"

	"hsmodel/internal/rng"
)

func TestSpaceSize(t *testing.T) {
	// 4*6*4*5*4*4*5*5*4*2*3*2*4 per Table 2 levels.
	want := 4 * 6 * 4 * 5 * 4 * 4 * 5 * 5 * 4 * 2 * 3 * 2 * 4
	if got := SpaceSize(); got != want {
		t.Fatalf("SpaceSize = %d, want %d", got, want)
	}
}

func TestFromIndicesExtremes(t *testing.T) {
	lo := FromIndices(Indices{})
	if lo.Width != 1 || lo.LSQ != 11 || lo.PhysRegs != 86 || lo.IQ != 22 || lo.ROB != 64 {
		t.Errorf("minimal config wrong: %+v", lo)
	}
	if lo.L1Assoc != 1 || lo.L2Assoc != 2 || lo.MSHRs != 1 || lo.DCacheKB != 16 {
		t.Errorf("minimal config wrong: %+v", lo)
	}
	counts := LevelCounts()
	var hi Indices
	for p := range hi {
		hi[p] = counts[p] - 1
	}
	c := FromIndices(hi)
	if c.Width != 8 || c.ROB != 224 || c.PhysRegs != 296 || c.L2KB != 4096 ||
		c.L2Lat != 14 || c.IntALUs != 4 || c.FPALUs != 3 || c.Ports != 4 {
		t.Errorf("maximal config wrong: %+v", c)
	}
	if c.L1Assoc != 8 || c.L2Assoc != 8 || c.MSHRs != 8 {
		t.Errorf("maximal config wrong: %+v", c)
	}
}

func TestGroupedWindowScalesTogether(t *testing.T) {
	// Table 2's y2 row scales LSQ/regs/IQ/ROB in lock step.
	prev := FromIndices(Indices{})
	for lvl := 1; lvl < LevelCounts()[YWindow]; lvl++ {
		var ix Indices
		ix[YWindow] = lvl
		c := FromIndices(ix)
		if c.LSQ <= prev.LSQ || c.PhysRegs <= prev.PhysRegs || c.IQ <= prev.IQ || c.ROB <= prev.ROB {
			t.Fatalf("window level %d did not grow all resources: %+v", lvl, c)
		}
		prev = c
	}
}

func TestL2AssocTracksL1(t *testing.T) {
	for lvl := 0; lvl < LevelCounts()[YAssoc]; lvl++ {
		var ix Indices
		ix[YAssoc] = lvl
		c := FromIndices(ix)
		if c.L2Assoc < c.L1Assoc || c.L2Assoc < 2 || c.L2Assoc > 8 {
			t.Errorf("assoc pair L1=%d L2=%d out of Table 2 range", c.L1Assoc, c.L2Assoc)
		}
	}
}

func TestFromIndicesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	FromIndices(Indices{0, 99})
}

func TestSampleAlwaysValid(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		counts := LevelCounts()
		for k := 0; k < 20; k++ {
			ix := Sample(src)
			for p, i := range ix {
				if i < 0 || i >= counts[p] {
					return false
				}
			}
			_ = FromIndices(ix) // must not panic
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestVectorMapping(t *testing.T) {
	c := Baseline()
	v := c.Vector()
	if math.Float64bits(v[YWidth]) != math.Float64bits(float64(c.Width)) || math.Float64bits(v[YWindow]) != math.Float64bits(float64(c.LSQ)) ||
		math.Float64bits(v[YAssoc]) != math.Float64bits(float64(c.L1Assoc)) || math.Float64bits(v[YDCacheKB]) != math.Float64bits(float64(c.DCacheKB)) ||
		math.Float64bits(v[YPorts]) != math.Float64bits(float64(c.Ports)) {
		t.Errorf("vector %v does not encode %+v", v, c)
	}
}

func TestEnumerateStopsEarly(t *testing.T) {
	n := 0
	EnumerateIndices(func(ix Indices) bool {
		n++
		return n < 100
	})
	if n != 100 {
		t.Fatalf("enumeration visited %d, want early stop at 100", n)
	}
}

func TestEnumerateFirstAndNames(t *testing.T) {
	first := true
	EnumerateIndices(func(ix Indices) bool {
		if first {
			if ix != (Indices{}) {
				t.Errorf("first enumerated index %v", ix)
			}
			first = false
		}
		return false
	})
	for i, n := range Names {
		if n == "" {
			t.Errorf("parameter %d unnamed", i)
		}
	}
	if s := Baseline().String(); s == "" {
		t.Error("String() empty")
	}
}
