package spmv

import (
	"fmt"

	"hsmodel/internal/cache"
	"hsmodel/internal/power"
)

// ClockMHz is the Tensilica-Xtensa-class design point of Section 5.3.
const ClockMHz = 400

// Memory timing for the in-order kernel core: a miss costs a fixed access
// latency plus the line transfer at the memory bus width. Larger lines
// amortize the fixed cost over more bytes — the streaming-bandwidth effect
// of Figure 13 — while costing transfer energy per byte (Figure 16's
// arch-tuning energy penalty).
const (
	memBaseLatency   = 20 // cycles
	memBytesPerCycle = 8
)

// CacheConfig is one point of the Table 5 hardware space: the
// reconfigurable line size shared by both caches, plus data- and
// instruction-cache geometry and replacement.
type CacheConfig struct {
	LineBytes  int               // y1: 16 :: 2x :: 128
	DSizeBytes int               // y2: 4KB :: 2x :: 256KB
	DWays      int               // y3: 1 :: 2x :: 8
	DRepl      cache.Replacement // y4: LRU, NMRU, RND
	ISizeBytes int               // y5: 2KB :: 2x :: 128KB
	IWays      int               // y6: 1 :: 2x :: 8
	IRepl      cache.Replacement // y7: LRU, NMRU, RND
}

func (c CacheConfig) String() string {
	return fmt.Sprintf("line%dB/d%dK-%dw-%s/i%dK-%dw-%s",
		c.LineBytes, c.DSizeBytes/1024, c.DWays, c.DRepl,
		c.ISizeBytes/1024, c.IWays, c.IRepl)
}

// Vector encodes the configuration as the regression-visible y1..y7 values
// (replacement policies ordinally).
func (c CacheConfig) Vector() [7]float64 {
	return [7]float64{
		float64(c.LineBytes),
		float64(c.DSizeBytes),
		float64(c.DWays),
		float64(c.DRepl),
		float64(c.ISizeBytes),
		float64(c.IWays),
		float64(c.IRepl),
	}
}

// missPenalty returns the stall cycles for one miss.
func (c CacheConfig) missPenalty() float64 {
	return memBaseLatency + float64(c.LineBytes)/memBytesPerCycle
}

// KernelResult reports one simulated SpMV execution.
type KernelResult struct {
	Cycles    float64
	TrueFlops int // 2 * original nnz; excludes operations on filled zeros
	ExecFlops int // 2 * stored values; includes fill
	DStats    cache.Stats
	IStats    cache.Stats
	Energy    power.Breakdown
}

// Seconds returns wall time at the 400 MHz design point.
func (r KernelResult) Seconds() float64 {
	return r.Cycles / (ClockMHz * 1e6)
}

// MFlops returns true Mflop/s: the numerator excludes operations on filled
// zeros, the denominator includes the (reduced) execution time from
// blocking — the paper's performance metric.
func (r KernelResult) MFlops() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TrueFlops) / r.Seconds() / 1e6
}

// NJPerFlop returns energy per true floating-point operation, Figure 16(b)'s
// metric.
func (r KernelResult) NJPerFlop() float64 {
	if r.TrueFlops == 0 {
		return 0
	}
	return r.Energy.Total() / float64(r.TrueFlops)
}

// Watts returns average power, Figure 14(b)'s prediction target.
func (r KernelResult) Watts() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Energy.Total() * 1e-9 / r.Seconds()
}

// Simulated memory layout: disjoint regions per data structure.
const (
	valBase   = 0x1000_0000
	bcolBase  = 0x2000_0000
	brsBase   = 0x2800_0000
	uBase     = 0x3000_0000
	vBase     = 0x4000_0000
	codeBase  = 0x5000_0000
	idxBytes  = 4
	elemBytes = 8
)

// kernelCodeBytes models the unrolled inner-loop footprint for an r x c
// block: a base loop skeleton plus one multiply-accumulate bundle per block
// element. Register-blocked kernels grow with r*c, which is what makes tiny
// instruction caches interact with block size (Table 5 exercises i-caches
// down to 2 KB).
func kernelCodeBytes(r, c int) int {
	return 96 + 12*r*c
}

// SimulateKernel runs one blocked SpMV (v = v + A*u) through the in-order
// timing and energy model on cfg. The address trace follows the BCSR layout
// of Figure 11 exactly: block-row pointers, block column indices, dense
// value blocks, source-vector reads per block, and destination accumulators
// held in registers across each block row.
func SimulateKernel(b *BCSR, cfg CacheConfig) KernelResult {
	dc := cache.New(cache.Config{
		SizeBytes: cfg.DSizeBytes, LineBytes: cfg.LineBytes, Ways: cfg.DWays, Policy: cfg.DRepl,
	})
	ic := cache.New(cache.Config{
		SizeBytes: cfg.ISizeBytes, LineBytes: cfg.LineBytes, Ways: cfg.IWays, Policy: cfg.IRepl,
	})
	penalty := cfg.missPenalty()

	var cycles float64
	var coreOps int

	// data issues one data access of size bytes at addr, charging hit or
	// miss latency. Multi-line accesses (none at current sizes) would touch
	// each line once.
	data := func(addr uint64, write bool) {
		if dc.Access(addr, write) {
			cycles++
		} else {
			cycles += penalty
		}
	}
	// code charges instruction fetch for n sequential bytes at addr,
	// touching the i-cache once per line.
	code := func(addr uint64, n int) {
		line := uint64(cfg.LineBytes)
		for a := addr &^ (line - 1); a < addr+uint64(n); a += line {
			if !ic.Access(a, false) {
				cycles += penalty
			}
		}
	}

	r, c := b.R, b.C
	bodyBytes := kernelCodeBytes(r, c)
	numBlockRows := len(b.BRowStart) - 1

	for bi := 0; bi < numBlockRows; bi++ {
		// Block-row prologue: row pointer pair, load r accumulators.
		data(brsBase+uint64(bi)*idxBytes, false)
		rowLo := bi * r
		for dr := 0; dr < r && rowLo+dr < b.Rows; dr++ {
			data(vBase+uint64(rowLo+dr)*elemBytes, false)
		}
		code(codeBase, 96)
		cycles += 4 // loop setup
		coreOps += 4 + r

		for blk := b.BRowStart[bi]; blk < b.BRowStart[bi+1]; blk++ {
			colLo := b.BColIdx[blk]
			// Index and source-vector loads.
			data(bcolBase+uint64(blk)*idxBytes, false)
			for dc2 := 0; dc2 < c && colLo+dc2 < b.Cols; dc2++ {
				data(uBase+uint64(colLo+dc2)*elemBytes, false)
			}
			// Value block streams contiguously.
			base := uint64(blk * r * c)
			for e := 0; e < r*c; e++ {
				data(valBase+(base+uint64(e))*elemBytes, false)
			}
			// Compute: one MAC per element (2 flops/cycle), plus loop
			// overhead; instruction fetch walks the unrolled body.
			cycles += float64(r*c) + 3
			coreOps += r*c + 3 + c
			code(codeBase+96, bodyBytes-96)
		}

		// Epilogue: store r accumulators.
		for dr := 0; dr < r && rowLo+dr < b.Rows; dr++ {
			data(vBase+uint64(rowLo+dr)*elemBytes, true)
		}
		coreOps += r
	}

	res := KernelResult{
		Cycles:    cycles,
		TrueFlops: 2 * b.OrigNNZ,
		ExecFlops: 2 * b.StoredValues(),
		DStats:    dc.Stats(),
		IStats:    ic.Stats(),
	}
	res.Energy = energyFor(res, cfg, coreOps)
	return res
}

// energyFor itemizes energy from event counts via the power package.
func energyFor(r KernelResult, cfg CacheConfig, coreOps int) power.Breakdown {
	dAccess := power.CacheAccessEnergyNJ(cfg.DSizeBytes, cfg.DWays, cfg.LineBytes)
	iAccess := power.CacheAccessEnergyNJ(cfg.ISizeBytes, cfg.IWays, cfg.LineBytes)
	line := power.LineTransferEnergyNJ(cfg.LineBytes)
	leak := power.CacheLeakageNJPerCycle(cfg.DSizeBytes + cfg.ISizeBytes)
	return power.Breakdown{
		DCacheDynamic: float64(r.DStats.Accesses) * dAccess,
		ICacheDynamic: float64(r.IStats.Accesses) * iAccess,
		MemTransfer:   float64(r.DStats.Misses+r.IStats.Misses+r.DStats.Writebacks) * line,
		Leakage:       r.Cycles * leak,
		CoreDynamic:   float64(coreOps) * power.CoreOpEnergyNJ,
	}
}
