package spmv

import (
	"fmt"

	"hsmodel/internal/rng"
)

// PatternKind selects a sparse-structure generator.
type PatternKind int

// Pattern kinds.
const (
	// FEM generates finite-element-style matrices: a banded graph of nodes,
	// each node pair coupled by a dense NBRow x NBCol sub-block. Dense
	// sub-structure at multiples of the natural block is what makes
	// register blocking profitable (Section 5.2).
	FEM PatternKind = iota
	// Circuit generates scattered, irregular structure with a few dense
	// rows (power/ground nets) and no exploitable sub-blocks; the best
	// block size is 1x1.
	Circuit
)

// MatrixSpec describes one Table 4 matrix: its published dimension and
// non-zero count plus the structural parameters our generator uses to
// reproduce its blocking behavior.
type MatrixSpec struct {
	Index int // Table 4 row number (1-based)
	Name  string
	N     int // dimension (square)
	NNZ   int // target non-zero count
	Kind  PatternKind
	// NBRow, NBCol are the natural dense sub-block dimensions (FEM degrees
	// of freedom per node). raefsky3's sub-structure "arises in multiples
	// of 4" in columns while 8 block rows maximize performance, so its
	// natural block is anisotropic.
	NBRow, NBCol int
	// ChainProb is the probability a node couples to its successor —
	// adjacent-node coupling is what lets 2x-the-natural-block sizes (e.g.
	// 6x6 on a 3-DOF problem) stay profitable (Figure 15).
	ChainProb float64
	Seed      uint64
}

// Corpus returns the eleven Table 4 matrices. Natural block sizes follow
// the well-known structure of these matrices in the sparse-kernel tuning
// literature (OSKI/Sparsity): 3-DOF and 6-DOF FEM problems, two circuit
// matrices without sub-structure, and raefsky3's multiples-of-4 columns.
func Corpus() []MatrixSpec {
	return []MatrixSpec{
		{Index: 1, Name: "3dtube", N: 45330, NNZ: 1629474, Kind: FEM, NBRow: 3, NBCol: 3, ChainProb: 0.55, Seed: 0x3d70be},
		{Index: 2, Name: "bayer02", N: 13935, NNZ: 63679, Kind: Circuit, NBRow: 1, NBCol: 1, Seed: 0xba4e02},
		{Index: 3, Name: "bcsstk35", N: 30237, NNZ: 740200, Kind: FEM, NBRow: 6, NBCol: 6, ChainProb: 0.4, Seed: 0xbc5535},
		{Index: 4, Name: "bmw7st", N: 141347, NNZ: 3740507, Kind: FEM, NBRow: 6, NBCol: 6, ChainProb: 0.35, Seed: 0xb3757},
		{Index: 5, Name: "crystk02", N: 13965, NNZ: 491274, Kind: FEM, NBRow: 3, NBCol: 3, ChainProb: 0.6, Seed: 0xc45702},
		{Index: 6, Name: "memplus", N: 17758, NNZ: 126150, Kind: Circuit, NBRow: 1, NBCol: 1, Seed: 0x3e3941},
		{Index: 7, Name: "nasasrb", N: 54870, NNZ: 1366097, Kind: FEM, NBRow: 3, NBCol: 3, ChainProb: 0.93, Seed: 0x9a5a5b},
		{Index: 8, Name: "olafu", N: 16146, NNZ: 515651, Kind: FEM, NBRow: 6, NBCol: 6, ChainProb: 0.45, Seed: 0x01afc1},
		{Index: 9, Name: "pwtk", N: 217918, NNZ: 5926171, Kind: FEM, NBRow: 6, NBCol: 6, ChainProb: 0.5, Seed: 0x9e7c4},
		{Index: 10, Name: "raefsky3", N: 21200, NNZ: 1488768, Kind: FEM, NBRow: 8, NBCol: 4, ChainProb: 0.9, Seed: 0x4aef53},
		{Index: 11, Name: "venkat01", N: 62424, NNZ: 1717792, Kind: FEM, NBRow: 4, NBCol: 4, ChainProb: 0.5, Seed: 0x7e4ca1},
	}
}

// ByName returns the Table 4 spec with the given name.
func ByName(name string) (MatrixSpec, error) {
	for _, ms := range Corpus() {
		if ms.Name == name {
			return ms, nil
		}
	}
	return MatrixSpec{}, fmt.Errorf("spmv: unknown matrix %q", name)
}

// Scaled returns the spec shrunk by factor f (dimension and non-zeros both
// divided by f), preserving density and sub-structure. Timing experiments
// use scaled matrices so full parameter sweeps finish quickly; Scaled(1) is
// the published size.
func (ms MatrixSpec) Scaled(f int) MatrixSpec {
	if f <= 1 {
		return ms
	}
	out := ms
	out.Name = fmt.Sprintf("%s/%d", ms.Name, f)
	out.N = ms.N / f
	if min := 8 * ms.NBRow; out.N < min {
		out.N = min
	}
	out.NNZ = ms.NNZ / f
	if out.NNZ < 4*out.N {
		out.NNZ = 4 * out.N
	}
	return out
}

// Generate builds the matrix deterministically from the spec.
func (ms MatrixSpec) Generate() *CSR {
	switch ms.Kind {
	case Circuit:
		return ms.generateCircuit()
	default:
		return ms.generateFEM()
	}
}

// generateFEM builds a node graph whose every edge contributes a dense
// NBRow x NBCol block. Blocks come in even-aligned 2x2 node-group clusters
// with probability ChainProb — the coupled-neighbor structure of banded FEM
// orderings — which is what keeps fill low at twice the natural block size
// (6x6 on a 3-DOF problem, Figure 15) while misaligned sizes pay heavy fill.
func (ms MatrixSpec) generateFEM() *CSR {
	src := rng.New(ms.Seed)
	nbr, nbc := ms.NBRow, ms.NBCol
	nodesR := ms.N / nbr
	nodesC := ms.N / nbc
	if nodesR < 4 || nodesC < 4 {
		panic(fmt.Sprintf("spmv: FEM spec %s too small", ms.Name))
	}
	blockNNZ := nbr * nbc
	targetBlocks := ms.NNZ / blockNNZ
	if targetBlocks < nodesR {
		targetBlocks = nodesR
	}

	coo := &COO{Rows: nodesR * nbr, Cols: nodesC * nbc}
	seen := make(map[[2]int]bool, targetBlocks)
	blocks := 0
	emit := func(ni, nj int) {
		if ni < 0 || ni >= nodesR || nj < 0 || nj >= nodesC || seen[[2]int{ni, nj}] {
			return
		}
		seen[[2]int{ni, nj}] = true
		blocks++
		for dr := 0; dr < nbr; dr++ {
			for dc := 0; dc < nbc; dc++ {
				coo.Add(ni*nbr+dr, nj*nbc+dc, src.Float64()*2-1)
			}
		}
	}
	// cluster emits the even-aligned 2x2 node group containing (ni, nj).
	cluster := func(ni, nj int) {
		ni &^= 1
		nj &^= 1
		emit(ni, nj)
		emit(ni, nj+1)
		emit(ni+1, nj)
		emit(ni+1, nj+1)
	}

	// Diagonal: self-coupling, clustered into node pairs with ChainProb.
	for n := 0; n < nodesR; n += 2 {
		nj := n * nodesC / nodesR
		if src.Bool(ms.ChainProb) {
			cluster(n, nj)
		} else {
			emit(n, nj)
			if n+1 < nodesR {
				emit(n+1, n1Col(n+1, nodesR, nodesC))
			}
		}
	}
	// Banded coupling for the remainder, mostly clustered.
	band := nodesC / 32
	if band < 2 {
		band = 2
	}
	for blocks < targetBlocks {
		n := src.Intn(nodesR)
		off := int(src.Normal(0, float64(band)))
		nj := n*nodesC/nodesR + off
		if nj < 0 || nj >= nodesC {
			continue
		}
		if src.Bool(ms.ChainProb) {
			cluster(n, nj)
		} else {
			emit(n, nj)
		}
	}
	return ToCSR(coo)
}

// n1Col maps a row-node index to its diagonal column-node for anisotropic
// natural blocks.
func n1Col(n, nodesR, nodesC int) int {
	return n * nodesC / nodesR
}

// generateCircuit builds scattered circuit structure: a unit diagonal, a few
// very dense rows (power nets), and random off-diagonal entries with mild
// diagonal bias.
func (ms MatrixSpec) generateCircuit() *CSR {
	src := rng.New(ms.Seed)
	coo := &COO{Rows: ms.N, Cols: ms.N}
	for i := 0; i < ms.N; i++ {
		coo.Add(i, i, src.Float64()+0.5)
	}
	remaining := ms.NNZ - ms.N
	// A handful of dense net rows take ~15% of entries.
	denseRows := 4 + src.Intn(4)
	for d := 0; d < denseRows; d++ {
		row := src.Intn(ms.N)
		rowEntries := remaining * 15 / 100 / denseRows
		for k := 0; k < rowEntries; k++ {
			coo.Add(row, src.Intn(ms.N), src.Float64()*2-1)
		}
		remaining -= rowEntries
	}
	for remaining > 0 {
		i := src.Intn(ms.N)
		spread := ms.N / 16
		j := i + int(src.Normal(0, float64(spread)))
		if j < 0 || j >= ms.N {
			j = src.Intn(ms.N)
		}
		coo.Add(i, j, src.Float64()*2-1)
		remaining--
	}
	return ToCSR(coo)
}
