package spmv

import (
	"context"
	"testing"

	"hsmodel/internal/cache"
	"hsmodel/internal/genetic"
)

func TestModelGuidedTuningAgreesWithExhaustive(t *testing.T) {
	// The paper's tractability argument: model-guided co-tuning should find
	// configurations close to exhaustive-simulation tuning at a fraction of
	// the simulations.
	spec, _ := ByName("olafu")
	s := NewStudy(spec.Scaled(64))
	models, err := TrainModels(context.Background(), spec.Name, s.Sample(250, 3), TrainOptions{
		Search: genetic.Params{PopulationSize: 20, Generations: 8, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	guided := Tune(TuneOptions{Study: s, Models: &models, CacheCandidates: 40, Seed: 9})
	exhaustive := Tune(TuneOptions{Study: s, CacheCandidates: 40, Seed: 9})

	// Same candidate pools: the guided coordinated result must reach at
	// least 80% of the exhaustively found speedup.
	if guided.CoordSpeedup() < 0.8*exhaustive.CoordSpeedup() {
		t.Errorf("model-guided coordinated %vx too far below exhaustive %vx",
			guided.CoordSpeedup(), exhaustive.CoordSpeedup())
	}
	if guided.AppSpeedup() < 0.8*exhaustive.AppSpeedup() {
		t.Errorf("model-guided app tuning %vx too far below exhaustive %vx",
			guided.AppSpeedup(), exhaustive.AppSpeedup())
	}
}

func TestNMRUAndRandomPoliciesSimulate(t *testing.T) {
	// Every Table 5 replacement policy must produce sane kernel timings.
	spec, _ := ByName("crystk02")
	s := NewStudy(spec.Scaled(64))
	base := BaselineCache()
	var flops []float64
	for _, pol := range []struct {
		d, i string
	}{{"LRU", "LRU"}, {"NMRU", "NMRU"}, {"RND", "RND"}} {
		cfg := base
		var err error
		if cfg.DRepl, err = cache.ParseReplacement(pol.d); err != nil {
			t.Fatal(err)
		}
		if cfg.IRepl, err = cache.ParseReplacement(pol.i); err != nil {
			t.Fatal(err)
		}
		res := s.Simulate(3, 3, cfg)
		if res.MFlops() <= 0 {
			t.Fatalf("%s: non-positive Mflop/s", pol.d)
		}
		flops = append(flops, res.MFlops())
	}
	// Policies should differ somewhat but stay within 2x of each other.
	for _, f := range flops {
		if f < flops[0]/2 || f > flops[0]*2 {
			t.Errorf("replacement policies implausibly far apart: %v", flops)
		}
	}
}
