package spmv

import "hsmodel/internal/rng"

// This file implements the coordinated-optimization study of Section 5.3 /
// Figure 16: compare tuning the application (block size), the architecture
// (cache configuration), or both, for performance and for energy.

// TuneChoice records one tuning outcome.
type TuneChoice struct {
	R, C   int
	Cfg    CacheConfig
	MFlops float64
	NJFlop float64
}

// TuningResult compares the four strategies for one matrix.
type TuningResult struct {
	Matrix      string
	Baseline    TuneChoice // 1x1 blocks on the baseline cache
	AppTuned    TuneChoice // best block size, baseline cache
	ArchTuned   TuneChoice // 1x1 blocks, best cache
	Coordinated TuneChoice // best of both
}

// AppSpeedup returns application-tuning speedup over baseline (Figure 16a).
func (t TuningResult) AppSpeedup() float64 { return t.AppTuned.MFlops / t.Baseline.MFlops }

// ArchSpeedup returns architecture-tuning speedup over baseline.
func (t TuningResult) ArchSpeedup() float64 { return t.ArchTuned.MFlops / t.Baseline.MFlops }

// CoordSpeedup returns coordinated-tuning speedup over baseline.
func (t TuningResult) CoordSpeedup() float64 { return t.Coordinated.MFlops / t.Baseline.MFlops }

// TuneOptions controls the search.
type TuneOptions struct {
	// CacheCandidates is how many random cache configurations each
	// architecture search considers (default 200). The paper exploits "the
	// tractability of inferred models" for this navigation; Tune can use
	// either exhaustive simulation or a trained model as the oracle.
	CacheCandidates int
	Seed            uint64
	// Models, when non-nil, ranks candidates with the inferred performance
	// model and only simulates the predicted winner — the paper's
	// model-guided co-tuning. When nil, candidates are simulated directly.
	Models *Models
	// Study provides fill ratios and simulation.
	Study *Study
}

func (o TuneOptions) withDefaults() TuneOptions {
	if o.CacheCandidates <= 0 {
		o.CacheCandidates = 200
	}
	return o
}

// Tune runs the four tuning strategies of Figure 16 for the study's matrix.
func Tune(opts TuneOptions) TuningResult {
	opts = opts.withDefaults()
	s := opts.Study
	base := BaselineCache()

	measure := func(r, c int, cfg CacheConfig) TuneChoice {
		res := s.Simulate(r, c, cfg)
		return TuneChoice{R: r, C: c, Cfg: cfg, MFlops: res.MFlops(), NJFlop: res.NJPerFlop()}
	}
	// score ranks a candidate without committing to a full measurement when
	// a model oracle is available.
	score := func(r, c int, cfg CacheConfig) float64 {
		if opts.Models != nil {
			return opts.Models.Perf.Predict(r, c, s.FillRatio(r, c), cfg)
		}
		return s.Simulate(r, c, cfg).MFlops()
	}

	out := TuningResult{Matrix: s.Spec.Name, Baseline: measure(1, 1, base)}

	// Application tuning: sweep the 64 OSKI variants on the baseline cache.
	bestR, bestC, bestScore := 1, 1, score(1, 1, base)
	for r := 1; r <= MaxBlockDim; r++ {
		for c := 1; c <= MaxBlockDim; c++ {
			if sc := score(r, c, base); sc > bestScore {
				bestR, bestC, bestScore = r, c, sc
			}
		}
	}
	out.AppTuned = measure(bestR, bestC, base)

	// Architecture tuning: random cache candidates with 1x1 blocks.
	src := rng.New(opts.Seed ^ 0xa4c4)
	bestCfg, bestScore := base, score(1, 1, base)
	for k := 0; k < opts.CacheCandidates; k++ {
		cfg := SampleCacheConfig(src)
		if sc := score(1, 1, cfg); sc > bestScore {
			bestCfg, bestScore = cfg, sc
		}
	}
	out.ArchTuned = measure(1, 1, bestCfg)

	// Coordinated tuning: joint search over block sizes and cache
	// candidates (the same candidate pool, so strategies are comparable).
	src = rng.New(opts.Seed ^ 0xc004d)
	type cand struct {
		r, c int
		cfg  CacheConfig
	}
	best := cand{1, 1, base}
	bestScore = score(1, 1, base)
	for k := 0; k < opts.CacheCandidates; k++ {
		cfg := SampleCacheConfig(src)
		for r := 1; r <= MaxBlockDim; r++ {
			for c := 1; c <= MaxBlockDim; c++ {
				if sc := score(r, c, cfg); sc > bestScore {
					best, bestScore = cand{r, c, cfg}, sc
				}
			}
		}
	}
	out.Coordinated = measure(best.r, best.c, best.cfg)
	return out
}
