package spmv

import (
	"fmt"
	"sync"

	"hsmodel/internal/cache"
	"hsmodel/internal/rng"
)

// Table 5 levels.
var (
	lineLevels  = []int{16, 32, 64, 128}
	dsizeLevels = []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	waysLevels  = []int{1, 2, 4, 8}
	replLevels  = []cache.Replacement{cache.LRU, cache.NMRU, cache.Random}
	isizeLevels = []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
)

// MaxBlockDim bounds block rows/columns (Table 5: 1 :: 1+ :: 8).
const MaxBlockDim = 8

// NumBlockVariants is the number of r x c code variants OSKI generates per
// matrix (8 x 8 = 64).
const NumBlockVariants = MaxBlockDim * MaxBlockDim

// SampleCacheConfig draws a uniform random Table 5 cache configuration.
func SampleCacheConfig(src *rng.Source) CacheConfig {
	return CacheConfig{
		LineBytes:  lineLevels[src.Intn(len(lineLevels))],
		DSizeBytes: dsizeLevels[src.Intn(len(dsizeLevels))],
		DWays:      waysLevels[src.Intn(len(waysLevels))],
		DRepl:      replLevels[src.Intn(len(replLevels))],
		ISizeBytes: isizeLevels[src.Intn(len(isizeLevels))],
		IWays:      waysLevels[src.Intn(len(waysLevels))],
		IRepl:      replLevels[src.Intn(len(replLevels))],
	}
}

// BaselineCache returns the mid-range reference cache configuration used as
// the untuned architecture in Figure 16.
func BaselineCache() CacheConfig {
	return CacheConfig{
		LineBytes:  16,
		DSizeBytes: 8 << 10,
		DWays:      2,
		DRepl:      cache.LRU,
		ISizeBytes: 8 << 10,
		IWays:      2,
		IRepl:      cache.LRU,
	}
}

// EnumerateCacheConfigs calls fn for every Table 5 cache configuration
// (4*7*4*3*7*4*3 = 28224 points), stopping early if fn returns false.
func EnumerateCacheConfigs(fn func(CacheConfig) bool) {
	for _, line := range lineLevels {
		for _, ds := range dsizeLevels {
			for _, dw := range waysLevels {
				for _, dr := range replLevels {
					for _, is := range isizeLevels {
						for _, iw := range waysLevels {
							for _, ir := range replLevels {
								cfg := CacheConfig{line, ds, dw, dr, is, iw, ir}
								if !fn(cfg) {
									return
								}
							}
						}
					}
				}
			}
		}
	}
}

// Study caches the expensive per-matrix artifacts: the generated CSR and
// the 64 blocked variants. A Study is safe for concurrent use.
type Study struct {
	Spec MatrixSpec
	M    *CSR

	mu      sync.Mutex
	blocked map[[2]int]*BCSR
}

// NewStudy generates the matrix and prepares the variant cache.
func NewStudy(spec MatrixSpec) *Study {
	return &Study{Spec: spec, M: spec.Generate(), blocked: make(map[[2]int]*BCSR)}
}

// Blocked returns the r x c BCSR variant, converting on first use.
func (s *Study) Blocked(r, c int) *BCSR {
	if r < 1 || r > MaxBlockDim || c < 1 || c > MaxBlockDim {
		panic(fmt.Sprintf("spmv: block size %dx%d out of range", r, c))
	}
	key := [2]int{r, c}
	s.mu.Lock()
	b, ok := s.blocked[key]
	s.mu.Unlock()
	if ok {
		return b
	}
	b = ToBCSR(s.M, r, c)
	s.mu.Lock()
	s.blocked[key] = b
	s.mu.Unlock()
	return b
}

// FillRatio returns the fill ratio of the r x c variant (Table 5's x3).
func (s *Study) FillRatio(r, c int) float64 {
	return s.Blocked(r, c).FillRatio()
}

// Simulate runs the r x c variant on cfg.
func (s *Study) Simulate(r, c int, cfg CacheConfig) KernelResult {
	return SimulateKernel(s.Blocked(r, c), cfg)
}

// Point is one sampled observation of the integrated SpMV-cache space.
type Point struct {
	R, C   int
	Fill   float64
	Cfg    CacheConfig
	MFlops float64
	Watts  float64
	NJFlop float64
}

// Sample draws n uniform random (block size, cache architecture) points and
// simulates each — the "400 sparsely sampled profiles" of Section 5.3.
func (s *Study) Sample(n int, seed uint64) []Point {
	src := rng.New(seed)
	points := make([]Point, n)
	for k := range points {
		r := 1 + src.Intn(MaxBlockDim)
		c := 1 + src.Intn(MaxBlockDim)
		cfg := SampleCacheConfig(src)
		res := s.Simulate(r, c, cfg)
		points[k] = Point{
			R: r, C: c,
			Fill:   s.FillRatio(r, c),
			Cfg:    cfg,
			MFlops: res.MFlops(),
			Watts:  res.Watts(),
			NJFlop: res.NJPerFlop(),
		}
	}
	return points
}
