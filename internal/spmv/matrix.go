// Package spmv implements the domain-specific case study of Section 5:
// sparse matrix-vector multiply (v = v + A*u) with BCSR register blocking,
// a synthetic stand-in for the paper's Matrix Market corpus (Table 4), an
// in-order kernel timing and energy simulator over the reconfigurable cache
// architecture of Table 5, inferred performance/power models over the
// integrated SpMV-cache space, and coordinated hardware-software tuning
// (Figure 16).
package spmv

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format triple list used to build matrices.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// Add appends an entry.
func (c *COO) Add(i, j int, v float64) {
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowStart   []int // len Rows+1
	ColIdx     []int // len NNZ, ascending within each row
	Val        []float64
}

// NNZ returns the stored-entry count.
func (m *CSR) NNZ() int { return len(m.Val) }

// Sparsity returns NNZ / (Rows*Cols), Table 4's sparsity column.
func (m *CSR) Sparsity() float64 {
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// ToCSR converts and canonicalizes a COO (sorted rows/columns, duplicate
// entries summed).
func ToCSR(c *COO) *CSR {
	type ent struct {
		i, j int
		v    float64
	}
	ents := make([]ent, len(c.I))
	for k := range c.I {
		if c.I[k] < 0 || c.I[k] >= c.Rows || c.J[k] < 0 || c.J[k] >= c.Cols {
			panic(fmt.Sprintf("spmv: entry (%d,%d) out of %dx%d", c.I[k], c.J[k], c.Rows, c.Cols))
		}
		ents[k] = ent{c.I[k], c.J[k], c.V[k]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].i != ents[b].i {
			return ents[a].i < ents[b].i
		}
		return ents[a].j < ents[b].j
	})
	m := &CSR{Rows: c.Rows, Cols: c.Cols, RowStart: make([]int, c.Rows+1)}
	for k := 0; k < len(ents); {
		e := ents[k]
		v := e.v
		k++
		for k < len(ents) && ents[k].i == e.i && ents[k].j == e.j {
			v += ents[k].v
			k++
		}
		m.ColIdx = append(m.ColIdx, e.j)
		m.Val = append(m.Val, v)
		m.RowStart[e.i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowStart[i+1] += m.RowStart[i]
	}
	return m
}

// MulVec computes v = v + A*u, the reference kernel all blocked variants
// are verified against.
func (m *CSR) MulVec(u, v []float64) {
	if len(u) != m.Cols || len(v) != m.Rows {
		panic("spmv: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		sum := v[i]
		for k := m.RowStart[i]; k < m.RowStart[i+1]; k++ {
			sum += m.Val[k] * u[m.ColIdx[k]]
		}
		v[i] = sum
	}
}

// Row returns the column indices and values of row i (shared storage).
func (m *CSR) Row(i int) ([]int, []float64) {
	lo, hi := m.RowStart[i], m.RowStart[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}
