package spmv

import "fmt"

// BCSR is the r x c block compressed sparse row format of Figure 11: every
// block with at least one non-zero is stored densely (padding with explicit
// zeros), blocks are laid out contiguously in Val, BColIdx holds the first
// column index of each block, and BRowStart points at block-row boundaries
// in BColIdx.
//
// Blocking trades storage and flops (the fill ratio) for locality and index
// overhead: indices point at blocks instead of individual values, the
// source vector element u[j] is re-used across the r rows of a block, and
// values stream contiguously.
type BCSR struct {
	Rows, Cols int // logical (unpadded) dimensions
	R, C       int // block dimensions
	BRowStart  []int
	BColIdx    []int
	Val        []float64 // len = numBlocks*R*C, blocks row-major
	// OrigNNZ is the non-zero count of the source matrix, the denominator
	// of the fill ratio and the numerator of "true" Mflop/s.
	OrigNNZ int
}

// NumBlocks returns the stored-block count.
func (b *BCSR) NumBlocks() int { return len(b.BColIdx) }

// StoredValues returns the stored-value count including explicit zeros.
func (b *BCSR) StoredValues() int { return len(b.Val) }

// FillRatio returns stored values (original non-zeros plus filled zeros)
// divided by original non-zeros — Table 5's x3.
func (b *BCSR) FillRatio() float64 {
	if b.OrigNNZ == 0 {
		return 1
	}
	return float64(b.StoredValues()) / float64(b.OrigNNZ)
}

// ToBCSR blocks m into r x c tiles. Rows and columns are implicitly padded
// to multiples of r and c; padding never stores blocks because padded
// regions hold no non-zeros.
func ToBCSR(m *CSR, r, c int) *BCSR {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("spmv: invalid block size %dx%d", r, c))
	}
	b := &BCSR{Rows: m.Rows, Cols: m.Cols, R: r, C: c, OrigNNZ: m.NNZ()}
	numBlockRows := (m.Rows + r - 1) / r
	b.BRowStart = make([]int, numBlockRows+1)

	// blockCols marks, per block row, which block columns are occupied.
	// seenAt maps block column -> position in this block row's block list.
	seenAt := make(map[int]int)
	for bi := 0; bi < numBlockRows; bi++ {
		// Pass 1: discover occupied block columns in ascending order.
		for k := range seenAt {
			delete(seenAt, k)
		}
		var cols []int
		rowLo := bi * r
		rowHi := rowLo + r
		if rowHi > m.Rows {
			rowHi = m.Rows
		}
		for i := rowLo; i < rowHi; i++ {
			idx, _ := m.Row(i)
			for _, j := range idx {
				bj := j / c
				if _, ok := seenAt[bj]; !ok {
					seenAt[bj] = 0
					cols = append(cols, bj)
				}
			}
		}
		sortInts(cols)
		base := len(b.BColIdx)
		for pos, bj := range cols {
			seenAt[bj] = base + pos
			b.BColIdx = append(b.BColIdx, bj*c)
		}
		b.Val = append(b.Val, make([]float64, len(cols)*r*c)...)

		// Pass 2: scatter values into their dense blocks.
		for i := rowLo; i < rowHi; i++ {
			idx, vals := m.Row(i)
			for k, j := range idx {
				blk := seenAt[j/c]
				off := blk*r*c + (i-rowLo)*c + (j - (j/c)*c)
				b.Val[off] = vals[k]
			}
		}
		b.BRowStart[bi+1] = len(b.BColIdx)
	}
	return b
}

// sortInts is a small insertion sort: block rows rarely hold more than a few
// hundred blocks, and avoiding sort.Ints keeps conversion allocation-free on
// the hot path.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// MulVec computes v = v + A*u block by block, the computation the timing
// simulator models. Results match CSR.MulVec exactly (explicit zeros
// multiply into nothing).
func (b *BCSR) MulVec(u, v []float64) {
	if len(u) != b.Cols || len(v) != b.Rows {
		panic("spmv: BCSR MulVec dimension mismatch")
	}
	numBlockRows := len(b.BRowStart) - 1
	for bi := 0; bi < numBlockRows; bi++ {
		rowLo := bi * b.R
		for blk := b.BRowStart[bi]; blk < b.BRowStart[bi+1]; blk++ {
			colLo := b.BColIdx[blk]
			base := blk * b.R * b.C
			for dr := 0; dr < b.R; dr++ {
				i := rowLo + dr
				if i >= b.Rows {
					break
				}
				sum := v[i]
				for dc := 0; dc < b.C; dc++ {
					j := colLo + dc
					if j >= b.Cols {
						break
					}
					sum += b.Val[base+dr*b.C+dc] * u[j]
				}
				v[i] = sum
			}
		}
	}
}
