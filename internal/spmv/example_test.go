package spmv_test

import (
	"fmt"

	"hsmodel/internal/spmv"
)

// ExampleToBCSR reproduces the paper's Figure 11: a 4x6 sparse matrix
// blocked into 2x2 tiles.
func ExampleToBCSR() {
	coo := &spmv.COO{Rows: 4, Cols: 6}
	for _, e := range [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 4}, {1, 5},
		{2, 2}, {2, 4}, {2, 5}, {3, 3}, {3, 4}, {3, 5},
	} {
		coo.Add(e[0], e[1], 1)
	}
	b := spmv.ToBCSR(spmv.ToCSR(coo), 2, 2)
	fmt.Println("b_row_start:", b.BRowStart)
	fmt.Println("b_col_idx:  ", b.BColIdx)
	fmt.Printf("fill ratio:  %.3f\n", b.FillRatio())
	// Output:
	// b_row_start: [0 2 4]
	// b_col_idx:   [0 4 2 4]
	// fill ratio:  1.333
}

// ExampleSimulateKernel times one blocked SpMV on a Table 5 cache
// configuration.
func ExampleSimulateKernel() {
	spec, _ := spmv.ByName("raefsky3")
	study := spmv.NewStudy(spec.Scaled(64))
	res := study.Simulate(8, 4, spmv.BaselineCache())
	fmt.Println("true flops == 2*nnz:", res.TrueFlops == 2*study.M.NNZ())
	fmt.Println("positive throughput:", res.MFlops() > 0)
	fmt.Println("fill included in executed flops:", res.ExecFlops >= res.TrueFlops)
	// Output:
	// true flops == 2*nnz: true
	// positive throughput: true
	// fill included in executed flops: true
}
