package spmv

import (
	"context"
	"fmt"

	"hsmodel/internal/genetic"
	"hsmodel/internal/linalg"
	"hsmodel/internal/regress"
)

// NumDomainVars is the domain-specific variable count of Table 5: three
// software knobs (block rows, block columns, fill ratio) and seven cache
// parameters. Ten semantic-rich parameters replace the 26 instruction-level
// variables of the general study — "models use fewer, semantic-rich
// parameters to greater effect" (Section 5.3).
const NumDomainVars = 10

// DomainVarNames returns the Table 5 variable names in dataset order.
func DomainVarNames() []string {
	return []string{
		"brow", "bcol", "fR",
		"lsize", "dsize", "dways", "drepl", "isize", "iways", "irepl",
	}
}

// domainRow encodes one observation's raw variables.
func domainRow(pt Point) []float64 {
	hw := pt.Cfg.Vector()
	row := make([]float64, 0, NumDomainVars)
	row = append(row, float64(pt.R), float64(pt.C), pt.Fill)
	row = append(row, hw[:]...)
	return row
}

// Response selects the prediction target of a domain model.
type Response int

// Prediction targets (Figure 14 reports both).
const (
	PredictMFlops Response = iota
	PredictWatts
)

func (r Response) String() string {
	if r == PredictWatts {
		return "power"
	}
	return "performance"
}

// BuildDomainDataset converts sampled points into a regression dataset for
// the given response.
func BuildDomainDataset(points []Point, resp Response) *regress.Dataset {
	ds := &regress.Dataset{
		Names: DomainVarNames(),
		X:     linalg.NewMatrix(len(points), NumDomainVars),
		Y:     make([]float64, len(points)),
	}
	for i, pt := range points {
		copy(ds.X.Row(i), domainRow(pt))
		switch resp {
		case PredictWatts:
			ds.Y[i] = pt.Watts
		default:
			ds.Y[i] = pt.MFlops
		}
	}
	return ds
}

// DomainModel is a fitted domain-specific model for one matrix and response.
type DomainModel struct {
	Matrix   string
	Resp     Response
	Model    *regress.Model
	Fitness  float64
	Searched int // fitness evaluations spent
}

// Predict returns the model's prediction for a block size and cache
// configuration. fill must be the variant's fill ratio (available from
// Study.FillRatio — it is a property of matrix and block size, not of
// execution).
func (dm *DomainModel) Predict(r, c int, fill float64, cfg CacheConfig) float64 {
	return dm.Model.Predict(domainRow(Point{R: r, C: c, Fill: fill, Cfg: cfg}))
}

// TrainOptions configures domain-model training.
type TrainOptions struct {
	// Search configures the genetic search; domain models converge with a
	// smaller effort than the 26-variable general models.
	Search genetic.Params
	// ValFrac is the internal validation fraction for search fitness
	// (default 0.25).
	ValFrac float64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Search.PopulationSize == 0 {
		o.Search.PopulationSize = 30
	}
	if o.Search.Generations == 0 {
		o.Search.Generations = 12
	}
	if o.ValFrac <= 0 || o.ValFrac >= 1 {
		o.ValFrac = 0.25
	}
	return o
}

// TrainDomainModel fits a model for one response from sampled points via
// genetic specification search. Cancelling ctx aborts the search.
func TrainDomainModel(ctx context.Context, matrix string, points []Point, resp Response, opts TrainOptions) (*DomainModel, error) {
	opts = opts.withDefaults()
	ds := BuildDomainDataset(points, resp)
	// Featurize once over all points: preprocessing (powers, knots) is
	// learned from the full dataset and the cached basis columns are shared
	// by every candidate fit of the search.
	fzFull, err := regress.NewFeaturizer(ds, true)
	if err != nil {
		return nil, fmt.Errorf("spmv: featurizing %s %s: %w", matrix, resp, err)
	}

	// Deterministic train/validation split for search fitness.
	nVal := int(float64(len(points)) * opts.ValFrac)
	if nVal < 1 {
		return nil, fmt.Errorf("spmv: too few points (%d) to train", len(points))
	}
	var trainRows, valRows []int
	for i := range points {
		// Every (1/ValFrac)-th row validates; points were sampled uniformly
		// at random, so striding is an unbiased split.
		if i%int(1/opts.ValFrac) == 0 {
			valRows = append(valRows, i)
		} else {
			trainRows = append(trainRows, i)
		}
	}
	fzTrain, err := regress.FeaturizeWith(fzFull.Prep(), ds.Subset(trainRows))
	if err != nil {
		return nil, fmt.Errorf("spmv: featurizing %s %s: %w", matrix, resp, err)
	}
	valDS := ds.Subset(valRows)

	eval := genetic.EvaluatorFunc(func(spec regress.Spec) float64 {
		m, err := fzTrain.Fit(spec, regress.Options{LogResponse: true})
		if err != nil {
			return 1e6
		}
		return m.Evaluate(valDS).MedAPE
	})
	res, err := genetic.Search(ctx, NumDomainVars, eval, opts.Search)
	if err != nil {
		return nil, fmt.Errorf("spmv: search for %s %s: %w", matrix, resp, err)
	}

	final, err := fzFull.Fit(res.Best.Spec, regress.Options{LogResponse: true})
	if err != nil {
		return nil, fmt.Errorf("spmv: final fit for %s %s: %w", matrix, resp, err)
	}
	return &DomainModel{
		Matrix:   matrix,
		Resp:     resp,
		Model:    final,
		Fitness:  res.Best.Fitness,
		Searched: res.Evals,
	}, nil
}

// Models bundles the performance and power models of one matrix.
type Models struct {
	Perf  *DomainModel
	Power *DomainModel
}

// TrainModels trains both responses from one sampled point set.
func TrainModels(ctx context.Context, matrix string, points []Point, opts TrainOptions) (Models, error) {
	perf, err := TrainDomainModel(ctx, matrix, points, PredictMFlops, opts)
	if err != nil {
		return Models{}, err
	}
	pow, err := TrainDomainModel(ctx, matrix, points, PredictWatts, opts)
	if err != nil {
		return Models{}, err
	}
	return Models{Perf: perf, Power: pow}, nil
}

// EvaluateDomainModel reports accuracy on held-out points.
func EvaluateDomainModel(dm *DomainModel, points []Point) regress.Metrics {
	return dm.Model.Evaluate(BuildDomainDataset(points, dm.Resp))
}
