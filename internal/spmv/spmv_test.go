package spmv

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"hsmodel/internal/genetic"
	"hsmodel/internal/rng"
)

// randomCSR builds a random sparse matrix for property tests.
func randomCSR(src *rng.Source, rows, cols, nnz int) *CSR {
	coo := &COO{Rows: rows, Cols: cols}
	for k := 0; k < nnz; k++ {
		coo.Add(src.Intn(rows), src.Intn(cols), src.Float64()*2-1)
	}
	return ToCSR(coo)
}

func TestToCSRSortsAndSumsDuplicates(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 3}
	coo.Add(1, 2, 1.0)
	coo.Add(0, 1, 2.0)
	coo.Add(1, 2, 3.0) // duplicate: summed
	coo.Add(1, 0, 4.0)
	m := ToCSR(coo)
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (duplicates summed)", m.NNZ())
	}
	idx, vals := m.Row(1)
	if idx[0] != 0 || idx[1] != 2 {
		t.Errorf("row 1 columns %v not sorted", idx)
	}
	if vals[1] != 4.0 {
		t.Errorf("duplicate not summed: %v", vals)
	}
	if s := m.Sparsity(); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sparsity %v", s)
	}
}

func TestCSRMulVec(t *testing.T) {
	// [[1 0 2],[0 3 0]] * [1 2 3] + [10 20] = [17 26].
	coo := &COO{Rows: 2, Cols: 3}
	coo.Add(0, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 1, 3)
	m := ToCSR(coo)
	v := []float64{10, 20}
	m.MulVec([]float64{1, 2, 3}, v)
	if v[0] != 17 || v[1] != 26 {
		t.Fatalf("MulVec = %v", v)
	}
}

// TestFigure11Example asserts the exact BCSR layout of the paper's Figure
// 11: a 4x6 matrix with 2x2 blocks, b_row_start = (0 2 4), b_col_idx =
// (0 4 2 4), and four explicit filled zeros.
func TestFigure11Example(t *testing.T) {
	coo := &COO{Rows: 4, Cols: 6}
	// Row 0: a00 a01; Row 1: a10 a11 a14 a15; Row 2: a22 a24 a25;
	// Row 3: a33 a34 a35. Values encode position for identification.
	at := func(i, j int) float64 { return float64(10*i + j + 1) }
	for _, e := range [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 4}, {1, 5},
		{2, 2}, {2, 4}, {2, 5}, {3, 3}, {3, 4}, {3, 5},
	} {
		coo.Add(e[0], e[1], at(e[0], e[1]))
	}
	m := ToCSR(coo)
	b := ToBCSR(m, 2, 2)

	wantRowStart := []int{0, 2, 4}
	for i, v := range wantRowStart {
		if b.BRowStart[i] != v {
			t.Fatalf("b_row_start = %v, want %v", b.BRowStart, wantRowStart)
		}
	}
	wantColIdx := []int{0, 4, 2, 4}
	for i, v := range wantColIdx {
		if b.BColIdx[i] != v {
			t.Fatalf("b_col_idx = %v, want %v", b.BColIdx, wantColIdx)
		}
	}
	// b_value = (a00 a01 a10 a11  0 0 a14 a15  a22 0 0 a33  a24 a25 a34 a35)
	want := []float64{
		at(0, 0), at(0, 1), at(1, 0), at(1, 1),
		0, 0, at(1, 4), at(1, 5),
		at(2, 2), 0, 0, at(3, 3),
		at(2, 4), at(2, 5), at(3, 4), at(3, 5),
	}
	if len(b.Val) != len(want) {
		t.Fatalf("stored %d values, want %d", len(b.Val), len(want))
	}
	for i, v := range want {
		if math.Float64bits(b.Val[i]) != math.Float64bits(v) {
			t.Fatalf("b_value[%d] = %v, want %v (full: %v)", i, b.Val[i], v, b.Val)
		}
	}
	// Fill ratio: 16 stored / 12 non-zeros.
	if fr := b.FillRatio(); math.Abs(fr-16.0/12) > 1e-12 {
		t.Errorf("fill ratio %v, want 4/3", fr)
	}
}

// TestBCSREquivalenceProperty: for random matrices and every block size,
// BCSR multiply matches CSR multiply exactly.
func TestBCSREquivalenceProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		rows := 8 + src.Intn(40)
		cols := 8 + src.Intn(40)
		m := randomCSR(src, rows, cols, 2*(rows+cols))
		u := make([]float64, cols)
		for i := range u {
			u[i] = src.Float64()*2 - 1
		}
		ref := make([]float64, rows)
		m.MulVec(u, ref)

		r := 1 + src.Intn(MaxBlockDim)
		c := 1 + src.Intn(MaxBlockDim)
		b := ToBCSR(m, r, c)
		got := make([]float64, rows)
		b.MulVec(u, got)
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-9 {
				return false
			}
		}
		return b.FillRatio() >= 1
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFillRatioOneForAlignedDenseBlocks(t *testing.T) {
	// A matrix made of aligned 3x3 dense blocks has fill 1.0 at 3x3 and
	// 1.0 at 1x1, but fill > 1 at 2x2.
	coo := &COO{Rows: 9, Cols: 9}
	for blk := 0; blk < 3; blk++ {
		for dr := 0; dr < 3; dr++ {
			for dc := 0; dc < 3; dc++ {
				coo.Add(blk*3+dr, blk*3+dc, 1)
			}
		}
	}
	m := ToCSR(coo)
	if fr := ToBCSR(m, 3, 3).FillRatio(); fr != 1 {
		t.Errorf("3x3 fill %v, want 1", fr)
	}
	if fr := ToBCSR(m, 1, 1).FillRatio(); fr != 1 {
		t.Errorf("1x1 fill %v, want 1", fr)
	}
	if fr := ToBCSR(m, 2, 2).FillRatio(); fr <= 1 {
		t.Errorf("2x2 fill %v, want > 1 (misaligned)", fr)
	}
}

func TestCorpusGeneratesToSpec(t *testing.T) {
	for _, spec := range Corpus() {
		scaled := spec.Scaled(32)
		m := scaled.Generate()
		if m.Rows > scaled.N || m.Rows < scaled.N-8*scaled.NBRow {
			t.Errorf("%s: dimension %d vs spec %d", spec.Name, m.Rows, scaled.N)
		}
		// NNZ within 40% of target (block rounding and dedupe shift it).
		ratio := float64(m.NNZ()) / float64(scaled.NNZ)
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: nnz %d vs target %d (ratio %.2f)", spec.Name, m.NNZ(), scaled.NNZ, ratio)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	spec, err := ByName("crystk02")
	if err != nil {
		t.Fatal(err)
	}
	a := spec.Scaled(32).Generate()
	b := spec.Scaled(32).Generate()
	if a.NNZ() != b.NNZ() {
		t.Fatal("matrix generation not deterministic")
	}
	for i := range a.Val {
		if math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("matrix generation not deterministic")
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown matrix should error")
	}
}

func TestFEMSubstructure(t *testing.T) {
	// nasasrb (3-DOF FEM): fill at the natural block must be ~1, fill at a
	// misaligned size (5x5) must be much larger.
	spec, _ := ByName("nasasrb")
	s := NewStudy(spec.Scaled(32))
	nat := s.FillRatio(3, 3)
	mis := s.FillRatio(5, 5)
	if nat > 1.05 {
		t.Errorf("natural-block fill %v, want ~1", nat)
	}
	if mis < 1.5 {
		t.Errorf("misaligned fill %v, want heavy", mis)
	}
	// Circuit matrices have no substructure: even 2x2 costs real fill.
	spec2, _ := ByName("memplus")
	s2 := NewStudy(spec2.Scaled(16))
	if f := s2.FillRatio(2, 2); f < 1.5 {
		t.Errorf("circuit 2x2 fill %v, want heavy", f)
	}
}

func TestKernelTimingBasics(t *testing.T) {
	spec, _ := ByName("olafu")
	s := NewStudy(spec.Scaled(32))
	res := s.Simulate(1, 1, BaselineCache())
	if res.Cycles <= 0 || res.TrueFlops != 2*s.M.NNZ() {
		t.Fatalf("result %+v", res)
	}
	if res.ExecFlops < res.TrueFlops {
		t.Error("executed flops must include fill")
	}
	if res.MFlops() <= 0 || res.NJPerFlop() <= 0 || res.Watts() <= 0 {
		t.Error("derived metrics must be positive")
	}
	if res.Seconds() <= 0 {
		t.Error("time must be positive")
	}
}

func TestLargerLinesRaiseStreamingPerformance(t *testing.T) {
	// Figure 13's headline: larger cache lines amortize off-chip latency.
	spec, _ := ByName("pwtk")
	s := NewStudy(spec.Scaled(64))
	cfg := BaselineCache()
	var prev float64
	for _, line := range []int{16, 32, 64, 128} {
		cfg.LineBytes = line
		mf := s.Simulate(4, 4, cfg).MFlops()
		if mf <= prev {
			t.Fatalf("line %dB: %v MFlops not above previous %v", line, mf, prev)
		}
		prev = mf
	}
}

func TestEnergyTradeoffs(t *testing.T) {
	spec, _ := ByName("raefsky3")
	s := NewStudy(spec.Scaled(32))
	base := BaselineCache()
	// Blocking reduces energy per flop (less data movement).
	e11 := s.Simulate(1, 1, base).NJPerFlop()
	e84 := s.Simulate(8, 4, base).NJPerFlop()
	if e84 >= e11 {
		t.Errorf("blocking should cut energy: 1x1=%v 8x4=%v", e11, e84)
	}
	// Larger lines raise memory transfer energy per flop at 1x1 (unblocked
	// code wastes transferred bytes).
	big := base
	big.LineBytes = 128
	eBigLine := s.Simulate(1, 1, big).NJPerFlop()
	if eBigLine <= e11 {
		t.Errorf("larger lines should cost energy unblocked: %v vs %v", eBigLine, e11)
	}
}

func TestSamplePointsComplete(t *testing.T) {
	spec, _ := ByName("bayer02")
	s := NewStudy(spec.Scaled(8))
	pts := s.Sample(50, 3)
	if len(pts) != 50 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.R < 1 || pt.R > 8 || pt.C < 1 || pt.C > 8 {
			t.Errorf("block size %dx%d out of range", pt.R, pt.C)
		}
		if pt.Fill < 1 || pt.MFlops <= 0 || pt.Watts <= 0 || pt.NJFlop <= 0 {
			t.Errorf("incomplete point %+v", pt)
		}
	}
	// Determinism.
	again := s.Sample(50, 3)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestDomainModelAccuracy(t *testing.T) {
	// The Figure 14 claim at reduced scale: median errors well under 10%
	// for both performance and power.
	spec, _ := ByName("venkat01")
	s := NewStudy(spec.Scaled(32))
	train := s.Sample(300, 7)
	valid := s.Sample(80, 1007)
	models, err := TrainModels(context.Background(), "venkat01", train, TrainOptions{
		Search: genetic.Params{PopulationSize: 20, Generations: 8, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	perf := EvaluateDomainModel(models.Perf, valid)
	if perf.MedAPE > 0.10 {
		t.Errorf("performance medAPE %v, want < 10%%", perf.MedAPE)
	}
	if perf.Pearson < 0.9 {
		t.Errorf("performance correlation %v, want > 0.9", perf.Pearson)
	}
	pow := EvaluateDomainModel(models.Power, valid)
	if pow.MedAPE > 0.10 {
		t.Errorf("power medAPE %v, want < 10%%", pow.MedAPE)
	}
	// Prediction plumbing.
	pred := models.Perf.Predict(4, 4, s.FillRatio(4, 4), BaselineCache())
	if pred <= 0 {
		t.Errorf("prediction %v", pred)
	}
}

func TestTuneOrdering(t *testing.T) {
	spec, _ := ByName("crystk02")
	s := NewStudy(spec.Scaled(32))
	res := Tune(TuneOptions{Study: s, CacheCandidates: 30, Seed: 2})
	if res.Baseline.MFlops <= 0 {
		t.Fatal("baseline not measured")
	}
	if res.AppSpeedup() < 1 || res.ArchSpeedup() < 1 {
		t.Errorf("tuning should not lose to baseline: app=%v arch=%v",
			res.AppSpeedup(), res.ArchSpeedup())
	}
	// Coordinated search covers both single-dimension searches' spaces.
	if res.CoordSpeedup() < res.AppSpeedup()-1e-9 {
		t.Errorf("coordinated %v below app-only %v", res.CoordSpeedup(), res.AppSpeedup())
	}
	if res.CoordSpeedup() < res.ArchSpeedup()-1e-9 {
		t.Errorf("coordinated %v below arch-only %v", res.CoordSpeedup(), res.ArchSpeedup())
	}
	// Figure 16(b): app tuning reduces energy per flop.
	if res.AppTuned.NJFlop >= res.Baseline.NJFlop {
		t.Errorf("app tuning should cut energy: %v -> %v",
			res.Baseline.NJFlop, res.AppTuned.NJFlop)
	}
}

func TestCacheConfigVectorAndString(t *testing.T) {
	cfg := BaselineCache()
	v := cfg.Vector()
	if math.Float64bits(v[0]) != math.Float64bits(float64(cfg.LineBytes)) || math.Float64bits(v[1]) != math.Float64bits(float64(cfg.DSizeBytes)) {
		t.Errorf("vector %v", v)
	}
	if cfg.String() == "" {
		t.Error("empty config string")
	}
	if NumBlockVariants != 64 {
		t.Error("OSKI generates 64 variants")
	}
}

func TestEnumerateCacheConfigs(t *testing.T) {
	n := 0
	EnumerateCacheConfigs(func(cfg CacheConfig) bool {
		n++
		return n < 500
	})
	if n != 500 {
		t.Fatalf("early stop failed: %d", n)
	}
	total := 0
	EnumerateCacheConfigs(func(cfg CacheConfig) bool { total++; return true })
	if total != 4*7*4*3*7*4*3 {
		t.Fatalf("space size %d", total)
	}
}
