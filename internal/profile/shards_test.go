package profile

import (
	"reflect"
	"testing"

	"hsmodel/internal/isa"
	"hsmodel/internal/trace"
)

// TestStreamShardsMatchesSerial: the parallel shard profiler must return
// results in deterministic shard order, identical to a serial loop, for any
// worker count. Runs under -race in `make race` to exercise the work-stealing
// counter.
func TestStreamShardsMatchesSerial(t *testing.T) {
	app := trace.Bzip2()
	const shardLen = 5_000
	shards := ShardRange(9)
	want := make([]ShardProfile, len(shards))
	for k, s := range shards {
		want[k] = Stream(app.ShardStream(s, shardLen), app.Name, s)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := StreamShards(app.Name, shards, workers, func(s int) isa.Stream {
			return app.ShardStream(s, shardLen)
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel profile order/content diverged from serial", workers)
		}
	}
}

// TestStreamShardsArbitraryIndices: shard lists need not be contiguous; out[k]
// must correspond to shards[k].
func TestStreamShardsArbitraryIndices(t *testing.T) {
	app := trace.Astar()
	const shardLen = 4_000
	shards := []int{7, 2, 11}
	got := StreamShards(app.Name, shards, 2, func(s int) isa.Stream {
		return app.ShardStream(s, shardLen)
	})
	for k, s := range shards {
		want := Stream(app.ShardStream(s, shardLen), app.Name, s)
		if !reflect.DeepEqual(got[k], want) {
			t.Errorf("out[%d] is not the profile of shard %d", k, s)
		}
	}
}

func TestStreamShardsEmpty(t *testing.T) {
	got := StreamShards("none", nil, 4, func(s int) isa.Stream {
		t.Fatal("stream factory called for empty shard list")
		return nil
	})
	if len(got) != 0 {
		t.Fatalf("got %d profiles for empty shard list", len(got))
	}
}

func TestShardRange(t *testing.T) {
	if got := ShardRange(4); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("ShardRange(4) = %v", got)
	}
	if got := ShardRange(0); len(got) != 0 {
		t.Errorf("ShardRange(0) = %v", got)
	}
}
