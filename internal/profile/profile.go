// Package profile implements the paper's shard-level,
// microarchitecture-independent software profiler (Sections 2.1–2.2,
// Table 1). A profiler consumes a dynamic instruction stream — the paper
// instrumented gem5's commit stage to get the same stream regardless of the
// out-of-order engine; here the stream comes straight from the workload
// generator, which is equivalent by construction — and produces the thirteen
// characteristics x1..x13:
//
//	x1  # control instructions            x8  avg re-use distance, 64B d-blocks
//	x2  # taken branches                  x9  avg re-use distance, 64B i-blocks
//	x3  # floating-point ALU              x10 producer→consumer distance, FP ALU
//	x4  # floating-point mul/div          x11 producer→consumer distance, FP mul
//	x5  # integer mul/div                 x12 producer→consumer distance, int mul
//	x6  # integer ALU                     x13 avg basic-block size
//	x7  # memory operations
//
// Counts (x1–x7) are reported per kilo-instruction so profiles are
// comparable across shard lengths; distances (x8–x12) are in dynamic
// instructions, as the paper defines re-use distance ("the number of
// instructions separating two consecutive accesses to the same data block").
package profile

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hsmodel/internal/isa"
)

// NumCharacteristics is the number of software characteristics in Table 1.
const NumCharacteristics = 13

// Characteristic indices into Characteristics (0-based; the paper's x_i is
// index i-1).
const (
	XControl = iota
	XTakenBranches
	XFPALU
	XFPMulDiv
	XIntMulDiv
	XIntALU
	XMemory
	XDReuse
	XIReuse
	XFPALUDist
	XFPMulDist
	XIntMulDist
	XBasicBlock
)

// Names gives the paper's description for each characteristic, indexed as
// above.
var Names = [NumCharacteristics]string{
	"x1 #Control",
	"x2 #TakenBranches",
	"x3 #FloatALU",
	"x4 #FloatMulDiv",
	"x5 #IntMulDiv",
	"x6 #IntALU",
	"x7 #Memory",
	"x8 d-reuse distance (64B)",
	"x9 i-reuse distance (64B)",
	"x10 FPALU producer-consumer dist",
	"x11 FPMul producer-consumer dist",
	"x12 IntMul producer-consumer dist",
	"x13 avg basic block size",
}

// Characteristics holds the thirteen Table 1 measures for one shard.
type Characteristics [NumCharacteristics]float64

// ShardProfile is the portable profile of one application shard plus the
// auxiliary 256-byte-block sum-of-reuse-distances used in Figure 3's
// variance-stabilization study.
type ShardProfile struct {
	App         string
	Shard       int
	Insts       int
	X           Characteristics
	SumReuse256 float64
}

func (p ShardProfile) String() string {
	return fmt.Sprintf("%s/shard%d: %v", p.App, p.Shard, p.X)
}

// blockBytes is the 64B block granularity of x8/x9; wideBlockBytes is the
// 256B granularity of the Figure 3 sum-of-distances characteristic.
const (
	blockBytes     = 64
	wideBlockBytes = 256
)

// Profiler accumulates characteristics over a stream. The zero value is
// ready to use.
type Profiler struct {
	insts      int64
	classCount [isa.NumClasses]int64
	taken      int64

	dLast    map[uint64]int64 // 64B data block -> last access instruction index
	iLast    map[uint64]int64 // 64B inst block -> last access instruction index
	d256Last map[uint64]int64 // 256B data block -> last access instruction index

	dReuseSum, iReuseSum float64
	dReuseN, iReuseN     int64
	sumReuse256          float64
	prodDistSum          [isa.NumClasses]float64
	prodDistN            [isa.NumClasses]int64
	recentClasses        [isa.MaxDepDistance + 1]isa.Class
}

// Observe feeds one instruction into the profiler. Instructions must be
// presented in program order.
func (pr *Profiler) Observe(in *isa.Inst) {
	if pr.dLast == nil {
		pr.dLast = make(map[uint64]int64, 1<<12)
		pr.iLast = make(map[uint64]int64, 1<<10)
		pr.d256Last = make(map[uint64]int64, 1<<10)
	}
	idx := pr.insts
	pr.classCount[in.Class]++
	if in.Class == isa.Branch && in.Taken {
		pr.taken++
	}
	if in.Class.IsMemory() {
		pr.reuse(pr.dLast, in.Addr/blockBytes, idx, &pr.dReuseSum, &pr.dReuseN)
		b256 := in.Addr / wideBlockBytes
		if last, ok := pr.d256Last[b256]; ok {
			pr.sumReuse256 += float64(idx - last)
		}
		pr.d256Last[b256] = idx
	}
	pr.reuse(pr.iLast, in.PC/blockBytes, idx, &pr.iReuseSum, &pr.iReuseN)

	// Producer→consumer distances, attributed to the producer's class
	// (Table 1 x10–x12). The producer's class comes from a ring of recent
	// classes; distances beyond the ring carry no dependence by contract.
	pr.observeDep(idx, in.Dep1)
	pr.observeDep(idx, in.Dep2)
	pr.recentClasses[idx%int64(len(pr.recentClasses))] = in.Class
	pr.insts++
}

func (pr *Profiler) observeDep(idx int64, dist int32) {
	if dist <= 0 || int64(dist) > idx || dist > isa.MaxDepDistance {
		return
	}
	producer := idx - int64(dist)
	cls := pr.recentClasses[producer%int64(len(pr.recentClasses))]
	pr.prodDistSum[cls] += float64(dist)
	pr.prodDistN[cls]++
}

func (pr *Profiler) reuse(last map[uint64]int64, block uint64, idx int64, sum *float64, n *int64) {
	if prev, ok := last[block]; ok {
		*sum += float64(idx - prev)
		*n++
	}
	last[block] = idx
}

// Finish returns the accumulated shard profile. app and shard label the
// result; they do not affect the measurements.
func (pr *Profiler) Finish(app string, shard int) ShardProfile {
	n := pr.insts
	if n == 0 {
		return ShardProfile{App: app, Shard: shard}
	}
	perKilo := func(c int64) float64 { return 1000 * float64(c) / float64(n) }
	avg := func(sum float64, cnt int64) float64 {
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	var x Characteristics
	control := pr.classCount[isa.Branch]
	x[XControl] = perKilo(control)
	x[XTakenBranches] = perKilo(pr.taken)
	x[XFPALU] = perKilo(pr.classCount[isa.FPALU])
	x[XFPMulDiv] = perKilo(pr.classCount[isa.FPMulDiv])
	x[XIntMulDiv] = perKilo(pr.classCount[isa.IntMulDiv])
	x[XIntALU] = perKilo(pr.classCount[isa.IntALU])
	x[XMemory] = perKilo(pr.classCount[isa.Load] + pr.classCount[isa.Store])
	x[XDReuse] = avg(pr.dReuseSum, pr.dReuseN)
	x[XIReuse] = avg(pr.iReuseSum, pr.iReuseN)
	x[XFPALUDist] = avg(pr.prodDistSum[isa.FPALU], pr.prodDistN[isa.FPALU])
	x[XFPMulDist] = avg(pr.prodDistSum[isa.FPMulDiv], pr.prodDistN[isa.FPMulDiv])
	x[XIntMulDist] = avg(pr.prodDistSum[isa.IntMulDiv], pr.prodDistN[isa.IntMulDiv])
	if control > 0 {
		x[XBasicBlock] = float64(n) / float64(control)
	} else {
		x[XBasicBlock] = float64(n)
	}
	return ShardProfile{
		App:         app,
		Shard:       shard,
		Insts:       int(n),
		X:           x,
		SumReuse256: pr.sumReuse256,
	}
}

// Stream profiles an entire instruction stream.
func Stream(st isa.Stream, app string, shard int) ShardProfile {
	var pr Profiler
	var in isa.Inst
	for st.Next(&in) {
		pr.Observe(&in)
	}
	return pr.Finish(app, shard)
}

// StreamShards profiles many shards of one application across a worker pool.
// Shards are independent by construction (Section 2.1: each shard is a
// disjoint slice of the dynamic instruction stream), so each worker runs its
// own Profiler over the stream the factory returns for that shard. The
// result slice is in deterministic order: out[k] is the profile of
// shards[k], regardless of worker scheduling. workers <= 0 means GOMAXPROCS.
//
// The stream factory must return a fresh, independent stream per call; it is
// invoked concurrently and must be safe for concurrent use (trace.App's
// ShardStream is: each call builds its own generator state).
func StreamShards(app string, shards []int, workers int, stream func(shard int) isa.Stream) []ShardProfile {
	out := make([]ShardProfile, len(shards))
	if len(shards) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers == 1 {
		for k, s := range shards {
			out[k] = Stream(stream(s), app, s)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(shards) {
					return
				}
				out[k] = Stream(stream(shards[k]), app, shards[k])
			}
		}()
	}
	wg.Wait()
	return out
}

// ShardRange returns the shard indices [0, n) — the common "profile a prefix
// of the shard pool" argument to StreamShards.
func ShardRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// MeanCharacteristics averages a set of shard profiles characteristic-wise —
// the "monolithic application profile" the paper contrasts sharding against
// (Section 2.1), also used for the Figure 9 outlier analysis.
func MeanCharacteristics(profiles []ShardProfile) Characteristics {
	var mean Characteristics
	if len(profiles) == 0 {
		return mean
	}
	for _, p := range profiles {
		for i, v := range p.X {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(profiles))
	}
	return mean
}
