package profile

import (
	"math"
	"testing"

	"hsmodel/internal/isa"
	"hsmodel/internal/trace"
)

// mkStream builds a SliceStream from a compact instruction description.
func mkStream(insts []isa.Inst) isa.Stream {
	return &isa.SliceStream{Insts: insts}
}

func TestInstructionMixCounts(t *testing.T) {
	// 10 instructions: 4 IntALU, 2 Load, 1 Store, 1 FPALU, 2 Branch (1 taken).
	insts := []isa.Inst{
		{Class: isa.IntALU}, {Class: isa.IntALU}, {Class: isa.Load, Addr: 0},
		{Class: isa.FPALU}, {Class: isa.Branch, Taken: true},
		{Class: isa.IntALU}, {Class: isa.Store, Addr: 128}, {Class: isa.Load, Addr: 256},
		{Class: isa.IntALU}, {Class: isa.Branch, Taken: false},
	}
	p := Stream(mkStream(insts), "hand", 0)
	if p.Insts != 10 {
		t.Fatalf("insts %d", p.Insts)
	}
	// Counts are per kilo-instruction.
	checks := map[int]float64{
		XControl:       200, // 2 branches / 10 insts
		XTakenBranches: 100,
		XFPALU:         100,
		XIntALU:        400,
		XMemory:        300,
		XFPMulDiv:      0,
		XIntMulDiv:     0,
	}
	for idx, want := range checks {
		if math.Float64bits(p.X[idx]) != math.Float64bits(want) {
			t.Errorf("%s = %v, want %v", Names[idx], p.X[idx], want)
		}
	}
	// Basic block size: 10 insts / 2 control.
	if p.X[XBasicBlock] != 5 {
		t.Errorf("x13 = %v, want 5", p.X[XBasicBlock])
	}
}

func TestDataReuseDistanceExact(t *testing.T) {
	// Accesses to the same 64B block at instruction indices 0, 3, 5:
	// distances 3 and 2, mean 2.5. A different block at index 1 contributes
	// no pair.
	insts := []isa.Inst{
		{Class: isa.Load, Addr: 0},    // block 0 @ 0
		{Class: isa.Load, Addr: 4096}, // block 64 @ 1
		{Class: isa.IntALU},           //
		{Class: isa.Load, Addr: 8},    // block 0 @ 3 -> distance 3
		{Class: isa.IntALU},           //
		{Class: isa.Store, Addr: 63},  // block 0 @ 5 -> distance 2
	}
	p := Stream(mkStream(insts), "hand", 0)
	if got := p.X[XDReuse]; math.Abs(got-2.5) > 1e-12 {
		t.Errorf("x8 = %v, want 2.5", got)
	}
}

func TestInstReuseDistance(t *testing.T) {
	// PC blocks: 0,0,1,0 -> block 0 re-used at distance... indices 0,1,3:
	// pairs (0,1)=1 and (1,3)=2; block 1 no pair. Mean = 1.5.
	insts := []isa.Inst{
		{Class: isa.IntALU, PC: 0},
		{Class: isa.IntALU, PC: 32},
		{Class: isa.IntALU, PC: 64},
		{Class: isa.IntALU, PC: 4},
	}
	p := Stream(mkStream(insts), "hand", 0)
	if got := p.X[XIReuse]; math.Abs(got-1.5) > 1e-12 {
		t.Errorf("x9 = %v, want 1.5", got)
	}
}

func TestSumReuse256(t *testing.T) {
	// 256B blocks: addresses 0 and 192 share block 0; 300 is block 1.
	// Accesses: block0@0, block1@1, block0@2 -> sum of distances = 2.
	insts := []isa.Inst{
		{Class: isa.Load, Addr: 0},
		{Class: isa.Load, Addr: 300},
		{Class: isa.Load, Addr: 192},
	}
	p := Stream(mkStream(insts), "hand", 0)
	if p.SumReuse256 != 2 {
		t.Errorf("sumReuse256 = %v, want 2", p.SumReuse256)
	}
}

func TestProducerConsumerAttribution(t *testing.T) {
	// Producer classes: FPALU at 0, FPMulDiv at 1, IntMulDiv at 2.
	// Consumer at 5 depends on dist 5 (FPALU) and dist 4 (FPMulDiv);
	// consumer at 6 depends on dist 4 (IntMulDiv).
	insts := []isa.Inst{
		{Class: isa.FPALU},
		{Class: isa.FPMulDiv},
		{Class: isa.IntMulDiv},
		{Class: isa.IntALU},
		{Class: isa.IntALU},
		{Class: isa.FPALU, Dep1: 5, Dep2: 4},
		{Class: isa.IntALU, Dep1: 4},
	}
	p := Stream(mkStream(insts), "hand", 0)
	if p.X[XFPALUDist] != 5 {
		t.Errorf("x10 = %v, want 5", p.X[XFPALUDist])
	}
	if p.X[XFPMulDist] != 4 {
		t.Errorf("x11 = %v, want 4", p.X[XFPMulDist])
	}
	if p.X[XIntMulDist] != 4 {
		t.Errorf("x12 = %v, want 4", p.X[XIntMulDist])
	}
}

func TestDepBeyondStreamStartIgnored(t *testing.T) {
	insts := []isa.Inst{
		{Class: isa.IntALU, Dep1: 5}, // reaches before index 0: ignored
		{Class: isa.IntALU, Dep1: 1},
	}
	p := Stream(mkStream(insts), "hand", 0)
	// Only the second dep (producer class IntALU) is recorded; x10-x12
	// cover FP/IntMul producers, so all must be zero.
	if p.X[XFPALUDist] != 0 || p.X[XFPMulDist] != 0 || p.X[XIntMulDist] != 0 {
		t.Error("out-of-range dependence contaminated ILP characteristics")
	}
}

func TestEmptyProfile(t *testing.T) {
	p := Stream(mkStream(nil), "empty", 3)
	if p.App != "empty" || p.Shard != 3 || p.Insts != 0 {
		t.Errorf("empty profile %+v", p)
	}
	for i, v := range p.X {
		if v != 0 {
			t.Errorf("%s = %v on empty stream", Names[i], v)
		}
	}
}

func TestMeanCharacteristics(t *testing.T) {
	a := ShardProfile{X: Characteristics{2, 4}}
	b := ShardProfile{X: Characteristics{4, 8}}
	m := MeanCharacteristics([]ShardProfile{a, b})
	if m[0] != 3 || m[1] != 6 {
		t.Errorf("mean = %v", m)
	}
	if MeanCharacteristics(nil) != (Characteristics{}) {
		t.Error("empty mean should be zero")
	}
}

func TestProfileIsMicroarchIndependentAndDeterministic(t *testing.T) {
	// Profiling the same shard twice gives identical characteristics: the
	// profile depends only on the instruction stream.
	app := trace.Hmmer()
	p1 := Stream(app.ShardStream(4, 20_000), app.Name, 4)
	p2 := Stream(app.ShardStream(4, 20_000), app.Name, 4)
	if p1.X != p2.X || math.Float64bits(p1.SumReuse256) != math.Float64bits(p2.SumReuse256) {
		t.Error("profiles of identical shards differ")
	}
}

func TestGeneratedWorkloadCharacteristicsSane(t *testing.T) {
	for _, app := range trace.SPEC2006() {
		p := Stream(app.ShardStream(0, 30_000), app.Name, 0)
		var mixSum float64
		for _, idx := range []int{XControl, XFPALU, XFPMulDiv, XIntMulDiv, XIntALU, XMemory} {
			if p.X[idx] < 0 {
				t.Errorf("%s: negative %s", app.Name, Names[idx])
			}
			mixSum += p.X[idx]
		}
		// Mix counts cover every instruction: 1000 per kilo-instruction.
		if math.Abs(mixSum-1000) > 1e-9 {
			t.Errorf("%s: mix sums to %v, want 1000", app.Name, mixSum)
		}
		if p.X[XTakenBranches] > p.X[XControl] {
			t.Errorf("%s: taken branches exceed control ops", app.Name)
		}
		if p.X[XDReuse] <= 0 || p.X[XIReuse] <= 0 {
			t.Errorf("%s: re-use distances must be positive", app.Name)
		}
		if p.X[XBasicBlock] < 2 || p.X[XBasicBlock] > 32 {
			t.Errorf("%s: basic block size %v implausible", app.Name, p.X[XBasicBlock])
		}
	}
}
