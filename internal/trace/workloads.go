package trace

import "fmt"

// This file defines the seven SPEC2006 stand-ins the paper cross-compiled
// for Alpha/gem5 (Section 4.1): astar, bwaves, bzip2, gemsFDTD, hmmer,
// omnetpp, sjeng, plus the -O1/-O3 code-optimization and -v1/-v2/-v3
// input-data variants used in Section 4.4.
//
// Parameters are chosen to reproduce the qualitative workload contrasts the
// paper relies on:
//   - bwaves is the outlier of Figure 9: far more taken branches and
//     floating-point operations, far fewer integer and memory operations
//     than the other six, with a strongly bimodal CPI distribution.
//   - sjeng closely resembles the integer crowd (astar/bzip2/hmmer/omnetpp),
//     so leave-one-out extrapolation works well for it.
//   - omnetpp and astar are pointer-chasers (deep load-to-use dependences,
//     poor locality); hmmer and bzip2 are regular integer codes; gemsFDTD
//     mixes FP streaming with memory-bound phases.

// Mix weight slot indices (match isa.Class order for the first six classes).
const (
	mixIntALU = iota
	mixIntMulDiv
	mixFPALU
	mixFPMulDiv
	mixLoad
	mixStore
)

// Astar returns the astar stand-in: integer path-finding with data-dependent
// branches and pointer-heavy memory behavior.
func Astar() *App {
	search := Phase{
		Name:           "search",
		Mix:            [6]float64{0.38, 0.02, 0.01, 0.00, 0.30, 0.10},
		MeanBB:         5.5,
		TakenBias:      0.55,
		Predictability: 0, // derived
		DepProb1:       0.85, DepProb2: 0.35,
		DepDepth:    [5]float64{2.5, 4, 6, 6, 1.6},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 13,      // 512 KB graph hot set
		ReuseFrac:   0.75, ReuseDepth: 150, StreamFrac: 0.10,
		CodeBlocks: 340, LoopBackProb: 0, // derived LoopSpan: 10,
	}
	expand := Phase{
		Name:           "expand",
		Mix:            [6]float64{0.44, 0.03, 0.01, 0.00, 0.26, 0.12},
		MeanBB:         6.5,
		TakenBias:      0.60,
		Predictability: 0, // derived
		DepProb1:       0.85, DepProb2: 0.30,
		DepDepth:    [5]float64{3.2, 4, 6, 6, 2.2},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 11,
		ReuseFrac:   0.82, ReuseDepth: 50, StreamFrac: 0.08,
		CodeBlocks: 260, LoopBackProb: 0, // derived LoopSpan: 7,
	}
	return &App{Name: "astar", Seed: 0xA57A0001, Segments: []Segment{
		{Phase: search, Insts: 4_000_000},
		{Phase: expand, Insts: 3_000_000},
		{Phase: search, Insts: 5_000_000},
	}}
}

// Bwaves returns the bwaves stand-in: blast-wave CFD — FP-dominant, tight
// vectorizable loops (many taken loop-back branches), streaming memory, and
// two sharply different phases that make its CPI distribution bimodal.
func Bwaves() *App {
	// High-ILP FP streaming phase: runs near CPI 0.5 on mid-range cores.
	stream := Phase{
		Name:           "fp-stream",
		Mix:            [6]float64{0.10, 0.01, 0.38, 0.16, 0.14, 0.06},
		MeanBB:         7.0,
		TakenBias:      0.93, // loop-back dominated
		Predictability: 0,    // derived
		DepProb1:       0.80, DepProb2: 0.45,
		DepDepth:    [5]float64{5, 6, 9, 10, 7},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 16,      // 4 MB field arrays
		ReuseFrac:   0.25, ReuseDepth: 300, StreamFrac: 0.92,
		CodeBlocks: 120, LoopBackProb: 0, // derived LoopSpan: 3,
	}
	// Solver phase: recurrences and long-latency FP divides, near CPI 1.0+.
	solve := Phase{
		Name:           "fp-solve",
		Mix:            [6]float64{0.12, 0.01, 0.34, 0.22, 0.13, 0.05},
		MeanBB:         9.0,
		TakenBias:      0.90,
		Predictability: 0, // derived
		DepProb1:       0.90, DepProb2: 0.55,
		DepDepth:    [5]float64{2, 2.5, 2.2, 2.0, 3},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 16,
		ReuseFrac:   0.45, ReuseDepth: 400, StreamFrac: 0.55,
		CodeBlocks: 150, LoopBackProb: 0, // derived LoopSpan: 4,
	}
	return &App{Name: "bwaves", Seed: 0xB3A7E002, Segments: []Segment{
		{Phase: stream, Insts: 5_000_000},
		{Phase: solve, Insts: 5_000_000},
	}}
}

// Bzip2 returns the bzip2 stand-in: regular integer compression with good
// locality and a modest working set.
func Bzip2() *App {
	compress := Phase{
		Name:           "compress",
		Mix:            [6]float64{0.46, 0.03, 0.00, 0.00, 0.26, 0.11},
		MeanBB:         7.0,
		TakenBias:      0.58,
		Predictability: 0, // derived
		DepProb1:       0.88, DepProb2: 0.40,
		DepDepth:    [5]float64{2.8, 4, 6, 6, 3.0},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 12,      // ~256 KB block sort
		ReuseFrac:   0.82, ReuseDepth: 60, StreamFrac: 0.18,
		CodeBlocks: 180, LoopBackProb: 0, // derived LoopSpan: 5,
	}
	huffman := Phase{
		Name:           "huffman",
		Mix:            [6]float64{0.52, 0.02, 0.00, 0.00, 0.24, 0.08},
		MeanBB:         5.0,
		TakenBias:      0.52,
		Predictability: 0, // derived
		DepProb1:       0.90, DepProb2: 0.42,
		DepDepth:    [5]float64{2.0, 3, 6, 6, 2.4},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 10,
		ReuseFrac:   0.88, ReuseDepth: 30, StreamFrac: 0.10,
		CodeBlocks: 140, LoopBackProb: 0, // derived LoopSpan: 4,
	}
	return &App{Name: "bzip2", Seed: 0xB21B2003, Segments: []Segment{
		{Phase: compress, Insts: 6_000_000},
		{Phase: huffman, Insts: 4_000_000},
	}}
}

// GemsFDTD returns the gemsFDTD stand-in: finite-difference time-domain
// electromagnetics — FP stencil sweeps over a large grid alternating with
// memory-bound update phases.
func GemsFDTD() *App {
	sweep := Phase{
		Name:           "stencil-sweep",
		Mix:            [6]float64{0.16, 0.02, 0.26, 0.10, 0.30, 0.12},
		MeanBB:         11.0,
		TakenBias:      0.85,
		Predictability: 0, // derived
		DepProb1:       0.82, DepProb2: 0.45,
		DepDepth:    [5]float64{4, 5, 6, 6, 5},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 16,      // 4 MB grid
		ReuseFrac:   0.30, ReuseDepth: 400, StreamFrac: 0.80,
		CodeBlocks: 200, LoopBackProb: 0, // derived LoopSpan: 4,
	}
	update := Phase{
		Name:           "field-update",
		Mix:            [6]float64{0.20, 0.02, 0.20, 0.06, 0.34, 0.14},
		MeanBB:         9.0,
		TakenBias:      0.80,
		Predictability: 0, // derived
		DepProb1:       0.80, DepProb2: 0.40,
		DepDepth:    [5]float64{3, 4, 4, 4, 2.2},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 16,
		ReuseFrac:   0.30, ReuseDepth: 600, StreamFrac: 0.65,
		CodeBlocks: 240, LoopBackProb: 0, // derived LoopSpan: 5,
	}
	return &App{Name: "gemsFDTD", Seed: 0x6E350004, Segments: []Segment{
		{Phase: sweep, Insts: 5_000_000},
		{Phase: update, Insts: 4_000_000},
	}}
}

// Hmmer returns the hmmer stand-in: profile hidden-Markov-model search —
// extremely regular integer code, small working set, highly predictable.
func Hmmer() *App {
	viterbi := Phase{
		Name:           "viterbi",
		Mix:            [6]float64{0.50, 0.04, 0.01, 0.00, 0.27, 0.09},
		MeanBB:         9.5,
		TakenBias:      0.75,
		Predictability: 0, // derived
		DepProb1:       0.90, DepProb2: 0.50,
		DepDepth:    [5]float64{3.5, 4.5, 6, 6, 4.0},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 11,      // 128 KB DP matrices
		ReuseFrac:   0.88, ReuseDepth: 45, StreamFrac: 0.12,
		CodeBlocks: 90, LoopBackProb: 0, // derived LoopSpan: 3,
	}
	postproc := Phase{
		Name:           "postprocess",
		Mix:            [6]float64{0.46, 0.03, 0.02, 0.01, 0.28, 0.10},
		MeanBB:         7.5,
		TakenBias:      0.65,
		Predictability: 0, // derived
		DepProb1:       0.85, DepProb2: 0.40,
		DepDepth:    [5]float64{2.6, 4, 5, 5, 2.8},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 11,
		ReuseFrac:   0.85, ReuseDepth: 50, StreamFrac: 0.15,
		CodeBlocks: 130, LoopBackProb: 0, // derived LoopSpan: 4,
	}
	return &App{Name: "hmmer", Seed: 0x43332005, Segments: []Segment{
		{Phase: viterbi, Insts: 7_000_000},
		{Phase: postproc, Insts: 3_000_000},
	}}
}

// Omnetpp returns the omnetpp stand-in: discrete-event network simulation —
// pointer-chasing through a large heap, frequent hard-to-predict branches.
func Omnetpp() *App {
	events := Phase{
		Name:           "event-loop",
		Mix:            [6]float64{0.36, 0.02, 0.01, 0.00, 0.33, 0.11},
		MeanBB:         5.0,
		TakenBias:      0.50,
		Predictability: 0, // derived
		DepProb1:       0.88, DepProb2: 0.35,
		DepDepth:    [5]float64{2.2, 4, 6, 6, 1.4},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 15,      // 2 MB heap
		ReuseFrac:   0.55, ReuseDepth: 350, StreamFrac: 0.05,
		CodeBlocks: 420, LoopBackProb: 0, // derived LoopSpan: 12,
	}
	queues := Phase{
		Name:           "queue-maint",
		Mix:            [6]float64{0.40, 0.02, 0.01, 0.00, 0.30, 0.12},
		MeanBB:         5.8,
		TakenBias:      0.54,
		Predictability: 0, // derived
		DepProb1:       0.86, DepProb2: 0.34,
		DepDepth:    [5]float64{2.5, 4, 6, 6, 1.8},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 13,
		ReuseFrac:   0.65, ReuseDepth: 150, StreamFrac: 0.06,
		CodeBlocks: 360, LoopBackProb: 0, // derived LoopSpan: 9,
	}
	return &App{Name: "omnetpp", Seed: 0x03E77006, Segments: []Segment{
		{Phase: events, Insts: 5_000_000},
		{Phase: queues, Insts: 3_000_000},
		{Phase: events, Insts: 4_000_000},
	}}
}

// Sjeng returns the sjeng stand-in: chess search — branch-rich integer code
// whose behavior sits squarely inside the envelope of the other integer
// applications (the paper's easiest extrapolation target).
func Sjeng() *App {
	search := Phase{
		Name:           "alpha-beta",
		Mix:            [6]float64{0.42, 0.03, 0.00, 0.00, 0.27, 0.10},
		MeanBB:         4.8,
		TakenBias:      0.52,
		Predictability: 0, // derived
		DepProb1:       0.86, DepProb2: 0.36,
		DepDepth:    [5]float64{2.4, 4, 6, 6, 2.0},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 11,      // hash tables
		ReuseFrac:   0.80, ReuseDepth: 80, StreamFrac: 0.05,
		CodeBlocks: 300, LoopBackProb: 0, // derived LoopSpan: 8,
	}
	eval := Phase{
		Name:           "evaluate",
		Mix:            [6]float64{0.48, 0.04, 0.00, 0.00, 0.24, 0.08},
		MeanBB:         5.6,
		TakenBias:      0.56,
		Predictability: 0, // derived
		DepProb1:       0.88, DepProb2: 0.38,
		DepDepth:    [5]float64{2.6, 4, 6, 6, 2.4},
		DepProducer: [5]float64{}, // derived from mix
		WSBlocks:    1 << 10,
		ReuseFrac:   0.85, ReuseDepth: 45, StreamFrac: 0.04,
		CodeBlocks: 250, LoopBackProb: 0, // derived LoopSpan: 6,
	}
	return &App{Name: "sjeng", Seed: 0x53E46007, Segments: []Segment{
		{Phase: search, Insts: 6_000_000},
		{Phase: eval, Insts: 4_000_000},
	}}
}

// SPEC2006 returns the seven applications of the paper's evaluation in a
// stable order.
func SPEC2006() []*App {
	return []*App{Astar(), Bwaves(), Bzip2(), GemsFDTD(), Hmmer(), Omnetpp(), Sjeng()}
}

// ByName returns the stand-in application with the given name, or an error.
func ByName(name string) (*App, error) {
	for _, a := range SPEC2006() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("trace: unknown application %q", name)
}

// Opt identifies a compiler-optimization variant (Section 4.4: "we find the
// choice of back-end compiler optimizations affect performance by up to 60%;
// mean effect is 26%").
type Opt int

// Optimization levels.
const (
	OptBase Opt = iota // the level the base App models (-O2)
	OptO1              // weaker scheduling: shorter dependence distances, more instructions
	OptO3              // aggressive scheduling/unrolling: longer distances, bigger blocks
)

func (o Opt) String() string {
	switch o {
	case OptO1:
		return "O1"
	case OptO3:
		return "O3"
	default:
		return "O2"
	}
}

// WithOpt derives a compiler-optimization variant of app. The transform
// alters the dynamic instruction stream the way a back-end scheduler does:
// dependence distances, basic-block sizes (unrolling), and the ALU-overhead
// share of the mix all move, which in turn shifts both performance and the
// microarchitecture-independent profile.
func WithOpt(app *App, o Opt) *App {
	if o == OptBase {
		return app
	}
	out := &App{Name: fmt.Sprintf("%s-%s", app.Name, o), Seed: app.Seed ^ (0x0137 << uint(o))}
	depScale, bbScale, aluScale := 1.0, 1.0, 1.0
	switch o {
	case OptO1:
		depScale, bbScale, aluScale = 0.50, 0.75, 1.50
	case OptO3:
		depScale, bbScale, aluScale = 1.90, 1.50, 0.70
	}
	for _, seg := range app.Segments {
		p := seg.Phase
		for i := range p.DepDepth {
			p.DepDepth[i] *= depScale
		}
		p.MeanBB *= bbScale
		p.Mix[mixIntALU] *= aluScale
		if o == OptO3 {
			// Unrolling enlarges the hot code footprint and biases loops.
			p.CodeBlocks = p.CodeBlocks * 5 / 4
			p.Predictability = clamp01(p.Predictability + 0.01)
		}
		out.Segments = append(out.Segments, Segment{Phase: p, Insts: seg.Insts})
	}
	return out
}

// Input identifies an input-data variant (new job inputs alter working sets,
// phase balance, and branch behavior without changing the code).
type Input int

// Input data sets.
const (
	InputBase Input = iota // the input the base App models
	InputV1
	InputV2
	InputV3
)

func (in Input) String() string {
	switch in {
	case InputV1:
		return "v1"
	case InputV2:
		return "v2"
	case InputV3:
		return "v3"
	default:
		return "v0"
	}
}

// WithInput derives an input-data variant of app: working sets scale, phase
// durations rebalance, and data-dependent branch bias shifts.
func WithInput(app *App, in Input) *App {
	if in == InputBase {
		return app
	}
	out := &App{Name: fmt.Sprintf("%s-%s", app.Name, in), Seed: app.Seed ^ (0xDA7A << uint(in))}
	wsScale, lenScale, biasShift := 1.0, 1.0, 0.0
	switch in {
	case InputV1:
		wsScale, lenScale, biasShift = 0.5, 0.8, -0.04
	case InputV2:
		wsScale, lenScale, biasShift = 2.0, 1.2, 0.03
	case InputV3:
		wsScale, lenScale, biasShift = 4.0, 1.0, 0.06
	}
	for i, seg := range app.Segments {
		p := seg.Phase
		p.WSBlocks = maxInt(int(float64(p.WSBlocks)*wsScale), 64)
		p.TakenBias = clamp01(p.TakenBias + biasShift)
		p.ReuseDepth *= wsScale
		n := int(float64(seg.Insts) * lenScale)
		if i%2 == 1 {
			// Rebalance: alternate segments move oppositely so the input
			// changes phase proportions, not just total length.
			n = int(float64(seg.Insts) * (2 - lenScale))
		}
		out.Segments = append(out.Segments, Segment{Phase: p, Insts: maxInt(n, 1_000_000)})
	}
	return out
}

// Variants returns the five software variants of Section 4.4 for app:
// -O1, -O3, -v1, -v2, -v3.
func Variants(app *App) []*App {
	return []*App{
		WithOpt(app, OptO1),
		WithOpt(app, OptO3),
		WithInput(app, InputV1),
		WithInput(app, InputV2),
		WithInput(app, InputV3),
	}
}
