// Package trace synthesizes dynamic instruction streams that stand in for
// the paper's Alpha-compiled SPEC2006 binaries running under gem5.
//
// The paper's methodology consumes only (a) microarchitecture-independent
// shard profiles and (b) measured performance, so the substitution
// requirement is behavioral: applications must differ from one another in
// instruction mix, locality, ILP, and control behavior; each application
// must exhibit intra-application phase diversity at shard granularity
// (Section 2.1); and bwaves must be a genuine outlier (Section 4.5).
// Generators are statistical machines with explicit knobs for exactly the
// characteristics in Table 1, driven by deterministic per-shard random
// streams so any shard can be regenerated independently and replayed across
// architectures.
package trace

import (
	"fmt"

	"hsmodel/internal/isa"
	"hsmodel/internal/rng"
)

// BlockBytes is the data/instruction block granularity used for locality
// modeling (64B, matching the paper's x8/x9 characteristics).
const BlockBytes = 64

// InstBytes is the encoded size of one instruction (fixed-width RISC).
const InstBytes = 4

// Phase describes one statistically stationary region of program behavior.
// A phase is deliberately longer than a shard so shards preserve
// intra-application diversity (Section 2.1: "we simply ensure that shards
// are shorter than phases").
type Phase struct {
	Name string

	// Mix gives relative weights for non-control instruction classes,
	// indexed by isa.Class for IntALU, IntMulDiv, FPALU, FPMulDiv, Load,
	// Store. Weights need not sum to 1.
	Mix [6]float64

	// MeanBB is the mean basic-block size in instructions, including the
	// terminating branch (Table 1 x13).
	MeanBB float64

	// TakenBias is the probability that a static branch's bias direction is
	// "taken"; Predictability is the probability a dynamic outcome follows
	// its static bias. Zero derives predictability from bias and block size
	// (see derivePredictability); real workloads' predictability tracks
	// those observable features, which is what lets models trained on
	// Table 1 characteristics account for branch behavior at all.
	TakenBias      float64
	Predictability float64

	// DepProb1 and DepProb2 are the probabilities that an instruction has a
	// first and second register operand produced by an earlier instruction.
	DepProb1, DepProb2 float64

	// DepDepth is, per producer class (IntALU, IntMulDiv, FPALU, FPMulDiv,
	// Load), the mean number of same-class instructions skipped backward
	// when selecting a producer. Larger depth = more ILP (Table 1 x10–x12);
	// the Load slot controls load-to-use pressure (pointer chasing).
	DepDepth [5]float64

	// DepProducer weights the choice of producer class, indexed like
	// DepDepth. A zero array derives weights from the instruction mix
	// (consumers depend on whatever the code actually computes), keeping
	// dependence structure inferable from the Table 1 mix characteristics.
	DepProducer [5]float64

	// WSBlocks is the data working-set size in 64B blocks.
	WSBlocks int
	// ReuseFrac is the probability a memory access re-references a recently
	// used block; ReuseDepth is the mean recency depth of such re-references
	// (in accesses). Together they set temporal locality (Table 1 x8).
	ReuseFrac  float64
	ReuseDepth float64
	// StreamFrac is the probability a non-reuse access comes from a
	// sequential stream walking the working set word by word
	// (bwaves/gemsFDTD style).
	StreamFrac float64
	// HotTheta is the Zipf exponent concentrating non-reuse, non-stream
	// accesses onto hot blocks. Zero selects the global default of 1.35;
	// per-phase overrides would make locality partially unobservable to the
	// Table 1 characteristics, so workloads leave this derived.
	HotTheta float64

	// CodeBlocks is the hot code footprint in 64B instruction blocks;
	// LoopBackProb is the probability a taken branch is a loop-back jump
	// rather than a jump to a Zipf-distributed hot block (Table 1 x9).
	// Zero derives it from TakenBias (loop-dominated code is what produces
	// taken-biased branches in the first place).
	CodeBlocks   int
	LoopBackProb float64
	LoopSpan     int
}

// Segment is one entry of an application's repeating phase timeline.
type Segment struct {
	Phase Phase
	// Insts is the segment length in dynamic instructions.
	Insts int
}

// App is a synthetic application: a named, seeded, repeating timeline of
// phases. The zero value is not useful; construct via the Workloads table or
// literal composition.
type App struct {
	Name     string
	Seed     uint64
	Segments []Segment
}

// TimelineLen returns the total instructions in one pass over the timeline.
func (a *App) TimelineLen() int {
	var n int
	for _, s := range a.Segments {
		n += s.Insts
	}
	return n
}

// PhaseAt returns the phase active at global instruction index idx and the
// index of the segment within the timeline.
func (a *App) PhaseAt(idx int) (Phase, int) {
	tl := a.TimelineLen()
	if tl == 0 {
		panic(fmt.Sprintf("trace: app %q has empty timeline", a.Name))
	}
	pos := idx % tl
	for i, s := range a.Segments {
		if pos < s.Insts {
			return s.Phase, i
		}
		pos -= s.Insts
	}
	return a.Segments[len(a.Segments)-1].Phase, len(a.Segments) - 1
}

// ShardStream returns a deterministic stream of shardLen instructions for
// shard shardIdx. The stream depends only on (App.Seed, shardIdx), so a
// shard profiled once can be replayed bit-identically on every architecture
// (Section 2.2's portability requirement).
func (a *App) ShardStream(shardIdx, shardLen int) isa.Stream {
	start := shardIdx * shardLen
	phase, segIdx := a.PhaseAt(start)
	src := rng.New(a.Seed).Fork(uint64(shardIdx))
	// Transition shards: program phases do not switch on shard boundaries,
	// so some shards straddle two phases. Blending populates the software
	// space between an application's phase clusters, which is exactly the
	// intra-application diversity Section 2.1's sharding is meant to expose.
	if len(a.Segments) > 1 && src.Bool(0.3) {
		other := a.Segments[src.Intn(len(a.Segments))].Phase
		phase = blendPhase(phase, other, 0.5*src.Float64())
	}
	jittered := jitterPhase(phase, src)
	return newGenerator(jittered, src, uint64(a.Seed)<<20+uint64(segIdx), shardLen)
}

// blendPhase linearly interpolates two phases by alpha (0 = pure a).
func blendPhase(a, b Phase, alpha float64) Phase {
	l := func(x, y float64) float64 { return x + alpha*(y-x) }
	out := a
	for i := range out.Mix {
		out.Mix[i] = l(a.Mix[i], b.Mix[i])
	}
	out.MeanBB = l(a.MeanBB, b.MeanBB)
	out.TakenBias = l(a.TakenBias, b.TakenBias)
	out.Predictability = l(a.Predictability, b.Predictability)
	out.DepProb1 = l(a.DepProb1, b.DepProb1)
	out.DepProb2 = l(a.DepProb2, b.DepProb2)
	for i := range out.DepDepth {
		out.DepDepth[i] = l(a.DepDepth[i], b.DepDepth[i])
		out.DepProducer[i] = l(a.DepProducer[i], b.DepProducer[i])
	}
	out.WSBlocks = int(l(float64(a.WSBlocks), float64(b.WSBlocks)))
	out.ReuseFrac = l(a.ReuseFrac, b.ReuseFrac)
	out.ReuseDepth = l(a.ReuseDepth, b.ReuseDepth)
	out.StreamFrac = l(a.StreamFrac, b.StreamFrac)
	out.CodeBlocks = int(l(float64(a.CodeBlocks), float64(b.CodeBlocks)))
	out.LoopBackProb = l(a.LoopBackProb, b.LoopBackProb)
	return out
}

// jitterPhase perturbs phase parameters per shard. Real 10M-instruction
// shards vary substantially around their phase's mean behavior (input
// dependence, allocator state, data-dependent control flow); this sampling
// variance is what lets models infer continuous trends rather than memorize
// per-application clusters.
func jitterPhase(p Phase, src *rng.Source) Phase {
	j := func(x, amp float64) float64 { return x * (1 + amp*(src.Float64()*2-1)) }
	for i := range p.Mix {
		p.Mix[i] = j(p.Mix[i], 0.20)
	}
	p.MeanBB = j(p.MeanBB, 0.15)
	p.TakenBias = clamp01(j(p.TakenBias, 0.06))
	p.ReuseDepth = j(p.ReuseDepth, 0.40)
	p.ReuseFrac = clamp01(j(p.ReuseFrac, 0.15))
	p.StreamFrac = clamp01(j(p.StreamFrac, 0.25))
	for i := range p.DepDepth {
		p.DepDepth[i] = j(p.DepDepth[i], 0.30)
	}
	// Working sets swing by up to 2x in either direction (log-uniform).
	scale := 0.5 * (1 + 3*src.Float64()) // 0.5 .. 2.0
	p.WSBlocks = maxInt(int(float64(p.WSBlocks)*scale), 64)
	p.CodeBlocks = maxInt(int(j(float64(p.CodeBlocks), 0.25)), 16)
	return p
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// recencyRingSize bounds the temporal-reuse window in accesses.
const recencyRingSize = 1 << 12

// wordsPerBlock is the number of 8-byte words per 64B block; streams advance
// word by word so a sequential walk touches each block several times the way
// compiled array code does.
const wordsPerBlock = BlockBytes / 8

// occRingSize bounds the per-class producer lookback in occurrences.
const occRingSize = 64

// generator emits instructions for a single shard.
type generator struct {
	phase   Phase
	src     *rng.Source
	remain  int
	idx     int64 // dynamic instruction index within the shard
	codeOff uint64

	// Control state.
	curBlock  uint64 // current 64B code block index
	pcInBlock uint64 // byte offset within code block
	bbLeft    int    // instructions remaining in current basic block

	// Memory state.
	recency    [recencyRingSize]uint64 // recently accessed data blocks
	recencyLen int
	recencyPos int
	streamWord uint64 // streaming pointer in 8-byte words

	// Producer occurrence rings per producer class.
	occ    [5][occRingSize]int64
	occLen [5]int
	occPos [5]int

	// Cached cumulative mix weights and precomputed samplers.
	mixTotal  float64
	bbGeom    rng.Geom
	reuseGeom rng.Geom
	depGeom   [5]rng.Geom
}

// deriveHiddenKnobs fills every zero-valued generator knob that is not
// directly observable in the Table 1 characteristics from knobs that are.
// With all hidden knobs derived, the thirteen portable characteristics are
// (approximately) sufficient statistics for a shard's timing behavior —
// the property the paper's real workloads have and an adversarially
// configured synthetic workload would not.
func deriveHiddenKnobs(p *Phase) {
	if p.Predictability == 0 {
		p.Predictability = derivePredictability(*p)
	}
	if p.HotTheta == 0 {
		p.HotTheta = 1.35
	}
	if p.LoopBackProb == 0 {
		p.LoopBackProb = 0.25 + 0.55*p.TakenBias
	}
	var total float64
	for _, w := range p.DepProducer {
		total += w
	}
	if total == 0 {
		// Producer classes in proportion to the mix: IntALU, IntMulDiv,
		// FPALU, FPMulDiv, Load.
		p.DepProducer = [5]float64{
			p.Mix[0], p.Mix[1], p.Mix[2], p.Mix[3], p.Mix[4],
		}
	}
}

// derivePredictability models the empirical regularity that loop-dominated
// code (strongly biased branches, large basic blocks) predicts well while
// data-dependent branchy code does not.
func derivePredictability(p Phase) float64 {
	bias := 2*p.TakenBias - 1
	if bias < 0 {
		bias = -bias
	}
	pred := 0.875 + 0.08*bias + 0.006*p.MeanBB
	if pred > 0.99 {
		pred = 0.99
	}
	if pred < 0.80 {
		pred = 0.80
	}
	return pred
}

func newGenerator(p Phase, src *rng.Source, codeSeed uint64, shardLen int) *generator {
	g := &generator{phase: p, src: src, remain: shardLen}
	deriveHiddenKnobs(&g.phase)
	// Distinct applications live in distinct code regions so i-cache
	// behavior differs across apps sharing a simulated machine.
	g.codeOff = (codeSeed % 1024) << 32
	g.curBlock = uint64(src.Intn(maxInt(p.CodeBlocks, 1)))
	g.bbLeft = rng.NewGeom(p.MeanBB).Sample(src)
	g.streamWord = uint64(src.Intn(maxInt(p.WSBlocks, 1))) * wordsPerBlock
	g.bbGeom = rng.NewGeom(p.MeanBB)
	g.reuseGeom = rng.NewGeom(p.ReuseDepth)
	for i, d := range p.DepDepth {
		g.depGeom[i] = rng.NewGeom(d)
	}
	for _, w := range p.Mix {
		g.mixTotal += w
	}
	if g.mixTotal <= 0 {
		panic("trace: phase has zero total mix weight")
	}
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Next implements isa.Stream.
func (g *generator) Next(in *isa.Inst) bool {
	if g.remain <= 0 {
		return false
	}
	g.remain--
	*in = isa.Inst{}
	in.PC = g.codeOff + g.curBlock*BlockBytes + g.pcInBlock

	if g.bbLeft <= 1 {
		g.emitBranch(in)
	} else {
		g.emitBody(in)
	}
	g.advancePC(in)
	g.recordProducer(in.Class)
	g.idx++
	return true
}

// emitBody produces a non-control instruction according to the phase mix.
func (g *generator) emitBody(in *isa.Inst) {
	g.bbLeft--
	u := g.src.Float64() * g.mixTotal
	var acc float64
	cls := isa.IntALU
	for i, w := range g.phase.Mix {
		acc += w
		if u < acc {
			cls = isa.Class(i)
			break
		}
	}
	in.Class = cls
	if cls.IsMemory() {
		in.Addr = g.dataAddress()
	}
	g.assignDeps(in)
}

// emitBranch terminates the current basic block.
func (g *generator) emitBranch(in *isa.Inst) {
	in.Class = isa.Branch
	in.BlockEnd = true
	// Static branch identity: one branch per (code block, slot) pair.
	in.BrID = uint32(g.curBlock*16 + g.pcInBlock/InstBytes)
	bias := staticBias(in.BrID, g.phase.TakenBias)
	follow := g.src.Bool(g.phase.Predictability)
	in.Taken = bias == follow
	g.assignDeps(in)
	g.bbLeft = g.bbGeom.Sample(g.src)
}

// staticBias derives a stable per-branch bias direction from the branch ID.
func staticBias(brID uint32, takenBias float64) bool {
	h := uint64(brID) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return float64(h%1024)/1024 < takenBias
}

// advancePC moves the program counter, following taken branches.
func (g *generator) advancePC(in *isa.Inst) {
	if in.Class == isa.Branch && in.Taken {
		cb := maxInt(g.phase.CodeBlocks, 1)
		if g.src.Bool(g.phase.LoopBackProb) {
			span := uint64(1 + g.src.Intn(maxInt(g.phase.LoopSpan, 1)))
			g.curBlock = (g.curBlock + uint64(cb) - span%uint64(cb)) % uint64(cb)
		} else {
			// Jump into the hot-block distribution.
			g.curBlock = uint64(g.src.Zipf(cb, 1.2) - 1)
		}
		g.pcInBlock = 0
		return
	}
	g.pcInBlock += InstBytes
	if g.pcInBlock >= BlockBytes {
		g.pcInBlock = 0
		g.curBlock = (g.curBlock + 1) % uint64(maxInt(g.phase.CodeBlocks, 1))
	}
}

// dataAddress produces the next data block address under the phase's
// locality model and returns it as a byte address.
func (g *generator) dataAddress() uint64 {
	var block uint64
	ws := maxInt(g.phase.WSBlocks, 1)
	switch {
	case g.recencyLen > 0 && g.src.Bool(g.phase.ReuseFrac):
		// Temporal reuse: revisit a recently touched block at geometric
		// recency depth. This is the direct knob behind Table 1's x8.
		depth := g.reuseGeom.Sample(g.src)
		if depth > g.recencyLen {
			depth = g.recencyLen
		}
		pos := (g.recencyPos - depth + recencyRingSize*2) % recencyRingSize
		block = g.recency[pos]
	case g.src.Bool(g.phase.StreamFrac):
		// Streaming: walk the working set sequentially, one word at a time.
		g.streamWord = (g.streamWord + 1) % (uint64(ws) * wordsPerBlock)
		block = g.streamWord / wordsPerBlock
	default:
		// Hot-data reference: Zipf over the working set.
		block = uint64(g.src.Zipf(ws, g.phase.HotTheta) - 1)
	}
	g.recency[g.recencyPos] = block
	g.recencyPos = (g.recencyPos + 1) % recencyRingSize
	if g.recencyLen < recencyRingSize {
		g.recencyLen++
	}
	return block * BlockBytes
}

// assignDeps attaches producer distances to an instruction.
func (g *generator) assignDeps(in *isa.Inst) {
	if g.src.Bool(g.phase.DepProb1) {
		in.Dep1 = g.pickProducer()
	}
	if g.src.Bool(g.phase.DepProb2) {
		in.Dep2 = g.pickProducer()
	}
}

// pickProducer selects a producer class by weight, then a same-class
// occurrence at geometric depth, returning the dynamic-instruction distance
// (0 when no suitable producer exists yet).
func (g *generator) pickProducer() int32 {
	var total float64
	for i, w := range g.phase.DepProducer {
		if g.occLen[i] > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	u := g.src.Float64() * total
	var acc float64
	cls := -1
	for i, w := range g.phase.DepProducer {
		if g.occLen[i] == 0 {
			continue
		}
		acc += w
		if u < acc {
			cls = i
			break
		}
	}
	if cls < 0 {
		return 0
	}
	depth := g.depGeom[cls].Sample(g.src)
	if depth > g.occLen[cls] {
		depth = g.occLen[cls]
	}
	pos := (g.occPos[cls] - depth + occRingSize*2) % occRingSize
	dist := g.idx - g.occ[cls][pos]
	if dist <= 0 || dist > isa.MaxDepDistance {
		return 0
	}
	return int32(dist)
}

// recordProducer registers the just-emitted instruction as a potential
// producer for later consumers.
func (g *generator) recordProducer(c isa.Class) {
	var slot int
	switch c {
	case isa.IntALU:
		slot = 0
	case isa.IntMulDiv:
		slot = 1
	case isa.FPALU:
		slot = 2
	case isa.FPMulDiv:
		slot = 3
	case isa.Load:
		slot = 4
	default:
		return // stores and branches do not produce register values
	}
	g.occ[slot][g.occPos[slot]] = g.idx
	g.occPos[slot] = (g.occPos[slot] + 1) % occRingSize
	if g.occLen[slot] < occRingSize {
		g.occLen[slot]++
	}
}
