package trace

import (
	"math"
	"testing"

	"hsmodel/internal/isa"
)

func TestAllShardsDeterministicIncludingBlends(t *testing.T) {
	// Transition (blended) shards must be exactly as reproducible as pure
	// ones: the blend decision and alpha come from the per-shard stream.
	for _, app := range SPEC2006() {
		for shard := 0; shard < 12; shard++ {
			a := isa.Collect(app.ShardStream(shard, 3000), 0)
			b := isa.Collect(app.ShardStream(shard, 3000), 0)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s shard %d: instruction %d differs", app.Name, shard, i)
				}
			}
		}
	}
}

func TestBlendPhaseInterpolates(t *testing.T) {
	a := Phase{Mix: [6]float64{1, 0, 0, 0, 0, 0}, MeanBB: 4, WSBlocks: 1000, ReuseDepth: 10}
	b := Phase{Mix: [6]float64{0, 0, 1, 0, 0, 0}, MeanBB: 8, WSBlocks: 3000, ReuseDepth: 30}
	mid := blendPhase(a, b, 0.5)
	if mid.Mix[0] != 0.5 || mid.Mix[2] != 0.5 {
		t.Errorf("mix not interpolated: %v", mid.Mix)
	}
	if mid.MeanBB != 6 || mid.WSBlocks != 2000 || mid.ReuseDepth != 20 {
		t.Errorf("scalars not interpolated: bb=%v ws=%v rd=%v",
			mid.MeanBB, mid.WSBlocks, mid.ReuseDepth)
	}
	// Alpha 0 is the identity on blended fields.
	same := blendPhase(a, b, 0)
	if math.Float64bits(same.MeanBB) != math.Float64bits(a.MeanBB) || same.Mix != a.Mix {
		t.Error("alpha 0 should reproduce phase a")
	}
}

func TestDeriveHiddenKnobs(t *testing.T) {
	p := Phase{
		Mix:       [6]float64{0.4, 0.1, 0.2, 0.1, 0.15, 0.05},
		MeanBB:    8,
		TakenBias: 0.9,
	}
	deriveHiddenKnobs(&p)
	if p.Predictability <= 0.8 || p.Predictability > 0.99 {
		t.Errorf("derived predictability %v out of range", p.Predictability)
	}
	if p.HotTheta != 1.35 {
		t.Errorf("derived HotTheta %v", p.HotTheta)
	}
	if p.LoopBackProb <= 0.25 || p.LoopBackProb >= 1 {
		t.Errorf("derived LoopBackProb %v", p.LoopBackProb)
	}
	// Producer weights follow the mix.
	if math.Float64bits(p.DepProducer[0]) != math.Float64bits(p.Mix[0]) || math.Float64bits(p.DepProducer[4]) != math.Float64bits(p.Mix[4]) {
		t.Errorf("derived producers %v do not track mix %v", p.DepProducer, p.Mix)
	}
	// Explicit values are honored.
	q := Phase{Mix: [6]float64{1, 0, 0, 0, 0, 0}, Predictability: 0.5, TakenBias: 0.5, MeanBB: 4}
	deriveHiddenKnobs(&q)
	if q.Predictability != 0.5 {
		t.Error("explicit predictability overridden")
	}
	// Biased loops predict better than balanced branches.
	loopy := derivePredictability(Phase{TakenBias: 0.95, MeanBB: 10})
	branchy := derivePredictability(Phase{TakenBias: 0.5, MeanBB: 4})
	if loopy <= branchy {
		t.Errorf("loopy code predictability %v should exceed branchy %v", loopy, branchy)
	}
}
