package trace

import (
	"math"
	"testing"

	"hsmodel/internal/isa"
)

func TestShardStreamDeterminism(t *testing.T) {
	app := Astar()
	a := isa.Collect(app.ShardStream(3, 5000), 0)
	b := isa.Collect(app.ShardStream(3, 5000), 0)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("shard lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs between identical shard streams", i)
		}
	}
}

func TestShardsDiffer(t *testing.T) {
	app := Bzip2()
	a := isa.Collect(app.ShardStream(0, 2000), 0)
	b := isa.Collect(app.ShardStream(1, 2000), 0)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different shards produced identical streams")
	}
}

// classFractions counts per-class shares of a stream.
func classFractions(insts []isa.Inst) [isa.NumClasses]float64 {
	var counts [isa.NumClasses]float64
	for i := range insts {
		counts[insts[i].Class]++
	}
	for i := range counts {
		counts[i] /= float64(len(insts))
	}
	return counts
}

func TestMixMatchesPhaseWeights(t *testing.T) {
	app := Hmmer()
	insts := isa.Collect(app.ShardStream(0, 100_000), 0)
	frac := classFractions(insts)
	ph := app.Segments[0].Phase

	// Branch share should be ~1/MeanBB.
	wantBranch := 1 / ph.MeanBB
	if math.Abs(frac[isa.Branch]-wantBranch)/wantBranch > 0.15 {
		t.Errorf("branch fraction %v, want ~%v", frac[isa.Branch], wantBranch)
	}
	// Non-branch classes should be proportional to mix weights.
	var mixTotal float64
	for _, w := range ph.Mix {
		mixTotal += w
	}
	nonBranch := 1 - frac[isa.Branch]
	for c := 0; c < 6; c++ {
		want := ph.Mix[c] / mixTotal * nonBranch
		if want < 0.02 {
			continue // tiny classes are noisy
		}
		if math.Abs(frac[c]-want)/want > 0.2 {
			t.Errorf("class %v fraction %v, want ~%v", isa.Class(c), frac[c], want)
		}
	}
}

func TestBasicBlockStructure(t *testing.T) {
	app := Sjeng()
	insts := isa.Collect(app.ShardStream(2, 50_000), 0)
	// Every BlockEnd instruction must be a branch and vice versa.
	branches := 0
	for i := range insts {
		isBr := insts[i].Class == isa.Branch
		if isBr != insts[i].BlockEnd {
			t.Fatalf("inst %d: branch=%v blockEnd=%v", i, isBr, insts[i].BlockEnd)
		}
		if isBr {
			branches++
		}
	}
	meanBB := float64(len(insts)) / float64(branches)
	want := app.Segments[0].Phase.MeanBB
	if math.Abs(meanBB-want)/want > 0.2 {
		t.Errorf("mean basic block %v, want ~%v", meanBB, want)
	}
}

func TestDependenceDistancesValid(t *testing.T) {
	app := Omnetpp()
	insts := isa.Collect(app.ShardStream(1, 30_000), 0)
	for i := range insts {
		for _, d := range []int32{insts[i].Dep1, insts[i].Dep2} {
			if d < 0 || d > isa.MaxDepDistance {
				t.Fatalf("inst %d: dep distance %d out of range", i, d)
			}
			if int(d) > i {
				t.Fatalf("inst %d: dep distance %d reaches before stream start", i, d)
			}
		}
	}
}

func TestMemoryAddressesOnlyOnMemoryOps(t *testing.T) {
	app := GemsFDTD()
	insts := isa.Collect(app.ShardStream(0, 20_000), 0)
	memOps := 0
	for i := range insts {
		if insts[i].Class.IsMemory() {
			memOps++
		} else if insts[i].Addr != 0 {
			t.Fatalf("non-memory inst %d has address %x", i, insts[i].Addr)
		}
	}
	if memOps == 0 {
		t.Fatal("no memory operations generated")
	}
}

func TestPhaseAtAndTimeline(t *testing.T) {
	app := Bwaves()
	tl := app.TimelineLen()
	if tl != 10_000_000 {
		t.Fatalf("timeline length %d", tl)
	}
	p0, seg0 := app.PhaseAt(0)
	if p0.Name != "fp-stream" || seg0 != 0 {
		t.Fatalf("PhaseAt(0) = %s/%d", p0.Name, seg0)
	}
	p1, seg1 := app.PhaseAt(6_000_000)
	if p1.Name != "fp-solve" || seg1 != 1 {
		t.Fatalf("PhaseAt(6M) = %s/%d", p1.Name, seg1)
	}
	// Timeline wraps.
	pw, _ := app.PhaseAt(tl + 1)
	if pw.Name != "fp-stream" {
		t.Fatalf("PhaseAt wrap = %s", pw.Name)
	}
}

func TestSPEC2006RosterAndByName(t *testing.T) {
	apps := SPEC2006()
	if len(apps) != 7 {
		t.Fatalf("%d applications, want 7", len(apps))
	}
	want := []string{"astar", "bwaves", "bzip2", "gemsFDTD", "hmmer", "omnetpp", "sjeng"}
	for i, a := range apps {
		if a.Name != want[i] {
			t.Errorf("app %d = %s, want %s", i, a.Name, want[i])
		}
		if a.TimelineLen() == 0 {
			t.Errorf("%s has empty timeline", a.Name)
		}
	}
	if _, err := ByName("bwaves"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName should fail for unknown application")
	}
}

func TestVariantsChangeBehavior(t *testing.T) {
	base := Bzip2()
	o3 := WithOpt(base, OptO3)
	if o3.Name != "bzip2-O3" {
		t.Fatalf("variant name %s", o3.Name)
	}
	if o3.Seed == base.Seed {
		t.Error("variant must reseed")
	}
	// O3 lengthens dependence distances and basic blocks.
	baseDeps := meanDepDistance(isa.Collect(base.ShardStream(0, 40_000), 0))
	o3Deps := meanDepDistance(isa.Collect(o3.ShardStream(0, 40_000), 0))
	if o3Deps <= baseDeps {
		t.Errorf("O3 dep distance %v should exceed base %v", o3Deps, baseDeps)
	}
	o1 := WithOpt(base, OptO1)
	o1Deps := meanDepDistance(isa.Collect(o1.ShardStream(0, 40_000), 0))
	if o1Deps >= baseDeps {
		t.Errorf("O1 dep distance %v should be below base %v", o1Deps, baseDeps)
	}
	// WithOpt(OptBase) is the identity.
	if WithOpt(base, OptBase) != base {
		t.Error("OptBase should return the app unchanged")
	}
}

func meanDepDistance(insts []isa.Inst) float64 {
	var sum float64
	var n int
	for i := range insts {
		if insts[i].Dep1 > 0 {
			sum += float64(insts[i].Dep1)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestInputVariantsScaleWorkingSet(t *testing.T) {
	base := Omnetpp()
	v3 := WithInput(base, InputV3)
	if v3.Name != "omnetpp-v3" {
		t.Fatalf("variant name %s", v3.Name)
	}
	for i := range v3.Segments {
		if v3.Segments[i].Phase.WSBlocks <= base.Segments[i].Phase.WSBlocks {
			t.Errorf("segment %d: v3 working set should grow", i)
		}
	}
	v1 := WithInput(base, InputV1)
	for i := range v1.Segments {
		if v1.Segments[i].Phase.WSBlocks >= base.Segments[i].Phase.WSBlocks {
			t.Errorf("segment %d: v1 working set should shrink", i)
		}
	}
	if len(Variants(base)) != 5 {
		t.Error("Variants should return the five Section 4.4 variants")
	}
}

func TestBwavesIsFPOutlier(t *testing.T) {
	// The Figure 9 contrast: bwaves has far more FP and taken branches,
	// fewer int/memory ops, than sjeng.
	bw := classFractions(isa.Collect(Bwaves().ShardStream(0, 50_000), 0))
	sj := classFractions(isa.Collect(Sjeng().ShardStream(0, 50_000), 0))
	fpBW := bw[isa.FPALU] + bw[isa.FPMulDiv]
	fpSJ := sj[isa.FPALU] + sj[isa.FPMulDiv]
	if fpBW < 10*fpSJ {
		t.Errorf("bwaves FP share %v should dwarf sjeng's %v", fpBW, fpSJ)
	}
	memBW := bw[isa.Load] + bw[isa.Store]
	memSJ := sj[isa.Load] + sj[isa.Store]
	if memBW >= memSJ {
		t.Errorf("bwaves memory share %v should be below sjeng's %v", memBW, memSJ)
	}
}
