// Tests for the multi-model surface of the server: the v2 route family, its
// parity with the v1 aliases, manifest persistence, and the registry metrics.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hsmodel/pkg/hsmodel"
)

// doJSON runs one request with an arbitrary method and decodes nothing.
func doJSON(t testing.TB, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestV1V2Parity pins the aliasing contract: the model-addressed
// /v2/models/default routes answer bit-identical predictions to the legacy
// /v1 routes, and the v1 bodies are byte-identical to the wire schema's
// canonical encoding (no new field may leak into them).
func TestV1V2Parity(t *testing.T) {
	tr := newTestTrainer(t)
	_, ts := newTestServer(t, Config{Trainer: tr})
	_, valid := testData(t)

	for i, v := range valid[:8] {
		hw := v.HW
		req := hsmodel.PredictRequest{X: v.X[:], Config: &hw}
		resp1, body1 := postJSON(t, ts.URL+"/v1/predict", req)
		resp2, body2 := postJSON(t, ts.URL+"/v2/models/default/predict", req)
		if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
			t.Fatalf("sample %d: status v1 %d, v2 %d", i, resp1.StatusCode, resp2.StatusCode)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("sample %d: v1 body %s != v2 body %s", i, body1, body2)
		}
		var pr hsmodel.PredictResponse
		if err := json.Unmarshal(body1, &pr); err != nil {
			t.Fatal(err)
		}
		want, err := tr.Snapshot().PredictShard(v.X, v.HW)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(pr.CPI) != math.Float64bits(want) {
			t.Fatalf("sample %d: served %v, snapshot %v", i, pr.CPI, want)
		}

		// v1 bodies are the canonical wire encoding: exactly what a
		// single-model server emitted before the registry existed.
		canon, err := json.Marshal(hsmodel.PredictResponse{CPI: want, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if string(body1) != string(canon)+"\n" {
			t.Fatalf("sample %d: v1 body %q is not the canonical encoding %q", i, body1, canon)
		}
	}

	// Batch parity.
	var batch hsmodel.BatchPredictRequest
	for _, v := range valid[:8] {
		hw := v.HW
		batch.Requests = append(batch.Requests, hsmodel.PredictRequest{X: v.X[:], Config: &hw})
	}
	_, b1 := postJSON(t, ts.URL+"/v1/predict:batch", batch)
	_, b2 := postJSON(t, ts.URL+"/v2/models/default/predict:batch", batch)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("batch bodies differ: %s vs %s", b1, b2)
	}

	// Model info parity: v2 additionally stamps the address fields, and ONLY
	// those.
	_, m1 := getBody(t, ts.URL+"/v1/model")
	_, m2 := getBody(t, ts.URL+"/v2/models/default/model")
	var i1, i2 hsmodel.ModelInfo
	if err := json.Unmarshal(m1, &i1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(m2, &i2); err != nil {
		t.Fatal(err)
	}
	if i1.Model != "" || i1.Application != "" || i1.ArchSpace != "" {
		t.Fatalf("v1 model body leaked address fields: %s", m1)
	}
	if i2.Model != "default" || i2.ArchSpace == "" {
		t.Fatalf("v2 model body missing address fields: %s", m2)
	}
	i2.Model, i2.Application, i2.ArchSpace = "", "", ""
	i1.SnapshotAgeSec, i2.SnapshotAgeSec = 0, 0 // scrape-time jitter
	j1, _ := json.Marshal(i1)
	j2, _ := json.Marshal(i2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("model info differs beyond the address fields:\nv1 %s\nv2 %s", j1, j2)
	}
}

// TestV1DeprecationHeaders: every v1 answer carries the successor pointer;
// the body stays untouched (covered by TestV1V2Parity).
func TestV1DeprecationHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := getBody(t, ts.URL+"/v1/model")
	if got := resp.Header.Get("Deprecation"); got != `version="v1"` {
		t.Fatalf("Deprecation header %q", got)
	}
	if got := resp.Header.Get("Link"); !strings.Contains(got, "/v2/models/default") {
		t.Fatalf("Link header %q does not name the successor route", got)
	}
	resp2, _ := getBody(t, ts.URL+"/v2/models/default/model")
	if resp2.Header.Get("Deprecation") != "" {
		t.Fatal("v2 route carries a deprecation header")
	}
}

// TestV1SamplesFanOut: one POST /v1/samples advances every matching entry.
func TestV1SamplesFanOut(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, req := range []hsmodel.RegisterRequest{
		{ID: "m-bzip2", Application: "bzip2"},
		{ID: "m-all"},
	} {
		if resp, body := postJSON(t, ts.URL+"/v2/models", req); resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %q: status %d: %s", req.ID, resp.StatusCode, body)
		}
	}
	_, valid := testData(t)
	var sreq hsmodel.SamplesRequest
	perApp := map[string]int{}
	for _, v := range valid {
		sreq.Samples = append(sreq.Samples, hsmodel.SampleToWire(v))
		perApp[v.App]++
	}
	resp, body := postJSON(t, ts.URL+"/v1/samples", sreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("samples: status %d: %s", resp.StatusCode, body)
	}
	var sr hsmodel.SamplesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Accepted != len(valid) {
		t.Fatalf("accepted %d, want %d", sr.Accepted, len(valid))
	}
	if sr.Models != nil {
		t.Fatalf("v1 samples body leaked the fan-out listing: %s", body)
	}
	base := len(trainStore) // the default entry's bootstrap store
	for id, want := range map[string]int{
		"default": base + len(valid),
		"m-bzip2": perApp["bzip2"],
		"m-all":   len(valid),
	} {
		e, ok := s.Registry().Get(id)
		if !ok {
			t.Fatalf("entry %q missing", id)
		}
		if got := e.Trainer().NumSamples(); got != want {
			t.Fatalf("entry %q: %d samples, want %d", id, got, want)
		}
	}

	// The addressed route feeds only its entry; fan_out restores the v1
	// semantics and lists the touched models.
	one := hsmodel.SamplesRequest{Samples: sreq.Samples[:1], FanOut: true}
	resp, body = postJSON(t, ts.URL+"/v2/models/m-bzip2/samples", one)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 samples: status %d: %s", resp.StatusCode, body)
	}
	var sr2 hsmodel.SamplesResponse
	if err := json.Unmarshal(body, &sr2); err != nil {
		t.Fatal(err)
	}
	if len(sr2.Models) == 0 {
		t.Fatalf("fan_out response listed no models: %s", body)
	}
}

// TestRegisterUnregisterHTTP drives the fleet over the wire and asserts the
// manifest file tracks it.
func TestRegisterUnregisterHTTP(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "fleet.json")
	_, ts := newTestServer(t, Config{ManifestPath: manifest})

	// Reserved and malformed registrations are refused.
	if resp, _ := postJSON(t, ts.URL+"/v2/models", hsmodel.RegisterRequest{ID: "default"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("registering the reserved id: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v2/models", hsmodel.RegisterRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("registering an empty id: status %d", resp.StatusCode)
	}

	reg := hsmodel.RegisterRequest{ID: "m-live", Application: "bzip2", Seed: 5}
	resp, body := postJSON(t, ts.URL+"/v2/models", reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var st hsmodel.ModelStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "m-live" || st.Application != "bzip2" || st.Trained {
		t.Fatalf("register status %+v", st)
	}
	if resp, _ := postJSON(t, ts.URL+"/v2/models", reg); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", resp.StatusCode)
	}

	// The manifest persisted the entry (default excluded).
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var man hsmodel.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.Models) != 1 || man.Models[0].ID != "m-live" {
		t.Fatalf("manifest %s", data)
	}

	// Listing shows both entries and names the default.
	_, body = getBody(t, ts.URL+"/v2/models")
	var listing hsmodel.RegistryStatus
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Models) != 2 || listing.Default != "default" {
		t.Fatalf("listing %s", body)
	}

	// Unregister drains and the manifest empties; the default is protected.
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v2/models/default", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unregistering the default: status %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v2/models/m-live", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unregister: status %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v2/models/m-live", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unregister: status %d", resp.StatusCode)
	}
	data, err = os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	man = hsmodel.Manifest{}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.Models) != 0 {
		t.Fatalf("manifest after unregister: %s", data)
	}
}

// TestManifestBoot: a server constructed over a manifest registers its
// entries; a manifest naming the reserved entry refuses to boot.
func TestManifestBoot(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "fleet.json")
	man := hsmodel.Manifest{Models: []hsmodel.RegisterRequest{
		{ID: "m-a", Application: "bzip2"},
		{ID: "m-b"},
	}}
	data, _ := json.Marshal(man)
	if err := os.WriteFile(manifest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, Config{ManifestPath: manifest})
	if got := s.Registry().Len(); got != 3 {
		t.Fatalf("booted with %d entries, want 3", got)
	}

	bad := filepath.Join(dir, "bad.json")
	data, _ = json.Marshal(hsmodel.Manifest{Models: []hsmodel.RegisterRequest{{ID: "default"}}})
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Trainer: newTestTrainer(t), ManifestPath: bad}); err == nil {
		t.Fatal("manifest naming the reserved entry booted")
	}
}

// TestV2UnknownModel: addressing a model that does not exist answers 404
// with the wire error body.
func TestV2UnknownModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v2/models/nonesuch/model")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er hsmodel.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("error body %s (%v)", body, err)
	}
}

// TestRegistryMetricsPage: the scrape carries the registry-wide and
// per-model series.
func TestRegistryMetricsPage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v2/models", hsmodel.RegisterRequest{ID: "m-x", Application: "bzip2"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	_, _ = getBody(t, ts.URL+"/v2/models/m-x/model")
	_, page := getBody(t, ts.URL+"/metrics")
	for _, marker := range []string{
		"hsserve_registry_models 2",
		`hsserve_registry_model_trained{model="default"} 1`,
		`hsserve_registry_model_trained{model="m-x"} 0`,
		fmt.Sprintf(`hsserve_registry_model_samples{model="default"} %d`, len(trainStore)),
		`hsserve_registry_queue_depth 0`,
		`hsserve_model_requests_total{model="m-x",endpoint="v2_model",code="200"} 1`,
	} {
		if !strings.Contains(string(page), marker) {
			t.Fatalf("metrics page missing %q", marker)
		}
	}
}
