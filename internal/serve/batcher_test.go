package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/core"
)

// TestBatcherRespectsMaxBatch floods the queue before the worker can drain
// it and checks no flush exceeds the cap while everything is answered.
func TestBatcherRespectsMaxBatch(t *testing.T) {
	tr := newTestTrainer(t)
	_, valid := testData(t)

	var sizes []int
	var mu sync.Mutex
	b := newBatcher(batcherConfig{
		shards:     1,
		maxBatch:   4,
		maxWait:    5 * time.Millisecond,
		queueDepth: 64,
		snap:       tr.Snapshot,
		observe: func(n int) {
			mu.Lock()
			sizes = append(sizes, n)
			mu.Unlock()
		},
	})
	defer b.Close()

	const n = 40
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := valid[i%len(valid)]
			if cpi, err := b.predict(context.Background(), v.X, v.HW); err != nil || cpi <= 0 {
				t.Errorf("predict %d: cpi=%v err=%v", i, cpi, err)
			} else {
				ok.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if ok.Load() != n {
		t.Fatalf("answered %d of %d", ok.Load(), n)
	}
	mu.Lock()
	defer mu.Unlock()
	var total int
	for _, s := range sizes {
		if s > 4 {
			t.Errorf("flush of %d exceeds maxBatch 4", s)
		}
		total += s
	}
	if total != n {
		t.Errorf("flushed %d predictions, want %d", total, n)
	}
}

// TestBatcherContextCancel: a caller that gives up on a queued job must not
// hang the worker or leak the result.
func TestBatcherContextCancel(t *testing.T) {
	tr := newTestTrainer(t)
	_, valid := testData(t)
	b := newBatcher(batcherConfig{maxBatch: 8, maxWait: time.Millisecond, queueDepth: 8, snap: tr.Snapshot})
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.predict(ctx, valid[0].X, valid[0].HW); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The batcher still works for live callers afterwards.
	if cpi, err := b.predict(context.Background(), valid[0].X, valid[0].HW); err != nil || cpi <= 0 {
		t.Fatalf("post-cancel predict: cpi=%v err=%v", cpi, err)
	}
}

// TestBatcherUntrained propagates ErrNotTrained per job.
func TestBatcherUntrained(t *testing.T) {
	tr := core.NewTrainer(nil)
	_, valid := testData(t)
	b := newBatcher(batcherConfig{maxBatch: 8, maxWait: time.Millisecond, queueDepth: 8, snap: tr.Snapshot})
	defer b.Close()
	if _, err := b.predict(context.Background(), valid[0].X, valid[0].HW); !errors.Is(err, core.ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

// TestBatcherDoubleClose must be idempotent.
func TestBatcherDoubleClose(t *testing.T) {
	tr := core.NewTrainer(nil)
	b := newBatcher(batcherConfig{maxBatch: 8, maxWait: time.Millisecond, queueDepth: 8, snap: tr.Snapshot})
	b.Close()
	b.Close()
}
