// Request coalescing: concurrent predictions are gathered off bounded queues
// into batched passes over the served snapshot (Concorde-style
// micro-batching, arXiv:2503.23076). The batcher is sharded per CPU: N
// workers drain N independent bounded queues, submitters pick a shard by a
// cheap round-robin counter and work-steal onto a sibling queue before
// shedding, and jobs (with their done channels) are pooled so a steady-state
// prediction allocates nothing. Each flush loads the snapshot exactly once
// and answers the whole batch through Snapshot.PredictBatch, so every
// prediction in a batch is answered by the same model version and is
// bit-identical to a direct Snapshot.PredictShard call — the batcher only
// amortizes queueing, allocation, and snapshot loads, it never changes the
// arithmetic.
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
)

// ErrClosed is returned to predictions submitted after shutdown began.
var ErrClosed = errors.New("serve: server is shutting down")

// ErrOverloaded is returned when every shard's queue is full: the server
// sheds the request immediately (HTTP 429 upstream) instead of stacking
// blocked submitters behind workers that are already saturated.
var ErrOverloaded = errors.New("serve: prediction queue full")

// predictJob is one submission: either a single shard prediction (using the
// inline one-element storage, so the pooled job is self-contained) or a whole
// client batch sharing one queue round trip. The worker fills out[i] for
// every item, sets err, and signals done exactly once; done is buffered so an
// abandoned (ctx-cancelled) job never blocks the worker.
type predictJob struct {
	xs  []profile.Characteristics
	hws []hwspace.Config
	out []float64
	err error

	done chan struct{} // buffered(1), reused across pool recycles

	// Inline storage backing single-prediction jobs.
	x1  [1]profile.Characteristics
	hw1 [1]hwspace.Config
	o1  [1]float64
}

// batcherConfig carries the construction parameters of a batcher.
type batcherConfig struct {
	// shards is the number of independent queue+worker pairs (default 1).
	shards int
	// maxBatch caps the jobs gathered into one flush (default 32).
	maxBatch int
	// maxWait is the gather window after the first job of a flush arrives
	// (default 2ms).
	maxWait time.Duration
	// queueDepth bounds each shard's queue (default 4*maxBatch).
	queueDepth int
	// snap loads the served snapshot (required).
	snap func() *core.Snapshot
	// observe, when non-nil, receives each flush's item count.
	observe func(batchSize int)
	// onShed, when non-nil, fires once per shed submission.
	onShed func()
}

func (c batcherConfig) withDefaults() batcherConfig {
	if c.shards <= 0 {
		c.shards = 1
	}
	if c.maxBatch <= 0 {
		c.maxBatch = 32
	}
	if c.maxWait <= 0 {
		c.maxWait = 2 * time.Millisecond
	}
	if c.queueDepth <= 0 {
		c.queueDepth = 4 * c.maxBatch
	}
	return c
}

// batcher owns the sharded queues and their gather/flush workers.
//
// Shutdown protocol (the "lose zero in-flight requests" guarantee), applied
// independently per shard: Close marks every shard closed so new predictions
// are rejected with ErrClosed, waits for submitters already past the
// closed-check to finish enqueueing, then closes each queue; every worker
// drains every queued job — each gets a real prediction — before exiting.
type batcher struct {
	cfg    batcherConfig
	shards []*batchShard
	rr     atomic.Uint64 // round-robin shard pick
	jobs   sync.Pool     // *predictJob
}

// batchShard is one queue + worker pair with its own drain accounting and
// worker-owned flush buffers (touched only by the worker goroutine).
type batchShard struct {
	b     *batcher
	queue chan *predictJob

	mu          sync.Mutex
	closed      bool
	inflight    int  // submitters between the closed-check and the enqueue
	queueClosed bool // the queue channel has been closed

	workerDone chan struct{}

	// Flush state, preallocated to the shard's high-water marks.
	batch  []*predictJob // gathered jobs, cap maxBatch
	nbatch int
	rowBuf []float64       // contiguous backing for rows
	rows   [][]float64     // chunk of expanded raw rows
	out    []float64       // chunk predictions
	dstJob []*predictJob   // chunk scatter targets
	dstIdx []int           // item index within the target job
	timer  *time.Timer     // gather-window timer, reused across flushes
}

// flushChunk is the row-buffer capacity of one sweep: large enough that a
// flush of single-prediction jobs is answered in one PredictBatch call, and
// a flush of client batches sweeps in well-amortized pieces.
const minFlushChunk = 128

func newBatcher(cfg batcherConfig) *batcher {
	cfg = cfg.withDefaults()
	b := &batcher{cfg: cfg, shards: make([]*batchShard, cfg.shards)}
	chunk := cfg.maxBatch
	if chunk < minFlushChunk {
		chunk = minFlushChunk
	}
	for i := range b.shards {
		sh := &batchShard{
			b:          b,
			queue:      make(chan *predictJob, cfg.queueDepth),
			workerDone: make(chan struct{}),
			batch:      make([]*predictJob, cfg.maxBatch),
			rowBuf:     make([]float64, chunk*core.NumVars),
			rows:       make([][]float64, chunk),
			out:        make([]float64, chunk),
			dstJob:     make([]*predictJob, chunk),
			dstIdx:     make([]int, chunk),
		}
		for r := range sh.rows {
			sh.rows[r] = sh.rowBuf[r*core.NumVars : (r+1)*core.NumVars]
		}
		b.shards[i] = sh
		go sh.run()
	}
	return b
}

// getJob takes a pooled job (allocating only while the pool warms up).
func (b *batcher) getJob() *predictJob {
	if j, ok := b.jobs.Get().(*predictJob); ok {
		return j
	}
	return &predictJob{done: make(chan struct{}, 1)}
}

// putJob recycles an answered job. Only jobs whose done signal has been
// received may be recycled: a ctx-cancelled submitter abandons its job to the
// GC instead, because the worker may still be writing to it.
func (b *batcher) putJob(j *predictJob) {
	j.xs, j.hws, j.out, j.err = nil, nil, nil, nil
	b.jobs.Put(j)
}

// predict submits one shard prediction and waits for its result. A request
// that was accepted into a queue always receives a result (even during
// shutdown); ctx cancellation abandons the wait but the buffered done channel
// means the worker never blocks on an abandoned job. When every shard's queue
// is full the request is shed with ErrOverloaded instead of blocking: under
// overload the queues are a pressure gauge, not a waiting room.
func (b *batcher) predict(ctx context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	job := b.getJob()
	job.x1[0], job.hw1[0] = x, hw
	job.xs, job.hws, job.out = job.x1[:1], job.hw1[:1], job.o1[:1]
	if err := b.submit(job); err != nil {
		return 0, err
	}
	select {
	case <-job.done:
		cpi, err := job.o1[0], job.err
		b.putJob(job)
		return cpi, err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// predictMany submits a whole client batch as one job — one queue round trip
// for len(xs) predictions — and waits for it. out[i] answers (xs[i], hws[i]);
// len(hws) and len(out) must be at least len(xs). On a ctx error the worker
// may still write into out, so the caller must discard the buffer (the serve
// handlers allocate it per request).
func (b *batcher) predictMany(ctx context.Context, xs []profile.Characteristics, hws []hwspace.Config, out []float64) error {
	if len(xs) == 0 {
		return nil
	}
	job := b.getJob()
	job.xs, job.hws, job.out = xs, hws, out
	if err := b.submit(job); err != nil {
		return err
	}
	select {
	case <-job.done:
		err := job.err
		b.putJob(job)
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submit enqueues a job: the round-robin home shard first, then every
// sibling (work-stealing a slot on a less loaded queue), shedding only when
// all queues are full. On error the job has not been enqueued and is
// recycled here.
func (b *batcher) submit(job *predictJob) error {
	start := b.rr.Add(1)
	n := uint64(len(b.shards))
	for k := uint64(0); k < n; k++ {
		sh := b.shards[(start+k)%n]
		open, accepted := sh.trySubmit(job)
		if !open {
			b.putJob(job)
			return ErrClosed
		}
		if accepted {
			return nil
		}
	}
	b.putJob(job)
	if b.cfg.onShed != nil {
		b.cfg.onShed()
	}
	return ErrOverloaded
}

// trySubmit attempts a non-blocking enqueue under the shard's drain
// accounting. open is false once the shard is closed to new submissions.
func (sh *batchShard) trySubmit(job *predictJob) (open, accepted bool) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return false, false
	}
	sh.inflight++
	sh.mu.Unlock()

	select {
	case sh.queue <- job:
		sh.exitSubmit()
		return true, true
	default:
		sh.exitSubmit()
		return true, false
	}
}

// exitSubmit ends a submission critical section, completing a pending Close
// once the last submitter is out.
func (sh *batchShard) exitSubmit() {
	sh.mu.Lock()
	sh.inflight--
	if sh.closed && sh.inflight == 0 && !sh.queueClosed {
		sh.queueClosed = true
		close(sh.queue)
	}
	sh.mu.Unlock()
}

// queued reports the total jobs sitting in the shard queues (tests only).
func (b *batcher) queued() int {
	total := 0
	for _, sh := range b.shards {
		total += len(sh.queue)
	}
	return total
}

// Close drains the batcher: it rejects new submissions on every shard, lets
// in-flight ones enqueue, answers everything queued, and returns once every
// worker has exited. Safe to call more than once.
func (b *batcher) Close() {
	for _, sh := range b.shards {
		sh.close()
	}
	for _, sh := range b.shards { //hslint:ignore ctxflow the shutdown drain is bounded by the shard count and must run to completion
		<-sh.workerDone
	}
}

func (sh *batchShard) close() {
	sh.mu.Lock()
	if !sh.closed {
		sh.closed = true
		if sh.inflight == 0 && !sh.queueClosed {
			sh.queueClosed = true
			close(sh.queue)
		}
	}
	sh.mu.Unlock()
}

// run is the shard worker: take one job, gather more up to maxBatch/maxWait,
// then answer the whole batch against a single snapshot load. Everything on
// this loop reuses the shard's preallocated buffers.
//
//hslint:hotpath
func (sh *batchShard) run() {
	defer close(sh.workerDone)
	for {
		job, ok := <-sh.queue
		if !ok {
			return
		}
		sh.batch[0] = job
		sh.nbatch = 1
		sh.gather()
		sh.flush(sh.b.cfg.snap())
	}
}

// gather collects follow-on jobs for the current flush until the batch is
// full, the wait window expires, or the queue closes. Jobs already queued are
// taken without arming the timer, so a saturated shard never touches it.
//
//hslint:hotpath
func (sh *batchShard) gather() {
	for sh.nbatch < len(sh.batch) {
		select {
		case j, ok := <-sh.queue:
			if !ok {
				return
			}
			sh.batch[sh.nbatch] = j
			sh.nbatch++
			continue
		default:
		}
		break
	}
	if sh.nbatch >= len(sh.batch) {
		return
	}
	sh.armTimer()
	for sh.nbatch < len(sh.batch) {
		select {
		case j, ok := <-sh.queue:
			if !ok {
				return
			}
			sh.batch[sh.nbatch] = j
			sh.nbatch++
		case <-sh.timer.C:
			return
		}
	}
}

// armTimer starts (or re-arms) the reused gather-window timer. A fire racing
// the Stop/drain below can leave a stale tick in the channel; the only
// consequence is one premature — smaller, still correct — flush.
func (sh *batchShard) armTimer() {
	if sh.timer == nil {
		sh.timer = time.NewTimer(sh.b.cfg.maxWait)
		return
	}
	if !sh.timer.Stop() {
		select {
		case <-sh.timer.C:
		default:
		}
	}
	sh.timer.Reset(sh.b.cfg.maxWait)
}

// flush answers the gathered batch: every item of every job is expanded into
// the shard's contiguous row buffer and answered through one
// Snapshot.PredictBatch sweep per chunk, then each job is signalled exactly
// once. The untrained check happens once per flush — item results are
// bit-identical to per-call Snapshot.PredictShard either way.
//
//hslint:hotpath
func (sh *batchShard) flush(snap *core.Snapshot) {
	batch := sh.batch[:sh.nbatch]
	items := 0
	if !snap.Trained() {
		for _, j := range batch {
			items += len(j.xs)
			j.err = core.ErrNotTrained
			j.done <- struct{}{}
		}
		sh.observe(items)
		return
	}
	pos := 0
	for _, j := range batch {
		j.err = nil
		for i := range j.xs {
			core.Sample{X: j.xs[i], HW: j.hws[i]}.RowInto(sh.rows[pos])
			sh.dstJob[pos] = j
			sh.dstIdx[pos] = i
			pos++
			if pos == len(sh.rows) {
				sh.sweep(snap, pos)
				items += pos
				pos = 0
			}
		}
	}
	if pos > 0 {
		sh.sweep(snap, pos)
		items += pos
	}
	for _, j := range batch {
		j.done <- struct{}{}
	}
	sh.observe(items)
}

// sweep answers rows[:n] in one batched snapshot pass and scatters the
// results into their jobs' output slots.
//
//hslint:hotpath
func (sh *batchShard) sweep(snap *core.Snapshot, n int) {
	// Trained was checked by flush; PredictBatch cannot fail here.
	_ = snap.PredictBatch(sh.rows[:n], sh.out[:n])
	for t := 0; t < n; t++ {
		sh.dstJob[t].out[sh.dstIdx[t]] = sh.out[t]
	}
}

func (sh *batchShard) observe(items int) {
	if sh.b.cfg.observe != nil {
		sh.b.cfg.observe(items)
	}
}
