// Request coalescing: concurrent single-shard predictions are gathered off a
// bounded queue into one pass over the served snapshot (Concorde-style
// micro-batching, arXiv:2503.23076). One worker drains the queue; each flush
// loads the snapshot exactly once, so every prediction in a batch is
// answered by the same model version, and the per-prediction result is
// bit-identical to a direct Snapshot.PredictShard call — the batcher only
// amortizes queueing and snapshot loads, it never changes the arithmetic.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
)

// ErrClosed is returned to predictions submitted after shutdown began.
var ErrClosed = errors.New("serve: server is shutting down")

// ErrOverloaded is returned when the prediction queue is full: the server
// sheds the request immediately (HTTP 429 upstream) instead of stacking
// blocked submitters behind a worker that is already saturated.
var ErrOverloaded = errors.New("serve: prediction queue full")

type predictResult struct {
	cpi float64
	err error
}

type predictJob struct {
	x    profile.Characteristics
	hw   hwspace.Config
	done chan predictResult // buffered(1): the worker never blocks on delivery
}

// batcher owns the bounded queue and the single gather/flush worker.
//
// Shutdown protocol (the "lose zero in-flight requests" guarantee): Close
// marks the batcher closed so new predictions are rejected with ErrClosed,
// waits for submitters already past the closed-check to finish enqueueing,
// then closes the queue; the worker drains every queued job — each gets a
// real prediction — before exiting.
type batcher struct {
	queue    chan *predictJob
	maxBatch int
	maxWait  time.Duration
	snap     func() *core.Snapshot
	observe  func(batchSize int)
	onShed   func()

	mu          sync.Mutex
	closed      bool
	inflight    int  // submitters between the closed-check and the enqueue
	queueClosed bool // the queue channel has been closed

	workerDone chan struct{}
}

func newBatcher(snap func() *core.Snapshot, maxBatch int, maxWait time.Duration, queueDepth int, observe func(int), onShed func()) *batcher {
	if maxBatch <= 0 {
		maxBatch = 32
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	if queueDepth <= 0 {
		queueDepth = 4 * maxBatch
	}
	b := &batcher{
		queue:      make(chan *predictJob, queueDepth),
		maxBatch:   maxBatch,
		maxWait:    maxWait,
		snap:       snap,
		observe:    observe,
		onShed:     onShed,
		workerDone: make(chan struct{}),
	}
	go b.run()
	return b
}

// predict submits one shard prediction and waits for its result. A request
// that was accepted into the queue always receives a result (even during
// shutdown); ctx cancellation abandons the wait but the buffered done
// channel means the worker never blocks on an abandoned job. A full queue
// sheds the request with ErrOverloaded instead of blocking: under overload
// the queue is a pressure gauge, not a waiting room — stacked submitters
// would only add latency to requests the worker cannot reach anyway.
func (b *batcher) predict(ctx context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	job := &predictJob{x: x, hw: hw, done: make(chan predictResult, 1)}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	b.inflight++
	b.mu.Unlock()

	select {
	case b.queue <- job:
		b.exitSubmit()
	default:
		b.exitSubmit()
		if b.onShed != nil {
			b.onShed()
		}
		return 0, ErrOverloaded
	}

	select {
	case r := <-job.done:
		return r.cpi, r.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// exitSubmit ends a submission critical section, completing a pending Close
// once the last submitter is out.
func (b *batcher) exitSubmit() {
	b.mu.Lock()
	b.inflight--
	if b.closed && b.inflight == 0 && !b.queueClosed {
		b.queueClosed = true
		close(b.queue)
	}
	b.mu.Unlock()
}

// Close drains the batcher: it rejects new submissions, lets in-flight ones
// enqueue, answers everything queued, and returns once the worker has
// exited. Safe to call more than once.
func (b *batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		if b.inflight == 0 && !b.queueClosed {
			b.queueClosed = true
			close(b.queue)
		}
	}
	b.mu.Unlock()
	<-b.workerDone
}

// run is the worker: take one job, gather more up to maxBatch/maxWait, then
// answer the whole batch against a single snapshot load.
func (b *batcher) run() {
	defer close(b.workerDone)
	for {
		job, ok := <-b.queue
		if !ok {
			return
		}
		batch := b.gather(job)
		snap := b.snap()
		for _, j := range batch {
			cpi, err := snap.PredictShard(j.x, j.hw)
			j.done <- predictResult{cpi, err}
		}
		if b.observe != nil {
			b.observe(len(batch))
		}
	}
}

// gather collects follow-on jobs for first's batch until the batch is full,
// the wait window expires, or the queue closes.
func (b *batcher) gather(first *predictJob) []*predictJob {
	batch := make([]*predictJob, 1, b.maxBatch)
	batch[0] = first
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case j, ok := <-b.queue:
			if !ok {
				return batch
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch
		}
	}
	return batch
}
