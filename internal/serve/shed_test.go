package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/core"
)

// TestBatcherShedsOnFullQueue pins the shedding contract deterministically:
// the worker is parked inside a snapshot load, the queue is filled to
// capacity, and the next submission must be rejected immediately with
// ErrOverloaded — not blocked — while everything accepted is still answered
// after the worker resumes.
func TestBatcherShedsOnFullQueue(t *testing.T) {
	tr := newTestTrainer(t)
	_, valid := testData(t)

	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	var sheds atomic.Int64
	snap := func() *core.Snapshot {
		entered <- struct{}{}
		<-gate
		return tr.Snapshot()
	}
	b := newBatcher(batcherConfig{
		shards:     1,
		maxBatch:   1,
		maxWait:    time.Millisecond,
		queueDepth: 1,
		snap:       snap,
		onShed:     func() { sheds.Add(1) },
	})
	defer b.Close()

	// First job: the worker takes it off the queue, gathers (maxBatch 1),
	// and parks in snap(); the queue is now empty.
	first := make(chan error, 1)
	go func() {
		_, err := b.predict(context.Background(), valid[0].X, valid[0].HW)
		first <- err
	}()
	<-entered

	// Second job fills the one-slot queue; the third must shed.
	second := make(chan error, 1)
	go func() {
		_, err := b.predict(context.Background(), valid[1].X, valid[1].HW)
		second <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second job never enqueued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := b.predict(context.Background(), valid[2].X, valid[2].HW); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third predict err = %v, want ErrOverloaded", err)
	}
	if got := sheds.Load(); got != 1 {
		t.Fatalf("shed callback fired %d times, want 1", got)
	}

	// Release the worker: both accepted jobs get real answers.
	close(gate)
	for i, ch := range []chan error{first, second} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("accepted job %d: %v", i+1, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("accepted job %d never answered", i+1)
		}
	}
}

// TestShedMapsTo429 checks the HTTP mapping: ErrOverloaded becomes 429 with
// a Retry-After hint, and the shed shows up in /metrics.
func TestShedMapsTo429(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, ErrOverloaded)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}

	s, ts := newTestServer(t, Config{})
	s.metrics.shedsTotal.Add(3)
	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "hsserve_sheds_total 3") {
		t.Errorf("metrics missing sheds counter:\n%s", body)
	}
}
