package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/trace"
	"hsmodel/pkg/hsmodel"
)

// testSamples are collected once: simulation dominates fixture cost and the
// profiles are deterministic in the seed.
var (
	sampleOnce sync.Once
	trainStore []core.Sample
	validStore []core.Sample
)

func testData(t testing.TB) (train, valid []core.Sample) {
	t.Helper()
	sampleOnce.Do(func() {
		col := &core.Collector{ShardLen: 20_000, ShardPool: 12}
		apps := []*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}
		trainStore = col.Collect(apps, 40, 7)
		validStore = col.Collect(apps, 8, 8)
	})
	return trainStore, validStore
}

// newTestTrainer returns a freshly trained small trainer. Each test gets its
// own so sample mutation does not leak across tests.
func newTestTrainer(t testing.TB) *core.Trainer {
	t.Helper()
	train, _ := testData(t)
	tr := core.NewTrainer(append([]core.Sample(nil), train...))
	tr.ShardLen = 20_000
	tr.Search = genetic.Params{PopulationSize: 10, Generations: 2, Seed: 3}
	if err := tr.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	return tr
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Trainer == nil {
		cfg.Trainer = newTestTrainer(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close() // waits for outstanding requests
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestPredictBitIdenticalToSnapshot(t *testing.T) {
	tr := newTestTrainer(t)
	_, ts := newTestServer(t, Config{Trainer: tr})
	_, valid := testData(t)

	snap := tr.Snapshot()
	for i, v := range valid {
		want, err := snap.PredictShard(v.X, v.HW)
		if err != nil {
			t.Fatal(err)
		}
		hw := v.HW
		resp, body := postJSON(t, ts.URL+"/v1/predict", hsmodel.PredictRequest{
			X:      v.X[:],
			Config: &hw,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample %d: status %d: %s", i, resp.StatusCode, body)
		}
		var pr hsmodel.PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(pr.CPI) != math.Float64bits(want) {
			t.Fatalf("sample %d: HTTP prediction %v != snapshot prediction %v", i, pr.CPI, want)
		}
		if pr.Shards != 1 {
			t.Errorf("sample %d: shards = %d, want 1", i, pr.Shards)
		}
	}

	// The batch path — every item rides one multi-item batcher job answered
	// through contiguous PredictBatch sweeps — must be bit-identical too.
	var batchReq hsmodel.BatchPredictRequest
	for _, v := range valid {
		hw := v.HW
		batchReq.Requests = append(batchReq.Requests, hsmodel.PredictRequest{X: v.X[:], Config: &hw})
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict:batch", batchReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br hsmodel.BatchPredictResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(valid) {
		t.Fatalf("batch returned %d results, want %d", len(br.Results), len(valid))
	}
	for i, v := range valid {
		want, err := snap.PredictShard(v.X, v.HW)
		if err != nil {
			t.Fatal(err)
		}
		if br.Results[i].Error != "" {
			t.Fatalf("batch item %d: %s", i, br.Results[i].Error)
		}
		if math.Float64bits(br.Results[i].CPI) != math.Float64bits(want) {
			t.Fatalf("batch item %d: HTTP prediction %v != snapshot prediction %v", i, br.Results[i].CPI, want)
		}
	}
}

func TestPredictApplicationAndArch(t *testing.T) {
	tr := newTestTrainer(t)
	_, ts := newTestServer(t, Config{Trainer: tr})
	_, valid := testData(t)

	var shards [][]float64
	var xs []hsmodel.Characteristics
	for _, v := range valid[:4] {
		shards = append(shards, v.X[:])
		xs = append(xs, v.X)
	}
	arch := []int{2, 2, 1, 2, 1, 1, 2, 2, 1, 1, 1, 0, 1} // baseline indices
	resp, body := postJSON(t, ts.URL+"/v1/predict", hsmodel.PredictRequest{Shards: shards, Arch: arch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr hsmodel.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	want, err := tr.Snapshot().PredictApplication(xs, hsmodel.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(pr.CPI) != math.Float64bits(want) {
		t.Fatalf("application prediction %v != %v", pr.CPI, want)
	}
	if pr.Shards != 4 {
		t.Errorf("shards = %d, want 4", pr.Shards)
	}
}

func TestPredictErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  hsmodel.PredictRequest
		code int
	}{
		{"no inputs", hsmodel.PredictRequest{}, http.StatusBadRequest},
		{"short x", hsmodel.PredictRequest{X: []float64{1, 2}}, http.StatusBadRequest},
		{"bad arch", hsmodel.PredictRequest{X: make([]float64, 13), Arch: []int{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/predict", tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
		var er hsmodel.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not an ErrorResponse: %s", tc.name, body)
		}
	}
}

func TestUntrainedServes503(t *testing.T) {
	tr := core.NewTrainer(nil)
	_, ts := newTestServer(t, Config{Trainer: tr})
	_, valid := testData(t)
	resp, body := postJSON(t, ts.URL+"/v1/predict", hsmodel.PredictRequest{X: valid[0].X[:]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	// healthz still answers, reporting the untrained state.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
}

// TestBatchCoalescing is the tentpole acceptance test: 64 concurrent clients
// POSTing predict:batch must be coalesced by the micro-batcher (mean batch
// size > 1) and every returned prediction must be bit-identical to a direct
// Snapshot.PredictShard call.
func TestBatchCoalescing(t *testing.T) {
	tr := newTestTrainer(t)
	s, ts := newTestServer(t, Config{
		Trainer:  tr,
		MaxBatch: 32,
		MaxWait:  5 * time.Millisecond,
	})
	_, valid := testData(t)
	snap := tr.Snapshot()

	const clients = 64
	type result struct {
		got  float64
		want float64
		err  error
	}
	results := make([]result, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: clients}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			v := valid[c%len(valid)]
			want, _ := snap.PredictShard(v.X, v.HW)
			hw := v.HW
			data, _ := json.Marshal(hsmodel.BatchPredictRequest{
				Requests: []hsmodel.PredictRequest{{X: v.X[:], Config: &hw}},
			})
			<-start
			resp, err := client.Post(ts.URL+"/v1/predict:batch", "application/json", bytes.NewReader(data))
			if err != nil {
				results[c] = result{err: err}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[c] = result{err: fmt.Errorf("status %d: %s", resp.StatusCode, body)}
				return
			}
			var br hsmodel.BatchPredictResponse
			if err := json.Unmarshal(body, &br); err != nil {
				results[c] = result{err: err}
				return
			}
			if len(br.Results) != 1 || br.Results[0].Error != "" {
				results[c] = result{err: fmt.Errorf("bad batch result: %s", body)}
				return
			}
			results[c] = result{got: br.Results[0].CPI, want: want}
		}(c)
	}
	close(start)
	wg.Wait()

	for c, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", c, r.err)
		}
		if math.Float64bits(r.got) != math.Float64bits(r.want) {
			t.Fatalf("client %d: batched prediction %v != direct PredictShard %v", c, r.got, r.want)
		}
	}
	if mean := s.batchMean(); mean <= 1 {
		t.Errorf("mean batch size %v, want > 1 (no coalescing happened)", mean)
	} else {
		t.Logf("mean batch size %.2f over %d predictions", mean, s.metrics.batchSize.count.Load())
	}
}

// TestGracefulShutdownDrains is the second acceptance clause: requests in
// flight when shutdown begins are all answered — none lost, none hung.
func TestGracefulShutdownDrains(t *testing.T) {
	tr := newTestTrainer(t)
	// A long gather window keeps the worker collecting while the queue fills,
	// so shutdown begins with requests genuinely queued and blocked.
	s, err := New(Config{Trainer: tr, MaxBatch: 8, MaxWait: 20 * time.Millisecond, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, valid := testData(t)

	const n = 200
	var (
		answered atomic.Int64 // real predictions
		rejected atomic.Int64 // clean ErrClosed rejections
		shed     atomic.Int64 // clean ErrOverloaded sheds (full queue)
		wg       sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := valid[i%len(valid)]
			cpi, err := s.batcher.predict(context.Background(), v.X, v.HW)
			switch {
			case err == nil && cpi > 0:
				answered.Add(1)
			case errors.Is(err, ErrClosed):
				rejected.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("request %d: cpi=%v err=%v", i, cpi, err)
			}
		}(i)
	}
	// Begin shutdown only once requests are actually flowing through the
	// batcher (queued or already answered), then race the remaining
	// submissions against the drain. The gather worker consumes enqueued
	// jobs immediately, so an empty queue alone does not mean idle.
	for deadline := time.Now().Add(5 * time.Second); s.batcher.queued() == 0 && answered.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no request ever reached the batcher")
		}
		time.Sleep(100 * time.Microsecond)
	}
	s.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown left requests hanging")
	}
	if got := answered.Load() + rejected.Load() + shed.Load(); got != n {
		t.Fatalf("answered %d + rejected %d + shed %d != %d submitted",
			answered.Load(), rejected.Load(), shed.Load(), n)
	}
	if answered.Load() == 0 {
		t.Error("shutdown answered nothing — the drain path was not exercised")
	}
	t.Logf("answered %d, cleanly rejected %d, shed %d", answered.Load(), rejected.Load(), shed.Load())
	// After Close, new submissions are rejected, not lost.
	if _, err := s.batcher.predict(context.Background(), valid[0].X, valid[0].HW); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close predict err = %v, want ErrClosed", err)
	}
}

// TestServeWhileTrainHTTP exercises the full add-while-train plus
// serve-while-train contract through the HTTP layer under -race: concurrent
// predicts, batch predicts, and sample feeds with async update triggers.
func TestServeWhileTrainHTTP(t *testing.T) {
	tr := newTestTrainer(t)
	_, ts := newTestServer(t, Config{Trainer: tr, MaxWait: time.Millisecond})
	_, valid := testData(t)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 16)

	// Predict hammers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				v := valid[(g+i)%len(valid)]
				hw := v.HW
				resp, body := postJSON(t, ts.URL+"/v1/predict", hsmodel.PredictRequest{X: v.X[:], Config: &hw})
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("predict status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	// Batch hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			var reqs []hsmodel.PredictRequest
			for k := 0; k < 4; k++ {
				v := valid[(i+k)%len(valid)]
				hw := v.HW
				reqs = append(reqs, hsmodel.PredictRequest{X: v.X[:], Config: &hw})
			}
			resp, body := postJSON(t, ts.URL+"/v1/predict:batch", hsmodel.BatchPredictRequest{Requests: reqs})
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("batch status %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()
	// Sample feeder: absorb profiles and trigger async re-specification.
	updatesStarted := 0
	for round := 0; round < 3; round++ {
		var ws []hsmodel.SampleWire
		for k := 0; k < 4; k++ {
			ws = append(ws, hsmodel.SampleToWire(valid[(round*4+k)%len(valid)]))
		}
		resp, body := postJSON(t, ts.URL+"/v1/samples", hsmodel.SamplesRequest{Samples: ws, Update: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("samples status %d: %s", resp.StatusCode, body)
		}
		var sr hsmodel.SamplesResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Accepted != 4 {
			t.Fatalf("accepted %d, want 4", sr.Accepted)
		}
		if sr.UpdateStarted {
			updatesStarted++
		}
		// Direct trainer-level adds race the HTTP path on purpose.
		tr.AddSamples(valid[:2])
		time.Sleep(20 * time.Millisecond)
	}
	if updatesStarted == 0 {
		t.Error("no async update was ever started")
	}

	// Scrape metrics and model info concurrently with everything above.
	for _, path := range []string{"/metrics", "/v1/model", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The store grew: HTTP feeds plus direct adds.
	if n := tr.NumSamples(); n <= len(trainStore) {
		t.Errorf("sample store did not grow: %d", n)
	}
}

func TestModelInfoAndMetricsPage(t *testing.T) {
	tr := newTestTrainer(t)
	_, ts := newTestServer(t, Config{Trainer: tr})
	_, valid := testData(t)

	// A couple of requests so counters are non-zero.
	hw := valid[0].HW
	postJSON(t, ts.URL+"/v1/predict", hsmodel.PredictRequest{X: valid[0].X[:], Config: &hw})

	resp, body := getBody(t, ts.URL+"/v1/model")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model status %d", resp.StatusCode)
	}
	var info hsmodel.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Trained || info.Rung != "genetic" || info.Spec == "" || info.Terms == 0 {
		t.Errorf("model info incomplete: %+v", info)
	}
	if info.TrainedRows != len(trainStore) || info.TotalSamples != len(trainStore) {
		t.Errorf("rows %d / samples %d, want %d", info.TrainedRows, info.TotalSamples, len(trainStore))
	}
	if info.SnapshotVersion == 0 {
		t.Error("snapshot version not tracked")
	}

	mresp, mbody := getBody(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	page := string(mbody)
	for _, want := range []string{
		`hsserve_requests_total{endpoint="predict",code="200"}`,
		"hsserve_request_duration_seconds_bucket",
		"hsserve_batch_size_bucket",
		"hsserve_snapshot_version 1",
		"hsserve_snapshot_age_seconds",
		"hsserve_model_trained 1",
		`hsserve_updates_total{result="started"} 0`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

func TestHotReload(t *testing.T) {
	tr := newTestTrainer(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := tr.Snapshot().Save(path); err != nil {
		t.Fatal(err)
	}

	// A second trainer starts untrained and serves only after Reload.
	serving := core.NewTrainer(nil)
	s, ts := newTestServer(t, Config{Trainer: serving, ModelPath: path})
	_, valid := testData(t)

	resp, _ := postJSON(t, ts.URL+"/v1/predict", hsmodel.PredictRequest{X: valid[0].X[:]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-reload status %d, want 503", resp.StatusCode)
	}
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", hsmodel.PredictRequest{X: valid[0].X[:]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload status %d: %s", resp.StatusCode, body)
	}

	// A corrupt file is rejected with the typed persistence error and the
	// served snapshot stays.
	before := serving.Snapshot()
	if err := corruptFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of corrupt file succeeded")
	}
	if serving.Snapshot() != before {
		t.Error("failed reload replaced the served snapshot")
	}
}

func getBody(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func corruptFile(path string) error {
	return os.WriteFile(path, []byte(`{"version":3,"model":`), 0o644)
}
