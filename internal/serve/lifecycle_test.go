package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/family"
	"hsmodel/internal/family/spline"
	"hsmodel/internal/faultinject"
	"hsmodel/internal/lifecycle"
	"hsmodel/internal/trace"
	"hsmodel/pkg/hsmodel"
)

// postSample submits one core sample through POST /v1/samples.
func postSample(t testing.TB, url string, s core.Sample) hsmodel.SamplesResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/samples", hsmodel.SamplesRequest{
		Samples: []hsmodel.SampleWire{hsmodel.SampleToWire(s)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("samples: status %d: %s", resp.StatusCode, body)
	}
	var sr hsmodel.SamplesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func lifecycleStatus(t testing.TB, url string) lifecycle.Status {
	t.Helper()
	resp, body := getBody(t, url+"/v1/lifecycle")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lifecycle: status %d: %s", resp.StatusCode, body)
	}
	var st lifecycle.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestLifecycleDisabledIs404: without Config.Lifecycle the endpoint
// advertises the loop as absent.
func TestLifecycleDisabledIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := getBody(t, ts.URL+"/v1/lifecycle")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d with lifecycle disabled, want 404", resp.StatusCode)
	}
}

// TestLifecycleHTTPEpisode drives a scripted drift episode end to end over
// the wire: shifted samples trip the loop, a candidate is trained and
// promoted, the trainer's own store stays flat (samples are routed into the
// bounded stores), and both /v1/lifecycle and /metrics report the outcome.
func TestLifecycleHTTPEpisode(t *testing.T) {
	tr := newTestTrainer(t)
	bootstrapRows := tr.NumSamples()
	col := &core.Collector{ShardLen: 20_000, ShardPool: 12}
	stream := col.Collect([]*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}, 30, 21)

	_, ts := newTestServer(t, Config{
		Trainer: tr,
		Lifecycle: &lifecycle.Config{
			Drift:        lifecycle.DriftConfig{Target: 0.2},
			MinProfiles:  10,
			MinTrainRows: 24,
			ReservoirCap: 64,
			RingCap:      32,
			Seed:         11,
		},
	})

	if st := lifecycleStatus(t, ts.URL); st.State != "stable" {
		t.Fatalf("initial state %q, want stable", st.State)
	}

	// The same x1.6 step shift the in-package promotion test uses, delivered
	// over HTTP one profile at a time.
	sched := &faultinject.DriftSchedule{Segments: []faultinject.DriftSegment{{From: 1, Factor: 1.6}}}
	deadline := time.Now().Add(2 * time.Minute)
	var promoted bool
	for i := 0; !promoted; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no promotion within deadline")
		}
		v := stream[i%len(stream)]
		v.CPI, _ = sched.Next(v.CPI)
		postSample(t, ts.URL, v)
		// Wait out any in-flight episode so the submission order fully
		// determines the outcome.
		for {
			st := lifecycleStatus(t, ts.URL)
			if st.State != "retraining" && st.State != "canary" {
				promoted = st.Promotions > 0
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	st := lifecycleStatus(t, ts.URL)
	if st.Promotions != 1 || st.Rollbacks != 0 {
		t.Fatalf("promotions=%d rollbacks=%d, want 1/0 (status %+v)", st.Promotions, st.Rollbacks, st)
	}
	// Lifecycle mode keeps the trainer's store bounded: submissions landed in
	// the reservoir/ring, and promotion replaced the store with the bounded
	// training set rather than growing it.
	if rows := tr.NumSamples(); rows > bootstrapRows {
		t.Errorf("trainer store grew %d -> %d rows; lifecycle mode must keep it bounded", bootstrapRows, rows)
	}
	if st.ReservoirLen > st.ReservoirCap || st.RingLen > st.RingCap {
		t.Errorf("store occupancy exceeds caps: %+v", st)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	for _, marker := range []string{
		`hsserve_lifecycle_episodes_total{kind="promotion"} 1`,
		`hsserve_lifecycle_state{state="stable"} 1`,
		`hsserve_lifecycle_store_occupancy{store="reservoir"}`,
		"hsserve_lifecycle_drift_score",
		"hsserve_lifecycle_canary_err",
	} {
		if !strings.Contains(string(body), marker) {
			t.Errorf("metrics missing %q", marker)
		}
	}
}

// modelInfo fetches and decodes GET /v1/model.
func modelInfo(t testing.TB, url string) hsmodel.ModelInfo {
	t.Helper()
	resp, body := getBody(t, url+"/v1/model")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model: status %d: %s", resp.StatusCode, body)
	}
	var info hsmodel.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestLifecyclePromotionCarriesFamily: when the live trainer runs family
// selection, a shadow-retrained candidate promoted by the lifecycle loop must
// surface its family identity on the wire — GET /v1/model reports the family
// and the selection scoreboard of the promoted snapshot, and /metrics labels
// the served family — not the bootstrap model's provenance.
func TestLifecyclePromotionCarriesFamily(t *testing.T) {
	tr := newTestTrainer(t)
	// Restrict selection to the reference family so each retrain episode
	// stays as cheap as the classic path; the wire contract under test is the
	// same for any registered set.
	tr.Families = []family.Family{spline.New()}
	col := &core.Collector{ShardLen: 20_000, ShardPool: 12}
	stream := col.Collect([]*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}, 60, 21)

	// MinTrainRows is sized so the shadow's selection round can fit the full
	// winning spec (more rows than design columns) and promote from the
	// family rung rather than degrading to stepwise.
	_, ts := newTestServer(t, Config{
		Trainer: tr,
		Lifecycle: &lifecycle.Config{
			Drift:        lifecycle.DriftConfig{Target: 0.2},
			MinProfiles:  10,
			MinTrainRows: 60,
			ReservoirCap: 128,
			RingCap:      32,
			Seed:         11,
		},
	})

	// The bootstrap model predates selection: spline family, no scoreboard.
	before := modelInfo(t, ts.URL)
	if before.Family != spline.FamilyName {
		t.Fatalf("bootstrap family %q, want %q", before.Family, spline.FamilyName)
	}
	if len(before.FamilyScores) != 0 {
		t.Fatalf("bootstrap model has selection scores %v before any selection ran", before.FamilyScores)
	}

	sched := &faultinject.DriftSchedule{Segments: []faultinject.DriftSegment{{From: 1, Factor: 1.6}}}
	deadline := time.Now().Add(2 * time.Minute)
	var promoted bool
	for i := 0; !promoted; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no promotion within deadline")
		}
		v := stream[i%len(stream)]
		v.CPI, _ = sched.Next(v.CPI)
		postSample(t, ts.URL, v)
		for {
			st := lifecycleStatus(t, ts.URL)
			if st.State != "retraining" && st.State != "canary" {
				promoted = st.Promotions > 0
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	after := modelInfo(t, ts.URL)
	if after.Family != spline.FamilyName {
		t.Errorf("promoted family %q, want %q", after.Family, spline.FamilyName)
	}
	if after.Rung != core.RungFamily.String() {
		t.Errorf("promoted rung %q, want %q: the served snapshot is not the selection-produced candidate", after.Rung, core.RungFamily)
	}
	if _, ok := after.FamilyScores[spline.FamilyName]; !ok {
		t.Errorf("promoted model lost its selection scoreboard: %v", after.FamilyScores)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	marker := `hsserve_model_family{family="spline"} 1`
	if !strings.Contains(string(body), marker) {
		t.Errorf("metrics missing %q", marker)
	}
}
