// Metrics: request counters, latency histograms, the batch-size
// distribution, and snapshot lifecycle gauges, exposed in Prometheus text
// exposition format on GET /metrics — standard library only. The fixed
// bucket layouts keep observation lock-free (atomic bucket counters plus a
// CAS-accumulated sum); only the requests-per-(endpoint, code) map takes a
// mutex, and only for a map increment.
package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hsmodel/internal/lifecycle"
)

// latencyBuckets are the histogram upper bounds in seconds, 100µs to 10s.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// batchBuckets bound the coalesced-batch-size distribution.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// histogram is a fixed-bucket Prometheus-style histogram safe for
// concurrent observation.
type histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	// First bound >= v; equality lands in that bucket (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *histogram) mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sum.Load()) / float64(n)
}

// write emits the _bucket/_sum/_count series. labels is either empty or a
// rendered `name="value"` list without braces.
func (h *histogram) write(w io.Writer, name, labels string) {
	sep := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="`+formatBound(b)+`"`), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, sep(""), math.Float64frombits(h.sum.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep(""), h.count.Load())
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// endpoints served, in stable exposition order: the v1 family, the probes,
// then the model-addressed v2 family.
var endpointNames = []string{
	"predict", "predict_batch", "samples", "model", "lifecycle", "healthz", "metrics",
	"v2_models", "v2_register", "v2_unregister",
	"v2_predict", "v2_predict_batch", "v2_samples", "v2_model",
}

// reqKey labels one requests_total series.
type reqKey struct {
	endpoint string
	code     int
}

// modelReqKey labels one model_requests_total series: the same counter as
// requests_total, additionally split by the registry entry that served it
// (v1 routes count against the reserved default entry).
type modelReqKey struct {
	model    string
	endpoint string
	code     int
}

// Cardinality caps for the labeled counter maps. Endpoints are a fixed set
// but status codes and (for model_requests_total) model ids arrive from
// traffic, so without a cap a label-spraying client grows the maps — and the
// scrape page — without bound. At the cap, new label combinations are
// dropped (existing series keep counting) and the drop is itself counted.
const (
	maxRequestSeries      = 256
	maxModelRequestSeries = 4096
)

// metrics aggregates everything GET /metrics exposes.
type metrics struct {
	mu            sync.Mutex
	requests      map[reqKey]uint64
	modelRequests map[modelReqKey]uint64
	droppedSeries uint64 // new label combinations rejected at the cap

	latency   map[string]*histogram // per endpoint
	batchSize *histogram

	samplesAccepted atomic.Uint64
	updatesStarted  atomic.Uint64
	updatesOK       atomic.Uint64
	updatesFailed   atomic.Uint64
	reloads         atomic.Uint64
	reloadErrors    atomic.Uint64
	shedsTotal      atomic.Uint64 // predictions rejected on a full shard queue
	registrySheds   atomic.Uint64 // predictions rejected by the aggregate registry bound
}

func newMetrics() *metrics {
	m := &metrics{
		requests:      make(map[reqKey]uint64),
		modelRequests: make(map[modelReqKey]uint64),
		latency:       make(map[string]*histogram, len(endpointNames)),
		batchSize:     newHistogram(batchBuckets),
	}
	for _, e := range endpointNames {
		m.latency[e] = newHistogram(latencyBuckets)
	}
	return m
}

// observeRequest records one completed request.
func (m *metrics) observeRequest(endpoint string, code int, seconds float64) {
	k := reqKey{endpoint, code}
	m.mu.Lock()
	if _, ok := m.requests[k]; ok || len(m.requests) < maxRequestSeries {
		m.requests[k]++
	} else {
		m.droppedSeries++
	}
	m.mu.Unlock()
	if h, ok := m.latency[endpoint]; ok {
		h.observe(seconds)
	}
}

// observeModelRequest records one completed model-addressed request.
func (m *metrics) observeModelRequest(model, endpoint string, code int) {
	k := modelReqKey{model, endpoint, code}
	m.mu.Lock()
	if _, ok := m.modelRequests[k]; ok || len(m.modelRequests) < maxModelRequestSeries {
		m.modelRequests[k]++
	} else {
		m.droppedSeries++
	}
	m.mu.Unlock()
}

// observeBatch records the size of one coalesced evaluator pass.
func (m *metrics) observeBatch(n int) { m.batchSize.observe(float64(n)) }

// snapshotState is what the scrape reports about the served model; the
// server computes it at scrape time.
type snapshotState struct {
	version uint64
	age     time.Duration
	trained bool
	family  string // served model family name; "" before training
}

// writeTo renders the full exposition page. Lock coverage on the read path:
// the requests map is copied under mu before rendering; every histogram and
// counter read is an atomic load (a bucket/sum/count triple may be mutually
// torn mid-observation, which skews one scrape by at most one in-flight
// event and never corrupts monotonicity); the latency map itself is written
// only in newMetrics. TestMetricsScrapeDuringPredictLoad holds this under
// -race.
// lifecycleState carries the control loop's scrape-time status; nil means
// the loop is disabled and its section is omitted.
type lifecycleState = lifecycle.Status

// modelScrape is one registry entry's scrape-time state.
type modelScrape struct {
	id          string
	trained     bool
	version     uint64
	samples     int
	trainedRows int
	queued      int
	evalCache   bool
}

// registryScrape carries the registry's scrape-time state; nil omits the
// per-model section (unit tests driving writeTo directly).
type registryScrape struct {
	depth  int
	bound  int
	models []modelScrape
}

func (m *metrics) writeTo(w io.Writer, snap snapshotState, lc *lifecycleState, reg *registryScrape) {
	io.WriteString(w, "# HELP hsserve_requests_total HTTP requests served, by endpoint and status code.\n")
	io.WriteString(w, "# TYPE hsserve_requests_total counter\n")
	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	counts := make(map[reqKey]uint64, len(keys))
	for k, v := range m.requests {
		counts[k] = v
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "hsserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, counts[k])
	}

	io.WriteString(w, "# HELP hsserve_request_duration_seconds Request latency by endpoint.\n")
	io.WriteString(w, "# TYPE hsserve_request_duration_seconds histogram\n")
	for _, e := range endpointNames {
		if m.latency[e].count.Load() == 0 {
			continue
		}
		m.latency[e].write(w, "hsserve_request_duration_seconds", "endpoint=\""+e+"\"")
	}

	io.WriteString(w, "# HELP hsserve_batch_size Predictions coalesced per evaluator pass.\n")
	io.WriteString(w, "# TYPE hsserve_batch_size histogram\n")
	m.batchSize.write(w, "hsserve_batch_size", "")

	io.WriteString(w, "# HELP hsserve_snapshot_version Snapshot publications observed by this server.\n")
	io.WriteString(w, "# TYPE hsserve_snapshot_version gauge\n")
	fmt.Fprintf(w, "hsserve_snapshot_version %d\n", snap.version)
	io.WriteString(w, "# HELP hsserve_snapshot_age_seconds Seconds since the served snapshot changed.\n")
	io.WriteString(w, "# TYPE hsserve_snapshot_age_seconds gauge\n")
	fmt.Fprintf(w, "hsserve_snapshot_age_seconds %g\n", snap.age.Seconds())
	io.WriteString(w, "# HELP hsserve_model_trained Whether a model is being served (1) or not (0).\n")
	io.WriteString(w, "# TYPE hsserve_model_trained gauge\n")
	trained := 0
	if snap.trained {
		trained = 1
	}
	fmt.Fprintf(w, "hsserve_model_trained %d\n", trained)
	if snap.family != "" {
		io.WriteString(w, "# HELP hsserve_model_family Which model family the served snapshot came from (1 on the served family's label).\n")
		io.WriteString(w, "# TYPE hsserve_model_family gauge\n")
		fmt.Fprintf(w, "hsserve_model_family{family=%q} 1\n", snap.family)
	}

	io.WriteString(w, "# HELP hsserve_samples_accepted_total Profiles absorbed via POST /v1/samples.\n")
	io.WriteString(w, "# TYPE hsserve_samples_accepted_total counter\n")
	fmt.Fprintf(w, "hsserve_samples_accepted_total %d\n", m.samplesAccepted.Load())
	io.WriteString(w, "# HELP hsserve_updates_total Asynchronous model re-specifications, by result.\n")
	io.WriteString(w, "# TYPE hsserve_updates_total counter\n")
	fmt.Fprintf(w, "hsserve_updates_total{result=\"started\"} %d\n", m.updatesStarted.Load())
	fmt.Fprintf(w, "hsserve_updates_total{result=\"ok\"} %d\n", m.updatesOK.Load())
	fmt.Fprintf(w, "hsserve_updates_total{result=\"failed\"} %d\n", m.updatesFailed.Load())
	io.WriteString(w, "# HELP hsserve_snapshot_reloads_total Hot snapshot reloads (SIGHUP), by result.\n")
	io.WriteString(w, "# TYPE hsserve_snapshot_reloads_total counter\n")
	fmt.Fprintf(w, "hsserve_snapshot_reloads_total{result=\"ok\"} %d\n", m.reloads.Load())
	fmt.Fprintf(w, "hsserve_snapshot_reloads_total{result=\"failed\"} %d\n", m.reloadErrors.Load())

	io.WriteString(w, "# HELP hsserve_sheds_total Predictions rejected because the queue was full (HTTP 429).\n")
	io.WriteString(w, "# TYPE hsserve_sheds_total counter\n")
	fmt.Fprintf(w, "hsserve_sheds_total %d\n", m.shedsTotal.Load())

	m.mu.Lock()
	dropped := m.droppedSeries
	m.mu.Unlock()
	io.WriteString(w, "# HELP hsserve_metrics_series_dropped_total Label combinations rejected at the counter cardinality cap.\n")
	io.WriteString(w, "# TYPE hsserve_metrics_series_dropped_total counter\n")
	fmt.Fprintf(w, "hsserve_metrics_series_dropped_total %d\n", dropped)

	if reg != nil {
		m.writeRegistry(w, reg)
	}

	if lc == nil {
		return
	}
	io.WriteString(w, "# HELP hsserve_lifecycle_state Control-loop state (one-hot over the state machine).\n")
	io.WriteString(w, "# TYPE hsserve_lifecycle_state gauge\n")
	for _, st := range []string{"stable", "drift-suspected", "gathering", "retraining", "canary", "cooldown"} {
		v := 0
		if lc.State == st {
			v = 1
		}
		fmt.Fprintf(w, "hsserve_lifecycle_state{state=%q} %d\n", st, v)
	}
	io.WriteString(w, "# HELP hsserve_lifecycle_drift_score CUSUM drift score of the streaming error detector.\n")
	io.WriteString(w, "# TYPE hsserve_lifecycle_drift_score gauge\n")
	fmt.Fprintf(w, "hsserve_lifecycle_drift_score %g\n", lc.DriftScore)
	io.WriteString(w, "# HELP hsserve_lifecycle_err_ewma Smoothed |relative error| of the served model on the live stream.\n")
	io.WriteString(w, "# TYPE hsserve_lifecycle_err_ewma gauge\n")
	fmt.Fprintf(w, "hsserve_lifecycle_err_ewma %g\n", lc.ErrEWMA)
	io.WriteString(w, "# HELP hsserve_lifecycle_store_occupancy Bounded sample-store occupancy, by store.\n")
	io.WriteString(w, "# TYPE hsserve_lifecycle_store_occupancy gauge\n")
	fmt.Fprintf(w, "hsserve_lifecycle_store_occupancy{store=\"reservoir\"} %d\n", lc.ReservoirLen)
	fmt.Fprintf(w, "hsserve_lifecycle_store_occupancy{store=\"ring\"} %d\n", lc.RingLen)
	io.WriteString(w, "# HELP hsserve_lifecycle_store_capacity Bounded sample-store capacity, by store.\n")
	io.WriteString(w, "# TYPE hsserve_lifecycle_store_capacity gauge\n")
	fmt.Fprintf(w, "hsserve_lifecycle_store_capacity{store=\"reservoir\"} %d\n", lc.ReservoirCap)
	fmt.Fprintf(w, "hsserve_lifecycle_store_capacity{store=\"ring\"} %d\n", lc.RingCap)
	io.WriteString(w, "# HELP hsserve_lifecycle_episodes_total Control-loop episode outcomes, by kind.\n")
	io.WriteString(w, "# TYPE hsserve_lifecycle_episodes_total counter\n")
	fmt.Fprintf(w, "hsserve_lifecycle_episodes_total{kind=\"retrain\"} %d\n", lc.Retrains)
	fmt.Fprintf(w, "hsserve_lifecycle_episodes_total{kind=\"promotion\"} %d\n", lc.Promotions)
	fmt.Fprintf(w, "hsserve_lifecycle_episodes_total{kind=\"rollback\"} %d\n", lc.Rollbacks)
	fmt.Fprintf(w, "hsserve_lifecycle_episodes_total{kind=\"ladder_failure\"} %d\n", lc.LadderFailures)
	io.WriteString(w, "# HELP hsserve_lifecycle_canary_err Canary MedAPE of the last candidate vs the incumbent on the same set.\n")
	io.WriteString(w, "# TYPE hsserve_lifecycle_canary_err gauge\n")
	fmt.Fprintf(w, "hsserve_lifecycle_canary_err{model=\"candidate\"} %g\n", lc.CanaryErr)
	fmt.Fprintf(w, "hsserve_lifecycle_canary_err{model=\"incumbent\"} %g\n", lc.IncumbentErr)
}

// writeRegistry renders the multi-model section: registry-wide load state
// plus one series per entry per gauge, labeled by model id.
func (m *metrics) writeRegistry(w io.Writer, reg *registryScrape) {
	io.WriteString(w, "# HELP hsserve_registry_models Registered model entries.\n")
	io.WriteString(w, "# TYPE hsserve_registry_models gauge\n")
	fmt.Fprintf(w, "hsserve_registry_models %d\n", len(reg.models))
	io.WriteString(w, "# HELP hsserve_registry_queue_depth Aggregate queued predictions across every entry's batcher.\n")
	io.WriteString(w, "# TYPE hsserve_registry_queue_depth gauge\n")
	fmt.Fprintf(w, "hsserve_registry_queue_depth %d\n", reg.depth)
	io.WriteString(w, "# HELP hsserve_registry_queue_bound Aggregate shed threshold (0 = disabled).\n")
	io.WriteString(w, "# TYPE hsserve_registry_queue_bound gauge\n")
	fmt.Fprintf(w, "hsserve_registry_queue_bound %d\n", reg.bound)
	io.WriteString(w, "# HELP hsserve_registry_sheds_total Predictions rejected by the aggregate registry bound (HTTP 429).\n")
	io.WriteString(w, "# TYPE hsserve_registry_sheds_total counter\n")
	fmt.Fprintf(w, "hsserve_registry_sheds_total %d\n", m.registrySheds.Load())

	io.WriteString(w, "# HELP hsserve_registry_model_trained Whether the entry serves a model (1) or not (0), by model.\n")
	io.WriteString(w, "# TYPE hsserve_registry_model_trained gauge\n")
	for _, e := range reg.models {
		v := 0
		if e.trained {
			v = 1
		}
		fmt.Fprintf(w, "hsserve_registry_model_trained{model=%q} %d\n", e.id, v)
	}
	io.WriteString(w, "# HELP hsserve_registry_model_snapshot_version Snapshot publications observed, by model.\n")
	io.WriteString(w, "# TYPE hsserve_registry_model_snapshot_version gauge\n")
	for _, e := range reg.models {
		fmt.Fprintf(w, "hsserve_registry_model_snapshot_version{model=%q} %d\n", e.id, e.version)
	}
	io.WriteString(w, "# HELP hsserve_registry_model_samples Profile-store size, by model.\n")
	io.WriteString(w, "# TYPE hsserve_registry_model_samples gauge\n")
	for _, e := range reg.models {
		fmt.Fprintf(w, "hsserve_registry_model_samples{model=%q} %d\n", e.id, e.samples)
	}
	io.WriteString(w, "# HELP hsserve_registry_model_trained_rows Rows the served snapshot was trained on, by model.\n")
	io.WriteString(w, "# TYPE hsserve_registry_model_trained_rows gauge\n")
	for _, e := range reg.models {
		fmt.Fprintf(w, "hsserve_registry_model_trained_rows{model=%q} %d\n", e.id, e.trainedRows)
	}
	io.WriteString(w, "# HELP hsserve_registry_model_queue_depth Queued predictions, by model.\n")
	io.WriteString(w, "# TYPE hsserve_registry_model_queue_depth gauge\n")
	for _, e := range reg.models {
		fmt.Fprintf(w, "hsserve_registry_model_queue_depth{model=%q} %d\n", e.id, e.queued)
	}
	io.WriteString(w, "# HELP hsserve_registry_model_eval_cache Whether the entry holds its featurized evaluator cache (LRU-bounded), by model.\n")
	io.WriteString(w, "# TYPE hsserve_registry_model_eval_cache gauge\n")
	for _, e := range reg.models {
		v := 0
		if e.evalCache {
			v = 1
		}
		fmt.Fprintf(w, "hsserve_registry_model_eval_cache{model=%q} %d\n", e.id, v)
	}

	m.mu.Lock()
	keys := make([]modelReqKey, 0, len(m.modelRequests))
	counts := make(map[modelReqKey]uint64, len(m.modelRequests))
	for k, v := range m.modelRequests {
		keys = append(keys, k)
		counts[k] = v
	}
	m.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	io.WriteString(w, "# HELP hsserve_model_requests_total HTTP requests served, by model, endpoint, and status code.\n")
	io.WriteString(w, "# TYPE hsserve_model_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "hsserve_model_requests_total{model=%q,endpoint=%q,code=\"%d\"} %d\n",
			k.model, k.endpoint, k.code, counts[k])
	}
}
