package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hsmodel/pkg/hsmodel"
)

// TestMetricsScrapeDuringPredictLoad hammers /v1/predict from 32 concurrent
// clients while the main goroutine scrapes /metrics in a tight loop. Under
// -race this pins the audited read-path contract: histogram scrapes are
// atomic loads against concurrent observations, and writeTo copies the
// requests map under the mutex before rendering, so a scrape never walks a
// map another request is incrementing. The final scrape must also account
// for every predict exactly once.
func TestMetricsScrapeDuringPredictLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, valid := testData(t)
	v := valid[0]

	req := hsmodel.PredictRequest{X: v.X[:]}
	hw := v.HW
	req.Config = &hw
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 32
	const perClient = 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		return string(body)
	}

	loading := true
	for loading {
		select {
		case <-done:
			loading = false
		default:
		}
		body := scrape()
		if !strings.Contains(body, "hsserve_model_trained 1") {
			t.Fatal("scrape under load is missing the trained gauge")
		}
	}

	// observeRequest runs after the handler returns, so the last increments
	// can trail the clients' view of completion; give them a moment.
	want := fmt.Sprintf(`hsserve_requests_total{endpoint="predict",code="200"} %d`, clients*perClient)
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := scrape()
		if strings.Contains(body, want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("final scrape never showed %q; last scrape:\n%s", want, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
