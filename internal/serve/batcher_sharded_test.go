package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
)

// TestShardedBatcherDrainOnClose: with multiple shards, Close must still lose
// zero accepted jobs — every prediction either gets a real answer, a clean
// ErrClosed, or a clean ErrOverloaded, across all shard queues, and the
// flush-size observations account for exactly the answered predictions.
func TestShardedBatcherDrainOnClose(t *testing.T) {
	tr := newTestTrainer(t)
	_, valid := testData(t)

	var flushed atomic.Int64
	b := newBatcher(batcherConfig{
		shards:     4,
		maxBatch:   8,
		maxWait:    20 * time.Millisecond,
		queueDepth: 4,
		snap:       tr.Snapshot,
		observe:    func(n int) { flushed.Add(int64(n)) },
	})

	const n = 200
	var (
		answered atomic.Int64
		rejected atomic.Int64
		shed     atomic.Int64
		wg       sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := valid[i%len(valid)]
			cpi, err := b.predict(context.Background(), v.X, v.HW)
			switch {
			case err == nil && cpi > 0:
				answered.Add(1)
			case errors.Is(err, ErrClosed):
				rejected.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("request %d: cpi=%v err=%v", i, cpi, err)
			}
		}(i)
	}
	for deadline := time.Now().Add(5 * time.Second); b.queued() == 0 && answered.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no request ever reached the batcher")
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sharded shutdown left requests hanging")
	}
	if got := answered.Load() + rejected.Load() + shed.Load(); got != n {
		t.Fatalf("answered %d + rejected %d + shed %d != %d submitted",
			answered.Load(), rejected.Load(), shed.Load(), n)
	}
	if answered.Load() == 0 {
		t.Error("sharded drain answered nothing")
	}
	if flushed.Load() != answered.Load() {
		t.Errorf("flush observations account for %d items, want %d answered",
			flushed.Load(), answered.Load())
	}
	t.Logf("answered %d, rejected %d, shed %d across 4 shards",
		answered.Load(), rejected.Load(), shed.Load())
	if _, err := b.predict(context.Background(), valid[0].X, valid[0].HW); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close predict err = %v, want ErrClosed", err)
	}
}

// TestShardedWorkStealAndShedAccounting pins the submit policy across shards
// deterministically: with every worker parked, a submission whose round-robin
// home queue is full must steal a slot on the sibling shard (no shed), and
// once every shard's queue is full each further submission sheds exactly once
// into the shared counter.
func TestShardedWorkStealAndShedAccounting(t *testing.T) {
	tr := newTestTrainer(t)
	_, valid := testData(t)

	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	var sheds atomic.Int64
	snap := func() *core.Snapshot {
		entered <- struct{}{}
		<-gate
		return tr.Snapshot()
	}
	b := newBatcher(batcherConfig{
		shards:     2,
		maxBatch:   1,
		maxWait:    time.Millisecond,
		queueDepth: 1,
		snap:       snap,
		onShed:     func() { sheds.Add(1) },
	})
	defer b.Close()
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()

	// Park both workers: each takes one job off its queue (maxBatch 1 ends
	// the gather immediately) and blocks inside snap().
	parked := make([]chan error, 2)
	for i := range parked {
		parked[i] = make(chan error, 1)
	}
	for i := 0; i < 2; i++ {
		ch := parked[i]
		v := valid[i]
		go func() {
			_, err := b.predict(context.Background(), v.X, v.HW)
			ch <- err
		}()
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d never parked", i)
		}
	}

	// Fill the shard the NEXT submission will call home, directly: the next
	// predict must find its home queue full and steal the sibling's slot.
	home := b.shards[(b.rr.Load()+1)%2]
	stuffed := b.getJob()
	stuffed.x1[0], stuffed.hw1[0] = valid[2].X, valid[2].HW
	stuffed.xs, stuffed.hws, stuffed.out = stuffed.x1[:1], stuffed.hw1[:1], stuffed.o1[:1]
	home.queue <- stuffed

	stolen := make(chan error, 1)
	go func() {
		_, err := b.predict(context.Background(), valid[3].X, valid[3].HW)
		stolen <- err
	}()
	// The steal lands on the sibling queue; nothing sheds.
	for deadline := time.Now().Add(5 * time.Second); b.queued() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("stolen submission never enqueued on the sibling shard")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := sheds.Load(); got != 0 {
		t.Fatalf("work-steal shed %d submissions, want 0", got)
	}

	// Every queue is now full: each further submission sheds, and the shared
	// counter sums across shards.
	for i := 0; i < 3; i++ {
		if _, err := b.predict(context.Background(), valid[4+i].X, valid[4+i].HW); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("overflow predict %d err = %v, want ErrOverloaded", i, err)
		}
	}
	if got := sheds.Load(); got != 3 {
		t.Fatalf("shed counter = %d, want 3", got)
	}

	// Release the workers: every accepted job — parked, stuffed, stolen —
	// gets a real answer.
	close(gate)
	released = true
	for i, ch := range parked {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("parked job %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("parked job %d never answered", i)
		}
	}
	select {
	case err := <-stolen:
		if err != nil {
			t.Errorf("stolen job: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stolen job never answered")
	}
	select {
	case <-stuffed.done:
		if stuffed.err != nil || stuffed.o1[0] <= 0 {
			t.Errorf("stuffed job: cpi=%v err=%v", stuffed.o1[0], stuffed.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stuffed job never answered")
	}
}

// TestPredictManyBitIdenticalToSnapshot: the multi-item batch path — one job,
// contiguous PredictBatch sweeps, pooled buffers — must answer every item
// Float64bits-identical to a direct per-call Snapshot.PredictShard. Run twice
// so the second pass exercises fully warmed pools.
func TestPredictManyBitIdenticalToSnapshot(t *testing.T) {
	tr := newTestTrainer(t)
	_, valid := testData(t)
	b := newBatcher(batcherConfig{shards: 2, maxBatch: 4, maxWait: time.Millisecond, queueDepth: 16, snap: tr.Snapshot})
	defer b.Close()

	snap := tr.Snapshot()
	xs := make([]profile.Characteristics, len(valid))
	hws := make([]hwspace.Config, len(valid))
	for i, v := range valid {
		xs[i], hws[i] = v.X, v.HW
	}
	out := make([]float64, len(valid))
	for pass := 0; pass < 2; pass++ {
		for i := range out {
			out[i] = 0
		}
		if err := b.predictMany(context.Background(), xs, hws, out); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for i := range valid {
			want, err := snap.PredictShard(xs[i], hws[i])
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("pass %d item %d: batch %v != snapshot %v", pass, i, out[i], want)
			}
		}
	}

	// Empty batches are a no-op, not a queue round trip.
	if err := b.predictMany(context.Background(), nil, nil, nil); err != nil {
		t.Fatalf("empty predictMany: %v", err)
	}
}

// BenchmarkServePredictBatch measures the steady-state serving batch path end
// to end — pooled job, one queue round trip, contiguous PredictBatch sweeps —
// and asserts its allocation profile in the report (the hot path must be
// zero-allocation once pools are warm).
func BenchmarkServePredictBatch(b *testing.B) {
	tr := newTestTrainer(b)
	// MaxBatch 1: the serial benchmark's single multi-item job flushes
	// immediately instead of waiting out the gather window.
	s, err := New(Config{Trainer: tr, Shards: 1, MaxBatch: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	_, valid := testData(b)

	const batch = 64
	xs := make([]profile.Characteristics, batch)
	hws := make([]hwspace.Config, batch)
	for i := range xs {
		v := valid[i%len(valid)]
		xs[i], hws[i] = v.X, v.HW
	}
	out := make([]float64, batch)
	ctx := context.Background()
	if err := s.PredictMany(ctx, xs, hws, out); err != nil { // warm pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PredictMany(ctx, xs, hws, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batch), "preds/op")
}
