// Package serve is the prediction serving subsystem: an HTTP JSON service
// layered on the lock-free core.Snapshot architecture. It exposes
//
//	POST /v1/predict        single-shard and whole-application predictions
//	POST /v1/predict:batch  many predictions, coalesced across clients by
//	                        the micro-batcher into shared evaluator passes
//	POST /v1/samples        absorb new profiles; optionally trigger an
//	                        asynchronous model re-specification
//	GET  /v1/model          served-model provenance and fit-path counters
//	GET  /v1/lifecycle      continuous-learning control-loop status (404
//	                        unless Config.Lifecycle enables the loop)
//	GET  /healthz           liveness (and whether a model is being served)
//	GET  /metrics           Prometheus text exposition (metrics.go)
//
// The wire vocabulary is pkg/hsmodel's wire schema, so the CLI and the
// server speak the same types. Every handler runs under a per-request
// timeout; a Server drains its in-flight batches on Close; and the served
// snapshot can be hot-reloaded from the persistence format (Reload, wired to
// SIGHUP by cmd/hsserve) — the Trainer guarantees a failed retrain or a
// rejected reload never replaces the snapshot being served.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/lifecycle"
	"hsmodel/internal/profile"
	"hsmodel/pkg/hsmodel"
)

// Config configures a Server. The zero value of every optional field takes
// the documented default.
type Config struct {
	// Trainer is the model being served (required). It may be untrained, in
	// which case predictions answer 503 until a model is trained, adopted,
	// or reloaded.
	Trainer *core.Trainer
	// MaxBatch caps the predictions coalesced into one evaluator pass
	// (default 32).
	MaxBatch int
	// MaxWait is how long the batcher waits to fill a batch after the first
	// request arrives (default 2ms).
	MaxWait time.Duration
	// Shards is the number of independent batcher queue+worker pairs
	// (default GOMAXPROCS). Submitters spread across shards with a cheap
	// round-robin counter and steal a slot on a sibling queue before
	// shedding, so queue contention stays flat as cores are added.
	Shards int
	// QueueDepth bounds each shard's submit queue (default 4*MaxBatch). When
	// every shard's queue is full the request is shed: answered 429 with a
	// Retry-After hint instead of blocking behind saturated workers.
	QueueDepth int
	// RequestTimeout bounds each request's context (default 5s).
	RequestTimeout time.Duration
	// UpdateTimeout bounds asynchronous re-specifications triggered by
	// POST /v1/samples (default 5m).
	UpdateTimeout time.Duration
	// ModelPath, when non-empty, names the snapshot file Reload serves from.
	ModelPath string
	// Lifecycle, when non-nil, enables the continuous-learning control loop
	// (internal/lifecycle): POST /v1/samples feeds the loop's bounded stores
	// and drift detector instead of growing the trainer's store without
	// bound, and GET /v1/lifecycle reports loop status. The server owns the
	// controller and closes it on Close.
	Lifecycle *lifecycle.Config
	// Logger receives serving events (update/reload outcomes); nil discards.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.UpdateTimeout <= 0 {
		c.UpdateTimeout = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return c
}

// Server is the HTTP prediction service. Create with New, expose with
// Handler, and drain with Close after the HTTP listener has shut down.
type Server struct {
	cfg       Config
	trainer   *core.Trainer
	batcher   *batcher
	metrics   *metrics
	mux       *http.ServeMux
	lifecycle *lifecycle.Controller // nil unless Config.Lifecycle enables it

	updating atomic.Bool    // one asynchronous Update at a time
	updateWG sync.WaitGroup // Close waits for the in-flight one

	// Snapshot lifecycle tracking: publications are observed by pointer
	// identity whenever the server touches the snapshot.
	snapMu      sync.Mutex
	snapLast    *core.Snapshot
	snapVersion uint64
	snapSince   time.Time
}

// New builds a Server around cfg.Trainer.
func New(cfg Config) (*Server, error) {
	if cfg.Trainer == nil {
		return nil, errors.New("serve: Config.Trainer is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		trainer:   cfg.Trainer,
		metrics:   newMetrics(),
		snapSince: time.Now(),
	}
	s.batcher = newBatcher(batcherConfig{
		shards:     cfg.Shards,
		maxBatch:   cfg.MaxBatch,
		maxWait:    cfg.MaxWait,
		queueDepth: cfg.QueueDepth,
		snap:       s.trainer.Snapshot,
		observe:    s.metrics.observeBatch,
		onShed:     func() { s.metrics.shedsTotal.Add(1) },
	})
	if cfg.Lifecycle != nil {
		s.lifecycle = lifecycle.NewController(cfg.Trainer, *cfg.Lifecycle)
	}
	s.observeSnapshot()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict", s.instrument("predict", s.handlePredict))
	s.mux.HandleFunc("POST /v1/predict:batch", s.instrument("predict_batch", s.handleBatch))
	s.mux.HandleFunc("POST /v1/samples", s.instrument("samples", s.handleSamples))
	s.mux.HandleFunc("GET /v1/model", s.instrument("model", s.handleModel))
	s.mux.HandleFunc("GET /v1/lifecycle", s.instrument("lifecycle", s.handleLifecycle))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: every prediction already accepted by the batcher
// is answered and any in-flight asynchronous update completes. Call after
// the HTTP listener has stopped accepting requests (http.Server.Shutdown),
// so no handler can race the drain.
func (s *Server) Close() {
	s.batcher.Close()
	s.updateWG.Wait()
	if s.lifecycle != nil {
		s.lifecycle.Close()
	}
}

// Reload hot-swaps the served snapshot from Config.ModelPath (any loadable
// persistence version; the current family-aware v4 or the legacy v2/v3). A snapshot that fails validation — the typed
// core.ErrModel* persistence errors — leaves the served model untouched.
// cmd/hsserve wires this to SIGHUP.
func (s *Server) Reload() error {
	if s.cfg.ModelPath == "" {
		return errors.New("serve: no model path configured for reload")
	}
	snap, err := core.LoadSnapshot(s.cfg.ModelPath)
	if err != nil {
		s.metrics.reloadErrors.Add(1)
		s.cfg.Logger.Printf("serve: snapshot reload rejected: %v", err)
		return err
	}
	s.trainer.Adopt(snap)
	s.observeSnapshot()
	s.metrics.reloads.Add(1)
	s.cfg.Logger.Printf("serve: snapshot reloaded from %s (rung %s, %d rows)",
		s.cfg.ModelPath, snap.Rung(), snap.TrainedRows())
	return nil
}

// observeSnapshot tracks snapshot publications by pointer identity and
// returns the current version and its publication time.
func (s *Server) observeSnapshot() (uint64, time.Time, *core.Snapshot) {
	snap := s.trainer.Snapshot()
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if snap != s.snapLast {
		s.snapLast = snap //hslint:ignore snapimmutable snapLast is a scrape-time identity cache guarded by snapMu, not the served pointer (that stays in the Trainer's atomic.Pointer)
		s.snapVersion++
		s.snapSince = time.Now()
	}
	return s.snapVersion, s.snapSince, snap
}

// instrument wraps a handler with the per-request timeout and metrics.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		s.metrics.observeRequest(name, rec.code, time.Since(start).Seconds())
	}
}

// statusRecorder captures the response code for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps an error to its HTTP status and the shared wire
// ErrorResponse body.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, core.ErrNotTrained):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded):
		// Shed, not queued: tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = 499 // client closed request
	}
	writeJSON(w, code, hsmodel.ErrorResponse{Error: err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request: %w", err)
	}
	return nil
}

// Predict answers one shard prediction through the micro-batcher — the
// in-process form of POST /v1/predict, used by cmd/hsload to benchmark the
// serving path without HTTP overhead.
func (s *Server) Predict(ctx context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	return s.batcher.predict(ctx, x, hw)
}

// PredictMany answers a whole batch as one batcher submission: out[i]
// answers (xs[i], hws[i]); len(hws) and len(out) must be at least len(xs).
// One queue round trip covers the entire batch, and the worker answers it
// through contiguous Snapshot.PredictBatch sweeps — the in-process form of
// POST /v1/predict:batch. On a ctx error the out buffer must be discarded.
func (s *Server) PredictMany(ctx context.Context, xs []profile.Characteristics, hws []hwspace.Config, out []float64) error {
	return s.batcher.predictMany(ctx, xs, hws, out)
}

// predictOne answers one wire PredictRequest: single shards go through the
// micro-batcher; whole-application queries aggregate over one snapshot load.
func (s *Server) predictOne(ctx context.Context, req hsmodel.PredictRequest) (hsmodel.PredictResponse, error) {
	xs, hw, err := req.ShardInputs()
	if err != nil {
		return hsmodel.PredictResponse{}, err
	}
	if len(xs) == 1 && len(req.Shards) == 0 {
		cpi, err := s.batcher.predict(ctx, xs[0], hw)
		if err != nil {
			return hsmodel.PredictResponse{}, err
		}
		return hsmodel.PredictResponse{CPI: cpi, Shards: 1}, nil
	}
	cpi, err := s.trainer.Snapshot().PredictApplication(xs, hw)
	if err != nil {
		return hsmodel.PredictResponse{}, err
	}
	return hsmodel.PredictResponse{CPI: cpi, Shards: len(xs)}, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req hsmodel.PredictRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.predictOne(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req hsmodel.BatchPredictRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, errors.New("serve: batch request has no items"))
		return
	}
	// Single-shard items ride the batcher as ONE multi-item job — one queue
	// round trip for the whole request, answered in shared PredictBatch
	// sweeps (alongside items coalesced from other in-flight HTTP requests).
	// Whole-application items aggregate over one snapshot load, as in
	// predictOne.
	results := make([]hsmodel.BatchPredictItem, len(req.Requests))
	xs := make([]profile.Characteristics, 0, len(req.Requests))
	hws := make([]hwspace.Config, 0, len(req.Requests))
	idx := make([]int, 0, len(req.Requests))
	for i, pr := range req.Requests {
		shardXs, hw, err := pr.ShardInputs()
		if err != nil {
			results[i] = hsmodel.BatchPredictItem{Error: err.Error()}
			continue
		}
		if len(shardXs) == 1 && len(pr.Shards) == 0 {
			xs = append(xs, shardXs[0])
			hws = append(hws, hw)
			idx = append(idx, i)
			continue
		}
		cpi, err := s.trainer.Snapshot().PredictApplication(shardXs, hw)
		if err != nil {
			results[i] = hsmodel.BatchPredictItem{Error: err.Error()}
			continue
		}
		results[i] = hsmodel.BatchPredictItem{CPI: cpi, Shards: len(shardXs)}
	}
	if len(xs) > 0 {
		out := make([]float64, len(xs))
		if err := s.batcher.predictMany(r.Context(), xs, hws, out); err != nil {
			for _, i := range idx {
				results[i] = hsmodel.BatchPredictItem{Error: err.Error()}
			}
		} else {
			for k, i := range idx {
				results[i] = hsmodel.BatchPredictItem{CPI: out[k], Shards: 1}
			}
		}
	}
	writeJSON(w, http.StatusOK, hsmodel.BatchPredictResponse{Results: results})
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	var req hsmodel.SamplesRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Samples) == 0 {
		writeError(w, errors.New("serve: samples request has no samples"))
		return
	}
	samples := make([]core.Sample, len(req.Samples))
	for i, sw := range req.Samples {
		s, err := sw.ToSample()
		if err != nil {
			writeError(w, fmt.Errorf("serve: sample %d: %w", i, err))
			return
		}
		samples[i] = s
	}
	if s.lifecycle != nil {
		// Continuous-learning mode: samples feed the control loop's drift
		// detector and bounded stores, keeping server memory flat under an
		// unbounded stream; the loop decides when to retrain and promote.
		// The explicit Update flag still works and re-specifies the live
		// trainer over its (promotion-aligned) store.
		for _, sample := range samples {
			s.lifecycle.Submit(sample)
		}
	} else {
		// AddSamples is safe (and non-blocking) concurrently with an
		// in-flight Update: training captures its evaluator at run start, so
		// these rows take effect at the next re-specification.
		s.trainer.AddSamples(samples)
	}
	s.metrics.samplesAccepted.Add(uint64(len(samples)))
	resp := hsmodel.SamplesResponse{
		Accepted:     len(samples),
		TotalSamples: s.trainer.NumSamples(),
	}
	if req.Update {
		resp.UpdateStarted = s.triggerUpdate()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLifecycle reports the control loop's status; 404 when the loop is
// not enabled so probes can distinguish "disabled" from "unhealthy".
func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	if s.lifecycle == nil {
		writeJSON(w, http.StatusNotFound, hsmodel.ErrorResponse{Error: "serve: lifecycle loop not enabled"})
		return
	}
	writeJSON(w, http.StatusOK, s.lifecycle.Status())
}

// triggerUpdate starts one asynchronous re-specification if none is in
// flight. The Trainer's snapshot semantics make the failure path safe: an
// update that errors leaves the served snapshot untouched.
func (s *Server) triggerUpdate() bool {
	if !s.updating.CompareAndSwap(false, true) {
		return false
	}
	s.updateWG.Add(1)
	s.metrics.updatesStarted.Add(1)
	go func() {
		defer s.updateWG.Done()
		defer s.updating.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.UpdateTimeout)
		defer cancel()
		if err := s.trainer.Update(ctx); err != nil {
			s.metrics.updatesFailed.Add(1)
			s.cfg.Logger.Printf("serve: async update failed (snapshot retained): %v", err)
			return
		}
		s.metrics.updatesOK.Add(1)
		s.observeSnapshot()
	}()
	return true
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	version, since, snap := s.observeSnapshot()
	info := hsmodel.ModelInfo{
		TotalSamples:    s.trainer.NumSamples(),
		SnapshotVersion: version,
		SnapshotAgeSec:  time.Since(since).Seconds(),
	}
	if snap.Trained() {
		desc := snap.Describe()
		info.Trained = true
		info.Family = snap.Family()
		info.FamilyScores = snap.FamilyScores()
		info.Spec = desc.Spec
		info.Terms = desc.Terms
		info.Detail = desc.Detail
		info.Rung = snap.Rung().String()
		info.TrainedRows = snap.TrainedRows()
		info.ShardLen = snap.ShardLen()
	}
	st := s.trainer.FitPathStats()
	info.GramFits, info.QRFallbacks = st.GramFits, st.QRFallbacks
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, _, snap := s.observeSnapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"trained": snap.Trained(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	version, since, snap := s.observeSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var lc *lifecycleState
	if s.lifecycle != nil {
		st := s.lifecycle.Status()
		lc = &st
	}
	s.metrics.writeTo(w, snapshotState{
		version: version,
		age:     time.Since(since),
		trained: snap.Trained(),
		family:  snap.Family(),
	}, lc)
}

// batchMean exposes the observed mean coalesced-batch size (tests and the
// selfcheck assert coalescing happens).
func (s *Server) batchMean() float64 { return s.metrics.batchSize.mean() }

// BatchMean is the exported form for cmd/hsserve's selfcheck.
func (s *Server) BatchMean() float64 { return s.batchMean() }
