// Package serve is the prediction serving subsystem: an HTTP JSON service
// layered on the lock-free core.Snapshot architecture and, since the
// multi-model work, on internal/registry — a fleet of named model entries
// behind one listener. It exposes
//
//	POST /v1/predict        single-shard and whole-application predictions
//	POST /v1/predict:batch  many predictions, coalesced across clients by
//	                        the micro-batcher into shared evaluator passes
//	POST /v1/samples        absorb new profiles — fanned out to every
//	                        registered model whose application matches;
//	                        optionally trigger an asynchronous update
//	GET  /v1/model          served-model provenance and fit-path counters
//	GET  /v1/lifecycle      continuous-learning control-loop status (404
//	                        unless Config.Lifecycle enables the loop)
//	GET  /healthz           liveness (and whether a model is being served)
//	GET  /metrics           Prometheus text exposition (metrics.go)
//
//	GET    /v2/models                     registry listing + load state
//	POST   /v2/models                     register a model entry
//	DELETE /v2/models/{id}                unregister (drains the entry)
//	POST   /v2/models/{id}/predict        model-addressed predict
//	POST   /v2/models/{id}/predict:batch  model-addressed batch predict
//	POST   /v2/models/{id}/samples        entry-scoped samples (fan_out
//	                                      restores the /v1 fan-out)
//	GET    /v2/models/{id}/model          model-addressed provenance
//
// Every /v1/* route is an alias of the reserved "default" registry entry:
// its handlers run the same code paths against the same entry, so v1
// response bodies are bit-identical to the single-model server's (they
// additionally carry a Deprecation header pointing at the v2 successor).
// The {id} of a /v2 route is an exact entry id or the "app:<name>" alias
// routed over the registry's consistent-hash ring.
//
// The wire vocabulary is pkg/hsmodel's wire schema, so the CLI and the
// server speak the same types. Every handler runs under a per-request
// timeout; a Server drains every entry's in-flight batches on Close; and
// the default served snapshot can be hot-reloaded from the persistence
// format (Reload, wired to SIGHUP by cmd/hsserve) — the Trainer guarantees
// a failed retrain or a rejected reload never replaces the snapshot being
// served.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/lifecycle"
	"hsmodel/internal/profile"
	"hsmodel/internal/registry"
	"hsmodel/pkg/hsmodel"
)

// Config configures a Server. The zero value of every optional field takes
// the documented default.
type Config struct {
	// Trainer is the model served by the reserved "default" entry — the one
	// every /v1/* route addresses (required). It may be untrained, in which
	// case predictions answer 503 until a model is trained, adopted, or
	// reloaded.
	Trainer *core.Trainer
	// MaxBatch caps the predictions coalesced into one evaluator pass
	// (default 32).
	MaxBatch int
	// MaxWait is how long the batcher waits to fill a batch after the first
	// request arrives (default 2ms).
	MaxWait time.Duration
	// Shards is the number of independent batcher queue+worker pairs per
	// model entry (default GOMAXPROCS). Submitters spread across shards with
	// a cheap round-robin counter and steal a slot on a sibling queue before
	// shedding, so queue contention stays flat as cores are added.
	Shards int
	// QueueDepth bounds each shard's submit queue (default 4*MaxBatch). When
	// every shard's queue is full the request is shed: answered 429 with a
	// Retry-After hint instead of blocking behind saturated workers.
	QueueDepth int
	// QueueBound sheds predictions registry-wide: once the aggregate queued
	// predictions across every entry reach it, new predictions on any entry
	// answer 429 + Retry-After. 0 disables the aggregate bound (per-entry
	// shard shedding still applies).
	QueueBound int
	// RegistrySeed determinizes consistent-hash routing of "app:<name>"
	// model addresses.
	RegistrySeed uint64
	// MaxEvalCaches bounds how many entries keep their featurized evaluator
	// caches (default 4) so aggregate training memory stays flat as models
	// multiply.
	MaxEvalCaches int
	// RequestTimeout bounds each request's context (default 5s).
	RequestTimeout time.Duration
	// UpdateTimeout bounds asynchronous re-specifications triggered by
	// samples POSTs (default 5m).
	UpdateTimeout time.Duration
	// ModelPath, when non-empty, names the snapshot file Reload serves the
	// default entry from.
	ModelPath string
	// ManifestPath, when non-empty, names a multi-model manifest
	// (hsmodel.Manifest): its entries are registered at construction, and
	// the file is rewritten after every successful wire register/unregister
	// so the fleet survives a restart. The reserved "default" entry is never
	// part of the manifest.
	ManifestPath string
	// Lifecycle, when non-nil, enables the continuous-learning control loop
	// (internal/lifecycle) on the default entry: POST /v1/samples feeds the
	// loop's bounded stores and drift detector instead of growing the
	// trainer's store without bound, and GET /v1/lifecycle reports loop
	// status. Manifest entries opt in per model. The server owns every
	// controller and closes them on Close.
	Lifecycle *lifecycle.Config
	// Logger receives serving events (update/reload outcomes); nil discards.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.UpdateTimeout <= 0 {
		c.UpdateTimeout = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return c
}

// Server is the HTTP prediction service: a model registry behind the v1
// (default-entry alias) and v2 (model-addressed) route families. Create
// with New, expose with Handler, and drain with Close after the HTTP
// listener has shut down.
type Server struct {
	cfg     Config
	trainer *core.Trainer // the default entry's trainer
	reg     *registry.Registry
	def     *registry.Entry
	batcher *batcher // the default entry's raw batcher (in-process Predict path)
	metrics *metrics
	mux     *http.ServeMux

	// manifestReady gates manifest persistence until construction has fully
	// replayed the manifest, so a failed boot never truncates the file.
	manifestReady atomic.Bool
}

// New builds a Server: a registry whose reserved "default" entry serves
// cfg.Trainer, plus every entry of cfg.ManifestPath.
func New(cfg Config) (*Server, error) {
	if cfg.Trainer == nil {
		return nil, errors.New("serve: Config.Trainer is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		trainer: cfg.Trainer,
		metrics: newMetrics(),
	}
	s.reg = registry.New(registry.Config{
		Seed:          cfg.RegistrySeed,
		QueueBound:    cfg.QueueBound,
		MaxEvalCaches: cfg.MaxEvalCaches,
		NewBatcher:    s.newEntryBatcher,
		OnShed:        func() { s.metrics.registrySheds.Add(1) },
		OnChange:      s.persistManifest,
	})
	def, err := s.reg.RegisterTrainer(registry.Spec{
		ID:        hsmodel.DefaultModelID,
		ModelPath: cfg.ModelPath,
		ShardLen:  cfg.Trainer.ShardLen,
		Lifecycle: cfg.Lifecycle,
	}, cfg.Trainer)
	if err != nil {
		return nil, fmt.Errorf("serve: registering default entry: %w", err)
	}
	s.def = def
	if err := s.loadManifest(); err != nil {
		s.reg.Close()
		return nil, err
	}
	s.manifestReady.Store(true)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict", s.instrument("predict", s.v1Entry("predict", s.handlePredict)))
	s.mux.HandleFunc("POST /v1/predict:batch", s.instrument("predict_batch", s.v1Entry("predict_batch", s.handleBatch)))
	s.mux.HandleFunc("POST /v1/samples", s.instrument("samples", s.v1Entry("samples", s.handleSamples)))
	s.mux.HandleFunc("GET /v1/model", s.instrument("model", s.v1Entry("model", s.handleModel)))
	s.mux.HandleFunc("GET /v1/lifecycle", s.instrument("lifecycle", s.v1Entry("lifecycle", s.handleLifecycle)))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))

	s.mux.HandleFunc("GET /v2/models", s.instrument("v2_models", s.handleModels))
	s.mux.HandleFunc("POST /v2/models", s.instrument("v2_register", s.handleRegister))
	s.mux.HandleFunc("DELETE /v2/models/{id}", s.instrument("v2_unregister", s.handleUnregister))
	s.mux.HandleFunc("POST /v2/models/{id}/predict", s.v2Entry("v2_predict", s.handleV2Predict))
	s.mux.HandleFunc("POST /v2/models/{id}/predict:batch", s.v2Entry("v2_predict_batch", s.handleV2Batch))
	s.mux.HandleFunc("POST /v2/models/{id}/samples", s.v2Entry("v2_samples", s.handleV2Samples))
	s.mux.HandleFunc("GET /v2/models/{id}/model", s.v2Entry("v2_model", s.handleV2Model))
	return s, nil
}

// newEntryBatcher is the registry's batcher factory: every entry gets its
// own per-CPU sharded micro-batcher pinned to its own snapshot. The batch
// size and shed metrics are shared series; per-model load shows up in the
// hsserve_registry_model_* gauges.
func (s *Server) newEntryBatcher(e *registry.Entry) registry.Batcher {
	b := newBatcher(batcherConfig{
		shards:     s.cfg.Shards,
		maxBatch:   s.cfg.MaxBatch,
		maxWait:    s.cfg.MaxWait,
		queueDepth: s.cfg.QueueDepth,
		snap:       e.Trainer().Snapshot,
		observe:    s.metrics.observeBatch,
		onShed:     func() { s.metrics.shedsTotal.Add(1) },
	})
	if e.ID() == hsmodel.DefaultModelID {
		s.batcher = b // construction-time only: the in-process predict path
	}
	return entryBatcher{b}
}

// entryBatcher adapts the unexported micro-batcher to the registry's
// Batcher interface.
type entryBatcher struct{ b *batcher }

func (a entryBatcher) Predict(ctx context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	return a.b.predict(ctx, x, hw)
}

func (a entryBatcher) PredictMany(ctx context.Context, xs []profile.Characteristics, hws []hwspace.Config, out []float64) error {
	return a.b.predictMany(ctx, xs, hws, out)
}

func (a entryBatcher) Queued() int { return a.b.queued() }
func (a entryBatcher) Close()      { a.b.Close() }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model registry (read-mostly: cmd/hsserve's
// registrycheck and in-process embedders).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Close drains the server: every prediction already accepted by any entry's
// batcher is answered, in-flight asynchronous updates complete, and every
// lifecycle controller shuts down. Call after the HTTP listener has stopped
// accepting requests (http.Server.Shutdown), so no handler can race the
// drain.
func (s *Server) Close() {
	s.reg.Close()
}

// Reload hot-swaps the default entry's served snapshot from Config.ModelPath
// (any loadable persistence version; the current family-aware v4 or the
// legacy v2/v3). A snapshot that fails validation — the typed core.ErrModel*
// persistence errors — leaves the served model untouched. cmd/hsserve wires
// this to SIGHUP.
func (s *Server) Reload() error {
	if s.cfg.ModelPath == "" {
		return errors.New("serve: no model path configured for reload")
	}
	snap, err := core.LoadSnapshot(s.cfg.ModelPath)
	if err != nil {
		s.metrics.reloadErrors.Add(1)
		s.cfg.Logger.Printf("serve: snapshot reload rejected: %v", err)
		return err
	}
	s.trainer.Adopt(snap)
	s.def.ObserveSnapshot()
	s.metrics.reloads.Add(1)
	s.cfg.Logger.Printf("serve: snapshot reloaded from %s (rung %s, %d rows)",
		s.cfg.ModelPath, snap.Rung(), snap.TrainedRows())
	return nil
}

// loadManifest replays Config.ManifestPath into the registry. A missing file
// is an empty fleet, not an error; a malformed file or a failing entry is a
// loud construction failure — a misconfigured fleet should not boot half
// registered.
func (s *Server) loadManifest() error {
	if s.cfg.ManifestPath == "" {
		return nil
	}
	data, err := os.ReadFile(s.cfg.ManifestPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: reading manifest: %w", err)
	}
	var man hsmodel.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("serve: decoding manifest %s: %w", s.cfg.ManifestPath, err)
	}
	for _, req := range man.Models {
		if req.ID == hsmodel.DefaultModelID {
			return fmt.Errorf("serve: manifest %s declares the reserved %q entry", s.cfg.ManifestPath, hsmodel.DefaultModelID)
		}
		if _, err := s.reg.Register(specFromWire(req)); err != nil {
			return fmt.Errorf("serve: manifest entry %q: %w", req.ID, err)
		}
		s.cfg.Logger.Printf("serve: registered model %q (app %q) from manifest", req.ID, req.Application)
	}
	return nil
}

// persistManifest rewrites Config.ManifestPath from the live registry
// (atomically, default entry excluded). Wired as the registry's OnChange
// hook; a persistence failure is logged, never fatal to the mutation that
// triggered it.
func (s *Server) persistManifest() {
	if s.cfg.ManifestPath == "" || !s.manifestReady.Load() {
		return
	}
	var man hsmodel.Manifest
	for _, spec := range s.reg.Specs() {
		if spec.ID == hsmodel.DefaultModelID {
			continue
		}
		man.Models = append(man.Models, wireFromSpec(spec))
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		s.cfg.Logger.Printf("serve: encoding manifest: %v", err)
		return
	}
	tmp := s.cfg.ManifestPath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		s.cfg.Logger.Printf("serve: writing manifest: %v", err)
		return
	}
	if err := os.Rename(tmp, s.cfg.ManifestPath); err != nil {
		s.cfg.Logger.Printf("serve: replacing manifest: %v", err)
	}
}

// specFromWire converts the wire registration form to the registry spec.
func specFromWire(req hsmodel.RegisterRequest) registry.Spec {
	spec := registry.Spec{
		ID:          req.ID,
		Application: req.Application,
		ArchSpace:   req.ArchSpace,
		ModelPath:   req.ModelPath,
		Families:    req.Families,
		Seed:        req.Seed,
		ShardLen:    req.ShardLen,
		Population:  req.Population,
		Generations: req.Generations,
	}
	if req.Lifecycle != nil {
		lc := lifecycle.Config{
			MinProfiles:     req.Lifecycle.MinProfiles,
			CanaryTolerance: req.Lifecycle.CanaryTolerance,
			Seed:            req.Lifecycle.Seed,
		}
		lc.Drift.Threshold = req.Lifecycle.DriftThreshold
		spec.Lifecycle = &lc
	}
	return spec
}

// wireFromSpec is the manifest-persistence inverse of specFromWire.
func wireFromSpec(spec registry.Spec) hsmodel.RegisterRequest {
	req := hsmodel.RegisterRequest{
		ID:          spec.ID,
		Application: spec.Application,
		ArchSpace:   spec.ArchSpace,
		ModelPath:   spec.ModelPath,
		Families:    spec.Families,
		Seed:        spec.Seed,
		ShardLen:    spec.ShardLen,
		Population:  spec.Population,
		Generations: spec.Generations,
	}
	if spec.Lifecycle != nil {
		req.Lifecycle = &hsmodel.LifecycleWire{
			DriftThreshold:  spec.Lifecycle.Drift.Threshold,
			MinProfiles:     spec.Lifecycle.MinProfiles,
			CanaryTolerance: spec.Lifecycle.CanaryTolerance,
			Seed:            spec.Lifecycle.Seed,
		}
	}
	return req
}

// instrument wraps a handler with the per-request timeout and metrics.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		s.metrics.observeRequest(name, rec.code, time.Since(start).Seconds())
	}
}

// entryHandler is a handler bound to a resolved registry entry.
type entryHandler func(w http.ResponseWriter, r *http.Request, e *registry.Entry)

// v1Entry binds a handler to the reserved default entry, stamps the
// deprecation note pointing v1 clients at the v2 successor route, and feeds
// the per-model request counter. The response body is untouched — v1 stays
// bit-identical to the single-model server.
func (s *Server) v1Entry(endpoint string, h entryHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", `version="v1"`)
		w.Header().Set("Link", `</v2/models/`+hsmodel.DefaultModelID+`>; rel="successor-version"`)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r, s.def)
		s.metrics.observeModelRequest(hsmodel.DefaultModelID, endpoint, rec.code)
	}
}

// v2Entry resolves the {id} path value — an exact entry id or the
// "app:<name>" consistent-hash alias — instruments the request, and feeds
// the per-model request counter.
func (s *Server) v2Entry(endpoint string, h entryHandler) http.HandlerFunc {
	return s.instrument(endpoint, func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		e, ok := s.reg.Resolve(id)
		if !ok {
			writeError(w, fmt.Errorf("%w: %q", registry.ErrNotFound, id))
			return
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r, e)
		s.metrics.observeModelRequest(e.ID(), endpoint, rec.code)
	})
}

// statusRecorder captures the response code for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps an error to its HTTP status and the shared wire
// ErrorResponse body.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, core.ErrNotTrained):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed), errors.Is(err, registry.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded), errors.Is(err, registry.ErrOverloaded):
		// Shed, not queued: tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, registry.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, registry.ErrExists):
		code = http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = 499 // client closed request
	}
	writeJSON(w, code, hsmodel.ErrorResponse{Error: err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request: %w", err)
	}
	return nil
}

// Predict answers one shard prediction through the default entry's
// micro-batcher — the in-process form of POST /v1/predict, used by
// cmd/hsload to benchmark the serving path without HTTP overhead.
func (s *Server) Predict(ctx context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	return s.batcher.predict(ctx, x, hw)
}

// PredictMany answers a whole batch as one batcher submission on the default
// entry: out[i] answers (xs[i], hws[i]); len(hws) and len(out) must be at
// least len(xs). One queue round trip covers the entire batch, and the
// worker answers it through contiguous Snapshot.PredictBatch sweeps — the
// in-process form of POST /v1/predict:batch. On a ctx error the out buffer
// must be discarded.
func (s *Server) PredictMany(ctx context.Context, xs []profile.Characteristics, hws []hwspace.Config, out []float64) error {
	return s.batcher.predictMany(ctx, xs, hws, out)
}

// predictOne answers one wire PredictRequest against an entry: single shards
// go through the entry's micro-batcher; whole-application queries aggregate
// over one snapshot load.
func (s *Server) predictOne(ctx context.Context, e *registry.Entry, req hsmodel.PredictRequest) (hsmodel.PredictResponse, error) {
	xs, hw, err := req.ShardInputs()
	if err != nil {
		return hsmodel.PredictResponse{}, err
	}
	if len(xs) == 1 && len(req.Shards) == 0 {
		cpi, err := e.Predict(ctx, xs[0], hw)
		if err != nil {
			return hsmodel.PredictResponse{}, err
		}
		return hsmodel.PredictResponse{CPI: cpi, Shards: 1}, nil
	}
	cpi, err := e.Trainer().Snapshot().PredictApplication(xs, hw)
	if err != nil {
		return hsmodel.PredictResponse{}, err
	}
	return hsmodel.PredictResponse{CPI: cpi, Shards: len(xs)}, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	var req hsmodel.PredictRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.predictOne(r.Context(), e, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	var req hsmodel.BatchPredictRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, errors.New("serve: batch request has no items"))
		return
	}
	// Single-shard items ride the entry's batcher as ONE multi-item job —
	// one queue round trip for the whole request, answered in shared
	// PredictBatch sweeps (alongside items coalesced from other in-flight
	// HTTP requests). Whole-application items aggregate over one snapshot
	// load, as in predictOne.
	results := make([]hsmodel.BatchPredictItem, len(req.Requests))
	xs := make([]profile.Characteristics, 0, len(req.Requests))
	hws := make([]hwspace.Config, 0, len(req.Requests))
	idx := make([]int, 0, len(req.Requests))
	for i, pr := range req.Requests {
		shardXs, hw, err := pr.ShardInputs()
		if err != nil {
			results[i] = hsmodel.BatchPredictItem{Error: err.Error()}
			continue
		}
		if len(shardXs) == 1 && len(pr.Shards) == 0 {
			xs = append(xs, shardXs[0])
			hws = append(hws, hw)
			idx = append(idx, i)
			continue
		}
		cpi, err := e.Trainer().Snapshot().PredictApplication(shardXs, hw)
		if err != nil {
			results[i] = hsmodel.BatchPredictItem{Error: err.Error()}
			continue
		}
		results[i] = hsmodel.BatchPredictItem{CPI: cpi, Shards: len(shardXs)}
	}
	if len(xs) > 0 {
		out := make([]float64, len(xs))
		if err := e.PredictMany(r.Context(), xs, hws, out); err != nil {
			for _, i := range idx {
				results[i] = hsmodel.BatchPredictItem{Error: err.Error()}
			}
		} else {
			for k, i := range idx {
				results[i] = hsmodel.BatchPredictItem{CPI: out[k], Shards: 1}
			}
		}
	}
	writeJSON(w, http.StatusOK, hsmodel.BatchPredictResponse{Results: results})
}

// decodeSamples converts a wire samples body into core samples.
func decodeSamples(r *http.Request) (hsmodel.SamplesRequest, []core.Sample, error) {
	var req hsmodel.SamplesRequest
	if err := decodeJSON(r, &req); err != nil {
		return req, nil, err
	}
	if len(req.Samples) == 0 {
		return req, nil, errors.New("serve: samples request has no samples")
	}
	samples := make([]core.Sample, len(req.Samples))
	for i, sw := range req.Samples {
		sample, err := sw.ToSample()
		if err != nil {
			return req, nil, fmt.Errorf("serve: sample %d: %w", i, err)
		}
		samples[i] = sample
	}
	return req, samples, nil
}

// handleSamples is the v1 route: samples fan out to EVERY registered entry
// whose application scope matches each sample (the default entry's wildcard
// scope absorbs all of them — on a single-model server this is exactly the
// old behavior), and the acknowledgement reports the default entry's store.
func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	req, samples, err := decodeSamples(r)
	if err != nil {
		writeError(w, err)
		return
	}
	s.reg.Submit(samples)
	s.metrics.samplesAccepted.Add(uint64(len(samples)))
	resp := hsmodel.SamplesResponse{
		Accepted:     len(samples),
		TotalSamples: e.Trainer().NumSamples(),
	}
	if req.Update {
		resp.UpdateStarted = s.triggerUpdate(e)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleV2Samples is the model-addressed route: samples feed only the
// addressed entry, unless fan_out restores the registry-wide v1 semantics
// (the response then lists every model that absorbed samples).
func (s *Server) handleV2Samples(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	req, samples, err := decodeSamples(r)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := hsmodel.SamplesResponse{Accepted: len(samples)}
	if req.FanOut {
		resp.Models = s.reg.Submit(samples)
	} else {
		e.Absorb(samples)
	}
	s.metrics.samplesAccepted.Add(uint64(len(samples)))
	resp.TotalSamples = e.Trainer().NumSamples()
	if req.Update {
		resp.UpdateStarted = s.triggerUpdate(e)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLifecycle reports an entry's control loop status; 404 when the loop
// is not enabled so probes can distinguish "disabled" from "unhealthy".
func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	lc := e.Lifecycle()
	if lc == nil {
		writeJSON(w, http.StatusNotFound, hsmodel.ErrorResponse{Error: "serve: lifecycle loop not enabled"})
		return
	}
	writeJSON(w, http.StatusOK, lc.Status())
}

// triggerUpdate starts one asynchronous re-specification of the entry if
// none is in flight. The Trainer's snapshot semantics make the failure path
// safe: an update that errors leaves the served snapshot untouched.
func (s *Server) triggerUpdate(e *registry.Entry) bool {
	id := e.ID()
	started := e.TriggerUpdate(s.cfg.UpdateTimeout, func(err error) {
		if err != nil {
			s.metrics.updatesFailed.Add(1)
			s.cfg.Logger.Printf("serve: async update failed (snapshot retained): model %q: %v", id, err)
			return
		}
		s.metrics.updatesOK.Add(1)
	})
	if started {
		s.metrics.updatesStarted.Add(1)
	}
	return started
}

// modelInfo assembles the wire ModelInfo for an entry. The v1 route passes
// addressed=false so the body stays bit-identical to the single-model
// server; v2 additionally stamps the model address fields.
func (s *Server) modelInfo(e *registry.Entry, addressed bool) hsmodel.ModelInfo {
	version, since, snap := e.ObserveSnapshot()
	info := hsmodel.ModelInfo{
		TotalSamples:    e.Trainer().NumSamples(),
		SnapshotVersion: version,
		SnapshotAgeSec:  time.Since(since).Seconds(),
	}
	if addressed {
		info.Model = e.ID()
		info.Application = e.Application()
		info.ArchSpace = e.ArchSpace()
	}
	if snap.Trained() {
		desc := snap.Describe()
		info.Trained = true
		info.Family = snap.Family()
		info.FamilyScores = snap.FamilyScores()
		info.Spec = desc.Spec
		info.Terms = desc.Terms
		info.Detail = desc.Detail
		info.Rung = snap.Rung().String()
		info.TrainedRows = snap.TrainedRows()
		info.ShardLen = snap.ShardLen()
	}
	st := e.Trainer().FitPathStats()
	info.GramFits, info.QRFallbacks = st.GramFits, st.QRFallbacks
	return info
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	writeJSON(w, http.StatusOK, s.modelInfo(e, false))
}

func (s *Server) handleV2Model(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	writeJSON(w, http.StatusOK, s.modelInfo(e, true))
}

func (s *Server) handleV2Predict(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	s.handlePredict(w, r, e)
}

func (s *Server) handleV2Batch(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	s.handleBatch(w, r, e)
}

// modelStatus summarizes one entry for the registry listing and the scrape.
func (s *Server) modelStatus(e *registry.Entry) hsmodel.ModelStatus {
	version, _, snap := e.ObserveSnapshot()
	spec := e.Spec()
	ms := hsmodel.ModelStatus{
		ID:              e.ID(),
		Application:     e.Application(),
		ArchSpace:       e.ArchSpace(),
		Trained:         snap.Trained(),
		TotalSamples:    e.Trainer().NumSamples(),
		SnapshotVersion: version,
		QueueDepth:      e.QueueDepth(),
		ModelPath:       spec.ModelPath,
		Families:        spec.Families,
	}
	if snap.Trained() {
		ms.Family = snap.Family()
		ms.Rung = snap.Rung().String()
		ms.TrainedRows = snap.TrainedRows()
	}
	if lc := e.Lifecycle(); lc != nil {
		ms.Lifecycle = lc.Status().State
	}
	return ms
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	status := hsmodel.RegistryStatus{
		Models:     make([]hsmodel.ModelStatus, len(entries)),
		QueueDepth: s.reg.QueueDepth(),
		QueueBound: s.cfg.QueueBound,
		Default:    hsmodel.DefaultModelID,
	}
	for i, e := range entries {
		status.Models[i] = s.modelStatus(e)
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req hsmodel.RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.ID == "" {
		writeError(w, errors.New("serve: register request needs a model id"))
		return
	}
	if req.ID == hsmodel.DefaultModelID {
		writeError(w, fmt.Errorf("serve: model id %q is reserved for the v1 alias entry", hsmodel.DefaultModelID))
		return
	}
	e, err := s.reg.Register(specFromWire(req))
	if err != nil {
		writeError(w, err)
		return
	}
	s.cfg.Logger.Printf("serve: registered model %q (app %q)", e.ID(), e.Application())
	writeJSON(w, http.StatusCreated, s.modelStatus(e))
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == hsmodel.DefaultModelID {
		writeError(w, fmt.Errorf("serve: the reserved %q entry cannot be unregistered", hsmodel.DefaultModelID))
		return
	}
	if err := s.reg.Unregister(id); err != nil {
		writeError(w, err)
		return
	}
	s.cfg.Logger.Printf("serve: unregistered model %q", id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, _, snap := s.def.ObserveSnapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"trained": snap.Trained(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	version, since, snap := s.def.ObserveSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var lc *lifecycleState
	if defLC := s.def.Lifecycle(); defLC != nil {
		st := defLC.Status()
		lc = &st
	}
	entries := s.reg.Entries()
	reg := &registryScrape{
		depth:  s.reg.QueueDepth(),
		bound:  s.cfg.QueueBound,
		models: make([]modelScrape, len(entries)),
	}
	for i, e := range entries {
		v, _, esnap := e.ObserveSnapshot()
		m := modelScrape{
			id:        e.ID(),
			trained:   esnap.Trained(),
			version:   v,
			samples:   e.Trainer().NumSamples(),
			queued:    e.QueueDepth(),
			evalCache: e.Trainer().EvalCacheActive(),
		}
		if m.trained {
			m.trainedRows = esnap.TrainedRows()
		}
		reg.models[i] = m
	}
	s.metrics.writeTo(w, snapshotState{
		version: version,
		age:     time.Since(since),
		trained: snap.Trained(),
		family:  snap.Family(),
	}, lc, reg)
}

// batchMean exposes the observed mean coalesced-batch size (tests and the
// selfcheck assert coalescing happens).
func (s *Server) batchMean() float64 { return s.metrics.batchSize.mean() }

// BatchMean is the exported form for cmd/hsserve's selfcheck.
func (s *Server) BatchMean() float64 { return s.batchMean() }
