package lifecycle

import (
	"math"
	"testing"

	"hsmodel/internal/core"
)

// numbered returns a sample identified by its CPI label, so store tests can
// recover which submission a retained slot came from.
func numbered(i int) core.Sample {
	return core.Sample{App: "t", CPI: float64(i)}
}

func TestReservoirFillsThenStaysBounded(t *testing.T) {
	r := NewReservoir(50, 1)
	for i := 1; i <= 2000; i++ {
		r.Add(numbered(i))
		if r.Len() > r.Cap() {
			t.Fatalf("after %d adds: occupancy %d exceeds capacity %d", i, r.Len(), r.Cap())
		}
		if i <= 50 && r.Len() != i {
			t.Fatalf("after %d adds: occupancy %d, want every pre-fill sample kept", i, r.Len())
		}
	}
	if r.Len() != 50 {
		t.Fatalf("final occupancy %d, want full capacity 50", r.Len())
	}
	if r.Seen() != 2000 {
		t.Fatalf("seen %d, want 2000", r.Seen())
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(64, 42), NewReservoir(64, 42)
	other := NewReservoir(64, 43)
	for i := 1; i <= 5000; i++ {
		a.Add(numbered(i))
		b.Add(numbered(i))
		other.Add(numbered(i))
	}
	as, bs, os := a.Samples(), b.Samples(), other.Samples()
	differs := false
	for i := range as {
		if math.Float64bits(as[i].CPI) != math.Float64bits(bs[i].CPI) {
			t.Fatalf("slot %d: same seed diverged: %v vs %v", i, as[i].CPI, bs[i].CPI)
		}
		if math.Float64bits(as[i].CPI) != math.Float64bits(os[i].CPI) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds retained identical reservoirs")
	}
}

// TestReservoirUniformity checks the Algorithm-R invariant: after n >> cap
// submissions, the retained set is a uniform sample of the whole history, so
// each third of the submission range holds about a third of the slots and
// the mean retained index sits near the middle. The stream is deterministic,
// so the bounds are exact for this seed while still being ~4 sigma wide for
// a genuinely uniform sampler.
func TestReservoirUniformity(t *testing.T) {
	const capacity, n = 120, 6000
	r := NewReservoir(capacity, 7)
	for i := 1; i <= n; i++ {
		r.Add(numbered(i))
	}
	var thirds [3]int
	var sum float64
	for _, s := range r.Samples() {
		idx := int(s.CPI)
		thirds[(idx-1)*3/n]++
		sum += s.CPI
	}
	for k, c := range thirds {
		if c < 20 || c > 60 {
			t.Errorf("third %d retained %d of %d slots, want roughly uniform (~40)", k, c, capacity)
		}
	}
	mean := sum / capacity
	if mean < float64(n)/2-600 || mean > float64(n)/2+600 {
		t.Errorf("mean retained index %.0f, want near %d", mean, n/2)
	}
}

func TestRingKeepsMostRecentInOrder(t *testing.T) {
	g := NewRing(8)
	for i := 1; i <= 3; i++ {
		g.Add(numbered(i))
	}
	got := g.Samples()
	if len(got) != 3 || int(got[0].CPI) != 1 || int(got[2].CPI) != 3 {
		t.Fatalf("pre-fill ring %v, want [1 2 3]", got)
	}
	for i := 4; i <= 30; i++ {
		g.Add(numbered(i))
	}
	got = g.Samples()
	if len(got) != 8 {
		t.Fatalf("ring occupancy %d, want 8", len(got))
	}
	for k, s := range got {
		if want := 23 + k; int(s.CPI) != want {
			t.Fatalf("ring slot %d holds submission %d, want %d (oldest first)", k, int(s.CPI), want)
		}
	}
	if g.Seen() != 30 {
		t.Fatalf("seen %d, want 30", g.Seen())
	}
}
