// Bounded sample stores: the lifecycle controller's answer to "Beyond
// Profiling"'s observation that incoming profiles are a long-lived shared
// asset that must survive unbounded traffic. Two complementary structures
// keep memory exactly flat under millions of submissions:
//
//   - Reservoir: a seeded Algorithm-R reservoir sampler over the whole
//     submission history — every profile ever submitted has equal probability
//     of being retained, so the long tail of old regimes stays represented;
//   - Ring: the most recent N submissions verbatim — the fresh profiles the
//     paper's update protocol re-fits against (Section 3.3's 10–20 new
//     points live here).
//
// Both are deterministic given their seed and the submission order, so a
// scripted drift episode replays bit-identically. Neither is internally
// locked: the Controller serializes access under its own mutex.
package lifecycle

import (
	"hsmodel/internal/core"
	"hsmodel/internal/rng"
)

// Reservoir is a fixed-capacity uniform sample of everything ever added
// (Vitter's Algorithm R), deterministic in its seed.
type Reservoir struct {
	capacity int
	src      *rng.Source
	seen     uint64
	items    []core.Sample
}

// NewReservoir returns a reservoir retaining at most capacity samples.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{
		capacity: capacity,
		src:      rng.New(seed),
		items:    make([]core.Sample, 0, capacity),
	}
}

// Add offers one sample to the reservoir. Until the reservoir fills, every
// sample is kept; afterwards the i-th submission replaces a uniformly random
// slot with probability capacity/i, the invariant that makes the retained
// set a uniform sample of the whole history.
func (r *Reservoir) Add(s core.Sample) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, s)
		return
	}
	if j := r.src.Uint64() % r.seen; j < uint64(r.capacity) {
		r.items[j] = s
	}
}

// Len returns the current occupancy (bounded by Cap).
func (r *Reservoir) Len() int { return len(r.items) }

// Cap returns the retention capacity.
func (r *Reservoir) Cap() int { return r.capacity }

// Seen returns how many samples have been offered in total.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Samples returns a copy of the retained set (unspecified order).
func (r *Reservoir) Samples() []core.Sample {
	return append([]core.Sample(nil), r.items...)
}

// Ring is a fixed-capacity buffer of the most recent submissions.
type Ring struct {
	buf  []core.Sample
	next int
	full bool
	seen uint64
}

// NewRing returns a ring retaining the last capacity submissions.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]core.Sample, capacity)}
}

// Add records one submission, evicting the oldest once full.
func (g *Ring) Add(s core.Sample) {
	g.seen++
	g.buf[g.next] = s
	g.next++
	if g.next == len(g.buf) {
		g.next = 0
		g.full = true
	}
}

// Len returns the current occupancy (bounded by Cap).
func (g *Ring) Len() int {
	if g.full {
		return len(g.buf)
	}
	return g.next
}

// Cap returns the retention capacity.
func (g *Ring) Cap() int { return len(g.buf) }

// Seen returns how many samples have been offered in total.
func (g *Ring) Seen() uint64 { return g.seen }

// Samples returns a copy of the retained submissions, oldest first.
func (g *Ring) Samples() []core.Sample {
	if !g.full {
		return append([]core.Sample(nil), g.buf[:g.next]...)
	}
	out := make([]core.Sample, 0, len(g.buf))
	out = append(out, g.buf[g.next:]...)
	out = append(out, g.buf[:g.next]...)
	return out
}
