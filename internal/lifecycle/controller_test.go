package lifecycle

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/faultinject"
	"hsmodel/internal/genetic"
	"hsmodel/internal/trace"
)

// Fixtures are collected once: simulation dominates cost and the profiles
// are deterministic in the seed.
var (
	fixOnce   sync.Once
	fixTrain  []core.Sample
	fixStream []core.Sample
)

func fixtures(t testing.TB) (train, stream []core.Sample) {
	t.Helper()
	fixOnce.Do(func() {
		col := &core.Collector{ShardLen: 20_000, ShardPool: 12}
		apps := []*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}
		fixTrain = col.Collect(apps, 40, 7)
		fixStream = col.Collect(apps, 30, 21)
	})
	return fixTrain, fixStream
}

// newLiveTrainer returns a freshly trained small trainer, the incumbent the
// controller defends. Its clean-stream error is ~5% MedAPE, far under the
// default drift target, so clean traffic never trips the detector.
func newLiveTrainer(t testing.TB) *core.Trainer {
	t.Helper()
	train, _ := fixtures(t)
	tr := core.NewTrainer(append([]core.Sample(nil), train...))
	tr.ShardLen = 20_000
	tr.Search = genetic.Params{PopulationSize: 10, Generations: 2, Seed: 3}
	if err := tr.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	return tr
}

// episodeConfig is the shared tuning for scripted drift episodes: small
// bounded stores and a short gathering phase so one collected stream drives
// a full episode.
func episodeConfig(seed uint64) Config {
	return Config{
		// Boundary at Target+Slack = 0.25: the incumbent's ~5% clean error
		// and a promoted candidate's ~15-20% sit under it, the ~37% error of
		// a x1.6 regime shift sits far over it.
		Drift:        DriftConfig{Target: 0.2},
		MinProfiles:  10,
		MinTrainRows: 24,
		ReservoirCap: 64,
		RingCap:      32,
		Seed:         seed,
		Resilience:   core.Resilience{StepwiseBudget: 150},
	}
}

// drive submits the stream one sample at a time, waiting out any in-flight
// episode between submissions so the interleaving — the one nondeterministic
// ingredient — is pinned and runs replay exactly.
func drive(t testing.TB, c *Controller, stream []core.Sample) {
	t.Helper()
	for _, s := range stream {
		c.Submit(s)
		waitResolved(t, c)
	}
}

func waitResolved(t testing.TB, c *Controller) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := c.State()
		if st != StateRetraining && st != StateCanary {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("episode stuck in %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// shifted returns the stream with every CPI label run through the drift
// schedule, in submission order.
func shifted(stream []core.Sample, sched *faultinject.DriftSchedule) []core.Sample {
	out := append([]core.Sample(nil), stream...)
	for i := range out {
		out[i].CPI, _ = sched.Next(out[i].CPI)
	}
	return out
}

// TestLifecyclePromotionOnDrift drives the healthy path end to end: a step
// regime shift (x1.6 labels, ~37% incumbent error) trips the detector, fresh
// profiles gather, a shadow candidate trains on the shifted regime, wins the
// canary, and is promoted by an atomic snapshot swap.
func TestLifecyclePromotionOnDrift(t *testing.T) {
	tr := newLiveTrainer(t)
	_, stream := fixtures(t)
	before := tr.Snapshot()

	var transitions []string
	cfg := episodeConfig(11)
	cfg.OnTransition = func(from, to State, reason string) {
		transitions = append(transitions, fmt.Sprintf("%v->%v", from, to))
	}
	c := NewController(tr, cfg)
	defer c.Close()

	drifted := shifted(stream, &faultinject.DriftSchedule{
		Segments: []faultinject.DriftSegment{{From: 1, Factor: 1.6}},
	})
	drive(t, c, drifted)

	st := c.Status()
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d (status %+v; transitions %v), want exactly 1", st.Promotions, st, transitions)
	}
	if st.Rollbacks != 0 || st.LadderFailures != 0 {
		t.Errorf("rollbacks=%d ladderFailures=%d on the healthy path, want 0/0", st.Rollbacks, st.LadderFailures)
	}
	if st.State != StateStable.String() {
		t.Errorf("state %q after promotion, want stable", st.State)
	}
	if st.LastOutcome != "promoted" {
		t.Errorf("last outcome %q, want promoted", st.LastOutcome)
	}
	if tr.Snapshot() == before {
		t.Error("promotion did not swap the served snapshot")
	}
	// The promoted model tracks the shifted regime far better than the
	// incumbent's ~37% error.
	m, err := tr.EvaluateOn(drifted[len(drifted)-20:])
	if err != nil {
		t.Fatal(err)
	}
	if m.MedAPE > 0.20 {
		t.Errorf("promoted model MedAPE %.1f%% on shifted regime, want under 20%%", 100*m.MedAPE)
	}
}

// TestLifecycleRollbackOnRegression is the core safety property: a candidate
// trained on a noise-polluted store loses the canary, the served snapshot
// pointer NEVER moves (asserted by a concurrent reader for the whole
// episode), and the controller backs off into cooldown. Run under -race.
func TestLifecycleRollbackOnRegression(t *testing.T) {
	tr := newLiveTrainer(t)
	_, stream := fixtures(t)
	before := tr.Snapshot()

	cfg := episodeConfig(5)
	cfg.CanaryTolerance = 0.05
	c := NewController(tr, cfg)
	defer c.Close()

	// A transient x3 perturbation that ends before the retrain triggers: the
	// gathered store is poisoned with shifted labels, so the candidate fits
	// a biased mixture, while the canary set — clean holdout rows plus the
	// clean recent stream — favors the incumbent. The controller must catch
	// the regression and refuse to promote.
	polluted := shifted(stream, &faultinject.DriftSchedule{
		Segments: []faultinject.DriftSegment{{From: 11, To: 24, Factor: 3}},
	})

	// Concurrent reader: the served snapshot must be pointer-identical to
	// the pre-episode snapshot at every instant — a failed episode is never
	// allowed to publish, even transiently.
	stop := make(chan struct{})
	var swapped atomic.Bool
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if tr.Snapshot() != before {
					swapped.Store(true)
					return
				}
				if _, err := tr.PredictShard(stream[0].X, stream[0].HW); err != nil {
					return
				}
			}
		}
	}()

	for _, s := range polluted {
		c.Submit(s)
		waitResolved(t, c)
		if c.Status().Rollbacks > 0 {
			break
		}
	}
	close(stop)
	rwg.Wait()

	st := c.Status()
	if st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d (status %+v), want exactly 1", st.Rollbacks, st)
	}
	if st.LastOutcome != "rolled-back" {
		t.Errorf("last outcome %q, want rolled-back", st.LastOutcome)
	}
	if st.State != StateCooldown.String() {
		t.Errorf("state %q after rollback, want cooldown", st.State)
	}
	if st.CooldownRemaining == 0 {
		t.Error("cooldown remaining is 0 immediately after rollback")
	}
	if swapped.Load() {
		t.Fatal("served snapshot pointer moved during a rolled-back episode")
	}
	if tr.Snapshot() != before {
		t.Fatal("served snapshot differs after rollback: rollback must never publish")
	}
	if st.CanaryErr <= st.IncumbentErr {
		t.Errorf("rollback recorded canary %.3f <= incumbent %.3f: verdict inconsistent", st.CanaryErr, st.IncumbentErr)
	}
}

// TestLifecycleCooldownSuppressesRetraining: after a rollback, fresh drift
// must not start a new episode until the cooldown has elapsed, and the exit
// back to Stable resets the detector.
func TestLifecycleCooldownSuppressesRetraining(t *testing.T) {
	tr := newLiveTrainer(t)
	_, stream := fixtures(t)

	cfg := episodeConfig(5)
	cfg.CooldownBase = 40
	c := NewController(tr, cfg)
	defer c.Close()

	polluted := shifted(stream, &faultinject.DriftSchedule{
		Segments: []faultinject.DriftSegment{{From: 11, To: 24, Factor: 3}},
	})
	var used int
	for i, s := range polluted {
		c.Submit(s)
		waitResolved(t, c)
		if c.Status().Rollbacks > 0 {
			used = i + 1
			break
		}
	}
	st := c.Status()
	if st.Rollbacks != 1 || st.State != StateCooldown.String() {
		t.Fatalf("setup: expected a rollback into cooldown, got %+v", st)
	}
	retrainsAfterRollback := st.Retrains

	// Keep hammering with polluted samples: inside the cooldown window no
	// new episode may start no matter how bad the stream looks.
	remaining := int(st.CooldownRemaining)
	for i := 0; i < remaining; i++ {
		c.Submit(polluted[(used+i)%len(polluted)])
		if got := c.Status(); got.Retrains != retrainsAfterRollback {
			t.Fatalf("retrain started during cooldown (submission %d of %d)", i+1, remaining)
		}
	}
	// One more submission crosses the boundary back to Stable.
	c.Submit(polluted[used%len(polluted)])
	st = c.Status()
	if st.State != StateStable.String() {
		t.Fatalf("state %q after cooldown elapsed, want stable", st.State)
	}
	if st.DriftScore > 0.5 {
		t.Errorf("drift score %.2f after cooldown exit, want reset toward 0", st.DriftScore)
	}
}

// TestLifecycleStableOnCleanStream: clean traffic (incumbent error ~5%)
// never trips the detector and never starts an episode.
func TestLifecycleStableOnCleanStream(t *testing.T) {
	tr := newLiveTrainer(t)
	_, stream := fixtures(t)
	c := NewController(tr, episodeConfig(13))
	defer c.Close()
	for _, s := range stream {
		c.Submit(s)
	}
	st := c.Status()
	if st.State != StateStable.String() || st.Retrains != 0 {
		t.Fatalf("clean stream left controller at %+v, want stable with 0 retrains", st)
	}
}

// TestLifecycleFlatMemoryAt100k: store occupancy stays exactly at capacity
// through 100k submissions — the bounded-store contract that keeps a
// long-lived server flat.
func TestLifecycleFlatMemoryAt100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-submission soak skipped in -short")
	}
	tr := newLiveTrainer(t)
	_, stream := fixtures(t)
	cfg := episodeConfig(17)
	// A threshold no real stream reaches: this soak exercises the stores,
	// not the episode machinery.
	cfg.Drift = DriftConfig{Threshold: 1e18}
	c := NewController(tr, cfg)
	defer c.Close()

	const n = 100_000
	for i := 0; i < n; i++ {
		c.Submit(stream[i%len(stream)])
		if i == 1000 || i == 50_000 || i == n-1 {
			st := c.Status()
			if st.ReservoirLen > st.ReservoirCap || st.RingLen > st.RingCap {
				t.Fatalf("submission %d: occupancy %d/%d reservoir, %d/%d ring — store grew past its bound",
					i+1, st.ReservoirLen, st.ReservoirCap, st.RingLen, st.RingCap)
			}
		}
	}
	st := c.Status()
	if st.Submissions != n {
		t.Fatalf("submissions %d, want %d", st.Submissions, n)
	}
	if st.ReservoirLen != st.ReservoirCap || st.RingLen != st.RingCap {
		t.Fatalf("final occupancy %d/%d reservoir, %d/%d ring, want both exactly full",
			st.ReservoirLen, st.ReservoirCap, st.RingLen, st.RingCap)
	}
	if st.Retrains != 0 {
		t.Fatalf("soak started %d episodes, want 0", st.Retrains)
	}
}

// TestLifecycleDeterministicReplay runs the same promotion episode twice
// from scratch and requires bit-identical transition sequences and decision
// counters — the "every decision deterministic given a seed" contract.
func TestLifecycleDeterministicReplay(t *testing.T) {
	_, stream := fixtures(t)
	run := func() ([]string, Status) {
		tr := newLiveTrainer(t)
		var transitions []string
		cfg := episodeConfig(11)
		cfg.OnTransition = func(from, to State, reason string) {
			transitions = append(transitions, fmt.Sprintf("%v->%v: %s", from, to, reason))
		}
		c := NewController(tr, cfg)
		defer c.Close()
		drifted := shifted(stream, &faultinject.DriftSchedule{
			Segments: []faultinject.DriftSegment{{From: 1, Factor: 1.6}},
		})
		drive(t, c, drifted)
		return transitions, c.Status()
	}
	t1, s1 := run()
	t2, s2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("replay produced %d transitions vs %d:\n%v\nvs\n%v", len(t1), len(t2), t1, t2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Errorf("transition %d differs:\n  %s\nvs\n  %s", i, t1[i], t2[i])
		}
	}
	if s1 != s2 {
		t.Errorf("replay status differs:\n%+v\nvs\n%+v", s1, s2)
	}
}

// TestLifecycleCloseStopsEpisode: Close during a live episode cancels it and
// leaves the served snapshot untouched; Submits after Close are no-ops.
func TestLifecycleCloseStopsEpisode(t *testing.T) {
	tr := newLiveTrainer(t)
	_, stream := fixtures(t)
	before := tr.Snapshot()
	c := NewController(tr, episodeConfig(19))

	drifted := shifted(stream, &faultinject.DriftSchedule{
		Segments: []faultinject.DriftSegment{{From: 1, Factor: 1.6}},
	})
	for _, s := range drifted {
		c.Submit(s)
		if c.State() == StateRetraining {
			break
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	subs := c.Status().Submissions
	c.Submit(drifted[0])
	if got := c.Status().Submissions; got != subs {
		t.Errorf("Submit after Close advanced submissions %d -> %d", subs, got)
	}
	// The cancelled episode may have lost the canary race benignly, but it
	// must never have published mid-flight over the incumbent... unless it
	// legitimately promoted before Close won the race.
	st := c.Status()
	if st.Promotions == 0 && tr.Snapshot() != before {
		t.Error("cancelled episode replaced the served snapshot without a promotion")
	}
}
