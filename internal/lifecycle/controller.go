// Package lifecycle keeps a served model healthy under live drift: the
// continuous-learning control loop the paper sketches in Section 3.3
// ("re-specify the model when incoming profiles disagree with it") made
// operational. A Controller watches the sample stream, detects drift in
// prediction-vs-observed error, gathers fresh profiles into bounded stores,
// retrains a candidate in a shadow trainer on a background goroutine, scores
// it against a canary set, and promotes it with an atomic snapshot swap only
// if it beats the incumbent — otherwise it rolls back (the served pointer
// never moves) and backs off under an exponential, jittered cooldown.
//
// State machine:
//
//	Stable → DriftSuspected → Gathering → Retraining → Canary
//	                                                     ├─ Promote  → Stable
//	                                                     └─ Rollback → Cooldown → Stable
//
// Every decision is deterministic given Config.Seed and the submission
// order: cooldowns are counted in submissions (not wall clock), jitter and
// reservoir eviction come from seeded generators, and the canary/holdout
// split is a seeded shuffle. The only nondeterminism is how background
// retraining interleaves with new submissions, which tests resolve by
// polling Status between submissions.
package lifecycle

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/rng"
)

// State is a node of the controller's state machine.
type State int

const (
	// StateStable: the served model tracks observations; the detector watches.
	StateStable State = iota
	// StateDriftSuspected: the detector tripped; waiting for confirmation so
	// a single bad burst does not start an episode.
	StateDriftSuspected
	// StateGathering: drift confirmed; accumulating fresh post-drift profiles
	// until enough arrive to retrain (the paper's 10–20 new points).
	StateGathering
	// StateRetraining: a shadow trainer is fitting a candidate on a
	// background goroutine; serving continues on the incumbent snapshot.
	StateRetraining
	// StateCanary: the candidate is being scored against the held-out
	// reservoir split and the recent query stream.
	StateCanary
	// StateCooldown: a rollback or ladder failure occurred; retraining is
	// suppressed for an exponentially growing, jittered number of
	// submissions.
	StateCooldown
)

func (s State) String() string {
	switch s {
	case StateStable:
		return "stable"
	case StateDriftSuspected:
		return "drift-suspected"
	case StateGathering:
		return "gathering"
	case StateRetraining:
		return "retraining"
	case StateCanary:
		return "canary"
	case StateCooldown:
		return "cooldown"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes the control loop. The zero value of every field is replaced
// by a sensible default, so Config{} is a working configuration.
type Config struct {
	// Drift configures the streaming drift detector.
	Drift DriftConfig
	// ConfirmObservations is how many consecutive tripped observations turn
	// suspicion into a confirmed episode (default 3).
	ConfirmObservations int
	// MinProfiles is how many fresh post-drift samples must gather before a
	// retrain triggers (default 10, the paper's update-protocol floor).
	MinProfiles int
	// MinTrainRows is the minimum total training-set size for a retrain
	// (default 30): a candidate fit on fewer rows than the model has basis
	// columns would be noise.
	MinTrainRows int
	// ReservoirCap bounds the uniform long-term sample store (default 2048).
	ReservoirCap int
	// RingCap bounds the recent-sample ring (default 256).
	RingCap int
	// HoldoutFrac is the fraction of the reservoir held out of training and
	// reserved for canary scoring (default 0.25).
	HoldoutFrac float64
	// CanarySamples is how many of the most recent submissions join the
	// canary set as the live-stream proxy (default 8).
	CanarySamples int
	// CanaryTolerance is the relative slack the candidate gets: it is
	// promoted when candidateErr <= incumbentErr * (1 + CanaryTolerance)
	// (default 0.05). Negative tolerance demands strict improvement.
	CanaryTolerance float64
	// RetrainTimeout bounds one shadow training episode (default 2m).
	RetrainTimeout time.Duration
	// CooldownBase is the first cooldown length in submissions (default 64);
	// consecutive rollbacks double it up to CooldownMax (default 4096), plus
	// deterministic jitter of up to a quarter of the cooldown.
	CooldownBase int
	CooldownMax  int
	// Seed determinizes the reservoir, the holdout split, and the cooldown
	// jitter.
	Seed uint64
	// Resilience configures the shadow trainer's degradation ladder.
	// LastGoodPath is ignored: a shadow candidate must come from a real
	// search, never from disk.
	Resilience core.Resilience
	// WrapEvaluator, when non-nil, wraps the shadow trainer's fitness
	// evaluator — the fault-injection seam, mirroring core.Trainer.
	WrapEvaluator func(genetic.Evaluator) genetic.Evaluator
	// OnTransition, when non-nil, observes state changes. It is called with
	// the controller's lock held and must not call back into the Controller.
	OnTransition func(from, to State, reason string)
}

func (c Config) withDefaults() Config {
	c.Drift = c.Drift.withDefaults()
	if c.ConfirmObservations <= 0 {
		c.ConfirmObservations = 3
	}
	if c.MinProfiles <= 0 {
		c.MinProfiles = 10
	}
	if c.MinTrainRows <= 0 {
		c.MinTrainRows = 30
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = 2048
	}
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = 0.25
	}
	if c.CanarySamples <= 0 {
		c.CanarySamples = 8
	}
	if c.CanaryTolerance == 0 {
		c.CanaryTolerance = 0.05
	}
	if c.RetrainTimeout <= 0 {
		c.RetrainTimeout = 2 * time.Minute
	}
	if c.CooldownBase <= 0 {
		c.CooldownBase = 64
	}
	if c.CooldownMax <= 0 {
		c.CooldownMax = 4096
	}
	return c
}

// Status is a point-in-time view of the control loop, served by
// GET /v1/lifecycle and mirrored into /metrics.
type Status struct {
	State             string  `json:"state"`
	Submissions       uint64  `json:"submissions"`
	DriftScore        float64 `json:"drift_score"`
	ErrEWMA           float64 `json:"err_ewma"`
	ReservoirLen      int     `json:"reservoir_len"`
	ReservoirCap      int     `json:"reservoir_cap"`
	RingLen           int     `json:"ring_len"`
	RingCap           int     `json:"ring_cap"`
	FreshSamples      int     `json:"fresh_samples"`
	Retrains          uint64  `json:"retrains"`
	Promotions        uint64  `json:"promotions"`
	Rollbacks         uint64  `json:"rollbacks"`
	LadderFailures    uint64  `json:"ladder_failures"`
	CanaryErr         float64 `json:"canary_err"`
	IncumbentErr      float64 `json:"incumbent_err"`
	CooldownRemaining uint64  `json:"cooldown_remaining"`
	LastRung          string  `json:"last_rung"`
	LastOutcome       string  `json:"last_outcome"`
}

// Controller runs the continuous-learning loop around a live core.Trainer.
// Submit is the single entry point for observed samples; everything else is
// read-only inspection. The live trainer's served Snapshot is only ever
// replaced by a promotion — a failed or rolled-back episode leaves the
// pointer untouched, so concurrent predictions never observe a regressed
// model.
type Controller struct {
	cfg  Config
	live *core.Trainer

	mu        sync.Mutex
	state     State
	detector  *Detector
	reservoir *Reservoir
	ring      *Ring
	jitter    *rng.Source

	submissions   uint64
	fresh         int // post-confirmation samples gathered this episode
	confirm       int // consecutive tripped observations while suspected
	episodes      uint64
	cooldownUntil uint64
	rollbackRun   int // consecutive rollbacks, for exponential backoff

	retrains       uint64
	promotions     uint64
	rollbacks      uint64
	ladderFailures uint64
	canaryErr      float64
	incumbentErr   float64
	lastRung       core.Rung
	lastOutcome    string

	closed    bool
	ctx       context.Context
	cancel    context.CancelFunc
	retrainWG sync.WaitGroup
}

// NewController wires a control loop around the live trainer. The trainer's
// configuration fields (Search, Fitness, Stabilize, LogResponse, ShardLen)
// are mirrored into each shadow trainer, so they must be set before the
// first episode and not mutated afterwards — the same contract core.Trainer
// itself imposes.
func NewController(live *core.Trainer, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	src := rng.New(cfg.Seed)
	return &Controller{
		cfg:       cfg,
		live:      live,
		state:     StateStable,
		detector:  NewDetector(cfg.Drift),
		reservoir: NewReservoir(cfg.ReservoirCap, src.Fork(1).Uint64()),
		ring:      NewRing(cfg.RingCap),
		jitter:    src.Fork(2),
		ctx:       ctx,
		cancel:    cancel,
	}
}

// Submit feeds one observed sample through the control loop: the incumbent
// model predicts it, the error drives the drift detector, the sample lands
// in both bounded stores, and the state machine advances. Submit never
// blocks on training — episodes run on a background goroutine — and is safe
// for concurrent use. After Close it is a no-op.
func (c *Controller) Submit(s core.Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.submissions++

	tripped := c.detector.Tripped()
	if snap := c.live.Snapshot(); snap.Trained() && s.CPI > 0 {
		if pred, err := snap.PredictShard(s.X, s.HW); err == nil {
			tripped = c.detector.Observe((pred - s.CPI) / s.CPI)
		}
	}

	c.reservoir.Add(s)
	c.ring.Add(s)

	switch c.state {
	case StateStable:
		if tripped {
			c.confirm = 0
			c.transition(StateDriftSuspected, "drift detector tripped")
		}
	case StateDriftSuspected:
		if !tripped {
			c.transition(StateStable, "drift subsided before confirmation")
			break
		}
		c.confirm++
		if c.confirm >= c.cfg.ConfirmObservations {
			c.fresh = 0
			c.transition(StateGathering, "drift confirmed")
		}
	case StateGathering:
		c.fresh++
		if c.fresh >= c.cfg.MinProfiles {
			// startEpisode checks the real (deduplicated, canary-excluded)
			// training-set size; if it is still too thin we stay gathering
			// and try again next submission.
			c.startEpisode()
		}
	case StateRetraining, StateCanary:
		// The episode goroutine owns the next transition; samples keep
		// landing in the stores meanwhile.
	case StateCooldown:
		if c.submissions >= c.cooldownUntil {
			c.detector.Reset()
			c.transition(StateStable, "cooldown elapsed")
		}
	}
}

// startEpisode splits the stores into training and canary sets and launches
// the shadow retrain. Called with c.mu held.
func (c *Controller) startEpisode() {
	res := c.reservoir.Samples()
	recent := c.ring.Samples()

	// Seeded holdout split over the reservoir: these rows never reach the
	// shadow trainer, so the canary score is an honest out-of-sample check.
	split := c.jitter.Fork(3 + c.episodes)
	perm := split.Perm(len(res))
	nHold := int(float64(len(res)) * c.cfg.HoldoutFrac)
	if nHold < 1 && len(res) > 3 {
		nHold = 1
	}
	excluded := make(map[core.Sample]bool, nHold+c.cfg.CanarySamples)
	canary := make([]core.Sample, 0, nHold+c.cfg.CanarySamples)
	for _, i := range perm[:nHold] {
		if !excluded[res[i]] {
			excluded[res[i]] = true
			canary = append(canary, res[i])
		}
	}
	// The live-stream proxy: the most recent submissions join the canary set
	// and are likewise excluded from training.
	streamFrom := len(recent) - c.cfg.CanarySamples
	if streamFrom < 0 {
		streamFrom = 0
	}
	for _, s := range recent[streamFrom:] {
		if !excluded[s] {
			excluded[s] = true
			canary = append(canary, s)
		}
	}

	train := make([]core.Sample, 0, len(res)+len(recent))
	seen := make(map[core.Sample]bool, len(res)+len(recent))
	for _, s := range res {
		if !excluded[s] && !seen[s] {
			seen[s] = true
			train = append(train, s)
		}
	}
	for _, s := range recent {
		if !excluded[s] && !seen[s] {
			seen[s] = true
			train = append(train, s)
		}
	}
	if len(train) < c.cfg.MinTrainRows || len(canary) == 0 {
		// Not enough distinct rows survived the split; keep gathering.
		return
	}

	c.retrains++
	c.episodes++
	c.transition(StateRetraining, fmt.Sprintf("retrain #%d: %d train rows, %d canary rows", c.retrains, len(train), len(canary)))
	c.retrainWG.Add(1)
	go c.runEpisode(train, canary)
}

// runEpisode trains a candidate in a shadow trainer and decides promotion.
// Runs on its own goroutine; serving never blocks behind it.
func (c *Controller) runEpisode(train, canary []core.Sample) {
	defer c.retrainWG.Done()
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.RetrainTimeout)
	defer cancel()

	shadow := core.NewTrainer(train)
	shadow.Search = c.live.Search
	shadow.Fitness = c.live.Fitness
	shadow.Stabilize = c.live.Stabilize
	shadow.LogResponse = c.live.LogResponse
	shadow.ShardLen = c.live.ShardLen
	shadow.WrapEvaluator = c.cfg.WrapEvaluator
	shadow.Families = c.live.Families

	r := c.cfg.Resilience
	r.LastGoodPath = "" // a candidate must come from a search, never disk
	rep, err := shadow.TrainResilient(ctx, r)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastRung = rep.Rung
	if err != nil || rep.Rung == core.RungNone || rep.Rung == core.RungLastGood {
		// Every search rung failed: a fresh shadow has no last-good to fall
		// back to, so there is no candidate at all.
		c.ladderFailures++
		c.lastOutcome = "ladder-failed"
		c.beginCooldown("retrain ladder failed")
		return
	}
	candidate := shadow.Snapshot()

	c.transition(StateCanary, "candidate trained, scoring canary")
	candM, candErr := candidate.EvaluateOn(canary)
	incumbent := c.live.Snapshot()
	var incumbentAPE float64
	haveIncumbent := false
	if incumbent.Trained() {
		if m, err := incumbent.EvaluateOn(canary); err == nil {
			incumbentAPE = m.MedAPE
			haveIncumbent = true
		}
	}
	c.canaryErr = candM.MedAPE
	c.incumbentErr = incumbentAPE

	switch {
	case candErr != nil:
		c.ladderFailures++
		c.lastOutcome = "ladder-failed"
		c.beginCooldown("candidate unevaluable on canary set")
	case !haveIncumbent,
		candM.MedAPE <= incumbentAPE*(1+c.cfg.CanaryTolerance):
		c.promote(candidate, train)
	default:
		c.rollbacks++
		c.lastOutcome = "rolled-back"
		c.beginCooldown(fmt.Sprintf("canary regressed: candidate %.1f%% vs incumbent %.1f%%",
			100*candM.MedAPE, 100*incumbentAPE))
	}
}

// promote swaps the candidate in atomically and aligns the live trainer's
// sample store with the bounded training set, so a later manual retrain fits
// the same regime the promoted model was built on. Called with c.mu held.
func (c *Controller) promote(candidate *core.Snapshot, train []core.Sample) {
	c.live.SetSamples(train)
	c.live.Adopt(candidate)
	c.promotions++
	c.rollbackRun = 0
	c.lastOutcome = "promoted"
	c.detector.Reset()
	c.transition(StateStable, fmt.Sprintf("promoted candidate (canary %.1f%% vs incumbent %.1f%%)",
		100*c.canaryErr, 100*c.incumbentErr))
}

// beginCooldown enters Cooldown with exponential backoff and deterministic
// jitter, counted in submissions so replays are exact. Called with c.mu held.
func (c *Controller) beginCooldown(reason string) {
	c.rollbackRun++
	cool := c.cfg.CooldownBase
	for i := 1; i < c.rollbackRun && cool < c.cfg.CooldownMax; i++ {
		cool *= 2
	}
	if cool > c.cfg.CooldownMax {
		cool = c.cfg.CooldownMax
	}
	cool += c.jitter.Intn(cool/4 + 1)
	c.cooldownUntil = c.submissions + uint64(cool)
	c.transition(StateCooldown, fmt.Sprintf("%s; cooling down for %d submissions", reason, cool))
}

// transition moves the state machine and notifies the hook. Called with
// c.mu held.
func (c *Controller) transition(to State, reason string) {
	from := c.state
	if from == to {
		return
	}
	c.state = to
	if c.cfg.OnTransition != nil {
		c.cfg.OnTransition(from, to, reason)
	}
}

// State returns the current state-machine node.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Status returns a consistent point-in-time view of the loop.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	var cooldown uint64
	if c.state == StateCooldown && c.cooldownUntil > c.submissions {
		cooldown = c.cooldownUntil - c.submissions
	}
	return Status{
		State:             c.state.String(),
		Submissions:       c.submissions,
		DriftScore:        c.detector.Score(),
		ErrEWMA:           c.detector.EWMA(),
		ReservoirLen:      c.reservoir.Len(),
		ReservoirCap:      c.reservoir.Cap(),
		RingLen:           c.ring.Len(),
		RingCap:           c.ring.Cap(),
		FreshSamples:      c.fresh,
		Retrains:          c.retrains,
		Promotions:        c.promotions,
		Rollbacks:         c.rollbacks,
		LadderFailures:    c.ladderFailures,
		CanaryErr:         c.canaryErr,
		IncumbentErr:      c.incumbentErr,
		CooldownRemaining: cooldown,
		LastRung:          c.lastRung.String(),
		LastOutcome:       c.lastOutcome,
	}
}

// Close stops the loop: further Submits are no-ops, any in-flight episode is
// cancelled, and Close blocks until its goroutine has exited. Idempotent.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	c.retrainWG.Wait()
	return nil
}
