package lifecycle

import (
	"math"
	"testing"
)

func TestDetectorTripsOnSustainedError(t *testing.T) {
	d := NewDetector(DriftConfig{})
	for i := 0; i < 100; i++ {
		if d.Observe(0.05) {
			t.Fatalf("observation %d: tripped on healthy 5%% error stream", i+1)
		}
	}
	trippedAt := -1
	for i := 0; i < 50; i++ {
		if d.Observe(0.5) {
			trippedAt = i + 1
			break
		}
	}
	if trippedAt < 0 {
		t.Fatal("sustained 50% error never tripped the detector")
	}
	if trippedAt > 20 {
		t.Errorf("tripped after %d bad observations, want prompt (<=20)", trippedAt)
	}
	d.Reset()
	if d.Tripped() {
		t.Error("detector still tripped after Reset")
	}
	if d.Observations() != 0 {
		t.Errorf("observations %d after Reset, want 0", d.Observations())
	}
}

func TestDetectorIgnoresIsolatedOutlier(t *testing.T) {
	d := NewDetector(DriftConfig{})
	for i := 0; i < 30; i++ {
		d.Observe(0.05)
	}
	d.Observe(2.0) // one wild reading (200% error)
	for i := 0; i < 100; i++ {
		if d.Observe(0.05) {
			t.Fatalf("observation %d after outlier: detector tripped on a single spike", i+1)
		}
	}
}

func TestDetectorWarmupSuppressesEarlyTrips(t *testing.T) {
	d := NewDetector(DriftConfig{Warmup: 10})
	for i := 0; i < 9; i++ {
		if d.Observe(2.0) {
			t.Fatalf("observation %d: tripped before warmup", i+1)
		}
	}
}

func TestDetectorSanitizesNonFinite(t *testing.T) {
	d := NewDetector(DriftConfig{})
	d.Observe(math.Inf(1))
	d.Observe(math.Inf(-1))
	d.Observe(math.NaN())
	if e := d.EWMA(); math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
		t.Fatalf("EWMA %v poisoned by non-finite observations", e)
	}
	// Non-finite readings count as maximally bad (1.0), so a stream of them
	// still trips the detector instead of silently disabling it.
	tripped := false
	for i := 0; i < 30; i++ {
		tripped = d.Observe(math.NaN()) || tripped
	}
	if !tripped {
		t.Error("sustained non-finite readings never tripped the detector")
	}
}
