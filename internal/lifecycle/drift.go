package lifecycle

import "math"

// DriftConfig tunes the streaming drift detector. The zero value is replaced
// by withDefaults; all fields are plain numbers so a detector's behavior is a
// pure function of the observation stream.
type DriftConfig struct {
	// Alpha is the EWMA smoothing factor over |relative error| (default 0.1:
	// roughly a 10-observation memory, matching the paper's 10–20 fresh
	// profiles per update).
	Alpha float64
	// Target is the error level considered healthy (default 0.15, the paper's
	// 15% ErrThreshold from the update protocol in §3.3).
	Target float64
	// Slack is extra tolerance above Target before error accumulates into the
	// CUSUM statistic (default 0.05): brief excursions decay instead of
	// tripping the detector.
	Slack float64
	// Threshold is the CUSUM level that trips the detector (default 1.0 —
	// about ten consecutive observations running 10 points over Target+Slack).
	Threshold float64
	// Warmup is how many observations must arrive before the detector may
	// trip (default 10): the EWMA needs seeding before it means anything.
	Warmup int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.1
	}
	if c.Target <= 0 {
		c.Target = 0.15
	}
	if c.Slack < 0 {
		c.Slack = 0.05
	}
	if c.Threshold <= 0 {
		c.Threshold = 1.0
	}
	if c.Warmup <= 0 {
		c.Warmup = 10
	}
	return c
}

// Detector watches a stream of prediction-vs-observed relative errors and
// trips when the smoothed error has run persistently above the healthy
// target: an EWMA filters per-sample jitter, and a one-sided CUSUM
// accumulates how far the smoothed error exceeds Target+Slack, so a regime
// shift (sustained excess) trips while an isolated outlier decays. Fully
// deterministic in the observation stream; not internally locked (the
// Controller serializes Observe under its mutex).
type Detector struct {
	cfg   DriftConfig
	ewma  float64
	cusum float64
	n     int
}

// NewDetector returns a detector with cfg (zero fields defaulted).
func NewDetector(cfg DriftConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Observe feeds one |relative error| observation and reports whether the
// detector is tripped after it. Non-finite observations are treated as a
// maximally bad reading (1.0 relative error) rather than poisoning the EWMA.
func (d *Detector) Observe(relErr float64) bool {
	if math.IsNaN(relErr) || math.IsInf(relErr, 0) {
		relErr = 1.0
	}
	relErr = math.Abs(relErr)
	d.n++
	if d.n == 1 {
		d.ewma = relErr
	} else {
		d.ewma = d.cfg.Alpha*relErr + (1-d.cfg.Alpha)*d.ewma
	}
	d.cusum = math.Max(0, d.cusum+d.ewma-(d.cfg.Target+d.cfg.Slack))
	return d.Tripped()
}

// Tripped reports whether the accumulated excess error has crossed the
// threshold (after warmup).
func (d *Detector) Tripped() bool {
	return d.n >= d.cfg.Warmup && d.cusum >= d.cfg.Threshold
}

// Reset clears the CUSUM accumulator and warmup counter after a promotion or
// rollback, so the next episode judges the new regime from scratch. The EWMA
// is kept as the starting estimate: the error level itself did not reset.
func (d *Detector) Reset() {
	d.cusum = 0
	d.n = 0
}

// Score returns the current CUSUM statistic (the drift score exported to
// metrics) and EWMA returns the smoothed relative error.
func (d *Detector) Score() float64 { return d.cusum }

// EWMA returns the current smoothed |relative error|.
func (d *Detector) EWMA() float64 { return d.ewma }

// Observations returns how many errors have been observed since the last
// Reset.
func (d *Detector) Observations() int { return d.n }
