// Interprocedural layer: a package-level call graph plus per-function
// summaries the concurrency analyzers (gorolife, atomicpub, boundedgrowth)
// query. PR 5's analyzers walked one function at a time; the bug classes
// added here — a goroutine whose join lives in a different function, a field
// published atomically in one method and read plainly in another, a map that
// grows on the request path while its eviction sits behind a helper — are
// invisible at that granularity. A Summary records what one function-like
// body *does* (spawns, joins, channel traffic, atomic and growth accesses);
// the PkgSummary stitches them into a graph whose edges are static calls,
// function references (a method value handed to a mux is an edge — the
// handler runs even though no call expression names it), and spawns.
//
// Summaries are computed once per package and shared by every analyzer in
// the run (Pass.Summary memoizes on the Package).
package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// GrowKind classifies a growth site.
type GrowKind string

const (
	// GrowAppend is v = append(v, ...) onto a long-lived slice.
	GrowAppend GrowKind = "append"
	// GrowMapInsert is m[k] = v / m[k]++ / m[k] += x into a long-lived map.
	GrowMapInsert GrowKind = "map insert"
)

// GrowSite is one statement that can grow a long-lived container.
type GrowSite struct {
	Pos    token.Pos
	Target *types.Var // the field or package-level var that grows
	Kind   GrowKind
	Name   string // rendered target expression, for diagnostics
}

// SpawnSite is one `go` statement.
type SpawnSite struct {
	Stmt *ast.GoStmt
	// Body summarizes a spawned function literal (go func(){...}()); nil when
	// the spawn calls a named function.
	Body *Summary
	// Callee is the spawned named function, nil for literals or dynamic
	// values (go f() where f is a variable).
	Callee *types.Func
	// CalleeLocal reports whether Callee is declared in this package (its
	// summary is available).
	CalleeLocal bool
	// RecvRoot is the root object of the callee's receiver expression for
	// method spawns (go hs.Serve(ln) -> the object of hs), nil otherwise.
	RecvRoot types.Object
	// Dynamic marks spawns of non-constant function values the graph cannot
	// resolve.
	Dynamic bool
}

// Summary is what one function-like body does, as far as the concurrency
// analyzers care. "Function-like" covers declared functions and methods and
// the bodies of spawned function literals; a non-spawned literal (a deferred
// closure, a callback built and invoked in place) is folded into its
// enclosing function, because it runs within that function's dynamic extent.
type Summary struct {
	// Decl/Obj identify a declared function; both are nil for the body of a
	// spawned function literal.
	Decl *ast.FuncDecl
	Obj  *types.Func

	// Calls are static callees (any package); Refs are in-package functions
	// referenced without being called (method values, funcs stored in vars or
	// structs — they may run later, so the graph treats a reference as an
	// edge).
	Calls map[*types.Func]bool
	Refs  map[*types.Func]bool

	// Spawns are the `go` statements in this body (not those of nested
	// spawned literals — each spawned literal owns its own Summary).
	Spawns []*SpawnSite

	// WaitGroup traffic, keyed by the variable or field identity.
	WGAdds  map[*types.Var]bool
	WGDones map[*types.Var]bool
	WGWaits map[*types.Var]bool

	// Channel traffic, keyed by the variable or field identity.
	ChanCloses map[*types.Var]bool
	ChanRecvs  map[*types.Var]bool // receive exprs and range-over-channel
	ChanSends  map[*types.Var]bool

	// UsesContext reports that the body consumes a cancellable context:
	// ctx.Done()/Err()/Deadline(), or a context value passed on to a callee.
	UsesContext bool

	// AtomicFields are fields/package vars accessed through the sync/atomic
	// function API (&x passed to atomic.AddUint64 and friends).
	AtomicFields map[*types.Var]bool

	// Grows and Bounds drive boundedgrowth: growth sites in this body, and
	// the targets for which this body carries eviction/cap evidence —
	// delete(v, k), clear(v), a truncating self-assignment v = v[...],
	// v = nil, a make() reset, or a len(v) comparison.
	Grows  []GrowSite
	Bounds map[*types.Var]bool

	// CloseRoots are root objects on which this body calls a shutdown-shaped
	// method (Close, Shutdown, Stop, Wait): `go hs.Serve(ln)` is supervised
	// when hs.Shutdown is reachable.
	CloseRoots map[types.Object]bool
}

func newSummary() *Summary {
	return &Summary{
		Calls:        make(map[*types.Func]bool),
		Refs:         make(map[*types.Func]bool),
		WGAdds:       make(map[*types.Var]bool),
		WGDones:      make(map[*types.Var]bool),
		WGWaits:      make(map[*types.Var]bool),
		ChanCloses:   make(map[*types.Var]bool),
		ChanRecvs:    make(map[*types.Var]bool),
		ChanSends:    make(map[*types.Var]bool),
		AtomicFields: make(map[*types.Var]bool),
		Bounds:       make(map[*types.Var]bool),
		CloseRoots:   make(map[types.Object]bool),
	}
}

// PkgSummary is the package-level view: every declared function's summary in
// declaration order, indexed by object, plus the spawn sites of the whole
// package (including those inside spawned literals, transitively).
type PkgSummary struct {
	Funcs map[*types.Func]*Summary
	All   []*Summary // declared functions, file/decl order
}

// Summarize builds (or returns the memoized) PkgSummary for the pass's
// package.
func (p *Pass) Summary() *PkgSummary {
	if p.pkg.summary == nil {
		p.pkg.summary = summarize(p)
	}
	return p.pkg.summary
}

func summarize(p *Pass) *PkgSummary {
	ps := &PkgSummary{Funcs: make(map[*types.Func]*Summary)}
	eachFuncDecl(p, func(fd *ast.FuncDecl) {
		sum := newSummary()
		sum.Decl = fd
		sum.Obj, _ = p.Info.ObjectOf(fd.Name).(*types.Func)
		walkBody(p, sum, fd, fd.Body)
		ps.All = append(ps.All, sum)
		if sum.Obj != nil {
			ps.Funcs[sum.Obj] = sum
		}
	})
	return ps
}

// receiverObj returns the object of fd's receiver variable, nil for plain
// functions (and anonymous receivers).
func receiverObj(p *Pass, fd *ast.FuncDecl) types.Object {
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.ObjectOf(fd.Recv.List[0].Names[0])
}

// refVar resolves an expression to the variable identity the summaries key
// on: the field object for selector chains (shared across instances — every
// sh.workerDone names the same field), the variable object for identifiers.
func refVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := info.ObjectOf(e).(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := info.ObjectOf(e.Sel).(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return refVar(info, e.X)
	case *ast.StarExpr:
		return refVar(info, e.X)
	case *ast.IndexExpr:
		return refVar(info, e.X)
	}
	return nil
}

// isWaitGroup reports whether t is sync.WaitGroup.
func isWaitGroup(t types.Type) bool { return namedIn(t, "sync", "WaitGroup") }

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// closeVerbs are the method names that count as shutting a resource down.
var closeVerbs = map[string]bool{"Close": true, "Shutdown": true, "Stop": true, "Wait": true}

// walkBody fills sum from one function-like body. fd is the enclosing
// declaration (for receiver identity); it is passed through to spawned
// literals, whose captures still root at the enclosing receiver.
func walkBody(p *Pass, sum *Summary, fd *ast.FuncDecl, body ast.Node) {
	info := p.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			site := &SpawnSite{Stmt: n}
			switch fun := n.Call.Fun.(type) {
			case *ast.FuncLit:
				site.Body = newSummary()
				walkBody(p, site.Body, fd, fun.Body)
			default:
				if callee := calledFunc(info, n.Call); callee != nil {
					if f, ok := callee.(*types.Func); ok {
						site.Callee = f
						site.CalleeLocal = f.Pkg() == p.Pkg
					}
				} else {
					site.Dynamic = true
				}
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					site.RecvRoot = rootObject(info, sel.X)
				}
				// Spawn arguments are evaluated in this body.
				for _, arg := range n.Call.Args {
					walkExprInto(p, sum, arg)
				}
			}
			sum.Spawns = append(sum.Spawns, site)
			// A spawned literal's body belongs to the goroutine, not to this
			// function's dynamic extent.
			if site.Body != nil {
				return false
			}
			return false

		case *ast.CallExpr:
			recordCall(p, sum, fd, n)
			return true

		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if v := refVar(info, n.X); v != nil && isChanType(v.Type()) {
					sum.ChanRecvs[v] = true
				}
			}
			return true

		case *ast.SendStmt:
			if v := refVar(info, n.Chan); v != nil {
				sum.ChanSends[v] = true
			}
			return true

		case *ast.RangeStmt:
			if isChanType(p.TypeOf(n.X)) {
				if v := refVar(info, n.X); v != nil {
					sum.ChanRecvs[v] = true
				}
			}
			return true

		case *ast.AssignStmt:
			recordAssign(p, sum, fd, n)
			return true

		case *ast.IncDecStmt:
			if ix, ok := n.X.(*ast.IndexExpr); ok {
				recordGrowTarget(p, sum, fd, ix, GrowMapInsert)
			}
			return true

		case *ast.BinaryExpr:
			// len(v) compared against a nonzero bound is cap evidence for v.
			// Comparisons against literal 0 are emptiness checks, not caps.
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				for i, side := range []ast.Expr{n.X, n.Y} {
					call, ok := side.(*ast.CallExpr)
					if !ok || !isBuiltin(p, call, "len") || len(call.Args) != 1 {
						continue
					}
					other := n.Y
					if i == 1 {
						other = n.X
					}
					if tv, ok := info.Types[other]; ok && tv.Value != nil {
						if val, isInt := constant.Int64Val(tv.Value); isInt && val == 0 {
							continue
						}
					}
					if v := refVar(info, call.Args[0]); v != nil {
						sum.Bounds[v] = true
					}
				}
			}
			return true

		case *ast.Ident:
			// A referenced (not called) in-package function is a graph edge:
			// it may run later (handler tables, method values).
			if f, ok := info.Uses[n].(*types.Func); ok && f.Pkg() == p.Pkg {
				sum.Refs[f] = true
			}
			return true
		}
		return true
	})
}

// walkExprInto records effects of an expression (spawn arguments) into sum.
func walkExprInto(p *Pass, sum *Summary, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			recordCall(p, sum, nil, call)
		}
		return true
	})
}

// recordCall classifies one call expression into sum.
func recordCall(p *Pass, sum *Summary, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := p.Info

	// Builtins: close, delete, clear.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := info.ObjectOf(id).(*types.Builtin); isB {
			switch id.Name {
			case "close":
				if len(call.Args) == 1 {
					if v := refVar(info, call.Args[0]); v != nil {
						sum.ChanCloses[v] = true
					}
				}
			case "delete", "clear":
				if len(call.Args) >= 1 {
					if v := refVar(info, call.Args[0]); v != nil {
						sum.Bounds[v] = true
					}
				}
			}
			return
		}
	}

	callee := calledFunc(info, call)
	if f, ok := callee.(*types.Func); ok {
		sum.Calls[f] = true
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		recvT := p.TypeOf(sel.X)
		method := sel.Sel.Name

		// WaitGroup protocol.
		if isWaitGroup(recvT) {
			if v := refVar(info, sel.X); v != nil {
				switch method {
				case "Add":
					sum.WGAdds[v] = true
				case "Done":
					sum.WGDones[v] = true
				case "Wait":
					sum.WGWaits[v] = true
				}
			}
		}

		// ctx.Done()/Err()/Deadline() consume cancellation.
		if isContextType(recvT) && (method == "Done" || method == "Err" || method == "Deadline") {
			sum.UsesContext = true
		}

		// Shutdown-shaped calls on a named root: go hs.Serve(ln) is
		// supervised when hs.Shutdown()/hs.Close() appears in the package.
		if closeVerbs[method] {
			if root := rootObject(info, sel.X); root != nil {
				sum.CloseRoots[root] = true
			}
		}

		// sync/atomic function API: &x.f handed to atomic.AddUint64 et al.
		if obj := info.ObjectOf(sel.Sel); isFromPkg(obj, "sync/atomic") {
			for _, arg := range call.Args {
				if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
					if v := refVar(info, un.X); v != nil {
						sum.AtomicFields[v] = true
					}
				}
			}
		}
	}

	// A context value passed onward keeps the work cancellable.
	for _, arg := range call.Args {
		if isContextType(p.TypeOf(arg)) {
			sum.UsesContext = true
		}
	}
}

// recordAssign classifies one assignment: growth (append onto / insert into
// a long-lived container) or bound evidence (truncation, nil/make reset).
func recordAssign(p *Pass, sum *Summary, fd *ast.FuncDecl, as *ast.AssignStmt) {
	info := p.Info
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}

		// Map insert: m[k] = v, m[k] += v (also via token.ASSIGN and every
		// compound op — all create the key when absent).
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if isMapType(p.TypeOf(ix.X)) {
				recordGrowTarget(p, sum, fd, ix, GrowMapInsert)
			}
			continue
		}

		v := refVar(info, lhs)
		if v == nil || rhs == nil {
			continue
		}

		switch r := rhs.(type) {
		case *ast.CallExpr:
			if isBuiltin(p, r, "append") && len(r.Args) > 0 {
				if refVar(info, r.Args[0]) == v {
					if _, trunc := r.Args[0].(*ast.SliceExpr); trunc {
						// v = append(v[:i], v[j:]...): an eviction.
						sum.Bounds[v] = true
					} else {
						recordGrowVar(p, sum, fd, lhs, v, GrowAppend)
					}
					continue
				}
			}
			// v = make(...) is deliberately NOT evidence: it is the lazy-init
			// idiom far more often than a flush, and genuine flush-at-cap
			// patterns carry a len(v) comparison that already counts.
		case *ast.SliceExpr:
			if refVar(info, r.X) == v {
				sum.Bounds[v] = true // v = v[:n]
				continue
			}
		}
		if tv, ok := info.Types[rhs]; ok && tv.IsNil() {
			sum.Bounds[v] = true // v = nil
		}
	}
}

// recordGrowTarget records an IndexExpr map insert when the map is rooted in
// long-lived state.
func recordGrowTarget(p *Pass, sum *Summary, fd *ast.FuncDecl, ix *ast.IndexExpr, kind GrowKind) {
	if !isMapType(p.TypeOf(ix.X)) {
		return
	}
	if v := refVar(p.Info, ix.X); v != nil {
		recordGrowVar(p, sum, fd, ix.X, v, kind)
	}
}

// recordGrowVar keeps a growth site if its target is long-lived: a field
// reached through the method's receiver, or a package-level variable. Local
// builders (out := append(out, ...), a map in a local struct) are exempt —
// their lifetime ends with the call.
func recordGrowVar(p *Pass, sum *Summary, fd *ast.FuncDecl, expr ast.Expr, v *types.Var, kind GrowKind) {
	if !longLivedTarget(p, fd, expr, v) {
		return
	}
	sum.Grows = append(sum.Grows, GrowSite{
		Pos:    expr.Pos(),
		Target: v,
		Kind:   kind,
		Name:   exprText(expr),
	})
}

// longLivedTarget reports whether expr names state that outlives the call:
// a package-level var, or a field chain rooted at the enclosing method's
// receiver.
func longLivedTarget(p *Pass, fd *ast.FuncDecl, expr ast.Expr, v *types.Var) bool {
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return true // package-level var
	}
	if !v.IsField() {
		return false
	}
	root := rootObject(p.Info, expr)
	if root == nil {
		return false
	}
	recv := receiverObj(p, fd)
	return recv != nil && root == recv
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isB := p.Info.ObjectOf(id).(*types.Builtin)
	return isB && id.Name == name
}

// Closure returns the transitive in-package closure of start: start itself,
// every in-package function it calls or references, and so on. Spawn-site
// bodies encountered along the way are included (their work runs on behalf
// of the start function).
func (ps *PkgSummary) Closure(start *Summary) []*Summary {
	var out []*Summary
	seen := make(map[*Summary]bool)
	var visit func(*Summary)
	visit = func(s *Summary) {
		if s == nil || seen[s] {
			return
		}
		seen[s] = true
		out = append(out, s)
		for f := range s.Calls {
			visit(ps.Funcs[f])
		}
		for f := range s.Refs {
			visit(ps.Funcs[f])
		}
		for _, sp := range s.Spawns {
			if sp.Body != nil {
				visit(sp.Body)
			} else if sp.CalleeLocal {
				visit(ps.Funcs[sp.Callee])
			}
		}
	}
	visit(start)
	return out
}

// ReachableFromExported returns every summary reachable from an exported
// declared function of the package — the static approximation of "runs on a
// request/submission path".
func (ps *PkgSummary) ReachableFromExported() map[*Summary]bool {
	reach := make(map[*Summary]bool)
	for _, s := range ps.All {
		if s.Decl != nil && s.Decl.Name.IsExported() {
			for _, r := range ps.Closure(s) {
				reach[r] = true
			}
		}
	}
	return reach
}

// BoundAnywhere reports whether any function in the package carries
// eviction/cap evidence for target.
func (ps *PkgSummary) BoundAnywhere(target *types.Var) bool {
	return ps.anywhere(func(s *Summary) bool { return s.Bounds[target] })
}

// WaitsAnywhere reports whether any function in the package calls Wait on
// the given WaitGroup identity.
func (ps *PkgSummary) WaitsAnywhere(wg *types.Var) bool {
	return ps.anywhere(func(s *Summary) bool { return s.WGWaits[wg] })
}

// RecvsAnywhere reports whether any function in the package receives from
// the given channel identity.
func (ps *PkgSummary) RecvsAnywhere(ch *types.Var) bool {
	return ps.anywhere(func(s *Summary) bool { return s.ChanRecvs[ch] })
}

// ClosesAnywhere reports whether any function in the package closes the
// given channel identity.
func (ps *PkgSummary) ClosesAnywhere(ch *types.Var) bool {
	return ps.anywhere(func(s *Summary) bool { return s.ChanCloses[ch] })
}

// ClosesRootAnywhere reports whether any function in the package calls a
// shutdown-shaped method on the given root object.
func (ps *PkgSummary) ClosesRootAnywhere(root types.Object) bool {
	return ps.anywhere(func(s *Summary) bool { return s.CloseRoots[root] })
}

// anywhere applies pred across every declared function and, transitively,
// every spawned literal body.
func (ps *PkgSummary) anywhere(pred func(*Summary) bool) bool {
	var check func(*Summary) bool
	check = func(s *Summary) bool {
		if pred(s) {
			return true
		}
		for _, sp := range s.Spawns {
			if sp.Body != nil && check(sp.Body) {
				return true
			}
		}
		return false
	}
	for _, s := range ps.All {
		if check(s) {
			return true
		}
	}
	return false
}

// constructorNamed reports whether name looks like construction/loading
// (bounded by its input, not a request path).
func constructorNamed(name string) bool {
	for _, prefix := range []string{"New", "new", "Load", "load", "init", "main"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
