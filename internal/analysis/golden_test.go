package analysis

import (
	"path/filepath"
	"testing"
)

// Each analyzer has a golden fixture package under testdata; every planted
// violation carries a want expectation and every deliberately-legal idiom
// does not, so both halves of each contract are pinned.

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "lockorder"), LockOrder)
}

func TestSnapImmutableGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "snapimmutable"), SnapImmutable)
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "determinism"), Determinism)
}

func TestErrCmpGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "errcmp"), ErrCmp)
}

func TestFloatEqGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "floateq"), FloatEq)
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "ctxflow"), CtxFlow)
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "hotalloc"), HotAlloc)
}

func TestGoroLifeGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "gorolife"), GoroLife)
}

func TestAtomicPubGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "atomicpub"), AtomicPub)
}

func TestBoundedGrowthGolden(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "boundedgrowth"), BoundedGrowth)
}

// TestMisuseCorpusGolden reuses faultinject's misuse corpus under the full
// analyzer set: every planted bug must be reported, and nothing else.
func TestMisuseCorpusGolden(t *testing.T) {
	runGolden(t, filepath.Join("..", "faultinject", "testdata", "misuse"), All()...)
}
