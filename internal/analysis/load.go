// Package loading for hslint: a stdlib-only substitute for
// golang.org/x/tools/go/packages, driven by `go list -export -json`.
//
// Target packages are parsed and type-checked from source (so analyzers see
// full syntax plus type information for test files); every import — stdlib
// or intra-module — is satisfied from the compiler's export data, which
// `go list -export` materializes in the build cache. Resolving all imports
// through one shared gc importer keeps type identity consistent across
// targets regardless of which subset of the module is being analyzed.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analyzed package: syntax for every file (including in-package
// test files) plus full type information.
type Package struct {
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// TypeErrors holds type-checker errors tolerated in loose mode (LoadDir
	// over fixture trees); empty for strictly checked packages.
	TypeErrors []error

	summary *PkgSummary // lazily built interprocedural summary, see interproc.go
}

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Standard     bool
}

// Loader loads packages for analysis. Dir is the directory `go list` runs in
// (normally the module root).
type Loader struct {
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	gc      types.ImporterFrom
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: make(map[string]string)}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}).(types.ImporterFrom)
	return l
}

// Import satisfies types.Importer by reading export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.gc.ImportFrom(path, l.Dir, 0)
}

// goList runs `go list -export -json` over args and decodes the JSON stream.
func (l *Loader) goList(extra []string, args ...string) ([]*listedPackage, error) {
	cmdArgs := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,DepOnly,Standard",
	}, extra...)
	cmdArgs = append(cmdArgs, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// recordExports remembers where each listed package's export data lives.
func (l *Loader) recordExports(pkgs []*listedPackage) {
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// resolveImports makes sure export data exists for every import path in
// files, issuing one extra `go list` for paths the -deps walk missed
// (test-only dependencies, typically).
func (l *Loader) resolveImports(files []*ast.File) error {
	var missing []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "unsafe" || path == "C" || seen[path] || l.exports[path] != "" {
				continue
			}
			seen[path] = true
			missing = append(missing, path)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	pkgs, err := l.goList(nil, missing...)
	if err != nil {
		return err
	}
	l.recordExports(pkgs)
	return nil
}

// parseFiles parses each file (with comments) relative to dir.
func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one group of files as package pkgPath. In loose mode
// type errors are collected on the package instead of failing the load, so
// fixture trees with deliberately broken imports still yield (partial)
// syntax and type information.
func (l *Loader) check(pkgPath, name string, files []*ast.File, loose bool) (*Package, error) {
	if err := l.resolveImports(files); err != nil {
		if !loose {
			return nil, err
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{Importer: l}
	var typeErrs []error
	if loose {
		cfg.Error = func(err error) { typeErrs = append(typeErrs, err) }
	}
	tpkg, err := cfg.Check(pkgPath, l.fset, files, info)
	if err != nil && !loose {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:    pkgPath,
		Name:       name,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// LoadPackages loads the packages matching the given go-list patterns, plus
// their in-package and external test files, with full type information.
func (l *Loader) LoadPackages(patterns ...string) ([]*Package, error) {
	listed, err := l.goList([]string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	l.recordExports(listed)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Name == "" {
			continue
		}
		files, err := l.parseFiles(p.Dir, append(append([]string{}, p.GoFiles...), p.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		if len(files) > 0 {
			pkg, err := l.check(p.ImportPath, p.Name, files, false)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
		if len(p.XTestGoFiles) > 0 {
			xfiles, err := l.parseFiles(p.Dir, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkg, err := l.check(p.ImportPath+"_test", p.Name+"_test", xfiles, false)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadDir loads every package under root (each directory is one package),
// bypassing `go list` package discovery so testdata trees — which the go
// tool refuses to enumerate — can be analyzed. Imports must still resolve:
// they are satisfied from export data via `go list` in l.Dir, so corpus
// files may import the stdlib and module packages but not each other.
func (l *Loader) LoadDir(root string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var out []*Package
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		files, err := l.parseFiles(dir, names)
		if err != nil {
			return nil, err
		}
		name := files[0].Name.Name
		pkg, err := l.check(filepath.ToSlash(dir), name, files, true)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no Go packages under %s", root)
	}
	return out, nil
}
