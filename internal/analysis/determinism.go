package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism guards the reproducibility contract of the search and fit
// packages (genetic, regress, linalg, core, and every model family under
// internal/family/...): the Figure 5 convergence numbers (0.6121/0.5650)
// must reproduce bit-identically from a seed, and a family's Fit must be a
// pure function of its FitInput. Three
// nondeterminism vectors are flagged inside those packages:
//
//   - math/rand (and math/rand/v2) global-source functions — all randomness
//     must flow through the seeded internal/rng Source;
//   - time.Now — wall-clock reads belong to callers (injected clocks);
//   - accumulation in map-iteration order — appending to an outer slice, or
//     compound-assigning to an outer float accumulator, inside a `range m`
//     loop over a map, unless the result is sorted later in the same
//     function (the collect-then-sort idiom is how the trainer
//     canonicalizes application IDs).
//
// Test files are exempt: the contract covers the production fit/search
// paths, and tests legitimately use wall-clock deadlines.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "search/fit packages must stay bit-reproducible: no global rand, no time.Now, no map-order accumulation",
	Run:  runDeterminism,
}

// determinismPkgs are the package names the reproducibility contract covers.
var determinismPkgs = map[string]bool{
	"genetic": true,
	"regress": true,
	"linalg":  true,
	"core":    true,
	// The ModelFamily plug-in layer: family.Fit is contractually a pure
	// function of FitInput (internal/family's package doc), so every family
	// package is held to the same bit-reproducibility bar as the engine.
	"family":   true,
	"spline":   true,
	"residual": true,
	"dal":      true,
}

// globalRandFuncs are the math/rand (v1 and v2) functions that read the
// package-global source.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"NormFloat64": true, "ExpFloat64": true, "Read": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func runDeterminism(pass *Pass) {
	if !determinismPkgs[pass.PkgName] {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				checkNondetSelector(pass, sel)
			}
			return true
		})
	}
	eachFuncDecl(pass, func(fd *ast.FuncDecl) {
		if isTestFile(pass.Fset, fd.Pos()) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkMapRangeAccum(pass, fd, rs)
			}
			return true
		})
	})
}

// checkNondetSelector flags math/rand globals and time.Now uses.
func checkNondetSelector(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.Info.ObjectOf(sel.Sel)
	if obj == nil {
		return
	}
	switch {
	case isFromPkg(obj, "math/rand") || isFromPkg(obj, "math/rand/v2"):
		// Only package-level functions read the process-global source;
		// methods on an explicitly seeded *rand.Rand are deterministic.
		f, ok := obj.(*types.Func)
		if ok && f.Type().(*types.Signature).Recv() == nil && globalRandFuncs[obj.Name()] {
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the process-global source; use a seeded internal/rng.Source so runs reproduce",
				obj.Pkg().Name(), obj.Name())
		}
	case isFromPkg(obj, "time") && obj.Name() == "Now":
		pass.Reportf(sel.Pos(),
			"time.Now in a fit/search path breaks run-to-run reproducibility; inject a clock or take the time from the caller")
	}
}

// checkMapRangeAccum flags order-dependent accumulation inside a map range.
func checkMapRangeAccum(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	if t := pass.TypeOf(rs.X); t == nil || !isMapType(t) {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			// v = append(v, ...) onto a slice declared outside the loop
			// accumulates in map order.
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
					continue
				}
				lhs := as.Lhs[i]
				if declaredOutside(pass.Info, lhs, rs, rs) && !sortedLater(pass, fd, rs, lhs) {
					pass.Reportf(as.Pos(),
						"append to %s inside range over map accumulates in nondeterministic iteration order; iterate sorted keys or sort the result",
						exprText(lhs))
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Float accumulation is not associative: summing in map order
			// changes low bits between runs.
			lhs := as.Lhs[0]
			if isFloat(pass.TypeOf(lhs)) && declaredOutside(pass.Info, lhs, rs, rs) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s inside range over map depends on iteration order; iterate sorted keys",
					exprText(lhs))
			}
		}
		return true
	})
}

// sortedLater reports whether acc is passed to a sort.* or slices.Sort* call
// after the range statement in the same function — the collect-then-sort
// idiom, which is deterministic.
func sortedLater(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, acc ast.Expr) bool {
	target := rootObject(pass.Info, acc)
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.ObjectOf(sel.Sel)
		if !isFromPkg(obj, "sort") && !isFromPkg(obj, "slices") {
			return true
		}
		for _, arg := range call.Args {
			argDone := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.ObjectOf(id) == target {
					argDone = true
				}
				return !argDone
			})
			if argDone {
				found = true
			}
		}
		return !found
	})
	return found
}
