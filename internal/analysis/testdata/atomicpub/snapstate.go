// Golden fixture for atomicpub: fields published through sync/atomic must
// never be touched plainly anywhere in the package; typed atomic fields must
// be Stored, not assigned.
package snapstate

import "sync/atomic"

type state struct {
	count   uint64
	spare   uint64 // never touched atomically; plain access is fine
	snap    atomic.Pointer[int]
	flag    atomic.Bool
	version uint64
}

// newState may initialize plainly: nothing is published yet.
func newState() *state {
	s := &state{}
	s.count = 0
	s.version = 1
	return s
}

// Inc is the sanctioned protocol for count.
func (s *state) Inc() {
	atomic.AddUint64(&s.count, 1)
}

// Publish is the sanctioned protocol for snap and flag.
func (s *state) Publish(v *int) {
	s.snap.Store(v)
	s.flag.Store(true)
}

// BumpPlain writes count without the atomic API — races every Inc.
func (s *state) BumpPlain() {
	s.count++ // want `plain write of s.count, which is accessed via sync/atomic`
}

// ReadPlain reads count without the atomic API — may observe a torn or
// stale value relative to Inc.
func (s *state) ReadPlain() uint64 {
	return s.count // want `plain read of s.count, which is accessed via sync/atomic`
}

// EscapePlain hands count's address to a non-atomic callee.
func (s *state) EscapePlain() {
	scribble(&s.count) // want `plain read of s.count, which is accessed via sync/atomic`
}

func scribble(p *uint64) { *p = 7 }

// Reset reassigns a typed atomic field wholesale, bypassing Store.
func (s *state) Reset() {
	s.snap = atomic.Pointer[int]{} // want `assignment to atomic field s.snap bypasses Store`
}

// Spare never meets sync/atomic, so plain access is legal.
func (s *state) Spare() uint64 {
	s.spare++
	return s.spare
}

// AllAtomic keeps version consistent everywhere it is touched.
func (s *state) AllAtomic() uint64 {
	atomic.AddUint64(&s.version, 1)
	return atomic.LoadUint64(&s.version)
}

// --- package-level var: same contract, different scope ---

var total uint64

func Add(n uint64) {
	atomic.AddUint64(&total, n)
}

func Drain() uint64 {
	t := total // want `plain read of total, which is accessed via sync/atomic`
	return t
}
