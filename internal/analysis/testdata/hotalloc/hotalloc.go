// Fixture for the hotalloc analyzer: the //hslint:hotpath marker promises a
// zero-steady-state-allocation function body; every allocating construct
// inside one is planted with a want expectation, and the same constructs in
// un-annotated functions (the warm-up/growth paths) are legal.
package serve

type scratch struct {
	row   []float64
	cache map[string]float64
	sum   float64
}

// ensure is the growth path: un-annotated, so its allocations are legal.
func (s *scratch) ensure(n int) {
	if cap(s.row) < n {
		s.row = make([]float64, n)
	}
	if s.cache == nil {
		s.cache = map[string]float64{}
	}
}

// predictMake allocates its buffer per call.
//
//hslint:hotpath
func predictMake(n int) []float64 {
	return make([]float64, n) // want `make in hotpath predictMake allocates per call`
}

// predictAppend grows a slice on the hot path.
//
//hslint:hotpath
func predictAppend(dst, src []float64) []float64 {
	for _, v := range src {
		dst = append(dst, v*v) // want `append in hotpath predictAppend can grow on any call`
	}
	return dst
}

// predictMapLit builds a map per call.
//
//hslint:hotpath
func predictMapLit(k string, v float64) map[string]float64 {
	return map[string]float64{k: v} // want `map literal in hotpath predictMapLit allocates per call`
}

// predictClosure captures a local, heap-allocating the closure context.
//
//hslint:hotpath
func predictClosure(rows [][]float64) func() int {
	total := 0
	return func() int { // want `closure in hotpath predictClosure captures rows`
		for range rows {
			total++
		}
		return total
	}
}

// predictClean reuses caller-owned buffers with indexed writes: the shape
// every hotpath function is held to. Legal.
//
//hslint:hotpath
func (s *scratch) predictClean(rows [][]float64, out []float64) {
	for i, r := range rows {
		acc := 0.0
		for j, v := range r {
			acc += v * s.row[j]
		}
		out[i] = acc
	}
}

// staticClosure references only package state: a static function value, no
// per-call context. Legal even on the hot path.
//
//hslint:hotpath
func staticClosure() func() float64 {
	return func() float64 { return floor }
}

var floor = 1.0

// coldAppend is un-annotated: append and make stay legal off the hot path.
func coldAppend(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
