// Fixture for the snapimmutable analyzer. The package is deliberately named
// "core" so its Snapshot type stands in for hsmodel/internal/core.Snapshot:
// fields are write-once (constructors/loaders only) and the served snapshot
// is replaced exclusively through atomic.Pointer.
package core

import "sync/atomic"

type Snapshot struct {
	version int
	coef    []float64
}

// NewSnapshot is a constructor: the one place fields may be written.
func NewSnapshot(version int, coef []float64) *Snapshot {
	s := &Snapshot{}
	s.version = version
	s.coef = coef
	return s
}

// loadSnapshot is a loader; the load* prefix is also constructor-shaped.
func loadSnapshot(version int) *Snapshot {
	s := new(Snapshot)
	s.version = version
	return s
}

type publisher struct {
	atomicSnap atomic.Pointer[Snapshot]
	plainSnap  *Snapshot
}

// publishAtomic replaces the served snapshot the blessed way.
func (p *publisher) publishAtomic(s *Snapshot) {
	p.atomicSnap.Store(s)
}

// publishPlain stores a snapshot into a plain field: readers get no
// release/acquire edge.
func (p *publisher) publishPlain(s *Snapshot) {
	p.plainSnap = s // want `stored into plain field plainSnap`
}

// clear nils the field out; retiring a snapshot is not a publication.
func (p *publisher) clear() {
	p.plainSnap = nil
}

// bump mutates a field on a snapshot that may already be published.
func bump(s *Snapshot) {
	s.version++ // want `write to core.Snapshot field version outside a constructor`
}

// retune swaps the coefficient slice in place.
func retune(s *Snapshot, coef []float64) {
	s.coef = coef // want `write to core.Snapshot field coef outside a constructor`
}

// reset overwrites the whole value through the pointer.
func reset(s *Snapshot) {
	*s = Snapshot{} // want `write through \*core.Snapshot`
}
