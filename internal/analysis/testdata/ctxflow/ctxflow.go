// Fixture for the ctxflow analyzer. The package is named "serve" so the
// cancellation discipline of the engine's entry-point packages applies:
// exported functions looping over cancellable work must accept a context (or
// *http.Request) and use it.
package serve

import (
	"context"
	"net/http"
	"time"
)

func step(ctx context.Context) error { return ctx.Err() }

// RunAll loops calling a ctx-taking callee but offers callers no handle to
// cancel the run.
func RunAll(n int) {
	for i := 0; i < n; i++ { // want `exported RunAll loops over cancellable work but has no context.Context parameter`
		_ = step(context.Background())
	}
}

// RunAllCtx threads the context through. Legal.
func RunAllCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := step(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Drain blocks on a channel every iteration with no way out.
func Drain(ch chan int) int {
	total := 0
	for v := range ch { // want `exported Drain loops over cancellable work but has no context.Context parameter`
		total += v
	}
	return total
}

// Pump selects on ctx.Done. Legal.
func Pump(ctx context.Context, ch chan<- int, n int) {
	for i := 0; i < n; i++ {
		select {
		case ch <- i:
		case <-ctx.Done():
			return
		}
	}
}

// Sleepy spins on the clock with no cancellation.
func Sleepy(n int) {
	for i := 0; i < n; i++ { // want `exported Sleepy loops over cancellable work but has no context.Context parameter`
		time.Sleep(time.Millisecond)
	}
}

// Ignores takes a context and then pretends it does not exist.
func Ignores(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want `exported Ignores accepts a context but never uses it`
		time.Sleep(time.Millisecond)
	}
}

// ServeLoop carries its context via *http.Request. Legal.
func ServeLoop(w http.ResponseWriter, r *http.Request, jobs []func(context.Context) error) {
	for _, job := range jobs {
		if err := job(r.Context()); err != nil {
			return
		}
	}
}

// Mean is pure bounded computation: the predict fast path needs no context.
func Mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

type pool struct {
	done chan struct{}
}

// Close drains on close: io.Closer's shape is fixed, so it is exempt.
func (p *pool) Close() error {
	for range p.done {
	}
	return nil
}

// drainQuietly is unexported: internal helpers are the caller's
// responsibility.
func drainQuietly(ch chan int) {
	for range ch {
	}
}
