// Fixture extending the ctxflow analyzer to the model-family packages: the
// package is named "dal" so the family cancellation contract applies — a
// family's Fit runs searches and per-cluster fits in loops, and an exported
// fitting entry point that loops over cancellable work without accepting
// (and using) a context would make the selection harness and the resilient
// ladder's timeout rung uncancellable.
package dal

import "context"

func fitCluster(ctx context.Context) error { return ctx.Err() }

// Fit fits one local model per cluster with no way for the selection
// harness to stop a runaway round.
func Fit(clusters int) {
	for i := 0; i < clusters; i++ { // want `exported Fit loops over cancellable work but has no context.Context parameter`
		_ = fitCluster(context.Background())
	}
}

// FitCtx threads the episode context through each per-cluster fit. Legal.
func FitCtx(ctx context.Context, clusters int) error {
	for i := 0; i < clusters; i++ {
		if err := fitCluster(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Dispatch is the serving fast path: nearest-centroid arithmetic, no
// cancellable work, no context needed. Legal.
func Dispatch(centroids [][]float64, row []float64) int {
	best, bestDist := 0, 0.0
	for i, c := range centroids {
		var d float64
		for j := range row {
			diff := row[j] - c[j]
			d += diff * diff
		}
		if i == 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
