// Fixture extending the ctxflow analyzer to the registry package: the
// multi-model registry fans sample batches and predictions across entries,
// so an exported fan-out loop that performs cancellable work without
// accepting (and using) a context would let one slow entry wedge every
// caller with no way to bail out.
package registry

import "context"

type entry struct{}

func (entry) absorb(ctx context.Context, rows int) error { return ctx.Err() }

// Submit fans a batch across every entry with no way for the caller to
// abandon the fan-out.
func Submit(entries []entry, rows int) {
	for _, e := range entries { // want `exported Submit loops over cancellable work but has no context.Context parameter`
		_ = e.absorb(context.Background(), rows)
	}
}

// SubmitCtx threads the request context through each entry's absorb. Legal.
func SubmitCtx(ctx context.Context, entries []entry, rows int) error {
	for _, e := range entries {
		if err := e.absorb(ctx, rows); err != nil {
			return err
		}
	}
	return nil
}

// Route walks the hash ring clockwise: pure arithmetic over sorted points,
// no cancellable work, no context needed. Legal.
func Route(points []uint64, key uint64) int {
	lo, hi := 0, len(points)
	for lo < hi {
		mid := (lo + hi) / 2
		if points[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(points) {
		return 0
	}
	return lo
}

// Drain accepts a context but ignores it while waiting on entry shutdowns.
func Drain(ctx context.Context, done []chan struct{}) {
	for _, ch := range done { // want `exported Drain accepts a context but never uses it`
		<-ch
	}
}
