// Fixture extending the ctxflow analyzer to the lifecycle package: the
// continuous-learning loop runs retrain episodes on background goroutines, so
// its exported entry points that loop over cancellable work — training calls,
// episode polling, channel waits — must accept a context and use it.
package lifecycle

import (
	"context"
	"time"
)

func retrain(ctx context.Context) error { return ctx.Err() }

// RunEpisodes retries the retrain ladder with no way for callers to stop a
// stuck episode.
func RunEpisodes(n int) {
	for i := 0; i < n; i++ { // want `exported RunEpisodes loops over cancellable work but has no context.Context parameter`
		_ = retrain(context.Background())
	}
}

// RunEpisodesCtx threads the episode context through. Legal.
func RunEpisodesCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := retrain(ctx); err != nil {
			return err
		}
	}
	return nil
}

// AwaitPromotion polls the loop state on the clock, holding its context
// hostage. The analyzer demands the ctx actually gate the wait.
func AwaitPromotion(ctx context.Context, done func() bool) {
	for !done() { // want `exported AwaitPromotion accepts a context but never uses it`
		time.Sleep(time.Millisecond)
	}
}

// Submit is the hot path: bounded bookkeeping, no cancellable work, no
// context needed. Legal.
func Submit(counts map[string]int, app string) {
	for k := range counts {
		if k == app {
			counts[k]++
		}
	}
}

type loop struct {
	episodes chan struct{}
}

// Close drains in-flight episodes on shutdown: io.Closer's shape is fixed,
// so it is exempt.
func (l *loop) Close() error {
	for range l.episodes {
	}
	return nil
}
