// Fixture for //hslint:ignore directive handling: suppression on the same
// line and the line above, unknown check names, missing reasons, and stale
// directives. Exercised programmatically by ignore_test.go rather than via
// want comments, because the scenarios assert on the meta-check output
// itself.
package ignoredemo

func suppressedSameLine(a, b float64) bool {
	return a == b //hslint:ignore floateq exact match demanded by the fixture
}

func suppressedLineAbove(c, d float64) bool {
	//hslint:ignore floateq tolerance handled by the caller
	return c != d
}

func unknownCheck(x, y float64) bool {
	return x == y //hslint:ignore nosuchcheck the check name is wrong on purpose
}

func missingReason(m, n float64) bool {
	return m == n //hslint:ignore floateq
}

func staleDirective(p, q float64) bool {
	//hslint:ignore floateq nothing to suppress on the next line
	return p < q
}
