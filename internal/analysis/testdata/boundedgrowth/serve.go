// Golden fixture for boundedgrowth. The package is named "serve" so the
// analyzer's production scoping applies; scratch/ next door is out of scope
// and stays silent with identical code.
package serve

type server struct {
	cache  map[string]int
	hits   map[string]int
	log    []string
	seen   map[string]bool
	ring   []int
	known  map[string]int
	bg     []int
	orphan []int
}

// NewServer is constructor-shaped: its growth is bounded by its input.
func NewServer(warm []string) *server {
	s := &server{cache: map[string]int{}, seen: map[string]bool{}}
	for _, k := range warm {
		s.cache[k] = 0
	}
	return s
}

// Handle grows the cache on the request path with no eviction anywhere.
func (s *server) Handle(k string) {
	s.cache[k]++ // want `unbounded growth: map insert to s.cache in server.Handle`
}

// Append grows the log on the request path with no truncation anywhere.
func (s *server) Append(v string) {
	s.log = append(s.log, v) // want `unbounded growth: append to s.log in server.Append`
}

// Record is unexported but reachable through Handle2; the finding lands here.
func (s *server) record(k string) {
	s.hits[k]++ // want `unbounded growth: map insert to s.hits in server.record`
}

func (s *server) Handle2(k string) {
	s.record(k)
}

// Mark grows seen, but Evict deletes from it — package-wide evidence.
func (s *server) Mark(k string) {
	s.seen[k] = true
}

func (s *server) Evict(k string) {
	delete(s.seen, k)
}

// Push caps the ring in place: len comparison plus truncating self-slice.
func (s *server) Push(v int) {
	s.ring = append(s.ring, v)
	if len(s.ring) > 128 {
		s.ring = s.ring[1:]
	}
}

// Memo flushes wholesale at the cap; clear is evidence.
func (s *server) Memo(k string, v int) {
	if len(s.known) >= 1024 {
		clear(s.known)
	}
	s.known[k] = v
}

// Start grows inside a spawned goroutine body; the spawn inherits Start's
// reachability.
func (s *server) Start() {
	go func() {
		s.bg = append(s.bg, 1) // want `unbounded growth: append to s.bg in server.Start`
	}()
}

// orphanGrow is unreachable from any exported function: no traffic feeds it.
func (s *server) orphanGrow() {
	s.orphan = append(s.orphan, 1)
}

// Collect builds a local slice; its lifetime ends with the call.
func (s *server) Collect(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// --- package-level state and method-value reachability ---

var events []string

// LogEvent grows a package-level slice on an exported path.
func LogEvent(msg string) {
	events = append(events, msg) // want `unbounded growth: append to events in LogEvent`
}

type mux struct {
	routes map[string]int
}

// install is never called, only referenced as a method value from Routes —
// the reference is still a graph edge, so the growth is reachable.
func (m *mux) install(k string) {
	m.routes[k] = 1 // want `unbounded growth: map insert to m.routes in mux.install`
}

// Routes hands install out as a method value.
func (m *mux) Routes() func(string) {
	return m.install
}
