// Out-of-scope package: identical unbounded growth to the serve fixture, but
// "scratch" is not a serving/training package, so boundedgrowth stays quiet.
package scratch

type bag struct {
	items map[string]int
	order []string
}

func (b *bag) Put(k string) {
	b.items[k]++
	b.order = append(b.order, k)
}

var global []int

func Accumulate(v int) {
	global = append(global, v)
}
