// Golden fixture for gorolife: every spawn below is either supervised by one
// of the recognized protocols (no want) or a leak (want).
package worker

import (
	"context"
	"net/http"
	"sync"
)

func work()    {}
func process() {}

// --- leaks ---

// Leak spawns a worker nobody joins or cancels.
func Leak() {
	go func() { // want `goroutine started in Leak has no join or cancellation path`
		for {
			work()
		}
	}()
}

type pump struct {
	n    int
	jobs chan int
	done chan struct{}
	wg   sync.WaitGroup
}

// loop runs forever with no channel, WaitGroup, or context discipline.
func (p *pump) loop() {
	for {
		p.n++
	}
}

// StartLoop spawns an in-package method whose transitive body has no
// supervision either.
func (p *pump) StartLoop() {
	go p.loop() // want `goroutine started in pump.StartLoop has no join or cancellation path`
}

// ServeLeaked spawns an out-of-package method and never shuts the server
// down.
func ServeLeaked(hs *http.Server) {
	go hs.ListenAndServe() // want `goroutine started in ServeLeaked has no join or cancellation path`
}

// --- supervised ---

// JoinedLocal uses the classic same-function WaitGroup join.
func JoinedLocal() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// StartJoined spawns a worker that Dones the struct's WaitGroup; CloseJoined
// Waits on it — the join is interprocedural.
func (p *pump) StartJoined() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func (p *pump) CloseJoined() {
	p.wg.Wait()
}

// StartDrain spawns a worker that ranges the jobs queue and closes done when
// the queue is drained; CloseDrain closes the queue and receives the done
// signal — the batcher's protocol.
func (p *pump) StartDrain() {
	go func() {
		defer close(p.done)
		for range p.jobs {
			process()
		}
	}()
}

func (p *pump) CloseDrain() {
	close(p.jobs)
	<-p.done
}

// Cancellable selects on the context it captured.
func Cancellable(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// ErrcPattern sends a single result on a channel the spawner receives.
func ErrcPattern() error {
	errc := make(chan error, 1)
	go func() { errc <- nil }()
	return <-errc
}

// ServeShutdown spawns an out-of-package method but calls a shutdown-shaped
// method on the same root, so the package can stop the goroutine's work.
func ServeShutdown(ctx context.Context, hs *http.Server) {
	go hs.ListenAndServe()
	<-ctx.Done()
	hs.Shutdown(context.Background())
}

// StartCtxArg hands the spawned call a context; cancellation reaches it.
func StartCtxArg(ctx context.Context) {
	go runWith(ctx)
}

func runWith(ctx context.Context) {
	<-ctx.Done()
}
