// Test files are exempt: a test goroutine's lifetime is the test's. This
// spawn would be a finding in production code and must produce nothing here.
package worker

func helperForTests() {
	go func() {
		for {
			work()
		}
	}()
}
