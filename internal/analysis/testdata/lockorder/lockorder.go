// Fixture for the lockorder analyzer: the Trainer two-lock protocol.
// trainMu serializes training runs and must never be acquired while the
// sample-store lock mu is held; every Lock needs an Unlock in the same
// function.
package lockorder

import "sync"

type Trainer struct {
	trainMu sync.Mutex
	mu      sync.Mutex
	samples int
}

// train follows the documented order: trainMu first, then mu. Legal.
func (t *Trainer) train() {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples++
}

// inverted acquires trainMu while mu is held: the classic deadlock with
// train() running concurrently.
func (t *Trainer) inverted() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trainMu.Lock() // want `trainMu acquired while mu is held`
	defer t.trainMu.Unlock()
}

// invertedDirect is the same inversion with explicit unlocks.
func (t *Trainer) invertedDirect() {
	t.mu.Lock()
	t.trainMu.Lock() // want `trainMu acquired while mu is held`
	t.trainMu.Unlock()
	t.mu.Unlock()
}

// leak locks mu and never releases it.
func (t *Trainer) leak() {
	t.mu.Lock() // want `mu is locked but never unlocked in this function`
	t.samples++
}

// lockTrainMu is a helper that acquires trainMu; calling it with mu held is
// the inversion one call level removed.
func (t *Trainer) lockTrainMu() {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()
}

func (t *Trainer) indirectInversion() {
	t.mu.Lock()
	t.lockTrainMu() // want `call to lockTrainMu acquires trainMu while mu is held`
	t.mu.Unlock()
}

// retrain calls the trainMu-taking helper with nothing held. Legal.
func (t *Trainer) retrain() {
	t.lockTrainMu()
}

// handoff holds one trainer's mu while taking another trainer's trainMu:
// different lock instances, no ordering between them.
func handoff(a, b *Trainer) {
	a.mu.Lock()
	b.trainMu.Lock()
	b.trainMu.Unlock()
	a.mu.Unlock()
}

// closureScope spawns a goroutine that takes trainMu; the closure runs at a
// different time than its declaration, so no order is implied by the
// enclosing mu.
func (t *Trainer) closureScope() {
	t.mu.Lock()
	go func() {
		t.trainMu.Lock()
		defer t.trainMu.Unlock()
	}()
	t.mu.Unlock()
}

type store struct {
	rw sync.RWMutex
	m  map[string]int
}

// get read-locks and forgets RUnlock.
func (s *store) get(k string) int {
	s.rw.RLock() // want `rw is locked but never unlocked in this function`
	return s.m[k]
}

// getGuarded is the correct form.
func (s *store) getGuarded(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.m[k]
}
