// Fixture for the errcmp analyzer: sentinel errors travel through %w wraps,
// so they must be matched with errors.Is, never ==, and fmt.Errorf must not
// sever the chain with %v/%s.
package errcmp

import (
	"context"
	"errors"
	"fmt"
)

var ErrTrain = errors.New("train failed")

// softFail is error-typed but not Err*-named: not part of the sentinel
// protocol, so exact comparison is left alone.
var softFail = errors.New("soft failure")

func eq(err error) bool {
	return err == ErrTrain // want `== compared with ErrTrain`
}

func neq(err error) bool {
	return err != ErrTrain // want `!= compared with ErrTrain`
}

func ctxSentinel(err error) bool {
	return err == context.Canceled // want `== compared with context.Canceled`
}

// isMatch is the blessed form.
func isMatch(err error) bool {
	return errors.Is(err, ErrTrain)
}

// nilCheck is fine: nil is not a sentinel.
func nilCheck(err error) bool {
	return err == nil
}

func eqNonSentinel(err error) bool {
	return err == softFail
}

func sw(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrTrain: // want `switch on error compares ErrTrain with ==`
		return "train"
	}
	return "other"
}

func wrapOpaque(err error) error {
	return fmt.Errorf("fit failed: %v", err) // want `error err wrapped with %v`
}

func wrapString(err error) error {
	return fmt.Errorf("fit failed: %s", err) // want `error err wrapped with %s`
}

// wrapKeeps preserves the chain.
func wrapKeeps(err error) error {
	return fmt.Errorf("fit failed: %w", err)
}

// wrapMixed: non-error verbs may be anything, the error still rides %w.
func wrapMixed(n int, err error) error {
	return fmt.Errorf("%d rows: %w", n, err)
}
