// Fixture for the determinism analyzer. The package is named "genetic" so
// the reproducibility contract of the search/fit packages applies: no
// process-global randomness, no wall-clock reads, no accumulation in
// map-iteration order.
package genetic

import (
	"math/rand"
	"sort"
	"time"
)

// globalDraw reads the process-global source: two runs of the same seed
// diverge.
func globalDraw() float64 {
	return rand.Float64() // want `draws from the process-global source`
}

// seededDraw uses an explicitly seeded source. Legal.
func seededDraw(r *rand.Rand) float64 {
	return r.Float64()
}

// stamp reads the wall clock inside the search package.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in a fit/search path`
}

// sumFitness accumulates a float in map-iteration order: the low bits change
// between runs.
func sumFitness(byApp map[int]float64) float64 {
	var sum float64
	for _, f := range byApp {
		sum += f // want `float accumulation into sum inside range over map`
	}
	return sum
}

// keysSorted is the collect-then-sort idiom the trainer uses to canonicalize
// application IDs. Legal.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keysUnsorted collects in map order and never sorts.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

// countEntries increments an integer: counting is order-insensitive.
func countEntries(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// sliceSum accumulates over a slice, which iterates in index order. Legal.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}
