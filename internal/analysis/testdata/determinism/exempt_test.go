package genetic

import "math/rand"

// Test files are exempt from the reproducibility contract: no want here even
// though the global source is used.
func shuffleForTest(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
