// Fixture extending the determinism analyzer to the model-family packages:
// the package is named "residual" so the family reproducibility contract
// applies — a family's Fit must be a pure function of its FitInput, with all
// randomness flowing through the seeded input, never the process-global
// source or the wall clock.
package residual

import (
	"math/rand"
	"time"
)

// jitterPrior perturbs the analytical prior from the process-global source:
// two selection rounds over identical inputs would score (and possibly pick)
// different families.
func jitterPrior(p float64) float64 {
	return p * (1 + 0.01*rand.Float64()) // want `draws from the process-global source`
}

// seededJitter draws from an explicitly seeded source handed in by the
// caller (the FitInput seed). Legal.
func seededJitter(r *rand.Rand, p float64) float64 {
	return p * (1 + 0.01*r.Float64())
}

// stampFit records when the correction model was fitted, breaking
// bit-reproducibility of the persisted payload.
func stampFit() int64 {
	return time.Now().Unix() // want `time.Now in a fit/search path`
}

// scoreByApp accumulates per-application scores in map-iteration order: the
// mean's low bits change between runs, so family selection can flip on ties.
func scoreByApp(scores map[int]float64) float64 {
	var sum float64
	for _, s := range scores {
		sum += s // want `float accumulation into sum inside range over map`
	}
	return sum / float64(len(scores))
}
