// Fixture for the floateq analyzer: no exact ==/!= between non-constant
// floats; constants are the allowlist (golden-value parity checks).
package floateq

import "math"

func eq(a, b float64) bool {
	return a == b // want `exact float equality between a and b`
}

func neq(a, b float64) bool {
	return a != b // want `exact float inequality between a and b`
}

// selfNaN is the x != x NaN test spelled the dangerous way.
func selfNaN(x float64) bool {
	return x != x // want `exact float inequality between x and x`
}

func narrow(a, b float32) bool {
	return a == b // want `exact float equality between a and b`
}

// constantGolden: comparing against a golden constant (the Fig. 5 values)
// is an intentional exact check. Legal.
func constantGolden(x float64) bool {
	return x == 0.6121
}

func constantZero(x float64) bool {
	return x != 0
}

// bits states a bit-identity contract exactly. Legal.
func bits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// tolerance is the usual repair for accumulated rounding. Legal.
func tolerance(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// ints compare exactly by nature.
func ints(a, b int) bool {
	return a == b
}
