package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// The ignore fixture plants one scenario per function: same-line
// suppression, line-above suppression, an unknown check name, a directive
// with no reason, and a stale directive. The assertions run the same Run
// path as cmd/hslint.

func loadIgnoreFixture(t *testing.T) []*Package {
	t.Helper()
	return loadGolden(t, filepath.Join("testdata", "ignore"))
}

type diagExpect struct {
	check  string
	substr string
}

func assertDiags(t *testing.T, diags []Diagnostic, expected []diagExpect) {
	t.Helper()
	if len(diags) != len(expected) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("%d diagnostics, want %d", len(diags), len(expected))
	}
	for _, e := range expected {
		found := false
		for _, d := range diags {
			if d.Check == e.check && strings.Contains(d.Message, e.substr) {
				found = true
				break
			}
		}
		if !found {
			for _, d := range diags {
				t.Logf("got: %s", d)
			}
			t.Fatalf("no [%s] diagnostic containing %q", e.check, e.substr)
		}
	}
}

// TestIgnoreDirectives: with floateq running, the two well-formed directives
// suppress their diagnostics silently, and the three malformed ones are
// reported by the hslint meta-check.
func TestIgnoreDirectives(t *testing.T) {
	diags := Run(loadIgnoreFixture(t), []*Analyzer{FloatEq})
	assertDiags(t, diags, []diagExpect{
		// unknownCheck's comparison is NOT suppressed (the directive names a
		// check that does not exist) ...
		{"floateq", "exact float equality between x and y"},
		// ... and the directive itself is reported.
		{"hslint", `unknown check "nosuchcheck"`},
		// missingReason's comparison is suppressed, but the bare directive is
		// flagged for its missing justification.
		{"hslint", `ignore directive for "floateq" has no reason`},
		// staleDirective suppresses nothing.
		{"hslint", "stale ignore directive"},
	})
}

// TestIgnoreStaleOnlyWhenCheckRan: a -checks subset run must not condemn
// directives for checks it skipped, but directive hygiene (unknown names,
// missing reasons) still applies.
func TestIgnoreStaleOnlyWhenCheckRan(t *testing.T) {
	diags := Run(loadIgnoreFixture(t), []*Analyzer{ErrCmp})
	assertDiags(t, diags, []diagExpect{
		{"hslint", `unknown check "nosuchcheck"`},
		{"hslint", `ignore directive for "floateq" has no reason`},
	})
	for _, d := range diags {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale reported for a check that did not run: %s", d)
		}
	}
}
