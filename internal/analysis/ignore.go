package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//hslint:ignore <check> <reason>
//
// The directive suppresses diagnostics of the named check on its own line or
// on the line immediately below (so it can ride at the end of the offending
// line or sit on its own line above it). The reason is mandatory. Directives
// are themselves linted: an unknown check name, a missing reason, or a stale
// directive (one that suppresses nothing) is reported under the meta-check
// name "hslint", so dead suppressions cannot accumulate.
const ignorePrefix = "//hslint:ignore"

// metaCheck attributes directive-hygiene diagnostics.
const metaCheck = "hslint"

type ignoreDirective struct {
	pos    token.Position
	end    token.Position // one past the comment, for the deletion autofix
	check  string
	reason string
	used   bool
}

// collectIgnores extracts every //hslint:ignore directive in the package.
func collectIgnores(pkg *Package) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				check, reason, _ := strings.Cut(rest, " ")
				dirs = append(dirs, &ignoreDirective{
					pos:    pkg.Fset.Position(c.Pos()),
					end:    pkg.Fset.Position(c.End()),
					check:  check,
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return dirs
}

// staleFix deletes a stale directive comment.
func staleFix(dir *ignoreDirective) []SuggestedFix {
	return []SuggestedFix{{
		Message: "delete stale ignore directive",
		Edits: []TextEdit{{
			File:  dir.pos.Filename,
			Start: dir.pos.Offset,
			End:   dir.end.Offset,
			New:   "",
		}},
	}}
}

// applyIgnores filters diagnostics through the package's ignore directives
// and appends directive-hygiene diagnostics. ran names the checks that
// actually executed: a directive is only stale when its check ran and still
// produced nothing to suppress (a -checks subset run must not condemn
// directives for the checks it skipped).
func applyIgnores(pkg *Package, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	dirs := collectIgnores(pkg)
	if len(dirs) == 0 {
		return diags
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.check != d.Check || dir.pos.Filename != d.Pos.Filename {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	for _, dir := range dirs {
		switch {
		case dir.check == "":
			out = append(out, Diagnostic{Pos: dir.pos, Check: metaCheck,
				Message: "ignore directive names no check: //hslint:ignore <check> <reason>"})
		case !known[dir.check]:
			out = append(out, Diagnostic{Pos: dir.pos, Check: metaCheck,
				Message: "ignore directive names unknown check \"" + dir.check + "\""})
		case dir.reason == "":
			out = append(out, Diagnostic{Pos: dir.pos, Check: metaCheck,
				Message: "ignore directive for \"" + dir.check + "\" has no reason"})
		case !dir.used && ran[dir.check]:
			out = append(out, Diagnostic{Pos: dir.pos, Check: metaCheck,
				Message: "stale ignore directive: no \"" + dir.check + "\" diagnostic here",
				Fixes:   staleFix(dir)})
		}
	}
	return out
}
