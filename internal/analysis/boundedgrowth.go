package analysis

import (
	"go/types"
)

// BoundedGrowth enforces the flat-memory contract behind the reservoir/ring
// stores and the LRU eval caches (ROADMAP: "memory is flat under millions of
// submissions"): a long-lived container — a field reached through a method
// receiver, or a package-level variable — that grows on a request/submission
// path must have eviction or cap evidence somewhere in the package.
//
// Growth sites are `v = append(v, ...)` and map inserts (`m[k] = x`,
// `m[k]++`, `m[k] += x`). Evidence for the same variable identity is any of:
// delete(v, k), clear(v), a len(v) comparison, a truncating self-assignment
// (v = append(v[:i], ...), v = v[:n]), v = nil, or a make() reset. The
// summaries union evidence across every function and spawned goroutine body,
// so the eviction may live behind a helper or on a sibling path (Unregister
// balancing Register) and still count.
//
// "Request path" is approximated as: reachable from an exported function of
// the package through the call graph (calls, function references, spawns).
// Constructor-shaped functions (New*/new*/Load*/load*/init/main) are exempt —
// their growth is bounded by their input, not by traffic. Local builders
// (out := append(out, ...)) are exempt by construction: only receiver fields
// and package vars are long-lived targets.
//
// The check is scoped to the serving/training packages where the invariant
// is a production contract; a scratch package accumulating into a slice is
// not a bug.
var BoundedGrowth = &Analyzer{
	Name: "boundedgrowth",
	Doc:  "long-lived containers on request paths must have eviction/cap evidence",
	Run:  runBoundedGrowth,
}

// boundedGrowthPkgs names the package *names* (matching both real packages
// and testdata stand-ins) whose request/submission paths carry the
// flat-memory contract.
var boundedGrowthPkgs = map[string]bool{
	"serve":     true,
	"registry":  true,
	"lifecycle": true,
	"core":      true,
	"genetic":   true,
}

func runBoundedGrowth(pass *Pass) {
	if !boundedGrowthPkgs[pass.PkgName] {
		return
	}
	ps := pass.Summary()
	reach := ps.ReachableFromExported()

	for _, sum := range ps.All {
		if isTestFile(pass.Fset, sum.Decl.Pos()) {
			continue
		}
		if constructorNamed(sum.Decl.Name.Name) {
			continue
		}
		if !reach[sum] {
			continue // not on any exported path; nothing feeds it traffic
		}
		reportGrowth(pass, ps, sum, sum)
	}
}

// reportGrowth flags unbounded growth sites in sum and, transitively, in its
// spawned goroutine bodies (which inherit the encloser's reachability).
func reportGrowth(pass *Pass, ps *PkgSummary, encloser, sum *Summary) {
	seen := make(map[*types.Var]bool)
	for _, g := range sum.Grows {
		if seen[g.Target] || ps.BoundAnywhere(g.Target) {
			continue
		}
		seen[g.Target] = true
		pass.Reportf(g.Pos,
			"unbounded growth: %s to %s in %s is reachable from the exported API with no eviction/cap evidence (delete, clear, len comparison, or truncation) anywhere in the package",
			g.Kind, g.Name, funcName(encloser.Decl))
	}
	for _, sp := range sum.Spawns {
		if sp.Body != nil {
			reportGrowth(pass, ps, encloser, sp.Body)
		}
	}
}
