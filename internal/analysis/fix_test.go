package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixFixture is a self-contained package with every errcmp bug class that
// carries a SuggestedFix: a == sentinel comparison, a != comparison (both
// need the "errors" import inserted — exactly once), and a %v wrap.
const fixFixture = `package fixme

import (
	"fmt"
)

var ErrBoom = fmt.Errorf("boom")

func Classify(err error) string {
	if err == ErrBoom {
		return "boom"
	}
	if err != ErrBoom {
		return fmt.Errorf("classify: %v", err).Error()
	}
	return ""
}
`

func loadFixFixture(t *testing.T, dir string) []*Package {
	t.Helper()
	pkgs, err := NewLoader(moduleRoot(t)).LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkgs
}

// TestApplyFixesRoundTrip pins the full -fix contract: the dry run leaves the
// tree untouched and renders a diff; the write pass rewrites the file so that
// it still type-checks cleanly and errcmp comes back empty.
func TestApplyFixesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixme.go")
	if err := os.WriteFile(path, []byte(fixFixture), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := Run(loadFixFixture(t, dir), []*Analyzer{ErrCmp})
	if len(diags) != 3 {
		t.Fatalf("errcmp diagnostics = %d, want 3 (==, !=, %%v):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Fatalf("diagnostic carries no fix: %s", d)
		}
	}

	// Dry run: diff renders, disk is untouched.
	results, err := ApplyFixes(diags, false)
	if err != nil {
		t.Fatalf("ApplyFixes(dry): %v", err)
	}
	if len(results) != 1 || results[0].Applied != 3 || results[0].Skipped != 0 {
		t.Fatalf("dry run results = %+v, want one file with 3 applied, 0 skipped", results)
	}
	diff := Diff(results[0])
	for _, want := range []string{"--- " + path, "-\tif err == ErrBoom {", "+\tif errors.Is(err, ErrBoom) {"} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff missing %q:\n%s", want, diff)
		}
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != fixFixture {
		t.Fatalf("dry run modified the file (err=%v)", err)
	}

	// Write pass: the rewritten file must load cleanly and lint clean.
	if _, err := ApplyFixes(diags, true); err != nil {
		t.Fatalf("ApplyFixes(write): %v", err)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(fixed)
	for _, want := range []string{"errors.Is(err, ErrBoom)", "!errors.Is(err, ErrBoom)", "classify: %w", "\"errors\""} {
		if !strings.Contains(src, want) {
			t.Errorf("fixed source missing %q:\n%s", want, src)
		}
	}
	if strings.Count(src, "\"errors\"") != 1 {
		t.Errorf("errors import inserted %d times, want exactly once:\n%s",
			strings.Count(src, "\"errors\""), src)
	}

	pkgs := loadFixFixture(t, dir)
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixed source does not type-check: %v\n%s", p.TypeErrors, src)
		}
	}
	if diags := Run(pkgs, []*Analyzer{ErrCmp}); len(diags) != 0 {
		t.Fatalf("errcmp still fires after -fix:\n%v", diags)
	}
}

// TestApplyFixesRejectsOverlap pins the atomicity rule: a fix whose edits
// overlap an accepted fix is dropped whole, and the survivor still applies.
func TestApplyFixesRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "o.go")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Fixes: []SuggestedFix{{Message: "first", Edits: []TextEdit{{File: path, Start: 0, End: 3, New: "XYZ"}}}}},
		{Fixes: []SuggestedFix{{
			Message: "second",
			Edits: []TextEdit{
				{File: path, Start: 5, End: 6, New: "Q"},
				{File: path, Start: 2, End: 4, New: "!!"}, // overlaps the first fix
			},
		}}},
	}
	results, err := ApplyFixes(diags, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Applied != 1 || results[0].Skipped != 1 {
		t.Fatalf("results = %+v, want 1 applied and 1 skipped", results)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "XYZdef" {
		t.Fatalf("content = %q, want %q (overlapping fix must not partially apply)", got, "XYZdef")
	}
}
