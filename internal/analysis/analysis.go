// Package analysis is hslint's analyzer framework: a small, stdlib-only
// counterpart to golang.org/x/tools/go/analysis (the module deliberately has
// no external dependencies). It hosts the repo-specific analyzers that turn
// the engine's prose invariants — lock ordering, snapshot immutability,
// search determinism, sentinel-error matching, float comparison discipline,
// context propagation — into machine-checked ones. See DESIGN.md §10.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, located and attributed to a check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Fixes are machine-applicable rewrites that resolve the finding.
	// hslint -fix applies them (see fix.go); text/SARIF output ignores them.
	Fixes []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Check)
}

// SuggestedFix is one coherent rewrite: all of its edits apply together or
// not at all.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the byte range [Start, End) of File with New. Offsets
// are byte offsets into the file as loaded; File is the absolute path from
// the token.FileSet.
type TextEdit struct {
	File  string
	Start int
	End   int
	New   string
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *types.Package
	PkgName  string
	Files    []*ast.File
	Info     *types.Info

	pkg    *Package // back-reference for shared per-package state (summaries)
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportFix records a diagnostic at pos carrying suggested fixes.
func (p *Pass) ReportFix(pos token.Pos, msg string, fixes ...SuggestedFix) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: msg,
		Fixes:   fixes,
	})
}

// Offset returns the byte offset of pos within its file, for TextEdits.
func (p *Pass) Offset(pos token.Pos) int { return p.Fset.Position(pos).Offset }

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// All returns every analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LockOrder,
		SnapImmutable,
		Determinism,
		ErrCmp,
		FloatEq,
		CtxFlow,
		HotAlloc,
		GoroLife,
		AtomicPub,
		BoundedGrowth,
	}
}

// byName resolves a set of analyzer names; unknown names are reported along
// with the full set of known check names.
func byName(names []string) ([]*Analyzer, error) {
	index := make(map[string]*Analyzer)
	var known []string
	for _, a := range All() {
		index[a.Name] = a
		known = append(known, a.Name)
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (available: %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Select returns the analyzers with the given names (all of them when names
// is empty).
func Select(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	return byName(names)
}

// Run applies the analyzers to each package, applies //hslint:ignore
// directives, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg.Types,
				PkgName:  pkg.Name,
				Files:    pkg.Files,
				Info:     pkg.Info,
				pkg:      pkg,
				report:   func(d Diagnostic) { pkgDiags = append(pkgDiags, d) },
			}
			a.Run(pass)
		}
		ran := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		diags = append(diags, applyIgnores(pkg, pkgDiags, ran)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// isTestFile reports whether pos is inside a _test.go file. Analyzers that
// guard exported-API or reproducibility invariants skip test files; the
// comparison-discipline analyzers (floateq, errcmp) deliberately do not.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
