package analysis

// Golden-file test harness: runGolden loads a testdata tree in the loader's
// loose mode (each directory is one package, so the go tool's refusal to
// enumerate testdata does not matter), runs the given analyzers through the
// same Run path as cmd/hslint — ignore directives included — and checks the
// diagnostics against `// want "regex"` comments in the fixture sources.
//
// A want comment expects one diagnostic on its own line whose message matches
// the regex; several quoted regexes on one comment expect several
// diagnostics. Every diagnostic must be claimed by a distinct want and every
// want must claim a diagnostic, so fixtures pin both the positives and the
// negatives of each analyzer.

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod, which is
// where the loader must run `go list` so fixture imports resolve.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test working directory")
		}
		dir = parent
	}
}

type goldenWant struct {
	file    string
	line    int
	raw     string
	re      *regexp.Regexp
	matched bool
}

// runGolden analyzes every package under dir (relative to this package's
// directory) with the given analyzers and matches diagnostics to wants.
func runGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs := loadGolden(t, dir)
	diags := Run(pkgs, analyzers)

	var wants []*goldenWant
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, raw := range splitWants(t, pos, strings.TrimPrefix(text, "want ")) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
						}
						wants = append(wants, &goldenWant{
							file: pos.Filename, line: pos.Line, raw: raw, re: re,
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// loadGolden loads the fixture tree at dir in loose mode.
func loadGolden(t *testing.T, dir string) []*Package {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(moduleRoot(t)).LoadDir(abs)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return pkgs
}

// splitWants parses the quoted regexes of one want comment. Both `...` and
// "..." quoting are accepted; a double-quoted segment must not contain an
// escaped quote (use backquotes for regexes that need one).
func splitWants(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		q := s[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: want expectation must be quoted, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("%s: unterminated want expectation %q", pos, s)
		}
		seg, err := strconv.Unquote(s[:end+2])
		if err != nil {
			t.Fatalf("%s: bad want expectation %q: %v", pos, s[:end+2], err)
		}
		out = append(out, seg)
		s = s[end+2:]
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no expectation", pos)
	}
	return out
}
