package analysis

// GoroLife enforces the serving stack's drained-shutdown contract: every
// goroutine started in non-test production code must be joinable or
// cancellable. A spawn is supervised when, somewhere in the transitive
// in-package closure of its body, one of these holds:
//
//   - it calls Done on a WaitGroup some function in the package Waits on;
//   - it closes a channel some function in the package receives from
//     (done-channel join, the batcher's workerDone protocol);
//   - it receives from or ranges over a channel some function in the
//     package closes (queue-drain workers);
//   - it sends on a channel some function in the package receives from
//     (the single-shot errc pattern);
//   - it consumes a cancellable context (ctx.Done()/Err(), or passes a
//     context on to a callee);
//   - it is a method spawn `go x.M(...)` where the package calls a
//     shutdown-shaped method (Close/Shutdown/Stop/Wait) on the same root
//     object, or the spawned call is handed a context.
//
// Anything else is a worker nobody can stop or wait for: it outlives Close,
// races test teardown, and leaks under churn.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc:  "goroutines must be joined (WaitGroup/done-channel) or cancellable (ctx)",
	Run:  runGoroLife,
}

func runGoroLife(pass *Pass) {
	ps := pass.Summary()
	for _, sum := range ps.All {
		if isTestFile(pass.Fset, sum.Decl.Pos()) {
			continue
		}
		checkSpawns(pass, ps, sum, sum)
	}
}

// checkSpawns reports unsupervised spawns in sum; encloser is the declared
// function the spawn is attributed to (spawn bodies nest).
func checkSpawns(pass *Pass, ps *PkgSummary, encloser, sum *Summary) {
	for _, sp := range sum.Spawns {
		if !spawnSupervised(pass, ps, sp) {
			pass.Reportf(sp.Stmt.Pos(),
				"goroutine started in %s has no join or cancellation path (join it with a WaitGroup or done-channel, or pass a context it selects on)",
				funcName(encloser.Decl))
		}
		if sp.Body != nil {
			checkSpawns(pass, ps, encloser, sp.Body)
		}
	}
}

func spawnSupervised(pass *Pass, ps *PkgSummary, sp *SpawnSite) bool {
	// Dynamic spawns (go f() through a function variable) are beyond the
	// static graph; stay quiet rather than guess.
	if sp.Dynamic {
		return true
	}

	// Method spawn on a root the package shuts down: go hs.Serve(ln) is
	// supervised by a reachable hs.Shutdown(ctx)/hs.Close().
	if sp.RecvRoot != nil && ps.ClosesRootAnywhere(sp.RecvRoot) {
		return true
	}

	// A context handed to the spawned call keeps it cancellable.
	if sp.Stmt != nil {
		for _, arg := range sp.Stmt.Call.Args {
			if isContextType(pass.TypeOf(arg)) {
				return true
			}
		}
	}

	// Resolve the spawned body: literal summary, or the in-package callee's.
	var start *Summary
	switch {
	case sp.Body != nil:
		start = sp.Body
	case sp.CalleeLocal:
		start = ps.Funcs[sp.Callee]
	}
	if start == nil {
		// Out-of-package named spawn with no shutdown root and no ctx.
		return false
	}

	for _, s := range ps.Closure(start) {
		if s.UsesContext {
			return true
		}
		for wg := range s.WGDones {
			if ps.WaitsAnywhere(wg) {
				return true
			}
		}
		for ch := range s.ChanCloses {
			if ps.RecvsAnywhere(ch) {
				return true
			}
		}
		for ch := range s.ChanRecvs {
			if ps.ClosesAnywhere(ch) {
				return true
			}
		}
		for ch := range s.ChanSends {
			if ps.RecvsAnywhere(ch) {
				return true
			}
		}
	}
	return false
}
