package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPub guards lock-free publication: once a field is accessed through
// the sync/atomic function API anywhere in a package, every other access to
// that field must be atomic too. A single plain read races every atomic
// store; a plain write tears the publication protocol snapimmutable assumes.
// The check is interprocedural in the sense that the atomic access and the
// plain one may live in different functions — the summaries union the
// atomically-accessed field set across the whole package (including spawned
// goroutine bodies) before the access walk runs.
//
// Also flagged: reassigning a typed atomic field (atomic.Pointer[T],
// atomic.Value, atomic.Bool, ...) outside a constructor — `s.snap = x`
// bypasses Store and copies the internal state go vet's copylocks only
// catches for locks.
//
// Constructor-shaped functions (New*/new*/Load*/load*/init/main) are exempt:
// before the value is published there is no concurrent reader.
var AtomicPub = &Analyzer{
	Name: "atomicpub",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicPub,
}

func runAtomicPub(pass *Pass) {
	ps := pass.Summary()

	// Union the atomically-accessed variable set across the package.
	atomicVars := make(map[*types.Var]bool)
	var collect func(*Summary)
	collect = func(s *Summary) {
		for v := range s.AtomicFields {
			atomicVars[v] = true
		}
		for _, sp := range s.Spawns {
			if sp.Body != nil {
				collect(sp.Body)
			}
		}
	}
	for _, s := range ps.All {
		collect(s)
	}

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if constructorNamed(fd.Name.Name) {
				continue
			}
			checkAtomicAccesses(pass, fd, atomicVars)
		}
	}
}

// checkAtomicAccesses flags plain accesses to atomically-published variables
// inside one function body.
func checkAtomicAccesses(pass *Pass, fd *ast.FuncDecl, atomicVars map[*types.Var]bool) {
	info := pass.Info

	// sanctioned marks the &v operands of sync/atomic calls: those accesses
	// ARE the atomic protocol.
	sanctioned := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isFromPkg(info.ObjectOf(sel.Sel), "sync/atomic") {
			return true
		}
		for _, arg := range call.Args {
			if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
				sanctioned[un.X] = true
			}
		}
		return true
	})

	// Writes: LHS of assignments and IncDec operands.
	writes := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writes[lhs] = true
			}
		case *ast.IncDecStmt:
			writes[n.X] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if sanctioned[e] {
			return false // the atomic access itself; don't descend into x.f's x
		}
		v := refVar(info, e)
		if v == nil || !atomicVars[v] {
			return true
		}
		// Selector chains resolve the same field var at two depths (x.f via
		// Selections and f via Uses); report the outermost node only.
		if _, isIdent := e.(*ast.Ident); isIdent && v.IsField() {
			return true
		}
		verb := "read"
		if writes[e] {
			verb = "write"
		}
		pass.Reportf(e.Pos(),
			"plain %s of %s, which is accessed via sync/atomic elsewhere in the package; use atomic loads/stores everywhere",
			verb, exprText(e))
		return false
	})

	// Typed atomic fields (atomic.Pointer[T], atomic.Value, ...): assignment
	// replaces the value wholesale, bypassing Store.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			v := refVar(info, sel)
			if v == nil || !v.IsField() || !typedAtomic(v.Type()) {
				continue
			}
			pass.Reportf(lhs.Pos(),
				"assignment to atomic field %s bypasses Store; use %s.Store(...)",
				exprText(lhs), exprText(lhs))
		}
		return true
	})
}

// typedAtomic reports whether t is one of sync/atomic's typed wrappers.
func typedAtomic(t types.Type) bool {
	for _, name := range []string{"Pointer", "Value", "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr"} {
		if namedIn(t, "atomic", name) {
			return true
		}
	}
	return false
}
