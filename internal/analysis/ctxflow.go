package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces the cancellation discipline PR 1 threaded through the
// engine: exported entry points of the training/search/serving/lifecycle
// packages (core, genetic, serve, lifecycle, registry, and the model-family
// packages under internal/family/...) that loop over cancellable work
// — generations, shards, queued requests, retrain episodes — must accept a
// context.Context (or *http.Request, whose context serves) and actually use
// it. Concretely, an exported
// function is flagged when a loop in its body performs cancellable work —
// calls a function that itself takes a context, blocks on a channel or
// select, or sleeps — while the function either has no context-carrying
// parameter or never references the one it has.
//
// Pure bounded computation (the lock-free predict fast path) does not
// trigger the analyzer: looping over shards calling arithmetic is fine;
// looping around ctx-aware work without propagating a ctx is not.
// Close() error is exempt — io.Closer's shape is fixed, and drain-on-close
// is its documented contract. Test files are exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported core/genetic/serve/lifecycle functions looping over cancellable work must accept and use a context",
	Run:  runCtxFlow,
}

var ctxFlowPkgs = map[string]bool{
	"core": true, "genetic": true, "serve": true, "lifecycle": true,
	// Model families run searches and per-cluster fits inside Fit; a family
	// that loops without honoring its context would make the selection
	// harness (and TrainResilient's timeout rung) uncancellable.
	"family": true, "spline": true, "residual": true, "dal": true,
	// The registry fans requests and sample batches across entries; its
	// exported loops (Submit, fan-out predict paths) must stay cancellable or
	// one slow entry would wedge every caller.
	"registry": true,
}

func runCtxFlow(pass *Pass) {
	if !ctxFlowPkgs[pass.PkgName] {
		return
	}
	eachFuncDecl(pass, func(fd *ast.FuncDecl) {
		if !fd.Name.IsExported() || isTestFile(pass.Fset, fd.Pos()) || isCloser(pass, fd) {
			return
		}
		ctxParams := contextParams(pass, fd)

		var loopPos ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if loopPos != nil {
				return false
			}
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				// Ranging over a channel blocks on every iteration: that is
				// cancellable work regardless of the loop body.
				if t := pass.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						loopPos = n
						return false
					}
				}
				body = n.Body
			default:
				return true
			}
			if loopDoesCancellableWork(pass, body) {
				loopPos = n
			}
			return true
		})
		if loopPos == nil {
			return
		}
		if len(ctxParams) == 0 {
			pass.Reportf(loopPos.Pos(),
				"exported %s loops over cancellable work but has no context.Context parameter; long runs cannot be cancelled",
				funcName(fd))
			return
		}
		if !paramsUsed(pass, fd.Body, ctxParams) {
			pass.Reportf(loopPos.Pos(),
				"exported %s accepts a context but never uses it; check ctx.Err (or pass ctx on) inside the loop",
				funcName(fd))
		}
	})
}

// isCloser reports whether fd is a Close() error method, io.Closer's shape.
func isCloser(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Close" || fd.Recv == nil {
		return false
	}
	sig, ok := pass.TypeOf(fd.Name).(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		isErrorType(sig.Results().At(0).Type())
}

// contextParams returns the objects of parameters that carry a context:
// context.Context values and *http.Request (via r.Context()).
func contextParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.ObjectOf(name)
			if obj == nil {
				continue
			}
			t := obj.Type()
			if isContextType(t) || namedIn(t, "http", "Request") {
				out = append(out, obj)
			}
		}
	}
	return out
}

// loopDoesCancellableWork reports whether a loop body contains work the
// engine considers cancellable: a call whose callee accepts a
// context.Context, a channel operation or select, or a time.Sleep.
func loopDoesCancellableWork(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // <-ch receive
				found = true
			}
		case *ast.CallExpr:
			if sig, ok := pass.TypeOf(n.Fun).(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					if isContextType(sig.Params().At(i).Type()) {
						found = true
					}
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj := pass.Info.ObjectOf(sel.Sel); isFromPkg(obj, "time") && obj.Name() == "Sleep" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// paramsUsed reports whether any of the given parameter objects is
// referenced in body.
func paramsUsed(pass *Pass, body *ast.BlockStmt, params []types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := pass.Info.ObjectOf(id)
			for _, p := range params {
				if obj == p {
					used = true
				}
			}
		}
		return !used
	})
	return used
}
