// The -fix engine: applies the SuggestedFixes carried by diagnostics.
//
// Edits are byte-range replacements keyed by file. Application is
// conservative: within one file, edits are sorted by start offset and any
// edit overlapping an already-accepted one is dropped along with its whole
// SuggestedFix (a fix applies atomically or not at all). Descending-offset
// application keeps earlier offsets valid without bookkeeping.
package analysis

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// FixResult describes what ApplyFixes did to one file.
type FixResult struct {
	File    string
	Applied int    // fixes applied
	Skipped int    // fixes dropped due to overlap
	Old     []byte // original content
	New     []byte // rewritten content
}

// ApplyFixes collects every fix on diags, applies them per file, and returns
// the per-file results in stable order. When write is true the rewritten
// content is saved back to disk; otherwise the caller renders diffs.
func ApplyFixes(diags []Diagnostic, write bool) ([]FixResult, error) {
	type fix struct {
		edits []TextEdit
	}
	byFile := make(map[string][]fix) // keyed by the file of the first edit
	for _, d := range diags {
		for _, sf := range d.Fixes {
			if len(sf.Edits) == 0 {
				continue
			}
			byFile[sf.Edits[0].File] = append(byFile[sf.Edits[0].File], fix{edits: sf.Edits})
		}
	}

	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var results []FixResult
	for _, file := range files {
		content, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("applying fixes: %w", err)
		}
		res := FixResult{File: file, Old: content}

		// Accept fixes greedily in offset order; a fix with any edit that
		// overlaps an accepted edit (or falls outside the file) is skipped.
		fixes := byFile[file]
		sort.SliceStable(fixes, func(i, j int) bool {
			return fixes[i].edits[0].Start < fixes[j].edits[0].Start
		})
		var accepted []TextEdit
		overlaps := func(e TextEdit) bool {
			if e.Start < 0 || e.End < e.Start || e.End > len(content) {
				return true
			}
			for _, a := range accepted {
				if a.File == e.File && e.Start < a.End && a.Start < e.End {
					// Pure insertions at the same point stack fine; anything
					// else is a conflict.
					if !(e.Start == e.End && a.Start == a.End) {
						return true
					}
				}
			}
			return false
		}
		dupInsert := func(e TextEdit) bool {
			for _, a := range accepted {
				if a == e && e.Start == e.End {
					return true
				}
			}
			return false
		}
		for _, fx := range fixes {
			bad := false
			var add []TextEdit
			for _, e := range fx.edits {
				if e.File != file || overlaps(e) {
					bad = true
					break
				}
				// Identical insertions collapse: two fixes adding the same
				// import must not stack it twice.
				if dupInsert(e) {
					continue
				}
				add = append(add, e)
			}
			if bad {
				res.Skipped++
				continue
			}
			accepted = append(accepted, add...)
			res.Applied++
		}

		// Apply in descending start order so earlier offsets stay valid.
		sort.SliceStable(accepted, func(i, j int) bool {
			return accepted[i].Start > accepted[j].Start
		})
		// Copy before editing: the append-splices below would otherwise
		// scribble over res.Old through the shared backing array.
		out := append([]byte(nil), content...)
		for _, e := range accepted {
			out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
		}
		res.New = out

		if write && res.Applied > 0 {
			info, err := os.Stat(file)
			mode := os.FileMode(0o644)
			if err == nil {
				mode = info.Mode()
			}
			if err := os.WriteFile(file, out, mode); err != nil {
				return nil, fmt.Errorf("applying fixes: %w", err)
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// Diff renders a minimal unified-style diff of one FixResult for the -fix
// -diff dry run.
func Diff(r FixResult) string {
	oldLines := strings.Split(string(r.Old), "\n")
	newLines := strings.Split(string(r.New), "\n")

	// Trim common prefix and suffix; the middle is the hunk.
	pre := 0
	for pre < len(oldLines) && pre < len(newLines) && oldLines[pre] == newLines[pre] {
		pre++
	}
	post := 0
	for post < len(oldLines)-pre && post < len(newLines)-pre &&
		oldLines[len(oldLines)-1-post] == newLines[len(newLines)-1-post] {
		post++
	}

	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n+++ %s\n", r.File, r.File)
	fmt.Fprintf(&b, "@@ -%d,%d +%d,%d @@\n",
		pre+1, len(oldLines)-pre-post, pre+1, len(newLines)-pre-post)
	for _, l := range oldLines[pre : len(oldLines)-post] {
		b.WriteString("-" + l + "\n")
	}
	for _, l := range newLines[pre : len(newLines)-post] {
		b.WriteString("+" + l + "\n")
	}
	return b.String()
}
