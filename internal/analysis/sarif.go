// SARIF 2.1.0 output for CI code-scanning annotations. The encoding is the
// minimal subset GitHub's upload-sarif action consumes: one run, one rule
// per analyzer, one result per diagnostic with a physical location whose URI
// is slash-relative to the module root. Baselined findings are emitted with
// level "note" and an external suppression so they annotate without failing
// the scan.
package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. root is the module root
// file paths are made relative to; baselined marks the diagnostics carried
// by the committed baseline (emitted as suppressed notes rather than
// errors). analyzers supplies the rule table.
func SARIF(diags []Diagnostic, baselined []bool, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: metaCheck,
		ShortDescription: sarifMessage{Text: "hslint ignore-directive hygiene"}})

	results := make([]sarifResult, 0, len(diags))
	for i, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		r := sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
		if i < len(baselined) && baselined[i] {
			r.Level = "note"
			r.Suppressions = []sarifSuppression{{Kind: "external"}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hslint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
