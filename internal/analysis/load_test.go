package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDirLooseBrokenImport pins loose mode's contract: a fixture with an
// unresolvable import still loads — syntax and partial type information are
// returned, the failure is recorded on TypeErrors, and the analyzer driver
// can run over the package without panicking.
func TestLoadDirLooseBrokenImport(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "broken.go", `package broken

import "no/such/module/anywhere"

var X = anywhere.Value

func F() int { return X + 1 }
`)

	pkgs, err := NewLoader(moduleRoot(t)).LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir on broken fixture failed hard, want loose load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("packages = %d, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "broken" {
		t.Errorf("package name = %q, want broken", p.Name)
	}
	if len(p.Files) != 1 {
		t.Errorf("files = %d, want 1", len(p.Files))
	}
	if len(p.TypeErrors) == 0 {
		t.Error("TypeErrors empty, want the unresolvable import recorded")
	}
	// Analyzers must tolerate the partial type information.
	_ = Run(pkgs, All())
}

// TestLoadDirResolvesModuleImports pins the export-data path: a fixture
// importing an intra-module package type-checks cleanly because the loader
// materializes export data on demand via `go list -export`.
func TestLoadDirResolvesModuleImports(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "uses.go", `package uses

import "hsmodel/internal/regress"

var Sentinel = regress.ErrBadInput
`)

	pkgs, err := NewLoader(moduleRoot(t)).LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("packages = %d, want 1", len(pkgs))
	}
	if errs := pkgs[0].TypeErrors; len(errs) != 0 {
		t.Fatalf("module import did not resolve from export data: %v", errs)
	}
	obj := pkgs[0].Types.Scope().Lookup("Sentinel")
	if obj == nil || !isErrorType(obj.Type()) {
		t.Fatalf("Sentinel = %v, want an error-typed var resolved through regress", obj)
	}
}

// TestLoadDirPackageNameScoping pins that analyzer scoping keys on the
// package *name* from the package clause, not the directory path: the same
// unbounded-growth code fires under `package serve` and stays silent under a
// name outside the production scope, even though both live in neutral
// temp directories.
func TestLoadDirPackageNameScoping(t *testing.T) {
	src := `package %s

type store struct {
	seen map[string]int
}

func (s *store) Handle(k string) {
	s.seen[k]++
}
`
	for name, wantDiags := range map[string]int{"serve": 1, "scratchpad": 0} {
		dir := filepath.Join(t.TempDir(), "fixture")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		writeFixture(t, dir, "store.go", applyName(src, name))

		pkgs, err := NewLoader(moduleRoot(t)).LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		if pkgs[0].Name != name {
			t.Fatalf("package name = %q, want %q (must come from the package clause)", pkgs[0].Name, name)
		}
		diags := Run(pkgs, []*Analyzer{BoundedGrowth})
		if len(diags) != wantDiags {
			t.Errorf("package %s: boundedgrowth diagnostics = %d, want %d:\n%v",
				name, len(diags), wantDiags, diags)
		}
	}
}

func applyName(src, name string) string {
	return "package " + name + src[len("package %s"):]
}

// TestLoadPackagesTestOnlyDeps pins the fallback `go list` in
// resolveImports: in-package test files import packages (testing, os/exec)
// that the -deps walk of the non-test build never surfaces, and the loader
// must fetch their export data on demand for strict checking to succeed.
func TestLoadPackagesTestOnlyDeps(t *testing.T) {
	pkgs, err := NewLoader(moduleRoot(t)).LoadPackages("hsmodel/internal/faultinject")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	found := false
	for _, p := range pkgs {
		if p.Name == "faultinject" {
			found = true
			if len(p.TypeErrors) != 0 {
				t.Errorf("strictly loaded package carries type errors: %v", p.TypeErrors)
			}
			hasTest := false
			for _, f := range p.Files {
				if isTestFile(p.Fset, f.Pos()) {
					hasTest = true
				}
			}
			if !hasTest {
				t.Error("in-package test files missing from the strict load")
			}
		}
	}
	if !found {
		t.Fatal("package faultinject not loaded")
	}
}
