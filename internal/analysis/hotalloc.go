package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-steady-state-allocation contract of the
// serving hot path (DESIGN.md §13). It is opt-in: a function whose doc
// comment carries a `//hslint:hotpath` line promises that a steady-state
// call allocates nothing, and the analyzer flags the constructs that break
// that promise:
//
//   - make — per-call slice/map/chan construction; buffers belong in scratch
//     or construction-time state;
//   - append — growth is data-dependent, so even an append that usually has
//     capacity allocates on the wrong input; preallocate and use indexed
//     writes;
//   - map composite literals — always allocate;
//   - function literals that capture enclosing variables — the closure
//     context is heap-allocated per call; hoist the closure or pass state
//     explicitly.
//
// Growth paths deliberately live in un-annotated helpers (PredictScratch's
// ensure methods, the batcher's constructor): the annotation marks the
// per-call path, not the warm-up. Test files are exempt.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//hslint:hotpath functions must not allocate: no make, append, map literals, or capturing closures",
	Run:  runHotAlloc,
}

// hotpathMarker is the doc-comment line that opts a function in. It shares
// the //hslint: namespace with the ignore directive but is a distinct verb,
// so directive hygiene (unknown-check detection) does not apply to it.
const hotpathMarker = "//hslint:hotpath"

// isHotpath reports whether fd's doc comment carries the marker line.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	eachFuncDecl(pass, func(fd *ast.FuncDecl) {
		if isTestFile(pass.Fset, fd.Pos()) || !isHotpath(fd) {
			return
		}
		checkHotpathBody(pass, fd)
	})
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	name := funcName(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isBuiltinMake(pass, x) {
				pass.Reportf(x.Pos(),
					"make in hotpath %s allocates per call; preallocate the buffer in scratch or construction-time state and reuse it", name)
			}
			if isBuiltinAppend(pass, x) {
				pass.Reportf(x.Pos(),
					"append in hotpath %s can grow on any call (growth is data-dependent); preallocate to the high-water mark and use indexed writes", name)
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(x); t != nil && isMapType(t) {
				pass.Reportf(x.Pos(),
					"map literal in hotpath %s allocates per call; build the map once at construction", name)
			}
		case *ast.FuncLit:
			if capt := capturedVar(pass, fd, x); capt != "" {
				pass.Reportf(x.Pos(),
					"closure in hotpath %s captures %s, heap-allocating its context per call; hoist the closure or pass the state explicitly", name, capt)
			}
			// The literal runs on its own terms (often deferred or handed
			// elsewhere); the hotpath promise covers the annotated body only.
			return false
		}
		return true
	})
}

// isBuiltinMake reports whether call invokes the make builtin.
func isBuiltinMake(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin && id.Name == "make"
}

// capturedVar returns the name of a variable the literal captures from the
// enclosing function (receiver, parameter, or local — anything declared
// inside fd but outside lit), or "". References to package-level state do
// not count: a closure over globals compiles to a static function value.
func capturedVar(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captured = v.Name()
		}
		return true
	})
	return captured
}
