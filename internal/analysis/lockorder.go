package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the Trainer's two-lock protocol (internal/core/trainer.go):
// trainMu serializes training runs and is NEVER acquired while mu (the
// sample-store lock) is held — the reverse order is what lets AddSamples
// proceed during a search. It also flags a sync.Mutex Lock with no matching
// Unlock (direct or deferred) anywhere in the same function, the
// copy-paste bug that turns a degraded train run into a deadlock.
//
// The walk is a linear source-order approximation of control flow, plus a
// one-level call summary: calling a function that itself acquires a field
// named trainMu while a mu-field lock is held is flagged too.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "trainMu must never be acquired while mu is held; every Lock needs an Unlock",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	// One-level summary: which functions in this package directly acquire a
	// mutex field named trainMu?
	locksTrainMu := make(map[types.Object]bool)
	eachFuncDecl(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if _, field, method, ok := mutexCall(pass.Info, call); ok &&
					field == "trainMu" && (method == "Lock" || method == "TryLock") {
					locksTrainMu[pass.Info.ObjectOf(fd.Name)] = true
				}
			}
			return true
		})
	})

	eachFuncDecl(pass, func(fd *ast.FuncDecl) {
		walkLockScope(pass, fd.Body, locksTrainMu)
	})
}

// walkLockScope analyzes one function (or closure) body with fresh lock state.
func walkLockScope(pass *Pass, body *ast.BlockStmt, locksTrainMu map[types.Object]bool) {
	held := make(map[string]token.Pos) // currently held, linear approximation
	firstLock := make(map[string]token.Pos)
	released := make(map[string]bool) // any Unlock or defer Unlock seen
	skip := make(map[ast.Node]bool)   // call nodes consumed by defer handling

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures run at a different time than they are declared;
			// analyze them as independent scopes.
			walkLockScope(pass, n.Body, locksTrainMu)
			return false

		case *ast.DeferStmt:
			if key, _, method, ok := mutexCall(pass.Info, n.Call); ok &&
				(method == "Unlock" || method == "RUnlock") {
				released[key] = true
			}
			// defer func() { mu.Unlock() }() also releases at exit.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if key, _, method, ok := mutexCall(pass.Info, call); ok &&
							(method == "Unlock" || method == "RUnlock") {
							released[key] = true
						}
					}
					return true
				})
			}
			skip[n.Call] = true
			return true

		case *ast.CallExpr:
			if skip[n] {
				return true
			}
			if key, field, method, ok := mutexCall(pass.Info, n); ok {
				switch method {
				case "Lock", "RLock":
					if field == "trainMu" {
						for h := range held {
							if lockBase(h) == lockBase(key) && h != key && fieldOf(h) == "mu" {
								pass.Reportf(n.Pos(),
									"trainMu acquired while mu is held; the trainer's lock order is trainMu before mu (trainer.go contract)")
							}
						}
					}
					held[key] = n.Pos()
					if _, seen := firstLock[key]; !seen {
						firstLock[key] = n.Pos()
					}
				case "Unlock", "RUnlock":
					delete(held, key)
					released[key] = true
				}
				return true
			}
			// Cross-function, one level deep: a callee that locks trainMu
			// while we hold a mu is the same ordering violation.
			if callee := calledFunc(pass.Info, n); callee != nil && locksTrainMu[callee] {
				for h := range held {
					if fieldOf(h) == "mu" {
						pass.Reportf(n.Pos(),
							"call to %s acquires trainMu while mu is held", callee.Name())
					}
				}
			}
		}
		return true
	})

	for key, pos := range firstLock {
		if !released[key] {
			pass.Reportf(pos,
				"%s is locked but never unlocked in this function (no Unlock or defer Unlock)", fieldOf(key))
		}
	}
}

// fieldOf returns the final field name of a lock key.
func fieldOf(key string) string {
	base := lockBase(key)
	if base == key {
		return key
	}
	return key[len(base)+1:]
}

// calledFunc resolves the static callee of a call, if it is a declared
// function or method.
func calledFunc(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}
