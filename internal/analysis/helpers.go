package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// namedIn reports whether t (after stripping one pointer) is a named type
// with the given name declared in a package with the given package name.
// Matching by package *name* rather than import path lets the analyzers
// apply identically to the real packages and to testdata stand-ins.
func namedIn(t types.Type, pkgName, typeName string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	return namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex")
}

// isFromPkg reports whether obj is declared in the package with the given
// import path.
func isFromPkg(obj types.Object, path string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return namedIn(t, "context", "Context")
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// lockKey names a mutex-valued selector chain rooted at an identifier, e.g.
// "m.mu" or "s.inner.trainMu", pairing the root object's identity with the
// printed field path so distinct receivers get distinct keys. ok is false
// for expressions the walker cannot name (function results, map elements).
func lockKey(info *types.Info, e ast.Expr) (key string, ok bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%p.%s", obj, e.Name), true
	case *ast.SelectorExpr:
		base, ok := lockKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return lockKey(info, e.X)
	case *ast.StarExpr:
		return lockKey(info, e.X)
	}
	return "", false
}

// lockBase strips the final field from a lock key: the two locks in an
// ordering violation must hang off the same owner.
func lockBase(key string) string {
	i := strings.LastIndex(key, ".")
	if i < 0 {
		return key
	}
	return key[:i]
}

// mutexCall decomposes a call of the form <expr>.<mutexField>.<method>()
// where the receiver of method is a sync mutex. It returns the lock key of
// the mutex expression, the final field name holding the mutex, and the
// method name (Lock, Unlock, RLock, RUnlock, TryLock).
func mutexCall(info *types.Info, call *ast.CallExpr) (key, field, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return
	}
	recv := sel.X
	if !isMutex(info.TypeOf(recv)) {
		return
	}
	key, kok := lockKey(info, recv)
	if !kok {
		return
	}
	field = key[strings.LastIndex(key, ".")+1:]
	return key, field, sel.Sel.Name, true
}

// funcName renders a function or method name for diagnostics.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// declaredOutside reports whether the object behind an identifier (or the
// root identifier of a selector chain) is declared outside the [lo, hi)
// position range — used to tell loop-local accumulators from captured ones.
func declaredOutside(info *types.Info, e ast.Expr, lo, hi ast.Node) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return false
			}
			return obj.Pos() < lo.Pos() || obj.Pos() >= hi.End()
		default:
			return false
		}
	}
}

// rootObject returns the object of the leftmost identifier in a selector /
// index chain.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return info.ObjectOf(x)
		default:
			return nil
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// exprText renders an expression for diagnostics.
func exprText(e ast.Expr) string { return types.ExprString(e) }

// eachFuncDecl invokes fn for every function declaration with a body.
func eachFuncDecl(pass *Pass, fn func(*ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
