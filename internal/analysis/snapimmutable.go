package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapImmutable enforces the serving architecture's central contract
// (internal/core/snapshot.go): a core.Snapshot is immutable after
// construction — lock-free readers depend on it — and the *served* snapshot
// is only ever replaced through an atomic.Pointer Store/CompareAndSwap.
// It flags (1) any write to a Snapshot field outside a constructor/loader
// in the defining package, and (2) any assignment of a *Snapshot into a
// plain struct field, which publishes a snapshot without the atomic
// pointer's release/acquire semantics.
var SnapImmutable = &Analyzer{
	Name: "snapimmutable",
	Doc:  "core.Snapshot fields are write-once; snapshots publish via atomic.Pointer",
	Run:  runSnapImmutable,
}

func isSnapshot(t types.Type) bool { return namedIn(t, "core", "Snapshot") }

// snapConstructor reports whether fd may legitimately initialize Snapshot
// fields: a constructor or loader declared in the Snapshot's own package.
func snapConstructor(pass *Pass, fd *ast.FuncDecl) bool {
	if pass.PkgName != "core" {
		return false
	}
	name := fd.Name.Name
	for _, prefix := range []string{"New", "new", "Load", "load"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runSnapImmutable(pass *Pass) {
	eachFuncDecl(pass, func(fd *ast.FuncDecl) {
		allowed := snapConstructor(pass, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					checkSnapshotWrite(pass, lhs, rhs, allowed)
				}
			case *ast.IncDecStmt:
				checkSnapshotWrite(pass, n.X, nil, allowed)
			}
			return true
		})
	})
}

func checkSnapshotWrite(pass *Pass, lhs, rhs ast.Expr, allowed bool) {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		// s.field = v where s is a (pointer to) Snapshot: field mutation.
		if isSnapshot(pass.TypeOf(lhs.X)) {
			if !allowed {
				pass.Reportf(lhs.Pos(),
					"write to core.Snapshot field %s outside a constructor; published snapshots are immutable (snapshot.go contract)",
					lhs.Sel.Name)
			}
			return
		}
		// x.field = snap where field's type is *Snapshot: a publication
		// that bypasses atomic.Pointer[Snapshot]. Clearing a field to nil
		// is not a publication.
		if rhs != nil {
			if tv, ok := pass.Info.Types[rhs]; ok && tv.IsNil() {
				return
			}
		}
		if t := pass.TypeOf(lhs); t != nil && !allowed {
			if p, ok := t.(*types.Pointer); ok && isSnapshot(p.Elem()) && isStructField(pass, lhs) {
				pass.Reportf(lhs.Pos(),
					"*core.Snapshot stored into plain field %s; publish snapshots through atomic.Pointer[core.Snapshot].Store/CompareAndSwap",
					lhs.Sel.Name)
			}
		}
	case *ast.StarExpr:
		// *p = Snapshot{...}: wholesale overwrite through a pointer.
		if isSnapshot(pass.TypeOf(lhs.X)) && !allowed {
			pass.Reportf(lhs.Pos(),
				"write through *core.Snapshot; published snapshots are immutable (snapshot.go contract)")
		}
	}
}

// isStructField reports whether sel selects a struct field (as opposed to a
// package-level var reached through a package qualifier).
func isStructField(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	return ok && v.IsField()
}
