package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrCmp enforces the typed-error protocol established in PR 1: the
// engine's sentinel errors (core.ErrModel*, core.ErrNotTrained,
// genetic.ErrEvalPanic/ErrCancelled, regress.ErrBadInput/ErrSingular,
// serve.ErrClosed, ...) travel through fmt.Errorf("...: %w", err) wrapping,
// so they MUST be matched with errors.Is — a == against the sentinel goes
// silently false the moment any layer wraps. Flagged:
//
//   - ==/!= where either operand is a package-level Err* sentinel (or
//     context.Canceled / context.DeadlineExceeded, which the search wraps);
//   - switch statements whose tag is an error compared against sentinels;
//   - fmt.Errorf calls that format an error argument with a verb other
//     than %w, which severs the errors.Is chain.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors must be matched with errors.Is and wrapped with %w",
	Run:  runErrCmp,
}

// isSentinelErr reports whether e denotes a package-level sentinel error
// variable: an error-typed var named Err* (any package), or the context
// package's cancellation sentinels.
func isSentinelErr(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := pass.Info.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() || !isErrorType(v.Type()) {
		return false
	}
	if strings.HasPrefix(v.Name(), "Err") {
		return true
	}
	return v.Pkg().Path() == "context" &&
		(v.Name() == "Canceled" || v.Name() == "DeadlineExceeded")
}

func runErrCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, op := range []ast.Expr{n.X, n.Y} {
					if isSentinelErr(pass, op) {
						pass.ReportFix(n.Pos(),
							fmt.Sprintf("%s compared with %s; wrapped errors make == silently false — use errors.Is",
								n.Op, exprText(op)),
							errorsIsFix(pass, f, n, op)...)
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass.TypeOf(n.Tag)) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if isSentinelErr(pass, v) {
							pass.Reportf(v.Pos(),
								"switch on error compares %s with ==; use if errors.Is chains instead",
								exprText(v))
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value with a
// verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.ObjectOf(sel.Sel)
	if !isFromPkg(obj, "fmt") || obj.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) || verb == 'w' {
			continue
		}
		arg := call.Args[argIdx]
		if t := pass.TypeOf(arg); t != nil && isErrorType(t) {
			pass.ReportFix(arg.Pos(),
				fmt.Sprintf("error %s wrapped with %%%c; use %%w so errors.Is still matches the sentinel through the wrap",
					exprText(arg), verb),
				wrapVerbFix(pass, call, i, verb)...)
		}
	}
}

// errorsIsFix rewrites `x == ErrSentinel` to `errors.Is(x, ErrSentinel)`
// (negated for !=), inserting an "errors" import when the file lacks one.
// Returns no fix when the rewrite cannot be done safely (no parenthesized
// import block to extend).
func errorsIsFix(pass *Pass, f *ast.File, cmp *ast.BinaryExpr, sentinel ast.Expr) []SuggestedFix {
	other := cmp.X
	if other == sentinel {
		other = cmp.Y
	}
	repl := fmt.Sprintf("errors.Is(%s, %s)", exprText(other), exprText(sentinel))
	if cmp.Op == token.NEQ {
		repl = "!" + repl
	}
	file := pass.Fset.Position(cmp.Pos()).Filename
	edits := []TextEdit{{
		File:  file,
		Start: pass.Offset(cmp.Pos()),
		End:   pass.Offset(cmp.End()),
		New:   repl,
	}}
	if imp := importEdit(pass, f, "errors"); imp != nil {
		edits = append(edits, *imp)
	} else if !hasImport(f, "errors") {
		return nil // cannot add the import safely; report without a fix
	}
	return []SuggestedFix{{Message: "rewrite with errors.Is", Edits: edits}}
}

// hasImport reports whether f already imports path.
func hasImport(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// importEdit returns an insertion adding `"path"` to f's first parenthesized
// import block, or nil when the import already exists or no block is
// available.
func importEdit(pass *Pass, f *ast.File, path string) *TextEdit {
	if hasImport(f, path) {
		return nil
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		// Insert before the first spec with a larger path, keeping the block
		// sorted; fall back to after the last spec.
		insertAt := gd.Specs[len(gd.Specs)-1].End()
		prefix, suffix := "\n\t", ""
		for _, spec := range gd.Specs {
			is, ok := spec.(*ast.ImportSpec)
			if !ok {
				continue
			}
			if strings.Trim(is.Path.Value, `"`) > path {
				insertAt = is.Pos()
				prefix, suffix = "", "\n\t"
				break
			}
		}
		off := pass.Offset(insertAt)
		return &TextEdit{
			File:  pass.Fset.Position(insertAt).Filename,
			Start: off,
			End:   off,
			New:   prefix + `"` + path + `"` + suffix,
		}
	}
	return nil
}

// wrapVerbFix replaces the i-th argument-consuming verb of fmt.Errorf's
// format literal with %w. It only fires when the format is a plain string
// literal whose source-text verb scan agrees with the constant-value scan
// (escape sequences that synthesize '%' would desynchronize the two).
func wrapVerbFix(pass *Pass, call *ast.CallExpr, verbIdx int, verb rune) []SuggestedFix {
	if verb != 'v' && verb != 's' {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	offsets, verbs, ok := formatVerbOffsets(lit.Value)
	if !ok || verbIdx >= len(verbs) || verbs[verbIdx] != verb {
		return nil
	}
	constVerbs, ok := formatVerbs(strings.Trim(lit.Value, "`\""))
	if !ok || len(constVerbs) != len(verbs) {
		return nil
	}
	start := pass.Offset(lit.Pos()) + offsets[verbIdx]
	return []SuggestedFix{{
		Message: "wrap with %w",
		Edits: []TextEdit{{
			File:  pass.Fset.Position(lit.Pos()).Filename,
			Start: start,
			End:   start + 1,
			New:   "w",
		}},
	}}
}

// formatVerbOffsets scans a string literal's *source text* (quotes included)
// with the same state machine as formatVerbs, returning the byte offset of
// each argument-consuming verb character within the literal.
func formatVerbOffsets(src string) (offsets []int, verbs []rune, ok bool) {
	rs := []rune(src)
	byteOff := 0
	offAt := make([]int, len(rs))
	for i, r := range rs {
		offAt[i] = byteOff
		byteOff += len(string(r))
	}
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		for i < len(rs) && strings.ContainsRune("+-# 0", rs[i]) {
			i++
		}
		for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
			if rs[i] == '*' {
				offsets = append(offsets, offAt[i])
				verbs = append(verbs, '*')
			}
			i++
		}
		if i < len(rs) && rs[i] == '.' {
			i++
			for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
				if rs[i] == '*' {
					offsets = append(offsets, offAt[i])
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i >= len(rs) {
			break
		}
		switch rs[i] {
		case '%':
		case '[':
			return nil, nil, false
		default:
			offsets = append(offsets, offAt[i])
			verbs = append(verbs, rs[i])
		}
	}
	return offsets, verbs, true
}

// formatVerbs returns, in order, the verb consuming each variadic argument
// of a Printf-style format string. '*' width/precision arguments are
// represented as '*'. ok is false for formats the parser does not model
// (explicit argument indexes).
func formatVerbs(format string) (verbs []rune, ok bool) {
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(rs) && strings.ContainsRune("+-# 0", rs[i]) {
			i++
		}
		// width
		for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
			if rs[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		// precision
		if i < len(rs) && rs[i] == '.' {
			i++
			for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
				if rs[i] == '*' {
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i >= len(rs) {
			break
		}
		switch rs[i] {
		case '%':
			// literal percent, consumes nothing
		case '[':
			return nil, false // explicit argument index: out of scope
		default:
			verbs = append(verbs, rs[i])
		}
	}
	return verbs, true
}
