package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrCmp enforces the typed-error protocol established in PR 1: the
// engine's sentinel errors (core.ErrModel*, core.ErrNotTrained,
// genetic.ErrEvalPanic/ErrCancelled, regress.ErrBadInput/ErrSingular,
// serve.ErrClosed, ...) travel through fmt.Errorf("...: %w", err) wrapping,
// so they MUST be matched with errors.Is — a == against the sentinel goes
// silently false the moment any layer wraps. Flagged:
//
//   - ==/!= where either operand is a package-level Err* sentinel (or
//     context.Canceled / context.DeadlineExceeded, which the search wraps);
//   - switch statements whose tag is an error compared against sentinels;
//   - fmt.Errorf calls that format an error argument with a verb other
//     than %w, which severs the errors.Is chain.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors must be matched with errors.Is and wrapped with %w",
	Run:  runErrCmp,
}

// isSentinelErr reports whether e denotes a package-level sentinel error
// variable: an error-typed var named Err* (any package), or the context
// package's cancellation sentinels.
func isSentinelErr(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := pass.Info.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() || !isErrorType(v.Type()) {
		return false
	}
	if strings.HasPrefix(v.Name(), "Err") {
		return true
	}
	return v.Pkg().Path() == "context" &&
		(v.Name() == "Canceled" || v.Name() == "DeadlineExceeded")
}

func runErrCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, op := range []ast.Expr{n.X, n.Y} {
					if isSentinelErr(pass, op) {
						pass.Reportf(n.Pos(),
							"%s compared with %s; wrapped errors make == silently false — use errors.Is",
							n.Op, exprText(op))
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass.TypeOf(n.Tag)) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if isSentinelErr(pass, v) {
							pass.Reportf(v.Pos(),
								"switch on error compares %s with ==; use if errors.Is chains instead",
								exprText(v))
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value with a
// verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.ObjectOf(sel.Sel)
	if !isFromPkg(obj, "fmt") || obj.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) || verb == 'w' {
			continue
		}
		arg := call.Args[argIdx]
		if t := pass.TypeOf(arg); t != nil && isErrorType(t) {
			pass.Reportf(arg.Pos(),
				"error %s wrapped with %%%c; use %%w so errors.Is still matches the sentinel through the wrap",
				exprText(arg), verb)
		}
	}
}

// formatVerbs returns, in order, the verb consuming each variadic argument
// of a Printf-style format string. '*' width/precision arguments are
// represented as '*'. ok is false for formats the parser does not model
// (explicit argument indexes).
func formatVerbs(format string) (verbs []rune, ok bool) {
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(rs) && strings.ContainsRune("+-# 0", rs[i]) {
			i++
		}
		// width
		for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
			if rs[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		// precision
		if i < len(rs) && rs[i] == '.' {
			i++
			for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
				if rs[i] == '*' {
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i >= len(rs) {
			break
		}
		switch rs[i] {
		case '%':
			// literal percent, consumes nothing
		case '[':
			return nil, false // explicit argument index: out of scope
		default:
			verbs = append(verbs, rs[i])
		}
	}
	return verbs, true
}
