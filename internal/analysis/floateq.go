package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq flags ==/!= between two non-constant floating-point expressions.
// Exact float equality is almost never what the engine means: fitness
// values, coefficients, and predictions accumulate rounding, and NaN makes
// x == x false. The idiomatic repairs are a tolerance, math.IsNaN, or —
// where the contract really is bit-identity (the serving layer's
// "batched == direct" guarantee, the Gram/QR parity tests) —
// math.Float64bits comparison, which states the intent exactly.
//
// Comparison against a *constant* operand is the allowlist: exact-parity
// checks against golden constants (the Fig. 5 values 0.6121/0.5650, exact
// powers of two, sentinel zeros) are intentional and remain legal.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= between non-constant float expressions; use tolerance, Float64bits, or IsNaN",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xtv, xok := pass.Info.Types[be.X]
			ytv, yok := pass.Info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if xtv.Value != nil || ytv.Value != nil {
				return true // constant operand: intentional exact check
			}
			if isFloat(xtv.Type) && isFloat(ytv.Type) {
				what := "equality"
				if be.Op == token.NEQ {
					what = "inequality"
				}
				pass.Reportf(be.Pos(),
					"exact float %s between %s and %s; compare with a tolerance, math.Float64bits (bit-identity contracts), or math.IsNaN",
					what, exprText(be.X), exprText(be.Y))
			}
			return true
		})
	}
}
