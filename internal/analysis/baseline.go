// Baseline support: a committed JSON file of grandfathered findings. A run
// with -baseline still *reports* baselined findings but does not fail on
// them; any finding not in the baseline is fresh and fails the run. Matching
// ignores line numbers (code above a finding moves constantly) and keys on
// (check, module-relative file, message) as a multiset, so k occurrences in
// the baseline forgive at most k live findings.
package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineEntry identifies one grandfathered finding.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"` // slash-relative to the module root
	Message string `json:"message"`
}

// Baseline is the committed set of grandfathered findings.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// ReadBaseline loads a baseline file. A missing file is an empty baseline
// only when allowMissing is set (so -write-baseline bootstraps cleanly).
func ReadBaseline(path string, allowMissing bool) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && allowMissing {
			return &Baseline{}, nil
		}
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// baselineKey normalizes one diagnostic to its matching identity.
func baselineKey(check, file, message string) string {
	return check + "\x00" + file + "\x00" + message
}

// relFile makes a diagnostic's filename slash-relative to root.
func relFile(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// Match partitions diags against the baseline: matched[i] is true when
// diags[i] is grandfathered. fresh counts the unmatched diagnostics.
func (b *Baseline) Match(diags []Diagnostic, root string) (matched []bool, fresh int) {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey(e.Check, e.File, e.Message)]++
	}
	matched = make([]bool, len(diags))
	for i, d := range diags {
		key := baselineKey(d.Check, relFile(root, d.Pos.Filename), d.Message)
		if budget[key] > 0 {
			budget[key]--
			matched[i] = true
		} else {
			fresh++
		}
	}
	return matched, fresh
}

// WriteBaseline serializes diags as a new baseline file, sorted for stable
// diffs.
func WriteBaseline(path string, diags []Diagnostic, root string) error {
	b := Baseline{Findings: make([]BaselineEntry, 0, len(diags))}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{
			Check:   d.Check,
			File:    relFile(root, d.Pos.Filename),
			Message: d.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
