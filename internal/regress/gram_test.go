package regress_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"hsmodel/internal/faultinject"
	"hsmodel/internal/linalg"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
)

// synthDataset builds a continuous, well-conditioned dataset: uniform
// positive variables and a strictly positive response with smooth nonlinear
// structure, so randomized specs fit on the Cholesky path.
func synthDataset(n, p int, seed uint64) *regress.Dataset {
	src := rng.New(seed)
	ds := &regress.Dataset{
		Names: make([]string, p),
		X:     linalg.NewMatrix(n, p),
		Y:     make([]float64, n),
	}
	for v := 0; v < p; v++ {
		ds.Names[v] = fmt.Sprintf("x%d", v)
	}
	for i := 0; i < n; i++ {
		row := ds.X.Row(i)
		for v := range row {
			row[v] = 0.5 + 2*src.Float64()
		}
		y := 1.0
		for v := range row {
			y += 0.3 * float64(v%3) * row[v] * row[v]
		}
		ds.Y[i] = y * (0.9 + 0.2*src.Float64())
	}
	return ds
}

// randomSpec draws a GA-like spec: random transform codes plus a few random
// interactions.
func randomSpec(p int, src *rng.Source) regress.Spec {
	spec := regress.Spec{Codes: make([]regress.TransformCode, p)}
	for v := range spec.Codes {
		spec.Codes[v] = regress.TransformCode(src.Intn(int(regress.NumTransformCodes)))
	}
	for k := src.Intn(4); k > 0; k-- {
		i, j := src.Intn(p), src.Intn(p)
		if i != j {
			spec.Interactions = append(spec.Interactions, regress.Interaction{I: i, J: j}.Canon())
		}
	}
	return spec
}

// evaluatorWeights mimics core's train/validation split: most rows weighted,
// a tail of held-out rows at zero.
func evaluatorWeights(n int, src *rng.Source) []float64 {
	w := make([]float64, n)
	for i := range w {
		if src.Float64() < 0.75 {
			w[i] = 2
		}
	}
	return w
}

func coefsMatch(a, b []float64, tol float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for j := range a {
		if math.Abs(a[j]-b[j]) > tol*(1+math.Abs(b[j])) {
			return j, false
		}
	}
	return -1, true
}

// TestGramQRParity is the property test of the PR: across randomized specs,
// weights, and response transforms, the Gram/Cholesky path must reproduce the
// pivoted-QR coefficients to within 1e-8, and must actually serve the bulk of
// the fits (no silent wholesale fallback).
func TestGramQRParity(t *testing.T) {
	const nSpecs = 60
	src := rng.New(11)
	for _, tc := range []struct {
		name string
		log  bool
		wts  bool
	}{
		{"plain", false, false},
		{"logresponse", true, false},
		{"weighted", false, true},
		{"log+weighted", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := synthDataset(400, 8, 101)
			fz, err := regress.NewFeaturizer(ds, true)
			if err != nil {
				t.Fatal(err)
			}
			opts := regress.Options{LogResponse: tc.log}
			if tc.wts {
				opts.Weights = evaluatorWeights(ds.NumRows(), src)
			}
			gc, err := regress.NewGramCache(fz, opts)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < nSpecs; k++ {
				spec := randomSpec(ds.NumVars(), src)
				gm, gerr := gc.Fit(spec)
				qm, qerr := fz.Fit(spec, opts)
				if (gerr == nil) != (qerr == nil) {
					t.Fatalf("spec %v: gram err %v, qr err %v", spec, gerr, qerr)
				}
				if gerr != nil {
					continue
				}
				if j, ok := coefsMatch(gm.Coef, qm.Coef, 1e-8); !ok {
					t.Errorf("spec %v: coef[%d] gram=%.12g qr=%.12g",
						spec, j, gm.Coef[j], qm.Coef[j])
				}
			}
			s := gc.Stats()
			t.Logf("gram=%d qr=%d hits=%d misses=%d", s.GramFits, s.QRFallbacks, s.EntryHits, s.EntryMisses)
			if total := s.GramFits + s.QRFallbacks; s.GramFits < total*3/4 {
				t.Errorf("gram path served %d of %d fits; want >= 3/4", s.GramFits, total)
			}
			if s.EntryHits == 0 || s.EntryMisses == 0 {
				t.Errorf("memo counters not moving: hits=%d misses=%d", s.EntryHits, s.EntryMisses)
			}
		})
	}
}

// TestGramPrunesExactCollinear forces exact collinearity (one variable an
// affine image of another, so their standardized columns are identical) and
// checks the Gram path serves the fit anyway by pruning the dependent column
// — the same span pivoted QR selects — with matching coefficients.
func TestGramPrunesExactCollinear(t *testing.T) {
	ds := synthDataset(200, 6, 7)
	for i := 0; i < ds.NumRows(); i++ {
		row := ds.X.Row(i)
		row[3] = 2*row[1] + 5 // z-standardization makes column 3 ≡ column 1
	}
	fz, err := regress.NewFeaturizer(ds, false)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := regress.NewGramCache(fz, regress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := regress.Spec{Codes: make([]regress.TransformCode, 6)}
	spec.Codes[1] = regress.Linear
	spec.Codes[3] = regress.Linear
	spec.Codes[5] = regress.Quadratic
	gm, err := gc.Fit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := gc.Stats(); s.GramFits != 1 || s.QRFallbacks != 0 {
		t.Errorf("exact-collinear fit: gram=%d qr=%d, want 1/0", s.GramFits, s.QRFallbacks)
	}
	if len(gm.Dropped) != 1 {
		t.Fatalf("dropped = %v, want exactly one pruned column", gm.Dropped)
	}
	if gm.Rank != len(gm.Coef)-1 {
		t.Errorf("rank = %d with %d columns, want %d", gm.Rank, len(gm.Coef), len(gm.Coef)-1)
	}
	qm, err := fz.Fit(spec, regress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// QR pivoting may keep the *other* duplicate, so column-wise coefficients
	// can legitimately differ; the fitted subspace — and therefore every
	// prediction — must not.
	if gm.Rank != qm.Rank {
		t.Errorf("rank %d vs qr %d", gm.Rank, qm.Rank)
	}
	gp, qp := gm.PredictAll(ds), qm.PredictAll(ds)
	for i := range gp {
		if math.Abs(gp[i]-qp[i]) > 1e-8*(1+math.Abs(qp[i])) {
			t.Fatalf("prediction %d: gram %.15g, qr %.15g", i, gp[i], qp[i])
		}
	}
}

// TestGramFallbackOnNearCollinear perturbs the duplicate column just enough
// to escape the exact-dependence pruning floor but not enough to be well
// conditioned: the condition guard must route the fit to QR, whose result is
// served bit-identically.
func TestGramFallbackOnNearCollinear(t *testing.T) {
	ds := synthDataset(200, 6, 7)
	src := rng.New(13)
	for i := 0; i < ds.NumRows(); i++ {
		row := ds.X.Row(i)
		row[3] = 2*row[1] + 5 + 1e-4*src.Float64() // gray zone: cond ≫ 1e7, pivot ≫ droptol
	}
	fz, err := regress.NewFeaturizer(ds, false)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := regress.NewGramCache(fz, regress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := regress.Spec{Codes: make([]regress.TransformCode, 6)}
	spec.Codes[1] = regress.Linear
	spec.Codes[3] = regress.Linear
	gm, err := gc.Fit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := gc.Stats(); s.QRFallbacks != 1 || s.GramFits != 0 {
		t.Errorf("near-collinear fit: gram=%d qr=%d, want 0/1", s.GramFits, s.QRFallbacks)
	}
	qm, err := fz.Fit(spec, regress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j, ok := coefsMatch(gm.Coef, qm.Coef, 0); !ok {
		t.Errorf("fallback coef[%d] = %g, want bit-identical %g", j, gm.Coef[j], qm.Coef[j])
	}
}

// TestGramForcedCondLimit drives CondLimit to zero so every fit trips the
// condition guard: results must still be served (via QR) and counted.
func TestGramForcedCondLimit(t *testing.T) {
	ds := synthDataset(150, 4, 21)
	fz, err := regress.NewFeaturizer(ds, false)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := regress.NewGramCache(fz, regress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gc.CondLimit = 0.5 // below 1: even a perfectly conditioned system fails
	spec := regress.Spec{Codes: []regress.TransformCode{regress.Linear, regress.Quadratic, 0, regress.Linear}}
	if _, err := gc.Fit(spec); err != nil {
		t.Fatal(err)
	}
	if s := gc.Stats(); s.QRFallbacks != 1 {
		t.Errorf("qr fallbacks = %d, want 1", s.QRFallbacks)
	}
}

// TestGramRejectsPoisonedRows reuses the faultinject row poisoner: NaN
// profile rows must be rejected at featurization, before any cross-product
// can cache a poisoned value.
func TestGramRejectsPoisonedRows(t *testing.T) {
	ds := synthDataset(50, 5, 33)
	rows := make([][]float64, ds.NumRows())
	for i := range rows {
		rows[i] = ds.X.Row(i)
	}
	if n := faultinject.PoisonRows(rows, 10, 5); n == 0 {
		t.Fatal("poisoner touched no rows")
	}
	if _, err := regress.NewFeaturizer(ds, false); !errors.Is(err, regress.ErrBadInput) {
		t.Fatalf("featurizer accepted poisoned rows: err=%v", err)
	}
}

// TestGramConcurrentFits exercises the sharded memo and worker-pool fill
// under -race: concurrent fits of overlapping specs must produce exactly the
// coefficients a serial pass produces (memoized entries are deterministic
// regardless of which goroutine computes them).
func TestGramConcurrentFits(t *testing.T) {
	ds := synthDataset(300, 7, 55)
	fz, err := regress.NewFeaturizer(ds, true)
	if err != nil {
		t.Fatal(err)
	}
	opts := regress.Options{LogResponse: true}
	gc, err := regress.NewGramCache(fz, opts)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	specs := make([]regress.Spec, 40)
	for i := range specs {
		specs[i] = randomSpec(ds.NumVars(), src)
	}
	// Serial reference on a fresh cache.
	ref, err := regress.NewGramCache(fz, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(specs))
	for i, spec := range specs {
		if m, err := ref.Fit(spec); err == nil {
			want[i] = m.Coef
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(specs); i += 8 {
				m, err := gc.Fit(specs[i])
				if err != nil {
					if want[i] != nil {
						errs[i] = err
					}
					continue
				}
				if j, ok := coefsMatch(m.Coef, want[i], 0); !ok {
					errs[i] = fmt.Errorf("coef[%d] diverged under concurrency", j)
				}
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("spec %d: %v", i, err)
		}
	}
}
