package regress

import (
	"fmt"
	"math"

	"hsmodel/internal/linalg"
	"hsmodel/internal/stats"
)

// Prep holds the per-variable preprocessing learned from training data:
// the variance-stabilizing power (ladder of powers, Section 3.1), the
// standardization moments of the stabilized values, and the spline knot
// locations (placed at the 20th/50th/80th percentiles, Harrell's default
// placement for three knots).
type Prep struct {
	Names  []string
	Powers []float64
	Means  []float64
	Sds    []float64
	Knots  [][3]float64
	// ZLo and ZHi bound each variable's standardized training range.
	// Prediction inputs are clamped to this range (plus a small margin):
	// polynomial and truncated-power-spline terms diverge cubically outside
	// the data, so unbounded extrapolation — exactly the new-application
	// scenario of Section 4.4 — would otherwise produce wild predictions.
	// Clamping yields constant extrapolation beyond the observed range.
	ZLo, ZHi []float64
}

// NumVars returns the raw-variable count the Prep was built for.
func (p *Prep) NumVars() int { return len(p.Powers) }

// Prepare learns preprocessing from a training dataset. When stabilize is
// false, powers are fixed at 1 (the ablation baseline); otherwise each
// variable gets the ladder-of-powers exponent minimizing skewness.
func Prepare(ds *Dataset, stabilize bool) *Prep {
	p := ds.NumVars()
	n := ds.NumRows()
	prep := &Prep{
		Names:  ds.Names,
		Powers: make([]float64, p),
		Means:  make([]float64, p),
		Sds:    make([]float64, p),
		Knots:  make([][3]float64, p),
		ZLo:    make([]float64, p),
		ZHi:    make([]float64, p),
	}
	col := make([]float64, n)
	for v := 0; v < p; v++ {
		for i := 0; i < n; i++ {
			col[i] = ds.X.At(i, v)
		}
		prep.Powers[v] = 1
		if stabilize {
			prep.Powers[v] = stats.ChoosePower(col)
		}
		stats.ApplyPower(col, prep.Powers[v])
		prep.Means[v] = stats.Mean(col)
		sd := stats.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		prep.Sds[v] = sd
		// Standardize before placing knots so knots live in z-space.
		z := make([]float64, n)
		for i, x := range col {
			z[i] = (x - prep.Means[v]) / sd
		}
		q := stats.Quantiles(z, 0, 0.2, 0.5, 0.8, 1)
		prep.Knots[v] = [3]float64{q[1], q[2], q[3]}
		prep.ZLo[v] = q[0]
		prep.ZHi[v] = q[4]
	}
	return prep
}

// z returns the stabilized, standardized value of raw variable v, clamped
// to the training range (see ZLo/ZHi).
func (p *Prep) z(v int, raw float64) float64 {
	x := raw
	if pw := p.Powers[v]; pw != 1 {
		if x < 0 {
			x = 0
		}
		x = math.Pow(x, pw)
	}
	z := (x - p.Means[v]) / p.Sds[v]
	if p.ZLo != nil {
		if z < p.ZLo[v] {
			z = p.ZLo[v]
		}
		if z > p.ZHi[v] {
			z = p.ZHi[v]
		}
	}
	return z
}

// Column describes one design-matrix column for reporting and debugging.
type Column struct {
	Name string
	// Var is the raw variable index for main-effect columns, or -1.
	Var int
	// Interaction is set for product columns.
	Interaction *Interaction
}

// columnsFor returns the design-column descriptors for a spec (intercept
// first).
func columnsFor(spec Spec, names []string) []Column {
	cols := []Column{{Name: "(intercept)", Var: -1}}
	suffix := [6]string{"", "^2", "^3", "s1", "s2", "s3"}
	for v, code := range spec.Codes {
		for k := 0; k < code.columns(); k++ {
			cols = append(cols, Column{Name: names[v] + suffix[k], Var: v})
		}
	}
	for i := range spec.Interactions {
		in := spec.Interactions[i]
		cols = append(cols, Column{
			Name:        fmt.Sprintf("%s*%s", names[in.I], names[in.J]),
			Var:         -1,
			Interaction: &spec.Interactions[i],
		})
	}
	return cols
}

// fillDesignRow expands one raw observation into the design row for spec in a
// single fused pass per variable: the stabilized, standardized value z is
// computed once per included variable (into the caller's z scratch, length
// NumVars) and every polynomial and truncated-power spline basis derives from
// that one value. Interaction columns read the cached z of included variables
// and compute it only for excluded ones. z is a pure function of (variable,
// raw value), so the caching is bit-identical to recomputation. row must have
// length equal to the number of design columns.
//
//hslint:hotpath
func (p *Prep) fillDesignRow(spec Spec, raw, z, row []float64) {
	row[0] = 1
	c := 1
	for v, code := range spec.Codes {
		if code == Excluded {
			continue
		}
		zv := p.z(v, raw[v])
		z[v] = zv
		row[c] = zv
		c++
		if code >= Quadratic {
			row[c] = zv * zv
			c++
		}
		if code >= Cubic {
			row[c] = zv * zv * zv
			c++
		}
		if code == Spline3 {
			for _, k := range p.Knots[v] {
				d := zv - k
				if d < 0 {
					d = 0
				}
				row[c] = d * d * d
				c++
			}
		}
	}
	for _, in := range spec.Interactions {
		zi := z[in.I]
		if spec.Codes[in.I] == Excluded {
			zi = p.z(in.I, raw[in.I])
		}
		zj := z[in.J]
		if spec.Codes[in.J] == Excluded {
			zj = p.z(in.J, raw[in.J])
		}
		row[c] = zi * zj
		c++
	}
}

// Design builds the full design matrix for a dataset under a spec.
func (p *Prep) Design(spec Spec, ds *Dataset) (*linalg.Matrix, []Column) {
	cols := columnsFor(spec, p.Names)
	m := linalg.NewMatrix(ds.NumRows(), len(cols))
	z := make([]float64, p.NumVars())
	for i := 0; i < ds.NumRows(); i++ {
		p.fillDesignRow(spec, ds.X.Row(i), z, m.Row(i))
	}
	return m, cols
}
