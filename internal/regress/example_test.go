package regress_test

import (
	"fmt"

	"hsmodel/internal/linalg"
	"hsmodel/internal/regress"
)

// ExampleFitSpec fits the paper's z = b0 + b1*x + b2*y + b3*x*y interaction
// form (Section 3.1) and recovers the generating coefficients.
func ExampleFitSpec() {
	// y = 1 + 2a + 3b + 0.5ab over a small grid.
	ds := &regress.Dataset{
		Names: []string{"a", "b"},
		X:     linalg.NewMatrix(25, 2),
		Y:     make([]float64, 25),
	}
	for i := 0; i < 25; i++ {
		a, b := float64(i%5), float64(i/5)
		ds.X.Set(i, 0, a)
		ds.X.Set(i, 1, b)
		ds.Y[i] = 1 + 2*a + 3*b + 0.5*a*b
	}
	spec := regress.Spec{
		Codes:        []regress.TransformCode{regress.Linear, regress.Linear},
		Interactions: []regress.Interaction{{I: 0, J: 1}},
	}
	m, err := regress.FitSpec(spec, nil, ds, regress.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("prediction at (a=2, b=3): %.1f\n", m.Predict([]float64{2, 3}))
	fmt.Printf("median error: %.4f\n", m.Evaluate(ds).MedAPE)
	// Output:
	// prediction at (a=2, b=3): 17.0
	// median error: 0.0000
}
