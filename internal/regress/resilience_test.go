package regress

import (
	"errors"
	"math"
	"testing"
)

// TestFitSpecRejectsNonFiniteInput: NaN/Inf profiles must be rejected up
// front as ErrBadInput rather than silently poisoning the factorization.
func TestFitSpecRejectsNonFiniteInput(t *testing.T) {
	mk := func() *Dataset {
		return mkDataset(50, 3, 7, func(x []float64) float64 { return 1 + x[0] + x[1] })
	}
	spec := linSpec(3, Linear, Linear, Linear)

	nanX := mk()
	nanX.X.Row(10)[1] = math.NaN()
	if _, err := FitSpec(spec, nil, nanX, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN in X: err = %v, want ErrBadInput", err)
	}

	infX := mk()
	infX.X.Row(3)[0] = math.Inf(-1)
	if _, err := FitSpec(spec, nil, infX, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("Inf in X: err = %v, want ErrBadInput", err)
	}

	nanY := mk()
	nanY.Y[20] = math.NaN()
	if _, err := FitSpec(spec, nil, nanY, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN in Y: err = %v, want ErrBadInput", err)
	}

	// A clean dataset still fits.
	if _, err := FitSpec(spec, nil, mk(), Options{}); err != nil {
		t.Errorf("clean fit failed: %v", err)
	}
}

func TestFitSpecNonPositiveResponseIsBadInput(t *testing.T) {
	ds := mkDataset(40, 2, 9, func(x []float64) float64 { return 2 + x[0] })
	ds.Y[5] = 0
	_, err := FitSpec(linSpec(2, Linear, Linear), nil, ds, Options{LogResponse: true})
	if !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
}

func TestFitSpecWeightMismatchIsBadInput(t *testing.T) {
	ds := mkDataset(40, 2, 11, func(x []float64) float64 { return 2 + x[0] })
	_, err := FitSpec(linSpec(2, Linear, Linear), nil, ds, Options{Weights: []float64{1, 2, 3}})
	if !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
}

// TestFitSpecZeroWeightsSingular: all-zero weights zero out the entire
// design, making even the intercept column vanish — the one realistic route
// to a rank-0 system. It must surface as ErrSingular, not a raw linalg
// error or a garbage model.
func TestFitSpecZeroWeightsSingular(t *testing.T) {
	ds := mkDataset(30, 2, 13, func(x []float64) float64 { return 1 + x[0] })
	w := make([]float64, 30)
	_, err := FitSpec(linSpec(2, Linear, Linear), nil, ds, Options{Weights: w})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// TestFitSpecRecoversPanic: FitSpec is the panic boundary for the fitting
// stack. A Prep inconsistent with the dataset (here: learned on fewer
// variables) indexes out of range deep in design construction; that must
// come back as ErrBadInput, not kill the process.
func TestFitSpecRecoversPanic(t *testing.T) {
	narrow := mkDataset(30, 1, 17, func(x []float64) float64 { return x[0] })
	wide := mkDataset(30, 3, 17, func(x []float64) float64 { return 1 + x[0] + x[2] })
	prep := Prepare(narrow, false)
	_, err := FitSpec(linSpec(3, Linear, Linear, Linear), prep, wide, Options{})
	if !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput wrapping the recovered panic", err)
	}
}

// Collinear columns are NOT singular: pivoting drops them and the fit
// proceeds. Guard that the hardening did not over-reject.
func TestFitSpecCollinearColumnsStillFit(t *testing.T) {
	ds := mkDataset(60, 2, 19, func(x []float64) float64 { return 1 + 2*x[0] })
	for i := 0; i < ds.NumRows(); i++ {
		row := ds.X.Row(i)
		row[1] = 3 * row[0] // exact collinearity
	}
	m, err := FitSpec(linSpec(2, Linear, Linear), nil, ds, Options{})
	if err != nil {
		t.Fatalf("collinear fit should succeed via pivoting: %v", err)
	}
	if len(m.Dropped) == 0 {
		t.Error("expected a dropped collinear column")
	}
}
