package regress

import (
	"errors"
	"math"
	"testing"

	"hsmodel/internal/linalg"
	"hsmodel/internal/rng"
)

// featurizerDataset builds a deterministic long-tailed dataset exercising
// every transform: positive skewed variables (so stabilization picks powers
// other than 1) and a positive response.
func featurizerDataset(rows, vars int, seed uint64) *Dataset {
	src := rng.New(seed)
	names := make([]string, vars)
	for v := range names {
		names[v] = "v" + string(rune('a'+v))
	}
	ds := &Dataset{
		Names: names,
		X:     linalg.NewMatrix(rows, vars),
		Y:     make([]float64, rows),
		Group: make([]int, rows),
	}
	for i := 0; i < rows; i++ {
		var y float64 = 0.5
		for v := 0; v < vars; v++ {
			x := math.Exp(3 * src.Float64()) // long tail
			ds.X.Row(i)[v] = x
			y += 0.1 * math.Sqrt(x) * float64(v+1)
		}
		ds.Y[i] = y + 0.05*src.Float64()
		ds.Group[i] = i % 3
	}
	return ds
}

// fixedSpec covers every transform code plus interactions.
func fixedSpec(vars int) Spec {
	spec := Spec{Codes: make([]TransformCode, vars)}
	codes := []TransformCode{Linear, Quadratic, Cubic, Spline3, Excluded}
	for v := range spec.Codes {
		spec.Codes[v] = codes[v%len(codes)]
	}
	if vars >= 4 {
		spec.Interactions = []Interaction{{I: 0, J: 1}, {I: 2, J: 3}}
	}
	return spec
}

// TestFeaturizerDesignMatchesNaive: the cached-basis design must be
// bit-identical to the rebuild-per-spec path.
func TestFeaturizerDesignMatchesNaive(t *testing.T) {
	ds := featurizerDataset(60, 6, 11)
	fz, err := NewFeaturizer(ds, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := fixedSpec(6)
	cached, cachedCols, err := fz.Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	naive, naiveCols := fz.Prep().Design(spec, ds)
	if cached.Rows != naive.Rows || cached.Cols != naive.Cols {
		t.Fatalf("design shape %dx%d, want %dx%d", cached.Rows, cached.Cols, naive.Rows, naive.Cols)
	}
	if len(cachedCols) != len(naiveCols) {
		t.Fatalf("%d column descriptors, want %d", len(cachedCols), len(naiveCols))
	}
	for i, v := range cached.Data {
		if math.Float64bits(v) != math.Float64bits(naive.Data[i]) {
			t.Fatalf("design[%d] = %v, naive %v", i, v, naive.Data[i])
		}
	}
}

// TestFeaturizerFitParity: cached-basis fitting must produce identical
// coefficients to FitSpec on a fixed-seed spec (the acceptance criterion for
// the featurize layer).
func TestFeaturizerFitParity(t *testing.T) {
	ds := featurizerDataset(80, 6, 42)
	fz, err := NewFeaturizer(ds, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := fixedSpec(6)
	weights := make([]float64, ds.NumRows())
	for i := range weights {
		weights[i] = 1 + float64(i%3) // non-uniform, exercises the weighted path
	}
	for _, opts := range []Options{
		{LogResponse: true},
		{LogResponse: false},
		{LogResponse: true, Weights: weights},
	} {
		cached, err := fz.Fit(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := FitSpec(spec, fz.Prep(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(cached.Coef) != len(naive.Coef) {
			t.Fatalf("%d coefficients, want %d", len(cached.Coef), len(naive.Coef))
		}
		for j := range cached.Coef {
			if math.Float64bits(cached.Coef[j]) != math.Float64bits(naive.Coef[j]) {
				t.Errorf("opts %+v: coef[%d] = %v, naive %v", opts, j, cached.Coef[j], naive.Coef[j])
			}
		}
		if math.Float64bits(cached.YLo) != math.Float64bits(naive.YLo) || math.Float64bits(cached.YHi) != math.Float64bits(naive.YHi) || cached.Rank != naive.Rank {
			t.Errorf("fit metadata differs: %+v vs %+v", cached, naive)
		}
		// Predictions through both models must agree on the training rows.
		for i := 0; i < ds.NumRows(); i += 7 {
			if c, n := cached.Predict(ds.X.Row(i)), naive.Predict(ds.X.Row(i)); math.Float64bits(c) != math.Float64bits(n) {
				t.Errorf("prediction row %d: %v vs %v", i, c, n)
			}
		}
	}
}

// TestFeaturizerDesignRows: subset gathering must match the full design.
func TestFeaturizerDesignRows(t *testing.T) {
	ds := featurizerDataset(40, 5, 3)
	fz, err := NewFeaturizer(ds, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := fixedSpec(5)
	full, _, err := fz.Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int{7, 0, 33, 12}
	sub := fz.DesignRows(spec, rows)
	if sub.Rows != len(rows) || sub.Cols != full.Cols {
		t.Fatalf("subset shape %dx%d", sub.Rows, sub.Cols)
	}
	for i, r := range rows {
		for j := 0; j < full.Cols; j++ {
			if math.Float64bits(sub.Row(i)[j]) != math.Float64bits(full.Row(r)[j]) {
				t.Fatalf("subset row %d col %d = %v, want %v", i, j, sub.Row(i)[j], full.Row(r)[j])
			}
		}
	}
	// PredictDesignRow over gathered rows must match raw-row prediction.
	m, err := fz.Fit(spec, Options{LogResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if got, want := m.PredictDesignRow(sub.Row(i)), m.Predict(ds.X.Row(r)); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("row %d: PredictDesignRow %v, Predict %v", r, got, want)
		}
	}
}

// TestFeaturizerRejectsBadInput: non-finite rows and shape mismatches are
// refused at construction, once, instead of on every fit.
func TestFeaturizerRejectsBadInput(t *testing.T) {
	ds := featurizerDataset(30, 4, 9)
	ds.X.Row(12)[2] = math.NaN()
	if _, err := NewFeaturizer(ds, true); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN dataset: err = %v, want ErrBadInput", err)
	}

	good := featurizerDataset(30, 4, 9)
	other := featurizerDataset(30, 5, 9)
	prep := Prepare(other, true)
	if _, err := FeaturizeWith(prep, good); !errors.Is(err, ErrBadInput) {
		t.Errorf("mismatched prep: err = %v, want ErrBadInput", err)
	}

	fz, err := NewFeaturizer(good, true)
	if err != nil {
		t.Fatal(err)
	}
	bad := Spec{Codes: make([]TransformCode, 99)}
	if _, _, err := fz.Design(bad); err == nil {
		t.Error("invalid spec accepted by Design")
	}
	if _, err := fz.Fit(bad, Options{}); err == nil {
		t.Error("invalid spec accepted by Fit")
	}
}

// TestFeaturizeWithSharesPrep: preprocessing learned on a superset must be
// usable on a subset (the per-application weighted-fit pattern).
func TestFeaturizeWithSharesPrep(t *testing.T) {
	ds := featurizerDataset(50, 4, 21)
	prep := Prepare(ds, true)
	var rows []int
	for i := 1; i < 50; i += 2 {
		rows = append(rows, i)
	}
	sub := ds.Subset(rows)
	fz, err := FeaturizeWith(prep, sub)
	if err != nil {
		t.Fatal(err)
	}
	if fz.Prep() != prep {
		t.Error("featurizer must share the supplied prep")
	}
	spec := fixedSpec(4)
	cached, err := fz.Fit(spec, Options{LogResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := FitSpec(spec, prep, sub, Options{LogResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := range cached.Coef {
		if math.Float64bits(cached.Coef[j]) != math.Float64bits(naive.Coef[j]) {
			t.Fatalf("coef[%d] = %v, want %v", j, cached.Coef[j], naive.Coef[j])
		}
	}
}
