package regress

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hsmodel/internal/linalg"
)

// GramCache sits on top of a Featurizer and turns candidate-spec fitting
// from an O(n·p²) pivoted-QR solve per spec into an O(p³) normal-equation
// solve: because every genetic candidate draws its design columns from one
// shared pool (intercept, the cached per-(variable, transform) basis
// columns, and pairwise interaction products), the weighted cross-products
// ⟨cᵢ,cⱼ⟩ and ⟨cᵢ,y⟩ between those columns can be computed once per dataset
// version and shared by every chromosome that touches them. Fitting then
// gathers the spec's p×p sub-Gram matrix and solves the normal equations by
// Cholesky.
//
// Entries are memoized lazily under sharded locks, so the GA's concurrent
// fitness workers fill disjoint entries without contending on one mutex, and
// a fit that needs many cold entries fans the accumulation out across a
// worker pool. Per-fit scratch (the sub-Gram matrix, scale vector, and
// right-hand side) comes from a sync.Pool so steady-state fitting does not
// allocate proportionally to p².
//
// The normal equations square the design's condition number, so the Cholesky
// path is guarded: the sub-Gram is Jacobi-equilibrated, and if a pivot fails,
// the condition estimate exceeds CondLimit, or any coefficient comes out
// non-finite, the fit falls back to the Featurizer's pivoted-QR path —
// which also handles rank deficiency by dropping collinear columns — so
// coefficients never silently degrade. Stats reports how often each path ran.
//
// A GramCache is bound to one (dataset, Options) pair at construction: the
// response transform and observation weights are baked into the cached inner
// products. It is safe for concurrent use. Like the Featurizer it wraps, it
// must be discarded when the dataset changes (core.Trainer's versioned
// evaluator cache does exactly that on AddSamples/SetSamples).
type GramCache struct {
	fz   *Featurizer
	opts Options
	n    int // rows
	p    int // raw variables

	// CondLimit bounds the true condition number (λmax/λmin, estimated by
	// norm bound plus inverse power iteration on the factor) of the
	// equilibrated sub-Gram accepted by the Cholesky path; fits beyond it
	// fall back to pivoted QR. With compensated Gram accumulation and one
	// step of iterative refinement, the NewGramCache default of 1e9 keeps
	// normal-equation coefficients within ~1e-8 of the QR solution. It may
	// be lowered before use to force fallback (tests) but must not be
	// changed concurrently with Fit.
	CondLimit float64
	// Workers bounds the fan-out of cold-entry accumulation within one fit
	// (default GOMAXPROCS).
	Workers int

	w        []float64 // effective observation weights; nil means uniform
	ty       []float64 // response with the LogResponse transform applied
	yLo, yHi float64   // prediction envelope, identical for every spec

	// mainIDs = 1 + 6p: column 0 is the intercept, then (v,k) basis columns.
	// Interaction products get ids mainIDs + pairIndex(i,j).
	mainIDs int
	numIDs  int
	ones    []float64

	prodMu sync.RWMutex
	prods  map[uint32][]float64 // pair index -> cached zᵢ·zⱼ column

	shards [gramShardCount]gramShard

	gramFits    atomic.Uint64
	qrFallbacks atomic.Uint64
	entryHits   atomic.Uint64
	entryMisses atomic.Uint64
}

const gramShardCount = 64

// gramShard is one lock stripe of the inner-product memo. Keys mixing both
// column ids spread adjacent entries across stripes, so workers filling one
// spec's sub-Gram rarely collide on a mutex.
type gramShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

// GramStats counts how candidate fits were served and how the inner-product
// memo behaved. Counters are cumulative over the cache's lifetime.
type GramStats struct {
	GramFits    uint64 // fits solved on the Cholesky normal-equation path
	QRFallbacks uint64 // fits that fell back to the pivoted-QR path
	EntryHits   uint64 // sub-Gram entries served from the memo
	EntryMisses uint64 // sub-Gram entries computed (one data pass each)
}

// Stats returns a snapshot of the cache's counters.
func (g *GramCache) Stats() GramStats {
	return GramStats{
		GramFits:    g.gramFits.Load(),
		QRFallbacks: g.qrFallbacks.Load(),
		EntryHits:   g.entryHits.Load(),
		EntryMisses: g.entryMisses.Load(),
	}
}

// NewGramCache builds a Gram-cache fit layer over fz for the fixed fitting
// options opts (Stabilize is irrelevant here: preprocessing was learned when
// fz was built). Input validation that fitDesign performs per fit — weight
// length, response positivity under LogResponse — happens once, at
// construction.
func NewGramCache(fz *Featurizer, opts Options) (*GramCache, error) {
	n, p := fz.NumRows(), fz.ds.NumVars()
	g := &GramCache{
		fz:        fz,
		opts:      opts,
		n:         n,
		p:         p,
		CondLimit: 1e9,
		Workers:   runtime.GOMAXPROCS(0),
		mainIDs:   1 + 6*p,
		prods:     make(map[uint32][]float64),
	}
	g.numIDs = g.mainIDs + p*(p-1)/2
	if g.numIDs >= 1<<31 {
		return nil, fmt.Errorf("%w: %d variables overflow gram column ids", ErrBadInput, p)
	}
	if opts.Weights != nil {
		if len(opts.Weights) != n {
			return nil, fmt.Errorf("%w: %d weights for %d rows", ErrBadInput, len(opts.Weights), n)
		}
		g.w = append([]float64(nil), opts.Weights...)
	}
	resp := fz.ds.Y
	g.ty = make([]float64, n)
	for i, v := range resp {
		if opts.LogResponse {
			if v <= 0 {
				return nil, fmt.Errorf("%w: non-positive response %g with LogResponse", ErrBadInput, v)
			}
			g.ty[i] = math.Log(v)
		} else {
			g.ty[i] = v
		}
	}
	g.yLo, g.yHi = resp[0], resp[0]
	for _, v := range resp {
		if v < g.yLo {
			g.yLo = v
		}
		if v > g.yHi {
			g.yHi = v
		}
	}
	g.yLo /= 1.5
	g.yHi *= 1.5
	g.ones = make([]float64, n)
	for i := range g.ones {
		g.ones[i] = 1
	}
	return g, nil
}

// Featurizer returns the basis-column cache the Gram layer is built on.
func (g *GramCache) Featurizer() *Featurizer { return g.fz }

// pairIndex maps a canonical interaction (i < j) to a dense index in
// [0, p(p-1)/2).
func (g *GramCache) pairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*g.p - i*(i+1)/2 + (j - i - 1)
}

// colID assignment: 0 = intercept, 1+6v+k = basis column k of variable v,
// mainIDs+pairIndex = interaction product column.

// col returns the pooled column for id, materializing interaction products
// on first use.
func (g *GramCache) col(id int32) []float64 {
	switch {
	case id == 0:
		return g.ones
	case int(id) < g.mainIDs:
		v, k := (int(id)-1)/6, (int(id)-1)%6
		return g.fz.basis[v][k]
	default:
		return g.prodCol(uint32(int(id) - g.mainIDs))
	}
}

// prodCol returns (building and memoizing if needed) the interaction product
// column for a dense pair index.
func (g *GramCache) prodCol(pair uint32) []float64 {
	g.prodMu.RLock()
	c, ok := g.prods[pair]
	g.prodMu.RUnlock()
	if ok {
		return c
	}
	// Recover (i, j) from the dense index by scanning rows of the strictly
	// upper triangle; p is small so this is negligible next to the n-length
	// product below.
	i, rem := 0, int(pair)
	for rowLen := g.p - 1; rem >= rowLen; rowLen-- {
		rem -= rowLen
		i++
	}
	j := i + 1 + rem
	zi, zj := g.fz.basis[i][0], g.fz.basis[j][0]
	c = make([]float64, g.n)
	for r := range c {
		c[r] = zi[r] * zj[r]
	}
	g.prodMu.Lock()
	if prev, ok := g.prods[pair]; ok {
		c = prev // lost a benign race; keep the first column
	} else {
		g.prods[pair] = c
	}
	g.prodMu.Unlock()
	return c
}

// idsFor appends the column ids of spec's design, in exact design-column
// order (intercept, per-variable basis columns, then interactions).
func (g *GramCache) idsFor(spec Spec, ids []int32) []int32 {
	ids = append(ids[:0], 0)
	for v, code := range spec.Codes {
		if code == Excluded {
			continue
		}
		base := int32(1 + 6*v)
		ids = append(ids, base)
		if code >= Quadratic {
			ids = append(ids, base+1)
		}
		if code >= Cubic {
			ids = append(ids, base+2)
		}
		if code == Spline3 {
			ids = append(ids, base+3, base+4, base+5)
		}
	}
	for _, in := range spec.Interactions {
		ids = append(ids, int32(g.mainIDs+g.pairIndex(in.I, in.J)))
	}
	return ids
}

// Inner-product memoization. Keys pack the canonical (low id, high id) pair;
// the right-hand-side products ⟨cᵢ,y⟩ use the all-ones high half, which no
// column pair can produce.

const gramRHSKey = uint64(1)<<32 - 1

func gramKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (g *GramCache) shardFor(key uint64) *gramShard {
	h := key * 0x9E3779B97F4A7C15
	return &g.shards[h>>58] // top 6 bits: gramShardCount = 64
}

// lookup probes the memo without computing.
func (g *GramCache) lookup(key uint64) (float64, bool) {
	sh := g.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

func (g *GramCache) store(key uint64, v float64) {
	sh := g.shardFor(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]float64)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

// dot computes the weighted inner product of two pooled columns (or of a
// column and the transformed response for the RHS sentinel).
func (g *GramCache) dot(key uint64) float64 {
	a := g.col(int32(key >> 32))
	var b []float64
	if key&gramRHSKey == gramRHSKey {
		b = g.ty
	} else {
		b = g.col(int32(uint32(key)))
	}
	// Kahan-compensated accumulation: cached cross-products are the data the
	// normal equations see, so their rounding error multiplies by κ(G) in the
	// solved coefficients. Compensation shrinks the summation error from
	// O(n·ε) to O(ε), which is what lets CondLimit sit at 1e9 while keeping
	// the ~1e-8 coefficient-parity contract with the QR path.
	var s, comp float64
	if g.w == nil {
		for r, av := range a {
			t := av*b[r] - comp
			sum := s + t
			comp = (sum - s) - t
			s = sum
		}
	} else {
		for r, av := range a {
			t := g.w[r]*av*b[r] - comp
			sum := s + t
			comp = (sum - s) - t
			s = sum
		}
	}
	return s
}

// gramScratch is the reusable per-fit workspace.
type gramScratch struct {
	ids   []int32
	sub   *linalg.Matrix // p×p equilibrated sub-Gram
	rhs   []float64
	scale []float64
	gcopy []float64 // equilibrated sub-Gram preserved across Factor, for refinement
	rhsk  []float64 // compacted equilibrated right-hand side
	resid []float64 // refinement residual / correction
	miss  []uint64  // keys of cold entries
	missP []int32   // packed (row<<16|col) positions of cold entries
	chol  linalg.Cholesky
}

var gramScratchPool = sync.Pool{New: func() any { return new(gramScratch) }}

func (sc *gramScratch) sized(p int) {
	if sc.sub == nil || sc.sub.Rows < p {
		sc.sub = linalg.NewMatrix(p, p)
		sc.rhs = make([]float64, p)
		sc.scale = make([]float64, p)
		sc.gcopy = make([]float64, p*p)
		sc.rhsk = make([]float64, p)
		sc.resid = make([]float64, p)
	}
}

// subMatrix returns a p×p matrix view over the scratch storage.
func (sc *gramScratch) subMatrix(p int) *linalg.Matrix {
	return &linalg.Matrix{Rows: p, Cols: p, Data: sc.sub.Data[:p*p]}
}

// Fit fits spec by gathering its sub-Gram system and solving the normal
// equations via Cholesky; ill-conditioned or rank-deficient systems fall
// back to the Featurizer's pivoted-QR path (same Options), so the result is
// always usable. On the Cholesky path the fitted Model is numerically — not
// bit — identical to Featurizer.Fit: coefficients agree to ~CondLimit·ε.
//
// Like Featurizer.Fit, Fit is a panic boundary: panics surface as errors
// wrapping ErrBadInput.
func (g *GramCache) Fit(spec Spec) (m *Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			m = nil
			err = fmt.Errorf("%w: panic during gram fit: %v", ErrBadInput, r)
		}
	}()
	if err := spec.Validate(g.p); err != nil {
		return nil, err
	}
	sc := gramScratchPool.Get().(*gramScratch)
	defer gramScratchPool.Put(sc)
	sc.ids = g.idsFor(spec, sc.ids)
	p := len(sc.ids)
	if g.n < p {
		return nil, fmt.Errorf("%w: %d rows, %d columns", ErrTooFewRows, g.n, p)
	}
	sc.sized(p)
	sub := sc.subMatrix(p)
	coef, rank, dropped, ok := g.solveNormal(sc, sub, p)
	if !ok {
		g.qrFallbacks.Add(1)
		return g.fz.Fit(spec, g.opts)
	}
	g.gramFits.Add(1)
	return &Model{
		Spec:        spec,
		Prep:        g.fz.prep,
		Columns:     columnsFor(spec, g.fz.prep.Names),
		Coef:        coef,
		Rank:        rank,
		Dropped:     dropped,
		LogResponse: g.opts.LogResponse,
		YLo:         g.yLo,
		YHi:         g.yHi,
	}, nil
}

// solveNormal gathers the sub-Gram system for sc.ids into sub/sc.rhs and
// solves it. Exactly-zero columns — dead spline cubes whose knot sits at a
// discrete variable's maximum level, or constant variables — are excluded
// from the solve with a zero coefficient, exactly as the pivoted QR drops
// zero-norm columns, so the two paths agree on this (common) degeneracy.
// ok is false when the Cholesky guard rejects the remaining system.
func (g *GramCache) solveNormal(sc *gramScratch, sub *linalg.Matrix, p int) (coef []float64, rank int, dropped []int, ok bool) {
	ids := sc.ids
	sc.miss = sc.miss[:0]
	sc.missP = sc.missP[:0]
	for r := 0; r < p; r++ {
		for c := r; c < p; c++ {
			key := gramKey(ids[r], ids[c])
			if v, ok := g.lookup(key); ok {
				sub.Set(r, c, v)
				sub.Set(c, r, v)
			} else {
				sc.miss = append(sc.miss, key)
				sc.missP = append(sc.missP, int32(r)<<16|int32(c))
			}
		}
		rkey := uint64(uint32(ids[r]))<<32 | gramRHSKey
		if v, ok := g.lookup(rkey); ok {
			sc.rhs[r] = v
		} else {
			sc.miss = append(sc.miss, rkey)
			sc.missP = append(sc.missP, int32(r)<<16|int32(1<<15-1))
		}
	}
	g.entryHits.Add(uint64(p*(p+1)/2 + p - len(sc.miss)))
	g.entryMisses.Add(uint64(len(sc.miss)))
	g.fillMissing(sc, sub, p)

	// Jacobi equilibration: scale to a unit diagonal so the pruning tolerance
	// and condition estimate are meaningful and the solve is as accurate as
	// the data allows. All-zero weighted columns (squared norm exactly 0) keep
	// scale 1; FactorPruned removes them below.
	for j := 0; j < p; j++ {
		d := sub.At(j, j)
		if d < 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			return nil, 0, nil, false // weighted squared norms can't be negative
		}
		if d > 0 {
			sc.scale[j] = 1 / math.Sqrt(d)
		} else {
			sc.scale[j] = 1
		}
	}
	for r := 0; r < p; r++ {
		row := sub.Row(r)
		sr := sc.scale[r]
		for c := 0; c < p; c++ {
			row[c] *= sr * sc.scale[c]
		}
	}
	// Prune numerically exact dependents — dead spline cubes whose knot sits
	// at a discrete variable's maximum level, or power/spline blocks of a
	// variable with fewer distinct levels than basis columns — exactly the
	// columns pivoted QR would drop as zero-norm leftovers. Directions that
	// are merely ill-conditioned survive pruning and are then judged by the
	// condition guard, so the gray zone still falls back to QR.
	copy(sc.gcopy[:p*p], sub.Data[:p*p]) // Factor consumes sub; keep G for refinement
	kept, err := sc.chol.FactorPruned(sub, gramDropTol)
	if err != nil {
		return nil, 0, nil, false
	}
	if sc.chol.ConditionEstimate() > g.CondLimit {
		return nil, 0, nil, false // diagonal ratio lower-bounds κ: cheap first reject
	}
	q := len(kept)
	// Tight condition check: the diagonal ratio can undershoot the true κ by
	// orders of magnitude, and the normal equations pay κ(D)² — accepting a
	// fit at true κ ≈ 1e9 silently breaks the ~1e-8 parity contract. Bound
	// λmax by the largest row 1-norm of the kept equilibrated sub-Gram and
	// estimate λmin by inverse power iteration on the factor.
	lambdaMax := 0.0
	for _, ki := range kept {
		grow := sc.gcopy[ki*p : ki*p+p]
		var s float64
		for _, kj := range kept {
			s += math.Abs(grow[kj])
		}
		if s > lambdaMax {
			lambdaMax = s
		}
	}
	lambdaMin := sc.chol.SmallestEigenEstimate(0, sc.resid[:q])
	if lambdaMin <= 0 || lambdaMax > g.CondLimit*lambdaMin {
		return nil, 0, nil, false
	}
	rhsk := sc.rhsk[:q]
	for i, j := range kept {
		rhsk[i] = sc.rhs[j] * sc.scale[j]
	}
	u := sc.rhs[:q]
	copy(u, rhsk)
	if err := sc.chol.SolveInPlace(u); err != nil {
		return nil, 0, nil, false
	}
	// One step of iterative refinement in the equilibrated space: the normal
	// equations pay a squared condition number, and the diagonal-ratio guard
	// only lower-bounds it, so near-limit fits can drift past the ~1e-8
	// parity contract. The O(q²) residual correction pulls them back to
	// working precision for the cost of one matrix-vector product.
	resid := sc.resid[:q]
	for i, ki := range kept {
		grow := sc.gcopy[ki*p : ki*p+p]
		s := rhsk[i]
		for j, kj := range kept {
			s -= grow[kj] * u[j]
		}
		resid[i] = s
	}
	if err := sc.chol.SolveInPlace(resid); err != nil {
		return nil, 0, nil, false
	}
	for i := range u {
		u[i] += resid[i]
	}
	coef = make([]float64, p)
	for i, j := range kept {
		v := u[i] * sc.scale[j]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, 0, nil, false
		}
		coef[j] = v
	}
	if q < p {
		dropped = make([]int, 0, p-q)
		next := 0
		for j := 0; j < p; j++ {
			if next < q && kept[next] == j {
				next++
			} else {
				dropped = append(dropped, j)
			}
		}
	}
	return coef, q, dropped, true
}

// gramDropTol is FactorPruned's pivot floor on the equilibrated (unit
// diagonal) sub-Gram: pivots at or below it are indistinguishable from
// rounding noise of an exact dependency (~p·ε ≈ 1e-14), while any direction
// a fit is allowed to resolve must carry λ ≥ 1/CondLimit = 1e-9, three
// decades above. Pivots in between survive pruning and are rejected by the
// condition guard, so the gray zone falls back to QR rather than being
// silently resolved by either path.
const gramDropTol = 1e-12

// fillMissing computes the cold entries of one fit, fanning out across a
// bounded worker pool when the batch is large (a cold cache on a fresh
// dataset version). Workers write disjoint memo keys and disjoint sub-matrix
// cells, so the only synchronization is the sharded store.
func (g *GramCache) fillMissing(sc *gramScratch, sub *linalg.Matrix, p int) {
	miss, missP := sc.miss, sc.missP
	if len(miss) == 0 {
		return
	}
	compute := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			key := miss[k]
			v := g.dot(key)
			g.store(key, v)
			r, c := int(missP[k]>>16), int(missP[k]&0xFFFF)
			if c == 1<<15-1 {
				sc.rhs[r] = v
			} else {
				sub.Set(r, c, v)
				sub.Set(c, r, v)
			}
		}
	}
	workers := g.Workers
	const minPerWorker = 8
	if workers > len(miss)/minPerWorker {
		workers = len(miss) / minPerWorker
	}
	if workers <= 1 {
		compute(0, len(miss))
		return
	}
	var wg sync.WaitGroup
	chunk := (len(miss) + workers - 1) / workers
	for lo := 0; lo < len(miss); lo += chunk {
		hi := lo + chunk
		if hi > len(miss) {
			hi = len(miss)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			compute(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
