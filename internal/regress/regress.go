// Package regress implements the statistical-inference layer of the paper
// (Sections 2.3 and 3.1): linear regression over an integrated
// hardware-software space with
//
//   - variance-stabilizing power transformations x -> x^(1/n) chosen per
//     variable by the ladder of powers (Figure 3),
//   - per-variable non-linear transformations — linear, quadratic, cubic,
//     or a piecewise cubic spline with three knots, encoded exactly like the
//     paper's genetic values 1–4,
//   - pairwise interaction terms x_i * x_j,
//   - automatic elimination of collinear terms via rank-revealing QR
//     ("the modeling heuristic must also check for and eliminate collinear
//     variables"), and
//   - error and correlation metrics matching the paper's reporting (median
//     absolute percentage error; Pearson/Spearman correlation).
//
// The package is model-specification-agnostic: package genetic searches the
// space of Specs, and package core assembles Datasets from profiles.
package regress

import (
	"errors"
	"fmt"
	"strings"

	"hsmodel/internal/linalg"
)

// TransformCode is the per-variable genetic value of Section 3.4: 0 excludes
// the variable; 1, 2, 3 add it with a linear, quadratic, or cubic
// transformation; 4 applies a piecewise cubic with three inflection points.
type TransformCode uint8

// Transform codes.
const (
	Excluded TransformCode = iota
	Linear
	Quadratic
	Cubic
	Spline3
	NumTransformCodes // count of codes, for random generation
)

func (t TransformCode) String() string {
	switch t {
	case Excluded:
		return "excluded"
	case Linear:
		return "linear"
	case Quadratic:
		return "quadratic"
	case Cubic:
		return "cubic"
	case Spline3:
		return "spline3"
	}
	return fmt.Sprintf("code(%d)", uint8(t))
}

// columns returns the number of design columns the code expands to.
func (t TransformCode) columns() int {
	switch t {
	case Linear:
		return 1
	case Quadratic:
		return 2
	case Cubic:
		return 3
	case Spline3:
		return 6 // x, x^2, x^3, (x-a)^3+, (x-b)^3+, (x-c)^3+
	}
	return 0
}

// Interaction names a pairwise product term between raw variables I and J.
type Interaction struct {
	I, J int
}

// Canon returns the interaction with I <= J.
func (in Interaction) Canon() Interaction {
	if in.I > in.J {
		return Interaction{I: in.J, J: in.I}
	}
	return in
}

// Spec is a model specification: which variables enter, how each is
// transformed, and which pairs interact. It is the phenotype of the genetic
// chromosome.
type Spec struct {
	Codes        []TransformCode
	Interactions []Interaction
}

// Clone deep-copies the spec.
func (s Spec) Clone() Spec {
	c := Spec{
		Codes:        append([]TransformCode(nil), s.Codes...),
		Interactions: append([]Interaction(nil), s.Interactions...),
	}
	return c
}

// Validate checks internal consistency against a variable count.
func (s Spec) Validate(numVars int) error {
	if len(s.Codes) != numVars {
		return fmt.Errorf("regress: spec has %d codes, want %d", len(s.Codes), numVars)
	}
	for _, c := range s.Codes {
		if c >= NumTransformCodes {
			return fmt.Errorf("regress: invalid transform code %d", c)
		}
	}
	for _, in := range s.Interactions {
		if in.I < 0 || in.I >= numVars || in.J < 0 || in.J >= numVars || in.I == in.J {
			return fmt.Errorf("regress: invalid interaction %d-%d", in.I, in.J)
		}
	}
	return nil
}

// NumTerms returns the count of included variables plus interactions.
func (s Spec) NumTerms() int {
	n := len(s.Interactions)
	for _, c := range s.Codes {
		if c != Excluded {
			n++
		}
	}
	return n
}

// String renders the spec compactly, e.g. "x1:linear x3:spline3 | x1*y2".
func (s Spec) String() string {
	var b strings.Builder
	for i, c := range s.Codes {
		if c == Excluded {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "v%d:%s", i, c)
	}
	if len(s.Interactions) > 0 {
		b.WriteString(" |")
		for _, in := range s.Interactions {
			fmt.Fprintf(&b, " v%d*v%d", in.I, in.J)
		}
	}
	return b.String()
}

// Dataset is a table of observations: n rows of p raw variables plus a
// response. Group labels rows by application for per-application fitness and
// weighted refits; it may be nil when grouping is irrelevant.
type Dataset struct {
	Names []string // p variable names
	X     *linalg.Matrix
	Y     []float64
	Group []int
}

// NumRows returns the observation count.
func (d *Dataset) NumRows() int { return d.X.Rows }

// NumVars returns the raw-variable count.
func (d *Dataset) NumVars() int { return d.X.Cols }

// Check validates dimensions.
func (d *Dataset) Check() error {
	if d.X == nil {
		return errors.New("regress: dataset without X")
	}
	if len(d.Y) != d.X.Rows {
		return fmt.Errorf("regress: %d rows but %d responses", d.X.Rows, len(d.Y))
	}
	if len(d.Names) != d.X.Cols {
		return fmt.Errorf("regress: %d names for %d variables", len(d.Names), d.X.Cols)
	}
	if d.Group != nil && len(d.Group) != d.X.Rows {
		return fmt.Errorf("regress: %d group labels for %d rows", len(d.Group), d.X.Rows)
	}
	return nil
}

// Subset returns a dataset view containing the given row indices (data is
// copied).
func (d *Dataset) Subset(rows []int) *Dataset {
	sub := &Dataset{
		Names: d.Names,
		X:     linalg.NewMatrix(len(rows), d.X.Cols),
		Y:     make([]float64, len(rows)),
	}
	if d.Group != nil {
		sub.Group = make([]int, len(rows))
	}
	for i, r := range rows {
		copy(sub.X.Row(i), d.X.Row(r))
		sub.Y[i] = d.Y[r]
		if d.Group != nil {
			sub.Group[i] = d.Group[r]
		}
	}
	return sub
}

// Append returns a new dataset with other's rows appended. Variable names
// must match.
func (d *Dataset) Append(other *Dataset) *Dataset {
	if d.X.Cols != other.X.Cols {
		panic("regress: appending datasets with different variable counts")
	}
	n := d.X.Rows + other.X.Rows
	out := &Dataset{Names: d.Names, X: linalg.NewMatrix(n, d.X.Cols), Y: make([]float64, n)}
	copy(out.X.Data, d.X.Data)
	copy(out.X.Data[d.X.Rows*d.X.Cols:], other.X.Data)
	copy(out.Y, d.Y)
	copy(out.Y[d.X.Rows:], other.Y)
	if d.Group != nil && other.Group != nil {
		out.Group = make([]int, n)
		copy(out.Group, d.Group)
		copy(out.Group[d.X.Rows:], other.Group)
	}
	return out
}
