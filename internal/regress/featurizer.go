package regress

import (
	"fmt"

	"hsmodel/internal/linalg"
)

// Featurizer caches, for one dataset, the expanded basis columns of every
// (variable, transform) pair: z, z², z³, and the three truncated-power
// spline cubes — the superset every TransformCode selects a prefix or subset
// of. Design matrices for arbitrary specs are then assembled by gathering
// cached column slices plus only the spec's interaction products, instead of
// re-applying the power/standardize/clamp/spline pipeline to every row for
// every candidate model. This is the featurize layer of the modeling stack:
// genetic fitness evaluation calls Design/Fit thousands of times against the
// same rows, and the transform work is identical across specs.
//
// The dataset is validated (Check + finiteness) once at construction, so the
// per-spec path skips the O(rows·vars) scan FitSpec performs.
//
// A Featurizer is immutable after construction and safe for concurrent use.
type Featurizer struct {
	prep *Prep
	ds   *Dataset
	// basis[v][k] is the cached column k of variable v over all rows:
	// k = 0..2 are z, z², z³; k = 3..5 are (z-a)³₊, (z-b)³₊, (z-c)³₊.
	basis [][6][]float64
}

// NewFeaturizer learns preprocessing from ds (Prepare) and caches the basis
// columns. When stabilize is false, powers are fixed at 1.
func NewFeaturizer(ds *Dataset, stabilize bool) (*Featurizer, error) {
	if err := ds.Check(); err != nil {
		return nil, err
	}
	if err := checkFinite(ds); err != nil {
		return nil, err
	}
	return buildFeaturizer(Prepare(ds, stabilize), ds), nil
}

// FeaturizeWith caches basis columns of ds under an existing Prep (for
// example, preprocessing learned from a superset of ds, as the weighted
// per-application fits of Section 3.3 require).
func FeaturizeWith(prep *Prep, ds *Dataset) (*Featurizer, error) {
	if err := ds.Check(); err != nil {
		return nil, err
	}
	if prep.NumVars() != ds.NumVars() {
		return nil, fmt.Errorf("%w: prep has %d variables, dataset %d",
			ErrBadInput, prep.NumVars(), ds.NumVars())
	}
	if err := checkFinite(ds); err != nil {
		return nil, err
	}
	return buildFeaturizer(prep, ds), nil
}

func buildFeaturizer(prep *Prep, ds *Dataset) *Featurizer {
	n, p := ds.NumRows(), ds.NumVars()
	f := &Featurizer{prep: prep, ds: ds, basis: make([][6][]float64, p)}
	backing := make([]float64, n*6*p)
	for v := 0; v < p; v++ {
		for k := 0; k < 6; k++ {
			f.basis[v][k] = backing[:n:n]
			backing = backing[n:]
		}
		b := &f.basis[v]
		knots := prep.Knots[v]
		for i := 0; i < n; i++ {
			z := prep.z(v, ds.X.At(i, v))
			b[0][i] = z
			b[1][i] = z * z
			b[2][i] = z * z * z
			for k, kn := range knots {
				d := z - kn
				if d < 0 {
					d = 0
				}
				b[3+k][i] = d * d * d
			}
		}
	}
	return f
}

// Prep returns the preprocessing state shared with fitted models' predict
// path.
func (f *Featurizer) Prep() *Prep { return f.prep }

// Dataset returns the rows the basis columns were computed from.
func (f *Featurizer) Dataset() *Dataset { return f.ds }

// NumRows returns the cached row count.
func (f *Featurizer) NumRows() int { return f.ds.NumRows() }

// Design assembles the design matrix for spec from the cached basis columns.
// Only interaction products are computed fresh (one multiply per row per
// interaction).
func (f *Featurizer) Design(spec Spec) (*linalg.Matrix, []Column, error) {
	if err := spec.Validate(f.ds.NumVars()); err != nil {
		return nil, nil, err
	}
	cols := columnsFor(spec, f.prep.Names)
	m := linalg.NewMatrix(f.ds.NumRows(), len(cols))
	f.fillDesign(spec, m, nil)
	return m, cols, nil
}

// DesignRows assembles design rows for a subset of the cached rows, in the
// given order. The spec must already be validated (Design or Fit).
func (f *Featurizer) DesignRows(spec Spec, rows []int) *linalg.Matrix {
	m := linalg.NewMatrix(len(rows), numDesignColumns(spec))
	f.fillDesign(spec, m, rows)
	return m
}

// fillDesign writes the design for spec into m. rows selects (and orders) the
// source rows; nil means all rows in order.
func (f *Featurizer) fillDesign(spec Spec, m *linalg.Matrix, rows []int) {
	n, stride := m.Rows, m.Cols
	data := m.Data
	for i := 0; i < n; i++ {
		data[i*stride] = 1
	}
	c := 1
	gather := func(src []float64) {
		if rows == nil {
			for i := 0; i < n; i++ {
				data[i*stride+c] = src[i]
			}
		} else {
			for i, r := range rows {
				data[i*stride+c] = src[r]
			}
		}
		c++
	}
	for v, code := range spec.Codes {
		if code == Excluded {
			continue
		}
		b := &f.basis[v]
		gather(b[0])
		if code >= Quadratic {
			gather(b[1])
		}
		if code >= Cubic {
			gather(b[2])
		}
		if code == Spline3 {
			gather(b[3])
			gather(b[4])
			gather(b[5])
		}
	}
	for _, in := range spec.Interactions {
		zi, zj := f.basis[in.I][0], f.basis[in.J][0]
		if rows == nil {
			for i := 0; i < n; i++ {
				data[i*stride+c] = zi[i] * zj[i]
			}
		} else {
			for i, r := range rows {
				data[i*stride+c] = zi[r] * zj[r]
			}
		}
		c++
	}
}

// numDesignColumns returns the design width of spec (intercept included).
func numDesignColumns(spec Spec) int {
	n := 1
	for _, code := range spec.Codes {
		n += code.columns()
	}
	return n + len(spec.Interactions)
}

// Fit fits spec to the featurized dataset, assembling the design from the
// cached basis columns. It produces the same Model (bit-identical
// coefficients) as FitSpec(spec, f.Prep(), f.Dataset(), opts); the dataset
// validation already happened at construction, so only the spec is checked
// here.
//
// Like FitSpec, Fit is a panic boundary: panics below it surface as errors
// wrapping ErrBadInput.
func (f *Featurizer) Fit(spec Spec, opts Options) (m *Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			m = nil
			err = fmt.Errorf("%w: panic during fit: %v", ErrBadInput, r)
		}
	}()
	design, cols, err := f.Design(spec)
	if err != nil {
		return nil, err
	}
	return fitDesign(spec, f.prep, design, cols, f.ds.Y, opts)
}
