package regress

import (
	"math"
	"testing"

	"hsmodel/internal/linalg"
	"hsmodel/internal/rng"
)

// mkDataset builds a dataset from a generator function y = f(x) over random
// raw variables.
func mkDataset(n, p int, seed uint64, f func(x []float64) float64) *Dataset {
	src := rng.New(seed)
	names := make([]string, p)
	for i := range names {
		names[i] = "v" + string(rune('a'+i))
	}
	ds := &Dataset{Names: names, X: linalg.NewMatrix(n, p), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := ds.X.Row(i)
		for j := range row {
			row[j] = src.Float64()*4 + 0.5
		}
		ds.Y[i] = f(row)
	}
	return ds
}

func linSpec(p int, codes ...TransformCode) Spec {
	s := Spec{Codes: make([]TransformCode, p)}
	copy(s.Codes, codes)
	return s
}

func TestSpecValidate(t *testing.T) {
	s := linSpec(3, Linear, Excluded, Spline3)
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(2); err == nil {
		t.Error("wrong variable count should fail")
	}
	bad := Spec{Codes: []TransformCode{99}}
	if err := bad.Validate(1); err == nil {
		t.Error("invalid code should fail")
	}
	badInt := Spec{Codes: []TransformCode{Linear, Linear}, Interactions: []Interaction{{0, 0}}}
	if err := badInt.Validate(2); err == nil {
		t.Error("self-interaction should fail")
	}
}

func TestSpecCloneIndependence(t *testing.T) {
	s := Spec{Codes: []TransformCode{Linear}, Interactions: []Interaction{{0, 1}}}
	c := s.Clone()
	c.Codes[0] = Cubic
	c.Interactions[0] = Interaction{1, 2}
	if s.Codes[0] != Linear || s.Interactions[0] != (Interaction{0, 1}) {
		t.Error("Clone shares storage")
	}
}

func TestInteractionCanon(t *testing.T) {
	if (Interaction{3, 1}).Canon() != (Interaction{1, 3}) {
		t.Error("Canon should order endpoints")
	}
	if (Interaction{1, 3}).Canon() != (Interaction{1, 3}) {
		t.Error("Canon should be idempotent")
	}
}

func TestFitRecoversLinearModel(t *testing.T) {
	// y = 3 + 2*x0 - x1, exact: predictions must match to precision.
	ds := mkDataset(100, 2, 41, func(x []float64) float64 { return 3 + 2*x[0] - x[1] })
	m, err := FitSpec(linSpec(2, Linear, Linear), nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumRows(); i++ {
		pred := m.Predict(ds.X.Row(i))
		if math.Abs(pred-ds.Y[i]) > 1e-8 {
			t.Fatalf("row %d: pred %v, want %v", i, pred, ds.Y[i])
		}
	}
}

func TestQuadraticBeatsLinearOnCurvedData(t *testing.T) {
	ds := mkDataset(200, 1, 42, func(x []float64) float64 { return 1 + x[0]*x[0] })
	lin, err := FitSpec(linSpec(1, Linear), nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := FitSpec(linSpec(1, Quadratic), nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if quad.Evaluate(ds).MedAPE >= lin.Evaluate(ds).MedAPE {
		t.Error("quadratic transform should fit curved data better")
	}
	if quad.Evaluate(ds).MedAPE > 1e-6 {
		t.Error("quadratic fit of quadratic data should be near-exact")
	}
}

func TestSplineCapturesPiecewiseTrend(t *testing.T) {
	// Hinged function: flat then steep — cubic splines with knots should
	// beat a plain cubic.
	ds := mkDataset(300, 1, 43, func(x []float64) float64 {
		if x[0] < 2.5 {
			return 5
		}
		return 5 + 8*(x[0]-2.5)
	})
	cubic, err := FitSpec(linSpec(1, Cubic), nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spline, err := FitSpec(linSpec(1, Spline3), nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if spline.Evaluate(ds).MeanAPE >= cubic.Evaluate(ds).MeanAPE {
		t.Error("spline should fit hinged data better than cubic")
	}
}

func TestInteractionRecovery(t *testing.T) {
	// y depends only on the product x0*x1: without the interaction the fit
	// is poor, with it near-exact.
	ds := mkDataset(150, 2, 44, func(x []float64) float64 { return 2 + 3*x[0]*x[1] })
	mains, err := FitSpec(linSpec(2, Linear, Linear), nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withInt := linSpec(2, Linear, Linear)
	withInt.Interactions = []Interaction{{0, 1}}
	inter, err := FitSpec(withInt, nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inter.Evaluate(ds).MedAPE >= mains.Evaluate(ds).MedAPE {
		t.Error("interaction term should improve fit of multiplicative data")
	}
	if inter.Evaluate(ds).MedAPE > 1e-6 {
		t.Errorf("interaction fit error %v, want ~0", inter.Evaluate(ds).MedAPE)
	}
}

func TestCollinearColumnDropped(t *testing.T) {
	// Variable 1 duplicates variable 0 (the paper's temporal/spatial
	// locality example): the fit must succeed and flag dropped columns.
	src := rng.New(45)
	ds := &Dataset{
		Names: []string{"a", "dup"},
		X:     linalg.NewMatrix(80, 2),
		Y:     make([]float64, 80),
	}
	for i := 0; i < 80; i++ {
		v := src.Float64() * 10
		ds.X.Set(i, 0, v)
		ds.X.Set(i, 1, v)
		ds.Y[i] = 1 + 2*v
	}
	m, err := FitSpec(linSpec(2, Linear, Linear), nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Dropped) == 0 {
		t.Error("duplicate column should be dropped as collinear")
	}
	if met := m.Evaluate(ds); met.MedAPE > 1e-8 {
		t.Errorf("fit after collinearity drop inaccurate: %v", met)
	}
}

func TestLogResponse(t *testing.T) {
	// Multiplicative data: log response makes it exactly linear.
	ds := mkDataset(100, 1, 46, func(x []float64) float64 { return math.Exp(1 + 0.5*x[0]) })
	m, err := FitSpec(linSpec(1, Linear), nil, ds, Options{LogResponse: true})
	if err != nil {
		t.Fatal(err)
	}
	if met := m.Evaluate(ds); met.MedAPE > 1e-8 {
		t.Errorf("log-response fit error %v", met.MedAPE)
	}
	if !m.LogResponse {
		t.Error("model must record its response transform")
	}
	// Non-positive responses must be rejected under LogResponse.
	bad := mkDataset(10, 1, 47, func(x []float64) float64 { return 0 })
	if _, err := FitSpec(linSpec(1, Linear), nil, bad, Options{LogResponse: true}); err == nil {
		t.Error("zero response with LogResponse should fail")
	}
}

func TestZeroWeightExcludesRow(t *testing.T) {
	// Two populations; rows of the second get weight 0 and must not
	// influence the fit.
	src := rng.New(48)
	n := 60
	ds := &Dataset{Names: []string{"x"}, X: linalg.NewMatrix(2*n, 1), Y: make([]float64, 2*n)}
	w := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		v := src.Float64() * 5
		ds.X.Set(i, 0, v)
		ds.Y[i] = 2 * v
		w[i] = 1
		ds.X.Set(n+i, 0, v)
		ds.Y[n+i] = -17 * v // contaminated rows
		w[n+i] = 0
	}
	m, err := FitSpec(linSpec(1, Linear), nil, ds, Options{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(m.Predict(ds.X.Row(i))-ds.Y[i]) > 1e-8 {
			t.Fatal("zero-weighted rows leaked into the fit")
		}
	}
}

func TestTooFewRows(t *testing.T) {
	ds := mkDataset(3, 2, 49, func(x []float64) float64 { return x[0] })
	spec := linSpec(2, Spline3, Spline3) // 13 columns > 3 rows
	if _, err := FitSpec(spec, nil, ds, Options{}); err == nil {
		t.Error("fit with fewer rows than columns should fail")
	}
}

func TestPrepStabilization(t *testing.T) {
	// A long-tailed variable gets power < 1 when stabilization is on.
	src := rng.New(50)
	ds := &Dataset{Names: []string{"tail"}, X: linalg.NewMatrix(500, 1), Y: make([]float64, 500)}
	for i := 0; i < 500; i++ {
		v := src.LogNormal(3, 1.5)
		ds.X.Set(i, 0, v)
		ds.Y[i] = v
	}
	on := Prepare(ds, true)
	off := Prepare(ds, false)
	if on.Powers[0] >= 1 {
		t.Errorf("stabilized power %v, want < 1", on.Powers[0])
	}
	if off.Powers[0] != 1 {
		t.Errorf("unstabilized power %v, want 1", off.Powers[0])
	}
}

func TestMetricsAssess(t *testing.T) {
	met := Assess([]float64{11, 22, 33}, []float64{10, 20, 30})
	if math.Abs(met.MedAPE-0.1) > 1e-12 {
		t.Errorf("medAPE %v", met.MedAPE)
	}
	if met.Pearson < 0.999 {
		t.Errorf("Pearson %v", met.Pearson)
	}
	if met.N != 3 {
		t.Errorf("N = %d", met.N)
	}
	if met.String() == "" {
		t.Error("metrics should render")
	}
}

func TestDatasetSubsetAppend(t *testing.T) {
	ds := mkDataset(10, 2, 51, func(x []float64) float64 { return x[0] })
	ds.Group = make([]int, 10)
	for i := range ds.Group {
		ds.Group[i] = i % 3
	}
	sub := ds.Subset([]int{1, 3, 5})
	if sub.NumRows() != 3 || math.Float64bits(sub.Y[0]) != math.Float64bits(ds.Y[1]) || sub.Group[2] != ds.Group[5] {
		t.Error("Subset wrong")
	}
	// Mutating the subset must not touch the parent.
	sub.X.Set(0, 0, -999)
	if ds.X.At(1, 0) == -999 {
		t.Error("Subset aliases parent storage")
	}
	both := ds.Append(sub)
	if both.NumRows() != 13 || math.Float64bits(both.Y[10]) != math.Float64bits(sub.Y[0]) {
		t.Error("Append wrong")
	}
	if err := both.Check(); err != nil {
		t.Error(err)
	}
}

func TestSpecString(t *testing.T) {
	s := linSpec(3, Linear, Excluded, Spline3)
	s.Interactions = []Interaction{{0, 2}}
	out := s.String()
	if out == "" {
		t.Fatal("empty spec string")
	}
	if s.NumTerms() != 3 {
		t.Errorf("NumTerms = %d, want 3", s.NumTerms())
	}
}

func TestColumnNaming(t *testing.T) {
	ds := mkDataset(30, 2, 52, func(x []float64) float64 { return x[0] })
	spec := linSpec(2, Quadratic, Excluded)
	spec.Interactions = []Interaction{{0, 1}}
	m, err := FitSpec(spec, nil, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// intercept + 2 quadratic columns + 1 interaction = 4.
	if len(m.Columns) != 4 {
		t.Fatalf("%d columns: %v", len(m.Columns), m.Columns)
	}
	if m.Columns[0].Name != "(intercept)" {
		t.Error("first column must be the intercept")
	}
	if m.Columns[3].Interaction == nil {
		t.Error("interaction column untagged")
	}
}
