package regress

import "hsmodel/internal/linalg"

// PredictScratch holds the reusable buffers of the predict hot path: the
// per-variable z cache and design row for scalar predictions, and the
// contiguous design-matrix backing for batch predictions. A scratch belongs
// to exactly one goroutine at a time (callers pool them); the zero value is
// ready to use and grows to the high-water mark of the models it serves, so
// steady-state predictions allocate nothing.
type PredictScratch struct {
	z      []float64 // standardized-value cache, one slot per raw variable
	row    []float64 // design row for scalar predictions
	design []float64 // row-major batch design backing, rows*cols
	dm     linalg.Matrix
}

// ensure sizes the scalar buffers for a model with numVars raw variables and
// cols design columns.
func (s *PredictScratch) ensure(numVars, cols int) {
	if cap(s.z) < numVars {
		s.z = make([]float64, numVars)
	}
	s.z = s.z[:numVars]
	if cap(s.row) < cols {
		s.row = make([]float64, cols)
	}
	s.row = s.row[:cols]
}

// ensureBatch additionally sizes the batch design backing for n rows.
func (s *PredictScratch) ensureBatch(numVars, cols, n int) {
	s.ensure(numVars, cols)
	if cap(s.design) < n*cols {
		s.design = make([]float64, n*cols)
	}
	s.design = s.design[:n*cols]
}

// PredictWith is Predict with caller-owned scratch: the zero-allocation
// scalar form of the serving hot path. Results are bit-identical to Predict.
//
//hslint:hotpath
func (m *Model) PredictWith(s *PredictScratch, raw []float64) float64 {
	s.ensure(m.Prep.NumVars(), len(m.Coef))
	m.Prep.fillDesignRow(m.Spec, raw, s.z, s.row)
	return m.PredictDesignRow(s.row)
}

// PredictBatchWith predicts every row of rows into out (out[i] answers
// rows[i]; len(out) must be at least len(rows)), reusing the caller's
// scratch: design rows are expanded into one contiguous rows×cols buffer and
// the coefficient products are applied as a single matrix-vector sweep
// through linalg. Each row's dot product accumulates in the same ascending
// column order as PredictDesignRow, so every batch prediction is
// Float64bits-identical to the scalar path.
//
//hslint:hotpath
func (m *Model) PredictBatchWith(s *PredictScratch, rows [][]float64, out []float64) {
	n := len(rows)
	if n == 0 {
		return
	}
	cols := len(m.Coef)
	s.ensureBatch(m.Prep.NumVars(), cols, n)
	for i, raw := range rows {
		m.Prep.fillDesignRow(m.Spec, raw, s.z, s.design[i*cols:(i+1)*cols])
	}
	s.dm.Rows, s.dm.Cols, s.dm.Data = n, cols, s.design
	s.dm.MulVecInto(m.Coef, out[:n])
	for i, v := range out[:n] {
		out[i] = m.finish(v)
	}
}
