package regress

import (
	"errors"
	"fmt"
	"math"

	"hsmodel/internal/linalg"
	"hsmodel/internal/stats"
)

// Options controls fitting.
type Options struct {
	// LogResponse fits log(y) instead of y and exponentiates predictions.
	// Performance and CPI are strictly positive with multiplicative error
	// structure, so this is the default in package core; the ablation bench
	// measures its effect.
	LogResponse bool
	// Weights scales observations (the paper's "{P−s,Ts}×w" weighted fit).
	// Nil means uniform. Length must equal the dataset rows.
	Weights []float64
	// Stabilize applies ladder-of-powers variance stabilization in Prepare
	// when FitSpec builds its own Prep (ignored when Prep is supplied).
	Stabilize bool
}

// Model is a fitted regression model: a specification, the preprocessing
// learned from training data, and coefficients. Predictions require only the
// raw variable vector, so a Model is self-contained and serializable.
type Model struct {
	Spec    Spec
	Prep    *Prep
	Columns []Column
	Coef    []float64
	Rank    int
	// DroppedColumns lists design columns eliminated as collinear.
	Dropped []int
	// LogResponse records the response transform used at fit time.
	LogResponse bool
	// YLo and YHi clamp predictions. They are set at fit time to a 1.5x
	// envelope of the observed responses: a performance model extrapolating
	// a new application should saturate, not explode.
	YLo, YHi float64
}

// ErrTooFewRows is returned when a fit has fewer observations than design
// columns.
var ErrTooFewRows = errors.New("regress: fewer observations than design columns")

// ErrBadInput marks fits rejected because the data itself is unusable:
// NaN/Inf profile rows, non-positive responses under LogResponse, or
// mismatched weight vectors. Callers degrade or skip, they do not retry.
var ErrBadInput = errors.New("regress: bad input")

// ErrSingular marks fits whose design matrix has no usable solution even
// after column pivoting (e.g. all-constant profiles).
var ErrSingular = errors.New("regress: singular fit")

// checkFinite rejects NaN/Inf observations before they reach the
// factorization, where they would otherwise poison every coefficient or
// panic deep inside linalg.
func checkFinite(ds *Dataset) error {
	for i := 0; i < ds.X.Rows; i++ {
		for _, v := range ds.X.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite value %g in row %d", ErrBadInput, v, i)
			}
		}
	}
	for i, v := range ds.Y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite response %g in row %d", ErrBadInput, v, i)
		}
	}
	return nil
}

// FitSpec fits spec to ds. If prep is nil, preprocessing is learned from ds
// itself.
//
// FitSpec is a panic boundary: a panic anywhere below it (dimension
// mismatches in linalg, degenerate splines) is recovered and reported as an
// error wrapping ErrBadInput, so a single corrupt profile cannot kill a
// long-running modeling service.
func FitSpec(spec Spec, prep *Prep, ds *Dataset, opts Options) (m *Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			m = nil
			err = fmt.Errorf("%w: panic during fit: %v", ErrBadInput, r)
		}
	}()
	if err := ds.Check(); err != nil {
		return nil, err
	}
	if err := spec.Validate(ds.NumVars()); err != nil {
		return nil, err
	}
	if err := checkFinite(ds); err != nil {
		return nil, err
	}
	if prep == nil {
		prep = Prepare(ds, opts.Stabilize)
	}
	design, cols := prep.Design(spec, ds)
	return fitDesign(spec, prep, design, cols, ds.Y, opts)
}

// fitDesign is the shared solve path of FitSpec and Featurizer.Fit: response
// transform, observation weighting, pivoted-QR solve, and the prediction
// envelope. design is consumed (weighting scales its rows in place); resp is
// the raw response vector and is not modified.
func fitDesign(spec Spec, prep *Prep, design *linalg.Matrix, cols []Column, resp []float64, opts Options) (*Model, error) {
	if design.Rows < design.Cols {
		return nil, fmt.Errorf("%w: %d rows, %d columns", ErrTooFewRows, design.Rows, design.Cols)
	}
	y := make([]float64, len(resp))
	for i, v := range resp {
		if opts.LogResponse {
			if v <= 0 {
				return nil, fmt.Errorf("%w: non-positive response %g with LogResponse", ErrBadInput, v)
			}
			y[i] = math.Log(v)
		} else {
			y[i] = v
		}
	}
	if opts.Weights != nil {
		if len(opts.Weights) != design.Rows {
			return nil, fmt.Errorf("%w: %d weights for %d rows", ErrBadInput, len(opts.Weights), design.Rows)
		}
		for i := 0; i < design.Rows; i++ {
			w := math.Sqrt(opts.Weights[i])
			row := design.Row(i)
			for j := range row {
				row[j] *= w
			}
			y[i] *= w
		}
	}
	f := linalg.Factor(design, 0)
	coef, err := f.Solve(y)
	if err != nil {
		if errors.Is(err, linalg.ErrRankDeficient) {
			return nil, fmt.Errorf("%w: %w", ErrSingular, err)
		}
		return nil, err
	}
	yLo, yHi := resp[0], resp[0]
	for _, v := range resp {
		if v < yLo {
			yLo = v
		}
		if v > yHi {
			yHi = v
		}
	}
	return &Model{
		Spec:        spec,
		Prep:        prep,
		Columns:     cols,
		Coef:        coef,
		Rank:        f.Rank(),
		Dropped:     f.DroppedColumns(),
		LogResponse: opts.LogResponse,
		YLo:         yLo / 1.5,
		YHi:         yHi * 1.5,
	}, nil
}

// Predict returns the model's prediction for one raw observation. The
// serving hot path uses PredictWith/PredictBatchWith with a pooled scratch
// instead; Predict allocates its buffers per call.
func (m *Model) Predict(raw []float64) float64 {
	var s PredictScratch
	return m.PredictWith(&s, raw)
}

// PredictDesignRow predicts from an already-expanded design row (for example
// one assembled by Featurizer.DesignRows), applying the coefficient dot
// product, the response transform, and the prediction envelope.
//
//hslint:hotpath
func (m *Model) PredictDesignRow(row []float64) float64 {
	var s float64
	for j, c := range m.Coef {
		s += c * row[j]
	}
	return m.finish(s)
}

// finish applies the response transform and the prediction envelope to a
// design-row dot product — the shared tail of the scalar and batch kernels.
//
//hslint:hotpath
func (m *Model) finish(s float64) float64 {
	if m.LogResponse {
		s = math.Exp(s)
	}
	if m.YHi > m.YLo {
		if s < m.YLo {
			s = m.YLo
		}
		if s > m.YHi {
			s = m.YHi
		}
	}
	return s
}

// PredictAll returns predictions for every row of ds.
func (m *Model) PredictAll(ds *Dataset) []float64 {
	out := make([]float64, ds.NumRows())
	var s PredictScratch
	for i := range out {
		out[i] = m.PredictWith(&s, ds.X.Row(i))
	}
	return out
}

// Metrics summarizes predictive accuracy the way the paper reports it.
type Metrics struct {
	MedAPE   float64 // median absolute percentage error (Figures 7, 10, 14)
	MeanAPE  float64
	Pearson  float64 // predicted-vs-true correlation (Figure 8)
	Spearman float64
	R2       float64
	N        int
}

func (m Metrics) String() string {
	return fmt.Sprintf("medAPE=%.1f%% meanAPE=%.1f%% rho=%.3f spearman=%.3f R2=%.3f n=%d",
		100*m.MedAPE, 100*m.MeanAPE, m.Pearson, m.Spearman, m.R2, m.N)
}

// Evaluate computes accuracy metrics of the model on a validation dataset.
func (m *Model) Evaluate(ds *Dataset) Metrics {
	pred := m.PredictAll(ds)
	return Assess(pred, ds.Y)
}

// Assess computes accuracy metrics for a prediction/truth pairing.
func Assess(pred, truth []float64) Metrics {
	met := Metrics{
		MedAPE:   stats.MedianAbsPctError(pred, truth),
		MeanAPE:  stats.MeanAbsPctError(pred, truth),
		Pearson:  stats.Pearson(pred, truth),
		Spearman: stats.Spearman(pred, truth),
		N:        len(pred),
	}
	// R^2 against the mean of truth.
	mean := stats.Mean(truth)
	var ssRes, ssTot float64
	for i := range truth {
		d := truth[i] - pred[i]
		ssRes += d * d
		t := truth[i] - mean
		ssTot += t * t
	}
	if ssTot > 0 {
		met.R2 = 1 - ssRes/ssTot
	}
	return met
}

// ErrorDistribution returns the absolute percentage errors of the model on
// ds, for boxplot-style reporting.
func (m *Model) ErrorDistribution(ds *Dataset) []float64 {
	return stats.AbsPctErrors(m.PredictAll(ds), ds.Y)
}
