package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky.Factor when the matrix is not
// numerically symmetric positive definite — including the rank-deficient
// case, where a pivot collapses to zero or below.
var ErrNotSPD = errors.New("linalg: matrix not positive definite")

// Cholesky holds the factorization A = L·Lᵀ of a symmetric positive
// definite matrix. Unlike the pivoted QR in this package it is O(n³/3) on
// the (small) matrix order rather than O(rows·cols²) on the observation
// count, which is what makes normal-equation solves cheap for the Gram-cache
// fit path: the data pass is paid once building the Gram matrix, and every
// candidate solve touches only p×p numbers.
//
// A Cholesky value is reusable: Factor overwrites the receiver, so hot paths
// can keep one per worker and avoid per-solve allocation.
type Cholesky struct {
	n          int
	l          *Matrix // lower triangle holds L; entries above the diagonal are stale
	dmin, dmax float64 // extreme diagonal entries of L, for the condition estimate
}

// Factor computes the Cholesky factorization of a, overwriting a's lower
// triangle with L and retaining a as the factor's storage (no copy is
// taken). Only the lower triangle of a is read, so callers need not fill the
// upper half. A non-positive (or non-finite) pivot aborts with ErrNotSPD and
// leaves the factor unusable.
func (c *Cholesky) Factor(a *Matrix) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: Cholesky of %dx%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	c.n = n
	c.l = a
	c.dmin, c.dmax = math.Inf(1), 0
	data := a.Data
	for j := 0; j < n; j++ {
		rowJ := data[j*n : (j+1)*n]
		d := rowJ[j]
		for k := 0; k < j; k++ {
			d -= rowJ[k] * rowJ[k]
		}
		if math.IsNaN(d) || d <= 0 {
			c.l = nil
			return fmt.Errorf("%w: pivot %d is %g", ErrNotSPD, j, d)
		}
		dj := math.Sqrt(d)
		rowJ[j] = dj
		if dj < c.dmin {
			c.dmin = dj
		}
		if dj > c.dmax {
			c.dmax = dj
		}
		inv := 1 / dj
		for i := j + 1; i < n; i++ {
			rowI := data[i*n : (i+1)*n]
			s := rowI[j]
			for k := 0; k < j; k++ {
				s -= rowI[k] * rowJ[k]
			}
			rowI[j] = s * inv
		}
	}
	return nil
}

// FactorPruned computes a pruning Cholesky factorization of a: a column whose
// remaining pivot falls to dropTol or below — a numerically exact linear
// dependent of the preceding kept columns, or an all-zero column — is skipped
// instead of aborting the factorization, mirroring how pivoted QR drops
// zero-norm columns. It returns the kept column indices, increasing; the
// factor then describes the kept principal submatrix, and SolveInPlace
// expects vectors of that reduced length.
//
// dropTol is absolute, so callers should equilibrate a to a unit diagonal
// first; a few hundred ULPs (~1e-12) then separates exact dependents from
// directions the condition guard must judge. Like Factor, FactorPruned
// consumes a's storage. A NaN pivot aborts with ErrNotSPD.
func (c *Cholesky) FactorPruned(a *Matrix, dropTol float64) ([]int, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: Cholesky of %dx%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	c.dmin, c.dmax = math.Inf(1), 0
	data := a.Data
	kept := make([]int, 0, n)
	// The compacted factor grows in the same storage: L entries land at column
	// q = len(kept) ≤ j, strictly left of every unread original entry (column
	// indices ≥ j), so the two never collide.
	for j := 0; j < n; j++ {
		q := len(kept)
		rowJ := data[j*n : (j+1)*n]
		d := rowJ[j]
		for k := 0; k < q; k++ {
			d -= rowJ[k] * rowJ[k]
		}
		if math.IsNaN(d) {
			c.l = nil
			return nil, fmt.Errorf("%w: pivot %d is NaN", ErrNotSPD, j)
		}
		if d <= dropTol {
			continue // dependent on the kept columns at working precision
		}
		dj := math.Sqrt(d)
		rowJ[q] = dj
		if dj < c.dmin {
			c.dmin = dj
		}
		if dj > c.dmax {
			c.dmax = dj
		}
		inv := 1 / dj
		for i := j + 1; i < n; i++ {
			rowI := data[i*n : (i+1)*n]
			s := rowI[j]
			for k := 0; k < q; k++ {
				s -= rowI[k] * rowJ[k]
			}
			rowI[q] = s * inv
		}
		kept = append(kept, j)
	}
	q := len(kept)
	if q == 0 {
		c.l = nil
		return nil, fmt.Errorf("%w: all %d columns pruned", ErrNotSPD, n)
	}
	// Re-pack the kept rows contiguously at stride q. Destinations never reach
	// a later source row (rc·q+rc+1 ≤ (r+1)·n), and copy tolerates the
	// same-row overlap when only the stride shrinks.
	for rc, r := range kept {
		copy(data[rc*q:rc*q+rc+1], data[r*n:r*n+rc+1])
	}
	c.n = q
	c.l = &Matrix{Rows: q, Cols: q, Data: data[:q*q]}
	return kept, nil
}

// ConditionEstimate returns (max diag L / min diag L)², a cheap lower bound
// on the 2-norm condition number of the factored matrix. It is exact for
// diagonal matrices and a usable guard for equilibrated Gram matrices, whose
// off-diagonal mass is bounded by the unit diagonal.
func (c *Cholesky) ConditionEstimate() float64 {
	if c.l == nil || c.n == 0 || c.dmin == 0 {
		return math.Inf(1)
	}
	r := c.dmax / c.dmin
	return r * r
}

// SmallestEigenEstimate estimates the smallest eigenvalue of the factored
// matrix by inverse power iteration, reusing the factor for the inner solves
// (O(n²) each). The start vector is deterministic, so repeated calls agree
// bit-for-bit. scratch must have length ≥ n (it is overwritten); iters ≤ 0
// defaults to 4, plenty for a condition guard.
//
// Together with a norm bound on the original matrix this yields a much
// tighter condition estimate than the diagonal ratio, which only lower-bounds
// the true condition number and can undershoot by orders of magnitude.
func (c *Cholesky) SmallestEigenEstimate(iters int, scratch []float64) float64 {
	if c.l == nil || c.n == 0 {
		return 0
	}
	if iters <= 0 {
		iters = 4
	}
	n := c.n
	v := scratch[:n]
	for i := range v {
		if i%2 == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	lambda := 0.0
	for k := 0; k < iters; k++ {
		// Normalize, then invert: ||A⁻¹ v|| → 1/λmin as v aligns with the
		// smallest eigenvector.
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
			return 0
		}
		inv := 1 / norm
		for i := range v {
			v[i] *= inv
		}
		if err := c.SolveInPlace(v); err != nil {
			return 0
		}
		var ynorm float64
		for _, x := range v {
			ynorm += x * x
		}
		ynorm = math.Sqrt(ynorm)
		if ynorm == 0 || math.IsNaN(ynorm) || math.IsInf(ynorm, 0) {
			return 0
		}
		lambda = 1 / ynorm
	}
	return lambda
}

// SolveInPlace overwrites b with the solution of A·x = b via forward and
// backward substitution. It allocates nothing.
func (c *Cholesky) SolveInPlace(b []float64) error {
	if c.l == nil {
		return ErrNotSPD
	}
	if len(b) != c.n {
		return fmt.Errorf("linalg: Cholesky rhs length %d, want %d", len(b), c.n)
	}
	n := c.n
	data := c.l.Data
	// L·y = b.
	for i := 0; i < n; i++ {
		row := data[i*n : (i+1)*n]
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	// Lᵀ·x = y. L is stored row-major, so Lᵀ[i][k] = L[k][i].
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= data[k*n+i] * b[k]
		}
		b[i] = s / data[i*n+i]
	}
	return nil
}

// Solve returns the solution of A·x = b, leaving b untouched.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := append([]float64(nil), b...)
	if err := c.SolveInPlace(x); err != nil {
		return nil, err
	}
	return x, nil
}
