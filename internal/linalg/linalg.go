// Package linalg implements the dense linear algebra backing the regression
// engine: a row-major matrix type and Householder QR factorization with
// column pivoting, which both solves least-squares problems and exposes the
// numerical rank needed to detect and eliminate collinear model terms
// (Section 3.1 of the paper: "the modeling heuristic must also check for and
// eliminate collinear variables").
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.Rows)
	m.MulVecInto(x, y)
	return y
}

// MulVecInto computes m * x into the caller's buffer y (len Rows),
// allocation-free: one contiguous sweep over the row-major storage. Each
// row's dot product accumulates in ascending column order, so results are
// bit-identical to MulVec and to a scalar coefficient walk over the same row.
//
//hslint:hotpath
func (m *Matrix) MulVecInto(x, y []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	if len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto output length %d, want %d", len(y), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// ErrRankDeficient is returned by solvers when the system has no unique
// solution even after pivoting.
var ErrRankDeficient = errors.New("linalg: rank deficient system")

// QR holds a Householder QR factorization with column pivoting:
// A * P = Q * R. The factorization is rank-revealing: diagonal entries of R
// are non-increasing in magnitude, so the numerical rank is the count of
// diagonals above tolerance.
type QR struct {
	qr    *Matrix   // packed Householder vectors below diagonal, R on/above
	tau   []float64 // Householder scalar factors
	piv   []int     // column permutation: column j of A*P is column piv[j] of A
	rank  int
	rows  int
	cols  int
	rdiag []float64
}

// Factor computes the pivoted QR factorization of a (copied, not modified).
// tol is the relative tolerance for rank determination; pass 0 for a default
// scaled by machine epsilon.
func Factor(a *Matrix, tol float64) *QR {
	m, n := a.Rows, a.Cols
	f := &QR{qr: a.Clone(), tau: make([]float64, n), piv: make([]int, n), rows: m, cols: n}
	for j := range f.piv {
		f.piv[j] = j
	}
	// Column norms for pivoting.
	norms := make([]float64, n)
	for j := 0; j < n; j++ {
		norms[j] = f.colNorm(0, j)
	}
	maxNorm := 0.0
	for _, v := range norms {
		if v > maxNorm {
			maxNorm = v
		}
	}
	if tol <= 0 {
		tol = 1e-10
	}
	thresh := tol * maxNorm
	kmax := m
	if n < m {
		kmax = n
	}
	for k := 0; k < kmax; k++ {
		// Pivot: bring the column with the largest remaining norm to k.
		best := k
		for j := k + 1; j < n; j++ {
			if norms[j] > norms[best] {
				best = j
			}
		}
		if best != k {
			f.swapCols(k, best)
			norms[k], norms[best] = norms[best], norms[k]
			f.piv[k], f.piv[best] = f.piv[best], f.piv[k]
		}
		if norms[k] <= thresh {
			break // remaining columns are numerically dependent
		}
		f.house(k)
		f.rank = k + 1
		// Update remaining column norms (recompute exactly: n is small in
		// regression design matrices, so the O(mn) recompute is cheap and
		// avoids the classical cancellation pitfall).
		for j := k + 1; j < n; j++ {
			norms[j] = f.colNorm(k+1, j)
		}
	}
	f.rdiag = make([]float64, f.rank)
	for i := 0; i < f.rank; i++ {
		f.rdiag[i] = f.qr.At(i, i)
	}
	return f
}

func (f *QR) colNorm(fromRow, j int) float64 {
	var s float64
	for i := fromRow; i < f.rows; i++ {
		v := f.qr.At(i, j)
		s += v * v
	}
	return math.Sqrt(s)
}

func (f *QR) swapCols(a, b int) {
	for i := 0; i < f.rows; i++ {
		va, vb := f.qr.At(i, a), f.qr.At(i, b)
		f.qr.Set(i, a, vb)
		f.qr.Set(i, b, va)
	}
}

// house applies a Householder reflection eliminating column k below the
// diagonal, storing the reflector in place.
func (f *QR) house(k int) {
	m := f.rows
	// Compute the reflector for column k rows k..m-1.
	alpha := f.colNorm(k, k)
	if f.qr.At(k, k) > 0 {
		alpha = -alpha
	}
	if alpha == 0 {
		f.tau[k] = 0
		return
	}
	// v = x - alpha*e1, normalized so v[0] = 1.
	x0 := f.qr.At(k, k)
	v0 := x0 - alpha
	f.tau[k] = -v0 / alpha
	inv := 1 / v0
	for i := k + 1; i < m; i++ {
		f.qr.Set(i, k, f.qr.At(i, k)*inv)
	}
	f.qr.Set(k, k, alpha)
	// Apply reflection to the trailing columns: A = (I - tau v v^T) A.
	for j := k + 1; j < f.cols; j++ {
		s := f.qr.At(k, j)
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * f.qr.At(i, j)
		}
		s *= f.tau[k]
		f.qr.Set(k, j, f.qr.At(k, j)-s)
		for i := k + 1; i < m; i++ {
			f.qr.Set(i, j, f.qr.At(i, j)-s*f.qr.At(i, k))
		}
	}
}

// Rank returns the numerical rank detected during factorization.
func (f *QR) Rank() int { return f.rank }

// Pivot returns the column permutation; entry j gives the original column
// index occupying factored position j.
func (f *QR) Pivot() []int { return append([]int(nil), f.piv...) }

// DroppedColumns returns the original column indices judged numerically
// dependent (beyond the detected rank). The regression engine removes the
// corresponding model terms, implementing the paper's automatic collinearity
// elimination.
func (f *QR) DroppedColumns() []int {
	var out []int
	for j := f.rank; j < f.cols; j++ {
		out = append(out, f.piv[j])
	}
	return out
}

// applyQT overwrites b with Q^T b.
func (f *QR) applyQT(b []float64) {
	for k := 0; k < f.rank; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < f.rows; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s *= f.tau[k]
		b[k] -= s
		for i := k + 1; i < f.rows; i++ {
			b[i] -= s * f.qr.At(i, k)
		}
	}
}

// Solve returns the minimum-norm-ish least-squares solution to A x = b with
// coefficients of numerically dependent columns set to zero. The returned
// slice has length Cols.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.rows {
		return nil, fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), f.rows)
	}
	if f.rank == 0 {
		return nil, ErrRankDeficient
	}
	qtb := append([]float64(nil), b...)
	f.applyQT(qtb)
	// Back-substitute on the leading rank x rank block of R.
	y := make([]float64, f.rank)
	for i := f.rank - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < f.rank; j++ {
			s -= f.qr.At(i, j) * y[j]
		}
		d := f.qr.At(i, i)
		if d == 0 {
			return nil, ErrRankDeficient
		}
		y[i] = s / d
	}
	// Un-permute, zero-filling dropped columns.
	x := make([]float64, f.cols)
	for j := 0; j < f.rank; j++ {
		x[f.piv[j]] = y[j]
	}
	return x, nil
}

// ConditionEstimate returns |R[0,0]| / |R[rank-1,rank-1]|, a cheap estimate
// of the 2-norm condition number of the retained columns.
func (f *QR) ConditionEstimate() float64 {
	if f.rank == 0 {
		return math.Inf(1)
	}
	num := math.Abs(f.rdiag[0])
	den := math.Abs(f.rdiag[f.rank-1])
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// LeastSquares is a convenience wrapper: factor A and solve for b in one
// call, returning the coefficient vector (dropped columns get zero) and the
// detected rank.
func LeastSquares(a *Matrix, b []float64) ([]float64, int, error) {
	f := Factor(a, 0)
	x, err := f.Solve(b)
	if err != nil {
		return nil, f.rank, err
	}
	return x, f.rank, nil
}
