package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"hsmodel/internal/rng"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestSolveExactSquareSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, rank, err := LeastSquares(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rank != 2 {
		t.Fatalf("rank = %d", rank)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	// Overdetermined noiseless system must recover exact coefficients.
	src := rng.New(31)
	n, p := 100, 4
	truth := []float64{3, -2, 0.5, 7}
	a := NewMatrix(n, p)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			a.Set(i, j, src.Float64()*10-5)
		}
		for j := 0; j < p; j++ {
			b[i] += truth[j] * a.At(i, j)
		}
	}
	x, rank, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rank != p {
		t.Fatalf("rank = %d, want %d", rank, p)
	}
	for j := range truth {
		if math.Abs(x[j]-truth[j]) > 1e-9 {
			t.Fatalf("coef %d = %v, want %v", j, x[j], truth[j])
		}
	}
}

func TestRankDetectionDropsDuplicateColumn(t *testing.T) {
	// Column 2 duplicates column 0: rank 2, duplicate dropped, and the fit
	// still reproduces b.
	src := rng.New(32)
	n := 50
	a := NewMatrix(n, 3)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		v0 := src.Float64()
		v1 := src.Float64()
		a.Set(i, 0, v0)
		a.Set(i, 1, v1)
		a.Set(i, 2, v0) // exact duplicate
		b[i] = 2*v0 + 3*v1
	}
	f := Factor(a, 0)
	if f.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", f.Rank())
	}
	dropped := f.DroppedColumns()
	if len(dropped) != 1 {
		t.Fatalf("dropped = %v", dropped)
	}
	if dropped[0] != 0 && dropped[0] != 2 {
		t.Fatalf("dropped column %d is not one of the duplicates", dropped[0])
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must still be exact even with a dropped column.
	pred := a.MulVec(x)
	for i := range b {
		if math.Abs(pred[i]-b[i]) > 1e-9 {
			t.Fatalf("prediction %d = %v, want %v", i, pred[i], b[i])
		}
	}
	if x[dropped[0]] != 0 {
		t.Fatal("dropped column must have zero coefficient")
	}
}

func TestSolveResidualOrthogonality(t *testing.T) {
	// Least-squares residual must be orthogonal to the column space.
	src := rng.New(33)
	n, p := 60, 3
	a := NewMatrix(n, p)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			a.Set(i, j, src.Normal(0, 1))
		}
		b[i] = src.Normal(0, 1)
	}
	x, _, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(x)
	for j := 0; j < p; j++ {
		var dot float64
		for i := 0; i < n; i++ {
			dot += (b[i] - pred[i]) * a.At(i, j)
		}
		if math.Abs(dot) > 1e-8 {
			t.Fatalf("residual not orthogonal to column %d: %v", j, dot)
		}
	}
}

func TestConditionEstimate(t *testing.T) {
	// Orthonormal-ish columns: condition near 1. Nearly dependent: large.
	good := NewMatrix(2, 2)
	good.Set(0, 0, 1)
	good.Set(1, 1, 1)
	if c := Factor(good, 0).ConditionEstimate(); c > 1.01 {
		t.Errorf("identity condition = %v", c)
	}
	// Nearly (but not exactly) dependent columns: col1 = col0 + tiny noise
	// in an independent direction.
	bad := NewMatrix(3, 2)
	noise := []float64{1e-9, -2e-9, 1.5e-9}
	for i := 0; i < 3; i++ {
		v := float64(i + 1)
		bad.Set(i, 0, v)
		bad.Set(i, 1, v+noise[i])
	}
	f := Factor(bad, 1e-14)
	if f.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", f.Rank())
	}
	if c := f.ConditionEstimate(); c < 1e6 {
		t.Errorf("near-singular condition = %v, want large", c)
	}
	// With dependence below the default tolerance, the column is dropped —
	// exactly the collinearity elimination the modeling heuristic needs.
	verybad := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		v := float64(i + 1)
		verybad.Set(i, 0, v)
		verybad.Set(i, 1, v+noise[i]*1e-3)
	}
	if Factor(verybad, 0).Rank() != 1 {
		t.Error("default tolerance should drop the nearly dependent column")
	}
}

func TestSolveErrors(t *testing.T) {
	a := NewMatrix(2, 2)
	f := Factor(a, 0) // all-zero matrix: rank 0
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("rank-0 solve should fail")
	}
	a2 := NewMatrix(2, 1)
	a2.Set(0, 0, 1)
	a2.Set(1, 0, 1)
	if _, err := Factor(a2, 0).Solve([]float64{1}); err == nil {
		t.Error("wrong rhs length should fail")
	}
}

func TestPivotIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n, p := 20, 6
		a := NewMatrix(n, p)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				a.Set(i, j, src.Float64())
			}
		}
		piv := Factor(a, 0).Pivot()
		seen := make([]bool, p)
		for _, v := range piv {
			if v < 0 || v >= p || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresRecoveryProperty(t *testing.T) {
	// For random well-conditioned systems with exact solutions, recovery is
	// exact to numerical precision.
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n := 30 + src.Intn(30)
		p := 2 + src.Intn(5)
		truth := make([]float64, p)
		for j := range truth {
			truth[j] = src.Float64()*4 - 2
		}
		a := NewMatrix(n, p)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				a.Set(i, j, src.Normal(0, 1))
				b[i] += truth[j] * a.At(i, j)
			}
		}
		x, _, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		for j := range truth {
			if math.Abs(x[j]-truth[j]) > 1e-7 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
