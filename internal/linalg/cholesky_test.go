package linalg

import (
	"errors"
	"math"
	"testing"

	"hsmodel/internal/rng"
)

// gramOf returns AᵀA for a random well-conditioned tall matrix plus the
// matching right-hand side Aᵀb, so Cholesky solutions can be checked against
// the QR least-squares path.
func gramOf(t *testing.T, rows, cols int, seed uint64) (a *Matrix, g *Matrix, atb []float64, b []float64) {
	t.Helper()
	src := rng.New(seed)
	a = NewMatrix(rows, cols)
	for i := range a.Data {
		a.Data[i] = src.Float64()*2 - 1
	}
	b = make([]float64, rows)
	for i := range b {
		b[i] = src.Float64()*2 - 1
	}
	g = NewMatrix(cols, cols)
	atb = make([]float64, cols)
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			var s float64
			for r := 0; r < rows; r++ {
				s += a.At(r, i) * a.At(r, j)
			}
			g.Set(i, j, s)
		}
		for r := 0; r < rows; r++ {
			atb[i] += a.At(r, i) * b[r]
		}
	}
	return a, g, atb, b
}

// TestCholeskyMatchesQR: the normal-equation solve must agree with pivoted-QR
// least squares on a well-conditioned system.
func TestCholeskyMatchesQR(t *testing.T) {
	a, g, atb, b := gramOf(t, 60, 7, 5)
	want, _, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var c Cholesky
	if err := c.Factor(g); err != nil {
		t.Fatal(err)
	}
	got, err := c.Solve(atb)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-10*(1+math.Abs(want[j])) {
			t.Errorf("coef[%d] = %.15g, qr %.15g", j, got[j], want[j])
		}
	}
}

func TestCholeskySolveInPlaceReusesFactor(t *testing.T) {
	_, g, atb, _ := gramOf(t, 40, 5, 9)
	var c Cholesky
	if err := c.Factor(g); err != nil {
		t.Fatal(err)
	}
	x1, err := c.Solve(atb)
	if err != nil {
		t.Fatal(err)
	}
	x2 := append([]float64(nil), atb...)
	if err := c.SolveInPlace(x2); err != nil {
		t.Fatal(err)
	}
	for j := range x1 {
		if math.Float64bits(x1[j]) != math.Float64bits(x2[j]) {
			t.Fatalf("Solve and SolveInPlace disagree at %d", j)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	g := NewMatrix(2, 2)
	g.Set(0, 0, 1)
	g.Set(0, 1, 2)
	g.Set(1, 0, 2)
	g.Set(1, 1, 1) // eigenvalues 3, -1
	var c Cholesky
	if err := c.Factor(g); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("indefinite matrix factored: err=%v", err)
	}
	if err := c.SolveInPlace([]float64{1, 2}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("solve on failed factor: err=%v", err)
	}
}

func TestCholeskyConditionEstimateDiagonal(t *testing.T) {
	g := NewMatrix(3, 3)
	g.Set(0, 0, 100)
	g.Set(1, 1, 4)
	g.Set(2, 2, 1)
	var c Cholesky
	if err := c.Factor(g); err != nil {
		t.Fatal(err)
	}
	// Exact for diagonal matrices: (sqrt(100)/sqrt(1))² = 100.
	if got := c.ConditionEstimate(); math.Abs(got-100) > 1e-12 {
		t.Errorf("condition estimate = %g, want 100", got)
	}
}

// TestFactorPrunedDropsExactDependent: a duplicated column must be pruned,
// and the reduced solve must match QR's fit of the same system (QR drops the
// duplicate too; with identical columns the prediction-relevant coefficients
// coincide on whichever copy survives).
func TestFactorPrunedDropsExactDependent(t *testing.T) {
	const rows, cols = 50, 5
	a, _, _, b := gramOf(t, rows, cols, 21)
	// Append a copy of column 1: design a2 = [a | a[:,1]].
	a2 := NewMatrix(rows, cols+1)
	for r := 0; r < rows; r++ {
		copy(a2.Row(r)[:cols], a.Row(r))
		a2.Set(r, cols, a.At(r, 1))
	}
	g2 := NewMatrix(cols+1, cols+1)
	atb2 := make([]float64, cols+1)
	for i := 0; i <= cols; i++ {
		for j := 0; j <= cols; j++ {
			var s float64
			for r := 0; r < rows; r++ {
				s += a2.At(r, i) * a2.At(r, j)
			}
			g2.Set(i, j, s)
		}
		for r := 0; r < rows; r++ {
			atb2[i] += a2.At(r, i) * b[r]
		}
	}
	// Equilibrate so the absolute drop tolerance is meaningful.
	scale := make([]float64, cols+1)
	for j := range scale {
		scale[j] = 1 / math.Sqrt(g2.At(j, j))
	}
	for r := 0; r <= cols; r++ {
		for c := 0; c <= cols; c++ {
			g2.Set(r, c, g2.At(r, c)*scale[r]*scale[c])
		}
	}
	var c Cholesky
	kept, err := c.FactorPruned(g2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != cols {
		t.Fatalf("kept %v, want %d survivors", kept, cols)
	}
	for _, j := range kept {
		if j == cols {
			t.Fatalf("kept the duplicate column: %v", kept)
		}
	}
	u := make([]float64, len(kept))
	for i, j := range kept {
		u[i] = atb2[j] * scale[j]
	}
	if err := c.SolveInPlace(u); err != nil {
		t.Fatal(err)
	}
	want, _, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reduced system == original 5-column system, except coefficient 1 of the
	// QR fit is split across the duplicates there; here the kept copy carries
	// it alone.
	for i, j := range kept {
		got := u[i] * scale[j]
		if math.Abs(got-want[j]) > 1e-9*(1+math.Abs(want[j])) {
			t.Errorf("coef[%d] = %.12g, want %.12g", j, got, want[j])
		}
	}
}

func TestFactorPrunedNoOpOnCleanSystem(t *testing.T) {
	_, g, atb, _ := gramOf(t, 60, 6, 33)
	ref := g.Clone()
	var c1, c2 Cholesky
	kept, err := c1.FactorPruned(g, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 6 {
		t.Fatalf("pruned a full-rank system: kept %v", kept)
	}
	if err := c2.Factor(ref); err != nil {
		t.Fatal(err)
	}
	x1, err := c1.Solve(atb)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := c2.Solve(atb)
	if err != nil {
		t.Fatal(err)
	}
	for j := range x1 {
		if math.Float64bits(x1[j]) != math.Float64bits(x2[j]) {
			t.Fatalf("FactorPruned diverged from Factor at %d: %g vs %g", j, x1[j], x2[j])
		}
	}
}

func TestFactorPrunedAllZero(t *testing.T) {
	g := NewMatrix(3, 3) // zero matrix: every pivot ≤ dropTol
	var c Cholesky
	if _, err := c.FactorPruned(g, 1e-12); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("all-pruned matrix returned err=%v", err)
	}
}

func TestFactorPrunedNaN(t *testing.T) {
	g := NewMatrix(2, 2)
	g.Set(0, 0, math.NaN())
	g.Set(1, 1, 1)
	var c Cholesky
	if _, err := c.FactorPruned(g, 1e-12); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("NaN pivot returned err=%v", err)
	}
}
