package registry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/lifecycle"
	"hsmodel/internal/profile"
)

// Batcher is the prediction path an Entry serves through. internal/serve
// plugs its per-CPU sharded micro-batcher in via Config.NewBatcher; the
// registry's fallback predicts directly off the entry's snapshot, so the
// package stands alone in tests and in-process embedders.
type Batcher interface {
	// Predict answers one shard prediction.
	Predict(ctx context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error)
	// PredictMany answers out[i] for (xs[i], hws[i]); len(hws) and len(out)
	// must be at least len(xs).
	PredictMany(ctx context.Context, xs []profile.Characteristics, hws []hwspace.Config, out []float64) error
	// Queued reports the predictions sitting in the batcher's queues; the
	// registry sums it across entries for aggregate load shedding.
	Queued() int
	// Close drains the batcher: accepted predictions are answered, new ones
	// rejected.
	Close()
}

// directBatcher is the fallback Batcher: unbatched lock-free reads of the
// entry's served snapshot.
type directBatcher struct {
	snap func() *core.Snapshot
}

func (d directBatcher) Predict(_ context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	return d.snap().PredictShard(x, hw)
}

func (d directBatcher) PredictMany(_ context.Context, xs []profile.Characteristics, hws []hwspace.Config, out []float64) error {
	snap := d.snap()
	for i := range xs {
		v, err := snap.PredictShard(xs[i], hws[i])
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

func (d directBatcher) Queued() int { return 0 }
func (d directBatcher) Close()      {}

// Entry is one registered model: a trainer owning its atomic snapshot, the
// batcher its predict traffic pins to, an optional continuous-learning
// controller sharing the entry's sample stream, and the bookkeeping the
// serving layer scrapes (snapshot identity versioning, one-at-a-time
// asynchronous updates). Entries are created by Register/RegisterTrainer and
// owned by the Registry; Close drains them.
type Entry struct {
	spec      Spec
	reg       *Registry
	trainer   *core.Trainer
	lifecycle *lifecycle.Controller // nil unless Spec.Lifecycle enables it
	batcher   Batcher

	updating atomic.Bool    // one asynchronous update at a time
	updateWG sync.WaitGroup // close waits for the in-flight one

	// Snapshot publications observed by pointer identity, the same
	// scrape-time versioning the single-model server kept.
	snapMu      sync.Mutex
	snapLast    atomic.Pointer[core.Snapshot]
	snapVersion uint64
	snapSince   time.Time
}

// ID returns the entry's registry key.
func (e *Entry) ID() string { return e.spec.ID }

// Application returns the application the entry models; "" matches every
// application on the sample fan-out path.
func (e *Entry) Application() string { return e.spec.Application }

// ArchSpace names the architecture space the entry models.
func (e *Entry) ArchSpace() string { return e.spec.ArchSpace }

// Spec returns the registration spec (value copy).
func (e *Entry) Spec() Spec { return e.spec }

// Trainer returns the entry's trainer.
func (e *Entry) Trainer() *core.Trainer { return e.trainer }

// Lifecycle returns the entry's control loop, nil when disabled.
func (e *Entry) Lifecycle() *lifecycle.Controller { return e.lifecycle }

// Matches reports whether the entry's application scope covers app.
func (e *Entry) Matches(app string) bool {
	return e.spec.Application == "" || e.spec.Application == app
}

// Predict answers one shard prediction through the entry's batcher, after
// the registry-wide admission check (ErrOverloaded once aggregate queue
// depth crosses Config.QueueBound).
func (e *Entry) Predict(ctx context.Context, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	if err := e.reg.admit(); err != nil {
		return 0, err
	}
	return e.batcher.Predict(ctx, x, hw)
}

// PredictMany answers a whole batch through the entry's batcher under the
// same registry-wide admission check as Predict.
func (e *Entry) PredictMany(ctx context.Context, xs []profile.Characteristics, hws []hwspace.Config, out []float64) error {
	if err := e.reg.admit(); err != nil {
		return err
	}
	return e.batcher.PredictMany(ctx, xs, hws, out)
}

// Absorb feeds samples into the entry's store: through the control loop's
// bounded stores when the lifecycle is enabled, directly into the trainer
// otherwise. Returns how many samples were absorbed.
func (e *Entry) Absorb(samples []core.Sample) int {
	if e.lifecycle != nil {
		for _, s := range samples {
			e.lifecycle.Submit(s)
		}
		return len(samples)
	}
	e.trainer.AddSamples(samples)
	return len(samples)
}

// QueueDepth reports the entry's queued predictions.
func (e *Entry) QueueDepth() int { return e.batcher.Queued() }

// ObserveSnapshot tracks snapshot publications by pointer identity and
// returns the current version, its publication time, and the snapshot.
func (e *Entry) ObserveSnapshot() (uint64, time.Time, *core.Snapshot) {
	snap := e.trainer.Snapshot()
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if snap != e.snapLast.Load() {
		e.snapLast.Store(snap)
		e.snapVersion++
		e.snapSince = time.Now()
	}
	return e.snapVersion, e.snapSince, snap
}

// TriggerUpdate starts one asynchronous re-specification of the entry's
// model if none is in flight, bounded by timeout and by the registry's
// lifetime (Registry.Close cancels the update's context, so shutdown never
// waits out a training timeout). onDone (optional) receives the outcome; a
// failed or cancelled update never replaces the served snapshot. A
// successful update marks the entry most-recently-trained, which may release
// the featurized evaluator cache of a colder entry (Config.MaxEvalCaches).
func (e *Entry) TriggerUpdate(timeout time.Duration, onDone func(error)) bool {
	if !e.updating.CompareAndSwap(false, true) {
		return false
	}
	e.updateWG.Add(1)
	go func() {
		defer e.updateWG.Done()
		defer e.updating.Store(false)
		ctx, cancel := context.WithTimeout(e.reg.baseCtx, timeout)
		defer cancel()
		err := e.trainer.Update(ctx)
		if err == nil {
			e.ObserveSnapshot()
			e.reg.touch(e)
		}
		if onDone != nil {
			onDone(err)
		}
	}()
	return true
}

// close drains the entry: the batcher answers everything it accepted, the
// in-flight update (if any) completes, and the control loop shuts down.
func (e *Entry) close() {
	e.batcher.Close()
	e.updateWG.Wait()
	if e.lifecycle != nil {
		e.lifecycle.Close()
	}
}
