// Consistent-hash ring: the registry's request router. Each entry owns
// vnodes points on a 64-bit ring; a key walks clockwise from its hash to the
// first point whose entry passes the caller's filter. Placement is
// deterministic in (seed, entry IDs, vnodes): the same membership always
// yields the same ring, and removing one entry remaps only the keys that
// pointed at its vnodes — every other key keeps its assignment, which is the
// property the registry's rebalance-free unregister relies on.
package registry

import "sort"

// ringPoint is one virtual node: a position on the ring owned by an entry.
type ringPoint struct {
	hash uint64
	id   string
}

// hashRing is an immutable snapshot of the ring; the registry rebuilds it on
// every membership change and swaps it under its own lock.
type hashRing struct {
	points []ringPoint
}

// buildRing places vnodes points per id, deterministically in seed.
func buildRing(seed uint64, vnodes int, ids []string) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(ids)*vnodes)}
	var key []byte
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			key = key[:0]
			key = append(key, id...)
			key = append(key, '#')
			key = appendUint(key, uint64(v))
			r.points = append(r.points, ringPoint{hash: ringHash(seed, key), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on id so the order — and
		// therefore routing — stays deterministic across rebuilds.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// route walks clockwise from key's hash to the first point whose entry the
// filter accepts; a nil filter accepts everything. It reports false only when
// no point is acceptable.
func (r *hashRing) route(seed uint64, key string, accept func(id string) bool) (string, bool) {
	n := len(r.points)
	if n == 0 {
		return "", false
	}
	h := ringHash(seed, []byte(key))
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < n; k++ {
		p := r.points[(start+k)%n]
		if accept == nil || accept(p.id) {
			return p.id, true
		}
	}
	return "", false
}

// ringHash is FNV-1a over key, finalized through a splitmix-style mix of the
// seed so distinct seeds produce statistically independent placements.
func ringHash(seed uint64, key []byte) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	z := h + seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// appendUint appends v's decimal digits without the strconv allocation.
func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
