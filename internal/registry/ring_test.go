package registry

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func TestRingDeterministicUnderSeed(t *testing.T) {
	ids := []string{"alpha", "beta", "gamma"}
	a := buildRing(42, 64, ids)
	b := buildRing(42, 64, ids)
	for _, key := range ringKeys(500) {
		ida, oka := a.route(42, key, nil)
		idb, okb := b.route(42, key, nil)
		if !oka || !okb || ida != idb {
			t.Fatalf("key %q: rebuilt ring routed %q/%v, want %q/%v", key, idb, okb, ida, oka)
		}
	}

	// A different seed must yield a statistically different placement.
	c := buildRing(43, 64, ids)
	moved := 0
	for _, key := range ringKeys(500) {
		ida, _ := a.route(42, key, nil)
		idc, _ := c.route(43, key, nil)
		if ida != idc {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("seed change moved no keys: placements are not seed-dependent")
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	ids := []string{"alpha", "beta", "gamma", "delta"}
	r := buildRing(7, 64, ids)
	counts := map[string]int{}
	for _, key := range ringKeys(2000) {
		id, ok := r.route(7, key, nil)
		if !ok {
			t.Fatalf("key %q: no route", key)
		}
		counts[id]++
	}
	for _, id := range ids {
		if counts[id] == 0 {
			t.Fatalf("entry %q received no keys: %v", id, counts)
		}
	}
}

// TestRingRemovalStability pins the property the registry's rebalance-free
// unregister relies on: removing one entry remaps only the keys that pointed
// at its vnodes.
func TestRingRemovalStability(t *testing.T) {
	const seed = 11
	full := buildRing(seed, 64, []string{"alpha", "beta", "gamma", "delta"})
	without := buildRing(seed, 64, []string{"alpha", "beta", "delta"})
	remapped := 0
	for _, key := range ringKeys(2000) {
		before, _ := full.route(seed, key, nil)
		after, ok := without.route(seed, key, nil)
		if !ok {
			t.Fatalf("key %q: no route after removal", key)
		}
		if before == "gamma" {
			remapped++
			if after == "gamma" {
				t.Fatalf("key %q still routes to the removed entry", key)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %q -> %q although its entry survived", key, before, after)
		}
	}
	if remapped == 0 {
		t.Fatal("no key routed to the removed entry: the test saw no remapping at all")
	}
}

func TestRingAcceptFilter(t *testing.T) {
	r := buildRing(3, 64, []string{"alpha", "beta"})
	for _, key := range ringKeys(100) {
		id, ok := r.route(3, key, func(id string) bool { return id == "beta" })
		if !ok || id != "beta" {
			t.Fatalf("key %q: filtered route %q/%v, want beta", key, id, ok)
		}
	}
	if id, ok := r.route(3, "anything", func(string) bool { return false }); ok {
		t.Fatalf("all-rejecting filter routed to %q", id)
	}
}

func TestRingEmpty(t *testing.T) {
	r := buildRing(1, 64, nil)
	if id, ok := r.route(1, "key", nil); ok {
		t.Fatalf("empty ring routed to %q", id)
	}
}
