package registry

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
	"hsmodel/internal/trace"
)

// testSamples are collected once: simulation dominates fixture cost and the
// profiles are deterministic in the seed.
var (
	sampleOnce sync.Once
	sampleAll  []core.Sample
)

func testSamples(t testing.TB) []core.Sample {
	t.Helper()
	sampleOnce.Do(func() {
		col := &core.Collector{ShardLen: 20_000, ShardPool: 12}
		apps := []*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}
		sampleAll = col.Collect(apps, 40, 7)
	})
	return sampleAll
}

// trainedTrainer returns a small trainer trained on its own copy of the
// shared store; distinct seeds land on distinct model specifications.
func trainedTrainer(t testing.TB, seed uint64) *core.Trainer {
	t.Helper()
	tr := core.NewTrainer(append([]core.Sample(nil), testSamples(t)...))
	tr.ShardLen = 20_000
	tr.Search = genetic.Params{PopulationSize: 10, Generations: 2, Seed: seed}
	tr.Fitness.Seed = seed
	if err := tr.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRegisterResolveUnregister(t *testing.T) {
	r := New(Config{Seed: 5})
	defer r.Close()
	for _, spec := range []Spec{
		{ID: "m-bzip2", Application: "bzip2"},
		{ID: "m-hmmer", Application: "hmmer"},
		{ID: "m-all"},
	} {
		if _, err := r.RegisterTrainer(spec, core.NewTrainer(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RegisterTrainer(Spec{ID: "m-all"}, core.NewTrainer(nil)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate register: %v, want ErrExists", err)
	}
	if _, err := r.RegisterTrainer(Spec{}, core.NewTrainer(nil)); err == nil {
		t.Fatal("empty id register succeeded")
	}
	if e, ok := r.Get("m-bzip2"); !ok || e.ID() != "m-bzip2" || e.ArchSpace() != DefaultArchSpace {
		t.Fatalf("Get(m-bzip2) = %v, %v", e, ok)
	}
	if e, ok := r.Resolve("m-hmmer"); !ok || e.ID() != "m-hmmer" {
		t.Fatalf("Resolve by id failed: %v, %v", e, ok)
	}
	// The app alias must land on an entry whose scope covers the application,
	// deterministically.
	first, ok := r.Resolve("app:bzip2")
	if !ok || !first.Matches("bzip2") {
		t.Fatalf("Resolve(app:bzip2) = %v, %v", first, ok)
	}
	for i := 0; i < 10; i++ {
		e, ok := r.Resolve("app:bzip2")
		if !ok || e != first {
			t.Fatalf("app alias not deterministic: %v vs %v", e, first)
		}
	}
	if _, ok := r.Resolve("app:nonesuch"); ok {
		// "m-all" has wildcard scope, so even unknown apps route somewhere.
	} else {
		t.Fatal("wildcard entry did not cover an unknown application")
	}
	if _, ok := r.Resolve("missing"); ok {
		t.Fatal("Resolve invented an entry")
	}

	if err := r.Unregister("m-hmmer"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unregister("m-hmmer"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unregister: %v, want ErrNotFound", err)
	}
	if got := len(r.Entries()); got != 2 || r.Len() != 2 {
		t.Fatalf("after unregister: %d entries", got)
	}

	r.Close()
	if _, err := r.RegisterTrainer(Spec{ID: "late"}, core.NewTrainer(nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
	if err := r.Unregister("m-bzip2"); !errors.Is(err, ErrClosed) {
		t.Fatalf("unregister after close: %v, want ErrClosed", err)
	}
}

// TestSubmitFanOut pins the fan-out semantics: one submitted profile advances
// the store of every entry whose application scope matches it.
func TestSubmitFanOut(t *testing.T) {
	r := New(Config{})
	defer r.Close()
	specs := []Spec{
		{ID: "m-bzip2", Application: "bzip2"},
		{ID: "m-hmmer", Application: "hmmer"},
		{ID: "m-all"},
	}
	for _, spec := range specs {
		if _, err := r.RegisterTrainer(spec, core.NewTrainer(nil)); err != nil {
			t.Fatal(err)
		}
	}
	samples := testSamples(t)
	perApp := map[string]int{}
	for _, s := range samples {
		perApp[s.App]++
	}
	touched := r.Submit(samples)
	if len(touched) != 3 {
		t.Fatalf("touched %v, want all three entries", touched)
	}
	for _, spec := range specs {
		e, _ := r.Get(spec.ID)
		want := len(samples)
		if spec.Application != "" {
			want = perApp[spec.Application]
		}
		if got := e.Trainer().NumSamples(); got != want {
			t.Fatalf("entry %q absorbed %d samples, want %d", spec.ID, got, want)
		}
	}

	// A sample outside every scoped entry's application touches only the
	// wildcard entry.
	sjeng := make([]core.Sample, 0, 1)
	for _, s := range samples {
		if s.App == "sjeng" {
			sjeng = append(sjeng, s)
			break
		}
	}
	if touched := r.Submit(sjeng); len(touched) != 1 || touched[0] != "m-all" {
		t.Fatalf("sjeng sample touched %v, want only m-all", touched)
	}
}

// TestNoCrossEntrySnapshotLeakage registers three differently-trained entries
// and asserts each serves exactly its own snapshot: pointer-distinct across
// entries, and predictions through the entry bit-identical to direct reads of
// that entry's snapshot.
func TestNoCrossEntrySnapshotLeakage(t *testing.T) {
	r := New(Config{})
	defer r.Close()
	seeds := map[string]uint64{"m-a": 3, "m-b": 4, "m-c": 5}
	snaps := map[string]*core.Snapshot{}
	for id, seed := range seeds {
		tr := trainedTrainer(t, seed)
		if _, err := r.RegisterTrainer(Spec{ID: id}, tr); err != nil {
			t.Fatal(err)
		}
		snaps[id] = tr.Snapshot()
	}
	for a, sa := range snaps {
		for b, sb := range snaps {
			if a != b && sa == sb {
				t.Fatalf("entries %q and %q share a snapshot pointer", a, b)
			}
		}
	}
	s := testSamples(t)[0]
	ctx := context.Background()
	for id := range seeds {
		e, _ := r.Get(id)
		_, _, served := e.ObserveSnapshot()
		if served != snaps[id] {
			t.Fatalf("entry %q serves a foreign snapshot", id)
		}
		got, err := e.Predict(ctx, s.X, s.HW)
		if err != nil {
			t.Fatal(err)
		}
		want, err := snaps[id].PredictShard(s.X, s.HW)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("entry %q: served %v, own snapshot %v", id, got, want)
		}
	}
}

// TestRegisterUnregisterDuringPredictLoad churns registry membership while
// predict and routing traffic hammers a stable entry — the concurrency
// contract, held under -race.
func TestRegisterUnregisterDuringPredictLoad(t *testing.T) {
	r := New(Config{Seed: 9})
	defer r.Close()
	stable, err := r.RegisterTrainer(Spec{ID: "stable"}, trainedTrainer(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t)
	s := samples[0]
	ctx := context.Background()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := stable.Predict(ctx, s.X, s.HW); err != nil {
					t.Error(err)
					return
				}
				if e, ok := r.Resolve("app:" + s.App); !ok || e == nil {
					t.Error("routing lost every entry")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			id := []string{"churn-a", "churn-b"}[i%2]
			if _, err := r.RegisterTrainer(Spec{ID: id, Application: "hmmer"}, core.NewTrainer(nil)); err != nil {
				t.Error(err)
				return
			}
			r.Submit(samples[:4])
			if err := r.Unregister(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := r.Len(); n != 1 {
		t.Fatalf("%d entries after churn, want the stable one", n)
	}
}

// TestEvalCacheLRU pins the flat-memory property: only the MaxEvalCaches
// most-recently-trained entries keep their featurized evaluator caches.
func TestEvalCacheLRU(t *testing.T) {
	r := New(Config{MaxEvalCaches: 1})
	defer r.Close()
	ta := trainedTrainer(t, 3)
	tb := trainedTrainer(t, 4)
	if !ta.EvalCacheActive() || !tb.EvalCacheActive() {
		t.Fatal("training did not leave an evaluator cache")
	}
	ea, err := r.RegisterTrainer(Spec{ID: "m-a"}, ta)
	if err != nil {
		t.Fatal(err)
	}
	if !ta.EvalCacheActive() {
		t.Fatal("sole entry lost its cache")
	}
	if _, err := r.RegisterTrainer(Spec{ID: "m-b"}, tb); err != nil {
		t.Fatal(err)
	}
	if ta.EvalCacheActive() {
		t.Fatal("cold entry kept its cache beyond MaxEvalCaches")
	}
	if !tb.EvalCacheActive() {
		t.Fatal("most recent entry lost its cache")
	}

	// A successful update marks the entry most recently trained again and
	// evicts the other one.
	done := make(chan error, 1)
	if !ea.TriggerUpdate(time.Minute, func(err error) { done <- err }) {
		t.Fatal("update did not start")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !ta.EvalCacheActive() {
		t.Fatal("updated entry has no cache")
	}
	if tb.EvalCacheActive() {
		t.Fatal("cold entry kept its cache after the update")
	}
}

func TestCloseDrainsEveryEntry(t *testing.T) {
	var closes atomic.Int32
	r := New(Config{NewBatcher: func(e *Entry) Batcher {
		return closeCounter{directBatcher{snap: e.Trainer().Snapshot}, &closes}
	}})
	for _, id := range []string{"m-a", "m-b", "m-c"} {
		if _, err := r.RegisterTrainer(Spec{ID: id}, core.NewTrainer(nil)); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	if got := closes.Load(); got != 3 {
		t.Fatalf("Close drained %d batchers, want 3", got)
	}
	r.Close() // idempotent: must not double-drain
	if got := closes.Load(); got != 3 {
		t.Fatalf("second Close re-drained: %d closes", got)
	}
}

// closeCounter wraps the direct batcher and counts Close calls.
type closeCounter struct {
	directBatcher
	closes *atomic.Int32
}

func (c closeCounter) Close() { c.closes.Add(1) }

// TestTriggerUpdateSingleFlight: one asynchronous update at a time; a second
// trigger while one is in flight reports not-started.
func TestTriggerUpdateSingleFlight(t *testing.T) {
	r := New(Config{})
	defer r.Close()
	e, err := r.RegisterTrainer(Spec{ID: "m"}, trainedTrainer(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := e.TriggerUpdate(time.Minute, func(error) { <-release })
	if !started {
		t.Fatal("first update did not start")
	}
	if e.TriggerUpdate(time.Minute, nil) {
		t.Fatal("second update started while the first was in flight")
	}
	close(release)
}

// TestCloseCancelsInFlightUpdate: Registry.Close must cancel an in-flight
// TriggerUpdate rather than sit out its timeout — the update's context
// derives from the registry's lifetime. The wrapped evaluator parks the
// search mid-generation; once Close has fired the cancellation we release
// it and the search must abort with context.Canceled, never publishing.
// Run under -race: it exercises Close racing the update goroutine.
func TestCloseCancelsInFlightUpdate(t *testing.T) {
	r := New(Config{})
	tr := trainedTrainer(t, 11)

	entered := make(chan struct{}) // first evaluation reached
	gate := make(chan struct{})    // holds the search mid-generation
	var enteredOnce, gateOnce sync.Once
	tr.WrapEvaluator = func(ev genetic.Evaluator) genetic.Evaluator {
		return genetic.EvaluatorFunc(func(spec regress.Spec) float64 {
			enteredOnce.Do(func() { close(entered) })
			<-gate
			return ev.Fitness(spec)
		})
	}
	e, err := r.RegisterTrainer(Spec{ID: "m"}, tr)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	if !e.TriggerUpdate(time.Minute, func(err error) { done <- err }) {
		t.Fatal("update did not start")
	}
	<-entered

	closed := make(chan struct{})
	go func() {
		r.Close()
		close(closed)
	}()
	// Close cancels the registry context before draining entries; release
	// the parked search only after cancellation is observable so the abort
	// is unambiguously the cancel, not a finished search.
	<-r.baseCtx.Done()
	gateOnce.Do(func() { close(gate) })

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("update error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("update did not abort after Close cancelled it")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the update aborted")
	}
}
