// Package registry is the multi-model serving core: a concurrent registry
// of named model entries keyed by (application, architecture-space). Each
// entry owns its own trainer (and therefore its own atomic core.Snapshot),
// its own prediction batcher, and an optional continuous-learning
// controller. The registry routes work across entries three ways:
//
//   - Resolve pins model-addressed requests ("/v2/models/{id}/...") to their
//     entry, accepting an "app:<name>" alias that rides the consistent-hash
//     ring (ring.go) — deterministic under Config.Seed, stable when other
//     entries leave.
//   - Submit fans a profile stream out to every entry whose application
//     scope matches each sample — the paper's §2.1 insight that shard
//     profiles are shared between applications, operationalized: one
//     ingested profile feeds many training sets.
//   - admit sheds predict traffic registry-wide (ErrOverloaded, HTTP 429
//     upstream) once the aggregate queue depth across all entries crosses
//     Config.QueueBound.
//
// Memory stays flat as models multiply: only the Config.MaxEvalCaches
// most-recently-trained entries keep their featurized evaluator caches
// (Featurizer basis columns + Gram cross-products); colder entries drop
// theirs (Trainer.ReleaseEvalCache) and rebuild on their next training run.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hsmodel/internal/core"
	"hsmodel/internal/family"
	"hsmodel/internal/genetic"
	"hsmodel/internal/lifecycle"
)

// Sentinel errors callers branch on with errors.Is.
var (
	// ErrNotFound is returned for an unknown model id.
	ErrNotFound = errors.New("registry: model not found")
	// ErrExists is returned by Register for a duplicate model id.
	ErrExists = errors.New("registry: model already registered")
	// ErrClosed is returned once the registry has shut down.
	ErrClosed = errors.New("registry: registry is closed")
	// ErrOverloaded is returned by predictions once the aggregate queue
	// depth crosses Config.QueueBound (HTTP 429 upstream).
	ErrOverloaded = errors.New("registry: aggregate prediction queue full")
	// ErrModelLoad wraps snapshot-load failures during Register.
	ErrModelLoad = errors.New("registry: loading model snapshot")
)

// DefaultArchSpace names the architecture space entries model unless the
// spec says otherwise — the paper's Table 2 design space.
const DefaultArchSpace = "table2"

// Spec declares one model entry; it is the in-process form of the wire
// RegisterRequest and of one manifest element.
type Spec struct {
	// ID is the registry key (required; "default" is reserved by the serving
	// layer for the v1 alias entry).
	ID string
	// Application scopes the entry's sample fan-out: only samples whose App
	// matches are absorbed. Empty matches every application.
	Application string
	// ArchSpace names the architecture space (default "table2").
	ArchSpace string
	// ModelPath, when non-empty, is a persisted snapshot adopted at
	// registration (and the path hot reloads serve from).
	ModelPath string
	// Families lists model families for per-entry selection rounds; empty
	// keeps the classic reference-spline engine.
	Families []string
	// Seed determinizes the entry's search and fitness splits.
	Seed uint64
	// ShardLen is recorded in published snapshots (0 = DefaultShardLen).
	ShardLen int
	// Population / Generations bound the entry's genetic search (0 = the
	// search's defaults).
	Population  int
	Generations int
	// Lifecycle, when non-nil, attaches a continuous-learning controller to
	// the entry.
	Lifecycle *lifecycle.Config
}

func (s Spec) withDefaults() Spec {
	if s.ArchSpace == "" {
		s.ArchSpace = DefaultArchSpace
	}
	return s
}

// Config configures a Registry. The zero value of every optional field
// takes the documented default.
type Config struct {
	// Seed determinizes consistent-hash placement.
	Seed uint64
	// VNodes is the virtual nodes per entry on the ring (default 64).
	VNodes int
	// QueueBound sheds predictions registry-wide once the aggregate queued
	// predictions across all entries reach it; 0 disables the aggregate
	// bound (per-batcher shedding still applies).
	QueueBound int
	// MaxEvalCaches bounds how many entries keep their featurized evaluator
	// caches (default 4); least-recently-trained entries beyond it release
	// theirs.
	MaxEvalCaches int
	// NewBatcher builds the prediction path of a new entry; nil uses the
	// direct (unbatched) snapshot predictor.
	NewBatcher func(e *Entry) Batcher
	// OnShed, when non-nil, fires once per aggregate-bound shed.
	OnShed func()
	// OnChange, when non-nil, fires after every successful Register or
	// Unregister (the serving layer persists its manifest here). It is
	// called without the registry lock held.
	OnChange func()
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxEvalCaches <= 0 {
		c.MaxEvalCaches = 4
	}
	return c
}

// Registry is a concurrent collection of model entries with consistent-hash
// routing, shared-profile fan-out, and registry-wide load shedding. Create
// with New, populate with Register/RegisterTrainer, and drain with Close.
type Registry struct {
	cfg Config

	// baseCtx bounds every asynchronous update the registry's entries start;
	// cancelAll fires in Close so a shutdown never sits out a training
	// timeout it cannot interrupt.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu      sync.RWMutex
	entries map[string]*Entry
	ring    *hashRing
	recency []*Entry // most-recently-trained first; tail beyond MaxEvalCaches released
	closed  bool
}

// New builds an empty registry.
func New(cfg Config) *Registry {
	ctx, cancel := context.WithCancel(context.Background())
	return &Registry{
		cfg:       cfg.withDefaults(),
		baseCtx:   ctx,
		cancelAll: cancel,
		entries:   make(map[string]*Entry),
		ring:      buildRing(cfg.Seed, 1, nil),
	}
}

// Register creates an entry from spec: a fresh trainer configured from the
// spec (families resolved by name, snapshot adopted from ModelPath when
// set), a lifecycle controller when requested, and a batcher from
// Config.NewBatcher.
func (r *Registry) Register(spec Spec) (*Entry, error) {
	tr, err := trainerFromSpec(spec)
	if err != nil {
		return nil, err
	}
	return r.RegisterTrainer(spec, tr)
}

// RegisterTrainer registers an entry around an existing trainer — the
// serving layer uses it to alias its bootstrap trainer as the reserved
// "default" entry. The trainer must not already be registered.
func (r *Registry) RegisterTrainer(spec Spec, tr *core.Trainer) (*Entry, error) {
	spec = spec.withDefaults()
	if spec.ID == "" {
		return nil, errors.New("registry: spec needs a model id")
	}
	e := &Entry{spec: spec, reg: r, trainer: tr}
	if spec.Lifecycle != nil {
		e.lifecycle = lifecycle.NewController(tr, *spec.Lifecycle)
	}
	if r.cfg.NewBatcher != nil {
		e.batcher = r.cfg.NewBatcher(e)
	} else {
		e.batcher = directBatcher{snap: tr.Snapshot}
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		e.close()
		return nil, ErrClosed
	}
	if _, ok := r.entries[spec.ID]; ok {
		r.mu.Unlock()
		e.close()
		return nil, fmt.Errorf("%w: %q", ErrExists, spec.ID)
	}
	r.entries[spec.ID] = e
	r.touchLocked(e)
	r.rebuildRingLocked()
	r.mu.Unlock()

	e.ObserveSnapshot()
	if r.cfg.OnChange != nil {
		r.cfg.OnChange()
	}
	return e, nil
}

// trainerFromSpec builds and configures the entry's trainer.
func trainerFromSpec(spec Spec) (*core.Trainer, error) {
	tr := core.NewTrainer(nil)
	tr.ShardLen = spec.ShardLen
	tr.Search = genetic.Params{
		PopulationSize: spec.Population,
		Generations:    spec.Generations,
		Seed:           spec.Seed,
	}
	tr.Fitness.Seed = spec.Seed
	if len(spec.Families) > 0 {
		fams := make([]family.Family, len(spec.Families))
		for i, name := range spec.Families {
			fam := core.FamilyByName(name)
			if fam == nil {
				return nil, fmt.Errorf("registry: unknown model family %q", name)
			}
			fams[i] = fam
		}
		tr.Families = fams
	}
	if spec.ModelPath != "" {
		snap, err := core.LoadSnapshot(spec.ModelPath)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %w", ErrModelLoad, spec.ModelPath, err)
		}
		tr.Adopt(snap)
	}
	return tr, nil
}

// Unregister removes and drains the entry. Keys previously routed to other
// entries keep their assignments — only keys that pointed at the removed
// entry's vnodes remap.
func (r *Registry) Unregister(id string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(r.entries, id)
	r.dropRecencyLocked(e)
	r.rebuildRingLocked()
	r.mu.Unlock()

	e.close()
	if r.cfg.OnChange != nil {
		r.cfg.OnChange()
	}
	return nil
}

// Get returns the entry registered under id.
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	return e, ok
}

// Resolve maps a wire model address to an entry: an exact id, or the
// "app:<name>" alias routed over the consistent-hash ring to an entry whose
// application scope covers <name>.
func (r *Registry) Resolve(addr string) (*Entry, bool) {
	if e, ok := r.Get(addr); ok {
		return e, true
	}
	if app, ok := strings.CutPrefix(addr, "app:"); ok {
		return r.RouteApp(app)
	}
	return nil, false
}

// RouteApp routes an application name over the ring to one entry whose
// scope covers it (deterministic in Config.Seed and the membership).
func (r *Registry) RouteApp(app string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.ring.route(r.cfg.Seed, app, func(id string) bool {
		return r.entries[id].Matches(app)
	})
	if !ok {
		return nil, false
	}
	return r.entries[id], true
}

// Route routes an opaque key over the ring with no application filtering.
func (r *Registry) Route(key string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.ring.route(r.cfg.Seed, key, nil)
	if !ok {
		return nil, false
	}
	return r.entries[id], true
}

// Entries returns every registered entry, sorted by id.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].spec.ID < out[j].spec.ID })
	return out
}

// Specs returns the registration specs of every entry, sorted by id — the
// serving layer's manifest persistence source.
func (r *Registry) Specs() []Spec {
	entries := r.Entries()
	out := make([]Spec, len(entries))
	for i, e := range entries {
		out[i] = e.spec
	}
	return out
}

// Len reports the number of registered entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Submit fans samples out to every entry whose application scope matches
// each sample — one submitted profile advances the sample store of every
// matching model. It returns the sorted ids of the entries that absorbed at
// least one sample.
func (r *Registry) Submit(samples []core.Sample) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var touched []string
	var scratch []core.Sample
	for id, e := range r.entries {
		scratch = scratch[:0]
		for _, s := range samples {
			if e.Matches(s.App) {
				scratch = append(scratch, s)
			}
		}
		if len(scratch) == 0 {
			continue
		}
		e.Absorb(scratch)
		touched = append(touched, id)
	}
	sort.Strings(touched)
	return touched
}

// QueueDepth sums queued predictions across every entry's batcher.
func (r *Registry) QueueDepth() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, e := range r.entries {
		total += e.batcher.Queued()
	}
	return total
}

// admit applies the registry-wide load bound before a prediction enters an
// entry's batcher.
func (r *Registry) admit() error {
	if r.cfg.QueueBound <= 0 {
		return nil
	}
	if r.QueueDepth() >= r.cfg.QueueBound {
		if r.cfg.OnShed != nil {
			r.cfg.OnShed()
		}
		return ErrOverloaded
	}
	return nil
}

// touch marks e most-recently-trained and releases the evaluator caches of
// entries that fell off the bounded recency list.
func (r *Registry) touch(e *Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.touchLocked(e)
}

func (r *Registry) touchLocked(e *Entry) {
	r.dropRecencyLocked(e)
	r.recency = append(r.recency, nil)
	copy(r.recency[1:], r.recency)
	r.recency[0] = e
	for _, cold := range r.recency[min(r.cfg.MaxEvalCaches, len(r.recency)):] {
		cold.trainer.ReleaseEvalCache()
	}
}

func (r *Registry) dropRecencyLocked(e *Entry) {
	for i, x := range r.recency {
		if x == e {
			r.recency = append(r.recency[:i], r.recency[i+1:]...)
			return
		}
	}
}

func (r *Registry) rebuildRingLocked() {
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	r.ring = buildRing(r.cfg.Seed, r.cfg.VNodes, ids)
}

// Close drains the registry: in-flight updates are cancelled (their
// trainers observe context cancellation and keep the last-good snapshot),
// every entry's batcher answers what it accepted, and every control loop
// shuts down. Safe to call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.cancelAll()
	entries := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.entries = make(map[string]*Entry)
	r.recency = nil
	r.rebuildRingLocked()
	r.mu.Unlock()

	for _, e := range entries {
		e.close()
	}
}
