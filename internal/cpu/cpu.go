// Package cpu implements the out-of-order processor timing model that plays
// gem5's role as the ground-truth performance substrate for the general
// hardware-software study.
//
// The model is a trace-driven interval simulator in the tradition of
// Eyerman/Eeckhout interval analysis: instructions are processed in program
// order in O(1) amortized time each, tracking
//
//   - front-end dispatch bandwidth (pipeline width y1) and i-cache stalls,
//   - the out-of-order window — dispatch stalls when the reorder buffer,
//     issue queue, physical registers, or load/store queue fill (y2),
//   - data-dependence wakeup through producer completion times,
//   - functional-unit and cache-port structural hazards (y9–y13),
//   - a two-level cache hierarchy with configurable geometry and latency
//     (y3–y8) simulated with true replacement state, with MSHRs bounding
//     memory-level parallelism (y4), and
//   - branch misprediction with a real 2-bit-counter predictor.
//
// Nothing in the model consumes the Table 1 characteristics directly — CPI
// emerges from simulating the instruction stream — so the regression task of
// the paper (inferring CPI from portable software characteristics and
// hardware parameters) remains a genuine inference problem.
package cpu

import (
	"hsmodel/internal/cache"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/isa"
)

// Fixed model constants (not part of the Table 2 design space).
const (
	l1Latency         = 1   // cycles, L1 hit
	memLatency        = 120 // cycles beyond L2 for a memory access
	mispredictPenalty = 8   // front-end refill after a branch mispredict
	prefetchDegree    = 2   // next-line prefetch on L1D demand misses
	storeLatency      = 1   // store-buffer absorb latency
	lineBytes         = 64
	predictorEntries  = 4096
)

// Execution latencies and occupancies by class. Multiplies/divides are
// modeled as partially pipelined (occupancy > 1).
var (
	execLatency   = [isa.NumClasses]float64{1, 8, 3, 6, 0, 0, 1}
	execOccupancy = [isa.NumClasses]float64{1, 4, 1, 2, 1, 1, 1}
)

// Result reports one simulation.
type Result struct {
	Insts       int
	Cycles      float64
	Branches    uint64
	Mispredicts uint64
	L1D, L1I    cache.Stats
	L2          cache.Stats
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return r.Cycles / float64(r.Insts)
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / r.Cycles
}

// ringSize must exceed every window resource (max ROB 224, max regs 296) and
// isa.MaxDepDistance.
const ringSize = 512

// Simulator carries reusable simulation state so repeated runs do not
// reallocate. A Simulator is not safe for concurrent use; create one per
// goroutine.
type Simulator struct {
	cfg  hwspace.Config
	hier cache.Hierarchy

	completion [ringSize]float64 // completion time by instruction index
	issue      [ringSize]float64 // issue time by instruction index
	retire     [ringSize]float64 // retire time by instruction index
	memRetire  [ringSize]float64 // retire time by memory-op index

	fuFree   [isa.NumClasses][]float64
	portFree []float64
	mshrFree []float64

	predictor [predictorEntries]uint8
}

// New builds a simulator for one microarchitecture.
func New(cfg hwspace.Config) *Simulator {
	s := &Simulator{cfg: cfg}
	s.hier = cache.Hierarchy{
		L1I: cache.New(cache.Config{
			SizeBytes: cfg.ICacheKB * 1024, LineBytes: lineBytes, Ways: cfg.L1Assoc, Policy: cache.LRU,
		}),
		L1D: cache.New(cache.Config{
			SizeBytes: cfg.DCacheKB * 1024, LineBytes: lineBytes, Ways: cfg.L1Assoc, Policy: cache.LRU,
		}),
		L2: cache.New(cache.Config{
			SizeBytes: cfg.L2KB * 1024, LineBytes: lineBytes, Ways: cfg.L2Assoc, Policy: cache.LRU,
		}),
		L1Latency:      l1Latency,
		L2Latency:      cfg.L2Lat,
		MemLatency:     memLatency,
		PrefetchDegree: prefetchDegree,
	}
	pool := func(n int) []float64 { return make([]float64, n) }
	s.fuFree[isa.IntALU] = pool(cfg.IntALUs)
	s.fuFree[isa.IntMulDiv] = pool(cfg.IntMuls)
	s.fuFree[isa.FPALU] = pool(cfg.FPALUs)
	s.fuFree[isa.FPMulDiv] = pool(cfg.FPMuls)
	s.fuFree[isa.Branch] = s.fuFree[isa.IntALU] // branches resolve on int ALUs
	s.portFree = pool(cfg.Ports)
	s.mshrFree = pool(cfg.MSHRs)
	return s
}

// Config returns the simulated microarchitecture.
func (s *Simulator) Config() hwspace.Config { return s.cfg }

// Reset clears all timing and cache state for a fresh run.
func (s *Simulator) Reset() {
	s.hier.Reset()
	for i := range s.completion {
		s.completion[i] = 0
		s.issue[i] = 0
		s.retire[i] = 0
		s.memRetire[i] = 0
	}
	zero := func(xs []float64) {
		for i := range xs {
			xs[i] = 0
		}
	}
	for c := range s.fuFree {
		zero(s.fuFree[c])
	}
	zero(s.portFree)
	zero(s.mshrFree)
	for i := range s.predictor {
		s.predictor[i] = 1 // weakly not-taken
	}
}

// Run simulates the stream to completion and returns timing results.
func (s *Simulator) Run(st isa.Stream) Result {
	s.Reset()
	var res Result
	cfg := s.cfg
	dispatchStep := 1.0 / float64(cfg.Width)

	var (
		in          isa.Inst
		i           int64   // instruction index
		memIdx      int64   // memory-op index
		frontTime   float64 // earliest next dispatch
		lastRetire  float64
		lastPCBlock uint64 = ^uint64(0)
	)

	for st.Next(&in) {
		// --- Front end: i-cache ---
		pcBlock := in.PC / lineBytes
		if pcBlock != lastPCBlock {
			if pen := s.hier.InstAccess(in.PC); pen > 0 {
				frontTime += float64(pen)
			}
			lastPCBlock = pcBlock
		}

		// --- Dispatch: window resource stalls ---
		t := frontTime
		if i >= int64(cfg.ROB) {
			if rt := s.retire[(i-int64(cfg.ROB))&(ringSize-1)]; rt > t {
				t = rt
			}
		}
		if i >= int64(cfg.PhysRegs) {
			if rt := s.retire[(i-int64(cfg.PhysRegs))&(ringSize-1)]; rt > t {
				t = rt
			}
		}
		if i >= int64(cfg.IQ) {
			// An IQ entry is held from dispatch to issue.
			if it := s.issue[(i-int64(cfg.IQ))&(ringSize-1)]; it > t {
				t = it
			}
		}
		isMem := in.Class.IsMemory()
		if isMem && memIdx >= int64(cfg.LSQ) {
			if rt := s.memRetire[(memIdx-int64(cfg.LSQ))&(ringSize-1)]; rt > t {
				t = rt
			}
		}

		// --- Wakeup: data dependences ---
		ready := t
		if in.Dep1 > 0 && int64(in.Dep1) <= i {
			if ct := s.completion[(i-int64(in.Dep1))&(ringSize-1)]; ct > ready {
				ready = ct
			}
		}
		if in.Dep2 > 0 && int64(in.Dep2) <= i {
			if ct := s.completion[(i-int64(in.Dep2))&(ringSize-1)]; ct > ready {
				ready = ct
			}
		}

		// --- Issue: structural hazards and execution ---
		var issueAt, complete float64
		if isMem {
			issueAt = s.acquire(s.portFree, ready, 1)
			lat, l1Miss := s.hier.DataAccess(in.Addr, in.Class == isa.Store)
			if l1Miss {
				// An MSHR must be free for the duration of the miss.
				issueAt = s.acquire(s.mshrFree, issueAt, float64(lat))
			}
			if in.Class == isa.Store {
				complete = issueAt + storeLatency
			} else {
				complete = issueAt + float64(lat)
			}
		} else {
			issueAt = s.acquire(s.fuFree[in.Class], ready, execOccupancy[in.Class])
			complete = issueAt + execLatency[in.Class]
		}

		// --- Commit: in-order retirement at commit width ---
		rt := complete
		if lr := lastRetire + dispatchStep; lr > rt {
			rt = lr
		}
		lastRetire = rt

		slot := i & (ringSize - 1)
		s.completion[slot] = complete
		s.issue[slot] = issueAt
		s.retire[slot] = rt
		if isMem {
			s.memRetire[memIdx&(ringSize-1)] = rt
			memIdx++
		}

		// --- Control: branch prediction ---
		if in.Class == isa.Branch {
			res.Branches++
			if s.predict(in.BrID, in.Taken) {
				frontTime = t + dispatchStep
			} else {
				res.Mispredicts++
				// Front end restarts after the branch resolves.
				frontTime = complete + mispredictPenalty
			}
		} else {
			frontTime = t + dispatchStep
		}

		i++
	}

	res.Insts = int(i)
	res.Cycles = lastRetire
	res.L1D = s.hier.L1D.Stats()
	res.L1I = s.hier.L1I.Stats()
	res.L2 = s.hier.L2.Stats()
	return res
}

// acquire reserves the earliest-available unit in pool no earlier than
// ready, holding it for occupancy cycles, and returns the acquisition time.
func (s *Simulator) acquire(pool []float64, ready, occupancy float64) float64 {
	best := 0
	for u := 1; u < len(pool); u++ {
		if pool[u] < pool[best] {
			best = u
		}
	}
	at := ready
	if pool[best] > at {
		at = pool[best]
	}
	pool[best] = at + occupancy
	return at
}

// predict consults and updates the 2-bit counter predictor, returning
// whether the prediction matched the outcome.
func (s *Simulator) predict(brID uint32, taken bool) bool {
	idx := brID % predictorEntries
	c := s.predictor[idx]
	predicted := c >= 2
	if taken && c < 3 {
		s.predictor[idx] = c + 1
	} else if !taken && c > 0 {
		s.predictor[idx] = c - 1
	}
	return predicted == taken
}
