package cpu

import (
	"math"
	"testing"

	"hsmodel/internal/hwspace"
	"hsmodel/internal/isa"
	"hsmodel/internal/trace"
)

// handTrace builds a repeated instruction pattern of the given length.
func handTrace(n int, pattern []isa.Inst) isa.Stream {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = pattern[i%len(pattern)]
		insts[i].PC = uint64(i%16) * 4 // small hot loop: warm i-cache
	}
	return &isa.SliceStream{Insts: insts}
}

func cfgWith(f func(*hwspace.Config)) hwspace.Config {
	c := hwspace.Baseline()
	f(&c)
	return c
}

func TestIndependentStreamApproachesWidth(t *testing.T) {
	// Independent single-cycle ALU ops: IPC should approach min(width, ALUs).
	stream := func() isa.Stream {
		return handTrace(50_000, []isa.Inst{{Class: isa.IntALU}})
	}
	cfg := cfgWith(func(c *hwspace.Config) { c.Width = 4; c.IntALUs = 4 })
	r := New(cfg).Run(stream())
	if ipc := r.IPC(); ipc < 3.5 || ipc > 4.01 {
		t.Errorf("independent stream IPC = %v, want ~4", ipc)
	}
}

func TestSerialChainIsLatencyBound(t *testing.T) {
	// Every instruction depends on its predecessor: CPI ~= ALU latency (1).
	r := New(hwspace.Baseline()).Run(handTrace(50_000, []isa.Inst{
		{Class: isa.IntALU, Dep1: 1},
	}))
	if cpi := r.CPI(); cpi < 0.95 || cpi > 1.1 {
		t.Errorf("serial int chain CPI = %v, want ~1", cpi)
	}
	// A serial FP chain is bound by FP latency (3).
	r = New(hwspace.Baseline()).Run(handTrace(50_000, []isa.Inst{
		{Class: isa.FPALU, Dep1: 1},
	}))
	if cpi := r.CPI(); cpi < 2.8 || cpi > 3.2 {
		t.Errorf("serial FP chain CPI = %v, want ~3", cpi)
	}
}

func TestFUContention(t *testing.T) {
	// Independent FP ops: 1 FP ALU bounds throughput at 1/cycle; 3 FP ALUs
	// lift it toward width.
	mk := func(fpus int) float64 {
		cfg := cfgWith(func(c *hwspace.Config) { c.Width = 4; c.FPALUs = fpus })
		return New(cfg).Run(handTrace(40_000, []isa.Inst{{Class: isa.FPALU}})).IPC()
	}
	one, three := mk(1), mk(3)
	if one > 1.05 {
		t.Errorf("1 FP ALU IPC = %v, want <= ~1", one)
	}
	if three < 2*one {
		t.Errorf("3 FP ALUs IPC = %v, want >= 2x of %v", three, one)
	}
}

func TestWidthScalesILPRichCode(t *testing.T) {
	app := trace.Hmmer()
	run := func(width int) float64 {
		var ix hwspace.Indices
		ix = hwspace.Indices{0, 3, 1, 2, 1, 1, 2, 2, 3, 1, 2, 1, 3}
		cfg := hwspace.FromIndices(ix)
		cfg.Width = width
		return New(cfg).Run(app.ShardStream(0, 50_000)).CPI()
	}
	w1, w4 := run(1), run(4)
	if w4 >= w1 {
		t.Errorf("width 4 CPI %v should beat width 1 CPI %v", w4, w1)
	}
	if w1/w4 < 1.5 {
		t.Errorf("width speedup %v too small for ILP-rich code", w1/w4)
	}
}

func TestLoadMissLatencyVisible(t *testing.T) {
	// Serial dependent loads over a huge working set: CPI should approach
	// the memory round-trip. Use strided addresses defeating the prefetcher.
	insts := make([]isa.Inst, 20_000)
	for i := range insts {
		insts[i] = isa.Inst{Class: isa.Load, Dep1: 1, Addr: uint64(i) * 4096 * 3}
		insts[i].PC = uint64(i%16) * 4
	}
	cfg := hwspace.Baseline()
	r := New(cfg).Run(&isa.SliceStream{Insts: insts})
	// L1 latency 1 + L2 10 + memory 120 = 131ish per load, serialized.
	if cpi := r.CPI(); cpi < 100 {
		t.Errorf("dependent-miss chain CPI = %v, want memory-bound (>100)", cpi)
	}
	if r.L1D.MissRate() < 0.95 {
		t.Errorf("expected ~100%% miss rate, got %v", r.L1D.MissRate())
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// One missing load per 16 instructions: a 16-entry window holds only
	// one outstanding miss while a 224-entry window overlaps many (up to
	// the 8 MSHRs).
	insts := make([]isa.Inst, 40_000)
	for i := range insts {
		if i%16 == 0 {
			insts[i] = isa.Inst{Class: isa.Load, Addr: uint64(i) * 4096 * 5}
		} else {
			insts[i] = isa.Inst{Class: isa.IntALU}
		}
		insts[i].PC = uint64(i%16) * 4
	}
	run := func(window int) float64 {
		cfg := cfgWith(func(c *hwspace.Config) {
			c.MSHRs = 8
			c.ROB = window
			c.PhysRegs = window * 2
			c.IQ = window
			c.LSQ = window
		})
		return New(cfg).Run(&isa.SliceStream{Insts: insts}).CPI()
	}
	small, big := run(16), run(224)
	if big*1.5 >= small {
		t.Errorf("bigger window CPI %v should beat smaller %v on independent misses", big, small)
	}
}

func TestMSHRsBoundMissOverlap(t *testing.T) {
	insts := make([]isa.Inst, 30_000)
	for i := range insts {
		insts[i] = isa.Inst{Class: isa.Load, Addr: uint64(i) * 4096 * 5}
		insts[i].PC = uint64(i%16) * 4
	}
	run := func(mshrs int) float64 {
		cfg := cfgWith(func(c *hwspace.Config) { c.MSHRs = mshrs })
		return New(cfg).Run(&isa.SliceStream{Insts: insts}).CPI()
	}
	one, eight := run(1), run(8)
	if eight >= one {
		t.Errorf("8 MSHRs CPI %v should beat 1 MSHR CPI %v", eight, one)
	}
}

func TestBranchMispredictionCost(t *testing.T) {
	// Alternating taken/not-taken with distinct BrIDs but random-looking
	// pattern: a 2-bit counter mispredicts often. Compare against perfectly
	// biased branches.
	mkBranchy := func(pattern func(i int) bool) isa.Stream {
		insts := make([]isa.Inst, 40_000)
		for i := range insts {
			if i%4 == 3 {
				insts[i] = isa.Inst{Class: isa.Branch, BrID: uint32(i % 64), Taken: pattern(i)}
			} else {
				insts[i] = isa.Inst{Class: isa.IntALU}
			}
			insts[i].PC = uint64(i%16) * 4
		}
		return &isa.SliceStream{Insts: insts}
	}
	cfg := hwspace.Baseline()
	predictable := New(cfg).Run(mkBranchy(func(i int) bool { return true }))
	// Branch IDs repeat with period 64 instructions, so alternating on
	// i/64 makes every static branch alternate taken/not-taken between
	// consecutive executions — the worst case for 2-bit counters.
	hostile := New(cfg).Run(mkBranchy(func(i int) bool { return (i/64)%2 == 0 }))
	if predictable.Mispredicts*10 > predictable.Branches {
		t.Errorf("biased branches mispredicted too often: %d/%d",
			predictable.Mispredicts, predictable.Branches)
	}
	if hostile.Mispredicts < hostile.Branches/2 {
		t.Errorf("hostile pattern mispredicted only %d/%d", hostile.Mispredicts, hostile.Branches)
	}
	if hostile.CPI() <= 1.5*predictable.CPI() {
		t.Errorf("hostile branch CPI %v should far exceed predictable %v",
			hostile.CPI(), predictable.CPI())
	}
}

func TestDeterminism(t *testing.T) {
	app := trace.Astar()
	cfg := hwspace.Baseline()
	a := New(cfg).Run(app.ShardStream(7, 30_000))
	b := New(cfg).Run(app.ShardStream(7, 30_000))
	if math.Float64bits(a.Cycles) != math.Float64bits(b.Cycles) || a.Mispredicts != b.Mispredicts {
		t.Error("simulation is not deterministic")
	}
}

func TestSimulatorReuse(t *testing.T) {
	// Run must fully reset state: two runs on one simulator equal two runs
	// on fresh simulators.
	app := trace.Bzip2()
	cfg := hwspace.Baseline()
	sim := New(cfg)
	first := sim.Run(app.ShardStream(0, 20_000))
	second := sim.Run(app.ShardStream(0, 20_000))
	if math.Float64bits(first.Cycles) != math.Float64bits(second.Cycles) {
		t.Error("simulator state leaked between runs")
	}
	if sim.Config() != cfg {
		t.Error("Config() mismatch")
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Insts: 100, Cycles: 50}
	if r.CPI() != 0.5 || r.IPC() != 2 {
		t.Errorf("CPI/IPC wrong: %v %v", r.CPI(), r.IPC())
	}
	var zero Result
	if zero.CPI() != 0 || zero.IPC() != 0 {
		t.Error("zero result should not divide by zero")
	}
}

func TestCacheSizeMatters(t *testing.T) {
	app := trace.Omnetpp() // 2 MB working set
	run := func(dkb, l2kb int) float64 {
		cfg := cfgWith(func(c *hwspace.Config) { c.DCacheKB = dkb; c.L2KB = l2kb })
		return New(cfg).Run(app.ShardStream(0, 60_000)).CPI()
	}
	smallCache := run(16, 256)
	bigCache := run(128, 4096)
	if bigCache >= smallCache {
		t.Errorf("bigger caches CPI %v should beat smaller %v on memory-bound code",
			bigCache, smallCache)
	}
}
