package cpu

import (
	"testing"

	"hsmodel/internal/hwspace"
	"hsmodel/internal/isa"
	"hsmodel/internal/trace"
)

func TestL2LatencyParameterMatters(t *testing.T) {
	// A workload whose working set misses L1 but fits in L2 must slow down
	// as the Table 2 L2-latency parameter (y8) grows.
	app := trace.Bzip2() // ~256 KB working set vs 16 KB L1
	run := func(lat int) float64 {
		cfg := cfgWith(func(c *hwspace.Config) {
			c.DCacheKB = 16
			c.L2KB = 4096
			c.L2Lat = lat
		})
		return New(cfg).Run(app.ShardStream(0, 50_000)).CPI()
	}
	fast, slow := run(6), run(14)
	if slow <= fast {
		t.Errorf("L2 latency 14 CPI %v should exceed latency 6 CPI %v", slow, fast)
	}
}

func TestICacheSizeMattersForBigCode(t *testing.T) {
	// A code footprint larger than a small I-cache: front-end misses make
	// the small configuration slower.
	insts := make([]isa.Inst, 60_000)
	for i := range insts {
		insts[i] = isa.Inst{Class: isa.IntALU}
		// Walk a 64 KB code region sequentially (1024 blocks of 64B).
		insts[i].PC = uint64(i%16384) * 4
	}
	run := func(ikb int) float64 {
		cfg := cfgWith(func(c *hwspace.Config) { c.ICacheKB = ikb })
		return New(cfg).Run(&isa.SliceStream{Insts: insts}).CPI()
	}
	small, big := run(16), run(128)
	if big >= small {
		t.Errorf("128KB I$ CPI %v should beat 16KB I$ CPI %v on 64KB code", big, small)
	}
}

func TestCachePortContention(t *testing.T) {
	// Independent loads hitting in cache: one port bounds memory throughput.
	insts := make([]isa.Inst, 40_000)
	for i := range insts {
		insts[i] = isa.Inst{Class: isa.Load, Addr: uint64(i%64) * 8}
		insts[i].PC = uint64(i%16) * 4
	}
	run := func(ports int) float64 {
		cfg := cfgWith(func(c *hwspace.Config) { c.Width = 4; c.Ports = ports })
		return New(cfg).Run(&isa.SliceStream{Insts: insts}).IPC()
	}
	one, four := run(1), run(4)
	if one > 1.05 {
		t.Errorf("1 port IPC %v, want <= ~1", one)
	}
	if four < 2*one {
		t.Errorf("4 ports IPC %v, want >= 2x of %v", four, one)
	}
}

func TestAllWorkloadsRunOnExtremeConfigs(t *testing.T) {
	// The Table 2 extremes must produce finite, ordered results for every
	// application ("include extreme designs so that models infer interior
	// points more accurately").
	counts := hwspace.LevelCounts()
	var hi hwspace.Indices
	for p := range hi {
		hi[p] = counts[p] - 1
	}
	small := New(hwspace.FromIndices(hwspace.Indices{}))
	big := New(hwspace.FromIndices(hi))
	for _, app := range trace.SPEC2006() {
		cs := small.Run(app.ShardStream(1, 20_000)).CPI()
		cb := big.Run(app.ShardStream(1, 20_000)).CPI()
		if cs <= 0 || cb <= 0 {
			t.Fatalf("%s: non-positive CPI (%v, %v)", app.Name, cs, cb)
		}
		if cb >= cs {
			t.Errorf("%s: maximal config CPI %v not below minimal config CPI %v",
				app.Name, cb, cs)
		}
	}
}
