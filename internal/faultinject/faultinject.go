// Package faultinject provides a deterministic fault-injection harness for
// the modeling pipeline's resilience tests: a wrapping Evaluator that
// panics, returns NaN/Inf, or stalls on a fixed schedule; a profile-row
// poisoner; and a model-file corruptor. Every fault is scheduled by call
// count or seeded PRNG — never by wall clock or global randomness — so a
// failing resilience test replays exactly.
//
// The package deliberately depends only on genetic, regress, and rng; the
// degradation-ladder tests in core wire it in through
// core.Modeler.WrapEvaluator without an import cycle.
package faultinject

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"time"

	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
)

// Evaluator wraps an inner fitness evaluator and injects faults on a
// deterministic call-count schedule. The zero schedule (all *Every fields 0)
// is a transparent pass-through, so tests can toggle individual faults.
//
// An Evaluator is safe for concurrent use when the inner evaluator is; the
// schedule counters are atomic.
type Evaluator struct {
	Inner genetic.Evaluator
	// PanicEvery makes every Nth fitness call panic (0 = never).
	PanicEvery int
	// MaxPanics caps the number of injected panics; 0 means unlimited.
	// A cap of 1 models a transient fault that clears on retry.
	MaxPanics int
	// NaNEvery makes every Nth call return NaN (0 = never) — the degenerate
	// fit the elitist sort must survive.
	NaNEvery int
	// InfEvery makes every Nth call return +Inf (0 = never).
	InfEvery int
	// Delay stalls every call, for deadline tests.
	Delay time.Duration

	calls  atomic.Int64
	panics atomic.Int64
}

// Fitness implements genetic.Evaluator with faults injected per schedule.
// Panic beats NaN beats Inf when schedules coincide on a call.
func (e *Evaluator) Fitness(spec regress.Spec) float64 {
	n := e.calls.Add(1)
	if e.Delay > 0 {
		time.Sleep(e.Delay)
	}
	if e.PanicEvery > 0 && n%int64(e.PanicEvery) == 0 {
		for {
			p := e.panics.Load()
			if e.MaxPanics > 0 && p >= int64(e.MaxPanics) {
				break // budget exhausted: the fault has "cleared"
			}
			if e.panics.CompareAndSwap(p, p+1) {
				panic(fmt.Sprintf("faultinject: scheduled panic at call %d", n))
			}
		}
	}
	if e.NaNEvery > 0 && n%int64(e.NaNEvery) == 0 {
		return math.NaN()
	}
	if e.InfEvery > 0 && n%int64(e.InfEvery) == 0 {
		return math.Inf(1)
	}
	return e.Inner.Fitness(spec)
}

// Calls reports how many fitness evaluations were attempted.
func (e *Evaluator) Calls() int64 { return e.calls.Load() }

// Panics reports how many panics were injected.
func (e *Evaluator) Panics() int64 { return e.panics.Load() }

// PoisonRows writes a NaN into one seeded-random position of every Nth row
// (1-indexed: every=1 poisons all rows) and returns the number of rows
// poisoned. It models corrupt profile records arriving from a collector.
func PoisonRows(rows [][]float64, every int, seed uint64) int {
	if every <= 0 {
		return 0
	}
	src := rng.New(seed)
	poisoned := 0
	for i, row := range rows {
		if (i+1)%every != 0 || len(row) == 0 {
			continue
		}
		row[src.Intn(len(row))] = math.NaN()
		poisoned++
	}
	return poisoned
}

// CorruptMode selects how CorruptFile damages a file.
type CorruptMode int

const (
	// Truncate keeps only the first half of the file — a torn write.
	Truncate CorruptMode = iota
	// FlipByte inverts one seeded-random byte — silent bit rot.
	FlipByte
	// Garbage replaces the whole content with seeded-random bytes.
	Garbage
)

// CorruptFile damages path in place according to mode, deterministically in
// seed. The file must exist and be non-empty.
func CorruptFile(path string, seed uint64, mode CorruptMode) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faultinject: %s is empty, nothing to corrupt", path)
	}
	src := rng.New(seed)
	switch mode {
	case Truncate:
		data = data[:len(data)/2]
	case FlipByte:
		data[src.Intn(len(data))] ^= 0xFF
	case Garbage:
		for i := range data {
			data[i] = byte(src.Intn(256))
		}
	default:
		return fmt.Errorf("faultinject: unknown corrupt mode %d", mode)
	}
	return os.WriteFile(path, data, 0o644)
}
