// Lifecycle misuse: a detached goroutine with no join or cancellation path.
// Once StartCollector returns, nothing in the package can stop or await the
// loop — it outlives Close and races test teardown.
package misuse

type collector struct {
	ticks int
}

func (c *collector) poll() {
	c.ticks++
}

// StartCollector fires a worker with no WaitGroup, no done channel, and no
// context: a leak by construction.
func (c *collector) StartCollector() {
	go func() { // want `goroutine started in collector.StartCollector has no join or cancellation path`
		for {
			c.poll()
		}
	}()
}
