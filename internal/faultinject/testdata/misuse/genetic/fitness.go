// Package genetic mirrors the engine's search package name so the
// determinism analyzer's reproducibility contract applies.
package genetic

import (
	"math/rand"
	"time"
)

type individual struct {
	fitness float64
}

// Mutate draws from the process-global rand source inside the fitness loop:
// two runs of the same seed diverge.
func Mutate(pop []individual) {
	for i := range pop {
		pop[i].fitness += rand.Float64() // want `rand.Float64 draws from the process-global source`
	}
}

// Deadline stamps the search with the wall clock.
func Deadline() int64 {
	return time.Now().Unix() // want `time.Now in a fit/search path`
}

// MeanFitness accumulates a float in map-iteration order.
func MeanFitness(byApp map[int]float64) float64 {
	var sum float64
	for _, f := range byApp {
		sum += f // want `float accumulation into sum inside range over map`
	}
	return sum / float64(len(byApp))
}
