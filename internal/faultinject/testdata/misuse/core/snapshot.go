// Package core mirrors the engine's core package name so the snapimmutable
// analyzer's Snapshot contract applies: this Snapshot stands in for
// hsmodel/internal/core.Snapshot.
package core

type Snapshot struct {
	version int
	coef    []float64
}

// NewSnapshot is the one place Snapshot fields may be written.
func NewSnapshot(version int, coef []float64) *Snapshot {
	s := &Snapshot{}
	s.version = version
	s.coef = coef
	return s
}

type registry struct {
	current *Snapshot
}

// Publish mutates a possibly-published snapshot and then stores it into a
// plain field, bypassing atomic.Pointer.
func (r *registry) Publish(s *Snapshot) {
	s.version++   // want `write to core.Snapshot field version outside a constructor`
	r.current = s // want `stored into plain field current`
}
