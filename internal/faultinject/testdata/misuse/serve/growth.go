// Serving-layer misuse: per-request state accumulated into a long-lived map
// with no eviction or cap anywhere in the package. Every distinct key grows
// the process until it is OOM-killed.
package serve

type sessions struct {
	byUser map[string]int
}

// Track records a request against its user on the hot path and never forgets.
func (s *sessions) Track(user string) {
	s.byUser[user]++ // want `unbounded growth: map insert to s.byUser in sessions.Track`
}
