// Serving-layer misuse: a function promises the zero-allocation hot-path
// contract with //hslint:hotpath and then allocates anyway. hslint's
// hotalloc check must catch the broken promise.
package serve

type predictor struct {
	row []float64
}

// PredictBatch claims to be allocation-free but builds its output and grows
// a scratch slice per call.
//
//hslint:hotpath
func (p *predictor) PredictBatch(rows [][]float64) []float64 {
	out := make([]float64, len(rows)) // want `make in hotpath predictor.PredictBatch allocates per call`
	for i, r := range rows {
		p.row = append(p.row, 0) // want `append in hotpath predictor.PredictBatch can grow on any call` `unbounded growth: append to p.row in predictor.PredictBatch`
		acc := 0.0
		for _, v := range r {
			acc += v
		}
		out[i] = acc
	}
	return out
}
