// Publication misuse: a field written through sync/atomic in one place and
// read plainly in another. The plain read can observe a torn or stale value
// relative to the atomic writers.
package misuse

import "sync/atomic"

type gauge struct {
	hits uint64
}

// Bump is the sanctioned atomic protocol for hits.
func (g *gauge) Bump() {
	atomic.AddUint64(&g.hits, 1)
}

// Snapshot bypasses the protocol and reads hits directly.
func (g *gauge) Snapshot() uint64 {
	return g.hits // want `plain read of g.hits, which is accessed via sync/atomic`
}
