// Package misuse is faultinject's static-analysis corpus: a set of
// deliberate invariant violations that hslint must catch. The smoke test in
// internal/faultinject runs the real binary over this tree and demands a
// non-zero exit; internal/analysis reuses the same files as a golden
// package, so every planted bug carries a `// want` expectation.
package misuse

import (
	"errors"
	"fmt"
	"sync"
)

var ErrTrain = errors.New("misuse: training failed")

type trainer struct {
	trainMu sync.Mutex
	mu      sync.Mutex
	samples int
}

// LockedForever takes the sample-store lock and forgets to release it: the
// next caller deadlocks.
func (t *trainer) LockedForever() {
	t.mu.Lock() // want `mu is locked but never unlocked in this function`
	t.samples++
}

// WrongOrder acquires trainMu while holding mu, inverting the trainer's
// documented lock order.
func (t *trainer) WrongOrder() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trainMu.Lock() // want `trainMu acquired while mu is held`
	defer t.trainMu.Unlock()
}

// Describe matches a sentinel with == (silently false once wrapped) and
// severs an error chain with %v.
func Describe(err error) string {
	if err == ErrTrain { // want `== compared with ErrTrain`
		return "training"
	}
	return fmt.Errorf("describe: %v", err).Error() // want `error err wrapped with %v`
}

// Converged compares two accumulated floats exactly.
func Converged(prev, cur float64) bool {
	return prev == cur // want `exact float equality between prev and cur`
}
