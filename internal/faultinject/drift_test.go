package faultinject

import (
	"math"
	"testing"
)

func TestDriftScheduleZeroIsPassThrough(t *testing.T) {
	var d DriftSchedule
	for n := 1; n <= 100; n++ {
		got, idx := d.Next(2.5)
		if math.Float64bits(got) != math.Float64bits(2.5) {
			t.Fatalf("submission %d: zero schedule perturbed %v -> %v", n, 2.5, got)
		}
		if idx != n {
			t.Fatalf("submission index %d, want %d", idx, n)
		}
	}
}

func TestDriftScheduleStepAndWindow(t *testing.T) {
	d := &DriftSchedule{Segments: []DriftSegment{{From: 10, To: 19, Factor: 2}}}
	for n := 1; n <= 30; n++ {
		got := d.At(n, 1)
		want := 1.0
		if n >= 10 && n <= 19 {
			want = 2
		}
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("submission %d: label %v, want %v", n, got, want)
		}
	}
}

func TestDriftScheduleRamp(t *testing.T) {
	d := &DriftSchedule{Segments: []DriftSegment{{From: 1, Factor: 3, Ramp: 4}}}
	wants := []float64{1.5, 2.0, 2.5, 3.0, 3.0, 3.0}
	for i, want := range wants {
		if got := d.At(i+1, 1); math.Abs(got-want) > 1e-12 {
			t.Fatalf("submission %d: ramp label %v, want %v", i+1, got, want)
		}
	}
}

func TestDriftScheduleCompose(t *testing.T) {
	d := &DriftSchedule{Segments: []DriftSegment{
		{From: 1, Factor: 2},
		{From: 5, To: 5, Factor: 3},
	}}
	if got := d.At(4, 1); math.Abs(got-2) > 1e-15 {
		t.Fatalf("submission 4: %v, want 2", got)
	}
	if got := d.At(5, 1); math.Abs(got-6) > 1e-15 {
		t.Fatalf("submission 5: overlapping segments compose to %v, want 6", got)
	}
}

func TestDriftScheduleNoiseDeterministicAndPositive(t *testing.T) {
	a := &DriftSchedule{Seed: 42, Segments: []DriftSegment{{From: 1, Noise: 1.5}}}
	b := &DriftSchedule{Seed: 42, Segments: []DriftSegment{{From: 1, Noise: 1.5}}}
	other := &DriftSchedule{Seed: 43, Segments: []DriftSegment{{From: 1, Noise: 1.5}}}
	differs := false
	varies := false
	var prev float64
	for n := 1; n <= 200; n++ {
		ga, gb := a.At(n, 1), b.At(n, 1)
		if math.Float64bits(ga) != math.Float64bits(gb) {
			t.Fatalf("submission %d: same seed diverged: %v vs %v", n, ga, gb)
		}
		if ga <= 0 {
			t.Fatalf("submission %d: noise produced non-positive label %v", n, ga)
		}
		if math.Float64bits(other.At(n, 1)) != math.Float64bits(ga) {
			differs = true
		}
		if n > 1 && math.Float64bits(ga) != math.Float64bits(prev) {
			varies = true
		}
		prev = ga
	}
	if !differs {
		t.Error("different seeds produced identical noise streams")
	}
	if !varies {
		t.Error("noise stream is constant across submissions")
	}
}
