// Drift injection: scripted perturbation of sample labels on a submission
// schedule, so continuous-learning episodes (drift detected → gather →
// retrain → canary → promote/rollback) replay exactly in tests. A
// DriftSchedule is a pure function of the submission index and its seed — no
// wall clock, no global randomness — mirroring the package's evaluator and
// file injectors. It deliberately operates on raw CPI labels rather than
// core.Sample so the package keeps its genetic/regress/rng-only dependency
// surface (core's in-package tests import faultinject).
package faultinject

import (
	"math"
	"sync/atomic"

	"hsmodel/internal/rng"
)

// DriftSegment perturbs labels over a half-open window of the submission
// stream. Segments model the paper's "system perturbed by new software or
// hardware" as label shifts:
//
//   - a step shift (Factor, Ramp 0): the regime jumps at From;
//   - a ramp shift (Factor, Ramp n): the regime drifts linearly from
//     unperturbed to Factor over n submissions — gradual wear, thermal
//     throttling;
//   - noise (Noise > 0): multiplicative lognormal jitter, the garbage a
//     misbehaving collector feeds the store during a transient.
type DriftSegment struct {
	// From is the first submission (1-indexed) the segment applies to.
	From int
	// To is the last submission the segment applies to; 0 means open-ended.
	To int
	// Factor is the multiplicative label shift at full strength. 0 is
	// treated as 1 (no shift), so a pure-noise segment needs no Factor.
	Factor float64
	// Ramp linearly interpolates the shift from 1 to Factor over the first
	// Ramp submissions of the segment; 0 applies Factor as a step.
	Ramp int
	// Noise, when positive, multiplies the label by exp(Noise·u) with
	// u uniform in [-1, 1) drawn deterministically from (Seed, submission
	// index). The lognormal form keeps labels positive, so log-response
	// training sees garbage rather than NaNs.
	Noise float64
}

// DriftSchedule scripts label perturbations over a submission stream.
// Overlapping segments compose multiplicatively. The zero schedule is a
// transparent pass-through. Next is safe for concurrent use (the submission
// counter is atomic), though scripted episodes are normally serial.
type DriftSchedule struct {
	Segments []DriftSegment
	// Seed determinizes segment noise.
	Seed uint64

	n atomic.Int64
}

// factorAt returns the composed multiplicative shift for submission n.
func (d *DriftSchedule) factorAt(n int) float64 {
	f := 1.0
	for _, seg := range d.Segments {
		if n < seg.From || (seg.To > 0 && n > seg.To) {
			continue
		}
		sf := seg.Factor
		if sf == 0 {
			sf = 1
		}
		if seg.Ramp > 0 && n < seg.From+seg.Ramp {
			frac := float64(n-seg.From+1) / float64(seg.Ramp)
			sf = 1 + (sf-1)*frac
		}
		f *= sf
		if seg.Noise > 0 {
			// One value per (seed, submission): forks are stable regardless
			// of how many segments consult the stream position.
			u := 2*rng.New(d.Seed).Fork(uint64(n)).Float64() - 1
			f *= math.Exp(seg.Noise * u)
		}
	}
	return f
}

// At returns the perturbed label for submission n (1-indexed) without
// advancing the schedule — the pure form, for tests that precompute streams.
func (d *DriftSchedule) At(n int, label float64) float64 {
	return label * d.factorAt(n)
}

// Next perturbs the label of the next submission and advances the stream
// position. It returns the perturbed label and the 1-indexed submission it
// was scheduled as.
func (d *DriftSchedule) Next(label float64) (float64, int) {
	n := int(d.n.Add(1))
	return d.At(n, label), n
}

// Submissions reports how many labels have passed through Next.
func (d *DriftSchedule) Submissions() int64 { return d.n.Load() }
