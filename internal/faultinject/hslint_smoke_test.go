package faultinject

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestHslintCatchesMisuseCorpus builds the real hslint binary and runs it
// over the misuse corpus in testdata/misuse: the lint must exit non-zero and
// report every class of planted bug. This is the end-to-end proof that the
// analyzers catch the failure modes this package exists to inject.
func TestHslintCatchesMisuseCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the hslint binary")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}

	bin := filepath.Join(t.TempDir(), "hslint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hslint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hslint: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-dir", filepath.Join("internal", "faultinject", "testdata", "misuse"))
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err = cmd.Run()
	if err == nil {
		t.Fatalf("hslint exited 0 on the misuse corpus; output:\n%s", buf.String())
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("running hslint: %v\n%s", err, buf.String())
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("hslint exit code = %d, want 1 (diagnostics found); output:\n%s", code, buf.String())
	}

	out := buf.String()
	for _, want := range []string{
		"trainMu acquired while mu is held",
		"mu is locked but never unlocked",
		"write to core.Snapshot field version",
		"stored into plain field current",
		"draws from the process-global source",
		"time.Now in a fit/search path",
		"float accumulation into sum",
		"== compared with ErrTrain",
		"wrapped with %v",
		"exact float equality",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hslint output missing %q; full output:\n%s", want, out)
		}
	}
}
