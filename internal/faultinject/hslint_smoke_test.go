package faultinject

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHslint compiles the real hslint binary into the test's temp dir and
// returns its path plus the module root. The go build cache makes repeated
// builds within one test run cheap.
func buildHslint(t *testing.T) (bin, root string) {
	t.Helper()
	if testing.Short() {
		t.Skip("builds the hslint binary")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	bin = filepath.Join(t.TempDir(), "hslint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hslint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hslint: %v\n%s", err, out)
	}
	return bin, root
}

// runHslint runs the binary from the module root and returns its combined
// output and exit code; a failure to start at all is fatal.
func runHslint(t *testing.T, bin, root string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		return buf.String(), 0
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("running hslint %v: %v\n%s", args, err, buf.String())
	}
	return buf.String(), exitErr.ExitCode()
}

var misuseDir = filepath.Join("internal", "faultinject", "testdata", "misuse")

// TestHslintCatchesMisuseCorpus runs the real binary over the misuse corpus
// in testdata/misuse: the lint must exit non-zero and report every class of
// planted bug. This is the end-to-end proof that the analyzers catch the
// failure modes this package exists to inject.
func TestHslintCatchesMisuseCorpus(t *testing.T) {
	bin, root := buildHslint(t)
	out, code := runHslint(t, bin, root, "-dir", misuseDir)
	if code != 1 {
		t.Fatalf("hslint exit code = %d, want 1 (diagnostics found); output:\n%s", code, out)
	}
	for _, want := range []string{
		"trainMu acquired while mu is held",
		"mu is locked but never unlocked",
		"write to core.Snapshot field version",
		"stored into plain field current",
		"draws from the process-global source",
		"time.Now in a fit/search path",
		"float accumulation into sum",
		"== compared with ErrTrain",
		"wrapped with %v",
		"exact float equality",
		"has no join or cancellation path",
		"which is accessed via sync/atomic",
		"unbounded growth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hslint output missing %q; full output:\n%s", want, out)
		}
	}
}

// TestHslintListChecks pins the machine-readable -list contract: one
// name<TAB>doc line per analyzer, including the concurrency suite.
func TestHslintListChecks(t *testing.T) {
	bin, root := buildHslint(t)
	out, code := runHslint(t, bin, root, "-list")
	if code != 0 {
		t.Fatalf("hslint -list exit code = %d, want 0; output:\n%s", code, out)
	}
	names := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		name, doc, ok := strings.Cut(line, "\t")
		if !ok || name == "" || doc == "" {
			t.Errorf("-list line %q is not name<TAB>doc", line)
			continue
		}
		names[name] = true
	}
	for _, want := range []string{"gorolife", "atomicpub", "boundedgrowth", "errcmp"} {
		if !names[want] {
			t.Errorf("-list output missing check %q; output:\n%s", want, out)
		}
	}
}

// TestHslintUnknownCheck pins the discoverability contract: a bad -checks
// name must exit 2 and enumerate the available checks.
func TestHslintUnknownCheck(t *testing.T) {
	bin, root := buildHslint(t)
	out, code := runHslint(t, bin, root, "-checks", "nosuch", "-dir", misuseDir)
	if code != 2 {
		t.Fatalf("hslint -checks nosuch exit code = %d, want 2; output:\n%s", code, out)
	}
	for _, want := range []string{`unknown check "nosuch"`, "available:", "gorolife"} {
		if !strings.Contains(out, want) {
			t.Errorf("unknown-check error missing %q; output:\n%s", want, out)
		}
	}
}

// TestHslintSARIF runs -format sarif over the misuse corpus and parses the
// result: valid SARIF 2.1.0 with a populated rule table and results.
func TestHslintSARIF(t *testing.T) {
	bin, root := buildHslint(t)
	out, code := runHslint(t, bin, root, "-dir", "-format", "sarif", misuseDir)
	if code != 1 {
		t.Fatalf("hslint -format sarif exit code = %d, want 1; output:\n%s", code, out)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\noutput:\n%s", err, out)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("SARIF runs = %d, want 1", len(doc.Runs))
	}
	if len(doc.Runs[0].Tool.Driver.Rules) == 0 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("SARIF run has %d rules and %d results, want both non-empty",
			len(doc.Runs[0].Tool.Driver.Rules), len(doc.Runs[0].Results))
	}
	for _, r := range doc.Runs[0].Results {
		for _, loc := range r.Locations {
			uri := loc.PhysicalLocation.ArtifactLocation.URI
			if filepath.IsAbs(uri) || strings.Contains(uri, "\\") {
				t.Errorf("SARIF artifact URI %q is not a relative slash path", uri)
			}
		}
	}
}

// TestHslintBaselineRoundTrip writes a baseline of the corpus's findings,
// then lints again against it: every finding is grandfathered, the run
// reports them as baselined, and the exit code drops to 0.
func TestHslintBaselineRoundTrip(t *testing.T) {
	bin, root := buildHslint(t)
	base := filepath.Join(t.TempDir(), "baseline.json")

	out, code := runHslint(t, bin, root, "-dir", "-write-baseline", base, misuseDir)
	if code != 0 {
		t.Fatalf("-write-baseline exit code = %d, want 0; output:\n%s", code, out)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	out, code = runHslint(t, bin, root, "-dir", "-baseline", base, misuseDir)
	if code != 0 {
		t.Fatalf("baselined lint exit code = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "(baselined)") {
		t.Errorf("baselined run output missing \"(baselined)\" marker; output:\n%s", out)
	}
}
