package faultinject

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
)

func constEval(v float64) genetic.Evaluator {
	return genetic.EvaluatorFunc(func(regress.Spec) float64 { return v })
}

func TestPanicScheduleDeterministic(t *testing.T) {
	e := &Evaluator{Inner: constEval(1), PanicEvery: 3}
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		e.Fitness(regress.Spec{})
		return false
	}
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, panicked())
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: panicked=%v, want %v (schedule %v)", i+1, got[i], want[i], got)
		}
	}
	if e.Calls() != 9 || e.Panics() != 3 {
		t.Errorf("calls=%d panics=%d, want 9 and 3", e.Calls(), e.Panics())
	}
}

func TestMaxPanicsCapsInjection(t *testing.T) {
	e := &Evaluator{Inner: constEval(2), PanicEvery: 1, MaxPanics: 2}
	panics := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			if f := e.Fitness(regress.Spec{}); f != 2 {
				t.Errorf("pass-through fitness %v, want 2", f)
			}
		}()
	}
	if panics != 2 {
		t.Errorf("%d panics, want exactly MaxPanics=2", panics)
	}
}

func TestNaNAndInfSchedules(t *testing.T) {
	e := &Evaluator{Inner: constEval(5), NaNEvery: 2, InfEvery: 3}
	var vals []float64
	for i := 0; i < 6; i++ {
		vals = append(vals, e.Fitness(regress.Spec{}))
	}
	// Calls 2,4,6 → NaN; call 3 → +Inf (call 6 is NaN: NaN beats Inf).
	if vals[0] != 5 || vals[4] != 5 {
		t.Errorf("pass-through calls wrong: %v", vals)
	}
	if !math.IsNaN(vals[1]) || !math.IsNaN(vals[3]) || !math.IsNaN(vals[5]) {
		t.Errorf("NaN schedule wrong: %v", vals)
	}
	if !math.IsInf(vals[2], 1) {
		t.Errorf("Inf schedule wrong: %v", vals)
	}
}

func TestZeroScheduleIsTransparent(t *testing.T) {
	e := &Evaluator{Inner: constEval(7)}
	for i := 0; i < 5; i++ {
		if f := e.Fitness(regress.Spec{}); f != 7 {
			t.Fatalf("fitness %v, want 7", f)
		}
	}
}

func TestPoisonRowsDeterministic(t *testing.T) {
	mk := func() [][]float64 {
		rows := make([][]float64, 10)
		for i := range rows {
			rows[i] = []float64{1, 2, 3, 4}
		}
		return rows
	}
	a, b := mk(), mk()
	if n := PoisonRows(a, 3, 42); n != 3 {
		t.Fatalf("poisoned %d rows, want 3", n)
	}
	PoisonRows(b, 3, 42)
	for i := range a {
		for j := range a[i] {
			aNaN, bNaN := math.IsNaN(a[i][j]), math.IsNaN(b[i][j])
			if aNaN != bNaN {
				t.Fatalf("row %d col %d: same seed, different poison", i, j)
			}
			wantPoisonRow := (i+1)%3 == 0
			if aNaN && !wantPoisonRow {
				t.Fatalf("row %d poisoned off-schedule", i)
			}
		}
	}
	if PoisonRows(mk(), 0, 1) != 0 {
		t.Error("every=0 must poison nothing")
	}
}

func TestCorruptFileModes(t *testing.T) {
	dir := t.TempDir()
	orig := []byte(`{"version":2,"model":{"coef":[1,2,3]}}`)
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := mk("trunc.json")
	if err := CorruptFile(p, 1, Truncate); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if len(got) != len(orig)/2 || !bytes.HasPrefix(orig, got) {
		t.Errorf("Truncate: %d bytes of %d", len(got), len(orig))
	}

	p = mk("flip.json")
	if err := CorruptFile(p, 1, FlipByte); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p)
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if len(got) != len(orig) || diff != 1 {
		t.Errorf("FlipByte: %d bytes differ, want exactly 1", diff)
	}

	p = mk("garbage.json")
	if err := CorruptFile(p, 1, Garbage); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p)
	if len(got) != len(orig) || bytes.Equal(got, orig) {
		t.Error("Garbage: content should be replaced wholesale")
	}

	if err := CorruptFile(filepath.Join(dir, "missing"), 1, Truncate); err == nil {
		t.Error("corrupting a missing file should error")
	}
}
