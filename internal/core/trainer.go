package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hsmodel/internal/family"
	"hsmodel/internal/family/spline"
	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/stats"
)

// FitnessConfig tunes the per-application fitness evaluation of the paper's
// pseudocode (Section 3.3):
//
//	foreach software s in S:
//	    split P_s into training T_s, validation V_s
//	    fit m using {P_-s, T_s} x w
//	    software fitness f_s = m's accuracy on V_s
//	model fitness f_m = mean over s of f_s
type FitnessConfig struct {
	// TrainFrac is the fraction of each application's rows in T_s
	// (default 0.7).
	TrainFrac float64
	// Weight is the w applied to T_s rows in the weighted fit (default 2).
	Weight float64
	// TermPenalty is added to fitness per design column (default 0.0004).
	// Parsimony pressure keeps the search from memorizing per-application
	// clusters with large specifications — smaller models extrapolate to
	// new software far better, which is the point of Section 4.4.
	TermPenalty float64
	// Seed determinizes the splits.
	Seed uint64
}

func (f FitnessConfig) withDefaults() FitnessConfig {
	if f.TrainFrac <= 0 || f.TrainFrac >= 1 {
		f.TrainFrac = 0.7
	}
	if f.Weight <= 0 {
		f.Weight = 2
	}
	if f.TermPenalty <= 0 {
		f.TermPenalty = 0.0004
	}
	return f
}

// Trainer is the training half of the paper's system model: it owns the
// accumulated sparse profiles (the paper's P), the featurized evaluator
// state, and the genetic/stepwise/resilience training machinery. Every
// successful training run publishes an immutable Snapshot through an atomic
// pointer; predictions (PredictShard, PredictApplication, EvaluateOn) are
// lock-free reads of the current Snapshot, so the model keeps answering
// queries while Train, Update, or TrainResilient re-specify it — the
// always-available behavior the Section 3.2–3.3 update protocol assumes.
//
// Configuration fields (Search, Fitness, Stabilize, LogResponse,
// WrapEvaluator, ShardLen) are set before training begins and must not be
// mutated concurrently with a training run. Sample mutation goes through
// AddSamples/SetSamples, which invalidate the cached featurized evaluator so
// a subsequent Update never trains against stale basis columns.
//
// Concurrency contract: AddSamples, SetSamples, Samples, NumSamples,
// Snapshot, and every prediction method are safe to call while a Train,
// Update, or TrainResilient run is in flight. Training runs serialize among
// themselves on an internal mutex, but they do NOT hold the sample-store
// lock while searching: a training run captures an immutable featurized
// evaluator at its start, searches against it lock-free, and re-acquires the
// lock only to publish results. Samples added mid-run therefore do not block
// behind the search and take effect at the next Train or Update — the
// streaming-profiles behavior the serving layer (internal/serve) relies on.
//
// Consistency contract: a training run (and, since the lifecycle work, an
// entire TrainResilient episode — every ladder rung) fits against exactly one
// captured sample-store version. Samples that arrive after the capture are
// all-or-nothing: they are never half-included in the published model, and
// the TrainReport records the version (SampleVersion) and row count
// (SampleRows) actually trained against so callers can audit what the served
// snapshot reflects.
type Trainer struct {
	// Search configures the genetic heuristic.
	Search genetic.Params
	// Fitness configures per-application splits and weights.
	Fitness FitnessConfig
	// Stabilize applies ladder-of-powers variance stabilization (on by
	// default through NewTrainer; the ablation bench turns it off).
	Stabilize bool
	// LogResponse fits log CPI (on by default through NewTrainer).
	LogResponse bool
	// WrapEvaluator, when non-nil, wraps the fitness evaluator before it is
	// handed to the search. It exists as a seam for fault injection and
	// instrumentation; production callers leave it nil.
	WrapEvaluator func(genetic.Evaluator) genetic.Evaluator
	// ShardLen is recorded in published snapshots (and therefore in saved
	// model files) so a loaded model profiles new shards consistently;
	// 0 means DefaultShardLen.
	ShardLen int
	// Families, when non-empty, turns each training run into a model-family
	// selection round: every listed family is fitted against the captured
	// evaluator state, scored on the shared validation rows, and the winner
	// is published (see SelectionResult). Empty Families preserves the
	// pre-family engine exactly: the reference spline family alone, fitted
	// and published through the classic genetic path bit-for-bit.
	Families []family.Family

	trainMu       sync.Mutex // serializes training runs; never held with mu below
	mu            sync.Mutex // guards samples, version, cache, population, history, lastSelection
	samples       []Sample
	version       uint64 // bumped by every sample mutation
	cache         *evalCache
	population    []genetic.Individual // final population, for warm-started updates
	history       []genetic.GenStats
	lastSelection *SelectionResult // most recent family-selection round, nil on classic runs

	snap atomic.Pointer[Snapshot]
}

// evalCache memoizes the featurized evaluator together with the state it was
// built from, so back-to-back training runs over unchanged samples skip the
// basis-column rebuild while any sample or configuration change forces one.
type evalCache struct {
	ev          *evaluator
	version     uint64
	stabilize   bool
	logResponse bool
	fitness     FitnessConfig
}

// NewTrainer returns a trainer with the paper's defaults.
func NewTrainer(samples []Sample) *Trainer {
	return &Trainer{
		samples:     samples,
		Stabilize:   true,
		LogResponse: true,
		Fitness:     FitnessConfig{}.withDefaults(),
	}
}

// Snapshot returns the currently served model snapshot, or nil before the
// first successful training run. The read is lock-free; the returned
// snapshot is immutable and remains valid (and consistent) regardless of
// concurrent retraining.
func (m *Trainer) Snapshot() *Snapshot { return m.snap.Load() }

// Adopt publishes an externally produced snapshot (for example one returned
// by LoadSnapshot) as the served model.
func (m *Trainer) Adopt(s *Snapshot) { m.snap.Store(s) }

// Model returns the currently served fitted model, or nil before the first
// successful training run.
func (m *Trainer) Model() *regress.Model { return m.Snapshot().Model() }

// Population returns the final genetic population from the last search.
func (m *Trainer) Population() []genetic.Individual {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.population
}

// History returns per-generation convergence statistics (Figure 5).
func (m *Trainer) History() []genetic.GenStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.history
}

// Selection returns the most recent family-selection round, or nil when the
// last training run used the classic single-family path (or none has run).
func (m *Trainer) Selection() *SelectionResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSelection
}

// Trained reports whether a fitted model is currently being served.
func (m *Trainer) Trained() bool { return m.Snapshot().Trained() }

// Samples returns a copy of the accumulated profile store.
func (m *Trainer) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.samples...)
}

// NumSamples returns the profile-store size.
func (m *Trainer) NumSamples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// StoreVersion returns the sample-store mutation counter: it advances on
// every AddSamples/SetSamples. Comparing it against TrainReport.SampleVersion
// tells whether the served model reflects the current store.
func (m *Trainer) StoreVersion() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// AddSamples appends new profiles to the store (they take effect at the next
// Train or Update). The cached featurized evaluator is invalidated, so the
// next training run rebuilds its basis columns over the full store.
func (m *Trainer) AddSamples(samples []Sample) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = append(m.samples, samples...)
	m.version++
}

// SetSamples replaces the profile store and invalidates cached evaluator
// state. Mutating samples previously returned by Samples has no effect on
// training; all sample mutation must go through AddSamples or SetSamples.
func (m *Trainer) SetSamples(samples []Sample) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = samples
	m.version++
}

// ErrNoSamples is returned by Train with an empty profile store.
var ErrNoSamples = errors.New("core: no samples to train on")

// FitPathStats reports the cumulative candidate-fit counters of the current
// cached evaluator's Gram layer: how many fits the O(p³) Cholesky path
// served versus how many fell back to pivoted QR, and how the cross-product
// memo behaved. The counters reset whenever the evaluator cache is
// invalidated (AddSamples, SetSamples, or a configuration change) because
// the Gram cache is rebuilt with it. Zero-valued stats mean no training run
// has used the Gram layer since the last invalidation.
func (m *Trainer) FitPathStats() regress.GramStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cache == nil || m.cache.ev.gc == nil {
		return regress.GramStats{}
	}
	return m.cache.ev.gc.Stats()
}

// ReleaseEvalCache drops the cached featurized evaluator (basis columns,
// Gram cross-products, split bookkeeping). The served snapshot and the
// sample store are untouched; the next training run rebuilds the evaluator
// from scratch. The multi-model registry calls this on least-recently-trained
// entries so aggregate Featurizer/Gram memory stays bounded as models
// multiply.
func (m *Trainer) ReleaseEvalCache() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache = nil
}

// EvalCacheActive reports whether a featurized evaluator is currently cached
// (it would be reused by the next training run over an unchanged store).
func (m *Trainer) EvalCacheActive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache != nil
}

// evaluator implements genetic.Evaluator with the paper's inner loops. It
// featurizes the dataset once (cached basis columns shared by every
// candidate fit), layers a Gram cache over those columns so each candidate
// fit is an O(p³) normal-equation solve instead of an O(n·p²) QR pass, and
// precomputes the per-application row split so all candidate models are
// scored on identical data. It is immutable after construction (the Gram
// cache's internal memo is concurrency-safe) and safe for the search's
// concurrent fitness workers.
type evaluator struct {
	fz          *regress.Featurizer
	gc          *regress.GramCache // nil when the Gram layer is unavailable
	ds          *regress.Dataset
	opts        regress.Options
	apps        []int   // distinct app IDs
	valRows     [][]int // validation rows per app (parallel to apps)
	allVal      []int   // concatenation of valRows, for batched design gather
	weights     []float64
	termPenalty float64
}

func newEvaluator(ds *regress.Dataset, fc FitnessConfig, stabilize, logResponse bool) (*evaluator, error) {
	fc = fc.withDefaults()
	fz, err := regress.NewFeaturizer(ds, stabilize)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{fz: fz, ds: ds, termPenalty: fc.TermPenalty}

	// Deterministic split of each application's rows into T_s / V_s.
	byApp := make(map[int][]int)
	for r, g := range ds.Group {
		byApp[g] = append(byApp[g], r)
	}
	ev.apps = make([]int, 0, len(byApp))
	for g := range byApp {
		ev.apps = append(ev.apps, g)
	}
	sort.Ints(ev.apps)

	ev.weights = make([]float64, ds.NumRows())
	for i := range ev.weights {
		ev.weights[i] = 1
	}
	src := rng.New(fc.Seed ^ 0x5eed5eed)
	for _, g := range ev.apps {
		rows := byApp[g]
		perm := src.Perm(len(rows))
		cut := int(float64(len(rows)) * fc.TrainFrac)
		var val []int
		for k, pi := range perm {
			r := rows[pi]
			if k < cut {
				ev.weights[r] = fc.Weight // T_s rows, weighted w
			} else {
				val = append(val, r)
				ev.weights[r] = 0 // V_s rows excluded from every fit
			}
		}
		sort.Ints(val)
		ev.valRows = append(ev.valRows, val)
		ev.allVal = append(ev.allVal, val...)
	}

	ev.opts = regress.Options{LogResponse: logResponse, Weights: ev.weights}
	// The Gram layer bakes the response transform and split weights into its
	// cached cross-products. If construction fails (e.g. a non-positive CPI
	// under LogResponse), candidate fits simply stay on the per-spec QR path,
	// which reports the same condition per fit.
	if gc, err := regress.NewGramCache(fz, ev.opts); err == nil {
		ev.gc = gc
	}
	return ev, nil
}

// fit fits one candidate spec through the Gram/Cholesky fast path when
// available, falling back to the featurized pivoted-QR path.
func (ev *evaluator) fit(spec regress.Spec) (*regress.Model, error) {
	if ev.gc != nil {
		return ev.gc.Fit(spec)
	}
	return ev.fz.Fit(spec, ev.opts)
}

// Fitness returns the mean over applications of the median absolute
// percentage error on that application's validation rows. Lower is better.
// Degenerate fits (rank failures) return a large penalty.
func (ev *evaluator) Fitness(spec regress.Spec) float64 {
	model, err := ev.fit(spec)
	if err != nil {
		return 1e6
	}
	// One gathered design over every validation row (their weight in the fit
	// is 0, but the cached basis columns are unweighted), predicted in bulk.
	valDesign := ev.fz.DesignRows(spec, ev.allVal)
	var sum float64
	var n, off int
	for i := range ev.apps {
		val := ev.valRows[i]
		if len(val) == 0 {
			continue
		}
		pred := make([]float64, len(val))
		truth := make([]float64, len(val))
		for k, r := range val {
			pred[k] = model.PredictDesignRow(valDesign.Row(off + k))
			truth[k] = ev.ds.Y[r]
		}
		off += len(val)
		sum += stats.MedianAbsPctError(pred, truth)
		n++
	}
	if n == 0 {
		return 1e6
	}
	return sum/float64(n) + ev.termPenalty*float64(len(model.Coef))
}

// SumOfMedianErrors converts a fitness value back to the paper's Figure 5
// metric ("median errors summed for 7 applications"): fitness is the mean,
// so the sum is fitness times the application count.
func (m *Trainer) SumOfMedianErrors(fitness float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[int]bool)
	for _, s := range m.samples {
		seen[s.AppID] = true
	}
	return fitness * float64(len(seen))
}

// Train runs the genetic search on the current samples and fits the final
// model on all rows. Cancellation of ctx (or an expired Search.Deadline)
// aborts the search and returns an error wrapping genetic.ErrCancelled; a
// failed or cancelled Train never replaces the published snapshot, so the
// trainer keeps serving its last-good model. See TrainResilient for the
// variant that degrades through fallbacks instead of returning the error.
//
// Train is safe to call concurrently with AddSamples and predictions (see
// the Trainer type comment); concurrent training runs serialize.
func (m *Trainer) Train(ctx context.Context) error {
	m.trainMu.Lock()
	defer m.trainMu.Unlock()
	cap, err := m.captureEvaluator()
	if err != nil {
		return err
	}
	return m.train(ctx, nil, cap)
}

// Update re-specifies and refits the model after the sample store changed,
// warm-starting the search from the previous population (Section 3.3: "we
// invoke a heuristic to re-specify and perform a weighted fit of the
// model"). Update on an untrained trainer is equivalent to Train. Like
// Train, Update does not block concurrent AddSamples or predictions.
func (m *Trainer) Update(ctx context.Context) error {
	m.trainMu.Lock()
	defer m.trainMu.Unlock()
	cap, err := m.captureEvaluator()
	if err != nil {
		return err
	}
	m.mu.Lock()
	var seeds []regress.Spec
	for _, ind := range m.population {
		seeds = append(seeds, ind.Spec)
	}
	m.mu.Unlock()
	return m.train(ctx, seeds, cap)
}

// capturedEval pins a training run (or a whole resilient episode) to one
// sample-store version: the featurized evaluator, the version counter it was
// built from, and the row count it covers. Every rung that fits against the
// same capture trains on exactly the same rows — late-arriving samples are
// never half-included.
type capturedEval struct {
	ev      *evaluator
	version uint64
	rows    int
}

// captureEvaluator atomically snapshots the evaluator and the store version
// it reflects. Callers must hold trainMu (and must NOT hold mu).
func (m *Trainer) captureEvaluator() (capturedEval, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.samples) == 0 {
		return capturedEval{}, ErrNoSamples
	}
	ev, err := m.cachedEvaluator()
	if err != nil {
		return capturedEval{}, fmt.Errorf("core: featurizing samples: %w", err)
	}
	return capturedEval{ev: ev, version: m.version, rows: len(m.samples)}, nil
}

// cachedEvaluator returns the featurized evaluator for the current samples
// and configuration, rebuilding it only when either changed since the last
// training run. Callers must hold m.mu.
func (m *Trainer) cachedEvaluator() (*evaluator, error) {
	if c := m.cache; c != nil && c.version == m.version &&
		c.stabilize == m.Stabilize && c.logResponse == m.LogResponse &&
		c.fitness == m.Fitness {
		return c.ev, nil
	}
	ev, err := newEvaluator(ToDataset(m.samples), m.Fitness, m.Stabilize, m.LogResponse)
	if err != nil {
		return nil, err
	}
	m.cache = &evalCache{
		ev:          ev,
		version:     m.version,
		stabilize:   m.Stabilize,
		logResponse: m.LogResponse,
		fitness:     m.Fitness,
	}
	return ev, nil
}

// publish stores a freshly fitted model as the served snapshot. The store is
// atomic, so no lock is required.
func (m *Trainer) publish(model *regress.Model, rung Rung, rows int) {
	m.snap.Store(NewSnapshot(model, m.ShardLen, rung, rows))
}

// splineFamily is the shared reference-family instance the classic
// (no-Families) path fits through; the family is stateless.
var splineFamily = spline.New()

// fitInput assembles the family fitting contract from a captured evaluator:
// the dataset, shared featurizer, wrapped fitness evaluator, and fully
// prepared search params (warm-start specs plus the history-recording
// OnGeneration hook), so every family in a run fits the same episode.
func (m *Trainer) fitInput(initial []regress.Spec, base *evaluator) family.FitInput {
	var ev genetic.Evaluator = base
	if m.WrapEvaluator != nil {
		ev = m.WrapEvaluator(ev)
	}

	params := m.Search
	params.Initial = initial
	userOnGen := m.Search.OnGeneration
	params.OnGeneration = func(gs genetic.GenStats) {
		m.mu.Lock()
		m.history = append(m.history, gs)
		m.mu.Unlock()
		if userOnGen != nil {
			userOnGen(gs)
		}
	}
	return family.FitInput{
		NumVars:     NumVars,
		Dataset:     base.ds,
		Featurizer:  base.fz,
		Evaluator:   ev,
		Search:      params,
		LogResponse: m.LogResponse,
		Stabilize:   m.Stabilize,
		Seed:        m.Fitness.Seed,
		Weights:     base.weights,
		ValRows:     base.valRows,
	}
}

// train is the shared top-rung body. Callers must hold m.trainMu (and must
// NOT hold m.mu) and pass the evaluator capture the run fits against: the
// search runs without any lock, and results are published under m.mu (or the
// atomic snapshot pointer) at the end, so sample mutation and predictions
// proceed during the search.
//
// With no Families registered this is the paper's engine verbatim — the
// genetic spline search plus the all-rows final fit, now executed through
// the extracted reference family — and publishes on RungGenetic. With
// Families it becomes a selection round publishing the winner on RungFamily.
func (m *Trainer) train(ctx context.Context, initial []regress.Spec, cap capturedEval) error {
	base := cap.ev
	m.mu.Lock()
	m.history = nil
	m.lastSelection = nil
	m.mu.Unlock()

	in := m.fitInput(initial, base)

	if len(m.Families) == 0 {
		out, err := splineFamily.Fit(ctx, in)
		// Even a partial population is kept: it warm-starts the next attempt.
		m.mu.Lock()
		m.population = out.Population
		m.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		m.snap.Store(NewFamilySnapshot(spline.FamilyName, out.Model, nil, m.ShardLen, RungGenetic, cap.rows))
		return nil
	}

	sel, err := runSelection(ctx, m.Families, in)
	m.mu.Lock()
	if sel != nil && sel.Population != nil {
		m.population = sel.Population
	}
	m.lastSelection = sel
	m.mu.Unlock()
	if err != nil {
		return err
	}
	m.snap.Store(NewFamilySnapshot(sel.Winner, sel.Model, sel.Scores, m.ShardLen, RungFamily, cap.rows))
	return nil
}

// PredictShard predicts the CPI of a shard with characteristics x on
// hardware hw. The read is lock-free against the current snapshot.
func (m *Trainer) PredictShard(x profile.Characteristics, hw hwspace.Config) (float64, error) {
	return m.Snapshot().PredictShard(x, hw)
}

// PredictApplication predicts whole-application CPI on hw from the current
// snapshot (see Snapshot.PredictApplication).
func (m *Trainer) PredictApplication(shards []profile.Characteristics, hw hwspace.Config) (float64, error) {
	return m.Snapshot().PredictApplication(shards, hw)
}

// EvaluateOn measures the served model's accuracy on held-out samples.
func (m *Trainer) EvaluateOn(samples []Sample) (regress.Metrics, error) {
	return m.Snapshot().EvaluateOn(samples)
}
