package core

import (
	"context"
	"fmt"
	"time"

	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
)

// Rung identifies which level of the degradation ladder produced the model
// the Trainer is serving.
type Rung int

const (
	// RungNone: no rung produced a usable model; the trainer is as it was.
	RungNone Rung = iota
	// RungGenetic: the full genetic search succeeded (the healthy path).
	RungGenetic
	// RungStepwise: genetic search failed or timed out; the cheaper forward
	// stepwise search produced the model.
	RungStepwise
	// RungLastGood: both searches failed; the trainer serves the last-good
	// model (reloaded from disk, or the previous in-memory fit).
	RungLastGood
	// RungFamily: the model-family selection round succeeded — every
	// registered family fitted and scored, winner published. This is the top
	// rung whenever Trainer.Families is non-empty; the classic genetic rung
	// takes its place when only the implicit spline family runs.
	RungFamily
)

func (r Rung) String() string {
	switch r {
	case RungGenetic:
		return "genetic"
	case RungStepwise:
		return "stepwise"
	case RungLastGood:
		return "last-good"
	case RungFamily:
		return "family"
	default:
		return "none"
	}
}

// parseRung inverts String; unknown names map to RungNone so saved-model
// metadata from future versions degrades instead of failing the load.
func parseRung(s string) Rung {
	switch s {
	case "genetic":
		return RungGenetic
	case "stepwise":
		return RungStepwise
	case "last-good":
		return RungLastGood
	case "family":
		return RungFamily
	default:
		return RungNone
	}
}

// Resilience configures the degradation ladder of TrainResilient.
type Resilience struct {
	// SearchTimeout bounds the genetic rung; 0 means no deadline beyond the
	// caller's context.
	SearchTimeout time.Duration
	// StepwiseBudget caps fitness evaluations in the stepwise rung
	// (default 200, roughly the cost of a few genetic generations).
	StepwiseBudget int
	// LastGoodPath, when non-empty, names a model file written by Save to
	// reload if both searches fail.
	LastGoodPath string
}

func (r Resilience) withDefaults() Resilience {
	if r.StepwiseBudget <= 0 {
		r.StepwiseBudget = 200
	}
	return r
}

// TrainReport records which rung of the ladder produced the served model and
// what failed on the way down. Errors for rungs that were never needed are
// nil.
type TrainReport struct {
	Rung        Rung
	GeneticErr  error // why the genetic rung failed (or nil)
	StepwiseErr error // why the stepwise rung failed or was skipped (or nil)
	LoadErr     error // why reloading LastGoodPath failed (or nil)
	// SampleVersion and SampleRows identify the sample-store state the
	// episode's searches fit against: every rung of one episode trains on the
	// same captured version, so samples added mid-episode are all-or-nothing
	// (compare SampleVersion against Trainer.StoreVersion to detect drift
	// between the served model and the current store). Zero when no rung ran
	// a search (for example an empty store).
	SampleVersion uint64
	SampleRows    int
	// Family names the model family the episode published ("spline" on the
	// classic and stepwise rungs). FamilyScores carries the per-family
	// selection scores of a family-selection round, and FamilyErrors the
	// families whose Fit failed mid-selection (skipped, never fatal to the
	// episode while at least one family fits). Both are nil without a round.
	Family       string
	FamilyScores map[string]float64
	FamilyErrors map[string]error
	// GramFits and QRFallbacks count how candidate fits were served during
	// this training attempt's evaluator lifetime: the O(p³) Gram/Cholesky
	// fast path versus the pivoted-QR fallback (ill-conditioned or
	// rank-deficient sub-Gram systems). A high fallback rate is a signal the
	// profile store has collinear or degenerate columns.
	GramFits    uint64
	QRFallbacks uint64
}

func (t TrainReport) String() string {
	s := "trained via " + t.Rung.String()
	if t.Family != "" {
		s += " (family: " + t.Family + ")"
	}
	if len(t.FamilyErrors) > 0 {
		s += fmt.Sprintf(" (%d family fit(s) failed)", len(t.FamilyErrors))
	}
	if t.GeneticErr != nil {
		s += fmt.Sprintf(" (genetic: %v)", t.GeneticErr)
	}
	if t.StepwiseErr != nil {
		s += fmt.Sprintf(" (stepwise: %v)", t.StepwiseErr)
	}
	if t.LoadErr != nil {
		s += fmt.Sprintf(" (last-good load: %v)", t.LoadErr)
	}
	if t.GramFits+t.QRFallbacks > 0 {
		s += fmt.Sprintf(" (fits: %d gram, %d qr-fallback)", t.GramFits, t.QRFallbacks)
	}
	return s
}

// TrainResilient trains through a degradation ladder instead of failing:
//
//  1. Full genetic search (optionally deadline-bounded by SearchTimeout).
//  2. On failure, forward stepwise search under StepwiseBudget — unless the
//     caller's context is already dead, in which case no further compute is
//     spent.
//  3. On failure again, the last-good model: reloaded from LastGoodPath if
//     set and readable, else the previously published snapshot (a failed
//     training run never replaces the snapshot).
//
// The report says which rung the served model came from; the error is
// non-nil only when every rung failed and the trainer has no model at all.
// This is the always-available behavior the paper's update protocol assumes:
// the model keeps answering while it is re-specified, even when
// re-specification goes wrong — concurrent PredictShard calls read whichever
// snapshot is current throughout the ladder.
//
// The whole episode is atomic with respect to other training runs (it holds
// the training mutex across every rung) and fits against one captured
// sample-store version: samples that arrive mid-episode influence neither
// the genetic nor the stepwise rung, and take effect at the next run. The
// report's SampleVersion/SampleRows record the capture.
func (m *Trainer) TrainResilient(ctx context.Context, r Resilience) (rep TrainReport, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r = r.withDefaults()
	defer func() {
		s := m.FitPathStats()
		rep.GramFits, rep.QRFallbacks = s.GramFits, s.QRFallbacks
	}()

	m.trainMu.Lock()
	defer m.trainMu.Unlock()

	cap, capErr := m.captureEvaluator()
	if capErr != nil {
		// No evaluator means no search can run at any rung; degrade straight
		// to the last-good fallbacks below.
		rep.GeneticErr = capErr
		rep.StepwiseErr = fmt.Errorf("core: stepwise rung skipped: %w", capErr)
	} else {
		rep.SampleVersion, rep.SampleRows = cap.version, cap.rows
		gctx := ctx
		if r.SearchTimeout > 0 {
			var cancel context.CancelFunc
			gctx, cancel = context.WithTimeout(ctx, r.SearchTimeout)
			defer cancel()
		}
		if err := m.train(gctx, nil, cap); err == nil {
			// The top rung is the selection round when families are
			// registered, the classic genetic path otherwise; the published
			// snapshot knows which.
			snap := m.Snapshot()
			rep.Rung = snap.Rung()
			rep.Family = snap.Family()
			if sel := m.Selection(); sel != nil {
				rep.FamilyScores = sel.Scores
				if len(sel.Errors) > 0 {
					rep.FamilyErrors = sel.Errors
				}
			}
			return rep, nil
		} else {
			rep.GeneticErr = err
			if sel := m.Selection(); sel != nil && len(sel.Errors) > 0 {
				rep.FamilyErrors = sel.Errors
			}
		}

		if err := ctx.Err(); err != nil {
			rep.StepwiseErr = fmt.Errorf("core: stepwise rung skipped: %w", err)
		} else if err := m.trainStepwise(ctx, r.StepwiseBudget, cap); err == nil {
			// The stepwise floor is always the reference spline family.
			rep.Rung = RungStepwise
			rep.Family = m.Snapshot().Family()
			return rep, nil
		} else {
			rep.StepwiseErr = err
		}
	}

	if r.LastGoodPath != "" {
		if loaded, err := LoadSnapshot(r.LastGoodPath); err == nil {
			m.Adopt(loaded)
			rep.Rung = RungLastGood
			rep.Family = loaded.Family()
			return rep, nil
		} else {
			rep.LoadErr = err
		}
	}
	if m.Trained() {
		rep.Rung = RungLastGood
		return rep, nil
	}
	rep.Rung = RungNone
	return rep, fmt.Errorf("core: all rungs failed: genetic: %w; stepwise: %w",
		rep.GeneticErr, rep.StepwiseErr)
}

// trainStepwise is the stepwise rung: same final-fit protocol as train, but
// driven by the cheap forward stepwise search over the episode's captured
// evaluator — the rung fits exactly the rows the genetic rung saw, never a
// store that moved mid-episode. Callers must hold trainMu (and must NOT hold
// mu), so sample mutation and predictions proceed during the search.
func (m *Trainer) trainStepwise(ctx context.Context, budget int, cap capturedEval) error {
	base := cap.ev
	var ev genetic.Evaluator = base
	if m.WrapEvaluator != nil {
		ev = m.WrapEvaluator(ev)
	}
	res, serr := genetic.Stepwise(ctx, NumVars, ev, budget)
	if serr != nil {
		return fmt.Errorf("core: stepwise search failed: %w", serr)
	}
	model, err := base.fz.Fit(res.Best.Spec, regress.Options{LogResponse: m.LogResponse})
	if err != nil {
		return fmt.Errorf("core: final fit failed: %w", err)
	}
	m.mu.Lock()
	m.population = res.Population
	m.mu.Unlock()
	m.publish(model, RungStepwise, cap.rows)
	return nil
}
