package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/stats"
)

// FitnessConfig tunes the per-application fitness evaluation of the paper's
// pseudocode (Section 3.3):
//
//	foreach software s in S:
//	    split P_s into training T_s, validation V_s
//	    fit m using {P_-s, T_s} x w
//	    software fitness f_s = m's accuracy on V_s
//	model fitness f_m = mean over s of f_s
type FitnessConfig struct {
	// TrainFrac is the fraction of each application's rows in T_s
	// (default 0.7).
	TrainFrac float64
	// Weight is the w applied to T_s rows in the weighted fit (default 2).
	Weight float64
	// TermPenalty is added to fitness per design column (default 0.0004).
	// Parsimony pressure keeps the search from memorizing per-application
	// clusters with large specifications — smaller models extrapolate to
	// new software far better, which is the point of Section 4.4.
	TermPenalty float64
	// Seed determinizes the splits.
	Seed uint64
}

func (f FitnessConfig) withDefaults() FitnessConfig {
	if f.TrainFrac <= 0 || f.TrainFrac >= 1 {
		f.TrainFrac = 0.7
	}
	if f.Weight <= 0 {
		f.Weight = 2
	}
	if f.TermPenalty <= 0 {
		f.TermPenalty = 0.0004
	}
	return f
}

// Modeler is the system model of the paper: it owns the accumulated sparse
// profiles, trains and updates the integrated hardware-software regression
// model via genetic search, and answers performance predictions.
type Modeler struct {
	// Samples is the accumulated profile store (the paper's P).
	Samples []Sample
	// Search configures the genetic heuristic.
	Search genetic.Params
	// Fitness configures per-application splits and weights.
	Fitness FitnessConfig
	// Stabilize applies ladder-of-powers variance stabilization (on by
	// default through NewModeler; the ablation bench turns it off).
	Stabilize bool
	// LogResponse fits log CPI (on by default through NewModeler).
	LogResponse bool
	// WrapEvaluator, when non-nil, wraps the fitness evaluator before it is
	// handed to the search. It exists as a seam for fault injection and
	// instrumentation; production callers leave it nil.
	WrapEvaluator func(genetic.Evaluator) genetic.Evaluator

	model      *regress.Model
	population []genetic.Individual // final population, for warm-started updates
	history    []genetic.GenStats
}

// NewModeler returns a modeler with the paper's defaults.
func NewModeler(samples []Sample) *Modeler {
	return &Modeler{
		Samples:     samples,
		Stabilize:   true,
		LogResponse: true,
		Fitness:     FitnessConfig{}.withDefaults(),
	}
}

// Model returns the fitted model, or nil before Train.
func (m *Modeler) Model() *regress.Model { return m.model }

// Population returns the final genetic population from the last search.
func (m *Modeler) Population() []genetic.Individual { return m.population }

// History returns per-generation convergence statistics (Figure 5).
func (m *Modeler) History() []genetic.GenStats { return m.history }

// ErrNoSamples is returned by Train with an empty profile store.
var ErrNoSamples = errors.New("core: no samples to train on")

// evaluator implements genetic.Evaluator with the paper's inner loops. It
// precomputes the per-application row split once so all candidate models are
// scored on identical data.
type evaluator struct {
	ds          *regress.Dataset
	prep        *regress.Prep
	opts        regress.Options
	apps        []int   // distinct app IDs
	valRows     [][]int // validation rows per app (parallel to apps)
	weights     []float64
	termPenalty float64
}

func newEvaluator(ds *regress.Dataset, fc FitnessConfig, stabilize, logResponse bool) *evaluator {
	fc = fc.withDefaults()
	ev := &evaluator{ds: ds, prep: regress.Prepare(ds, stabilize), termPenalty: fc.TermPenalty}

	// Deterministic split of each application's rows into T_s / V_s.
	byApp := make(map[int][]int)
	for r, g := range ds.Group {
		byApp[g] = append(byApp[g], r)
	}
	ev.apps = make([]int, 0, len(byApp))
	for g := range byApp {
		ev.apps = append(ev.apps, g)
	}
	sort.Ints(ev.apps)

	ev.weights = make([]float64, ds.NumRows())
	for i := range ev.weights {
		ev.weights[i] = 1
	}
	src := rng.New(fc.Seed ^ 0x5eed5eed)
	for _, g := range ev.apps {
		rows := byApp[g]
		perm := src.Perm(len(rows))
		cut := int(float64(len(rows)) * fc.TrainFrac)
		var val []int
		for k, pi := range perm {
			r := rows[pi]
			if k < cut {
				ev.weights[r] = fc.Weight // T_s rows, weighted w
			} else {
				val = append(val, r)
				ev.weights[r] = 0 // V_s rows excluded from every fit
			}
		}
		sort.Ints(val)
		ev.valRows = append(ev.valRows, val)
	}

	ev.opts = regress.Options{LogResponse: logResponse, Weights: ev.weights}
	return ev
}

// Fitness returns the mean over applications of the median absolute
// percentage error on that application's validation rows. Lower is better.
// Degenerate fits (rank failures) return a large penalty.
func (ev *evaluator) Fitness(spec regress.Spec) float64 {
	model, err := regress.FitSpec(spec, ev.prep, ev.ds, ev.opts)
	if err != nil {
		return 1e6
	}
	var sum float64
	var n int
	for i := range ev.apps {
		val := ev.valRows[i]
		if len(val) == 0 {
			continue
		}
		pred := make([]float64, len(val))
		truth := make([]float64, len(val))
		for k, r := range val {
			pred[k] = model.Predict(ev.ds.X.Row(r))
			truth[k] = ev.ds.Y[r]
		}
		sum += stats.MedianAbsPctError(pred, truth)
		n++
	}
	if n == 0 {
		return 1e6
	}
	return sum/float64(n) + ev.termPenalty*float64(len(model.Coef))
}

// SumOfMedianErrors converts a fitness value back to the paper's Figure 5
// metric ("median errors summed for 7 applications"): fitness is the mean,
// so the sum is fitness times the application count.
func (m *Modeler) SumOfMedianErrors(fitness float64) float64 {
	seen := make(map[int]bool)
	for _, s := range m.Samples {
		seen[s.AppID] = true
	}
	return fitness * float64(len(seen))
}

// Train runs the genetic search on the current samples and fits the final
// model on all rows. Cancellation of ctx (or an expired Search.Deadline)
// aborts the search and returns an error wrapping genetic.ErrCancelled; a
// failed or cancelled Train never clobbers a previously fitted model, so
// the modeler keeps serving its last-good model. See TrainResilient for the
// variant that degrades through fallbacks instead of returning the error.
func (m *Modeler) Train(ctx context.Context) error {
	return m.train(ctx, nil)
}

// Update re-specifies and refits the model after the sample store changed,
// warm-starting the search from the previous population (Section 3.3: "we
// invoke a heuristic to re-specify and perform a weighted fit of the
// model"). Update on an untrained modeler is equivalent to Train.
func (m *Modeler) Update(ctx context.Context) error {
	var seeds []regress.Spec
	for _, ind := range m.population {
		seeds = append(seeds, ind.Spec)
	}
	return m.train(ctx, seeds)
}

func (m *Modeler) train(ctx context.Context, initial []regress.Spec) error {
	if len(m.Samples) == 0 {
		return ErrNoSamples
	}
	ds := ToDataset(m.Samples)
	base := newEvaluator(ds, m.Fitness, m.Stabilize, m.LogResponse)
	var ev genetic.Evaluator = base
	if m.WrapEvaluator != nil {
		ev = m.WrapEvaluator(ev)
	}

	params := m.Search
	params.Initial = initial
	m.history = nil
	params.OnGeneration = func(gs genetic.GenStats) {
		m.history = append(m.history, gs)
		if m.Search.OnGeneration != nil {
			m.Search.OnGeneration(gs)
		}
	}
	res, serr := genetic.Search(ctx, NumVars, ev, params)
	// Even a partial population is kept: it warm-starts the next attempt.
	m.population = res.Population
	if serr != nil {
		return fmt.Errorf("core: search failed: %w", serr)
	}

	// Final fit: best specification, all rows, uniform weights.
	model, err := regress.FitSpec(res.Best.Spec, base.prep, ds, regress.Options{
		LogResponse: m.LogResponse,
	})
	if err != nil {
		return fmt.Errorf("core: final fit failed: %w", err)
	}
	m.model = model
	return nil
}

// PredictShard predicts the CPI of a shard with characteristics x on
// hardware hw.
func (m *Modeler) PredictShard(x profile.Characteristics, hw hwspace.Config) (float64, error) {
	if m.model == nil {
		return 0, errors.New("core: model not trained")
	}
	s := Sample{X: x, HW: hw}
	return m.model.Predict(s.Row()), nil
}

// PredictApplication predicts whole-application CPI on hw by predicting each
// constituent shard and aggregating (shards have equal instruction counts,
// so application CPI is the mean of shard CPIs). "A few inaccurate shard
// predictions have a small effect on the end-to-end prediction."
func (m *Modeler) PredictApplication(shards []profile.Characteristics, hw hwspace.Config) (float64, error) {
	if len(shards) == 0 {
		return 0, errors.New("core: no shards to predict")
	}
	var sum float64
	for _, x := range shards {
		p, err := m.PredictShard(x, hw)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum / float64(len(shards)), nil
}

// EvaluateOn measures model accuracy on held-out samples.
func (m *Modeler) EvaluateOn(samples []Sample) (regress.Metrics, error) {
	if m.model == nil {
		return regress.Metrics{}, errors.New("core: model not trained")
	}
	return m.model.Evaluate(ToDataset(samples)), nil
}

// AddSamples appends new profiles to the store (they take effect at the next
// Train or Update).
func (m *Modeler) AddSamples(samples []Sample) {
	m.Samples = append(m.Samples, samples...)
}
