package core

import (
	"context"
	"sync"
	"testing"

	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
)

// mutatingEvaluator injects sample-store mutations from inside a training
// run: on its first fitness call it invokes add (an AddSamples closure), and
// it can panic a bounded number of times to knock the genetic rung over so
// the stepwise rung runs within the same resilient episode.
type mutatingEvaluator struct {
	inner  genetic.Evaluator
	add    func()
	panics int // remaining injected panics

	mu    sync.Mutex
	calls int
}

func (e *mutatingEvaluator) Fitness(spec regress.Spec) float64 {
	e.mu.Lock()
	e.calls++
	first := e.calls == 1
	doPanic := e.panics > 0
	if doPanic {
		e.panics--
	}
	e.mu.Unlock()
	if first {
		e.add()
	}
	if doPanic {
		panic("storeversion test: injected evaluator fault")
	}
	return e.inner.Fitness(spec)
}

// TestRetrainCapturesConsistentStore is the regression test for the
// retrain-vs-AddSamples interleaving fix: a resilient episode whose genetic
// rung dies AFTER new samples arrived must not let the stepwise rung silently
// refit over the grown store. Both rungs fit the capture taken at episode
// start; the samples added mid-episode take effect at the next run. Run under
// -race: concurrent feeders hammer AddSamples throughout the episode.
func TestRetrainCapturesConsistentStore(t *testing.T) {
	m := newSmallModeler(t)
	initialRows := m.NumSamples()
	late := smallCollector().Collect(smallApps(), 5, 99)

	var inj *mutatingEvaluator
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		if inj == nil {
			inj = &mutatingEvaluator{
				inner:  inner,
				add:    func() { m.AddSamples(late) },
				panics: 1, // kill the genetic rung once; stepwise then runs
			}
		} else {
			inj.inner = inner
		}
		return inj
	}

	// Background feeders keep mutating the store for the whole episode.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					m.AddSamples(late[:1])
				}
			}
		}(g)
	}

	rep, err := m.TrainResilient(context.Background(), Resilience{StepwiseBudget: 120})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungStepwise {
		t.Fatalf("rung = %v, want stepwise (report: %v)", rep.Rung, rep)
	}

	// The episode captured the store before the first fitness call added
	// rows, so the published model must reflect exactly the initial rows.
	if rep.SampleRows != initialRows {
		t.Errorf("episode captured %d rows, want the %d present at episode start", rep.SampleRows, initialRows)
	}
	if got := m.Snapshot().TrainedRows(); got != initialRows {
		t.Errorf("snapshot trained on %d rows, want %d: late-arriving samples were half-included", got, initialRows)
	}
	if n := m.NumSamples(); n <= initialRows {
		t.Fatalf("store did not grow mid-episode (%d rows): the race was not exercised", n)
	}
	// The version audit trail: the store has moved past the trained version.
	if m.StoreVersion() <= rep.SampleVersion {
		t.Errorf("store version %d not past trained version %d despite mid-episode adds",
			m.StoreVersion(), rep.SampleVersion)
	}

	// The next update picks the grown store up whole.
	m.WrapEvaluator = nil
	grown := m.NumSamples()
	if err := m.Update(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().TrainedRows(); got != grown {
		t.Errorf("post-episode update trained on %d rows, want the full %d", got, grown)
	}
}
