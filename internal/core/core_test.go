package core

import (
	"context"
	"math"
	"testing"

	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/trace"
)

// testShardLen keeps unit tests fast; experiments use DefaultShardLen.
const testShardLen = 20_000

func smallApps() []*trace.App {
	return []*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}
}

func smallCollector() *Collector {
	return &Collector{ShardLen: testShardLen, ShardPool: 20}
}

func TestVarNames(t *testing.T) {
	names := VarNames()
	if len(names) != NumVars || NumVars != 26 {
		t.Fatalf("%d names for %d vars", len(names), NumVars)
	}
	if names[0] != "x1" || names[12] != "x13" || names[13] != "y1" || names[25] != "y13" {
		t.Errorf("names mis-ordered: %v", names)
	}
	if !IsSoftwareVar(0) || !IsSoftwareVar(12) || IsSoftwareVar(13) {
		t.Error("IsSoftwareVar boundary wrong")
	}
}

func TestSampleRowLayout(t *testing.T) {
	s := Sample{HW: hwspace.Baseline(), CPI: 1.5}
	s.X[0] = 42
	row := s.Row()
	if len(row) != NumVars {
		t.Fatalf("row length %d", len(row))
	}
	if row[0] != 42 {
		t.Error("software characteristics must come first")
	}
	if math.Float64bits(row[13]) != math.Float64bits(float64(hwspace.Baseline().Width)) {
		t.Error("hardware vector must follow software characteristics")
	}
}

func TestToDataset(t *testing.T) {
	samples := []Sample{
		{App: "a", AppID: 0, CPI: 1.0, HW: hwspace.Baseline()},
		{App: "b", AppID: 1, CPI: 2.0, HW: hwspace.Baseline()},
	}
	ds := ToDataset(samples)
	if err := ds.Check(); err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 2 || ds.Y[1] != 2.0 || ds.Group[1] != 1 {
		t.Error("dataset mapping wrong")
	}
}

func TestCollectDeterministicAndGrouped(t *testing.T) {
	apps := smallApps()
	a := smallCollector().Collect(apps, 4, 99)
	b := smallCollector().Collect(apps, 4, 99)
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("collected %d, %d samples", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i].CPI) != math.Float64bits(b[i].CPI) || a[i].X != b[i].X || a[i].HW != b[i].HW {
			t.Fatalf("sample %d differs between identical collections", i)
		}
	}
	// Per-app grouping and sane CPI.
	for _, s := range a {
		if s.CPI <= 0.1 || s.CPI > 50 {
			t.Errorf("%s CPI %v implausible", s.App, s.CPI)
		}
		if apps[s.AppID].Name != s.App {
			t.Errorf("app id %d mislabeled %s", s.AppID, s.App)
		}
	}
}

func TestProfileCacheSharedAcrossArchitectures(t *testing.T) {
	// Two samples of the same shard on different architectures must carry
	// identical software characteristics (portability, Section 2.2).
	apps := smallApps()
	col := smallCollector()
	src := rng.New(1)
	hw1 := hwspace.FromIndices(hwspace.Sample(src))
	hw2 := hwspace.FromIndices(hwspace.Sample(src))
	samples := col.CollectPairs(apps, []int{0, 0}, []int{3, 3}, []hwspace.Config{hw1, hw2})
	if samples[0].X != samples[1].X {
		t.Error("same shard produced different profiles on different architectures")
	}
	if math.Float64bits(samples[0].CPI) == math.Float64bits(samples[1].CPI) {
		t.Error("different architectures should usually give different CPI")
	}
}

func trainSmallModeler(t *testing.T) (*Trainer, []Sample) {
	t.Helper()
	apps := smallApps()
	col := smallCollector()
	train := col.Collect(apps, 40, 1)
	valid := col.Collect(apps, 10, 2)
	m := NewTrainer(train)
	m.Search = genetic.Params{PopulationSize: 16, Generations: 5, Seed: 42}
	if err := m.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	return m, valid
}

func TestModelerTrainAndInterpolate(t *testing.T) {
	m, valid := trainSmallModeler(t)
	met, err := m.EvaluateOn(valid)
	if err != nil {
		t.Fatal(err)
	}
	// Even this tiny setup should interpolate well; the full-scale
	// experiment reproduces the paper's 5%.
	if met.MedAPE > 0.15 {
		t.Errorf("interpolation medAPE %v too high", met.MedAPE)
	}
	if met.Pearson < 0.8 {
		t.Errorf("correlation %v too low", met.Pearson)
	}
	if len(m.History()) != 5 {
		t.Errorf("history %d generations", len(m.History()))
	}
	if m.Model() == nil || len(m.Population()) != 16 {
		t.Error("model/population not retained")
	}
}

func TestPredictShardAndApplication(t *testing.T) {
	m, valid := trainSmallModeler(t)
	hw := hwspace.Baseline()
	p1, err := m.PredictShard(valid[0].X, hw)
	if err != nil || p1 <= 0 {
		t.Fatalf("PredictShard = %v, %v", p1, err)
	}
	app, err := m.PredictApplication(
		[]profile.Characteristics{valid[0].X, valid[1].X, valid[2].X}, hw)
	if err != nil || app <= 0 {
		t.Fatalf("PredictApplication = %v, %v", app, err)
	}
	// Application CPI is the mean of shard predictions.
	var sum float64
	for _, x := range []profile.Characteristics{valid[0].X, valid[1].X, valid[2].X} {
		p, _ := m.PredictShard(x, hw)
		sum += p
	}
	if diff := app - sum/3; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("application aggregation wrong: %v vs %v", app, sum/3)
	}
}

func TestUntrainedTrainerErrors(t *testing.T) {
	m := NewTrainer(nil)
	if err := m.Train(context.Background()); err == nil {
		t.Error("training on no samples should fail")
	}
	if _, err := m.PredictShard(profile.Characteristics{}, hwspace.Baseline()); err == nil {
		t.Error("prediction before training should fail")
	}
	if _, err := m.PredictApplication(nil, hwspace.Baseline()); err == nil {
		t.Error("empty application prediction should fail")
	}
	if _, err := m.Perturb(context.Background(), []Sample{{}}, UpdatePolicy{}); err == nil {
		t.Error("Perturb before Train should fail")
	}
}

func TestPerturbAccurateRetainsModel(t *testing.T) {
	m, _ := trainSmallModeler(t)
	// More samples of already-trained applications: the model should be
	// retained (their behavior is shared).
	more := smallCollector().Collect(smallApps(), 8, 77)
	d, err := m.Perturb(context.Background(), more, UpdatePolicy{ErrThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Updated || d.NeedsMoreData {
		t.Errorf("familiar software should not trigger update: %v", d)
	}
	if m.NumSamples() != 120+24 {
		t.Errorf("samples not absorbed: %d", m.NumSamples())
	}
}

func TestPerturbInaccurateFewSamplesAccrues(t *testing.T) {
	m, _ := trainSmallModeler(t)
	// A genuinely new application (FP-heavy bwaves) with too few profiles:
	// the protocol must withhold the update (the error could be an
	// outlier).
	col := smallCollector()
	novel := col.Collect([]*trace.App{trace.Bwaves()}, 3, 5)
	for i := range novel {
		novel[i].AppID = 3
	}
	d, err := m.Perturb(context.Background(), novel, UpdatePolicy{ErrThreshold: 0.01, MinProfiles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !d.NeedsMoreData || d.Updated {
		t.Errorf("3 inaccurate profiles should accrue, not update: %v", d)
	}
}

func TestPerturbTriggersUpdate(t *testing.T) {
	m, _ := trainSmallModeler(t)
	col := smallCollector()
	novel := col.Collect([]*trace.App{trace.GemsFDTD()}, 15, 6)
	for i := range novel {
		novel[i].AppID = 3
	}
	before := m.Model()
	d, err := m.Perturb(context.Background(), novel, UpdatePolicy{ErrThreshold: 0.0001, MinProfiles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Updated {
		t.Fatalf("update should trigger: %v", d)
	}
	if m.Model() == before {
		t.Error("model not refit after update")
	}
	if d.String() == "" {
		t.Error("decision should render")
	}
}

func TestUpdateWarmStartsFromPopulation(t *testing.T) {
	m, valid := trainSmallModeler(t)
	firstBest := m.Population()[0].Fitness
	m.AddSamples(smallCollector().Collect(smallApps(), 10, 30))
	if err := m.Update(context.Background()); err != nil {
		t.Fatal(err)
	}
	met, err := m.EvaluateOn(valid)
	if err != nil {
		t.Fatal(err)
	}
	if met.MedAPE > 0.2 {
		t.Errorf("post-update accuracy degraded badly: %v", met)
	}
	_ = firstBest // the warm start is observable through convergence speed
}

func TestSumOfMedianErrors(t *testing.T) {
	m := NewTrainer([]Sample{{AppID: 0}, {AppID: 1}, {AppID: 1}, {AppID: 2}})
	if got := m.SumOfMedianErrors(0.05); got < 0.1499 || got > 0.1501 {
		t.Errorf("SumOfMedianErrors = %v, want 0.15", got)
	}
}

func TestFitnessSplitsExcludeValidation(t *testing.T) {
	// The evaluator must put weight 0 on validation rows so that candidate
	// models never train on them.
	samples := smallCollector().Collect(smallApps(), 20, 12)
	ds := ToDataset(samples)
	ev, err := newEvaluator(ds, FitnessConfig{}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	zeroed := 0
	for _, w := range ev.weights {
		if w == 0 {
			zeroed++
		}
	}
	total := 0
	for _, rows := range ev.valRows {
		total += len(rows)
	}
	if zeroed == 0 || zeroed != total {
		t.Errorf("validation rows %d but %d zero weights", total, zeroed)
	}
	// Fitness of a reasonable spec must be finite and positive.
	spec := regress.Spec{Codes: make([]regress.TransformCode, NumVars)}
	for i := range spec.Codes {
		spec.Codes[i] = regress.Linear
	}
	f := ev.Fitness(spec)
	if f <= 0 || f > 10 {
		t.Errorf("fitness %v implausible", f)
	}
}

// TestAddSamplesInvalidatesEvaluator: profiles appended after a training run
// must influence the next one — the cached featurized evaluator is keyed on
// the sample-store version and rebuilt over the full store, never served
// stale.
func TestAddSamplesInvalidatesEvaluator(t *testing.T) {
	m, _ := trainSmallModeler(t)
	firstRows := m.Snapshot().TrainedRows()
	if firstRows != 120 {
		t.Fatalf("trained on %d rows, want 120", firstRows)
	}
	before := m.Model()

	// A genuinely new FP-heavy application shifts the fit if it is seen.
	added := smallCollector().Collect([]*trace.App{trace.Bwaves()}, 20, 404)
	for i := range added {
		added[i].AppID = 3
	}
	m.AddSamples(added)
	if err := m.Update(context.Background()); err != nil {
		t.Fatal(err)
	}

	snap := m.Snapshot()
	if snap.TrainedRows() != firstRows+len(added) {
		t.Errorf("refit saw %d rows, want %d — appended samples ignored",
			snap.TrainedRows(), firstRows+len(added))
	}
	after := m.Model()
	if after == before {
		t.Fatal("model not refit after AddSamples")
	}
	changed := len(after.Coef) != len(before.Coef)
	for j := 0; !changed && j < len(after.Coef); j++ {
		changed = math.Float64bits(after.Coef[j]) != math.Float64bits(before.Coef[j])
	}
	if !changed {
		t.Error("appended samples had no influence on the fitted coefficients")
	}
}

// TestSamplesReturnsCopy: mutating the slice returned by Samples must not
// reach the trainer's store (all mutation goes through AddSamples or
// SetSamples, which version the cached evaluator state).
func TestSamplesReturnsCopy(t *testing.T) {
	m := NewTrainer([]Sample{{App: "a", CPI: 1}, {App: "b", CPI: 2}})
	got := m.Samples()
	got[0].CPI = 99
	if m.Samples()[0].CPI != 1 {
		t.Error("Samples exposed the internal store")
	}
}
