package core

import (
	"context"
	"testing"

	"hsmodel/internal/genetic"
	"hsmodel/internal/trace"
)

// gramTestTrainer collects a small sample store and returns a trainer with a
// quick search configuration.
func gramTestTrainer(t *testing.T, samplesPerApp int) *Trainer {
	t.Helper()
	col := &Collector{ShardLen: 20_000, ShardPool: 8}
	apps := []*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Astar()}
	m := NewTrainer(col.Collect(apps, samplesPerApp, 7))
	m.Search = genetic.Params{PopulationSize: 14, Generations: 3, Seed: 7, Workers: 2}
	return m
}

// TestTrainUsesGramPath: after a genetic training run, the evaluator's Gram
// layer must have served fits — and mostly from the Cholesky path, since the
// collected profile store is well-conditioned.
func TestTrainUsesGramPath(t *testing.T) {
	m := gramTestTrainer(t, 30)
	if err := m.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.FitPathStats()
	total := s.GramFits + s.QRFallbacks
	if total == 0 {
		t.Fatal("no candidate fits recorded by the Gram layer")
	}
	if s.GramFits == 0 {
		t.Errorf("all %d fits fell back to QR; Gram path never used", total)
	}
	if s.EntryMisses == 0 || s.EntryHits == 0 {
		t.Errorf("entry counters not moving: hits=%d misses=%d", s.EntryHits, s.EntryMisses)
	}
	t.Logf("gram=%d qr=%d entry hits=%d misses=%d", s.GramFits, s.QRFallbacks, s.EntryHits, s.EntryMisses)
}

// TestTrainReportCarriesFitPathCounters: TrainResilient surfaces the Gram
// counters in its report.
func TestTrainReportCarriesFitPathCounters(t *testing.T) {
	m := gramTestTrainer(t, 30)
	rep, err := m.TrainResilient(context.Background(), Resilience{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungGenetic {
		t.Fatalf("rung = %v, want genetic", rep.Rung)
	}
	if rep.GramFits+rep.QRFallbacks == 0 {
		t.Error("TrainReport has zero fit-path counters")
	}
	if s := rep.String(); s == "" {
		t.Error("empty report string")
	}
}

// TestGramCacheInvalidatedOnSampleMutation: AddSamples must invalidate the
// cached evaluator, so the next training run rebuilds the Gram cache (its
// cross-products would otherwise describe a stale dataset version).
func TestGramCacheInvalidatedOnSampleMutation(t *testing.T) {
	m := gramTestTrainer(t, 24)
	ctx := context.Background()
	if err := m.Train(ctx); err != nil {
		t.Fatal(err)
	}
	gc1 := m.cache.ev.gc
	if gc1 == nil {
		t.Fatal("no Gram cache after training")
	}

	// Untouched samples: Update must reuse the same Gram cache.
	if err := m.Update(ctx); err != nil {
		t.Fatal(err)
	}
	if m.cache.ev.gc != gc1 {
		t.Error("Update over unchanged samples rebuilt the Gram cache")
	}

	// Mutated samples: the evaluator (and with it the Gram cache) rebuilds.
	col := &Collector{ShardLen: 20_000, ShardPool: 8}
	m.AddSamples(col.Collect([]*trace.App{trace.Sjeng()}, 12, 99))
	if err := m.Update(ctx); err != nil {
		t.Fatal(err)
	}
	if m.cache.ev.gc == gc1 {
		t.Error("AddSamples did not invalidate the Gram cache")
	}
	if n := m.cache.ev.fz.NumRows(); n != m.NumSamples() {
		t.Errorf("rebuilt featurizer has %d rows, store has %d", n, m.NumSamples())
	}
}
