package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"

	"hsmodel/internal/family"
	"hsmodel/internal/family/spline"
	"hsmodel/internal/genetic"
)

// constModel is a fixed-prediction family.Model for harness tests.
type constModel struct {
	fam string
	val float64
}

func (m constModel) Predict([]float64) float64 { return m.val }
func (m constModel) PredictBatch(rows [][]float64, out []float64) {
	for i := range rows {
		out[i] = m.val
	}
}
func (m constModel) Describe() family.Description {
	return family.Description{Family: m.fam, Spec: "const"}
}
func (m constModel) Payload() (json.RawMessage, error) {
	return json.Marshal(m.val)
}

// fakeFamily is a scriptable family.Family: it returns a fixed model or a
// fixed error and counts Fit calls.
type fakeFamily struct {
	name string
	val  float64
	err  error
	fits int
}

func (f *fakeFamily) Name() string { return f.name }
func (f *fakeFamily) Fit(ctx context.Context, in family.FitInput) (family.FitOutput, error) {
	f.fits++
	if err := ctx.Err(); err != nil {
		return family.FitOutput{}, err
	}
	if f.err != nil {
		return family.FitOutput{}, f.err
	}
	return family.FitOutput{Model: constModel{fam: f.name, val: f.val}}, nil
}
func (f *fakeFamily) Load(payload json.RawMessage, numVars int) (family.Model, error) {
	var val float64
	if err := json.Unmarshal(payload, &val); err != nil {
		return nil, err
	}
	return constModel{fam: f.name, val: val}, nil
}

// TestFamilySelectionPublishesWinner runs a real selection round over all
// built-in families and checks the published snapshot, report, and
// scoreboard are consistent: the winner's score is the minimum, the rung is
// RungFamily, and the snapshot serves the winning family.
func TestFamilySelectionPublishesWinner(t *testing.T) {
	m := newSmallModeler(t)
	m.Families = DefaultFamilies()
	rep, err := m.TrainResilient(context.Background(), Resilience{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungFamily {
		t.Fatalf("rung = %v, want family (report: %v)", rep.Rung, rep)
	}
	if len(rep.FamilyErrors) > 0 {
		t.Fatalf("family fits failed: %v", rep.FamilyErrors)
	}
	if len(rep.FamilyScores) != 3 {
		t.Fatalf("scores for %d families, want 3: %v", len(rep.FamilyScores), rep.FamilyScores)
	}
	winScore, ok := rep.FamilyScores[rep.Family]
	if !ok {
		t.Fatalf("winner %q has no score in %v", rep.Family, rep.FamilyScores)
	}
	for name, score := range rep.FamilyScores {
		if score < winScore {
			t.Errorf("family %s scored %.6f, better than winner %s's %.6f",
				name, score, rep.Family, winScore)
		}
	}
	snap := m.Snapshot()
	if snap.Family() != rep.Family {
		t.Errorf("snapshot family %q, report family %q", snap.Family(), rep.Family)
	}
	if snap.Rung() != RungFamily {
		t.Errorf("snapshot rung %v, want family", snap.Rung())
	}
	if got := snap.FamilyScores(); len(got) != len(rep.FamilyScores) {
		t.Errorf("snapshot scores %v, want %v", got, rep.FamilyScores)
	}
	if desc := snap.Describe(); desc.Family != rep.Family {
		t.Errorf("Describe().Family = %q, want %q", desc.Family, rep.Family)
	}
	// The published winner must serve predictions.
	s := m.Samples()[0]
	if _, err := m.PredictShard(s.X, s.HW); err != nil {
		t.Errorf("PredictShard after selection: %v", err)
	}
}

// TestFamilySelectionSplineOnlyMatchesClassicPath: a selection round over
// only the spline family must fit the exact model the classic path fits —
// the refactor's behavior-preservation contract, checked bit-for-bit.
func TestFamilySelectionSplineOnlyMatchesClassicPath(t *testing.T) {
	classic := newSmallModeler(t)
	if err := classic.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	selected := newSmallModeler(t)
	selected.Families = []family.Family{spline.New()}
	if err := selected.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	want, got := classic.Model(), selected.Model()
	if got == nil || want == nil {
		t.Fatal("missing spline regression on one path")
	}
	if want.Spec.String() != got.Spec.String() {
		t.Fatalf("specs diverge: classic %s, selected %s", want.Spec, got.Spec)
	}
	if len(want.Coef) != len(got.Coef) {
		t.Fatalf("coef counts diverge: %d vs %d", len(want.Coef), len(got.Coef))
	}
	for i := range want.Coef {
		if math.Float64bits(want.Coef[i]) != math.Float64bits(got.Coef[i]) {
			t.Fatalf("coef %d diverges: %v vs %v", i, want.Coef[i], got.Coef[i])
		}
	}
	if classic.Snapshot().Rung() != RungGenetic {
		t.Errorf("classic rung %v, want genetic", classic.Snapshot().Rung())
	}
}

// TestFamilySelectionTieBreaksDeterministically: two families with
// bit-identical scores must resolve by the seeded draw, reproducibly.
func TestFamilySelectionTieBreaksDeterministically(t *testing.T) {
	samples := smallCollector().Collect(smallApps(), 20, 1)
	ds := ToDataset(samples)
	fams := []family.Family{
		&fakeFamily{name: "beta", val: 1.5},
		&fakeFamily{name: "alpha", val: 1.5},
	}
	fc := FitnessConfig{Seed: 9}
	var winner string
	for round := 0; round < 3; round++ {
		sel, err := SelectFamily(context.Background(), ds, fc, true, true, genetic.Params{}, fams)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(sel.Scores["alpha"]) != math.Float64bits(sel.Scores["beta"]) {
			t.Fatalf("scores not tied: %v", sel.Scores)
		}
		if sel.Winner != "alpha" && sel.Winner != "beta" {
			t.Fatalf("winner %q not among tied families", sel.Winner)
		}
		if round == 0 {
			winner = sel.Winner
		} else if sel.Winner != winner {
			t.Fatalf("tiebreak not deterministic: round 0 chose %q, round %d chose %q",
				winner, round, sel.Winner)
		}
	}
	// A tie is broken by the split seed: the draw must be reproducible from
	// FitnessConfig.Seed alone, not process state.
	sel, err := SelectFamily(context.Background(), ds, fc, true, true, genetic.Params{}, fams)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Winner != winner {
		t.Fatalf("same seed re-ran chose %q, want %q", sel.Winner, winner)
	}
}

// TestFamilySelectionSkipsFailingFamily: a family whose Fit errors is
// recorded and skipped; the round still publishes the best survivor.
func TestFamilySelectionSkipsFailingFamily(t *testing.T) {
	m := newSmallModeler(t)
	bad := &fakeFamily{name: "bad", err: errors.New("synthetic fit failure")}
	m.Families = []family.Family{bad, spline.New()}
	rep, err := m.TrainResilient(context.Background(), Resilience{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungFamily || rep.Family != spline.FamilyName {
		t.Fatalf("rung=%v family=%q, want family/spline (report: %v)", rep.Rung, rep.Family, rep)
	}
	if bad.fits != 1 {
		t.Errorf("failing family fitted %d times, want 1", bad.fits)
	}
	if ferr, ok := rep.FamilyErrors["bad"]; !ok || ferr == nil {
		t.Errorf("report did not record the failing family: %v", rep.FamilyErrors)
	}
	if _, scored := rep.FamilyScores["bad"]; scored {
		t.Errorf("failing family must not be scored: %v", rep.FamilyScores)
	}
	if !m.Trained() {
		t.Error("round with one failing family must still publish a model")
	}
}

// TestFamilySelectionAllFailDegradesToStepwise: when every family fails, the
// top rung errors with ErrAllFamiliesFailed and the resilient ladder falls
// to the stepwise spline floor.
func TestFamilySelectionAllFailDegradesToStepwise(t *testing.T) {
	m := newSmallModeler(t)
	m.Families = []family.Family{
		&fakeFamily{name: "bad1", err: errors.New("boom 1")},
		&fakeFamily{name: "bad2", err: errors.New("boom 2")},
	}
	rep, err := m.TrainResilient(context.Background(), Resilience{StepwiseBudget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungStepwise {
		t.Fatalf("rung = %v, want stepwise (report: %v)", rep.Rung, rep)
	}
	if !errors.Is(rep.GeneticErr, ErrAllFamiliesFailed) {
		t.Errorf("GeneticErr = %v, want ErrAllFamiliesFailed", rep.GeneticErr)
	}
	if len(rep.FamilyErrors) != 2 {
		t.Errorf("recorded %d family errors, want 2: %v", len(rep.FamilyErrors), rep.FamilyErrors)
	}
	if m.Snapshot().Family() != spline.FamilyName {
		t.Errorf("stepwise floor family %q, want spline", m.Snapshot().Family())
	}
}

// TestFamilySelectionCancellation: cancelling mid-round aborts the episode
// and never replaces the served snapshot.
func TestFamilySelectionCancellation(t *testing.T) {
	m := newSmallModeler(t)
	if err := m.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	incumbent := m.Snapshot()

	blocker := &fakeFamily{name: "slow"}
	m.Families = []family.Family{blocker, spline.New()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.Train(ctx)
	if err == nil {
		t.Fatal("cancelled selection round must error")
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, genetic.ErrCancelled) {
		t.Errorf("err = %v, want a cancellation error", err)
	}
	if m.Snapshot() != incumbent {
		t.Error("cancelled round replaced the served snapshot")
	}
}

// TestSelectFamilyValidation covers the standalone harness's error paths.
func TestSelectFamilyValidation(t *testing.T) {
	samples := smallCollector().Collect(smallApps(), 10, 1)
	ds := ToDataset(samples)
	if _, err := SelectFamily(context.Background(), ds, FitnessConfig{}, true, true, genetic.Params{}, nil); err == nil {
		t.Error("no registered families must error")
	}
	fams := []family.Family{&fakeFamily{name: "a", err: fmt.Errorf("nope")}}
	sel, err := SelectFamily(context.Background(), ds, FitnessConfig{}, true, true, genetic.Params{}, fams)
	if !errors.Is(err, ErrAllFamiliesFailed) {
		t.Errorf("err = %v, want ErrAllFamiliesFailed", err)
	}
	if sel == nil || sel.Errors["a"] == nil {
		t.Errorf("partial result must carry the per-family errors: %+v", sel)
	}
}
