package core

import (
	"context"
	"math"
	"testing"

	"hsmodel/internal/genetic"
	"hsmodel/internal/spmv"
)

// TestFamiliesSmoke is the CI gate for the model-family subsystem (the
// `make families-smoke` target): every built-in family fits the spmv domain
// corpus — the 10-variable space of Section 5.3, exercising a non-26-var
// arity through the whole harness — selection completes with a scoreboard
// covering all three families, and the chosen family is never worse than the
// reference spline baseline on the shared validation rows.
func TestFamiliesSmoke(t *testing.T) {
	corpus := spmv.Corpus()
	if len(corpus) < 2 {
		t.Fatalf("spmv corpus has %d matrices, want at least 2", len(corpus))
	}
	// Two matrices keep the smoke fast; each contributes one "application"
	// group so the per-app weighted splits and per-app scoring both engage.
	var points []spmv.Point
	var group []int
	for i, spec := range corpus[:2] {
		study := spmv.NewStudy(spec)
		pts := study.Sample(60, 7+uint64(i))
		points = append(points, pts...)
		for range pts {
			group = append(group, i)
		}
	}
	ds := spmv.BuildDomainDataset(points, spmv.PredictMFlops)
	ds.Group = group

	sel, err := SelectFamily(context.Background(), ds, FitnessConfig{Seed: 5},
		true, true, genetic.Params{PopulationSize: 16, Generations: 6, Seed: 42},
		DefaultFamilies())
	if err != nil {
		t.Fatalf("selection did not complete: %v (per-family: %v)", err, sel.Errors)
	}
	for name, ferr := range sel.Errors {
		t.Errorf("family %s failed to fit the domain corpus: %v", name, ferr)
	}
	if len(sel.Scores) != len(DefaultFamilies()) {
		t.Fatalf("scoreboard %v does not cover every built-in family", sel.Scores)
	}
	winner, ok := sel.Scores[sel.Winner]
	if !ok || sel.Model == nil {
		t.Fatalf("winner %q missing from scoreboard %v or has no model", sel.Winner, sel.Scores)
	}
	baseline := sel.Scores["spline"]
	if winner > baseline {
		t.Errorf("chosen family %s (CV MedAPE %.4f) is worse than the spline baseline (%.4f)",
			sel.Winner, winner, baseline)
	}
	t.Logf("winner %s; scores %v", sel.Winner, sel.Scores)

	// The winner must predict finite values over the whole domain dataset.
	for i := 0; i < ds.NumRows(); i++ {
		p := sel.Model.Predict(ds.X.Row(i))
		if p <= 0 || math.IsNaN(p) {
			t.Fatalf("row %d: winner predicts %v for a positive MFlops response", i, p)
		}
	}
}
