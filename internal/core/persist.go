package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hsmodel/internal/family/spline"
	"hsmodel/internal/regress"
)

// SavedModel is the serializable form of a model Snapshot: the owning
// family's name plus its self-contained payload (for the reference spline
// family, the fitted regression's specification, preprocessing, and
// coefficients), the shard length its profiles were measured at, so a loaded
// model profiles new shards consistently, and provenance metadata (which
// ladder rung produced it, how many rows it was fitted on, the per-family
// selection scores when the selection harness chose it).
type SavedModel struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// ShardLen is the profiling shard length in instructions.
	ShardLen int `json:"shard_len"`
	// Rung names the degradation-ladder rung that produced the model
	// ("genetic", "stepwise", "last-good", "family"). Absent in version-2
	// files; unknown names load as RungNone.
	Rung string `json:"rung,omitempty"`
	// TrainedRows is the number of profile rows the model was fitted on.
	// Absent in version-2 files.
	TrainedRows int `json:"trained_rows,omitempty"`
	// Family names the model family that owns Payload. Absent before
	// version 4 (those files are implicitly spline).
	Family string `json:"family,omitempty"`
	// FamilyScores records the per-family selection scores of the round
	// that chose this model, when one ran.
	FamilyScores map[string]float64 `json:"family_scores,omitempty"`
	// Checksum is the hex SHA-256 of the payload's compact JSON encoding
	// (for version ≤ 3, of the model's canonical encoding). Load recomputes
	// it so torn or bit-rotted files are detected instead of half-loaded.
	// Payload JSON is deterministic: the structs have fixed field order and
	// float64 round-trips exactly through encoding/json.
	Checksum string `json:"checksum"`
	// Payload is the family-owned model encoding (version ≥ 4).
	Payload json.RawMessage `json:"payload,omitempty"`
	// Model is the fitted regression of pre-family files (version ≤ 3).
	Model *regress.Model `json:"model,omitempty"`
}

// savedModelVersion is the current format version. Version 2 added the
// payload checksum; version 3 added rung and trained_rows provenance;
// version 4 moved the model into a family-owned payload keyed by the family
// name (with selection scores). Version-2/3 files still load as spline
// models; version-1 files are rejected with ErrModelVersion.
const savedModelVersion = 4

// minLoadableVersion is the oldest format LoadSnapshot accepts.
const minLoadableVersion = 2

// Typed persistence errors, distinguishable with errors.Is. They are the
// contract the degradation ladder and operators rely on: each names a
// different corruption mode of a model file.
var (
	// ErrModelCorrupt: the file is not valid JSON (torn write, garbage).
	ErrModelCorrupt = errors.New("core: model file is not valid JSON")
	// ErrModelVersion: the format version is not a loadable one.
	ErrModelVersion = errors.New("core: model file version mismatch")
	// ErrModelIncomplete: structurally valid JSON missing required parts.
	ErrModelIncomplete = errors.New("core: saved model is incomplete")
	// ErrModelShape: the model was trained over a different variable space.
	ErrModelShape = errors.New("core: saved model variable count mismatch")
	// ErrModelChecksum: the payload does not match its recorded checksum.
	ErrModelChecksum = errors.New("core: model payload checksum mismatch")
	// ErrModelFamily: the family name is unknown to this build, or the
	// family rejected its payload.
	ErrModelFamily = errors.New("core: model family unknown or payload invalid")
)

// modelChecksum returns the hex SHA-256 of the model's JSON encoding (the
// version ≤ 3 convention).
func modelChecksum(m *regress.Model) (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// payloadChecksum returns the hex SHA-256 of the payload's compact JSON
// encoding. Compaction first is load-bearing: Save writes the file with
// MarshalIndent, which re-indents the embedded raw payload, so the bytes on
// disk are whitespace-shifted relative to the family's Payload output. Both
// Save and Load therefore hash the compacted form, which survives any
// JSON-preserving rewrite of the file.
func payloadChecksum(payload json.RawMessage) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Save serializes the snapshot to path as indented JSON. The write is
// crash-safe: data goes to a temp file in the same directory, is synced, and
// is renamed over path, so a crash mid-save leaves either the old model or
// the new one — never a torn file.
func (s *Snapshot) Save(path string) error {
	if !s.Trained() {
		return errors.New("core: Save before Train")
	}
	payload, err := s.fam.Payload()
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	sum, err := payloadChecksum(payload)
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	data, err := json.MarshalIndent(SavedModel{
		Version:      savedModelVersion,
		ShardLen:     s.shardLen,
		Rung:         s.rung.String(),
		TrainedRows:  s.trainedRows,
		Family:       s.famName,
		FamilyScores: s.scores,
		Checksum:     sum,
		Payload:      payload,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// Save persists the trainer's currently served snapshot, overriding its
// recorded shard length when shardLen is positive. It errors before the
// first successful training run.
func (m *Trainer) Save(path string, shardLen int) error {
	s := m.Snapshot()
	if !s.Trained() {
		return errors.New("core: Save before Train")
	}
	if shardLen > 0 && shardLen != s.shardLen {
		s = newFamilySnapshot(s.famName, s.fam, s.scores, shardLen, s.rung, s.trainedRows)
	}
	return s.Save(path)
}

// LoadSnapshot reads a snapshot saved by Save, verifying format version,
// family, structural completeness, variable count, and payload checksum;
// each failure mode returns a distinct typed error (see ErrModel*). The
// returned Snapshot predicts immediately; hand it to Trainer.Adopt to serve
// it from a trainer and continue training with AddSamples and Update.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var saved SavedModel
	if err := json.Unmarshal(data, &saved); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelCorrupt, err)
	}
	if saved.Version < minLoadableVersion || saved.Version > savedModelVersion {
		return nil, fmt.Errorf("%w: found %d, want %d–%d",
			ErrModelVersion, saved.Version, minLoadableVersion, savedModelVersion)
	}
	if saved.Version < 4 {
		return loadLegacy(saved)
	}
	if saved.Family == "" || len(saved.Payload) == 0 {
		return nil, ErrModelIncomplete
	}
	fam := FamilyByName(saved.Family)
	if fam == nil {
		return nil, fmt.Errorf("%w: %q", ErrModelFamily, saved.Family)
	}
	sum, err := payloadChecksum(saved.Payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelCorrupt, err)
	}
	if sum != saved.Checksum {
		return nil, fmt.Errorf("%w: stored %.12s…, computed %.12s…",
			ErrModelChecksum, saved.Checksum, sum)
	}
	model, err := fam.Load(saved.Payload, NumVars)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelFamily, err)
	}
	return NewFamilySnapshot(saved.Family, model, saved.FamilyScores,
		saved.ShardLen, parseRung(saved.Rung), saved.TrainedRows), nil
}

// loadLegacy handles version-2/3 files: a bare spline regression under the
// "model" key, checksummed over its own canonical encoding.
func loadLegacy(saved SavedModel) (*Snapshot, error) {
	if saved.Model == nil || saved.Model.Prep == nil || len(saved.Model.Coef) == 0 {
		return nil, ErrModelIncomplete
	}
	if saved.Model.Prep.NumVars() != NumVars {
		return nil, fmt.Errorf("%w: %d variables, want %d",
			ErrModelShape, saved.Model.Prep.NumVars(), NumVars)
	}
	sum, err := modelChecksum(saved.Model)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelCorrupt, err)
	}
	if sum != saved.Checksum {
		return nil, fmt.Errorf("%w: stored %.12s…, computed %.12s…",
			ErrModelChecksum, saved.Checksum, sum)
	}
	return NewFamilySnapshot(spline.FamilyName, spline.Wrap(saved.Model), nil,
		saved.ShardLen, parseRung(saved.Rung), saved.TrainedRows), nil
}
