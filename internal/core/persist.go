package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"hsmodel/internal/regress"
)

// SavedModel is the serializable form of a trained integrated model: the
// fitted regression (specification, preprocessing, coefficients — all
// self-contained) plus the shard length its profiles were measured at, so a
// loaded model profiles new shards consistently.
type SavedModel struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// ShardLen is the profiling shard length in instructions.
	ShardLen int `json:"shard_len"`
	// Model is the fitted regression over the 26 integrated variables.
	Model *regress.Model `json:"model"`
}

// savedModelVersion is the current format version.
const savedModelVersion = 1

// Save serializes the trained model to path as indented JSON.
func (m *Modeler) Save(path string, shardLen int) error {
	if m.model == nil {
		return errors.New("core: Save before Train")
	}
	if shardLen <= 0 {
		shardLen = DefaultShardLen
	}
	data, err := json.MarshalIndent(SavedModel{
		Version:  savedModelVersion,
		ShardLen: shardLen,
		Model:    m.model,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a model saved by Save. The returned Modeler predicts but holds
// no samples; call AddSamples and Update to continue training it.
func Load(path string) (*Modeler, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var saved SavedModel
	if err := json.Unmarshal(data, &saved); err != nil {
		return nil, 0, fmt.Errorf("core: decoding model: %w", err)
	}
	if saved.Version != savedModelVersion {
		return nil, 0, fmt.Errorf("core: model format version %d, want %d", saved.Version, savedModelVersion)
	}
	if saved.Model == nil || saved.Model.Prep == nil || len(saved.Model.Coef) == 0 {
		return nil, 0, errors.New("core: saved model is incomplete")
	}
	if saved.Model.Prep.NumVars() != NumVars {
		return nil, 0, fmt.Errorf("core: saved model has %d variables, want %d",
			saved.Model.Prep.NumVars(), NumVars)
	}
	m := NewModeler(nil)
	m.model = saved.Model
	return m, saved.ShardLen, nil
}
