package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hsmodel/internal/regress"
)

// SavedModel is the serializable form of a trained integrated model: the
// fitted regression (specification, preprocessing, coefficients — all
// self-contained) plus the shard length its profiles were measured at, so a
// loaded model profiles new shards consistently.
type SavedModel struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// ShardLen is the profiling shard length in instructions.
	ShardLen int `json:"shard_len"`
	// Checksum is the hex SHA-256 of the model's canonical JSON encoding.
	// Load recomputes it so torn or bit-rotted files are detected instead of
	// half-loaded. Model JSON is deterministic: the struct has a fixed field
	// order and float64 round-trips exactly through encoding/json.
	Checksum string `json:"checksum"`
	// Model is the fitted regression over the 26 integrated variables.
	Model *regress.Model `json:"model"`
}

// savedModelVersion is the current format version. Version 2 added the
// payload checksum; version-1 files are rejected with ErrModelVersion.
const savedModelVersion = 2

// Typed persistence errors, distinguishable with errors.Is. They are the
// contract the degradation ladder and operators rely on: each names a
// different corruption mode of a model file.
var (
	// ErrModelCorrupt: the file is not valid JSON (torn write, garbage).
	ErrModelCorrupt = errors.New("core: model file is not valid JSON")
	// ErrModelVersion: the format version is not the current one.
	ErrModelVersion = errors.New("core: model file version mismatch")
	// ErrModelIncomplete: structurally valid JSON missing required parts.
	ErrModelIncomplete = errors.New("core: saved model is incomplete")
	// ErrModelShape: the model was trained over a different variable space.
	ErrModelShape = errors.New("core: saved model variable count mismatch")
	// ErrModelChecksum: the payload does not match its recorded checksum.
	ErrModelChecksum = errors.New("core: model payload checksum mismatch")
)

// modelChecksum returns the hex SHA-256 of the model's JSON encoding.
func modelChecksum(m *regress.Model) (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Save serializes the trained model to path as indented JSON. The write is
// crash-safe: data goes to a temp file in the same directory, is synced, and
// is renamed over path, so a crash mid-save leaves either the old model or
// the new one — never a torn file.
func (m *Modeler) Save(path string, shardLen int) error {
	if m.model == nil {
		return errors.New("core: Save before Train")
	}
	if shardLen <= 0 {
		shardLen = DefaultShardLen
	}
	sum, err := modelChecksum(m.model)
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	data, err := json.MarshalIndent(SavedModel{
		Version:  savedModelVersion,
		ShardLen: shardLen,
		Checksum: sum,
		Model:    m.model,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// Load reads a model saved by Save, verifying format version, structural
// completeness, variable count, and payload checksum; each failure mode
// returns a distinct typed error (see ErrModel*). The returned Modeler
// predicts but holds no samples; call AddSamples and Update to continue
// training it.
func Load(path string) (*Modeler, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var saved SavedModel
	if err := json.Unmarshal(data, &saved); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrModelCorrupt, err)
	}
	if saved.Version != savedModelVersion {
		return nil, 0, fmt.Errorf("%w: found %d, want %d", ErrModelVersion, saved.Version, savedModelVersion)
	}
	if saved.Model == nil || saved.Model.Prep == nil || len(saved.Model.Coef) == 0 {
		return nil, 0, ErrModelIncomplete
	}
	if saved.Model.Prep.NumVars() != NumVars {
		return nil, 0, fmt.Errorf("%w: %d variables, want %d",
			ErrModelShape, saved.Model.Prep.NumVars(), NumVars)
	}
	sum, err := modelChecksum(saved.Model)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrModelCorrupt, err)
	}
	if sum != saved.Checksum {
		return nil, 0, fmt.Errorf("%w: stored %.12s…, computed %.12s…",
			ErrModelChecksum, saved.Checksum, sum)
	}
	m := NewModeler(nil)
	m.model = saved.Model
	return m, saved.ShardLen, nil
}
