package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hsmodel/internal/regress"
)

// SavedModel is the serializable form of a model Snapshot: the fitted
// regression (specification, preprocessing, coefficients — all
// self-contained) plus the shard length its profiles were measured at, so a
// loaded model profiles new shards consistently, and provenance metadata
// (which ladder rung produced it, how many rows it was fitted on).
type SavedModel struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// ShardLen is the profiling shard length in instructions.
	ShardLen int `json:"shard_len"`
	// Rung names the degradation-ladder rung that produced the model
	// ("genetic", "stepwise", "last-good"). Absent in version-2 files;
	// unknown names load as RungNone.
	Rung string `json:"rung,omitempty"`
	// TrainedRows is the number of profile rows the model was fitted on.
	// Absent in version-2 files.
	TrainedRows int `json:"trained_rows,omitempty"`
	// Checksum is the hex SHA-256 of the model's canonical JSON encoding.
	// Load recomputes it so torn or bit-rotted files are detected instead of
	// half-loaded. Model JSON is deterministic: the struct has a fixed field
	// order and float64 round-trips exactly through encoding/json.
	Checksum string `json:"checksum"`
	// Model is the fitted regression over the 26 integrated variables.
	Model *regress.Model `json:"model"`
}

// savedModelVersion is the current format version. Version 2 added the
// payload checksum; version 3 added rung and trained_rows provenance.
// Version-2 files still load (the metadata defaults to zero); version-1
// files are rejected with ErrModelVersion.
const savedModelVersion = 3

// minLoadableVersion is the oldest format LoadSnapshot accepts.
const minLoadableVersion = 2

// Typed persistence errors, distinguishable with errors.Is. They are the
// contract the degradation ladder and operators rely on: each names a
// different corruption mode of a model file.
var (
	// ErrModelCorrupt: the file is not valid JSON (torn write, garbage).
	ErrModelCorrupt = errors.New("core: model file is not valid JSON")
	// ErrModelVersion: the format version is not a loadable one.
	ErrModelVersion = errors.New("core: model file version mismatch")
	// ErrModelIncomplete: structurally valid JSON missing required parts.
	ErrModelIncomplete = errors.New("core: saved model is incomplete")
	// ErrModelShape: the model was trained over a different variable space.
	ErrModelShape = errors.New("core: saved model variable count mismatch")
	// ErrModelChecksum: the payload does not match its recorded checksum.
	ErrModelChecksum = errors.New("core: model payload checksum mismatch")
)

// modelChecksum returns the hex SHA-256 of the model's JSON encoding.
func modelChecksum(m *regress.Model) (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Save serializes the snapshot to path as indented JSON. The write is
// crash-safe: data goes to a temp file in the same directory, is synced, and
// is renamed over path, so a crash mid-save leaves either the old model or
// the new one — never a torn file.
func (s *Snapshot) Save(path string) error {
	if s == nil || s.model == nil {
		return errors.New("core: Save before Train")
	}
	sum, err := modelChecksum(s.model)
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	data, err := json.MarshalIndent(SavedModel{
		Version:     savedModelVersion,
		ShardLen:    s.shardLen,
		Rung:        s.rung.String(),
		TrainedRows: s.trainedRows,
		Checksum:    sum,
		Model:       s.model,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// Save persists the trainer's currently served snapshot, overriding its
// recorded shard length when shardLen is positive. It errors before the
// first successful training run.
func (m *Trainer) Save(path string, shardLen int) error {
	s := m.Snapshot()
	if s == nil || s.model == nil {
		return errors.New("core: Save before Train")
	}
	if shardLen > 0 && shardLen != s.shardLen {
		s = NewSnapshot(s.model, shardLen, s.rung, s.trainedRows)
	}
	return s.Save(path)
}

// LoadSnapshot reads a snapshot saved by Save, verifying format version,
// structural completeness, variable count, and payload checksum; each
// failure mode returns a distinct typed error (see ErrModel*). The returned
// Snapshot predicts immediately; hand it to Trainer.Adopt to serve it from a
// trainer and continue training with AddSamples and Update.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var saved SavedModel
	if err := json.Unmarshal(data, &saved); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelCorrupt, err)
	}
	if saved.Version < minLoadableVersion || saved.Version > savedModelVersion {
		return nil, fmt.Errorf("%w: found %d, want %d–%d",
			ErrModelVersion, saved.Version, minLoadableVersion, savedModelVersion)
	}
	if saved.Model == nil || saved.Model.Prep == nil || len(saved.Model.Coef) == 0 {
		return nil, ErrModelIncomplete
	}
	if saved.Model.Prep.NumVars() != NumVars {
		return nil, fmt.Errorf("%w: %d variables, want %d",
			ErrModelShape, saved.Model.Prep.NumVars(), NumVars)
	}
	sum, err := modelChecksum(saved.Model)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrModelCorrupt, err)
	}
	if sum != saved.Checksum {
		return nil, fmt.Errorf("%w: stored %.12s…, computed %.12s…",
			ErrModelChecksum, saved.Checksum, sum)
	}
	return NewSnapshot(saved.Model, saved.ShardLen, parseRung(saved.Rung), saved.TrainedRows), nil
}
