package core

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"hsmodel/internal/faultinject"
	"hsmodel/internal/genetic"
)

// newSmallModeler returns an untrained trainer over a small sample set, with
// search parameters sized for unit tests.
func newSmallModeler(t *testing.T) *Trainer {
	t.Helper()
	m := NewTrainer(smallCollector().Collect(smallApps(), 40, 1))
	m.Search = genetic.Params{PopulationSize: 16, Generations: 5, Seed: 42}
	return m
}

func TestTrainResilientHealthyUsesGeneticRung(t *testing.T) {
	m := newSmallModeler(t)
	rep, err := m.TrainResilient(context.Background(), Resilience{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungGenetic {
		t.Errorf("rung = %v, want genetic", rep.Rung)
	}
	if rep.GeneticErr != nil || rep.StepwiseErr != nil || rep.LoadErr != nil {
		t.Errorf("healthy train reported errors: %+v", rep)
	}
	if m.Model() == nil {
		t.Error("no model after healthy train")
	}
}

// TestTrainResilientPanicDegradesToStepwise: a transient fault (one panic,
// then clear) kills the genetic search; the ladder must land on stepwise
// with a usable model and a report naming both what failed and what served.
func TestTrainResilientPanicDegradesToStepwise(t *testing.T) {
	m := newSmallModeler(t)
	var inj *faultinject.Evaluator
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		if inj == nil {
			inj = &faultinject.Evaluator{Inner: inner, PanicEvery: 1, MaxPanics: 1}
		} else {
			inj.Inner = inner // same schedule counters across rungs
		}
		return inj
	}
	rep, err := m.TrainResilient(context.Background(), Resilience{StepwiseBudget: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungStepwise {
		t.Fatalf("rung = %v, want stepwise (report: %v)", rep.Rung, rep)
	}
	if !errors.Is(rep.GeneticErr, genetic.ErrEvalPanic) {
		t.Errorf("GeneticErr = %v, want ErrEvalPanic", rep.GeneticErr)
	}
	if m.Model() == nil {
		t.Fatal("no model from stepwise rung")
	}
	s0 := m.Samples()[0]
	if _, err := m.PredictShard(s0.X, s0.HW); err != nil {
		t.Errorf("stepwise model cannot predict: %v", err)
	}
}

// TestTrainResilientServesLastGoodFromDisk is the end-to-end acceptance
// test: a persistently panicking evaluator defeats BOTH searches without
// crashing the process, and the modeler falls back to the last-good
// persisted model, which keeps answering predictions.
func TestTrainResilientServesLastGoodFromDisk(t *testing.T) {
	trained, valid := trainSmallModeler(t)
	lastGood := filepath.Join(t.TempDir(), "last-good.json")
	if err := trained.Save(lastGood, testShardLen); err != nil {
		t.Fatal(err)
	}

	m := newSmallModeler(t)
	inj := &faultinject.Evaluator{PanicEvery: 1} // unlimited panics
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		inj.Inner = inner
		return inj
	}
	rep, err := m.TrainResilient(context.Background(), Resilience{
		StepwiseBudget: 50,
		LastGoodPath:   lastGood,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungLastGood {
		t.Fatalf("rung = %v, want last-good (report: %v)", rep.Rung, rep)
	}
	if !errors.Is(rep.GeneticErr, genetic.ErrEvalPanic) {
		t.Errorf("GeneticErr = %v, want ErrEvalPanic", rep.GeneticErr)
	}
	if !errors.Is(rep.StepwiseErr, genetic.ErrEvalPanic) {
		t.Errorf("StepwiseErr = %v, want ErrEvalPanic", rep.StepwiseErr)
	}
	// The served predictions are exactly the persisted model's.
	want, err1 := trained.PredictShard(valid[0].X, valid[0].HW)
	got, err2 := m.PredictShard(valid[0].X, valid[0].HW)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Errorf("last-good prediction %v, want %v", got, want)
	}
}

// TestTrainResilientNaNSamplesDegrade: NaN-poisoned profile rows make
// featurization fail as bad input, so both search rungs fail; a previously
// published snapshot must keep serving. The poisoning goes through
// SetSamples so the cached evaluator state is invalidated like any real
// sample mutation.
func TestTrainResilientNaNSamplesDegrade(t *testing.T) {
	m, _ := trainSmallModeler(t)
	before := m.Model()
	poisoned := m.Samples()
	rows := make([][]float64, len(poisoned))
	for i := range poisoned {
		rows[i] = poisoned[i].X[:]
	}
	if n := faultinject.PoisonRows(rows, 5, 99); n == 0 {
		t.Fatal("poisoned no rows")
	}
	m.SetSamples(poisoned)
	rep, err := m.TrainResilient(context.Background(), Resilience{StepwiseBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungLastGood {
		t.Fatalf("rung = %v, want last-good (report: %v)", rep.Rung, rep)
	}
	if rep.GeneticErr == nil || rep.StepwiseErr == nil {
		t.Errorf("expected both search rungs to fail: %v", rep)
	}
	if m.Model() != before {
		t.Error("failed retrain must not clobber the in-memory model")
	}
}

// TestTrainResilientAllRungsFail: no last-good anywhere → RungNone plus an
// error that still names the underlying fault.
func TestTrainResilientAllRungsFail(t *testing.T) {
	m := newSmallModeler(t)
	inj := &faultinject.Evaluator{PanicEvery: 1}
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		inj.Inner = inner
		return inj
	}
	rep, err := m.TrainResilient(context.Background(), Resilience{StepwiseBudget: 30})
	if err == nil {
		t.Fatal("expected an error when every rung fails")
	}
	if rep.Rung != RungNone {
		t.Errorf("rung = %v, want none", rep.Rung)
	}
	if !errors.Is(err, genetic.ErrEvalPanic) {
		t.Errorf("err = %v, should wrap ErrEvalPanic", err)
	}
	if m.Model() != nil {
		t.Error("modeler conjured a model from nowhere")
	}
}

// TestTrainResilientCorruptLastGood: a corrupted model file must be refused
// (typed error in the report), not half-loaded.
func TestTrainResilientCorruptLastGood(t *testing.T) {
	trained, _ := trainSmallModeler(t)
	lastGood := filepath.Join(t.TempDir(), "last-good.json")
	if err := trained.Save(lastGood, testShardLen); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.CorruptFile(lastGood, 7, faultinject.Truncate); err != nil {
		t.Fatal(err)
	}

	m := newSmallModeler(t)
	inj := &faultinject.Evaluator{PanicEvery: 1}
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		inj.Inner = inner
		return inj
	}
	rep, err := m.TrainResilient(context.Background(), Resilience{
		StepwiseBudget: 30,
		LastGoodPath:   lastGood,
	})
	if err == nil {
		t.Fatal("expected failure with a corrupt last-good file")
	}
	if rep.Rung != RungNone {
		t.Errorf("rung = %v, want none", rep.Rung)
	}
	if !errors.Is(rep.LoadErr, ErrModelCorrupt) {
		t.Errorf("LoadErr = %v, want ErrModelCorrupt", rep.LoadErr)
	}
}

// TestTrainResilientDeadlineFallsToStepwise: a search deadline shorter than
// one delayed evaluation cancels the genetic rung; stepwise (bounded by the
// caller's healthy context, not the expired one) completes.
func TestTrainResilientDeadlineFallsToStepwise(t *testing.T) {
	m := newSmallModeler(t)
	inj := &faultinject.Evaluator{Delay: 2 * time.Millisecond}
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		inj.Inner = inner
		return inj
	}
	rep, err := m.TrainResilient(context.Background(), Resilience{
		SearchTimeout:  time.Millisecond,
		StepwiseBudget: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungStepwise {
		t.Fatalf("rung = %v, want stepwise (report: %v)", rep.Rung, rep)
	}
	if !errors.Is(rep.GeneticErr, genetic.ErrCancelled) {
		t.Errorf("GeneticErr = %v, want ErrCancelled", rep.GeneticErr)
	}
	if m.Model() == nil {
		t.Error("no model from stepwise rung")
	}
}

// TestTrainResilientDeadCallerContextSkipsStepwise: when the caller's own
// context is dead, the ladder must not burn compute on stepwise — it goes
// straight to last-good.
func TestTrainResilientDeadCallerContextSkipsStepwise(t *testing.T) {
	m, _ := trainSmallModeler(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := m.TrainResilient(ctx, Resilience{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != RungLastGood {
		t.Fatalf("rung = %v, want last-good (report: %v)", rep.Rung, rep)
	}
	if !errors.Is(rep.GeneticErr, genetic.ErrCancelled) {
		t.Errorf("GeneticErr = %v, want ErrCancelled", rep.GeneticErr)
	}
	if rep.StepwiseErr == nil || !errors.Is(rep.StepwiseErr, context.Canceled) {
		t.Errorf("StepwiseErr = %v, want the skip reason (context.Canceled)", rep.StepwiseErr)
	}
	if rep.String() == "" {
		t.Error("report should render")
	}
}
