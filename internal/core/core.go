// Package core implements the paper's primary contribution: inferred models
// for integrated hardware-software spaces.
//
// It assembles sparse (application shard, architecture) performance profiles
// into regression datasets over the 26 modeled variables (software
// characteristics x1–x13 of Table 1 and hardware parameters y1–y13 of
// Table 2), drives the genetic modeling heuristic with the paper's
// per-application fitness discipline (Section 3.3's pseudocode), predicts
// shard and application performance, and implements the inductive model
// update protocol of Sections 3.2–3.3 for systems perturbed by new software
// or hardware.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"hsmodel/internal/cpu"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/isa"
	"hsmodel/internal/linalg"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/trace"
)

// NumVars is the integrated-space variable count: 13 software + 13 hardware.
const NumVars = profile.NumCharacteristics + hwspace.NumParams

// DefaultShardLen is the default shard length in dynamic instructions. The
// paper profiles 10M-instruction shards; 100k is the scaled default so full
// experiments run in minutes, and every harness accepts the paper-scale
// value.
const DefaultShardLen = 100_000

// PaperShardLen is the paper's 10M-instruction shard length.
const PaperShardLen = 10_000_000

// VarNames returns the 26 variable names in dataset order.
func VarNames() []string {
	names := make([]string, 0, NumVars)
	for i := 0; i < profile.NumCharacteristics; i++ {
		names = append(names, fmt.Sprintf("x%d", i+1))
	}
	for i := 0; i < hwspace.NumParams; i++ {
		names = append(names, fmt.Sprintf("y%d", i+1))
	}
	return names
}

// IsSoftwareVar reports whether dataset variable v is a software
// characteristic (vs a hardware parameter).
func IsSoftwareVar(v int) bool { return v < profile.NumCharacteristics }

// Sample is one sparse profile: a shard's portable software characteristics,
// the architecture it ran on, and the measured performance.
type Sample struct {
	App   string
	AppID int
	Shard int
	X     profile.Characteristics
	HW    hwspace.Config
	CPI   float64
}

// Row returns the 26-element raw variable vector of the sample.
func (s Sample) Row() []float64 {
	row := make([]float64, NumVars)
	s.RowInto(row)
	return row
}

// RowInto fills row (length at least NumVars) with the sample's raw variable
// vector: the zero-allocation form of Row for the serving hot path.
//
//hslint:hotpath
func (s Sample) RowInto(row []float64) {
	copy(row, s.X[:])
	hw := s.HW.Vector()
	copy(row[profile.NumCharacteristics:], hw[:])
}

// ToDataset converts samples to a regression dataset with CPI as the
// response and application identity as the row group.
func ToDataset(samples []Sample) *regress.Dataset {
	ds := &regress.Dataset{
		Names: VarNames(),
		X:     nil,
		Y:     make([]float64, len(samples)),
		Group: make([]int, len(samples)),
	}
	ds.X = linalg.NewMatrix(len(samples), NumVars)
	for i, s := range samples {
		copy(ds.X.Row(i), s.Row())
		ds.Y[i] = s.CPI
		ds.Group[i] = s.AppID
	}
	return ds
}

// Collector produces sparse profiles by simulating shards on sampled
// architectures — the stand-in for a datacenter-wide profiler selectively
// profiling hardware-software pairs.
type Collector struct {
	// ShardLen is the shard length in instructions (DefaultShardLen if 0).
	ShardLen int
	// ShardPool is how many distinct shard indices per application are
	// sampled from (60 if 0). Shards are drawn uniformly from the pool, so
	// every phase of the application timeline is represented.
	ShardPool int
	// Workers bounds parallel simulations (GOMAXPROCS if 0).
	Workers int

	mu       sync.Mutex
	profiles map[string]profile.Characteristics // (app,shard) -> portable profile
}

func (c *Collector) shardLen() int {
	if c.ShardLen <= 0 {
		return DefaultShardLen
	}
	return c.ShardLen
}

func (c *Collector) shardPool() int {
	if c.ShardPool <= 0 {
		return 60
	}
	return c.ShardPool
}

func (c *Collector) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// profileShard returns the microarchitecture-independent profile of one
// shard, cached: a shard profiled once is shared across every architecture
// (Section 2.2's portability argument made concrete).
func (c *Collector) profileShard(app *trace.App, shard int) profile.Characteristics {
	key := fmt.Sprintf("%s/%d/%d", app.Name, shard, c.shardLen())
	c.mu.Lock()
	if c.profiles == nil {
		c.profiles = make(map[string]profile.Characteristics)
	}
	if x, ok := c.profiles[key]; ok {
		c.mu.Unlock()
		return x
	}
	c.mu.Unlock()

	p := profile.Stream(app.ShardStream(shard, c.shardLen()), app.Name, shard)

	c.mu.Lock()
	//hslint:ignore boundedgrowth memo keyed by the experiment's finite (app, shard, shardLen) universe, not by traffic
	c.profiles[key] = p.X
	c.mu.Unlock()
	return p.X
}

// request is one (application, shard, architecture) measurement to take.
type request struct {
	app   *trace.App
	appID int
	shard int
	hw    hwspace.Config
}

// Collect takes samplesPerApp uniform random (shard, architecture) profiles
// for each application. Simulation fans out across the worker pool; results
// are returned in a deterministic order given the seed.
func (c *Collector) Collect(apps []*trace.App, samplesPerApp int, seed uint64) []Sample {
	src := rng.New(seed)
	var reqs []request
	for appID, app := range apps {
		appSrc := src.Fork(uint64(appID))
		for k := 0; k < samplesPerApp; k++ {
			reqs = append(reqs, request{
				app:   app,
				appID: appID,
				shard: appSrc.Intn(c.shardPool()),
				hw:    hwspace.FromIndices(hwspace.Sample(appSrc)),
			})
		}
	}
	return c.run(reqs)
}

// CollectPairs measures an explicit list of (app, shard, architecture)
// triples, preserving order.
func (c *Collector) CollectPairs(apps []*trace.App, appIDs, shards []int, hws []hwspace.Config) []Sample {
	if len(appIDs) != len(shards) || len(shards) != len(hws) {
		panic("core: CollectPairs length mismatch")
	}
	reqs := make([]request, len(appIDs))
	for i := range appIDs {
		reqs[i] = request{app: apps[appIDs[i]], appID: appIDs[i], shard: shards[i], hw: hws[i]}
	}
	return c.run(reqs)
}

// run measures all requests. Requests are grouped by (application, shard)
// so each shard's instruction trace is generated once and replayed for every
// architecture — the in-memory analogue of the paper's portable profiles.
func (c *Collector) run(reqs []request) []Sample {
	type groupKey struct {
		appID, shard int
	}
	groups := make(map[groupKey][]int)
	var order []groupKey
	for i, r := range reqs {
		k := groupKey{r.appID, r.shard}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	out := make([]Sample, len(reqs))
	sem := make(chan struct{}, c.workers())
	var wg sync.WaitGroup
	for _, k := range order {
		wg.Add(1)
		sem <- struct{}{}
		go func(idxs []int) {
			defer wg.Done()
			defer func() { <-sem }()
			r := reqs[idxs[0]]
			insts := isa.Collect(r.app.ShardStream(r.shard, c.shardLen()), 0)
			ss := &isa.SliceStream{Insts: insts}
			x := c.profileShard(r.app, r.shard)
			for _, i := range idxs {
				req := reqs[i]
				ss.Reset()
				res := cpu.New(req.hw).Run(ss)
				out[i] = Sample{
					App:   req.app.Name,
					AppID: req.appID,
					Shard: req.shard,
					X:     x,
					HW:    req.hw,
					CPI:   res.CPI(),
				}
			}
		}(groups[k])
	}
	wg.Wait()
	return out
}
