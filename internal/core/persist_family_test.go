package core

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hsmodel/internal/faultinject"
)

// trainFamilyModeler trains a small modeler through the selection harness so
// its snapshot carries a family name and a scoreboard, and returns it with a
// handful of samples to predict on.
func trainFamilyModeler(t *testing.T) (*Trainer, []Sample) {
	t.Helper()
	m := newSmallModeler(t)
	m.Families = DefaultFamilies()
	if err := m.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	return m, smallCollector().Collect(smallApps(), 5, 2)
}

// TestSaveLoadFamilyRoundTrip: a selection-produced snapshot survives the v4
// save/load cycle with its family identity, scoreboard, provenance, and
// bit-exact predictions intact.
func TestSaveLoadFamilyRoundTrip(t *testing.T) {
	m, samples := trainFamilyModeler(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path, testShardLen); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Snapshot()
	if loaded.Family() != orig.Family() || loaded.Family() == "" {
		t.Errorf("family %q, want %q", loaded.Family(), orig.Family())
	}
	if loaded.Rung() != RungFamily {
		t.Errorf("rung %v, want family", loaded.Rung())
	}
	if loaded.TrainedRows() != orig.TrainedRows() {
		t.Errorf("trained rows %d, want %d", loaded.TrainedRows(), orig.TrainedRows())
	}
	wantScores, gotScores := orig.FamilyScores(), loaded.FamilyScores()
	if len(gotScores) != len(wantScores) {
		t.Fatalf("scores %v, want %v", gotScores, wantScores)
	}
	for name, want := range wantScores {
		if got, ok := gotScores[name]; !ok || math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("score[%s] = %v, want %v", name, got, want)
		}
	}
	for _, s := range samples {
		want, err1 := m.PredictShard(s.X, s.HW)
		got, err2 := loaded.PredictShard(s.X, s.HW)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("round-trip prediction %v, want %v", got, want)
		}
	}
}

// TestLoadFamilyFileCorruption damages a saved v4 model file with each
// faultinject corruptor and checks every resulting load failure is one of the
// typed ErrModel* errors — never an untyped decode error and never a
// half-loaded model.
func TestLoadFamilyFileCorruption(t *testing.T) {
	m, _ := trainFamilyModeler(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "model.json")
	if err := m.Save(good, testShardLen); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	typed := []error{
		ErrModelCorrupt, ErrModelVersion, ErrModelIncomplete,
		ErrModelShape, ErrModelChecksum, ErrModelFamily,
	}
	isTyped := func(err error) bool {
		for _, want := range typed {
			if errors.Is(err, want) {
				return true
			}
		}
		return false
	}
	corruptAndLoad := func(t *testing.T, seed uint64, mode faultinject.CorruptMode) error {
		t.Helper()
		path := filepath.Join(dir, "corrupt.json")
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.CorruptFile(path, seed, mode); err != nil {
			t.Fatal(err)
		}
		snap, err := LoadSnapshot(path)
		if err == nil && !snap.Trained() {
			t.Fatal("load returned an untrained snapshot without an error")
		}
		return err
	}

	t.Run("torn write", func(t *testing.T) {
		err := corruptAndLoad(t, 1, faultinject.Truncate)
		if !errors.Is(err, ErrModelCorrupt) {
			t.Errorf("err = %v, want ErrModelCorrupt", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		err := corruptAndLoad(t, 1, faultinject.Garbage)
		if !errors.Is(err, ErrModelCorrupt) {
			t.Errorf("err = %v, want ErrModelCorrupt", err)
		}
	})
	t.Run("bit rot", func(t *testing.T) {
		// A single flipped byte can land anywhere: in payload bytes (checksum
		// mismatch), in JSON structure (corrupt), in the family or version
		// fields (their own typed errors) — or in unchecksummed provenance,
		// where the load legitimately succeeds. Sweep seeds so the flip visits
		// many offsets: every observed failure must be typed, and the sweep
		// must catch at least one.
		failures := 0
		for seed := uint64(1); seed <= 16; seed++ {
			err := corruptAndLoad(t, seed, faultinject.FlipByte)
			if err == nil {
				continue
			}
			failures++
			if !isTyped(err) {
				t.Errorf("seed %d: untyped load error: %v", seed, err)
			}
		}
		if failures == 0 {
			t.Error("no flipped byte produced a load failure; corruption undetected")
		}
	})
}
