package core

import (
	"errors"

	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
)

// ErrNotTrained is returned by prediction methods before any model has been
// fitted (or loaded).
var ErrNotTrained = errors.New("core: model not trained")

// Snapshot is an immutable fitted model plus the metadata needed to serve
// it: the regression (which carries the featurizer's preprocessing state —
// powers, knots, standardization moments), the profiling shard length, the
// ladder rung that produced it, and the training-row count. A Trainer
// publishes a new Snapshot atomically at the end of every successful
// training run; readers hold a Snapshot and are immune to concurrent
// retraining. Snapshot is also the unit of persistence (Save/LoadSnapshot).
//
// All fields are set at construction and never mutated, so a Snapshot is
// safe for unsynchronized concurrent use.
type Snapshot struct {
	model       *regress.Model
	shardLen    int
	rung        Rung
	trainedRows int
}

// NewSnapshot wraps a fitted model for serving. shardLen <= 0 defaults to
// DefaultShardLen.
func NewSnapshot(model *regress.Model, shardLen int, rung Rung, trainedRows int) *Snapshot {
	if shardLen <= 0 {
		shardLen = DefaultShardLen
	}
	return &Snapshot{model: model, shardLen: shardLen, rung: rung, trainedRows: trainedRows}
}

// Model returns the fitted regression model.
func (s *Snapshot) Model() *regress.Model {
	if s == nil {
		return nil
	}
	return s.model
}

// ShardLen returns the profiling shard length (in instructions) the model's
// training profiles were measured at.
func (s *Snapshot) ShardLen() int { return s.shardLen }

// Rung reports which degradation-ladder rung produced the model.
func (s *Snapshot) Rung() Rung { return s.rung }

// TrainedRows returns the number of profile rows the model was fitted on.
func (s *Snapshot) TrainedRows() int { return s.trainedRows }

// PredictShard predicts the CPI of a shard with characteristics x on
// hardware hw. Safe on a nil snapshot (returns ErrNotTrained).
func (s *Snapshot) PredictShard(x profile.Characteristics, hw hwspace.Config) (float64, error) {
	if s == nil || s.model == nil {
		return 0, ErrNotTrained
	}
	sample := Sample{X: x, HW: hw}
	return s.model.Predict(sample.Row()), nil
}

// PredictApplication predicts whole-application CPI on hw by predicting each
// constituent shard and aggregating (shards have equal instruction counts,
// so application CPI is the mean of shard CPIs). "A few inaccurate shard
// predictions have a small effect on the end-to-end prediction."
func (s *Snapshot) PredictApplication(shards []profile.Characteristics, hw hwspace.Config) (float64, error) {
	if len(shards) == 0 {
		return 0, errors.New("core: no shards to predict")
	}
	var sum float64
	for _, x := range shards {
		p, err := s.PredictShard(x, hw)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum / float64(len(shards)), nil
}

// EvaluateOn measures model accuracy on held-out samples.
func (s *Snapshot) EvaluateOn(samples []Sample) (regress.Metrics, error) {
	if s == nil || s.model == nil {
		return regress.Metrics{}, ErrNotTrained
	}
	return s.model.Evaluate(ToDataset(samples)), nil
}
