package core

import (
	"errors"

	"hsmodel/internal/family"
	"hsmodel/internal/family/spline"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
)

// ErrNotTrained is returned by prediction methods before any model has been
// fitted (or loaded).
var ErrNotTrained = errors.New("core: model not trained")

// Snapshot is an immutable fitted model plus the metadata needed to serve
// it: the fitted family model (for the reference spline family this carries
// the regression with the featurizer's preprocessing state — powers, knots,
// standardization moments), the family that produced it and the per-family
// selection scores when the selection harness ran, the profiling shard
// length, the ladder rung that produced it, and the training-row count. A
// Trainer publishes a new Snapshot atomically at the end of every successful
// training run; readers hold a Snapshot and are immune to concurrent
// retraining. Snapshot is also the unit of persistence (Save/LoadSnapshot).
//
// All fields are set at construction and never mutated, so a Snapshot is
// safe for unsynchronized concurrent use.
type Snapshot struct {
	famName     string
	fam         family.Model
	scores      map[string]float64 // per-family selection scores; nil without selection
	shardLen    int
	rung        Rung
	trainedRows int
}

// NewSnapshot wraps a fitted spline regression for serving — the
// pre-family-refactor constructor, kept for the classic genetic/stepwise
// paths and persistence compatibility. shardLen <= 0 defaults to
// DefaultShardLen.
func NewSnapshot(model *regress.Model, shardLen int, rung Rung, trainedRows int) *Snapshot {
	var fam family.Model
	if model != nil {
		fam = spline.Wrap(model)
	}
	return newFamilySnapshot(spline.FamilyName, fam, nil, shardLen, rung, trainedRows)
}

// NewFamilySnapshot wraps a fitted model of any family for serving, with the
// selection scores that chose it (nil when no selection ran).
func NewFamilySnapshot(famName string, fam family.Model, scores map[string]float64, shardLen int, rung Rung, trainedRows int) *Snapshot {
	return newFamilySnapshot(famName, fam, scores, shardLen, rung, trainedRows)
}

func newFamilySnapshot(famName string, fam family.Model, scores map[string]float64, shardLen int, rung Rung, trainedRows int) *Snapshot {
	if shardLen <= 0 {
		shardLen = DefaultShardLen
	}
	return &Snapshot{
		famName:     famName,
		fam:         fam,
		scores:      scores,
		shardLen:    shardLen,
		rung:        rung,
		trainedRows: trainedRows,
	}
}

// Trained reports whether the snapshot carries a fitted model. Safe on nil.
func (s *Snapshot) Trained() bool { return s != nil && s.fam != nil }

// Model returns the fitted spline regression when the snapshot is backed by
// the reference spline family, and nil for other families (whose structure
// does not reduce to one regression) or before training. Callers that only
// need predictions should use PredictShard/FamilyModel instead.
func (s *Snapshot) Model() *regress.Model {
	if s == nil {
		return nil
	}
	if sm, ok := s.fam.(*spline.Model); ok {
		return sm.RegressModel()
	}
	return nil
}

// FamilyModel returns the fitted family model, or nil before training.
func (s *Snapshot) FamilyModel() family.Model {
	if s == nil {
		return nil
	}
	return s.fam
}

// Family returns the name of the family that produced the model ("spline"
// for the classic paths), or "" before training.
func (s *Snapshot) Family() string {
	if s == nil || s.fam == nil {
		return ""
	}
	return s.famName
}

// FamilyScores returns the per-family selection scores (CV MedAPE on the
// weighted splits) recorded when the selection harness chose this model, or
// nil when no selection ran. The returned map is shared and must not be
// mutated.
func (s *Snapshot) FamilyScores() map[string]float64 {
	if s == nil {
		return nil
	}
	return s.scores
}

// Describe reports the served model's displayable provenance; the zero
// Description before training.
func (s *Snapshot) Describe() family.Description {
	if s == nil || s.fam == nil {
		return family.Description{}
	}
	return s.fam.Describe()
}

// ShardLen returns the profiling shard length (in instructions) the model's
// training profiles were measured at.
func (s *Snapshot) ShardLen() int { return s.shardLen }

// Rung reports which degradation-ladder rung produced the model.
func (s *Snapshot) Rung() Rung { return s.rung }

// TrainedRows returns the number of profile rows the model was fitted on.
func (s *Snapshot) TrainedRows() int { return s.trainedRows }

// PredictShard predicts the CPI of a shard with characteristics x on
// hardware hw. Safe on a nil snapshot (returns ErrNotTrained).
func (s *Snapshot) PredictShard(x profile.Characteristics, hw hwspace.Config) (float64, error) {
	if s == nil || s.fam == nil {
		return 0, ErrNotTrained
	}
	return s.PredictShardInto(make([]float64, NumVars), x, hw)
}

// PredictShardInto is PredictShard with a caller-owned row buffer (length at
// least NumVars): the zero-allocation serving form. The buffer is scratch —
// callers reuse it across calls and must not read it back.
//
//hslint:hotpath
func (s *Snapshot) PredictShardInto(row []float64, x profile.Characteristics, hw hwspace.Config) (float64, error) {
	if s == nil || s.fam == nil {
		return 0, ErrNotTrained
	}
	Sample{X: x, HW: hw}.RowInto(row)
	return s.fam.Predict(row), nil
}

// PredictBatch predicts every raw row of rows into out (out[i] answers
// rows[i]; len(out) must be at least len(rows)) through the family's batch
// kernel. Results are Float64bits-identical to per-row PredictShard — the
// batch path amortizes buffers and dispatch, never the arithmetic. Safe on a
// nil snapshot (returns ErrNotTrained).
//
//hslint:hotpath
func (s *Snapshot) PredictBatch(rows [][]float64, out []float64) error {
	if s == nil || s.fam == nil {
		return ErrNotTrained
	}
	s.fam.PredictBatch(rows, out)
	return nil
}

// PredictApplication predicts whole-application CPI on hw by predicting each
// constituent shard and aggregating (shards have equal instruction counts,
// so application CPI is the mean of shard CPIs). "A few inaccurate shard
// predictions have a small effect on the end-to-end prediction." The
// trained check is hoisted out of the per-shard loop and one row buffer is
// reused across shards.
func (s *Snapshot) PredictApplication(shards []profile.Characteristics, hw hwspace.Config) (float64, error) {
	if len(shards) == 0 {
		return 0, errors.New("core: no shards to predict")
	}
	if s == nil || s.fam == nil {
		return 0, ErrNotTrained
	}
	row := make([]float64, NumVars)
	var sum float64
	for _, x := range shards {
		Sample{X: x, HW: hw}.RowInto(row)
		sum += s.fam.Predict(row)
	}
	return sum / float64(len(shards)), nil
}

// EvaluateOn measures model accuracy on held-out samples. The spline-backed
// path goes through the regression's own Evaluate (bit-identical to the
// pre-family engine); other families predict row by row and share the same
// metric assembly.
func (s *Snapshot) EvaluateOn(samples []Sample) (regress.Metrics, error) {
	if s == nil || s.fam == nil {
		return regress.Metrics{}, ErrNotTrained
	}
	ds := ToDataset(samples)
	if m := s.Model(); m != nil {
		return m.Evaluate(ds), nil
	}
	rows := make([][]float64, ds.NumRows())
	for i := range rows {
		rows[i] = ds.X.Row(i)
	}
	pred := make([]float64, len(rows))
	s.fam.PredictBatch(rows, pred)
	return regress.Assess(pred, ds.Y), nil
}
