package core

import (
	"context"
	"fmt"

	"hsmodel/internal/regress"
)

// UpdatePolicy governs the inductive update protocol of Sections 3.2–3.3:
// when the system is perturbed by new software or hardware, the existing
// model is checked against the new profiles; an inaccurate prediction may be
// an outlier, so more data is gathered (the paper finds 10–20 additional
// points sufficient) before triggering a re-specification. Requiring
// profiles to accrue before updating introduces the paper's hysteresis.
type UpdatePolicy struct {
	// ErrThreshold is the median-error level above which the model is
	// considered to be serving the perturbation poorly. The paper notes
	// "median errors less than 10-15% may be sufficient to make
	// coarse-grained resource allocations"; the default is 0.15.
	ErrThreshold float64
	// MinProfiles is how many profiles of the perturbation must accrue
	// before an update may trigger (default 10, the low end of the paper's
	// 10–20 range).
	MinProfiles int
}

func (p UpdatePolicy) withDefaults() UpdatePolicy {
	if p.ErrThreshold <= 0 {
		p.ErrThreshold = 0.15
	}
	if p.MinProfiles <= 0 {
		p.MinProfiles = 10
	}
	return p
}

// Decision reports what the update protocol concluded for a perturbation.
type Decision struct {
	// Checked is the accuracy of the existing model on the perturbation's
	// profiles.
	Checked regress.Metrics
	// NeedsMoreData is set when the error exceeds the threshold but too few
	// profiles have accrued to rule out an outlier.
	NeedsMoreData bool
	// Updated is set when a model update was triggered and performed.
	Updated bool
}

func (d Decision) String() string {
	switch {
	case d.Updated:
		return fmt.Sprintf("updated (checked: %v)", d.Checked)
	case d.NeedsMoreData:
		return fmt.Sprintf("accruing profiles (checked: %v)", d.Checked)
	default:
		return fmt.Sprintf("model retained (checked: %v)", d.Checked)
	}
}

// Perturb runs the inductive step for a batch of profiles from a new
// application, architecture, or both:
//
//  1. Check the existing model's accuracy on the new profiles. If
//     predictions are accurate, the new behavior is already shared with
//     observed software — absorb the samples without re-specifying.
//  2. If inaccurate but below the profile-count floor, withhold judgment
//     (the error could be an outlier) and keep accruing.
//  3. Otherwise insert the profiles into the store and invoke the heuristic
//     to re-specify and refit, warm-starting from the current population.
//
// The new samples are always added to the store so future training sees
// them.
func (m *Trainer) Perturb(ctx context.Context, newSamples []Sample, policy UpdatePolicy) (Decision, error) {
	policy = policy.withDefaults()
	var d Decision
	if !m.Trained() {
		return d, fmt.Errorf("core: Perturb before Train")
	}
	if len(newSamples) == 0 {
		return d, fmt.Errorf("core: Perturb with no samples")
	}
	checked, err := m.EvaluateOn(newSamples)
	if err != nil {
		return d, err
	}
	d.Checked = checked

	m.AddSamples(newSamples)
	if checked.MedAPE <= policy.ErrThreshold {
		// Sufficiently accurate: "the new application likely shares
		// behavior with already observed software."
		return d, nil
	}
	if len(newSamples) < policy.MinProfiles {
		d.NeedsMoreData = true
		return d, nil
	}
	if err := m.Update(ctx); err != nil {
		return d, err
	}
	d.Updated = true
	return d, nil
}
