package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsmodel/internal/faultinject"
	"hsmodel/internal/genetic"
)

// TestServeWhileTrain hammers lock-free predictions from many goroutines
// while the trainer repeatedly re-specifies the model through the resilience
// ladder. Run under -race (make race / make ci), this is the acceptance test
// for the snapshot architecture: every read must observe a fully fitted
// model — either the previous snapshot or the new one, never a torn state —
// and no prediction may fail while retraining is in flight.
func TestServeWhileTrain(t *testing.T) {
	m, valid := trainSmallModeler(t)
	first := m.Snapshot()
	if first == nil {
		t.Fatal("no snapshot after initial train")
	}

	const readers = 8
	var (
		stop  atomic.Bool
		reads atomic.Int64
		wg    sync.WaitGroup
	)
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				s := valid[(g+i)%len(valid)]
				snap := m.Snapshot()
				if snap == nil || snap.Model() == nil {
					errs <- ErrNotTrained
					return
				}
				p, err := snap.PredictShard(s.X, s.HW)
				if err != nil || p <= 0 {
					errs <- err
					return
				}
				// The trainer-level path must be equally safe.
				if _, err := m.PredictShard(s.X, s.HW); err != nil {
					errs <- err
					return
				}
				if _, err := m.EvaluateOn(valid[:3]); err != nil {
					errs <- err
					return
				}
				reads.Add(1)
			}
		}(g)
	}

	// Retrain concurrently with the readers: twice healthy (new snapshots
	// published mid-read), once with an evaluator that defeats both search
	// rungs (the prior snapshot must keep serving).
	for round := 0; round < 2; round++ {
		m.Search = genetic.Params{PopulationSize: 12, Generations: 3, Seed: uint64(100 + round)}
		if rep, err := m.TrainResilient(context.Background(), Resilience{}); err != nil {
			t.Fatalf("round %d: %v (report %v)", round, err, rep)
		}
	}
	served := m.Snapshot()
	inj := &faultinject.Evaluator{PanicEvery: 1}
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		inj.Inner = inner
		return inj
	}
	rep, err := m.TrainResilient(context.Background(), Resilience{StepwiseBudget: 30})
	if err != nil {
		t.Fatalf("failing ladder returned error despite last-good: %v", err)
	}
	if rep.Rung != RungLastGood {
		t.Errorf("rung = %v, want last-good (report %v)", rep.Rung, rep)
	}
	if m.Snapshot() != served {
		t.Error("failed ladder replaced the served snapshot")
	}

	// On a single-CPU machine the retrains can finish before any reader has
	// been scheduled through a full iteration; keep serving until every
	// reader has made progress (bounded, in case one exited on error).
	deadline := time.Now().Add(10 * time.Second)
	for reads.Load() < readers && len(errs) == 0 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent reader failed: %v", err)
	}
	if reads.Load() == 0 {
		t.Error("readers made no progress")
	}
	if m.Snapshot() == first {
		t.Error("healthy retrains never published a new snapshot")
	}
}

// TestAddSamplesWhileUpdate is the acceptance test for the non-blocking
// sample-store contract: AddSamples called concurrently with an in-flight
// Update must be safe (run under -race via make ci) and must not block until
// the training run completes — a training run captures its evaluator at
// start and holds no lock during the search. Samples added mid-run take
// effect at the next run.
func TestAddSamplesWhileUpdate(t *testing.T) {
	m, valid := trainSmallModeler(t)
	before := m.NumSamples()

	// A slow evaluator stretches the search so the adders demonstrably
	// overlap it; OnGeneration gates them until the run has captured its
	// evaluator, so every added sample provably lands mid-run.
	inj := &faultinject.Evaluator{Delay: 200 * time.Microsecond}
	m.WrapEvaluator = func(inner genetic.Evaluator) genetic.Evaluator {
		inj.Inner = inner
		return inj
	}
	searching := make(chan struct{})
	var once sync.Once
	m.Search = genetic.Params{
		PopulationSize: 12, Generations: 4, Seed: 77,
		OnGeneration: func(genetic.GenStats) { once.Do(func() { close(searching) }) },
	}

	training := make(chan error, 1)
	go func() { training <- m.Update(context.Background()) }()
	<-searching

	// Feed samples and read store/model state while the search runs. Every
	// AddSamples must return promptly even though Update is in flight.
	const adders, batches = 4, 8
	var wg sync.WaitGroup
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				m.AddSamples(valid[(g+i)%len(valid) : (g+i)%len(valid)+1])
				m.NumSamples()
				m.Snapshot().PredictShard(valid[0].X, valid[0].HW)
			}
		}(g)
	}
	wg.Wait()
	if err := <-training; err != nil {
		t.Fatalf("update failed: %v", err)
	}

	if got, want := m.NumSamples(), before+adders*batches; got != want {
		t.Errorf("store has %d samples, want %d", got, want)
	}
	// The samples landed mid-run, so the published model was fitted on the
	// pre-update store; the next run picks them up.
	if rows := m.Snapshot().TrainedRows(); rows != before {
		t.Errorf("in-flight update trained on %d rows, want the captured %d", rows, before)
	}
	if err := m.Update(context.Background()); err != nil {
		t.Fatalf("follow-up update failed: %v", err)
	}
	if rows := m.Snapshot().TrainedRows(); rows != before+adders*batches {
		t.Errorf("follow-up update trained on %d rows, want %d", rows, before+adders*batches)
	}
}
