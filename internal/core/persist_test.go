package core

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hsmodel/internal/regress"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, valid := trainSmallModeler(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path, testShardLen); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ShardLen() != testShardLen {
		t.Errorf("shard length %d, want %d", loaded.ShardLen(), testShardLen)
	}
	// Training provenance must survive the round trip.
	if loaded.Rung() != RungGenetic {
		t.Errorf("rung %v, want genetic", loaded.Rung())
	}
	if loaded.TrainedRows() != m.Snapshot().TrainedRows() {
		t.Errorf("trained rows %d, want %d", loaded.TrainedRows(), m.Snapshot().TrainedRows())
	}
	// Predictions must match the in-memory model exactly.
	for _, s := range valid[:5] {
		want, err1 := m.PredictShard(s.X, s.HW)
		got, err2 := loaded.PredictShard(s.X, s.HW)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("round-trip prediction %v, want %v", got, want)
		}
	}
	// A trainer adopting the snapshot serves the same predictions.
	fresh := NewTrainer(nil)
	fresh.Adopt(loaded)
	want, _ := m.PredictShard(valid[0].X, valid[0].HW)
	got, err := fresh.PredictShard(valid[0].X, valid[0].HW)
	if err != nil || math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("adopted snapshot prediction %v (err %v), want %v", got, err, want)
	}
}

func TestSaveBeforeTrainFails(t *testing.T) {
	m := NewTrainer(nil)
	if err := m.Save(filepath.Join(t.TempDir(), "m.json"), 0); err == nil {
		t.Error("Save before Train should fail")
	}
	var s *Snapshot
	if err := s.Save(filepath.Join(t.TempDir(), "s.json")); err == nil {
		t.Error("nil snapshot Save should fail")
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	m, _ := trainSmallModeler(t)
	dir := t.TempDir()
	if err := m.Save(filepath.Join(dir, "model.json"), testShardLen); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory after Save: %v, want only model.json", names)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	// Saving over an existing model must replace it wholesale (rename), so a
	// reader always sees a complete file.
	m, _ := trainSmallModeler(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path, testShardLen); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(path, testShardLen+1); err != nil {
		t.Fatal(err)
	}
	if s, err := LoadSnapshot(path); err != nil || s.ShardLen() != testShardLen+1 {
		t.Fatalf("LoadSnapshot after overwrite: shardLen=%d err=%v", s.ShardLen(), err)
	}
}

// saveValid trains once and returns the path of a known-good model file.
func saveValid(t *testing.T) string {
	t.Helper()
	m, _ := trainSmallModeler(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path, testShardLen); err != nil {
		t.Fatal(err)
	}
	return path
}

// legacyModel decodes the spline regression out of a current-format file's
// payload, so compat tests can rebuild pre-family (version ≤ 3) files from
// the same fitted model.
func legacyModel(t *testing.T, good []byte) (SavedModel, *regress.Model) {
	t.Helper()
	var saved SavedModel
	if err := json.Unmarshal(good, &saved); err != nil {
		t.Fatal(err)
	}
	var model regress.Model
	if err := json.Unmarshal(saved.Payload, &model); err != nil {
		t.Fatal(err)
	}
	return saved, &model
}

// TestLoadVersion2Compat: version-2 files (no rung/trained_rows metadata)
// must still load, with the provenance defaulting to zero values.
func TestLoadVersion2Compat(t *testing.T) {
	good, err := os.ReadFile(saveValid(t))
	if err != nil {
		t.Fatal(err)
	}
	saved, model := legacyModel(t, good)
	sum, err := modelChecksum(model)
	if err != nil {
		t.Fatal(err)
	}
	v2 := SavedModel{
		Version:  2,
		ShardLen: saved.ShardLen,
		Checksum: sum,
		Model:    model,
	}
	data, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "v2.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(p)
	if err != nil {
		t.Fatalf("version-2 file refused: %v", err)
	}
	if loaded.ShardLen() != saved.ShardLen {
		t.Errorf("shard length %d, want %d", loaded.ShardLen(), saved.ShardLen)
	}
	if loaded.Rung() != RungNone || loaded.TrainedRows() != 0 {
		t.Errorf("v2 provenance should default to zero: rung=%v rows=%d",
			loaded.Rung(), loaded.TrainedRows())
	}
	if loaded.Model() == nil {
		t.Error("v2 load produced no model")
	}
}

// TestLoadFailureModes exercises every corruption class with the distinct
// typed error it must map to.
func TestLoadFailureModes(t *testing.T) {
	good, err := os.ReadFile(saveValid(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("truncated JSON", func(t *testing.T) {
		p := write("torn.json", good[:len(good)/2])
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelCorrupt) {
			t.Errorf("err = %v, want ErrModelCorrupt", err)
		}
	})

	t.Run("not JSON at all", func(t *testing.T) {
		p := write("garbage.json", []byte("not json at all"))
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelCorrupt) {
			t.Errorf("err = %v, want ErrModelCorrupt", err)
		}
	})

	t.Run("wrong version", func(t *testing.T) {
		bad := strings.Replace(string(good), `"version": 4`, `"version": 1`, 1)
		if bad == string(good) {
			t.Fatal("version field not found in saved file")
		}
		p := write("badver.json", []byte(bad))
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelVersion) {
			t.Errorf("err = %v, want ErrModelVersion", err)
		}
	})

	t.Run("future version", func(t *testing.T) {
		bad := strings.Replace(string(good), `"version": 4`, `"version": 99`, 1)
		p := write("future.json", []byte(bad))
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelVersion) {
			t.Errorf("err = %v, want ErrModelVersion", err)
		}
	})

	t.Run("incomplete legacy model", func(t *testing.T) {
		p := write("empty3.json", []byte(`{"version":3,"shard_len":100}`))
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelIncomplete) {
			t.Errorf("err = %v, want ErrModelIncomplete", err)
		}
	})

	t.Run("incomplete family file", func(t *testing.T) {
		p := write("empty4.json", []byte(`{"version":4,"shard_len":100,"family":"spline"}`))
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelIncomplete) {
			t.Errorf("err = %v, want ErrModelIncomplete", err)
		}
	})

	t.Run("unknown family", func(t *testing.T) {
		var saved SavedModel
		if err := json.Unmarshal(good, &saved); err != nil {
			t.Fatal(err)
		}
		saved.Family = "perceptron"
		data, err := json.Marshal(saved)
		if err != nil {
			t.Fatal(err)
		}
		p := write("unknownfam.json", data)
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelFamily) {
			t.Errorf("err = %v, want ErrModelFamily", err)
		}
	})

	t.Run("wrong variable count legacy", func(t *testing.T) {
		saved, model := legacyModel(t, good)
		model.Prep.Names = model.Prep.Names[:5]
		model.Prep.Powers = model.Prep.Powers[:5]
		sum, err := modelChecksum(model)
		if err != nil {
			t.Fatal(err)
		}
		v3 := SavedModel{
			Version:  3,
			ShardLen: saved.ShardLen,
			Checksum: sum,
			Model:    model,
		}
		data, err := json.Marshal(v3)
		if err != nil {
			t.Fatal(err)
		}
		p := write("shape.json", data)
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelShape) {
			t.Errorf("err = %v, want ErrModelShape", err)
		}
	})

	t.Run("wrong variable count family payload", func(t *testing.T) {
		// A well-formed, correctly checksummed payload over the wrong
		// variable space must be rejected by the family's Load validation.
		saved, model := legacyModel(t, good)
		model.Prep.Names = model.Prep.Names[:5]
		model.Prep.Powers = model.Prep.Powers[:5]
		payload, err := json.Marshal(model)
		if err != nil {
			t.Fatal(err)
		}
		saved.Payload = payload
		saved.Checksum, err = payloadChecksum(payload)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(saved)
		if err != nil {
			t.Fatal(err)
		}
		p := write("shape4.json", data)
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelFamily) {
			t.Errorf("err = %v, want ErrModelFamily", err)
		}
	})

	t.Run("bad checksum", func(t *testing.T) {
		// Flip one coefficient digit without touching the stored checksum:
		// the payload no longer matches and LoadSnapshot must refuse it.
		saved, model := legacyModel(t, good)
		model.Coef[0] += 1e-3
		payload, err := json.Marshal(model)
		if err != nil {
			t.Fatal(err)
		}
		saved.Payload = payload
		data, err := json.Marshal(saved)
		if err != nil {
			t.Fatal(err)
		}
		p := write("bitrot.json", data)
		if _, err := LoadSnapshot(p); !errors.Is(err, ErrModelChecksum) {
			t.Errorf("err = %v, want ErrModelChecksum", err)
		}
	})

	t.Run("missing file", func(t *testing.T) {
		if _, err := LoadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
			t.Error("missing file should fail")
		}
	})
}
