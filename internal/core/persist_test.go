package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, valid := trainSmallModeler(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path, testShardLen); err != nil {
		t.Fatal(err)
	}

	loaded, shardLen, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if shardLen != testShardLen {
		t.Errorf("shard length %d, want %d", shardLen, testShardLen)
	}
	// Predictions must match the in-memory model exactly.
	for _, s := range valid[:5] {
		want, err1 := m.PredictShard(s.X, s.HW)
		got, err2 := loaded.PredictShard(s.X, s.HW)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if want != got {
			t.Fatalf("round-trip prediction %v, want %v", got, want)
		}
	}
}

func TestSaveBeforeTrainFails(t *testing.T) {
	m := NewModeler(nil)
	if err := m.Save(filepath.Join(t.TempDir(), "m.json"), 0); err == nil {
		t.Error("Save before Train should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"notjson.json": "not json at all",
		"empty.json":   `{"version":1,"shard_len":100}`,
		"badver.json":  `{"version":99,"shard_len":100,"model":{}}`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(p); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
	if _, _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}
